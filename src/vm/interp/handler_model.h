/**
 * @file
 * Layout of the interpreter's own native code.
 *
 * The paper's interpreters are a big switch: fetch the opcode byte,
 * index a jump table, indirect-jump to the handler, run a short native
 * sequence, jump back to the loop head. We reproduce that structure in
 * the simulated address space so the architecture models see exactly
 * the code footprint and control behaviour the paper describes:
 *
 *   kDispatchPc + 0    load   opcode byte        (bytecode is *data*)
 *   kDispatchPc + 4    alu    table index
 *   kDispatchPc + 8    load   jump-table entry   (switch table is data)
 *   kDispatchPc + 12   ijmp   -> handlerPc(op)   (the hard-to-predict one)
 *   handlerPc(op) ...  the per-opcode body, ends with a jump back
 *
 * Each handler owns a 64-byte slot; ~90 handlers cluster in a few KiB —
 * the compact working set behind the interpreter's excellent I-cache
 * locality (Section 4.3).
 */
#ifndef JRS_VM_INTERP_HANDLER_MODEL_H
#define JRS_VM_INTERP_HANDLER_MODEL_H

#include "isa/address_map.h"
#include "vm/bytecode/opcode.h"

namespace jrs {

/** Dispatch-loop head. */
inline constexpr SimAddr kDispatchPc = seg::kInterpCode;

/** Base of the switch jump table (read as data). */
inline constexpr SimAddr kJumpTableAddr = seg::kInterpCode + 0x400;

/** Bytes reserved per handler body. */
inline constexpr SimAddr kHandlerSlotBytes = 0x80;

/** Base of the handler bodies. */
inline constexpr SimAddr kHandlerBase = seg::kInterpCode + 0x1000;

/** Simulated entry pc of the handler for @p op. */
inline SimAddr
handlerPc(Op op)
{
    return kHandlerBase
        + kHandlerSlotBytes * static_cast<SimAddr>(op);
}

/** Address of the jump-table entry for @p op. */
inline SimAddr
jumpTableEntry(Op op)
{
    return kJumpTableAddr + 4ull * static_cast<SimAddr>(op);
}

/**
 * Pseudo-register roles used in interpreter-mode trace events, so the
 * pipeline model sees realistic dependences.
 */
namespace ireg {
inline constexpr std::uint8_t kVpc = 20;      ///< virtual pc
inline constexpr std::uint8_t kVsp = 21;      ///< operand-stack pointer
inline constexpr std::uint8_t kOpc = 22;      ///< fetched opcode
inline constexpr std::uint8_t kHandler = 23;  ///< handler address
inline constexpr std::uint8_t kT0 = 1;        ///< value temporaries
inline constexpr std::uint8_t kT1 = 2;
inline constexpr std::uint8_t kT2 = 3;
inline constexpr std::uint8_t kAddr = 4;      ///< address temp
} // namespace ireg

} // namespace jrs

#endif // JRS_VM_INTERP_HANDLER_MODEL_H
