#include "vm/interp/handler_model.h"

// Layout helpers are header-only.
