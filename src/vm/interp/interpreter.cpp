#include "vm/interp/interpreter.h"

#include <cmath>

#include "vm/bytecode/decode.h"
#include "vm/interp/handler_model.h"

namespace jrs {

namespace {

/** Shared invoke-stub region (frame setup code); see isa/address_map.h. */
constexpr SimAddr kInvokeStubBase = stub::kInvokeStubBase;

/** Per-method invoke-stub target, for BTB target variety. */
SimAddr
invokeStubOf(MethodId id)
{
    return stub::methodStubOf(id);
}

/** Bytecodes whose handlers pre-decode their successor when folding. */
bool
isFoldableHead(Op op)
{
    switch (op) {
      case Op::Iconst8:
      case Op::Iconst32:
      case Op::Fconst:
      case Op::AconstNull:
      case Op::Iload:
      case Op::Fload:
      case Op::Aload:
        return true;
      default:
        return false;
    }
}

} // namespace

std::uint8_t
Interpreter::slotArgc(std::uint16_t slot)
{
    if (slot < slotArgc_.size() && slotArgc_[slot] >= 0)
        return static_cast<std::uint8_t>(slotArgc_[slot]);
    if (slot >= slotArgc_.size())
        slotArgc_.resize(slot + 1, -1);
    const Program &prog = ctx_.registry.program();
    for (const auto &c : prog.classes) {
        if (slot < c.vtable.size() && c.vtable[slot] != kNoMethod) {
            slotArgc_[slot] = prog.methods[c.vtable[slot]].numArgs;
            return static_cast<std::uint8_t>(slotArgc_[slot]);
        }
    }
    throw VmError("unresolvable vtable slot argc");
}

void
Interpreter::emitDispatch(const InterpFrame &f, Op op)
{
    auto &E = ctx_.emitter;
    if (!E.enabled())
        return;
    const Phase P = Phase::Interpret;
    // Fetch the opcode byte: the bytecode stream is data here.
    E.load(P, kDispatchPc + 0, f.method->bytecodeAddr + f.pc, 1,
           ireg::kOpc, ireg::kVpc);
    // Compute the table index.
    E.alu(P, kDispatchPc + 4, NKind::IntAlu, ireg::kHandler, ireg::kOpc);
    // Pending-exception / safepoint poll: a load of VM state and a
    // never-taken branch. Real interpreter loops poll like this; the
    // predictable branch dilutes the indirect-jump misses exactly as
    // the paper's measured rates imply.
    E.load(P, kDispatchPc + 8, seg::kRuntimeData + 0x10, 4, ireg::kT2);
    E.branch(P, kDispatchPc + 12, kDispatchPc + 0x40, false, ireg::kT2);
    // Load the handler address from the switch jump table.
    E.load(P, kDispatchPc + 16, jumpTableEntry(op), 4, ireg::kHandler,
           ireg::kHandler);
    // The infamous indirect jump.
    E.control(P, kDispatchPc + 20, NKind::IndirectJump, handlerPc(op),
              ireg::kHandler);
}

StepResult
Interpreter::doReturn(VmThread &thread, InterpFrame &f, bool has_value,
                      Value v)
{
    auto &E = ctx_.emitter;
    const SimAddr hp = handlerPc(f.method->opAt(f.pc));
    if (has_value) {
        // Pop the return value from the (already vacated) stack slot.
        E.load(Phase::Interpret, hp + 8, f.stackAddr(f.stack.size()), 4,
               ireg::kT0, ireg::kVsp);
    }
    if (f.syncObj != 0 && !f.monitorPending)
        ctx_.sync.exit(thread.tid(), f.syncObj);
    // Frame teardown + return into the interpreter loop.
    E.alu(Phase::Interpret, hp + 12, NKind::IntAlu, ireg::kVsp);
    E.control(Phase::Interpret, hp + 16, NKind::Ret, kDispatchPc);

    thread.frames.pop_back();
    thread.popFrameSpace();

    StepResult r;
    r.action = StepAction::Returned;
    r.hasValue = has_value;
    r.value = v;
    return r;
}

StepResult
Interpreter::step(VmThread &thread)
{
    InterpFrame &f = std::get<InterpFrame>(thread.frames.back());
    if (f.monitorPending) {
        if (!ctx_.sync.enter(thread.tid(), f.syncObj)) {
            StepResult r;
            r.action = StepAction::Blocked;
            return r;
        }
        f.monitorPending = false;
    }

    const Method &m = *f.method;
    const std::uint32_t pc = f.pc;
    const Op op = m.opAt(pc);
    const std::uint32_t len = instrLength(m.code, pc);
    const Phase P = Phase::Interpret;
    auto &E = ctx_.emitter;
    auto &heap = ctx_.heap;

    const bool fold_hit = folding_ && foldBase_ == f.base
        && foldPc_ == pc && foldBase_ != 0;
    foldBase_ = 0;
    if (fold_hit) {
        // Folded pair: the previous handler already decoded this
        // opcode; one fused-decode op replaces the whole dispatch.
        ++folded_;
        E.alu(P, kDispatchPc + 0x30, NKind::IntAlu, ireg::kHandler,
              ireg::kOpc);
    } else {
        emitDispatch(f, op);
    }
    ++bytecodes_;
    ++opCounts_[static_cast<std::size_t>(op)];

    // Handler-body pcs are doled out sequentially from the handler base.
    const SimAddr hp = handlerPc(op);
    SimAddr hcur = hp;
    auto hpc = [&]() {
        const SimAddr p = hcur;
        hcur += 4;
        return p;
    };
    // Rotating value temporaries (the interpreter's working registers):
    // consecutive pushes/pops target distinct registers, which is what
    // exposes the instruction-level parallelism the paper measures in
    // interpreted code.
    std::uint8_t trot = 0;
    auto tmp = [&]() {
        const std::uint8_t r = static_cast<std::uint8_t>(
            ireg::kT0 + (trot % 6));
        ++trot;
        return r;
    };

    // Handler prologue: operand decode, virtual-pc bookkeeping, stack
    // cache state checks — the bulk of a real interpreter's per-opcode
    // overhead, almost all of it independent straight-line work.
    E.alu(P, hpc(), NKind::IntAlu, tmp(), ireg::kVpc);
    E.alu(P, hpc(), NKind::IntAlu, tmp(), ireg::kVpc);
    E.alu(P, hpc(), NKind::IntAlu, tmp(), ireg::kOpc);
    E.alu(P, hpc(), NKind::IntAlu, tmp(), ireg::kVsp);
    // Operand-stack limit check: never taken.
    E.branch(P, hpc(), hp + 0x3c, false, ireg::kVsp);
    E.alu(P, hpc(), NKind::IntAlu, tmp(), ireg::kVsp);
    E.alu(P, hpc(), NKind::IntAlu, tmp(), ireg::kVpc);

    // --- frame-access helpers (each emits its memory traffic) ----------
    auto push = [&](Value v) {
        E.store(P, hpc(), f.stackAddr(f.stack.size()), 4, ireg::kVsp,
                tmp());
        f.stack.push_back(v);
    };
    auto pop = [&]() {
        Value v = f.stack.back();
        f.stack.pop_back();
        E.load(P, hpc(), f.stackAddr(f.stack.size()), 4, tmp(),
               ireg::kVsp);
        return v;
    };
    auto operandLoad = [&](std::uint32_t off, std::uint8_t size) {
        E.load(P, hpc(), m.bytecodeAddr + pc + off, size, tmp(),
               ireg::kVpc);
    };
    auto aluEv = [&](NKind kind = NKind::IntAlu) {
        E.alu(P, hpc(), kind, tmp(), ireg::kT0, ireg::kT1);
    };
    auto loopback = [&]() {
        // Epilogue bookkeeping (vpc commit, stack-top cache) + the
        // jump back to the dispatch loop.
        E.alu(P, hpc(), NKind::IntAlu, ireg::kVpc, tmp());
        E.alu(P, hpc(), NKind::IntAlu, ireg::kVsp, tmp());
        E.control(P, hpc(), NKind::Jump, kDispatchPc);
    };
    auto finishAt = [&](std::uint32_t next_pc) {
        if (next_pc <= pc)
            ++f.backEdges;
        f.pc = next_pc;
        loopback();
        if (folding_ && isFoldableHead(op) && next_pc == pc + len) {
            foldBase_ = f.base;
            foldPc_ = next_pc;
        }
        StepResult r;
        r.action = StepAction::Continue;
        return r;
    };
    auto finish = [&]() { return finishAt(pc + len); };
    auto checkNull = [&](Value ref) {
        aluEv();
        if (ref.isNullRef())
            ctx_.runtime.throwBuiltin(BuiltinEx::NullPointer);
    };
    // Conditional bytecode branch: ONE native branch per handler, so
    // every Java branch site of this opcode aliases onto it — the
    // paper's key interpreter-prediction effect.
    auto condBranch = [&](bool cond) {
        E.branch(P, hp + 0x44, hp + 0x50, cond, ireg::kT0, ireg::kT1);
        return finishAt(cond
                            ? pc + static_cast<std::uint32_t>(
                                  readS16(m.code, pc + 1))
                            : pc + len);
    };
    auto intBinop = [&](auto fn) {
        const std::int32_t b = pop().asInt();
        const std::int32_t a = pop().asInt();
        push(Value::makeInt(fn(a, b)));
        return finish();
    };
    auto floatBinop = [&](auto fn, NKind kind) {
        const float b = pop().asFloat();
        const float a = pop().asFloat();
        E.alu(P, hpc(), kind, ireg::kT0, ireg::kT0, ireg::kT1);
        push(Value::makeFloat(fn(a, b)));
        return finish();
    };
    auto arrayRefIndex = [&](SimAddr &arr, std::int32_t &idx) {
        idx = pop().asInt();
        Value ref = pop();
        checkNull(ref);
        arr = ref.asRef();
        // Bounds check: length load + compare-branch.
        E.load(P, hpc(), arr + 8, 4, ireg::kT1, ireg::kT0);
        const bool ok = heap.indexInBounds(arr, idx);
        E.branch(P, hp + 0x48, hp + 0x54, !ok, ireg::kT1, ireg::kT2);
        if (!ok)
            ctx_.runtime.throwBuiltin(BuiltinEx::ArrayIndexOutOfBounds);
    };

    try {
        switch (op) {
          case Op::Nop:
            return finish();

          // --- constants ------------------------------------------------
          case Op::Iconst8:
            operandLoad(1, 1);
            push(Value::makeInt(readS8(m.code, pc + 1)));
            return finish();
          case Op::Iconst32:
            operandLoad(1, 4);
            push(Value::makeInt(readS32(m.code, pc + 1)));
            return finish();
          case Op::Fconst:
            operandLoad(1, 4);
            push(Value::makeFloat(readF32(m.code, pc + 1)));
            return finish();
          case Op::AconstNull:
            push(Value::null());
            return finish();
          case Op::LdcStr: {
            operandLoad(1, 2);
            const std::uint16_t idx = readU16(m.code, pc + 1);
            // Constant-pool entry load.
            E.load(P, hpc(), seg::kClassData + 0x0400'0000ull + 4u * idx,
                   4, ireg::kT0, ireg::kT2);
            push(Value::makeRef(ctx_.registry.stringRef(idx)));
            return finish();
          }

          // --- locals ---------------------------------------------------
          case Op::Iload:
          case Op::Fload:
          case Op::Aload: {
            operandLoad(1, 1);
            const std::uint8_t slot = readU8(m.code, pc + 1);
            E.load(P, hpc(), f.localAddr(slot), 4, ireg::kT0, ireg::kVsp);
            push(f.locals[slot]);
            return finish();
          }
          case Op::Istore:
          case Op::Fstore:
          case Op::Astore: {
            operandLoad(1, 1);
            const std::uint8_t slot = readU8(m.code, pc + 1);
            const Value v = pop();
            E.store(P, hpc(), f.localAddr(slot), 4, ireg::kVsp,
                    ireg::kT0);
            f.locals[slot] = v;
            return finish();
          }
          case Op::Iinc: {
            operandLoad(1, 2);
            const std::uint8_t slot = readU8(m.code, pc + 1);
            const std::int8_t delta = readS8(m.code, pc + 2);
            E.load(P, hpc(), f.localAddr(slot), 4, ireg::kT0, ireg::kVsp);
            aluEv();
            E.store(P, hpc(), f.localAddr(slot), 4, ireg::kVsp,
                    ireg::kT0);
            f.locals[slot] =
                Value::makeInt(f.locals[slot].asInt() + delta);
            return finish();
          }

          // --- operand stack ---------------------------------------------
          case Op::Pop:
            pop();
            return finish();
          case Op::Dup: {
            const Value v = pop();
            push(v);
            push(v);
            return finish();
          }
          case Op::DupX1: {
            const Value top = pop();
            const Value below = pop();
            push(top);
            push(below);
            push(top);
            return finish();
          }
          case Op::Swap: {
            const Value a = pop();
            const Value b = pop();
            push(a);
            push(b);
            return finish();
          }

          // --- integer arithmetic -----------------------------------------
          case Op::Iadd:
            aluEv();
            return intBinop([](std::int32_t a, std::int32_t b) {
                return static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(a)
                    + static_cast<std::uint32_t>(b));
            });
          case Op::Isub:
            aluEv();
            return intBinop([](std::int32_t a, std::int32_t b) {
                return static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(a)
                    - static_cast<std::uint32_t>(b));
            });
          case Op::Imul:
            E.alu(P, hpc(), NKind::IntMul, ireg::kT0, ireg::kT0,
                  ireg::kT1);
            return intBinop([](std::int32_t a, std::int32_t b) {
                return static_cast<std::int32_t>(
                    static_cast<std::int64_t>(a)
                    * static_cast<std::int64_t>(b));
            });
          case Op::Idiv: {
            const std::int32_t b = pop().asInt();
            const std::int32_t a = pop().asInt();
            E.alu(P, hpc(), NKind::IntDiv, ireg::kT0, ireg::kT0,
                  ireg::kT1);
            if (b == 0)
                ctx_.runtime.throwBuiltin(BuiltinEx::Arithmetic);
            push(Value::makeInt(static_cast<std::int32_t>(
                static_cast<std::int64_t>(a)
                / (a == INT32_MIN && b == -1 ? 1 : b))));
            return finish();
          }
          case Op::Irem: {
            const std::int32_t b = pop().asInt();
            const std::int32_t a = pop().asInt();
            E.alu(P, hpc(), NKind::IntDiv, ireg::kT0, ireg::kT0,
                  ireg::kT1);
            if (b == 0)
                ctx_.runtime.throwBuiltin(BuiltinEx::Arithmetic);
            push(Value::makeInt(
                a == INT32_MIN && b == -1
                    ? 0
                    : static_cast<std::int32_t>(a % b)));
            return finish();
          }
          case Op::Ineg: {
            const std::int32_t a = pop().asInt();
            aluEv();
            push(Value::makeInt(static_cast<std::int32_t>(
                -static_cast<std::int64_t>(a))));
            return finish();
          }
          case Op::Ishl:
            aluEv();
            return intBinop([](std::int32_t a, std::int32_t b) {
                return static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(a) << (b & 31));
            });
          case Op::Ishr:
            aluEv();
            return intBinop([](std::int32_t a, std::int32_t b) {
                return a >> (b & 31);
            });
          case Op::Iushr:
            aluEv();
            return intBinop([](std::int32_t a, std::int32_t b) {
                return static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(a) >> (b & 31));
            });
          case Op::Iand:
            aluEv();
            return intBinop(
                [](std::int32_t a, std::int32_t b) { return a & b; });
          case Op::Ior:
            aluEv();
            return intBinop(
                [](std::int32_t a, std::int32_t b) { return a | b; });
          case Op::Ixor:
            aluEv();
            return intBinop(
                [](std::int32_t a, std::int32_t b) { return a ^ b; });

          // --- float arithmetic --------------------------------------------
          case Op::Fadd:
            return floatBinop([](float a, float b) { return a + b; },
                              NKind::FpAlu);
          case Op::Fsub:
            return floatBinop([](float a, float b) { return a - b; },
                              NKind::FpAlu);
          case Op::Fmul:
            return floatBinop([](float a, float b) { return a * b; },
                              NKind::FpMul);
          case Op::Fdiv:
            return floatBinop([](float a, float b) { return a / b; },
                              NKind::FpDiv);
          case Op::Fneg: {
            const float a = pop().asFloat();
            E.alu(P, hpc(), NKind::FpAlu, ireg::kT0, ireg::kT0);
            push(Value::makeFloat(-a));
            return finish();
          }
          case Op::Fcmpl: {
            const float b = pop().asFloat();
            const float a = pop().asFloat();
            E.alu(P, hpc(), NKind::FpAlu, ireg::kT0, ireg::kT0,
                  ireg::kT1);
            int r;
            if (std::isnan(a) || std::isnan(b))
                r = -1;
            else
                r = a < b ? -1 : (a > b ? 1 : 0);
            push(Value::makeInt(r));
            return finish();
          }

          // --- conversions -----------------------------------------------
          case Op::I2f: {
            const std::int32_t a = pop().asInt();
            E.alu(P, hpc(), NKind::FpAlu, ireg::kT0, ireg::kT0);
            push(Value::makeFloat(static_cast<float>(a)));
            return finish();
          }
          case Op::F2i: {
            const float a = pop().asFloat();
            E.alu(P, hpc(), NKind::FpAlu, ireg::kT0, ireg::kT0);
            std::int32_t r;
            if (std::isnan(a))
                r = 0;
            else if (a >= 2147483647.0f)
                r = INT32_MAX;
            else if (a <= -2147483648.0f)
                r = INT32_MIN;
            else
                r = static_cast<std::int32_t>(a);
            push(Value::makeInt(r));
            return finish();
          }
          case Op::I2c: {
            const std::int32_t a = pop().asInt();
            aluEv();
            push(Value::makeInt(a & 0xffff));
            return finish();
          }
          case Op::I2b: {
            const std::int32_t a = pop().asInt();
            aluEv();
            push(Value::makeInt(static_cast<std::int8_t>(a & 0xff)));
            return finish();
          }

          // --- control ---------------------------------------------------
          case Op::Goto:
            operandLoad(1, 2);
            return finishAt(pc + static_cast<std::uint32_t>(
                                     readS16(m.code, pc + 1)));
          case Op::Ifeq:
            operandLoad(1, 2);
            return condBranch(pop().asInt() == 0);
          case Op::Ifne:
            operandLoad(1, 2);
            return condBranch(pop().asInt() != 0);
          case Op::Iflt:
            operandLoad(1, 2);
            return condBranch(pop().asInt() < 0);
          case Op::Ifge:
            operandLoad(1, 2);
            return condBranch(pop().asInt() >= 0);
          case Op::Ifgt:
            operandLoad(1, 2);
            return condBranch(pop().asInt() > 0);
          case Op::Ifle:
            operandLoad(1, 2);
            return condBranch(pop().asInt() <= 0);
          case Op::IfIcmpeq: case Op::IfIcmpne: case Op::IfIcmplt:
          case Op::IfIcmpge: case Op::IfIcmpgt: case Op::IfIcmple: {
            operandLoad(1, 2);
            const std::int32_t b = pop().asInt();
            const std::int32_t a = pop().asInt();
            bool c = false;
            switch (op) {
              case Op::IfIcmpeq: c = a == b; break;
              case Op::IfIcmpne: c = a != b; break;
              case Op::IfIcmplt: c = a < b; break;
              case Op::IfIcmpge: c = a >= b; break;
              case Op::IfIcmpgt: c = a > b; break;
              default:           c = a <= b; break;
            }
            return condBranch(c);
          }
          case Op::IfAcmpeq: case Op::IfAcmpne: {
            operandLoad(1, 2);
            const SimAddr b = pop().asRef();
            const SimAddr a = pop().asRef();
            return condBranch(op == Op::IfAcmpeq ? a == b : a != b);
          }
          case Op::Ifnull:
            operandLoad(1, 2);
            return condBranch(pop().asRef() == 0);
          case Op::Ifnonnull:
            operandLoad(1, 2);
            return condBranch(pop().asRef() != 0);

          case Op::TableSwitch: {
            const std::int32_t key = pop().asInt();
            const std::int32_t low = readS32(m.code, pc + 3);
            const std::uint16_t count = readU16(m.code, pc + 7);
            aluEv();  // range check
            std::int32_t rel;
            const std::int64_t idx =
                static_cast<std::int64_t>(key) - low;
            if (idx >= 0 && idx < count) {
                // Load the matching offset from the bytecode stream.
                E.load(P, hpc(),
                       m.bytecodeAddr + pc + 9
                           + 2u * static_cast<std::uint32_t>(idx),
                       2, ireg::kT2, ireg::kVpc);
                rel = readS16(m.code,
                              pc + 9
                                  + 2u * static_cast<std::uint32_t>(idx));
            } else {
                E.load(P, hpc(), m.bytecodeAddr + pc + 1, 2, ireg::kT2,
                       ireg::kVpc);
                rel = readS16(m.code, pc + 1);
            }
            aluEv();  // vpc update
            return finishAt(pc + static_cast<std::uint32_t>(rel));
          }
          case Op::LookupSwitch: {
            const std::int32_t key = pop().asInt();
            const std::uint16_t npairs = readU16(m.code, pc + 3);
            std::int32_t rel = readS16(m.code, pc + 1);
            for (std::uint16_t i = 0; i < npairs; ++i) {
                // Linear probe: one key load + compare per pair.
                E.load(P, hp + 0x40,
                       m.bytecodeAddr + pc + 5 + 6u * i, 4, ireg::kT2,
                       ireg::kVpc);
                E.branch(P, hp + 0x4c, hp + 0x58,
                         readS32(m.code, pc + 5 + 6u * i) == key,
                         ireg::kT2, ireg::kT0);
                if (readS32(m.code, pc + 5 + 6u * i) == key) {
                    rel = readS16(m.code, pc + 5 + 6u * i + 4);
                    break;
                }
            }
            return finishAt(pc + static_cast<std::uint32_t>(rel));
          }

          // --- calls and returns -------------------------------------------
          case Op::InvokeStatic:
          case Op::InvokeSpecial: {
            operandLoad(1, 2);
            const MethodId target = readU16(m.code, pc + 1);
            const Method &callee = ctx_.registry.method(target);
            Value args[256];
            for (int i = callee.numArgs - 1; i >= 0; --i)
                args[i] = pop();
            if (op == Op::InvokeSpecial)
                checkNull(args[0]);
            // Call into the shared frame-setup stub.
            E.control(P, kInvokeStubBase, NKind::Call,
                      invokeStubOf(target));
            f.pc = pc + len;
            ctx_.services.invokeMethod(thread, target, args,
                                       callee.numArgs);
            StepResult r;
            r.action = StepAction::Invoked;
            return r;
          }
          case Op::InvokeVirtual: {
            operandLoad(1, 2);
            const std::uint16_t slot = readU16(m.code, pc + 1);
            const std::uint8_t nargs = slotArgc(slot);
            Value recv = f.stack[f.stack.size() - nargs];
            checkNull(recv);
            // Load the object header (class word) and vtable entry.
            const ClassId cls = heap.klassOf(recv.asRef());
            E.load(P, hpc(), recv.asRef(), 4, ireg::kT1, ireg::kT0);
            E.load(P, hpc(),
                   ctx_.registry.vtableEntryAddr(cls, slot), 4,
                   ireg::kT1, ireg::kT1);
            const MethodId target =
                ctx_.registry.virtualLookup(cls, slot);
            Value args[256];
            for (int i = nargs - 1; i >= 0; --i)
                args[i] = pop();
            E.control(P, kInvokeStubBase + 4, NKind::IndirectCall,
                      invokeStubOf(target), ireg::kT1);
            f.pc = pc + len;
            ctx_.services.invokeMethod(thread, target, args, nargs);
            StepResult r;
            r.action = StepAction::Invoked;
            return r;
          }
          case Op::ReturnVoid:
            return doReturn(thread, f, false, Value());
          case Op::Ireturn:
          case Op::Freturn:
          case Op::Areturn: {
            const Value v = f.stack.back();
            f.stack.pop_back();
            return doReturn(thread, f, true, v);
          }

          // --- fields -------------------------------------------------------
          case Op::GetFieldI: case Op::GetFieldF: case Op::GetFieldA: {
            operandLoad(1, 2);
            const std::uint16_t slot = readU16(m.code, pc + 1);
            Value ref = pop();
            checkNull(ref);
            const SimAddr addr = Heap::fieldAddr(ref.asRef(), slot);
            E.load(P, hpc(), addr, 4, ireg::kT0, ireg::kT0);
            const Tag tag = op == Op::GetFieldI
                ? Tag::Int
                : (op == Op::GetFieldF ? Tag::Float : Tag::Ref);
            push(Value::fromSlotBits(heap.loadU32(addr), tag));
            return finish();
          }
          case Op::PutFieldI: case Op::PutFieldF: case Op::PutFieldA: {
            operandLoad(1, 2);
            const std::uint16_t slot = readU16(m.code, pc + 1);
            const Value v = pop();
            Value ref = pop();
            checkNull(ref);
            const SimAddr addr = Heap::fieldAddr(ref.asRef(), slot);
            E.store(P, hpc(), addr, 4, ireg::kT1, ireg::kT0);
            heap.storeSlot(addr, v.slotBits(), op == Op::PutFieldA);
            return finish();
          }
          case Op::GetStaticI: case Op::GetStaticF: case Op::GetStaticA: {
            operandLoad(1, 2);
            const std::uint16_t slot = readU16(m.code, pc + 1);
            E.load(P, hpc(), ClassRegistry::staticAddr(slot), 4,
                   ireg::kT0, ireg::kT2);
            push(ctx_.registry.getStatic(slot));
            return finish();
          }
          case Op::PutStaticI: case Op::PutStaticF: case Op::PutStaticA: {
            operandLoad(1, 2);
            const std::uint16_t slot = readU16(m.code, pc + 1);
            const Value v = pop();
            E.store(P, hpc(), ClassRegistry::staticAddr(slot), 4,
                    ireg::kT2, ireg::kT0);
            ctx_.registry.setStatic(slot, v);
            return finish();
          }

          // --- objects and arrays ---------------------------------------------
          case Op::New: {
            operandLoad(1, 2);
            const ClassId cls = readU16(m.code, pc + 1);
            const SimAddr obj = ctx_.runtime.newObject(cls);
            push(Value::makeRef(obj));
            return finish();
          }
          case Op::NewArray: {
            operandLoad(1, 1);
            const ArrayKind kind =
                static_cast<ArrayKind>(readU8(m.code, pc + 1));
            const std::int32_t n = pop().asInt();
            const SimAddr arr = ctx_.runtime.newArray(kind, n);
            push(Value::makeRef(arr));
            return finish();
          }
          case Op::ArrayLength: {
            Value ref = pop();
            checkNull(ref);
            E.load(P, hpc(), ref.asRef() + 8, 4, ireg::kT0, ireg::kT0);
            push(Value::makeInt(heap.arrayLength(ref.asRef())));
            return finish();
          }
          case Op::IAload: case Op::FAload: {
            SimAddr arr;
            std::int32_t idx;
            arrayRefIndex(arr, idx);
            const SimAddr ea = heap.elemAddr(arr, idx);
            E.load(P, hpc(), ea, 4, ireg::kT0, ireg::kT1);
            push(Value::fromSlotBits(
                heap.loadU32(ea),
                op == Op::IAload ? Tag::Int : Tag::Float));
            return finish();
          }
          case Op::AAload: {
            SimAddr arr;
            std::int32_t idx;
            arrayRefIndex(arr, idx);
            const SimAddr ea = heap.elemAddr(arr, idx);
            E.load(P, hpc(), ea, 4, ireg::kT0, ireg::kT1);
            push(Value::fromSlotBits(heap.loadU32(ea), Tag::Ref));
            return finish();
          }
          case Op::CAload: {
            SimAddr arr;
            std::int32_t idx;
            arrayRefIndex(arr, idx);
            const SimAddr ea = heap.elemAddr(arr, idx);
            E.load(P, hpc(), ea, 2, ireg::kT0, ireg::kT1);
            push(Value::makeInt(heap.loadU16(ea)));
            return finish();
          }
          case Op::BAload: {
            SimAddr arr;
            std::int32_t idx;
            arrayRefIndex(arr, idx);
            const SimAddr ea = heap.elemAddr(arr, idx);
            E.load(P, hpc(), ea, 1, ireg::kT0, ireg::kT1);
            push(Value::makeInt(
                static_cast<std::int8_t>(heap.loadU8(ea))));
            return finish();
          }
          case Op::IAstore: case Op::FAstore: case Op::AAstore: {
            const Value v = pop();
            SimAddr arr;
            std::int32_t idx;
            arrayRefIndex(arr, idx);
            const SimAddr ea = heap.elemAddr(arr, idx);
            E.store(P, hpc(), ea, 4, ireg::kT1, ireg::kT0);
            heap.storeU32(ea, v.slotBits());
            return finish();
          }
          case Op::CAstore: {
            const std::int32_t v = pop().asInt();
            SimAddr arr;
            std::int32_t idx;
            arrayRefIndex(arr, idx);
            const SimAddr ea = heap.elemAddr(arr, idx);
            E.store(P, hpc(), ea, 2, ireg::kT1, ireg::kT0);
            heap.storeU16(ea, static_cast<std::uint16_t>(v & 0xffff));
            return finish();
          }
          case Op::BAstore: {
            const std::int32_t v = pop().asInt();
            SimAddr arr;
            std::int32_t idx;
            arrayRefIndex(arr, idx);
            const SimAddr ea = heap.elemAddr(arr, idx);
            E.store(P, hpc(), ea, 1, ireg::kT1, ireg::kT0);
            heap.storeU8(ea, static_cast<std::uint8_t>(v & 0xff));
            return finish();
          }

          // --- synchronization ----------------------------------------------
          case Op::MonitorEnter: {
            Value ref = f.stack.back();
            checkNull(ref);
            if (!ctx_.sync.enter(thread.tid(), ref.asRef())) {
                thread.state = ThreadState::BlockedOnMonitor;
                StepResult r;
                r.action = StepAction::Blocked;
                return r;
            }
            pop();
            return finish();
          }
          case Op::MonitorExit: {
            Value ref = pop();
            checkNull(ref);
            ctx_.sync.exit(thread.tid(), ref.asRef());
            return finish();
          }

          // --- exceptions ------------------------------------------------------
          case Op::Athrow: {
            Value ref = f.stack.back();
            f.stack.pop_back();
            checkNull(ref);
            StepResult r;
            r.action = StepAction::Thrown;
            r.thrown = ref.asRef();
            return r;
          }

          // --- runtime services --------------------------------------------------
          case Op::Intrinsic: {
            operandLoad(1, 1);
            const IntrinsicId id =
                static_cast<IntrinsicId>(readU8(m.code, pc + 1));
            switch (id) {
              case IntrinsicId::PrintInt:
                ctx_.runtime.printInt(pop().asInt());
                break;
              case IntrinsicId::PrintChar:
                ctx_.runtime.printChar(pop().asInt());
                break;
              case IntrinsicId::FSqrt: {
                const float a = pop().asFloat();
                E.alu(P, hpc(), NKind::FpDiv, ireg::kT0, ireg::kT0);
                push(Value::makeFloat(std::sqrt(a)));
                break;
              }
              case IntrinsicId::FSin: {
                const float a = pop().asFloat();
                E.alu(P, hpc(), NKind::FpDiv, ireg::kT0, ireg::kT0);
                push(Value::makeFloat(std::sin(a)));
                break;
              }
              case IntrinsicId::FCos: {
                const float a = pop().asFloat();
                E.alu(P, hpc(), NKind::FpDiv, ireg::kT0, ireg::kT0);
                push(Value::makeFloat(std::cos(a)));
                break;
              }
              case IntrinsicId::ArrayCopy: {
                const std::int32_t len2 = pop().asInt();
                const std::int32_t dpos = pop().asInt();
                const SimAddr dst = pop().asRef();
                const std::int32_t spos = pop().asInt();
                const SimAddr src = pop().asRef();
                ctx_.runtime.arrayCopy(src, spos, dst, dpos, len2);
                break;
              }
              default:
                throw VmError("bad intrinsic");
            }
            return finish();
          }
          case Op::SpawnThread: {
            operandLoad(1, 2);
            const MethodId target = readU16(m.code, pc + 1);
            const Value arg = pop();
            const std::uint32_t tid =
                ctx_.services.spawnThread(target, arg);
            push(Value::makeInt(static_cast<std::int32_t>(tid)));
            return finish();
          }
          case Op::JoinThread: {
            const Value v = f.stack.back();
            const std::uint32_t target =
                static_cast<std::uint32_t>(v.asInt());
            if (!ctx_.services.threadDone(target)) {
                thread.state = ThreadState::Joining;
                thread.joinTarget = target;
                StepResult r;
                r.action = StepAction::Blocked;
                return r;
            }
            pop();
            return finish();
          }

          case Op::OpCount_:
            break;
        }
        throw VmError("invalid opcode in " + m.name);
    } catch (const GuestThrow &gt) {
        StepResult r;
        r.action = StepAction::Thrown;
        r.thrown = gt.ref;
        r.thrownName = gt.builtinName;
        return r;
    }
}

} // namespace jrs
