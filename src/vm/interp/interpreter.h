/**
 * @file
 * The switch-based bytecode interpreter.
 *
 * step() retires exactly one bytecode of the thread's top interpreter
 * frame: it performs the semantic action on real VM state and emits the
 * native instruction sequence a JDK-1.1.6-style interpreter would
 * execute for it (dispatch loads + indirect jump, operand-stack loads
 * and stores against the frame's simulated addresses, a loop-back
 * jump). See vm/interp/handler_model.h for the code layout.
 */
#ifndef JRS_VM_INTERP_INTERPRETER_H
#define JRS_VM_INTERP_INTERPRETER_H

#include <array>

#include "vm/engine/context.h"

namespace jrs {

/** One-bytecode-at-a-time interpreter stepper. */
class Interpreter {
  public:
    explicit Interpreter(VmContext &ctx) : ctx_(ctx) {}

    /**
     * Enable picoJava-style dispatch folding (paper Section 4.4): when
     * a simple push bytecode (constant/local load) falls through to
     * its successor, the pair is decoded as one superinstruction — the
     * second dispatch (opcode fetch, jump-table load and the
     * poorly-predicted indirect jump) is replaced by a single fused
     * decode op. Semantics are unchanged; only the emitted native
     * sequence shrinks.
     */
    void setFolding(bool enabled) { folding_ = enabled; }

    /** Dispatches eliminated by folding. */
    std::uint64_t foldedDispatches() const { return folded_; }

    /** Drop any armed fold (the engine calls this around OSR). */
    void clearFoldState() { foldBase_ = 0; }

    Interpreter(const Interpreter &) = delete;
    Interpreter &operator=(const Interpreter &) = delete;

    /**
     * Execute one bytecode of @p thread's top frame (which must be an
     * InterpFrame). Performs monitor acquisition first when the frame
     * has a pending synchronized-entry monitor.
     */
    StepResult step(VmThread &thread);

    /** Dynamic bytecode count retired so far. */
    std::uint64_t bytecodesRetired() const { return bytecodes_; }

    /**
     * Dynamic execution count per opcode — the data behind the
     * paper's Section 4.3 argument that a handful of bytecodes
     * dominate the stream (and hence the interpreter's I-locality).
     */
    const std::array<std::uint64_t, kNumOpcodes> &opCounts() const {
        return opCounts_;
    }

  private:
    StepResult doReturn(VmThread &thread, InterpFrame &f, bool has_value,
                        Value v);
    void emitDispatch(const InterpFrame &f, Op op);
    std::uint8_t slotArgc(std::uint16_t slot);

    VmContext &ctx_;
    std::uint64_t bytecodes_ = 0;
    std::vector<int> slotArgc_;  ///< vtable slot -> arg count (lazy)
    std::array<std::uint64_t, kNumOpcodes> opCounts_{};
    bool folding_ = false;
    std::uint64_t folded_ = 0;
    /** Fold arming: the next sequential bytecode of this frame was
     *  pre-decoded by the previous (foldable) one. */
    SimAddr foldBase_ = 0;
    std::uint32_t foldPc_ = 0;
};

} // namespace jrs

#endif // JRS_VM_INTERP_INTERPRETER_H
