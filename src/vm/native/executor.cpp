#include "vm/native/executor.h"

#include <cmath>
#include <cstring>

namespace jrs {

namespace {

/** Native-code stub target for a method (compiled or interpreter entry). */
SimAddr
callTargetOf(MethodId id)
{
    return stub::methodStubOf(id);
}

float
bitsToFloat(std::uint64_t raw)
{
    const std::uint32_t b = static_cast<std::uint32_t>(raw);
    float f;
    std::memcpy(&f, &b, sizeof(f));
    return f;
}

std::uint64_t
floatToBits(float f)
{
    std::uint32_t b;
    std::memcpy(&b, &f, sizeof(b));
    return b;
}

std::int64_t
sx32(std::uint64_t v)
{
    return static_cast<std::int64_t>(
        static_cast<std::int32_t>(static_cast<std::uint32_t>(v)));
}

} // namespace

StepResult
NativeExecutor::doReturn(VmThread &thread, NativeFrame &f,
                         const NativeInst &inst)
{
    StepResult r;
    r.action = StepAction::Returned;
    if (inst.rs1 != kNoReg) {
        r.hasValue = true;
        r.value = Value::fromRaw(f.regs[inst.rs1],
                                 tagOf(f.nm->src->returnType));
    }
    if (f.syncObj != 0 && !f.monitorPending)
        ctx_.sync.exit(thread.tid(), f.syncObj);
    ctx_.emitter.control(Phase::NativeExec, f.nm->pcOf(f.ip), NKind::Ret,
                         0);
    thread.frames.pop_back();
    thread.popFrameSpace();
    return r;
}

StepResult
NativeExecutor::step(VmThread &thread)
{
    NativeFrame &f = std::get<NativeFrame>(thread.frames.back());
    if (f.monitorPending) {
        if (!ctx_.sync.enter(thread.tid(), f.syncObj)) {
            StepResult r;
            r.action = StepAction::Blocked;
            return r;
        }
        f.monitorPending = false;
    }

    const NativeMethod &nm = *f.nm;
    const std::uint32_t ip = f.ip;
    const NativeInst inst = nm.code[ip];
    const SimAddr pc = nm.pcOf(ip);
    const Phase P = Phase::NativeExec;
    auto &E = ctx_.emitter;
    auto &heap = ctx_.heap;
    auto R = [&](std::uint8_t r) -> std::uint64_t & { return f.regs[r]; };

    ++insts_;

    StepResult cont;
    cont.action = StepAction::Continue;

    auto aluEv = [&](NKind kind = NKind::IntAlu) {
        E.alu(P, pc, kind, inst.rd, inst.rs1, inst.rs2);
    };
    auto intBin = [&](auto fn) {
        const std::int32_t a = static_cast<std::int32_t>(R(inst.rs1));
        const std::int32_t b = static_cast<std::int32_t>(R(inst.rs2));
        R(inst.rd) = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(fn(a, b)));
        aluEv();
    };
    auto fltBin = [&](auto fn, NKind kind) {
        const float a = bitsToFloat(R(inst.rs1));
        const float b = bitsToFloat(R(inst.rs2));
        R(inst.rd) = floatToBits(fn(a, b));
        aluEv(kind);
    };

    try {
        switch (inst.op) {
          case NOp::MovI:
            R(inst.rd) = inst.aux == 1
                ? static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(inst.imm))
                : static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(inst.imm));
            aluEv();
            break;
          case NOp::Mov:
            R(inst.rd) = R(inst.rs1);
            aluEv();
            break;
          case NOp::Add:
            intBin([](std::int32_t a, std::int32_t b) {
                return static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(a)
                    + static_cast<std::uint32_t>(b));
            });
            break;
          case NOp::Sub:
            intBin([](std::int32_t a, std::int32_t b) {
                return static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(a)
                    - static_cast<std::uint32_t>(b));
            });
            break;
          case NOp::Mul: {
            const std::int32_t a =
                static_cast<std::int32_t>(R(inst.rs1));
            const std::int32_t b =
                static_cast<std::int32_t>(R(inst.rs2));
            R(inst.rd) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int32_t>(
                    static_cast<std::int64_t>(a)
                    * static_cast<std::int64_t>(b))));
            aluEv(NKind::IntMul);
            break;
          }
          case NOp::Div: {
            const std::int32_t a =
                static_cast<std::int32_t>(R(inst.rs1));
            const std::int32_t b =
                static_cast<std::int32_t>(R(inst.rs2));
            aluEv(NKind::IntDiv);
            if (b == 0)
                ctx_.runtime.throwBuiltin(BuiltinEx::Arithmetic);
            R(inst.rd) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(
                    a == INT32_MIN && b == -1
                        ? a
                        : static_cast<std::int32_t>(a / b)));
            break;
          }
          case NOp::Rem: {
            const std::int32_t a =
                static_cast<std::int32_t>(R(inst.rs1));
            const std::int32_t b =
                static_cast<std::int32_t>(R(inst.rs2));
            aluEv(NKind::IntDiv);
            if (b == 0)
                ctx_.runtime.throwBuiltin(BuiltinEx::Arithmetic);
            R(inst.rd) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(
                    a == INT32_MIN && b == -1 ? 0 : a % b));
            break;
          }
          case NOp::And:
            intBin([](std::int32_t a, std::int32_t b) { return a & b; });
            break;
          case NOp::Or:
            intBin([](std::int32_t a, std::int32_t b) { return a | b; });
            break;
          case NOp::Xor:
            intBin([](std::int32_t a, std::int32_t b) { return a ^ b; });
            break;
          case NOp::Shl:
            intBin([](std::int32_t a, std::int32_t b) {
                return static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(a) << (b & 31));
            });
            break;
          case NOp::Shr:
            intBin([](std::int32_t a, std::int32_t b) {
                return a >> (b & 31);
            });
            break;
          case NOp::Ushr:
            intBin([](std::int32_t a, std::int32_t b) {
                return static_cast<std::int32_t>(
                    static_cast<std::uint32_t>(a) >> (b & 31));
            });
            break;
          case NOp::Neg:
            R(inst.rd) = static_cast<std::uint64_t>(
                -sx32(R(inst.rs1)));
            // Keep int32 wrap semantics for INT32_MIN.
            R(inst.rd) = static_cast<std::uint64_t>(sx32(R(inst.rd)));
            aluEv();
            break;
          case NOp::AddI:
            R(inst.rd) = static_cast<std::uint64_t>(
                sx32(static_cast<std::uint64_t>(
                    sx32(R(inst.rs1)) + inst.imm)));
            aluEv();
            break;
          case NOp::ShlI:
            R(inst.rd) = static_cast<std::uint64_t>(
                sx32(R(inst.rs1)) << inst.imm);
            aluEv();
            break;
          case NOp::AddP:
            R(inst.rd) = R(inst.rs1) + R(inst.rs2);
            aluEv();
            break;

          case NOp::FAdd:
            fltBin([](float a, float b) { return a + b; }, NKind::FpAlu);
            break;
          case NOp::FSub:
            fltBin([](float a, float b) { return a - b; }, NKind::FpAlu);
            break;
          case NOp::FMul:
            fltBin([](float a, float b) { return a * b; }, NKind::FpMul);
            break;
          case NOp::FDiv:
            fltBin([](float a, float b) { return a / b; }, NKind::FpDiv);
            break;
          case NOp::FNeg:
            R(inst.rd) = floatToBits(-bitsToFloat(R(inst.rs1)));
            aluEv(NKind::FpAlu);
            break;
          case NOp::FCmp: {
            const float a = bitsToFloat(R(inst.rs1));
            const float b = bitsToFloat(R(inst.rs2));
            std::int32_t r;
            if (std::isnan(a) || std::isnan(b))
                r = -1;
            else
                r = a < b ? -1 : (a > b ? 1 : 0);
            R(inst.rd) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(r));
            aluEv(NKind::FpAlu);
            break;
          }
          case NOp::FSqrt:
            R(inst.rd) = floatToBits(std::sqrt(bitsToFloat(R(inst.rs1))));
            aluEv(NKind::FpDiv);
            break;
          case NOp::FSin:
            R(inst.rd) = floatToBits(std::sin(bitsToFloat(R(inst.rs1))));
            aluEv(NKind::FpDiv);
            break;
          case NOp::FCos:
            R(inst.rd) = floatToBits(std::cos(bitsToFloat(R(inst.rs1))));
            aluEv(NKind::FpDiv);
            break;
          case NOp::I2F:
            R(inst.rd) = floatToBits(
                static_cast<float>(sx32(R(inst.rs1))));
            aluEv(NKind::FpAlu);
            break;
          case NOp::F2I: {
            const float a = bitsToFloat(R(inst.rs1));
            std::int32_t r;
            if (std::isnan(a))
                r = 0;
            else if (a >= 2147483647.0f)
                r = INT32_MAX;
            else if (a <= -2147483648.0f)
                r = INT32_MIN;
            else
                r = static_cast<std::int32_t>(a);
            R(inst.rd) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(r));
            aluEv(NKind::FpAlu);
            break;
          }
          case NOp::I2C:
            R(inst.rd) = R(inst.rs1) & 0xffffu;
            aluEv();
            break;
          case NOp::I2B:
            R(inst.rd) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int8_t>(
                    R(inst.rs1) & 0xffu)));
            aluEv();
            break;

          case NOp::Ld: {
            const SimAddr a = R(inst.rs1) + inst.imm;
            R(inst.rd) = static_cast<std::uint64_t>(
                sx32(heap.loadU32(a)));
            E.load(P, pc, a, 4, inst.rd, inst.rs1);
            break;
          }
          case NOp::LdU16: {
            const SimAddr a = R(inst.rs1) + inst.imm;
            R(inst.rd) = heap.loadU16(a);
            E.load(P, pc, a, 2, inst.rd, inst.rs1);
            break;
          }
          case NOp::LdS8: {
            const SimAddr a = R(inst.rs1) + inst.imm;
            R(inst.rd) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(
                    static_cast<std::int8_t>(heap.loadU8(a))));
            E.load(P, pc, a, 1, inst.rd, inst.rs1);
            break;
          }
          case NOp::St: {
            const SimAddr a = R(inst.rs1) + inst.imm;
            heap.storeU32(a, static_cast<std::uint32_t>(R(inst.rs2)));
            E.store(P, pc, a, 4, inst.rs1, inst.rs2);
            break;
          }
          case NOp::St16: {
            const SimAddr a = R(inst.rs1) + inst.imm;
            heap.storeU16(a, static_cast<std::uint16_t>(R(inst.rs2)));
            E.store(P, pc, a, 2, inst.rs1, inst.rs2);
            break;
          }
          case NOp::St8: {
            const SimAddr a = R(inst.rs1) + inst.imm;
            heap.storeU8(a, static_cast<std::uint8_t>(R(inst.rs2)));
            E.store(P, pc, a, 1, inst.rs1, inst.rs2);
            break;
          }
          case NOp::LdRef: {
            const SimAddr a = R(inst.rs1) + inst.imm;
            const std::uint32_t off = heap.loadU32(a);
            R(inst.rd) = off == 0 ? 0 : seg::kHeap + off;
            E.load(P, pc, a, 4, inst.rd, inst.rs1);
            break;
          }
          case NOp::StRef: {
            const SimAddr a = R(inst.rs1) + inst.imm;
            const std::uint64_t v = R(inst.rs2);
            // Mirror the interpreter's PutFieldA: the store-time ref
            // bitmap is what the collectors and live digest trace by.
            heap.storeSlot(a,
                           v == 0 ? 0u
                                  : static_cast<std::uint32_t>(
                                        v - seg::kHeap),
                           true);
            E.store(P, pc, a, 4, inst.rs1, inst.rs2);
            break;
          }
          case NOp::LdSpill:
            R(inst.rd) = f.spills[static_cast<std::size_t>(inst.imm)];
            E.load(P, pc, f.spillAddr(
                              static_cast<std::uint16_t>(inst.imm)),
                   4, inst.rd);
            break;
          case NOp::StSpill:
            f.spills[static_cast<std::size_t>(inst.imm)] = R(inst.rs1);
            E.store(P, pc, f.spillAddr(
                               static_cast<std::uint16_t>(inst.imm)),
                    4, kNoReg, inst.rs1);
            break;
          case NOp::LdStr:
            R(inst.rd) = ctx_.registry.stringRef(
                static_cast<std::uint16_t>(inst.imm));
            E.load(P, pc,
                   seg::kClassData + 0x0400'0000ull + 4ull * inst.imm, 4,
                   inst.rd);
            break;
          case NOp::LdStatic: {
            const std::uint16_t slot =
                static_cast<std::uint16_t>(inst.imm);
            R(inst.rd) = ctx_.registry.getStatic(slot).raw();
            E.load(P, pc, ClassRegistry::staticAddr(slot), 4, inst.rd);
            break;
          }
          case NOp::StStatic: {
            const std::uint16_t slot =
                static_cast<std::uint16_t>(inst.imm);
            const VType t =
                ctx_.registry.program().statics[slot].type;
            ctx_.registry.setStatic(
                slot, Value::fromRaw(R(inst.rs1), tagOf(t)));
            E.store(P, pc, ClassRegistry::staticAddr(slot), 4, kNoReg,
                    inst.rs1);
            break;
          }

          case NOp::Br: {
            const std::int64_t a = static_cast<std::int64_t>(R(inst.rs1));
            const std::int64_t b = inst.rs2 == kNoReg
                ? 0
                : static_cast<std::int64_t>(R(inst.rs2));
            bool taken = false;
            switch (static_cast<NCond>(inst.aux)) {
              case NCond::Eq: taken = a == b; break;
              case NCond::Ne: taken = a != b; break;
              case NCond::Lt: taken = a < b; break;
              case NCond::Ge: taken = a >= b; break;
              case NCond::Gt: taken = a > b; break;
              case NCond::Le: taken = a <= b; break;
            }
            E.branch(P, pc,
                     nm.pcOf(static_cast<std::uint32_t>(inst.imm)),
                     taken, inst.rs1, inst.rs2);
            f.ip = taken ? static_cast<std::uint32_t>(inst.imm) : ip + 1;
            return cont;
          }
          case NOp::Jmp:
            E.control(P, pc, NKind::Jump,
                      nm.pcOf(static_cast<std::uint32_t>(inst.imm)));
            f.ip = static_cast<std::uint32_t>(inst.imm);
            return cont;
          case NOp::JmpTbl: {
            const auto &table =
                nm.jumpTables[static_cast<std::size_t>(inst.imm)];
            const std::uint64_t idx = R(inst.rs1);
            if (idx >= table.size())
                throw VmError("jmptbl index out of range");
            // The table itself lives just past the method's code.
            const SimAddr tbl_addr = nm.codeBase
                + 4ull * nm.code.size() + 64ull * inst.imm + 4ull * idx;
            E.load(P, pc, tbl_addr, 4, kScratch0, inst.rs1);
            E.control(P, pc + 4, NKind::IndirectJump,
                      nm.pcOf(table[static_cast<std::size_t>(idx)]),
                      kScratch0);
            f.ip = table[static_cast<std::size_t>(idx)];
            return cont;
          }
          case NOp::BndChk: {
            const std::uint32_t idx =
                static_cast<std::uint32_t>(R(inst.rs1));
            const std::uint32_t len =
                static_cast<std::uint32_t>(R(inst.rs2));
            const bool bad = idx >= len;
            E.branch(P, pc, pc + 8, bad, inst.rs1, inst.rs2);
            if (bad)
                ctx_.runtime.throwBuiltin(
                    BuiltinEx::ArrayIndexOutOfBounds);
            break;
          }
          case NOp::NullChk: {
            const bool bad = R(inst.rs1) == 0;
            E.branch(P, pc, pc + 8, bad, inst.rs1);
            if (bad)
                ctx_.runtime.throwBuiltin(BuiltinEx::NullPointer);
            break;
          }

          case NOp::CallStatic:
          case NOp::CallSpecial: {
            const MethodId target =
                static_cast<MethodId>(inst.imm);
            E.control(P, pc, NKind::Call, callTargetOf(target));
            const Method &callee = ctx_.registry.method(target);
            Value args[256];
            for (std::uint8_t i = 0; i < inst.aux; ++i) {
                args[i] = Value::fromRaw(
                    R(static_cast<std::uint8_t>(kArgRegBase + i)),
                    tagOf(callee.argTypes[i]));
            }
            f.ip = ip + 1;
            ctx_.services.invokeMethod(thread, target, args, inst.aux);
            StepResult r;
            r.action = StepAction::Invoked;
            return r;
          }
          case NOp::CallVirtual: {
            const std::uint16_t slot =
                static_cast<std::uint16_t>(inst.imm);
            const SimAddr recv = R(kArgRegBase);
            if (recv == 0)
                ctx_.runtime.throwBuiltin(BuiltinEx::NullPointer);
            const ClassId cls = heap.klassOf(recv);
            // Header load + vtable load + register-indirect call.
            E.load(P, pc, recv, 4, kScratch0, kArgRegBase);
            E.load(P, pc + 4,
                   ctx_.registry.vtableEntryAddr(cls, slot), 4,
                   kScratch0, kScratch0);
            const MethodId target =
                ctx_.registry.virtualLookup(cls, slot);
            E.control(P, pc + 8, NKind::IndirectCall,
                      callTargetOf(target), kScratch0);
            const Method &callee = ctx_.registry.method(target);
            Value args[256];
            for (std::uint8_t i = 0; i < inst.aux; ++i) {
                args[i] = Value::fromRaw(
                    R(static_cast<std::uint8_t>(kArgRegBase + i)),
                    tagOf(callee.argTypes[i]));
            }
            f.ip = ip + 1;
            ctx_.services.invokeMethod(thread, target, args, inst.aux);
            StepResult r;
            r.action = StepAction::Invoked;
            return r;
          }
          case NOp::Ret:
            return doReturn(thread, f, inst);

          case NOp::New: {
            const SimAddr obj = ctx_.runtime.newObject(
                static_cast<ClassId>(inst.imm));
            R(inst.rd) = obj;
            break;
          }
          case NOp::NewArr: {
            const std::int32_t len =
                static_cast<std::int32_t>(R(inst.rs1));
            const SimAddr arr = ctx_.runtime.newArray(
                static_cast<ArrayKind>(inst.aux), len);
            R(inst.rd) = arr;
            break;
          }
          case NOp::ArrLen: {
            const SimAddr a = R(inst.rs1) + 8;
            R(inst.rd) = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(heap.arrayLength(R(inst.rs1))));
            E.load(P, pc, a, 4, inst.rd, inst.rs1);
            break;
          }
          case NOp::MonEnter:
            if (!ctx_.sync.enter(thread.tid(), R(inst.rs1))) {
                thread.state = ThreadState::BlockedOnMonitor;
                StepResult r;
                r.action = StepAction::Blocked;
                return r;
            }
            break;
          case NOp::MonExit:
            ctx_.sync.exit(thread.tid(), R(inst.rs1));
            break;
          case NOp::Throw: {
            if (R(inst.rs1) == 0)
                ctx_.runtime.throwBuiltin(BuiltinEx::NullPointer);
            StepResult r;
            r.action = StepAction::Thrown;
            r.thrown = R(inst.rs1);
            return r;
          }

          case NOp::Intrin:
            switch (static_cast<IntrinsicId>(inst.imm)) {
              case IntrinsicId::PrintInt:
                ctx_.runtime.printInt(
                    static_cast<std::int32_t>(R(inst.rs1)));
                break;
              case IntrinsicId::PrintChar:
                ctx_.runtime.printChar(
                    static_cast<std::int32_t>(R(inst.rs1)));
                break;
              case IntrinsicId::FSqrt:
                R(inst.rd) =
                    floatToBits(std::sqrt(bitsToFloat(R(inst.rs1))));
                aluEv(NKind::FpDiv);
                break;
              case IntrinsicId::FSin:
                R(inst.rd) =
                    floatToBits(std::sin(bitsToFloat(R(inst.rs1))));
                aluEv(NKind::FpDiv);
                break;
              case IntrinsicId::FCos:
                R(inst.rd) =
                    floatToBits(std::cos(bitsToFloat(R(inst.rs1))));
                aluEv(NKind::FpDiv);
                break;
              default:
                throw VmError("bad intrinsic in native code");
            }
            break;
          case NOp::ArrCopy:
            ctx_.runtime.arrayCopy(
                R(kArgRegBase),
                static_cast<std::int32_t>(R(kArgRegBase + 1)),
                R(kArgRegBase + 2),
                static_cast<std::int32_t>(R(kArgRegBase + 3)),
                static_cast<std::int32_t>(R(kArgRegBase + 4)));
            break;
          case NOp::Spawn: {
            const std::uint32_t tid = ctx_.services.spawnThread(
                static_cast<MethodId>(inst.imm),
                Value::makeInt(static_cast<std::int32_t>(R(inst.rs1))));
            R(inst.rd) = tid;
            break;
          }
          case NOp::Join:
            if (!ctx_.services.threadDone(
                    static_cast<std::uint32_t>(R(inst.rs1)))) {
                thread.state = ThreadState::Joining;
                thread.joinTarget =
                    static_cast<std::uint32_t>(R(inst.rs1));
                StepResult r;
                r.action = StepAction::Blocked;
                return r;
            }
            break;
        }
    } catch (const GuestThrow &gt) {
        StepResult r;
        r.action = StepAction::Thrown;
        r.thrown = gt.ref;
        r.thrownName = gt.builtinName;
        return r;
    }

    // Classify the destination register for precise GC roots: native
    // registers are untyped u64s, so every write records whether the
    // result is a reference. AddP results (interior pointers) are
    // deliberately non-ref — they are consumed by the next memory op
    // and never live across an allocation.
    switch (inst.op) {
      case NOp::LdRef:
      case NOp::LdStr:
      case NOp::New:
      case NOp::NewArr:
        f.setRegRef(inst.rd, true);
        break;
      case NOp::Mov:
        f.setRegRef(inst.rd, f.regIsRef(inst.rs1));
        break;
      case NOp::LdSpill:
        f.setRegRef(inst.rd,
                    f.spillRefs[static_cast<std::size_t>(inst.imm)]);
        break;
      case NOp::StSpill:
        f.spillRefs[static_cast<std::size_t>(inst.imm)] =
            f.regIsRef(inst.rs1);
        break;
      case NOp::LdStatic:
        f.setRegRef(inst.rd,
                    tagOf(ctx_.registry.program()
                              .statics[static_cast<std::uint16_t>(
                                  inst.imm)]
                              .type)
                        == Tag::Ref);
        break;
      default:
        if (inst.rd != kNoReg)
            f.setRegRef(inst.rd, false);
        break;
    }

    f.ip = ip + 1;
    return cont;
}

} // namespace jrs
