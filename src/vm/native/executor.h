/**
 * @file
 * Executor for JIT-generated native code.
 *
 * Interprets NativeInst sequences with real semantics over the shared
 * heap (this is our "hardware"), emitting one NativeExec-phase
 * TraceEvent per instruction — plus the short expansions real code
 * performs for virtual dispatch (object-header load, vtable load,
 * register-indirect call) and runtime calls.
 */
#ifndef JRS_VM_NATIVE_EXECUTOR_H
#define JRS_VM_NATIVE_EXECUTOR_H

#include "vm/engine/context.h"

namespace jrs {

/** Tag corresponding to a declared value type. */
inline Tag
tagOf(VType t)
{
    switch (t) {
      case VType::Float: return Tag::Float;
      case VType::Ref:   return Tag::Ref;
      default:           return Tag::Int;
    }
}

/** One-native-instruction-at-a-time stepper. */
class NativeExecutor {
  public:
    explicit NativeExecutor(VmContext &ctx) : ctx_(ctx) {}

    NativeExecutor(const NativeExecutor &) = delete;
    NativeExecutor &operator=(const NativeExecutor &) = delete;

    /**
     * Execute one native instruction of @p thread's top frame (which
     * must be a NativeFrame).
     */
    StepResult step(VmThread &thread);

    /** Dynamic native instructions retired (excluding expansions). */
    std::uint64_t instsRetired() const { return insts_; }

  private:
    StepResult doReturn(VmThread &thread, NativeFrame &f,
                        const NativeInst &inst);

    VmContext &ctx_;
    std::uint64_t insts_ = 0;
};

} // namespace jrs

#endif // JRS_VM_NATIVE_EXECUTOR_H
