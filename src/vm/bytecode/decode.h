/**
 * @file
 * Little-endian operand decoding helpers shared by the interpreter,
 * the JIT translator, the disassembler and the verifier.
 */
#ifndef JRS_VM_BYTECODE_DECODE_H
#define JRS_VM_BYTECODE_DECODE_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace jrs {

/** Read an unsigned byte at @p at. */
inline std::uint8_t
readU8(const std::vector<std::uint8_t> &code, std::uint32_t at)
{
    return code[at];
}

/** Read a signed byte at @p at. */
inline std::int8_t
readS8(const std::vector<std::uint8_t> &code, std::uint32_t at)
{
    return static_cast<std::int8_t>(code[at]);
}

/** Read an unsigned 16-bit little-endian value at @p at. */
inline std::uint16_t
readU16(const std::vector<std::uint8_t> &code, std::uint32_t at)
{
    return static_cast<std::uint16_t>(code[at])
        | static_cast<std::uint16_t>(code[at + 1]) << 8;
}

/** Read a signed 16-bit little-endian value at @p at. */
inline std::int16_t
readS16(const std::vector<std::uint8_t> &code, std::uint32_t at)
{
    return static_cast<std::int16_t>(readU16(code, at));
}

/** Read a signed 32-bit little-endian value at @p at. */
inline std::int32_t
readS32(const std::vector<std::uint8_t> &code, std::uint32_t at)
{
    std::uint32_t v = static_cast<std::uint32_t>(code[at])
        | static_cast<std::uint32_t>(code[at + 1]) << 8
        | static_cast<std::uint32_t>(code[at + 2]) << 16
        | static_cast<std::uint32_t>(code[at + 3]) << 24;
    return static_cast<std::int32_t>(v);
}

/** Read a 32-bit float (raw IEEE bits, little-endian) at @p at. */
inline float
readF32(const std::vector<std::uint8_t> &code, std::uint32_t at)
{
    std::int32_t bits = readS32(code, at);
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

} // namespace jrs

#endif // JRS_VM_BYTECODE_DECODE_H
