/**
 * @file
 * Typed bytecode verifier.
 *
 * The structural pass in the assembler only checks stack *depths*; this
 * verifier performs the JVM verifier's dataflow with a type lattice:
 *
 *       Top (unknown / conflict)
 *      /   |   \
 *    Int Float Ref
 *              |
 *            Null
 *
 * Every reachable instruction is checked against typed stack and local
 * states; states merge at control-flow joins (Ref ∨ Null = Ref;
 * anything else unequal = Top, which no instruction may consume).
 * Locals start as declared argument types, with non-argument slots
 * Top-but-writable (the VM zero-initializes them, but a typed read
 * before a typed write is almost always a workload bug, so reads of
 * never-written slots are permitted only via the matching typed load).
 *
 * ProgramBuilder::finish runs this on every method; a violation throws
 * VerifyError at assembly time — long before a tagged-Value assertion
 * could trip inside the interpreter.
 */
#ifndef JRS_VM_BYTECODE_VERIFIER_H
#define JRS_VM_BYTECODE_VERIFIER_H

#include <stdexcept>
#include <string>

#include "vm/bytecode/class_def.h"

namespace jrs {

/** Thrown when a method fails type verification. */
class VerifyError : public std::runtime_error {
  public:
    explicit VerifyError(const std::string &what)
        : std::runtime_error("verify: " + what) {}
};

/** Verification type lattice. */
enum class VTy : std::uint8_t {
    Top,    ///< unknown / merge conflict — unusable
    Int,
    Float,
    Ref,
    Null,   ///< aconst_null: a Ref assignable to any Ref slot
};

/** Printable lattice element name. */
const char *vtyName(VTy t);

/** Lattice join of two types. */
VTy joinVTy(VTy a, VTy b);

/** Verify one method of a resolved program. Throws VerifyError. */
void verifyMethod(const Method &m, const Program &prog);

/** Verify every method. Throws VerifyError on the first failure. */
void verifyProgram(const Program &prog);

} // namespace jrs

#endif // JRS_VM_BYTECODE_VERIFIER_H
