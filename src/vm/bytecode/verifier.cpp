#include "vm/bytecode/verifier.h"

#include <deque>
#include <vector>

#include "vm/bytecode/decode.h"
#include "vm/bytecode/opcode.h"

namespace jrs {

const char *
vtyName(VTy t)
{
    switch (t) {
      case VTy::Top:   return "top";
      case VTy::Int:   return "int";
      case VTy::Float: return "float";
      case VTy::Ref:   return "ref";
      case VTy::Null:  return "null";
    }
    return "?";
}

VTy
joinVTy(VTy a, VTy b)
{
    if (a == b)
        return a;
    const bool a_ref = a == VTy::Ref || a == VTy::Null;
    const bool b_ref = b == VTy::Ref || b == VTy::Null;
    if (a_ref && b_ref)
        return VTy::Ref;
    return VTy::Top;
}

namespace {

VTy
vtyOf(VType t)
{
    switch (t) {
      case VType::Float: return VTy::Float;
      case VType::Ref:   return VTy::Ref;
      default:           return VTy::Int;
    }
}

bool
isRefLike(VTy t)
{
    return t == VTy::Ref || t == VTy::Null;
}

/** Typed machine state at one instruction boundary. */
struct State {
    std::vector<VTy> locals;
    std::vector<VTy> stack;

    bool operator==(const State &o) const {
        return locals == o.locals && stack == o.stack;
    }
};

/** Per-method verification context. */
class MethodVerifier {
  public:
    MethodVerifier(const Method &m, const Program &prog)
        : m_(m), prog_(prog), states_(m.code.size()) {}

    void run();

  private:
    [[noreturn]] void fail(std::uint32_t pc, const std::string &msg) {
        throw VerifyError(m_.name + " @" + std::to_string(pc) + " ("
                          + opName(m_.opAt(pc)) + "): " + msg);
    }

    VTy pop(std::uint32_t pc, State &s) {
        if (s.stack.empty())
            fail(pc, "typed stack underflow");
        const VTy t = s.stack.back();
        s.stack.pop_back();
        return t;
    }
    void expect(std::uint32_t pc, State &s, VTy want) {
        const VTy got = pop(pc, s);
        const bool ok = want == VTy::Ref ? isRefLike(got) : got == want;
        if (!ok) {
            fail(pc, std::string("expected ") + vtyName(want) + ", got "
                         + vtyName(got));
        }
    }
    void push(VTy t, State &s) { s.stack.push_back(t); }

    VTy localAt(std::uint32_t pc, const State &s, std::uint32_t slot) {
        if (slot >= s.locals.size())
            fail(pc, "local slot out of range");
        return s.locals[slot];
    }

    void flow(std::uint32_t pc, State s);  ///< transfer + propagate
    void propagate(std::uint32_t pc, std::uint32_t target,
                   const State &s);
    void propagateToHandlers(std::uint32_t pc, const State &s);

    const Method &m_;
    const Program &prog_;
    std::vector<State> states_;  ///< empty locals == not yet visited
    std::deque<std::uint32_t> work_;
};

void
MethodVerifier::propagate(std::uint32_t pc, std::uint32_t target,
                          const State &s)
{
    if (target >= m_.code.size())
        fail(pc, "control transfer out of range");
    State &dst = states_[target];
    if (dst.locals.empty()) {
        dst = s;
        work_.push_back(target);
        return;
    }
    if (dst.stack.size() != s.stack.size())
        fail(pc, "typed stack depth mismatch at merge");
    bool changed = false;
    for (std::size_t i = 0; i < s.stack.size(); ++i) {
        const VTy j = joinVTy(dst.stack[i], s.stack[i]);
        if (j != dst.stack[i]) {
            dst.stack[i] = j;
            changed = true;
        }
    }
    for (std::size_t i = 0; i < s.locals.size(); ++i) {
        const VTy j = joinVTy(dst.locals[i], s.locals[i]);
        if (j != dst.locals[i]) {
            dst.locals[i] = j;
            changed = true;
        }
    }
    if (changed)
        work_.push_back(target);
}

void
MethodVerifier::propagateToHandlers(std::uint32_t pc, const State &s)
{
    for (const ExceptionEntry &h : m_.handlers) {
        if (pc < h.startPc || pc >= h.endPc)
            continue;
        State hs;
        hs.locals = s.locals;
        hs.stack = {VTy::Ref};  // the thrown exception
        propagate(pc, h.handlerPc, hs);
    }
}

void
MethodVerifier::flow(std::uint32_t pc, State s)
{
    const Op op = m_.opAt(pc);
    const std::uint32_t len = instrLength(m_.code, pc);
    const std::uint32_t next = pc + len;
    const auto &code = m_.code;

    // Anything that can raise propagates its pre-state to handlers;
    // doing it unconditionally for every covered pc is conservative
    // and matches the JVM spec's "any point in the range".
    propagateToHandlers(pc, s);

    auto fallthrough = [&]() { propagate(pc, next, s); };
    auto branch_to = [&](std::uint32_t target) {
        propagate(pc, target, s);
    };
    auto rel16 = [&]() {
        return pc + static_cast<std::uint32_t>(readS16(code, pc + 1));
    };

    switch (op) {
      case Op::Nop:
        fallthrough();
        return;

      case Op::Iconst8:
      case Op::Iconst32:
        push(VTy::Int, s);
        fallthrough();
        return;
      case Op::Fconst:
        push(VTy::Float, s);
        fallthrough();
        return;
      case Op::AconstNull:
        push(VTy::Null, s);
        fallthrough();
        return;
      case Op::LdcStr:
        push(VTy::Ref, s);
        fallthrough();
        return;

      case Op::Iload:
      case Op::Fload:
      case Op::Aload: {
        const std::uint32_t slot = readU8(code, pc + 1);
        const VTy have = localAt(pc, s, slot);
        const VTy want = op == Op::Iload
            ? VTy::Int
            : (op == Op::Fload ? VTy::Float : VTy::Ref);
        const bool ok =
            want == VTy::Ref ? isRefLike(have) : have == want;
        if (!ok) {
            fail(pc, std::string("local ") + std::to_string(slot)
                         + " holds " + vtyName(have));
        }
        push(have == VTy::Null ? VTy::Null : want, s);
        fallthrough();
        return;
      }
      case Op::Istore:
      case Op::Fstore:
      case Op::Astore: {
        const std::uint32_t slot = readU8(code, pc + 1);
        if (slot >= s.locals.size())
            fail(pc, "local slot out of range");
        const VTy want = op == Op::Istore
            ? VTy::Int
            : (op == Op::Fstore ? VTy::Float : VTy::Ref);
        const VTy got = pop(pc, s);
        const bool ok =
            want == VTy::Ref ? isRefLike(got) : got == want;
        if (!ok)
            fail(pc, std::string("cannot store ") + vtyName(got));
        s.locals[slot] = got == VTy::Null ? VTy::Null : want;
        fallthrough();
        return;
      }
      case Op::Iinc: {
        const std::uint32_t slot = readU8(code, pc + 1);
        if (localAt(pc, s, slot) != VTy::Int)
            fail(pc, "iinc of non-int local");
        fallthrough();
        return;
      }

      case Op::Pop:
        if (pop(pc, s) == VTy::Top)
            fail(pc, "pop of merge conflict");
        fallthrough();
        return;
      case Op::Dup: {
        if (s.stack.empty())
            fail(pc, "dup on empty stack");
        push(s.stack.back(), s);
        fallthrough();
        return;
      }
      case Op::DupX1: {
        const VTy b = pop(pc, s);
        const VTy a = pop(pc, s);
        push(b, s);
        push(a, s);
        push(b, s);
        fallthrough();
        return;
      }
      case Op::Swap: {
        const VTy b = pop(pc, s);
        const VTy a = pop(pc, s);
        push(b, s);
        push(a, s);
        fallthrough();
        return;
      }

      case Op::Iadd: case Op::Isub: case Op::Imul: case Op::Idiv:
      case Op::Irem: case Op::Ishl: case Op::Ishr: case Op::Iushr:
      case Op::Iand: case Op::Ior: case Op::Ixor:
        expect(pc, s, VTy::Int);
        expect(pc, s, VTy::Int);
        push(VTy::Int, s);
        fallthrough();
        return;
      case Op::Ineg:
      case Op::I2c:
      case Op::I2b:
        expect(pc, s, VTy::Int);
        push(VTy::Int, s);
        fallthrough();
        return;
      case Op::Fadd: case Op::Fsub: case Op::Fmul: case Op::Fdiv:
        expect(pc, s, VTy::Float);
        expect(pc, s, VTy::Float);
        push(VTy::Float, s);
        fallthrough();
        return;
      case Op::Fneg:
        expect(pc, s, VTy::Float);
        push(VTy::Float, s);
        fallthrough();
        return;
      case Op::Fcmpl:
        expect(pc, s, VTy::Float);
        expect(pc, s, VTy::Float);
        push(VTy::Int, s);
        fallthrough();
        return;
      case Op::I2f:
        expect(pc, s, VTy::Int);
        push(VTy::Float, s);
        fallthrough();
        return;
      case Op::F2i:
        expect(pc, s, VTy::Float);
        push(VTy::Int, s);
        fallthrough();
        return;

      case Op::Goto:
        branch_to(rel16());
        return;
      case Op::Ifeq: case Op::Ifne: case Op::Iflt:
      case Op::Ifge: case Op::Ifgt: case Op::Ifle:
        expect(pc, s, VTy::Int);
        branch_to(rel16());
        fallthrough();
        return;
      case Op::IfIcmpeq: case Op::IfIcmpne: case Op::IfIcmplt:
      case Op::IfIcmpge: case Op::IfIcmpgt: case Op::IfIcmple:
        expect(pc, s, VTy::Int);
        expect(pc, s, VTy::Int);
        branch_to(rel16());
        fallthrough();
        return;
      case Op::IfAcmpeq: case Op::IfAcmpne:
        expect(pc, s, VTy::Ref);
        expect(pc, s, VTy::Ref);
        branch_to(rel16());
        fallthrough();
        return;
      case Op::Ifnull: case Op::Ifnonnull:
        expect(pc, s, VTy::Ref);
        branch_to(rel16());
        fallthrough();
        return;

      case Op::TableSwitch: {
        expect(pc, s, VTy::Int);
        branch_to(pc + static_cast<std::uint32_t>(
                           readS16(code, pc + 1)));
        const std::uint16_t count = readU16(code, pc + 7);
        for (std::uint16_t i = 0; i < count; ++i) {
            branch_to(pc + static_cast<std::uint32_t>(
                               readS16(code, pc + 9 + 2u * i)));
        }
        return;
      }
      case Op::LookupSwitch: {
        expect(pc, s, VTy::Int);
        branch_to(pc + static_cast<std::uint32_t>(
                           readS16(code, pc + 1)));
        const std::uint16_t n = readU16(code, pc + 3);
        for (std::uint16_t i = 0; i < n; ++i) {
            branch_to(pc + static_cast<std::uint32_t>(
                               readS16(code, pc + 5 + 6u * i + 4)));
        }
        return;
      }

      case Op::InvokeStatic:
      case Op::InvokeSpecial:
      case Op::InvokeVirtual: {
        const Method *callee;
        if (op == Op::InvokeVirtual) {
            const std::uint16_t slot = readU16(code, pc + 1);
            callee = nullptr;
            for (const auto &c : prog_.classes) {
                if (slot < c.vtable.size()
                    && c.vtable[slot] != kNoMethod) {
                    callee = &prog_.methods[c.vtable[slot]];
                    break;
                }
            }
            if (callee == nullptr)
                fail(pc, "unresolvable vtable slot");
        } else {
            const MethodId id = readU16(code, pc + 1);
            if (id >= prog_.methods.size())
                fail(pc, "bad method id");
            callee = &prog_.methods[id];
        }
        for (int i = callee->numArgs - 1; i >= 0; --i)
            expect(pc, s, vtyOf(callee->argTypes[i]));
        if (callee->returnType != VType::Void)
            push(vtyOf(callee->returnType), s);
        fallthrough();
        return;
      }
      case Op::ReturnVoid:
        if (m_.returnType != VType::Void)
            fail(pc, "void return from value-returning method");
        return;
      case Op::Ireturn:
        if (m_.returnType != VType::Int)
            fail(pc, "ireturn type mismatch");
        expect(pc, s, VTy::Int);
        return;
      case Op::Freturn:
        if (m_.returnType != VType::Float)
            fail(pc, "freturn type mismatch");
        expect(pc, s, VTy::Float);
        return;
      case Op::Areturn:
        if (m_.returnType != VType::Ref)
            fail(pc, "areturn type mismatch");
        expect(pc, s, VTy::Ref);
        return;

      case Op::GetFieldI:
      case Op::GetFieldF:
      case Op::GetFieldA:
        expect(pc, s, VTy::Ref);
        push(op == Op::GetFieldI
                 ? VTy::Int
                 : (op == Op::GetFieldF ? VTy::Float : VTy::Ref),
             s);
        fallthrough();
        return;
      case Op::PutFieldI:
      case Op::PutFieldF:
      case Op::PutFieldA:
        expect(pc, s,
               op == Op::PutFieldI
                   ? VTy::Int
                   : (op == Op::PutFieldF ? VTy::Float : VTy::Ref));
        expect(pc, s, VTy::Ref);
        fallthrough();
        return;

      case Op::GetStaticI:
      case Op::GetStaticF:
      case Op::GetStaticA: {
        const std::uint16_t slot = readU16(code, pc + 1);
        if (slot >= prog_.statics.size())
            fail(pc, "bad static slot");
        const VTy declared = vtyOf(prog_.statics[slot].type);
        const VTy accessed = op == Op::GetStaticI
            ? VTy::Int
            : (op == Op::GetStaticF ? VTy::Float : VTy::Ref);
        if (declared != accessed)
            fail(pc, "static type mismatch");
        push(accessed, s);
        fallthrough();
        return;
      }
      case Op::PutStaticI:
      case Op::PutStaticF:
      case Op::PutStaticA: {
        const std::uint16_t slot = readU16(code, pc + 1);
        if (slot >= prog_.statics.size())
            fail(pc, "bad static slot");
        const VTy declared = vtyOf(prog_.statics[slot].type);
        const VTy accessed = op == Op::PutStaticI
            ? VTy::Int
            : (op == Op::PutStaticF ? VTy::Float : VTy::Ref);
        if (declared != accessed)
            fail(pc, "static type mismatch");
        expect(pc, s, accessed);
        fallthrough();
        return;
      }

      case Op::New:
        if (readU16(code, pc + 1) >= prog_.classes.size())
            fail(pc, "bad class id");
        push(VTy::Ref, s);
        fallthrough();
        return;
      case Op::NewArray:
        expect(pc, s, VTy::Int);
        push(VTy::Ref, s);
        fallthrough();
        return;
      case Op::ArrayLength:
        expect(pc, s, VTy::Ref);
        push(VTy::Int, s);
        fallthrough();
        return;

      case Op::IAload: case Op::CAload: case Op::BAload:
        expect(pc, s, VTy::Int);
        expect(pc, s, VTy::Ref);
        push(VTy::Int, s);
        fallthrough();
        return;
      case Op::FAload:
        expect(pc, s, VTy::Int);
        expect(pc, s, VTy::Ref);
        push(VTy::Float, s);
        fallthrough();
        return;
      case Op::AAload:
        expect(pc, s, VTy::Int);
        expect(pc, s, VTy::Ref);
        push(VTy::Ref, s);
        fallthrough();
        return;
      case Op::IAstore: case Op::CAstore: case Op::BAstore:
        expect(pc, s, VTy::Int);
        expect(pc, s, VTy::Int);
        expect(pc, s, VTy::Ref);
        fallthrough();
        return;
      case Op::FAstore:
        expect(pc, s, VTy::Float);
        expect(pc, s, VTy::Int);
        expect(pc, s, VTy::Ref);
        fallthrough();
        return;
      case Op::AAstore:
        expect(pc, s, VTy::Ref);
        expect(pc, s, VTy::Int);
        expect(pc, s, VTy::Ref);
        fallthrough();
        return;

      case Op::MonitorEnter:
      case Op::MonitorExit:
        expect(pc, s, VTy::Ref);
        fallthrough();
        return;
      case Op::Athrow:
        expect(pc, s, VTy::Ref);
        return;

      case Op::Intrinsic:
        switch (static_cast<IntrinsicId>(readU8(code, pc + 1))) {
          case IntrinsicId::PrintInt:
          case IntrinsicId::PrintChar:
            expect(pc, s, VTy::Int);
            break;
          case IntrinsicId::FSqrt:
          case IntrinsicId::FSin:
          case IntrinsicId::FCos:
            expect(pc, s, VTy::Float);
            push(VTy::Float, s);
            break;
          case IntrinsicId::ArrayCopy:
            expect(pc, s, VTy::Int);   // len
            expect(pc, s, VTy::Int);   // dstPos
            expect(pc, s, VTy::Ref);   // dst
            expect(pc, s, VTy::Int);   // srcPos
            expect(pc, s, VTy::Ref);   // src
            break;
          default:
            fail(pc, "bad intrinsic id");
        }
        fallthrough();
        return;
      case Op::SpawnThread: {
        const MethodId id = readU16(code, pc + 1);
        if (id >= prog_.methods.size())
            fail(pc, "bad spawn target");
        const Method &t = prog_.methods[id];
        if (!t.isStatic || t.numArgs != 1
            || t.argTypes[0] != VType::Int) {
            fail(pc, "spawn target must be static(int)");
        }
        expect(pc, s, VTy::Int);
        push(VTy::Int, s);
        fallthrough();
        return;
      }
      case Op::JoinThread:
        expect(pc, s, VTy::Int);
        fallthrough();
        return;

      case Op::OpCount_:
        break;
    }
    fail(pc, "invalid opcode");
}

void
MethodVerifier::run()
{
    State entry;
    entry.locals.assign(m_.numLocals, VTy::Int);  // VM zero-init
    for (std::uint8_t i = 0; i < m_.numArgs; ++i)
        entry.locals[i] = vtyOf(m_.argTypes[i]);
    states_[0] = entry;
    work_.push_back(0);

    while (!work_.empty()) {
        const std::uint32_t pc = work_.front();
        work_.pop_front();
        flow(pc, states_[pc]);
    }
}

} // namespace

void
verifyMethod(const Method &m, const Program &prog)
{
    MethodVerifier(m, prog).run();
}

void
verifyProgram(const Program &prog)
{
    for (const Method &m : prog.methods)
        verifyMethod(m, prog);
}

} // namespace jrs
