/**
 * @file
 * Bytecode disassembler for diagnostics and tests.
 */
#ifndef JRS_VM_BYTECODE_DISASSEMBLER_H
#define JRS_VM_BYTECODE_DISASSEMBLER_H

#include <string>

#include "vm/bytecode/class_def.h"

namespace jrs {

/** Render one instruction at @p pc, e.g. "12: if_icmplt -> 4". */
std::string disassembleAt(const Method &m, std::uint32_t pc);

/** Render a whole method, one instruction per line. */
std::string disassemble(const Method &m);

} // namespace jrs

#endif // JRS_VM_BYTECODE_DISASSEMBLER_H
