/**
 * @file
 * Static program structure: methods, classes, and whole programs.
 *
 * A Program is the analogue of a set of loaded .class files: class
 * definitions with instance-field layouts and vtables, a global method
 * table, string literals, and static-variable slots. Programs are built
 * with the Assembler (vm/bytecode/assembler.h) and registered with a
 * ClassRegistry at run time.
 */
#ifndef JRS_VM_BYTECODE_CLASS_DEF_H
#define JRS_VM_BYTECODE_CLASS_DEF_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/address_map.h"
#include "vm/bytecode/opcode.h"

namespace jrs {

/** Global method identifier (index into Program::methods). */
using MethodId = std::uint16_t;

/** Class identifier (index into Program::classes). */
using ClassId = std::uint16_t;

/** Sentinel for "no class" (e.g. root superclass). */
inline constexpr ClassId kNoClass = 0xffff;

/**
 * Sentinel for an empty vtable entry. Slots are allocated globally
 * (unique across hierarchies), so vtables are sparse: a class's vtable
 * holds kNoMethod at slots belonging to other hierarchies.
 */
inline constexpr MethodId kNoMethod = 0xffff;

/** One entry of a method's exception-handler table. */
struct ExceptionEntry {
    std::uint32_t startPc;    ///< inclusive bytecode range start
    std::uint32_t endPc;      ///< exclusive range end
    std::uint32_t handlerPc;  ///< handler entry bytecode pc
    ClassId catchType;        ///< kNoClass catches everything
};

/** Value type of an argument / return. */
enum class VType : std::uint8_t { Void, Int, Float, Ref };

/** A method: metadata plus its bytecode. */
struct Method {
    std::string name;          ///< "Class.method" for diagnostics
    MethodId id = 0;
    ClassId owner = kNoClass;
    std::uint8_t numArgs = 0;  ///< incl. receiver for instance methods
    std::uint8_t numLocals = 0;
    std::uint16_t maxStack = 0;   ///< computed by the assembler
    VType returnType = VType::Void;
    bool isStatic = true;
    bool isSynchronized = false;
    /** Argument value types, receiver (Ref) first for instance methods. */
    std::vector<VType> argTypes;
    std::vector<std::uint8_t> code;
    std::vector<ExceptionEntry> handlers;
    /** Simulated address of code[0] inside seg::kClassData. */
    SimAddr bytecodeAddr = 0;

    /** Read the opcode at bytecode offset @p pc. */
    Op opAt(std::uint32_t pc) const {
        return static_cast<Op>(code[pc]);
    }
};

/** A class: superclass link, field layout, vtable. */
struct ClassDef {
    std::string name;
    ClassId id = 0;
    ClassId super = kNoClass;
    /** Instance field slot count including inherited fields. */
    std::uint16_t numFields = 0;
    /** Field names, slot-indexed (inherited slots included). */
    std::vector<std::string> fieldNames;
    /** vtable: slot -> global MethodId (inherited + overridden). */
    std::vector<MethodId> vtable;
    /** Virtual method name -> vtable slot (for assembler resolution). */
    std::vector<std::pair<std::string, std::uint16_t>> vslots;
    /** Simulated address of this class's metadata (vtable) block. */
    SimAddr metaAddr = 0;

    /** Look up a vtable slot by method name; -1 if absent. */
    int vslotOf(const std::string &method_name) const;
};

/** A static variable slot. */
struct StaticSlot {
    std::string name;
    VType type = VType::Int;
};

/** A complete program: classes, methods, literals, statics, entry. */
struct Program {
    std::string name;
    std::vector<ClassDef> classes;
    std::vector<Method> methods;
    std::vector<std::string> stringLiterals;
    std::vector<StaticSlot> statics;
    MethodId entry = 0;  ///< static method taking one int arg

    /** Total bytecode bytes across all methods. */
    std::size_t totalBytecodeBytes() const;

    /** Find a method by name; nullptr when absent. */
    const Method *findMethod(const std::string &name) const;

    /** Find a class by name; nullptr when absent. */
    const ClassDef *findClass(const std::string &name) const;
};

/** True iff @p sub equals @p ancestor or inherits from it. */
bool isSubclassOf(const Program &prog, ClassId sub, ClassId ancestor);

} // namespace jrs

#endif // JRS_VM_BYTECODE_CLASS_DEF_H
