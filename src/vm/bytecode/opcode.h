/**
 * @file
 * The jrs bytecode instruction set.
 *
 * A compact stack-machine ISA modeled on the JVM specification: typed
 * arithmetic over int/float, local-variable slots, an operand stack,
 * fields, virtual dispatch through per-class vtables, arrays of four
 * element widths, monitors, exceptions, and a handful of runtime
 * intrinsics. Around ninety opcodes — a faithful subset of the ~220
 * cases the paper's interpreter switch decodes.
 *
 * Encoding: one opcode byte followed by fixed-width little-endian
 * operands (see operandBytes()); TableSwitch/LookupSwitch are the only
 * variable-length instructions.
 */
#ifndef JRS_VM_BYTECODE_OPCODE_H
#define JRS_VM_BYTECODE_OPCODE_H

#include <cstdint>
#include <string>
#include <vector>

namespace jrs {

/** Bytecode opcodes. Values are stable; the trace model keys off them. */
enum class Op : std::uint8_t {
    Nop = 0,

    // Constants
    Iconst8,     ///< push sign-extended s8 immediate
    Iconst32,    ///< push s32 immediate
    Fconst,      ///< push f32 immediate (raw bits)
    AconstNull,  ///< push null reference
    LdcStr,      ///< u16 string-literal index -> push char[] ref

    // Locals
    Iload,   ///< u8 slot
    Fload,   ///< u8 slot
    Aload,   ///< u8 slot
    Istore,  ///< u8 slot
    Fstore,  ///< u8 slot
    Astore,  ///< u8 slot
    Iinc,    ///< u8 slot, s8 delta

    // Operand stack
    Pop,
    Dup,
    DupX1,  ///< duplicate top and insert below next-to-top
    Swap,

    // Integer arithmetic
    Iadd, Isub, Imul, Idiv, Irem, Ineg,
    Ishl, Ishr, Iushr, Iand, Ior, Ixor,

    // Float arithmetic
    Fadd, Fsub, Fmul, Fdiv, Fneg,
    Fcmpl,  ///< push -1/0/1 (NaN -> -1)

    // Conversions
    I2f, F2i, I2c, I2b,

    // Control transfer (s16 signed byte offset from opcode address)
    Goto,
    Ifeq, Ifne, Iflt, Ifge, Ifgt, Ifle,
    IfIcmpeq, IfIcmpne, IfIcmplt, IfIcmpge, IfIcmpgt, IfIcmple,
    IfAcmpeq, IfAcmpne,
    Ifnull, Ifnonnull,

    /**
     * TableSwitch: s16 default, s32 low, u16 count, count * s16 offsets.
     * Pops index; jumps to offsets[index-low] or default.
     */
    TableSwitch,
    /**
     * LookupSwitch: s16 default, u16 npairs, npairs * (s32 key, s16 off).
     * Pops key; jumps to matching offset or default.
     */
    LookupSwitch,

    // Calls and returns
    InvokeStatic,   ///< u16 global method id
    InvokeVirtual,  ///< u16 vtable slot; receiver under args
    InvokeSpecial,  ///< u16 global method id (ctors, private)
    ReturnVoid,
    Ireturn,
    Freturn,
    Areturn,

    // Fields (u16 instance-field slot / global static slot)
    GetFieldI, GetFieldF, GetFieldA,
    PutFieldI, PutFieldF, PutFieldA,
    GetStaticI, GetStaticF, GetStaticA,
    PutStaticI, PutStaticF, PutStaticA,

    // Objects and arrays
    New,          ///< u16 class id
    NewArray,     ///< u8 ArrayKind; pops length
    ArrayLength,
    IAload, IAstore,
    FAload, FAstore,
    CAload, CAstore,  ///< 2-byte char elements
    BAload, BAstore,  ///< 1-byte byte elements
    AAload, AAstore,

    // Synchronization
    MonitorEnter,
    MonitorExit,

    // Exceptions
    Athrow,

    // Runtime services
    Intrinsic,     ///< u8 IntrinsicId; stack effect per intrinsic
    SpawnThread,   ///< u16 static method id; pops 1 int arg, pushes tid
    JoinThread,    ///< pops tid; blocks until that thread finishes

    OpCount_,  ///< number of opcodes (not an instruction)
};

/** Number of opcodes. */
inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Op::OpCount_);

/** Array element kinds for NewArray and the xAload/xAstore families. */
enum class ArrayKind : std::uint8_t {
    Int = 0,   ///< 4-byte
    Float = 1, ///< 4-byte
    Char = 2,  ///< 2-byte
    Byte = 3,  ///< 1-byte
    Ref = 4,   ///< 4-byte (stores a 32-bit heap offset)
};

/** Element size in bytes for an array kind. */
std::uint32_t arrayElemSize(ArrayKind kind);

/** Runtime intrinsics invoked via Op::Intrinsic. */
enum class IntrinsicId : std::uint8_t {
    PrintInt = 0,  ///< pops int, appends decimal + '\n' to run output
    PrintChar,     ///< pops int, appends the char to run output
    FSqrt,         ///< pops float, pushes sqrtf
    FSin,          ///< pops float, pushes sinf
    FCos,          ///< pops float, pushes cosf
    ArrayCopy,     ///< pops (srcRef, srcPos, dstRef, dstPos, len)
    IntrinsicCount_,
};

/** Human-readable mnemonic of an opcode. */
const char *opName(Op op);

/**
 * Fixed operand byte count following the opcode byte.
 * Returns -1 for variable-length instructions (the switches).
 */
int operandBytes(Op op);

/** True for the conditional branch family (Ifeq..Ifnonnull). */
bool isConditionalBranch(Op op);

/** True for instructions that never fall through. */
bool endsBasicBlock(Op op);

/**
 * Total encoded length (opcode + operands) of the instruction starting
 * at @p pc, including variable-length switch forms.
 */
std::uint32_t instrLength(const std::vector<std::uint8_t> &code,
                          std::uint32_t pc);

} // namespace jrs

#endif // JRS_VM_BYTECODE_OPCODE_H
