#include "vm/bytecode/disassembler.h"

#include <sstream>

#include "vm/bytecode/decode.h"
#include "vm/bytecode/opcode.h"

namespace jrs {

std::string
disassembleAt(const Method &m, std::uint32_t pc)
{
    std::ostringstream os;
    const Op op = m.opAt(pc);
    os << pc << ": " << opName(op);
    switch (op) {
      case Op::Iconst8:
        os << ' ' << static_cast<int>(readS8(m.code, pc + 1));
        break;
      case Op::Iconst32:
        os << ' ' << readS32(m.code, pc + 1);
        break;
      case Op::Fconst:
        os << ' ' << readF32(m.code, pc + 1);
        break;
      case Op::Iload: case Op::Fload: case Op::Aload:
      case Op::Istore: case Op::Fstore: case Op::Astore:
      case Op::NewArray:
        os << ' ' << static_cast<int>(readU8(m.code, pc + 1));
        break;
      case Op::Iinc:
        os << ' ' << static_cast<int>(readU8(m.code, pc + 1)) << " by "
           << static_cast<int>(readS8(m.code, pc + 2));
        break;
      case Op::Goto:
      case Op::Ifeq: case Op::Ifne: case Op::Iflt:
      case Op::Ifge: case Op::Ifgt: case Op::Ifle:
      case Op::IfIcmpeq: case Op::IfIcmpne: case Op::IfIcmplt:
      case Op::IfIcmpge: case Op::IfIcmpgt: case Op::IfIcmple:
      case Op::IfAcmpeq: case Op::IfAcmpne:
      case Op::Ifnull: case Op::Ifnonnull:
        os << " -> " << (pc + readS16(m.code, pc + 1));
        break;
      case Op::TableSwitch: {
        const std::uint16_t count = readU16(m.code, pc + 7);
        os << " low=" << readS32(m.code, pc + 3) << " count=" << count
           << " default->" << (pc + readS16(m.code, pc + 1));
        break;
      }
      case Op::LookupSwitch: {
        const std::uint16_t n = readU16(m.code, pc + 3);
        os << " npairs=" << n << " default->"
           << (pc + readS16(m.code, pc + 1));
        break;
      }
      case Op::LdcStr:
      case Op::InvokeStatic: case Op::InvokeVirtual:
      case Op::InvokeSpecial:
      case Op::GetFieldI: case Op::GetFieldF: case Op::GetFieldA:
      case Op::PutFieldI: case Op::PutFieldF: case Op::PutFieldA:
      case Op::GetStaticI: case Op::GetStaticF: case Op::GetStaticA:
      case Op::PutStaticI: case Op::PutStaticF: case Op::PutStaticA:
      case Op::New: case Op::SpawnThread:
        os << " #" << readU16(m.code, pc + 1);
        break;
      case Op::Intrinsic:
        os << " id=" << static_cast<int>(readU8(m.code, pc + 1));
        break;
      default:
        break;
    }
    return os.str();
}

std::string
disassemble(const Method &m)
{
    std::ostringstream os;
    os << m.name << " (args=" << static_cast<int>(m.numArgs)
       << " locals=" << static_cast<int>(m.numLocals)
       << " maxStack=" << m.maxStack << ")\n";
    std::uint32_t pc = 0;
    while (pc < m.code.size()) {
        os << "  " << disassembleAt(m, pc) << '\n';
        pc += instrLength(m.code, pc);
    }
    return os.str();
}

} // namespace jrs
