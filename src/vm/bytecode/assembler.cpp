#include "vm/bytecode/assembler.h"

#include <algorithm>
#include <cstring>
#include <deque>

#include "vm/bytecode/decode.h"
#include "vm/bytecode/verifier.h"

namespace jrs {

// ---------------------------------------------------------------------
// MethodBuilder
// ---------------------------------------------------------------------

MethodBuilder::MethodBuilder(ProgramBuilder *pb, std::string name,
                             MethodId id)
    : pb_(pb), name_(std::move(name)), id_(id)
{
}

void
MethodBuilder::emitOp(Op op)
{
    code_.push_back(static_cast<std::uint8_t>(op));
}

void
MethodBuilder::emitU8(std::uint8_t v)
{
    code_.push_back(v);
}

void
MethodBuilder::emitU16(std::uint16_t v)
{
    code_.push_back(static_cast<std::uint8_t>(v & 0xff));
    code_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
MethodBuilder::emitS32(std::int32_t v)
{
    const std::uint32_t u = static_cast<std::uint32_t>(v);
    code_.push_back(static_cast<std::uint8_t>(u & 0xff));
    code_.push_back(static_cast<std::uint8_t>((u >> 8) & 0xff));
    code_.push_back(static_cast<std::uint8_t>((u >> 16) & 0xff));
    code_.push_back(static_cast<std::uint8_t>((u >> 24) & 0xff));
}

MethodBuilder &
MethodBuilder::locals(std::uint8_t n)
{
    if (n < numArgs_)
        throw AssemblerError(name_ + ": locals() below argument count");
    numLocals_ = n;
    return *this;
}

MethodBuilder &
MethodBuilder::synchronized_()
{
    isSynchronized_ = true;
    return *this;
}

MethodBuilder &
MethodBuilder::iconst(std::int32_t v)
{
    if (v >= -128 && v <= 127) {
        emitOp(Op::Iconst8);
        emitU8(static_cast<std::uint8_t>(static_cast<std::int8_t>(v)));
    } else {
        emitOp(Op::Iconst32);
        emitS32(v);
    }
    return *this;
}

MethodBuilder &
MethodBuilder::fconst(float v)
{
    std::int32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    emitOp(Op::Fconst);
    emitS32(bits);
    return *this;
}

MethodBuilder &
MethodBuilder::aconstNull()
{
    emitOp(Op::AconstNull);
    return *this;
}

MethodBuilder &
MethodBuilder::ldcStr(const std::string &s)
{
    const std::uint16_t idx = pb_->stringLiteral(s);
    emitOp(Op::LdcStr);
    emitU16(idx);
    return *this;
}

#define JRS_LOCAL_OP(fn, OPC)                                           \
    MethodBuilder &                                                     \
    MethodBuilder::fn(std::uint8_t slot)                                \
    {                                                                   \
        emitOp(Op::OPC);                                                \
        emitU8(slot);                                                   \
        return *this;                                                   \
    }

JRS_LOCAL_OP(iload, Iload)
JRS_LOCAL_OP(fload, Fload)
JRS_LOCAL_OP(aload, Aload)
JRS_LOCAL_OP(istore, Istore)
JRS_LOCAL_OP(fstore, Fstore)
JRS_LOCAL_OP(astore, Astore)
#undef JRS_LOCAL_OP

MethodBuilder &
MethodBuilder::iinc(std::uint8_t slot, std::int8_t delta)
{
    emitOp(Op::Iinc);
    emitU8(slot);
    emitU8(static_cast<std::uint8_t>(delta));
    return *this;
}

#define JRS_SIMPLE_OP(fn, OPC)                                          \
    MethodBuilder &                                                     \
    MethodBuilder::fn()                                                 \
    {                                                                   \
        emitOp(Op::OPC);                                                \
        return *this;                                                   \
    }

JRS_SIMPLE_OP(pop, Pop)
JRS_SIMPLE_OP(dup, Dup)
JRS_SIMPLE_OP(dupX1, DupX1)
JRS_SIMPLE_OP(swap, Swap)
JRS_SIMPLE_OP(iadd, Iadd)
JRS_SIMPLE_OP(isub, Isub)
JRS_SIMPLE_OP(imul, Imul)
JRS_SIMPLE_OP(idiv, Idiv)
JRS_SIMPLE_OP(irem, Irem)
JRS_SIMPLE_OP(ineg, Ineg)
JRS_SIMPLE_OP(ishl, Ishl)
JRS_SIMPLE_OP(ishr, Ishr)
JRS_SIMPLE_OP(iushr, Iushr)
JRS_SIMPLE_OP(iand, Iand)
JRS_SIMPLE_OP(ior, Ior)
JRS_SIMPLE_OP(ixor, Ixor)
JRS_SIMPLE_OP(fadd, Fadd)
JRS_SIMPLE_OP(fsub, Fsub)
JRS_SIMPLE_OP(fmul, Fmul)
JRS_SIMPLE_OP(fdiv, Fdiv)
JRS_SIMPLE_OP(fneg, Fneg)
JRS_SIMPLE_OP(fcmpl, Fcmpl)
JRS_SIMPLE_OP(i2f, I2f)
JRS_SIMPLE_OP(f2i, F2i)
JRS_SIMPLE_OP(i2c, I2c)
JRS_SIMPLE_OP(i2b, I2b)
JRS_SIMPLE_OP(returnVoid, ReturnVoid)
JRS_SIMPLE_OP(ireturn, Ireturn)
JRS_SIMPLE_OP(freturn, Freturn)
JRS_SIMPLE_OP(areturn, Areturn)
JRS_SIMPLE_OP(arrayLength, ArrayLength)
JRS_SIMPLE_OP(iaload, IAload)
JRS_SIMPLE_OP(iastore, IAstore)
JRS_SIMPLE_OP(faload, FAload)
JRS_SIMPLE_OP(fastore, FAstore)
JRS_SIMPLE_OP(caload, CAload)
JRS_SIMPLE_OP(castore, CAstore)
JRS_SIMPLE_OP(baload, BAload)
JRS_SIMPLE_OP(bastore, BAstore)
JRS_SIMPLE_OP(aaload, AAload)
JRS_SIMPLE_OP(aastore, AAstore)
JRS_SIMPLE_OP(monitorEnter, MonitorEnter)
JRS_SIMPLE_OP(monitorExit, MonitorExit)
JRS_SIMPLE_OP(athrow, Athrow)
JRS_SIMPLE_OP(joinThread, JoinThread)
JRS_SIMPLE_OP(nop, Nop)
#undef JRS_SIMPLE_OP

Label
MethodBuilder::newLabel()
{
    labelPos_.push_back(-1);
    return static_cast<Label>(labelPos_.size() - 1);
}

MethodBuilder &
MethodBuilder::bind(Label label)
{
    if (label >= labelPos_.size())
        throw AssemblerError(name_ + ": bind of unknown label");
    if (labelPos_[label] != -1)
        throw AssemblerError(name_ + ": label bound twice");
    labelPos_[label] = static_cast<std::int64_t>(code_.size());
    return *this;
}

MethodBuilder &
MethodBuilder::branch(Op op, Label l)
{
    const std::uint32_t opcode_at = here();
    emitOp(op);
    fixups_.push_back({here(), opcode_at, l});
    emitU16(0);
    return *this;
}

#define JRS_BRANCH_OP(fn, OPC)                                          \
    MethodBuilder &                                                     \
    MethodBuilder::fn(Label l)                                          \
    {                                                                   \
        return branch(Op::OPC, l);                                      \
    }

JRS_BRANCH_OP(gotoL, Goto)
JRS_BRANCH_OP(ifeq, Ifeq)
JRS_BRANCH_OP(ifne, Ifne)
JRS_BRANCH_OP(iflt, Iflt)
JRS_BRANCH_OP(ifge, Ifge)
JRS_BRANCH_OP(ifgt, Ifgt)
JRS_BRANCH_OP(ifle, Ifle)
JRS_BRANCH_OP(ifIcmpeq, IfIcmpeq)
JRS_BRANCH_OP(ifIcmpne, IfIcmpne)
JRS_BRANCH_OP(ifIcmplt, IfIcmplt)
JRS_BRANCH_OP(ifIcmpge, IfIcmpge)
JRS_BRANCH_OP(ifIcmpgt, IfIcmpgt)
JRS_BRANCH_OP(ifIcmple, IfIcmple)
JRS_BRANCH_OP(ifAcmpeq, IfAcmpeq)
JRS_BRANCH_OP(ifAcmpne, IfAcmpne)
JRS_BRANCH_OP(ifnull, Ifnull)
JRS_BRANCH_OP(ifnonnull, Ifnonnull)
#undef JRS_BRANCH_OP

MethodBuilder &
MethodBuilder::tableSwitch(std::int32_t low,
                           const std::vector<Label> &targets, Label deflt)
{
    if (targets.empty())
        throw AssemblerError(name_ + ": empty tableswitch");
    const std::uint32_t opcode_at = here();
    emitOp(Op::TableSwitch);
    fixups_.push_back({here(), opcode_at, deflt});
    emitU16(0);
    emitS32(low);
    emitU16(static_cast<std::uint16_t>(targets.size()));
    for (Label t : targets) {
        fixups_.push_back({here(), opcode_at, t});
        emitU16(0);
    }
    return *this;
}

MethodBuilder &
MethodBuilder::lookupSwitch(
    const std::vector<std::pair<std::int32_t, Label>> &pairs, Label deflt)
{
    const std::uint32_t opcode_at = here();
    emitOp(Op::LookupSwitch);
    fixups_.push_back({here(), opcode_at, deflt});
    emitU16(0);
    emitU16(static_cast<std::uint16_t>(pairs.size()));
    for (const auto &[key, target] : pairs) {
        emitS32(key);
        fixups_.push_back({here(), opcode_at, target});
        emitU16(0);
    }
    return *this;
}

MethodBuilder &
MethodBuilder::symbolU16(Op op, std::uint8_t sym_kind,
                         const std::string &symbol)
{
    emitOp(op);
    symbols_.push_back({here(), sym_kind, symbol});
    emitU16(0);
    return *this;
}

MethodBuilder &
MethodBuilder::invokeStatic(const std::string &qualified)
{
    return symbolU16(Op::InvokeStatic, ProgramBuilder::kSymStaticMethod,
                     qualified);
}

MethodBuilder &
MethodBuilder::invokeVirtual(const std::string &qualified)
{
    return symbolU16(Op::InvokeVirtual, ProgramBuilder::kSymVirtualSlot,
                     qualified);
}

MethodBuilder &
MethodBuilder::invokeSpecial(const std::string &qualified)
{
    return symbolU16(Op::InvokeSpecial, ProgramBuilder::kSymSpecialMethod,
                     qualified);
}

#define JRS_FIELD_OP(fn, OPC)                                           \
    MethodBuilder &                                                     \
    MethodBuilder::fn(const std::string &qualified)                     \
    {                                                                   \
        return symbolU16(Op::OPC, ProgramBuilder::kSymField, qualified);\
    }

JRS_FIELD_OP(getFieldI, GetFieldI)
JRS_FIELD_OP(getFieldF, GetFieldF)
JRS_FIELD_OP(getFieldA, GetFieldA)
JRS_FIELD_OP(putFieldI, PutFieldI)
JRS_FIELD_OP(putFieldF, PutFieldF)
JRS_FIELD_OP(putFieldA, PutFieldA)
#undef JRS_FIELD_OP

#define JRS_STATIC_OP(fn, OPC)                                          \
    MethodBuilder &                                                     \
    MethodBuilder::fn(const std::string &name)                          \
    {                                                                   \
        return symbolU16(Op::OPC, ProgramBuilder::kSymStatic, name);    \
    }

JRS_STATIC_OP(getStaticI, GetStaticI)
JRS_STATIC_OP(getStaticF, GetStaticF)
JRS_STATIC_OP(getStaticA, GetStaticA)
JRS_STATIC_OP(putStaticI, PutStaticI)
JRS_STATIC_OP(putStaticF, PutStaticF)
JRS_STATIC_OP(putStaticA, PutStaticA)
#undef JRS_STATIC_OP

MethodBuilder &
MethodBuilder::newObject(const std::string &class_name)
{
    return symbolU16(Op::New, ProgramBuilder::kSymClass, class_name);
}

MethodBuilder &
MethodBuilder::newArray(ArrayKind kind)
{
    emitOp(Op::NewArray);
    emitU8(static_cast<std::uint8_t>(kind));
    return *this;
}

MethodBuilder &
MethodBuilder::intrinsic(IntrinsicId id)
{
    emitOp(Op::Intrinsic);
    emitU8(static_cast<std::uint8_t>(id));
    return *this;
}

MethodBuilder &
MethodBuilder::spawnThread(const std::string &qualified)
{
    return symbolU16(Op::SpawnThread, ProgramBuilder::kSymSpawn,
                     qualified);
}

MethodBuilder &
MethodBuilder::addHandler(Label start, Label end, Label handler,
                          const std::string &catch_class)
{
    pendingHandlers_.push_back({start, end, handler, catch_class});
    return *this;
}

// ---------------------------------------------------------------------
// ClassBuilder
// ---------------------------------------------------------------------

std::uint16_t
ClassBuilder::field(const std::string &name)
{
    def_.fieldNames.push_back(name);
    def_.numFields = static_cast<std::uint16_t>(def_.fieldNames.size());
    return def_.numFields - 1;
}

MethodBuilder &
ClassBuilder::staticMethod(const std::string &name,
                           const std::vector<VType> &args, VType ret)
{
    return pb_->addMethod(*this, name, args, ret, /*is_static=*/true,
                          /*is_special=*/false);
}

MethodBuilder &
ClassBuilder::virtualMethod(const std::string &name,
                            const std::vector<VType> &args, VType ret)
{
    return pb_->addMethod(*this, name, args, ret, /*is_static=*/false,
                          /*is_special=*/false);
}

MethodBuilder &
ClassBuilder::specialMethod(const std::string &name,
                            const std::vector<VType> &args, VType ret)
{
    return pb_->addMethod(*this, name, args, ret, /*is_static=*/false,
                          /*is_special=*/true);
}

// ---------------------------------------------------------------------
// ProgramBuilder
// ---------------------------------------------------------------------

ProgramBuilder::ProgramBuilder(std::string program_name)
    : name_(std::move(program_name))
{
}

ProgramBuilder::~ProgramBuilder() = default;

ClassBuilder &
ProgramBuilder::cls(const std::string &name, const std::string &super_name)
{
    for (const auto &c : classes_) {
        if (c->def_.name == name)
            throw AssemblerError("duplicate class " + name);
    }
    ClassDef def;
    def.name = name;
    def.id = static_cast<ClassId>(classes_.size());
    if (!super_name.empty()) {
        const ClassBuilder *super = nullptr;
        for (const auto &c : classes_) {
            if (c->def_.name == super_name)
                super = c.get();
        }
        if (super == nullptr) {
            throw AssemblerError("superclass " + super_name
                                 + " must be declared before " + name);
        }
        def.super = super->def_.id;
        def.fieldNames = super->def_.fieldNames;  // inherited slots
        def.numFields = super->def_.numFields;
        def.vtable = super->def_.vtable;
        def.vslots = super->def_.vslots;
    }
    classes_.push_back(
        std::unique_ptr<ClassBuilder>(new ClassBuilder(this, def)));
    return *classes_.back();
}

std::uint16_t
ProgramBuilder::stringLiteral(const std::string &s)
{
    for (std::size_t i = 0; i < stringLiterals_.size(); ++i) {
        if (stringLiterals_[i] == s)
            return static_cast<std::uint16_t>(i);
    }
    stringLiterals_.push_back(s);
    return static_cast<std::uint16_t>(stringLiterals_.size() - 1);
}

std::uint16_t
ProgramBuilder::staticSlot(const std::string &name, VType type)
{
    for (std::size_t i = 0; i < statics_.size(); ++i) {
        if (statics_[i].name == name)
            throw AssemblerError("duplicate static " + name);
    }
    statics_.push_back({name, type});
    return static_cast<std::uint16_t>(statics_.size() - 1);
}

MethodBuilder &
ProgramBuilder::addMethod(ClassBuilder &cb, const std::string &name,
                          const std::vector<VType> &args, VType ret,
                          bool is_static, bool is_special)
{
    const std::string qualified = cb.def_.name + "." + name;
    for (const auto &m : methods_) {
        if (m->name_ == qualified)
            throw AssemblerError("duplicate method " + qualified);
    }
    const MethodId id = static_cast<MethodId>(methods_.size());
    methods_.push_back(std::unique_ptr<MethodBuilder>(
        new MethodBuilder(this, qualified, id)));
    MethodBuilder &mb = *methods_.back();
    mb.owner_ = cb.def_.id;
    mb.isStatic_ = is_static;
    mb.returnType_ = ret;
    std::size_t nargs = args.size() + (is_static ? 0 : 1);
    if (nargs > 255)
        throw AssemblerError(qualified + ": too many arguments");
    mb.numArgs_ = static_cast<std::uint8_t>(nargs);
    mb.numLocals_ = mb.numArgs_;
    if (!is_static)
        mb.argTypes_.push_back(VType::Ref);  // receiver
    mb.argTypes_.insert(mb.argTypes_.end(), args.begin(), args.end());

    if (!is_static && !is_special) {
        // Virtual: override the inherited slot of the same name, or
        // claim a fresh globally-unique slot (vtables are sparse).
        const int existing = cb.def_.vslotOf(name);
        std::uint16_t slot;
        if (existing >= 0) {
            slot = static_cast<std::uint16_t>(existing);
        } else {
            slot = nextVSlot_++;
            cb.def_.vslots.emplace_back(name, slot);
        }
        if (cb.def_.vtable.size() <= slot)
            cb.def_.vtable.resize(slot + 1, kNoMethod);
        cb.def_.vtable[slot] = id;
    }
    return mb;
}

std::uint16_t
ProgramBuilder::resolve(std::uint8_t kind, const std::string &symbol,
                        const std::string &where)
{
    auto fail = [&](const std::string &msg) -> std::uint16_t {
        throw AssemblerError(where + ": " + msg + " '" + symbol + "'");
    };
    auto find_method = [&]() -> std::uint16_t {
        for (const auto &m : methods_) {
            if (m->name_ == symbol)
                return m->id_;
        }
        return fail("unknown method");
    };
    auto find_class = [&](const std::string &cls_name) -> ClassBuilder * {
        for (const auto &c : classes_) {
            if (c->def_.name == cls_name)
                return c.get();
        }
        fail("unknown class");
        return nullptr;
    };

    switch (kind) {
      case kSymStaticMethod:
      case kSymSpecialMethod:
      case kSymSpawn:
        return find_method();
      case kSymVirtualSlot: {
        const auto dot = symbol.find('.');
        if (dot == std::string::npos)
            return fail("virtual call needs Class.method");
        ClassBuilder *cb = find_class(symbol.substr(0, dot));
        const int slot = cb->def_.vslotOf(symbol.substr(dot + 1));
        if (slot < 0)
            return fail("no virtual slot");
        return static_cast<std::uint16_t>(slot);
      }
      case kSymField: {
        const auto dot = symbol.find('.');
        if (dot == std::string::npos)
            return fail("field ref needs Class.field");
        ClassBuilder *cb = find_class(symbol.substr(0, dot));
        const std::string fname = symbol.substr(dot + 1);
        for (std::size_t i = 0; i < cb->def_.fieldNames.size(); ++i) {
            if (cb->def_.fieldNames[i] == fname)
                return static_cast<std::uint16_t>(i);
        }
        return fail("unknown field");
      }
      case kSymStatic:
        for (std::size_t i = 0; i < statics_.size(); ++i) {
            if (statics_[i].name == symbol)
                return static_cast<std::uint16_t>(i);
        }
        return fail("unknown static");
      case kSymClass: {
        ClassBuilder *cb = find_class(symbol);
        return cb->def_.id;
      }
      case kSymString:
        return stringLiteral(symbol);
    }
    return fail("bad symbol kind");
}

namespace {

/** Pops/pushes of the instruction at @p pc in a resolved method. */
struct StackEffect {
    int pops;
    int pushes;
};

StackEffect
stackEffect(const Method &m, const Program &prog, std::uint32_t pc)
{
    const Op op = m.opAt(pc);
    switch (op) {
      case Op::Nop:          return {0, 0};
      case Op::Iconst8:
      case Op::Iconst32:
      case Op::Fconst:
      case Op::AconstNull:
      case Op::LdcStr:       return {0, 1};
      case Op::Iload:
      case Op::Fload:
      case Op::Aload:        return {0, 1};
      case Op::Istore:
      case Op::Fstore:
      case Op::Astore:       return {1, 0};
      case Op::Iinc:         return {0, 0};
      case Op::Pop:          return {1, 0};
      case Op::Dup:          return {1, 2};
      case Op::DupX1:        return {2, 3};
      case Op::Swap:         return {2, 2};
      case Op::Iadd: case Op::Isub: case Op::Imul: case Op::Idiv:
      case Op::Irem: case Op::Ishl: case Op::Ishr: case Op::Iushr:
      case Op::Iand: case Op::Ior: case Op::Ixor:
      case Op::Fadd: case Op::Fsub: case Op::Fmul: case Op::Fdiv:
      case Op::Fcmpl:        return {2, 1};
      case Op::Ineg: case Op::Fneg:
      case Op::I2f: case Op::F2i: case Op::I2c: case Op::I2b:
        return {1, 1};
      case Op::Goto:         return {0, 0};
      case Op::Ifeq: case Op::Ifne: case Op::Iflt:
      case Op::Ifge: case Op::Ifgt: case Op::Ifle:
      case Op::Ifnull: case Op::Ifnonnull:
        return {1, 0};
      case Op::IfIcmpeq: case Op::IfIcmpne: case Op::IfIcmplt:
      case Op::IfIcmpge: case Op::IfIcmpgt: case Op::IfIcmple:
      case Op::IfAcmpeq: case Op::IfAcmpne:
        return {2, 0};
      case Op::TableSwitch:
      case Op::LookupSwitch: return {1, 0};
      case Op::InvokeStatic:
      case Op::InvokeSpecial: {
        const Method &callee = prog.methods[readU16(m.code, pc + 1)];
        return {callee.numArgs,
                callee.returnType == VType::Void ? 0 : 1};
      }
      case Op::InvokeVirtual: {
        const std::uint16_t slot = readU16(m.code, pc + 1);
        for (const auto &c : prog.classes) {
            if (slot < c.vtable.size() && c.vtable[slot] != kNoMethod) {
                const Method &callee = prog.methods[c.vtable[slot]];
                return {callee.numArgs,
                        callee.returnType == VType::Void ? 0 : 1};
            }
        }
        throw AssemblerError(m.name + ": unresolvable vtable slot");
      }
      case Op::ReturnVoid:   return {0, 0};
      case Op::Ireturn:
      case Op::Freturn:
      case Op::Areturn:      return {1, 0};
      case Op::GetFieldI: case Op::GetFieldF: case Op::GetFieldA:
        return {1, 1};
      case Op::PutFieldI: case Op::PutFieldF: case Op::PutFieldA:
        return {2, 0};
      case Op::GetStaticI: case Op::GetStaticF: case Op::GetStaticA:
        return {0, 1};
      case Op::PutStaticI: case Op::PutStaticF: case Op::PutStaticA:
        return {1, 0};
      case Op::New:          return {0, 1};
      case Op::NewArray:     return {1, 1};
      case Op::ArrayLength:  return {1, 1};
      case Op::IAload: case Op::FAload: case Op::CAload:
      case Op::BAload: case Op::AAload:
        return {2, 1};
      case Op::IAstore: case Op::FAstore: case Op::CAstore:
      case Op::BAstore: case Op::AAstore:
        return {3, 0};
      case Op::MonitorEnter:
      case Op::MonitorExit:  return {1, 0};
      case Op::Athrow:       return {1, 0};
      case Op::Intrinsic:
        switch (static_cast<IntrinsicId>(m.code[pc + 1])) {
          case IntrinsicId::PrintInt:
          case IntrinsicId::PrintChar: return {1, 0};
          case IntrinsicId::FSqrt:
          case IntrinsicId::FSin:
          case IntrinsicId::FCos:      return {1, 1};
          case IntrinsicId::ArrayCopy: return {5, 0};
          default:
            throw AssemblerError(m.name + ": bad intrinsic id");
        }
      case Op::SpawnThread:  return {1, 1};
      case Op::JoinThread:   return {1, 0};
      case Op::OpCount_:     break;
    }
    throw AssemblerError(m.name + ": bad opcode in stack analysis");
}

/** All successor pcs of the instruction at @p pc (fallthrough first). */
std::vector<std::uint32_t>
successors(const Method &m, std::uint32_t pc)
{
    const Op op = m.opAt(pc);
    const std::uint32_t len = instrLength(m.code, pc);
    std::vector<std::uint32_t> out;
    if (op == Op::TableSwitch) {
        out.push_back(pc + static_cast<std::uint32_t>(
                               readS16(m.code, pc + 1)));  // default
        const std::uint16_t count = readU16(m.code, pc + 7);
        for (std::uint16_t i = 0; i < count; ++i) {
            out.push_back(pc + static_cast<std::uint32_t>(
                                   readS16(m.code, pc + 9 + 2u * i)));
        }
        return out;
    }
    if (op == Op::LookupSwitch) {
        out.push_back(pc + static_cast<std::uint32_t>(
                               readS16(m.code, pc + 1)));  // default
        const std::uint16_t npairs = readU16(m.code, pc + 3);
        for (std::uint16_t i = 0; i < npairs; ++i) {
            out.push_back(pc + static_cast<std::uint32_t>(
                                   readS16(m.code, pc + 5 + 6u * i + 4)));
        }
        return out;
    }
    if (!endsBasicBlock(op))
        out.push_back(pc + len);
    if (op == Op::Goto || isConditionalBranch(op)) {
        out.push_back(pc + static_cast<std::uint32_t>(
                               readS16(m.code, pc + 1)));
    }
    return out;
}

} // namespace

std::vector<int>
computeStackDepths(const Method &m, const Program &prog)
{
    std::vector<int> depth(m.code.size() + 1, -1);
    std::deque<std::uint32_t> work;

    auto visit = [&](std::uint32_t pc, int d) {
        if (pc > m.code.size())
            throw AssemblerError(m.name + ": branch out of range");
        if (depth[pc] == -1) {
            depth[pc] = d;
            work.push_back(pc);
        } else if (depth[pc] != d) {
            throw AssemblerError(m.name
                                 + ": inconsistent stack depth at pc "
                                 + std::to_string(pc));
        }
    };

    visit(0, 0);
    for (const auto &h : m.handlers)
        visit(h.handlerPc, 1);  // handler entry holds the thrown ref

    while (!work.empty()) {
        const std::uint32_t pc = work.front();
        work.pop_front();
        if (pc >= m.code.size())
            throw AssemblerError(m.name + ": fell off end of code");
        const StackEffect eff = stackEffect(m, prog, pc);
        const int d = depth[pc];
        if (d < eff.pops) {
            throw AssemblerError(m.name + ": stack underflow at pc "
                                 + std::to_string(pc) + " ("
                                 + opName(m.opAt(pc)) + ")");
        }
        const int after = d - eff.pops + eff.pushes;
        if (after > 255)
            throw AssemblerError(m.name + ": operand stack too deep");
        for (std::uint32_t s : successors(m, pc))
            visit(s, after);
    }
    return depth;
}

void
ProgramBuilder::computeStackBounds(Method &m, const Program &prog) const
{
    const std::vector<int> depths = computeStackDepths(m, prog);
    int max_depth = 0;
    for (int d : depths)
        max_depth = std::max(max_depth, d);
    m.maxStack = static_cast<std::uint16_t>(max_depth);
}

Program
ProgramBuilder::finish(const std::string &entry)
{
    if (finished_)
        throw AssemblerError("finish() called twice");
    finished_ = true;

    Program prog;
    prog.name = name_;
    prog.stringLiterals = stringLiterals_;
    prog.statics = statics_;

    // Resolve all symbolic operands first (patching builder code), then
    // seal methods.
    for (auto &mb : methods_) {
        for (const auto &sym : mb->symbols_) {
            const std::uint16_t v = resolve(sym.kind, sym.symbol,
                                            mb->name_);
            mb->code_[sym.at] = static_cast<std::uint8_t>(v & 0xff);
            mb->code_[sym.at + 1] = static_cast<std::uint8_t>(v >> 8);
        }
        for (const auto &fx : mb->fixups_) {
            const std::int64_t pos = mb->labelPos_[fx.label];
            if (pos < 0) {
                throw AssemblerError(mb->name_
                                     + ": branch to unbound label");
            }
            const std::int64_t rel = pos
                - static_cast<std::int64_t>(fx.opcodeAt);
            if (rel < -32768 || rel > 32767)
                throw AssemblerError(mb->name_ + ": branch too far");
            const std::uint16_t u =
                static_cast<std::uint16_t>(static_cast<std::int16_t>(rel));
            mb->code_[fx.at] = static_cast<std::uint8_t>(u & 0xff);
            mb->code_[fx.at + 1] = static_cast<std::uint8_t>(u >> 8);
        }
    }

    for (auto &cb : classes_)
        prog.classes.push_back(cb->def_);

    for (auto &mb : methods_) {
        Method m;
        m.name = mb->name_;
        m.id = mb->id_;
        m.owner = mb->owner_;
        m.numArgs = mb->numArgs_;
        m.numLocals = std::max(mb->numLocals_, mb->numArgs_);
        m.returnType = mb->returnType_;
        m.isStatic = mb->isStatic_;
        m.isSynchronized = mb->isSynchronized_;
        m.argTypes = mb->argTypes_;
        m.code = std::move(mb->code_);
        if (m.code.empty())
            throw AssemblerError(m.name + ": empty method body");
        for (const auto &ph : mb->pendingHandlers_) {
            ExceptionEntry e;
            auto pos_of = [&](Label l) -> std::uint32_t {
                const std::int64_t p = mb->labelPos_[l];
                if (p < 0) {
                    throw AssemblerError(m.name
                                         + ": handler label unbound");
                }
                return static_cast<std::uint32_t>(p);
            };
            e.startPc = pos_of(ph.start);
            e.endPc = pos_of(ph.end);
            e.handlerPc = pos_of(ph.handler);
            e.catchType = ph.catchClass.empty()
                ? kNoClass
                : resolve(kSymClass, ph.catchClass, m.name);
            m.handlers.push_back(e);
        }
        prog.methods.push_back(std::move(m));
    }

    // Address layout inside seg::kClassData: class metadata blocks,
    // then bytecode streams, 16-byte aligned.
    SimAddr cursor = seg::kClassData;
    for (auto &c : prog.classes) {
        c.metaAddr = cursor;
        cursor += 16 + 4 * static_cast<SimAddr>(c.vtable.size());
        cursor = (cursor + 15) & ~SimAddr{15};
    }
    for (auto &m : prog.methods) {
        m.bytecodeAddr = cursor;
        cursor += m.code.size();
        cursor = (cursor + 15) & ~SimAddr{15};
    }

    // Stack bounds + structural verification, then the typed pass.
    for (auto &m : prog.methods)
        computeStackBounds(m, prog);
    verifyProgram(prog);

    const Method *e = prog.findMethod(entry);
    if (e == nullptr)
        throw AssemblerError("entry method " + entry + " not found");
    if (!e->isStatic)
        throw AssemblerError("entry method must be static");
    prog.entry = e->id;
    return prog;
}

} // namespace jrs
