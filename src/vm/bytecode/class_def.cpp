#include "vm/bytecode/class_def.h"

namespace jrs {

int
ClassDef::vslotOf(const std::string &method_name) const
{
    for (const auto &[name, slot] : vslots) {
        if (name == method_name)
            return static_cast<int>(slot);
    }
    return -1;
}

std::size_t
Program::totalBytecodeBytes() const
{
    std::size_t total = 0;
    for (const auto &m : methods)
        total += m.code.size();
    return total;
}

const Method *
Program::findMethod(const std::string &name) const
{
    for (const auto &m : methods) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

const ClassDef *
Program::findClass(const std::string &name) const
{
    for (const auto &c : classes) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

bool
isSubclassOf(const Program &prog, ClassId sub, ClassId ancestor)
{
    while (sub != kNoClass) {
        if (sub == ancestor)
            return true;
        sub = prog.classes[sub].super;
    }
    return false;
}

} // namespace jrs
