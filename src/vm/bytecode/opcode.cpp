#include "vm/bytecode/opcode.h"

#include "vm/bytecode/decode.h"

namespace jrs {

std::uint32_t
arrayElemSize(ArrayKind kind)
{
    switch (kind) {
      case ArrayKind::Int:   return 4;
      case ArrayKind::Float: return 4;
      case ArrayKind::Char:  return 2;
      case ArrayKind::Byte:  return 1;
      case ArrayKind::Ref:   return 4;
    }
    return 4;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop:          return "nop";
      case Op::Iconst8:      return "iconst8";
      case Op::Iconst32:     return "iconst32";
      case Op::Fconst:       return "fconst";
      case Op::AconstNull:   return "aconst_null";
      case Op::LdcStr:       return "ldc_str";
      case Op::Iload:        return "iload";
      case Op::Fload:        return "fload";
      case Op::Aload:        return "aload";
      case Op::Istore:       return "istore";
      case Op::Fstore:       return "fstore";
      case Op::Astore:       return "astore";
      case Op::Iinc:         return "iinc";
      case Op::Pop:          return "pop";
      case Op::Dup:          return "dup";
      case Op::DupX1:        return "dup_x1";
      case Op::Swap:         return "swap";
      case Op::Iadd:         return "iadd";
      case Op::Isub:         return "isub";
      case Op::Imul:         return "imul";
      case Op::Idiv:         return "idiv";
      case Op::Irem:         return "irem";
      case Op::Ineg:         return "ineg";
      case Op::Ishl:         return "ishl";
      case Op::Ishr:         return "ishr";
      case Op::Iushr:        return "iushr";
      case Op::Iand:         return "iand";
      case Op::Ior:          return "ior";
      case Op::Ixor:         return "ixor";
      case Op::Fadd:         return "fadd";
      case Op::Fsub:         return "fsub";
      case Op::Fmul:         return "fmul";
      case Op::Fdiv:         return "fdiv";
      case Op::Fneg:         return "fneg";
      case Op::Fcmpl:        return "fcmpl";
      case Op::I2f:          return "i2f";
      case Op::F2i:          return "f2i";
      case Op::I2c:          return "i2c";
      case Op::I2b:          return "i2b";
      case Op::Goto:         return "goto";
      case Op::Ifeq:         return "ifeq";
      case Op::Ifne:         return "ifne";
      case Op::Iflt:         return "iflt";
      case Op::Ifge:         return "ifge";
      case Op::Ifgt:         return "ifgt";
      case Op::Ifle:         return "ifle";
      case Op::IfIcmpeq:     return "if_icmpeq";
      case Op::IfIcmpne:     return "if_icmpne";
      case Op::IfIcmplt:     return "if_icmplt";
      case Op::IfIcmpge:     return "if_icmpge";
      case Op::IfIcmpgt:     return "if_icmpgt";
      case Op::IfIcmple:     return "if_icmple";
      case Op::IfAcmpeq:     return "if_acmpeq";
      case Op::IfAcmpne:     return "if_acmpne";
      case Op::Ifnull:       return "ifnull";
      case Op::Ifnonnull:    return "ifnonnull";
      case Op::TableSwitch:  return "tableswitch";
      case Op::LookupSwitch: return "lookupswitch";
      case Op::InvokeStatic: return "invokestatic";
      case Op::InvokeVirtual:return "invokevirtual";
      case Op::InvokeSpecial:return "invokespecial";
      case Op::ReturnVoid:   return "return";
      case Op::Ireturn:      return "ireturn";
      case Op::Freturn:      return "freturn";
      case Op::Areturn:      return "areturn";
      case Op::GetFieldI:    return "getfield_i";
      case Op::GetFieldF:    return "getfield_f";
      case Op::GetFieldA:    return "getfield_a";
      case Op::PutFieldI:    return "putfield_i";
      case Op::PutFieldF:    return "putfield_f";
      case Op::PutFieldA:    return "putfield_a";
      case Op::GetStaticI:   return "getstatic_i";
      case Op::GetStaticF:   return "getstatic_f";
      case Op::GetStaticA:   return "getstatic_a";
      case Op::PutStaticI:   return "putstatic_i";
      case Op::PutStaticF:   return "putstatic_f";
      case Op::PutStaticA:   return "putstatic_a";
      case Op::New:          return "new";
      case Op::NewArray:     return "newarray";
      case Op::ArrayLength:  return "arraylength";
      case Op::IAload:       return "iaload";
      case Op::IAstore:      return "iastore";
      case Op::FAload:       return "faload";
      case Op::FAstore:      return "fastore";
      case Op::CAload:       return "caload";
      case Op::CAstore:      return "castore";
      case Op::BAload:       return "baload";
      case Op::BAstore:      return "bastore";
      case Op::AAload:       return "aaload";
      case Op::AAstore:      return "aastore";
      case Op::MonitorEnter: return "monitorenter";
      case Op::MonitorExit:  return "monitorexit";
      case Op::Athrow:       return "athrow";
      case Op::Intrinsic:    return "intrinsic";
      case Op::SpawnThread:  return "spawnthread";
      case Op::JoinThread:   return "jointhread";
      case Op::OpCount_:     break;
    }
    return "invalid";
}

int
operandBytes(Op op)
{
    switch (op) {
      case Op::Iconst8:
        return 1;
      case Op::Iconst32:
      case Op::Fconst:
        return 4;
      case Op::LdcStr:
        return 2;
      case Op::Iload:
      case Op::Fload:
      case Op::Aload:
      case Op::Istore:
      case Op::Fstore:
      case Op::Astore:
        return 1;
      case Op::Iinc:
        return 2;
      case Op::Goto:
      case Op::Ifeq: case Op::Ifne: case Op::Iflt:
      case Op::Ifge: case Op::Ifgt: case Op::Ifle:
      case Op::IfIcmpeq: case Op::IfIcmpne: case Op::IfIcmplt:
      case Op::IfIcmpge: case Op::IfIcmpgt: case Op::IfIcmple:
      case Op::IfAcmpeq: case Op::IfAcmpne:
      case Op::Ifnull: case Op::Ifnonnull:
        return 2;
      case Op::TableSwitch:
      case Op::LookupSwitch:
        return -1;
      case Op::InvokeStatic:
      case Op::InvokeVirtual:
      case Op::InvokeSpecial:
        return 2;
      case Op::GetFieldI: case Op::GetFieldF: case Op::GetFieldA:
      case Op::PutFieldI: case Op::PutFieldF: case Op::PutFieldA:
      case Op::GetStaticI: case Op::GetStaticF: case Op::GetStaticA:
      case Op::PutStaticI: case Op::PutStaticF: case Op::PutStaticA:
        return 2;
      case Op::New:
        return 2;
      case Op::NewArray:
        return 1;
      case Op::Intrinsic:
        return 1;
      case Op::SpawnThread:
        return 2;
      default:
        return 0;
    }
}

bool
isConditionalBranch(Op op)
{
    switch (op) {
      case Op::Ifeq: case Op::Ifne: case Op::Iflt:
      case Op::Ifge: case Op::Ifgt: case Op::Ifle:
      case Op::IfIcmpeq: case Op::IfIcmpne: case Op::IfIcmplt:
      case Op::IfIcmpge: case Op::IfIcmpgt: case Op::IfIcmple:
      case Op::IfAcmpeq: case Op::IfAcmpne:
      case Op::Ifnull: case Op::Ifnonnull:
        return true;
      default:
        return false;
    }
}

bool
endsBasicBlock(Op op)
{
    switch (op) {
      case Op::Goto:
      case Op::TableSwitch:
      case Op::LookupSwitch:
      case Op::ReturnVoid:
      case Op::Ireturn:
      case Op::Freturn:
      case Op::Areturn:
      case Op::Athrow:
        return true;
      default:
        return false;
    }
}

std::uint32_t
instrLength(const std::vector<std::uint8_t> &code, std::uint32_t pc)
{
    const Op op = static_cast<Op>(code[pc]);
    const int fixed = operandBytes(op);
    if (fixed >= 0)
        return 1 + static_cast<std::uint32_t>(fixed);
    if (op == Op::TableSwitch) {
        // [op][s16 default][s32 low][u16 count][count * s16]
        const std::uint16_t count = readU16(code, pc + 7);
        return 1 + 2 + 4 + 2 + count * 2u;
    }
    // LookupSwitch: [op][s16 default][u16 npairs][npairs * (s32, s16)]
    const std::uint16_t npairs = readU16(code, pc + 3);
    return 1 + 2 + 2 + npairs * 6u;
}

} // namespace jrs
