/**
 * @file
 * Programmatic bytecode assembler.
 *
 * Workloads construct Programs through a fluent builder API:
 *
 * @code
 *   ProgramBuilder pb("demo");
 *   ClassBuilder &vec = pb.cls("Vector");
 *   vec.field("size");
 *   MethodBuilder &m = vec.virtualMethod("get", {VType::Ref, VType::Int},
 *                                        VType::Int);
 *   m.aload(0).getFieldI("Vector.size").ireturn();
 *   Program prog = pb.finish("Main.run");
 * @endcode
 *
 * Symbolic references (method names, field names, labels) are resolved
 * in ProgramBuilder::finish(), which also verifies branch targets,
 * computes per-method operand-stack bounds via abstract interpretation
 * (a light form of the JVM verifier's type-less pass), lays out vtables
 * and assigns simulated bytecode addresses.
 */
#ifndef JRS_VM_BYTECODE_ASSEMBLER_H
#define JRS_VM_BYTECODE_ASSEMBLER_H

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "vm/bytecode/class_def.h"
#include "vm/bytecode/opcode.h"

namespace jrs {

class ProgramBuilder;
class ClassBuilder;

/** Error thrown on malformed input to the assembler. */
class AssemblerError : public std::runtime_error {
  public:
    explicit AssemblerError(const std::string &what)
        : std::runtime_error("assembler: " + what) {}
};

/** Opaque branch-target handle created by MethodBuilder::newLabel(). */
using Label = std::uint32_t;

/**
 * Builds the bytecode of one method. Obtained from ClassBuilder /
 * ProgramBuilder; never constructed directly.
 */
class MethodBuilder {
  public:
    /** Declare the total number of local slots (>= numArgs). */
    MethodBuilder &locals(std::uint8_t n);

    /** Mark the method synchronized (monitor on receiver / class). */
    MethodBuilder &synchronized_();

    // --- constants -----------------------------------------------------
    MethodBuilder &iconst(std::int32_t v);   ///< picks 8/32-bit form
    MethodBuilder &fconst(float v);
    MethodBuilder &aconstNull();
    MethodBuilder &ldcStr(const std::string &s);

    // --- locals --------------------------------------------------------
    MethodBuilder &iload(std::uint8_t slot);
    MethodBuilder &fload(std::uint8_t slot);
    MethodBuilder &aload(std::uint8_t slot);
    MethodBuilder &istore(std::uint8_t slot);
    MethodBuilder &fstore(std::uint8_t slot);
    MethodBuilder &astore(std::uint8_t slot);
    MethodBuilder &iinc(std::uint8_t slot, std::int8_t delta);

    // --- stack ---------------------------------------------------------
    MethodBuilder &pop();
    MethodBuilder &dup();
    MethodBuilder &dupX1();
    MethodBuilder &swap();

    // --- arithmetic ----------------------------------------------------
    MethodBuilder &iadd();
    MethodBuilder &isub();
    MethodBuilder &imul();
    MethodBuilder &idiv();
    MethodBuilder &irem();
    MethodBuilder &ineg();
    MethodBuilder &ishl();
    MethodBuilder &ishr();
    MethodBuilder &iushr();
    MethodBuilder &iand();
    MethodBuilder &ior();
    MethodBuilder &ixor();
    MethodBuilder &fadd();
    MethodBuilder &fsub();
    MethodBuilder &fmul();
    MethodBuilder &fdiv();
    MethodBuilder &fneg();
    MethodBuilder &fcmpl();
    MethodBuilder &i2f();
    MethodBuilder &f2i();
    MethodBuilder &i2c();
    MethodBuilder &i2b();

    // --- control -------------------------------------------------------
    /** Create a fresh unbound label. */
    Label newLabel();
    /** Bind @p label to the current bytecode position. */
    MethodBuilder &bind(Label label);

    MethodBuilder &gotoL(Label l);
    MethodBuilder &ifeq(Label l);
    MethodBuilder &ifne(Label l);
    MethodBuilder &iflt(Label l);
    MethodBuilder &ifge(Label l);
    MethodBuilder &ifgt(Label l);
    MethodBuilder &ifle(Label l);
    MethodBuilder &ifIcmpeq(Label l);
    MethodBuilder &ifIcmpne(Label l);
    MethodBuilder &ifIcmplt(Label l);
    MethodBuilder &ifIcmpge(Label l);
    MethodBuilder &ifIcmpgt(Label l);
    MethodBuilder &ifIcmple(Label l);
    MethodBuilder &ifAcmpeq(Label l);
    MethodBuilder &ifAcmpne(Label l);
    MethodBuilder &ifnull(Label l);
    MethodBuilder &ifnonnull(Label l);

    /**
     * Emit a tableswitch over [low, low + targets.size() - 1].
     * Pops the index; out-of-range goes to @p deflt.
     */
    MethodBuilder &tableSwitch(std::int32_t low,
                               const std::vector<Label> &targets,
                               Label deflt);

    /** Emit a lookupswitch over (key, target) pairs. */
    MethodBuilder &lookupSwitch(
        const std::vector<std::pair<std::int32_t, Label>> &pairs,
        Label deflt);

    // --- calls ---------------------------------------------------------
    /** Call a static method by qualified name "Class.method". */
    MethodBuilder &invokeStatic(const std::string &qualified);
    /** Virtual dispatch by qualified name (slot from named class). */
    MethodBuilder &invokeVirtual(const std::string &qualified);
    /** Direct (non-virtual) instance call, e.g. constructors. */
    MethodBuilder &invokeSpecial(const std::string &qualified);
    MethodBuilder &returnVoid();
    MethodBuilder &ireturn();
    MethodBuilder &freturn();
    MethodBuilder &areturn();

    // --- fields --------------------------------------------------------
    MethodBuilder &getFieldI(const std::string &qualified);
    MethodBuilder &getFieldF(const std::string &qualified);
    MethodBuilder &getFieldA(const std::string &qualified);
    MethodBuilder &putFieldI(const std::string &qualified);
    MethodBuilder &putFieldF(const std::string &qualified);
    MethodBuilder &putFieldA(const std::string &qualified);
    MethodBuilder &getStaticI(const std::string &name);
    MethodBuilder &getStaticF(const std::string &name);
    MethodBuilder &getStaticA(const std::string &name);
    MethodBuilder &putStaticI(const std::string &name);
    MethodBuilder &putStaticF(const std::string &name);
    MethodBuilder &putStaticA(const std::string &name);

    // --- objects and arrays --------------------------------------------
    MethodBuilder &newObject(const std::string &class_name);
    MethodBuilder &newArray(ArrayKind kind);
    MethodBuilder &arrayLength();
    MethodBuilder &iaload();
    MethodBuilder &iastore();
    MethodBuilder &faload();
    MethodBuilder &fastore();
    MethodBuilder &caload();
    MethodBuilder &castore();
    MethodBuilder &baload();
    MethodBuilder &bastore();
    MethodBuilder &aaload();
    MethodBuilder &aastore();

    // --- sync / exceptions / runtime ------------------------------------
    MethodBuilder &monitorEnter();
    MethodBuilder &monitorExit();
    MethodBuilder &athrow();
    MethodBuilder &intrinsic(IntrinsicId id);
    MethodBuilder &spawnThread(const std::string &qualified);
    MethodBuilder &joinThread();
    MethodBuilder &nop();

    /**
     * Register an exception handler covering [start, end) with entry at
     * @p handler. Empty @p catch_class catches everything.
     */
    MethodBuilder &addHandler(Label start, Label end, Label handler,
                              const std::string &catch_class = "");

    /** Current bytecode offset (next instruction position). */
    std::uint32_t here() const {
        return static_cast<std::uint32_t>(code_.size());
    }

    /** Qualified method name being built. */
    const std::string &name() const { return name_; }

    /** Global id this method will have in the finished Program. */
    MethodId id() const { return id_; }

  private:
    friend class ProgramBuilder;
    friend class ClassBuilder;

    MethodBuilder(ProgramBuilder *pb, std::string name, MethodId id);

    void emitOp(Op op);
    void emitU8(std::uint8_t v);
    void emitU16(std::uint16_t v);
    void emitS32(std::int32_t v);
    MethodBuilder &branch(Op op, Label l);
    MethodBuilder &symbolU16(Op op, std::uint8_t sym_kind,
                             const std::string &symbol);

    struct Fixup {
        std::uint32_t at;       ///< offset of the s16 to patch
        std::uint32_t opcodeAt; ///< offset of the owning opcode
        Label label;
    };
    struct SymbolRef {
        std::uint32_t at;   ///< offset of the u16 to patch
        std::uint8_t kind;  ///< see ProgramBuilder::resolve
        std::string symbol;
    };
    struct PendingHandler {
        Label start, end, handler;
        std::string catchClass;
    };

    ProgramBuilder *pb_;
    std::string name_;
    MethodId id_;
    std::vector<std::uint8_t> code_;
    std::vector<std::int64_t> labelPos_;  ///< -1 while unbound
    std::vector<Fixup> fixups_;
    std::vector<SymbolRef> symbols_;
    std::vector<PendingHandler> pendingHandlers_;
    std::uint8_t numArgs_ = 0;
    std::uint8_t numLocals_ = 0;
    std::vector<VType> argTypes_;
    VType returnType_ = VType::Void;
    bool isStatic_ = true;
    bool isSynchronized_ = false;
    ClassId owner_ = kNoClass;
};

/** Builds one class: fields and methods. */
class ClassBuilder {
  public:
    /** Add an instance field (4-byte slot); returns its slot index. */
    std::uint16_t field(const std::string &name);

    /**
     * Add a static method. @p args lists parameter types (no receiver).
     */
    MethodBuilder &staticMethod(const std::string &name,
                                const std::vector<VType> &args,
                                VType ret = VType::Void);

    /**
     * Add a virtual method (receiver is arg 0 implicitly). Overrides an
     * inherited slot of the same name when present.
     */
    MethodBuilder &virtualMethod(const std::string &name,
                                 const std::vector<VType> &args,
                                 VType ret = VType::Void);

    /** Add a constructor-like direct instance method. */
    MethodBuilder &specialMethod(const std::string &name,
                                 const std::vector<VType> &args,
                                 VType ret = VType::Void);

    /** Class name. */
    const std::string &name() const { return def_.name; }

    /** Class id within the program being built. */
    ClassId id() const { return def_.id; }

  private:
    friend class ProgramBuilder;
    ClassBuilder(ProgramBuilder *pb, ClassDef def) : pb_(pb),
        def_(std::move(def)) {}

    ProgramBuilder *pb_;
    ClassDef def_;
};

/** Builds a whole Program. */
class ProgramBuilder {
  public:
    explicit ProgramBuilder(std::string program_name);
    ~ProgramBuilder();

    ProgramBuilder(const ProgramBuilder &) = delete;
    ProgramBuilder &operator=(const ProgramBuilder &) = delete;

    /**
     * Create a class. @p super_name must already exist when non-empty
     * (single inheritance, superclass-first ordering).
     */
    ClassBuilder &cls(const std::string &name,
                      const std::string &super_name = "");

    /** Intern a string literal; returns its index. */
    std::uint16_t stringLiteral(const std::string &s);

    /** Declare a static variable slot; returns its index. */
    std::uint16_t staticSlot(const std::string &name,
                             VType type = VType::Int);

    /**
     * Resolve all symbols, verify, compute stack bounds, lay out
     * addresses and return the finished Program. The builder must not
     * be used afterwards.
     *
     * @param entry Qualified name of the entry method — must be static
     *              with signature (int) -> void or int.
     */
    Program finish(const std::string &entry);

  private:
    friend class MethodBuilder;
    friend class ClassBuilder;

    /** Symbol kinds for late-bound u16 operands. */
    enum SymKind : std::uint8_t {
        kSymStaticMethod,   ///< method id of "Class.name"
        kSymVirtualSlot,    ///< vtable slot of "Class.name"
        kSymSpecialMethod,  ///< method id of "Class.name"
        kSymField,          ///< field slot of "Class.field"
        kSymStatic,         ///< static slot by bare name
        kSymClass,          ///< class id
        kSymString,         ///< string literal index
        kSymSpawn,          ///< method id for SpawnThread
    };

    MethodBuilder &addMethod(ClassBuilder &cb, const std::string &name,
                             const std::vector<VType> &args, VType ret,
                             bool is_static, bool is_special);
    std::uint16_t resolve(std::uint8_t kind, const std::string &symbol,
                          const std::string &where);
    void computeStackBounds(Method &m, const Program &prog) const;

    std::string name_;
    std::vector<std::unique_ptr<ClassBuilder>> classes_;
    std::vector<std::unique_ptr<MethodBuilder>> methods_;
    std::vector<std::string> stringLiterals_;
    std::vector<StaticSlot> statics_;
    std::uint16_t nextVSlot_ = 0;  ///< global vtable slot allocator
    bool finished_ = false;
};

/**
 * Compute the operand-stack depth at every bytecode offset of a sealed
 * method (-1 for unreachable offsets). Shared with the JIT translator,
 * which assigns registers to stack positions from this map.
 */
std::vector<int> computeStackDepths(const Method &m, const Program &prog);

} // namespace jrs

#endif // JRS_VM_BYTECODE_ASSEMBLER_H
