#include "vm/sync/lock_stats.h"

namespace jrs {

const char *
lockCaseName(LockCase c)
{
    switch (c) {
      case LockCase::Unlocked:      return "(a) unlocked";
      case LockCase::Recursive:     return "(b) recursive<256";
      case LockCase::DeepRecursive: return "(c) recursive>=256";
      case LockCase::Contended:     return "(d) contended";
    }
    return "invalid";
}

} // namespace jrs
