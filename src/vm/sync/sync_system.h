/**
 * @file
 * Abstract monitor implementation interface.
 *
 * Three concrete strategies mirror Section 5 of the paper:
 *  - MonitorCacheSync: JDK 1.1.6's hashed, globally-locked monitor cache
 *  - ThinLockSync: Bacon-style 24-bit thin locks in the object header
 *  - OneBitLockSync: the paper's proposed minimal variant that only
 *    optimizes case (a)
 *
 * enter() is non-blocking: a false return means the calling thread must
 * block; the green-thread scheduler re-attempts when the lock owner
 * exits. Every operation contributes simulated cycles to LockStats and
 * (when tracing) Runtime-phase TraceEvents, so lock overhead shows up
 * in the architectural studies exactly as it did under Shade.
 */
#ifndef JRS_VM_SYNC_SYNC_SYSTEM_H
#define JRS_VM_SYNC_SYNC_SYSTEM_H

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "isa/emitter.h"
#include "vm/runtime/heap.h"
#include "vm/sync/lock_stats.h"

namespace jrs {

/** Which monitor implementation an engine uses. */
enum class SyncKind : std::uint8_t {
    MonitorCache,
    ThinLock,
    OneBitLock,
};

/** Printable name of a SyncKind. */
const char *syncKindName(SyncKind kind);

/** A heavyweight (fat) monitor record. */
struct FatMonitor {
    std::uint32_t owner = 0;  ///< tid + 1; 0 = free
    std::uint32_t depth = 0;
    std::uint32_t waiters = 0;
};

/** Base class of all monitor implementations. */
class SyncSystem {
  public:
    SyncSystem(Heap &heap, TraceEmitter &emitter)
        : heap_(heap), emitter_(emitter) {}
    virtual ~SyncSystem() = default;

    SyncSystem(const SyncSystem &) = delete;
    SyncSystem &operator=(const SyncSystem &) = delete;

    /**
     * Attempt to acquire the monitor of @p obj for thread @p tid.
     * @return false when the thread must block (the access is counted
     *         as case (d) only on the first failed attempt).
     */
    virtual bool enter(std::uint32_t tid, SimAddr obj) = 0;

    /**
     * Release the monitor. Throws VmError when @p tid is not the
     * owner (guest IllegalMonitorStateException territory).
     */
    virtual void exit(std::uint32_t tid, SimAddr obj) = 0;

    /** True when @p tid currently owns the monitor of @p obj. */
    virtual bool owns(std::uint32_t tid, SimAddr obj) const = 0;

    /** Implementation name for reports. */
    virtual const char *name() const = 0;

    /**
     * GC hook: @p fwd maps an object address to its post-collection
     * address, or 0 when the object died. Thin/one-bit locks live in
     * the lockword and move with the object's bytes, so the base
     * implementation only remaps the blocked-retry markers; address-
     * keyed implementations (the monitor cache) override to rekey
     * their tables and drop dead entries (a locked object is always
     * reachable — its holder's frame roots it — so dropped monitors
     * are guaranteed free).
     */
    virtual void relocate(const std::function<SimAddr(SimAddr)> &fwd);

    /** Accumulated statistics. */
    const LockStats &stats() const { return stats_; }

    /** Reset statistics (between experiment phases). */
    void resetStats() { stats_.reset(); }

  protected:
    /** Count @p n simulated cycles for the current operation. */
    void cost(std::uint64_t n) { stats_.simCycles += n; }

    /** Classify an access; deduplicates repeated blocked retries. */
    void classify(LockCase c, std::uint32_t tid, SimAddr obj);

    /** Clear the blocked-retry marker once a thread acquires a lock. */
    void clearRetry(std::uint32_t tid);

    Heap &heap_;
    TraceEmitter &emitter_;
    LockStats stats_;

  private:
    /** tid -> object it already counted a contended attempt against. */
    std::unordered_map<std::uint32_t, SimAddr> blockedRetry_;
};

} // namespace jrs

#endif // JRS_VM_SYNC_SYNC_SYSTEM_H
