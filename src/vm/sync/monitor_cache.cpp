#include "vm/sync/monitor_cache.h"

namespace jrs {

namespace {

/** Simulated code addresses of the runtime lock routines. */
constexpr SimAddr kEnterPc = seg::kRuntimeCode + 0x100;
constexpr SimAddr kExitPc = seg::kRuntimeCode + 0x200;

/** Simulated address of the global cache lock. */
constexpr SimAddr kCacheLockAddr = seg::kRuntimeData;

/** Simulated address of bucket @p b's head pointer. */
SimAddr
bucketAddr(std::uint32_t b)
{
    return seg::kRuntimeData + 64 + 8ull * b;
}

} // namespace

MonitorCacheSync::Node &
MonitorCacheSync::lookup(std::uint32_t tid, SimAddr obj)
{
    (void)tid;
    const std::uint32_t bucket = bucketOf(obj);

    // Hash computation.
    emitter_.alu(Phase::Runtime, kEnterPc + 0);
    emitter_.alu(Phase::Runtime, kEnterPc + 4);
    // Acquire the global cache lock (load + store, modelling a CAS).
    emitter_.load(Phase::Runtime, kEnterPc + 8, kCacheLockAddr);
    emitter_.store(Phase::Runtime, kEnterPc + 12, kCacheLockAddr);
    // Load the bucket head pointer.
    emitter_.load(Phase::Runtime, kEnterPc + 16, bucketAddr(bucket));
    std::uint64_t cycles = 5;

    auto it = monitors_.find(obj);
    if (it == monitors_.end()) {
        Node node;
        node.chainPos = chainLen_[bucket]++;
        node.nodeAddr = seg::kRuntimeData + 0x1000 + 32ull * nextNode_++;
        // Walk the existing chain, then link the new node (two stores).
        for (std::uint32_t hop = 0; hop < node.chainPos; ++hop) {
            emitter_.load(Phase::Runtime, kEnterPc + 20,
                          node.nodeAddr - 32ull * (hop + 1));
            ++cycles;
        }
        emitter_.store(Phase::Runtime, kEnterPc + 24, node.nodeAddr);
        emitter_.store(Phase::Runtime, kEnterPc + 28, bucketAddr(bucket));
        cycles += 2;
        it = monitors_.emplace(obj, node).first;
    } else {
        // Walk the chain up to this node's position.
        for (std::uint32_t hop = 0; hop <= it->second.chainPos; ++hop) {
            emitter_.load(Phase::Runtime, kEnterPc + 20,
                          it->second.nodeAddr);
            ++cycles;
        }
    }
    cost(cycles);
    return it->second;
}

bool
MonitorCacheSync::enter(std::uint32_t tid, SimAddr obj)
{
    Node &node = lookup(tid, obj);
    FatMonitor &mon = node.mon;

    // Inspect + update the monitor record, release the cache lock.
    emitter_.load(Phase::Runtime, kEnterPc + 32, node.nodeAddr + 8);
    emitter_.store(Phase::Runtime, kEnterPc + 40, kCacheLockAddr);
    cost(3);

    if (mon.owner == 0) {
        mon.owner = tid + 1;
        mon.depth = 1;
        emitter_.store(Phase::Runtime, kEnterPc + 36, node.nodeAddr + 8);
        cost(1);
        classify(LockCase::Unlocked, tid, obj);
        clearRetry(tid);
        ++stats_.enterOps;
        return true;
    }
    if (mon.owner == tid + 1) {
        ++mon.depth;
        emitter_.store(Phase::Runtime, kEnterPc + 36, node.nodeAddr + 12);
        cost(1);
        classify(mon.depth <= 256 ? LockCase::Recursive
                                  : LockCase::DeepRecursive,
                 tid, obj);
        ++stats_.enterOps;
        return true;
    }
    ++mon.waiters;
    classify(LockCase::Contended, tid, obj);
    return false;
}

void
MonitorCacheSync::exit(std::uint32_t tid, SimAddr obj)
{
    Node &node = lookup(tid, obj);
    FatMonitor &mon = node.mon;
    if (mon.owner != tid + 1)
        throw VmError("monitor exit by non-owner");

    emitter_.load(Phase::Runtime, kExitPc + 0, node.nodeAddr + 8);
    emitter_.store(Phase::Runtime, kExitPc + 4, node.nodeAddr + 8);
    emitter_.store(Phase::Runtime, kExitPc + 8, kCacheLockAddr);
    cost(3);

    if (--mon.depth == 0)
        mon.owner = 0;
    ++stats_.exitOps;
}

bool
MonitorCacheSync::owns(std::uint32_t tid, SimAddr obj) const
{
    auto it = monitors_.find(obj);
    return it != monitors_.end() && it->second.mon.owner == tid + 1;
}

void
MonitorCacheSync::relocate(const std::function<SimAddr(SimAddr)> &fwd)
{
    SyncSystem::relocate(fwd);
    std::unordered_map<SimAddr, Node> rekeyed;
    rekeyed.reserve(monitors_.size());
    for (auto &[obj, node] : monitors_) {
        const SimAddr to = fwd(obj);
        if (to == 0)
            continue;  // dead object; its monitor is necessarily free
        rekeyed.emplace(to, node);
    }
    monitors_ = std::move(rekeyed);
}

} // namespace jrs
