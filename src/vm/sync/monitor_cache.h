/**
 * @file
 * JDK 1.1.6-style monitor cache.
 *
 * A space-efficient but slow scheme: an open-hashing table of 128
 * buckets maps an object's address to its monitor record. Every
 * operation first locks the entire cache, hashes the object address,
 * walks the bucket chain, and only then manipulates the monitor —
 * exactly the overhead structure the paper identifies as wasteful in
 * the (overwhelmingly common) uncontended case.
 */
#ifndef JRS_VM_SYNC_MONITOR_CACHE_H
#define JRS_VM_SYNC_MONITOR_CACHE_H

#include <unordered_map>
#include <vector>

#include "vm/sync/sync_system.h"

namespace jrs {

/** Number of hash buckets (matches JDK 1.1.6). */
inline constexpr std::uint32_t kMonitorCacheBuckets = 128;

/** The monitor-cache synchronization strategy. */
class MonitorCacheSync : public SyncSystem {
  public:
    MonitorCacheSync(Heap &heap, TraceEmitter &emitter)
        : SyncSystem(heap, emitter) {}

    bool enter(std::uint32_t tid, SimAddr obj) override;
    void exit(std::uint32_t tid, SimAddr obj) override;
    bool owns(std::uint32_t tid, SimAddr obj) const override;
    const char *name() const override { return "monitor_cache"; }
    void relocate(const std::function<SimAddr(SimAddr)> &fwd) override;

    /** Monitors currently live in the cache (tests). */
    std::size_t liveMonitors() const { return monitors_.size(); }

  private:
    struct Node {
        FatMonitor mon;
        std::uint32_t chainPos;  ///< depth in its bucket chain
        SimAddr nodeAddr;        ///< simulated node address
    };

    /** Walk the cache: hash, lock, chain; returns the node (creating
     *  it on demand) and accounts cycles + trace events. */
    Node &lookup(std::uint32_t tid, SimAddr obj);

    static std::uint32_t bucketOf(SimAddr obj) {
        return static_cast<std::uint32_t>((obj >> 3) * 2654435761u)
            % kMonitorCacheBuckets;
    }

    std::unordered_map<SimAddr, Node> monitors_;
    std::vector<std::uint32_t> chainLen_ =
        std::vector<std::uint32_t>(kMonitorCacheBuckets, 0);
    std::uint32_t nextNode_ = 0;
};

} // namespace jrs

#endif // JRS_VM_SYNC_MONITOR_CACHE_H
