/**
 * @file
 * Thin locks (Bacon et al.) and the paper's one-bit variant.
 *
 * ThinLockSync devotes 24 bits of the object header's lockword to
 * locking: 1 shape bit, 8 recursion bits, 15 owner bits. Cases (a) and
 * (b) complete with a couple of header accesses; deep recursion and
 * contention inflate to a fat monitor kept in a side table.
 *
 * OneBitLockSync is the minimal design the paper concludes with: one
 * header bit marks "thin-locked", so only case (a) — more than 80% of
 * all accesses in SpecJVM98 — takes the fast path; every other case
 * inflates. Ownership of thin-held locks is recovered from thread-local
 * lock records (modeled here as a shadow map with no simulated cost).
 */
#ifndef JRS_VM_SYNC_THIN_LOCK_H
#define JRS_VM_SYNC_THIN_LOCK_H

#include <unordered_map>

#include "vm/sync/sync_system.h"

namespace jrs {

/** 24-bit thin-lock implementation. */
class ThinLockSync : public SyncSystem {
  public:
    ThinLockSync(Heap &heap, TraceEmitter &emitter)
        : SyncSystem(heap, emitter) {}

    bool enter(std::uint32_t tid, SimAddr obj) override;
    void exit(std::uint32_t tid, SimAddr obj) override;
    bool owns(std::uint32_t tid, SimAddr obj) const override;
    const char *name() const override { return "thin_lock"; }

    // Lockword encoding (exposed for tests).
    static std::uint32_t pack(std::uint32_t tid, std::uint32_t depth) {
        return ((tid + 1) << 9) | (depth << 1);
    }
    static bool isFat(std::uint32_t w) { return (w & 1u) != 0; }
    static std::uint32_t ownerOf(std::uint32_t w) { return w >> 9; }
    static std::uint32_t depthOf(std::uint32_t w) {
        return (w >> 1) & 0xffu;
    }

    /** Live fat monitors (tests). */
    std::size_t fatMonitors() const { return fat_.size(); }

  private:
    FatMonitor &fatOf(SimAddr obj);
    bool fatEnter(std::uint32_t tid, SimAddr obj, std::uint32_t depth_bias);

    std::unordered_map<SimAddr, FatMonitor> fat_;
};

/** One-bit lock implementation (optimizes only case (a)). */
class OneBitLockSync : public SyncSystem {
  public:
    OneBitLockSync(Heap &heap, TraceEmitter &emitter)
        : SyncSystem(heap, emitter) {}

    bool enter(std::uint32_t tid, SimAddr obj) override;
    void exit(std::uint32_t tid, SimAddr obj) override;
    bool owns(std::uint32_t tid, SimAddr obj) const override;
    const char *name() const override { return "one_bit_lock"; }

    /** Live fat monitors (tests). */
    std::size_t fatMonitors() const { return fat_.size(); }

  private:
    // Lockword bits: bit0 = thin-locked, bit1 = fat shape.
    std::unordered_map<SimAddr, FatMonitor> fat_;
    /** Thread-local lock records: owner of each thin-held lock. */
    std::unordered_map<SimAddr, std::uint32_t> thinOwner_;
};

} // namespace jrs

#endif // JRS_VM_SYNC_THIN_LOCK_H
