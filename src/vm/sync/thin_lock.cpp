#include "vm/sync/thin_lock.h"

namespace jrs {

namespace {

constexpr SimAddr kThinEnterPc = seg::kRuntimeCode + 0x300;
constexpr SimAddr kThinExitPc = seg::kRuntimeCode + 0x340;
constexpr SimAddr kFatPc = seg::kRuntimeCode + 0x380;
constexpr SimAddr kOneBitEnterPc = seg::kRuntimeCode + 0x400;
constexpr SimAddr kOneBitExitPc = seg::kRuntimeCode + 0x440;

/** Synthetic side-table node address for a fat monitor. */
SimAddr
fatNodeAddr(SimAddr obj)
{
    return seg::kRuntimeData + 0x8000 + ((obj >> 3) & 0xfffull) * 32;
}

} // namespace

// ---------------------------------------------------------------------
// ThinLockSync
// ---------------------------------------------------------------------

FatMonitor &
ThinLockSync::fatOf(SimAddr obj)
{
    return fat_[obj];
}

bool
ThinLockSync::fatEnter(std::uint32_t tid, SimAddr obj,
                       std::uint32_t depth_bias)
{
    // Fat path: hash into the side table, inspect, update (~10 ops).
    emitter_.alu(Phase::Runtime, kFatPc + 0);
    emitter_.load(Phase::Runtime, kFatPc + 4, fatNodeAddr(obj));
    emitter_.load(Phase::Runtime, kFatPc + 8, fatNodeAddr(obj) + 8);
    cost(6);

    FatMonitor &mon = fatOf(obj);
    if (mon.owner == 0) {
        mon.owner = tid + 1;
        mon.depth = 1 + depth_bias;
        emitter_.store(Phase::Runtime, kFatPc + 12, fatNodeAddr(obj) + 8);
        cost(2);
        classify(LockCase::Unlocked, tid, obj);
        clearRetry(tid);
        ++stats_.enterOps;
        return true;
    }
    if (mon.owner == tid + 1) {
        ++mon.depth;
        emitter_.store(Phase::Runtime, kFatPc + 12,
                       fatNodeAddr(obj) + 12);
        cost(2);
        classify(mon.depth <= 256 ? LockCase::Recursive
                                  : LockCase::DeepRecursive,
                 tid, obj);
        ++stats_.enterOps;
        return true;
    }
    ++mon.waiters;
    classify(LockCase::Contended, tid, obj);
    return false;
}

bool
ThinLockSync::enter(std::uint32_t tid, SimAddr obj)
{
    const SimAddr lw_addr = Heap::lockwordAddr(obj);
    const std::uint32_t w = heap_.lockword(obj);
    emitter_.load(Phase::Runtime, kThinEnterPc + 0, lw_addr);

    if (isFat(w)) {
        cost(1);
        return fatEnter(tid, obj, 0);
    }
    if (w == 0) {
        // Case (a): CAS the thin word in.
        heap_.setLockword(obj, pack(tid, 1));
        emitter_.alu(Phase::Runtime, kThinEnterPc + 4);
        emitter_.alu(Phase::Runtime, kThinEnterPc + 6);
        emitter_.store(Phase::Runtime, kThinEnterPc + 8, lw_addr);
        cost(4);
        classify(LockCase::Unlocked, tid, obj);
        clearRetry(tid);
        ++stats_.enterOps;
        return true;
    }
    if (ownerOf(w) == tid + 1) {
        const std::uint32_t depth = depthOf(w);
        if (depth < 255) {
            // Case (b): bump the recursion count in place.
            heap_.setLockword(obj, pack(tid, depth + 1));
            emitter_.alu(Phase::Runtime, kThinEnterPc + 12);
            emitter_.alu(Phase::Runtime, kThinEnterPc + 16);
            emitter_.store(Phase::Runtime, kThinEnterPc + 20, lw_addr);
            cost(4);
            classify(LockCase::Recursive, tid, obj);
            ++stats_.enterOps;
            return true;
        }
        // Case (c): recursion overflow — inflate, keep ownership.
        FatMonitor &mon = fatOf(obj);
        mon.owner = tid + 1;
        mon.depth = depth + 1;
        heap_.setLockword(obj, 1u);  // fat shape
        emitter_.store(Phase::Runtime, kThinEnterPc + 24, lw_addr);
        emitter_.store(Phase::Runtime, kFatPc + 12, fatNodeAddr(obj) + 8);
        cost(10);
        ++stats_.inflations;
        classify(LockCase::DeepRecursive, tid, obj);
        ++stats_.enterOps;
        return true;
    }
    // Case (d): thin lock held by another thread — inflate and block.
    FatMonitor &mon = fatOf(obj);
    if (mon.owner == 0) {
        mon.owner = ownerOf(w);  // tid + 1 of the current holder
        mon.depth = depthOf(w);
        heap_.setLockword(obj, 1u);
        emitter_.store(Phase::Runtime, kThinEnterPc + 24, lw_addr);
        cost(8);
        ++stats_.inflations;
    }
    ++mon.waiters;
    classify(LockCase::Contended, tid, obj);
    return false;
}

void
ThinLockSync::exit(std::uint32_t tid, SimAddr obj)
{
    const SimAddr lw_addr = Heap::lockwordAddr(obj);
    const std::uint32_t w = heap_.lockword(obj);
    emitter_.load(Phase::Runtime, kThinExitPc + 0, lw_addr);

    if (!isFat(w)) {
        if (ownerOf(w) != tid + 1)
            throw VmError("thin lock exit by non-owner");
        const std::uint32_t depth = depthOf(w);
        heap_.setLockword(obj, depth > 1 ? pack(tid, depth - 1) : 0u);
        emitter_.alu(Phase::Runtime, kThinExitPc + 2);
        emitter_.store(Phase::Runtime, kThinExitPc + 4, lw_addr);
        cost(4);
        ++stats_.exitOps;
        return;
    }
    FatMonitor &mon = fatOf(obj);
    if (mon.owner != tid + 1)
        throw VmError("fat lock exit by non-owner");
    emitter_.load(Phase::Runtime, kFatPc + 16, fatNodeAddr(obj) + 8);
    emitter_.store(Phase::Runtime, kFatPc + 20, fatNodeAddr(obj) + 8);
    cost(6);
    if (--mon.depth == 0)
        mon.owner = 0;
    ++stats_.exitOps;
}

bool
ThinLockSync::owns(std::uint32_t tid, SimAddr obj) const
{
    const std::uint32_t w = heap_.lockword(obj);
    if (!isFat(w))
        return w != 0 && ownerOf(w) == tid + 1;
    auto it = fat_.find(obj);
    return it != fat_.end() && it->second.owner == tid + 1;
}

// ---------------------------------------------------------------------
// OneBitLockSync
// ---------------------------------------------------------------------

bool
OneBitLockSync::enter(std::uint32_t tid, SimAddr obj)
{
    const SimAddr lw_addr = Heap::lockwordAddr(obj);
    const std::uint32_t w = heap_.lockword(obj);
    emitter_.load(Phase::Runtime, kOneBitEnterPc + 0, lw_addr);

    if (w == 0) {
        // Case (a): set the bit. This is the only fast path.
        heap_.setLockword(obj, 1u);
        thinOwner_[obj] = tid;
        emitter_.alu(Phase::Runtime, kOneBitEnterPc + 2);
        emitter_.store(Phase::Runtime, kOneBitEnterPc + 4, lw_addr);
        cost(4);
        classify(LockCase::Unlocked, tid, obj);
        clearRetry(tid);
        ++stats_.enterOps;
        return true;
    }

    if ((w & 2u) == 0) {
        // Thin-held: one bit cannot express recursion — inflate.
        FatMonitor &mon = fat_[obj];
        if (mon.owner == 0) {
            mon.owner = thinOwner_[obj] + 1;
            mon.depth = 1;
            thinOwner_.erase(obj);
            heap_.setLockword(obj, 2u);
            emitter_.store(Phase::Runtime, kOneBitEnterPc + 8, lw_addr);
            cost(8);
            ++stats_.inflations;
        }
    }

    FatMonitor &mon = fat_[obj];
    emitter_.load(Phase::Runtime, kFatPc + 4, fatNodeAddr(obj));
    emitter_.load(Phase::Runtime, kFatPc + 8, fatNodeAddr(obj) + 8);
    cost(6);
    if (mon.owner == 0) {
        mon.owner = tid + 1;
        mon.depth = 1;
        emitter_.store(Phase::Runtime, kFatPc + 12, fatNodeAddr(obj) + 8);
        cost(2);
        classify(LockCase::Unlocked, tid, obj);
        clearRetry(tid);
        ++stats_.enterOps;
        return true;
    }
    if (mon.owner == tid + 1) {
        ++mon.depth;
        emitter_.store(Phase::Runtime, kFatPc + 12,
                       fatNodeAddr(obj) + 12);
        cost(2);
        classify(mon.depth <= 256 ? LockCase::Recursive
                                  : LockCase::DeepRecursive,
                 tid, obj);
        ++stats_.enterOps;
        return true;
    }
    ++mon.waiters;
    classify(LockCase::Contended, tid, obj);
    return false;
}

void
OneBitLockSync::exit(std::uint32_t tid, SimAddr obj)
{
    const SimAddr lw_addr = Heap::lockwordAddr(obj);
    const std::uint32_t w = heap_.lockword(obj);
    emitter_.load(Phase::Runtime, kOneBitExitPc + 0, lw_addr);

    if ((w & 2u) == 0) {
        auto it = thinOwner_.find(obj);
        if (w == 0 || it == thinOwner_.end() || it->second != tid)
            throw VmError("one-bit lock exit by non-owner");
        thinOwner_.erase(it);
        heap_.setLockword(obj, 0u);
        emitter_.store(Phase::Runtime, kOneBitExitPc + 4, lw_addr);
        cost(3);
        ++stats_.exitOps;
        return;
    }
    FatMonitor &mon = fat_[obj];
    if (mon.owner != tid + 1)
        throw VmError("one-bit fat lock exit by non-owner");
    emitter_.load(Phase::Runtime, kFatPc + 16, fatNodeAddr(obj) + 8);
    emitter_.store(Phase::Runtime, kFatPc + 20, fatNodeAddr(obj) + 8);
    cost(6);
    if (--mon.depth == 0) {
        mon.owner = 0;
        // Keep the object fat: repeated inflation churn is worse.
    }
    ++stats_.exitOps;
}

bool
OneBitLockSync::owns(std::uint32_t tid, SimAddr obj) const
{
    const std::uint32_t w = heap_.lockword(obj);
    if (w == 0)
        return false;
    if ((w & 2u) == 0) {
        auto it = thinOwner_.find(obj);
        return it != thinOwner_.end() && it->second == tid;
    }
    auto it = fat_.find(obj);
    return it != fat_.end() && it->second.owner == tid + 1;
}

} // namespace jrs
