/**
 * @file
 * Synchronization statistics.
 *
 * The paper classifies every synchronized access into four cases
 * (Section 5): (a) locking an unlocked object, (b) recursive locking at
 * depth < 256, (c) recursive locking at depth >= 256, and (d)
 * contention — locking an object held by another thread. LockStats
 * tracks the distribution plus a simulated cycle cost per
 * implementation, which is what Figure 11 compares.
 */
#ifndef JRS_VM_SYNC_LOCK_STATS_H
#define JRS_VM_SYNC_LOCK_STATS_H

#include <cstdint>

namespace jrs {

/** The paper's four synchronization cases. */
enum class LockCase : std::uint8_t {
    Unlocked = 0,    ///< case (a)
    Recursive = 1,   ///< case (b): same owner, depth < 256
    DeepRecursive = 2,  ///< case (c): same owner, depth >= 256
    Contended = 3,   ///< case (d)
};

inline constexpr std::size_t kNumLockCases = 4;

/** Printable label, e.g. "(a) unlocked". */
const char *lockCaseName(LockCase c);

/** Counters kept by every SyncSystem implementation. */
struct LockStats {
    std::uint64_t caseCount[kNumLockCases] = {};
    std::uint64_t enterOps = 0;     ///< successful monitor entries
    std::uint64_t exitOps = 0;
    std::uint64_t blocks = 0;       ///< threads that had to block
    std::uint64_t inflations = 0;   ///< thin -> fat transitions
    std::uint64_t simCycles = 0;    ///< simulated cost of all lock ops

    /** Total classified accesses. */
    std::uint64_t totalAccesses() const {
        std::uint64_t t = 0;
        for (std::uint64_t c : caseCount)
            t += c;
        return t;
    }

    void reset() { *this = LockStats(); }
};

} // namespace jrs

#endif // JRS_VM_SYNC_LOCK_STATS_H
