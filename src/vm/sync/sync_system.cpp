#include "vm/sync/sync_system.h"

namespace jrs {

const char *
syncKindName(SyncKind kind)
{
    switch (kind) {
      case SyncKind::MonitorCache: return "monitor_cache";
      case SyncKind::ThinLock:     return "thin_lock";
      case SyncKind::OneBitLock:   return "one_bit_lock";
    }
    return "invalid";
}

void
SyncSystem::classify(LockCase c, std::uint32_t tid, SimAddr obj)
{
    if (c == LockCase::Contended) {
        // A blocked thread re-attempts on every reschedule; count the
        // contended access once per blocking episode.
        auto it = blockedRetry_.find(tid);
        if (it != blockedRetry_.end() && it->second == obj)
            return;
        blockedRetry_[tid] = obj;
        ++stats_.blocks;
    }
    ++stats_.caseCount[static_cast<std::size_t>(c)];
}

void
SyncSystem::clearRetry(std::uint32_t tid)
{
    blockedRetry_.erase(tid);
}

void
SyncSystem::relocate(const std::function<SimAddr(SimAddr)> &fwd)
{
    for (auto it = blockedRetry_.begin(); it != blockedRetry_.end();) {
        const SimAddr to = fwd(it->second);
        if (to == 0) {
            it = blockedRetry_.erase(it);
        } else {
            it->second = to;
            ++it;
        }
    }
}

} // namespace jrs
