#include "vm/engine/engine.h"

#include "gc/gc_controller.h"
#include "gc/live_digest.h"
#include "obs/obs.h"
#include "vm/sync/monitor_cache.h"
#include "vm/sync/thin_lock.h"

namespace jrs {

namespace {

std::unique_ptr<SyncSystem>
makeSync(SyncKind kind, Heap &heap, TraceEmitter &emitter)
{
    switch (kind) {
      case SyncKind::MonitorCache:
        return std::make_unique<MonitorCacheSync>(heap, emitter);
      case SyncKind::ThinLock:
        return std::make_unique<ThinLockSync>(heap, emitter);
      case SyncKind::OneBitLock:
        return std::make_unique<OneBitLockSync>(heap, emitter);
    }
    throw VmError("bad sync kind");
}

/**
 * Push one finished run's headline numbers into the global metric
 * registry. Called once per run and only when observability is on, so
 * the VM's hot paths never see the registry.
 */
void
publishRunMetrics(const RunResult &r, const CodeCache &cache)
{
    obs::MetricRegistry &m = obs::metrics();
    m.counter("vm.runs").add(1);
    m.counter("vm.events.total").add(r.totalEvents);
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        m.counter("vm.events."
                  + std::string(phaseName(static_cast<Phase>(p))))
            .add(r.phaseEvents[p]);
    }
    m.counter("vm.bytecodes_interpreted").add(r.bytecodesInterpreted);
    m.counter("vm.native_insts_retired").add(r.nativeInstsRetired);
    m.counter("vm.dispatches_folded").add(r.dispatchesFolded);
    m.counter("vm.methods_compiled").add(r.methodsCompiled);
    m.counter("vm.calls_inlined").add(r.callsInlined);
    m.counter("vm.calls_devirtualized").add(r.callsDevirtualized);
    m.counter("vm.osr_transitions").add(r.osrTransitions);

    m.counter("vm.heap.bytes_allocated").add(r.memory.heapBytes);
    m.gauge("vm.code_cache.bytes")
        .set(static_cast<double>(r.memory.codeCacheBytes));
    m.gauge("vm.code_cache.methods")
        .set(static_cast<double>(cache.numMethods()));
    m.counter("vm.code_cache.lookups").add(cache.lookups());
    m.counter("vm.code_cache.lookup_misses").add(cache.lookupMisses());
    m.counter("vm.code_cache.evictions").add(r.codeCacheEvictions);
    m.counter("vm.code_cache.bytes_evicted")
        .add(r.codeCacheBytesEvicted);
    m.counter("vm.code_cache.retranslations").add(r.retranslations);
    m.gauge("vm.code_cache.free_bytes")
        .set(static_cast<double>(cache.freeBytes()));
    m.gauge("vm.code_cache.free_extents")
        .set(static_cast<double>(cache.freeExtents()));
    m.gauge("vm.code_cache.fragmentation").set(cache.fragmentation());
    m.counter("vm.code_cache.shared_hits")
        .add(r.sharedTranslationHits);
    m.counter("vm.code_cache.shared_misses")
        .add(r.sharedTranslationMisses);

    const LockStats &ls = r.lockStats;
    m.counter("vm.lock.enters").add(ls.enterOps);
    m.counter("vm.lock.exits").add(ls.exitOps);
    m.counter("vm.lock.blocks").add(ls.blocks);
    m.counter("vm.lock.inflations").add(ls.inflations);
    m.counter("vm.lock.sim_cycles").add(ls.simCycles);
    m.counter("vm.lock.case_unlocked")
        .add(ls.caseCount[static_cast<std::size_t>(
            LockCase::Unlocked)]);
    m.counter("vm.lock.case_recursive")
        .add(ls.caseCount[static_cast<std::size_t>(
            LockCase::Recursive)]);
    m.counter("vm.lock.case_deep_recursive")
        .add(ls.caseCount[static_cast<std::size_t>(
            LockCase::DeepRecursive)]);
    m.counter("vm.lock.case_contended")
        .add(ls.caseCount[static_cast<std::size_t>(
            LockCase::Contended)]);

    m.histogram("vm.run.events")
        .record(static_cast<double>(r.totalEvents));
}

} // namespace

ExecutionEngine::ExecutionEngine(const Program &prog, EngineConfig cfg)
    : prog_(prog), cfg_(std::move(cfg))
{
    if (!cfg_.policy)
        cfg_.policy = std::make_shared<AlwaysCompilePolicy>();

    heap_ = std::make_unique<Heap>(cfg_.heapBytes);
    registry_ = std::make_unique<ClassRegistry>(prog_, *heap_);

    internalSink_.add(&counting_);
    if (cfg_.sink != nullptr)
        internalSink_.add(cfg_.sink);
    emitter_.setSink(&internalSink_);

    sync_ = makeSync(cfg_.syncKind, *heap_, emitter_);
    runtime_ =
        std::make_unique<RuntimeSupport>(*registry_, *heap_, emitter_);
    cache_ = std::make_unique<CodeCache>(cfg_.codeCache);
    cache_->setEvictionHook([this](const NativeMethod &nm) {
        rearmBase_[nm.id] = profiles_.of(nm.id).invocations;
        translator_->releaseShared(nm.id);
        // The OSR counter is re-armed alongside the invocation
        // counter: a live interpreter frame of the victim restarts its
        // back-edge count, so a loop-dominated method recovers through
        // OSR after osrBackEdgeThreshold more back edges instead of
        // retranslating on the very next one (or waiting out the full
        // invocation re-earn).
        if (cfg_.osrBackEdgeThreshold != 0) {
            for (const auto &t : threads_) {
                for (Activation &act : t->frames) {
                    auto *f = std::get_if<InterpFrame>(&act);
                    if (f != nullptr && f->method->id == nm.id)
                        f->backEdges = 0;
                }
            }
        }
    });
    cache_->setRetranslateCost([this](MethodId id) {
        auto it = lastTranslateCost_.find(id);
        return it != lastTranslateCost_.end() ? it->second
                                              : std::uint64_t{0};
    });
    translator_ =
        std::make_unique<Translator>(*registry_, *cache_, emitter_);
    translator_->setInlining(cfg_.jitInlining);
    if (cfg_.sharedCodeCache != nullptr) {
        translator_->setSharedCache(
            cfg_.sharedCodeCache, cfg_.sharedProgramKey,
            cfg_.gc.collector != gc::CollectorKind::None
                ? gc::collectorName(cfg_.gc.collector)
                : "");
    }
    ctx_.reset(new VmContext{*registry_, *heap_, *sync_, *runtime_,
                             emitter_, *this});
    interp_ = std::make_unique<Interpreter>(*ctx_);
    interp_->setFolding(cfg_.interpreterFolding);
    exec_ = std::make_unique<NativeExecutor>(*ctx_);

    if (cfg_.gc.collector != gc::CollectorKind::None) {
        gc_ = std::make_unique<gc::GcController>(
            cfg_.gc, *heap_, *registry_, threads_, *sync_, emitter_);
        runtime_->setGcController(gc_.get());
    }

    profiles_ = ProfileTable(prog_.methods.size());
}

ExecutionEngine::~ExecutionEngine() = default;

std::uint64_t
ExecutionEngine::liveHeapHash()
{
    return gc::liveHeapHash(*heap_, *registry_, threads_);
}

std::uint64_t
ExecutionEngine::eventCount() const
{
    return counting_.total();
}

void
ExecutionEngine::invokeMethod(VmThread &thread, MethodId target,
                              const Value *args, std::uint8_t nargs)
{
    const Method &m = registry_->method(target);
    if (nargs != m.numArgs)
        throw VmError("arity mismatch calling " + m.name);

    MethodProfile &prof = profiles_.of(target);
    ++prof.invocations;

    const NativeMethod *nm = cache_->lookup(target);
    // After eviction the counter policy sees invocations since the
    // eviction point, so the method must re-earn its translation.
    const auto rearm = rearmBase_.find(target);
    const std::uint64_t policyInvocations =
        rearm != rearmBase_.end() ? prof.invocations - rearm->second
                                  : prof.invocations;
    if (nm == nullptr && uncompilable_.count(target) == 0
        && cfg_.policy->shouldCompile(target, policyInvocations)) {
        const std::uint64_t before = counting_.total();
        nm = translator_->translate(target);
        const std::uint64_t delta = counting_.total() - before;
        prof.translateEvents += delta;
        translateEventsThisStep_ += delta;
        if (nm == nullptr) {
            // A deferred translation (shared-cache fallback mode) is
            // retriable, not uncompilable.
            if (!translator_->lastTranslateDeferred())
                uncompilable_.insert(target);
        } else {
            lastTranslateCost_[target] = delta;
            if (rearm != rearmBase_.end())
                ++retranslations_;
        }
    }

    SimAddr sync_obj = 0;
    if (m.isSynchronized) {
        sync_obj = m.isStatic ? registry_->classObject(m.owner)
                              : args[0].asRef();
        if (sync_obj == 0)
            runtime_->throwBuiltin(BuiltinEx::NullPointer);
    }

    if (nm != nullptr) {
        ++prof.nativeInvocations;
        NativeFrame f;
        f.nm = nm;
        f.ip = 0;
        try {
            f.base = thread.pushFrameSpace(nm->numSpills + 8u);
        } catch (const VmError &) {
            runtime_->throwBuiltin(BuiltinEx::StackOverflow);
        }
        f.spills.assign(nm->numSpills, 0);
        f.spillRefs.assign(nm->numSpills, false);
        for (std::uint8_t i = 0; i < nargs; ++i) {
            f.regs[kArgRegBase + i] = args[i].raw();
            f.setRegRef(kArgRegBase + i, args[i].tag() == Tag::Ref);
        }
        f.syncObj = sync_obj;
        f.monitorPending = sync_obj != 0;
        thread.frames.emplace_back(std::move(f));
    } else {
        ++prof.interpInvocations;
        InterpFrame f;
        f.method = &m;
        f.pc = 0;
        try {
            f.base = thread.pushFrameSpace(m.numLocals + m.maxStack);
        } catch (const VmError &) {
            runtime_->throwBuiltin(BuiltinEx::StackOverflow);
        }
        f.locals.assign(m.numLocals, Value());
        for (std::uint8_t i = 0; i < nargs; ++i)
            f.locals[i] = args[i];
        f.stack.reserve(m.maxStack);
        f.syncObj = sync_obj;
        f.monitorPending = sync_obj != 0;
        // Frame setup traffic: locals install.
        for (std::uint8_t i = 0; i < nargs; ++i) {
            emitter_.store(Phase::Runtime,
                           seg::kRuntimeCode + 0x40 + 4u * (i % 8),
                           f.localAddr(i), 4);
        }
        thread.frames.emplace_back(std::move(f));
    }
    thread.noteHighWater();
}

std::uint32_t
ExecutionEngine::spawnThread(MethodId target, Value arg)
{
    const Method &m = registry_->method(target);
    if (!m.isStatic || m.numArgs != 1)
        throw VmError("thread entry must be static(int): " + m.name);
    const std::uint32_t tid =
        static_cast<std::uint32_t>(threads_.size());
    threads_.push_back(std::make_unique<VmThread>(tid));
    invokeMethod(*threads_.back(), target, &arg, 1);
    return tid;
}

bool
ExecutionEngine::threadDone(std::uint32_t tid) const
{
    if (tid >= threads_.size())
        throw VmError("join of unknown thread");
    return threads_[tid]->state == ThreadState::Done;
}

void
ExecutionEngine::unwind(VmThread &thread, SimAddr exception,
                        const char *name)
{
    const ClassId ex_cls = heap_->klassOf(exception);

    // Digest hook: record (exception class, faulting method, faulting
    // bytecode pc) into an order-sensitive hash. Native frames map
    // their instruction index back to the owning bytecode via bc2n so
    // interp and JIT runs of the same program record identical chains.
    if (!thread.frames.empty()) {
        MethodId fault_method = 0;
        std::uint32_t fault_pc = 0;
        const Activation &top = thread.frames.back();
        if (const auto *f = std::get_if<InterpFrame>(&top)) {
            fault_method = f->method->id;
            fault_pc = f->pc;
        } else {
            const auto &nf = std::get<NativeFrame>(top);
            fault_method = nf.nm->id;
            for (std::size_t pc = 0; pc < nf.nm->bc2n.size(); ++pc) {
                const std::int32_t n = nf.nm->bc2n[pc];
                if (n >= 0 && static_cast<std::uint32_t>(n) <= nf.ip)
                    fault_pc = static_cast<std::uint32_t>(pc);
            }
        }
        auto mix = [this](std::uint64_t v) {
            throwChainHash_ ^= v;
            throwChainHash_ *= 1099511628211ull;
        };
        mix(ex_cls);
        mix(fault_method);
        mix(fault_pc);
    }
    ++guestThrows_;

    auto matches = [&](ClassId catch_type) {
        if (catch_type == kNoClass)
            return true;  // catch-all
        if (ex_cls >= kBuiltinExClassBase)
            return false;  // builtins only match catch-all
        return isSubclassOf(prog_, ex_cls, catch_type);
    };

    // The faulting (top) frame's pc points AT the faulting
    // instruction; caller frames have already advanced their pc past
    // the invoke, so their effective pc for range checks is "just
    // inside" the preceding instruction.
    bool top_frame = true;
    while (!thread.frames.empty()) {
        Activation &act = thread.frames.back();
        if (auto *f = std::get_if<InterpFrame>(&act)) {
            for (const ExceptionEntry &h : f->method->handlers) {
                const bool in_range = top_frame
                    ? f->pc >= h.startPc && f->pc < h.endPc
                    : f->pc > h.startPc && f->pc <= h.endPc;
                if (in_range && matches(h.catchType)) {
                    f->stack.clear();
                    f->stack.push_back(Value::makeRef(exception));
                    f->pc = h.handlerPc;
                    return;
                }
            }
            if (f->syncObj != 0 && !f->monitorPending)
                sync_->exit(thread.tid(), f->syncObj);
        } else {
            auto &nf = std::get<NativeFrame>(act);
            for (const NativeHandler &h : nf.nm->handlers) {
                const bool in_range = top_frame
                    ? nf.ip >= h.startIdx && nf.ip < h.endIdx
                    : nf.ip > h.startIdx && nf.ip <= h.endIdx;
                if (in_range && matches(h.catchType)) {
                    nf.ip = h.handlerIdx;
                    nf.regs[kStackRegBase] = exception;
                    nf.setRegRef(kStackRegBase, true);
                    return;
                }
            }
            if (nf.syncObj != 0 && !nf.monitorPending)
                sync_->exit(thread.tid(), nf.syncObj);
        }
        thread.frames.pop_back();
        thread.popFrameSpace();
        top_frame = false;
    }
    // Uncaught: the thread dies.
    thread.state = ThreadState::Done;
    thread.uncaughtName = name != nullptr ? name : "Exception";
}

bool
ExecutionEngine::tryOsr(VmThread &thread)
{
    auto *f = std::get_if<InterpFrame>(&thread.frames.back());
    if (f == nullptr || f->backEdges < cfg_.osrBackEdgeThreshold)
        return false;
    if (f->monitorPending)
        return false;  // entry monitor not yet acquired
    const MethodId id = f->method->id;
    if (uncompilable_.count(id) != 0) {
        f->backEdges = 0;
        return false;
    }

    const NativeMethod *nm = cache_->lookup(id);
    if (nm == nullptr) {
        const std::uint64_t before = counting_.total();
        nm = translator_->translate(id);
        const std::uint64_t delta = counting_.total() - before;
        profiles_.of(id).translateEvents += delta;
        translateEventsThisStep_ += delta;
        if (nm == nullptr) {
            if (!translator_->lastTranslateDeferred())
                uncompilable_.insert(id);
            f->backEdges = 0;
            return false;
        }
        lastTranslateCost_[id] = delta;
        if (rearmBase_.count(id) != 0)
            ++retranslations_;
    }
    if (f->pc >= nm->bc2n.size() || nm->bc2n[f->pc] < 0) {
        f->backEdges = 0;
        return false;
    }

    // Map the live interpreter state onto the compiled method's frame
    // layout: locals and operand-stack positions go to the registers /
    // spill slots the translator assigned them statically.
    const Method &m = *f->method;
    NativeFrame nf;
    nf.nm = nm;
    nf.ip = static_cast<std::uint32_t>(nm->bc2n[f->pc]);
    nf.spills.assign(nm->numSpills, 0);
    nf.spillRefs.assign(nm->numSpills, false);
    const std::size_t spilled_locals =
        m.numLocals > kNumLocalRegs ? m.numLocals - kNumLocalRegs : 0;
    for (std::size_t i = 0; i < f->locals.size(); ++i) {
        const std::uint64_t raw = f->locals[i].raw();
        const bool is_ref = f->locals[i].tag() == Tag::Ref;
        if (i < kNumLocalRegs) {
            nf.regs[kLocalRegBase + i] = raw;
            nf.setRegRef(static_cast<std::uint8_t>(kLocalRegBase + i),
                         is_ref);
        } else {
            nf.spills[i - kNumLocalRegs] = raw;
            nf.spillRefs[i - kNumLocalRegs] = is_ref;
        }
    }
    for (std::size_t j = 0; j < f->stack.size(); ++j) {
        const std::uint64_t raw = f->stack[j].raw();
        const bool is_ref = f->stack[j].tag() == Tag::Ref;
        if (j < kNumStackRegs) {
            nf.regs[kStackRegBase + j] = raw;
            nf.setRegRef(static_cast<std::uint8_t>(kStackRegBase + j),
                         is_ref);
        } else {
            nf.spills[spilled_locals + (j - kNumStackRegs)] = raw;
            nf.spillRefs[spilled_locals + (j - kNumStackRegs)] = is_ref;
        }
    }
    nf.syncObj = f->syncObj;
    nf.monitorPending = false;  // already held by the interp frame

    // Swap the simulated frame space (check before committing).
    const std::uint32_t old_slots = m.numLocals + m.maxStack;
    thread.popFrameSpace();
    try {
        nf.base = thread.pushFrameSpace(nm->numSpills + 8u);
    } catch (const VmError &) {
        // Keep interpreting; restore the original reservation.
        f->base = thread.pushFrameSpace(old_slots);
        f->backEdges = 0;
        return false;
    }
    thread.frames.back() = Activation(std::move(nf));
    thread.noteHighWater();
    interp_->clearFoldState();
    ++osrTransitions_;

    // OSR entry stub: the runtime rewrites the frame (register fills
    // from the interpreter frame's memory image).
    for (std::uint32_t k = 0; k < 6; ++k) {
        emitter_.store(Phase::Runtime,
                       seg::kRuntimeCode + 0x700 + 4u * k,
                       std::get<NativeFrame>(thread.frames.back()).base
                           + 4u * k,
                       4);
    }
    return true;
}

void
ExecutionEngine::deliverReturn(VmThread &thread, const StepResult &r)
{
    if (thread.frames.empty()) {
        thread.state = ThreadState::Done;
        return;
    }
    if (!r.hasValue)
        return;
    Activation &act = thread.frames.back();
    if (auto *f = std::get_if<InterpFrame>(&act)) {
        emitter_.store(Phase::Interpret, seg::kInterpCode + 0x30,
                       f->stackAddr(f->stack.size()), 4);
        f->stack.push_back(r.value);
    } else {
        auto &nf = std::get<NativeFrame>(act);
        nf.regs[kArgRegBase] = r.value.raw();
        nf.setRegRef(kArgRegBase, r.value.tag() == Tag::Ref);
    }
}

bool
ExecutionEngine::stepThread(VmThread &thread)
{
    const std::uint64_t quantum =
        thread.state == ThreadState::Runnable ? cfg_.quantum : 1;
    bool progressed = false;

    for (std::uint64_t i = 0; i < quantum; ++i) {
        if (thread.frames.empty()) {
            thread.state = ThreadState::Done;
            break;
        }
        const bool is_interp =
            std::holds_alternative<InterpFrame>(thread.frames.back());
        MethodId running;
        if (is_interp) {
            running = std::get<InterpFrame>(thread.frames.back())
                          .method->id;
        } else {
            running =
                std::get<NativeFrame>(thread.frames.back()).nm->id;
        }

        const std::uint64_t before = counting_.total();
        const std::uint64_t gc_before =
            gc_ != nullptr ? gc_->stats().gcEvents : 0;
        translateEventsThisStep_ = 0;
        StepResult r =
            is_interp ? interp_->step(thread) : exec_->step(thread);

        switch (r.action) {
          case StepAction::Continue:
          case StepAction::Invoked:
            progressed = true;
            thread.state = ThreadState::Runnable;
            break;
          case StepAction::Returned:
            progressed = true;
            thread.state = ThreadState::Runnable;
            if (thread.frames.empty()) {
                thread.state = ThreadState::Done;
                if (r.hasValue && thread.tid() == 0
                    && r.value.tag() == Tag::Int) {
                    mainExitValue_ = r.value.asInt();
                    mainHasExit_ = true;
                }
            } else {
                deliverReturn(thread, r);
            }
            break;
          case StepAction::Blocked:
            if (thread.state == ThreadState::Runnable)
                thread.state = ThreadState::BlockedOnMonitor;
            break;
          case StepAction::Thrown:
            progressed = true;
            unwind(thread, r.thrown, r.thrownName);
            break;
        }

        // Attribute everything the step caused — including return
        // delivery and unwinding, but excluding translation (already
        // charged to the compiled method) and collector work (GC is
        // attributed to no method; it shows up as Phase::Gc) — to the
        // method that ran.
        const std::uint64_t gc_delta =
            (gc_ != nullptr ? gc_->stats().gcEvents : 0) - gc_before;
        const std::uint64_t delta = counting_.total() - before
            - translateEventsThisStep_ - gc_delta;
        MethodProfile &prof = profiles_.of(running);
        if (is_interp)
            prof.interpEvents += delta;
        else
            prof.nativeEvents += delta;

        // On-stack replacement check: hot loops escape the interpreter
        // without waiting for the next invocation.
        if (cfg_.osrBackEdgeThreshold != 0 && is_interp
            && r.action == StepAction::Continue
            && !thread.frames.empty()) {
            (void)tryOsr(thread);
        }

        if (r.action == StepAction::Blocked)
            return progressed;  // yield the slice
        if (thread.state == ThreadState::Done)
            break;
        if (cfg_.maxEvents != 0 && counting_.total() >= cfg_.maxEvents)
            break;
    }
    return progressed;
}

RunResult
ExecutionEngine::run(std::int32_t arg)
{
    if (ran_)
        throw VmError("ExecutionEngine::run called twice");
    ran_ = true;

    obs::ScopedSpan span("vm.run", "vm");
    if (span.active())
        span.arg("entry", registry_->method(prog_.entry).name);

    RunResult result;

    // Main thread.
    threads_.push_back(std::make_unique<VmThread>(0));
    {
        Value a = Value::makeInt(arg);
        invokeMethod(*threads_[0], prog_.entry, &a, 1);
    }

    std::size_t cursor = 0;
    while (true) {
        std::size_t live = 0;
        for (const auto &t : threads_) {
            if (t->state != ThreadState::Done)
                ++live;
        }
        if (live == 0)
            break;
        if (cfg_.maxEvents != 0 && counting_.total() >= cfg_.maxEvents)
            break;

        bool any_progress = false;
        const std::size_t num_threads = threads_.size();
        for (std::size_t k = 0; k < num_threads; ++k) {
            VmThread &t = *threads_[(cursor + k) % num_threads];
            if (t.state == ThreadState::Done)
                continue;
            if (t.state == ThreadState::Joining) {
                if (!threadDone(t.joinTarget))
                    continue;
                t.state = ThreadState::Runnable;
            }
            if (stepThread(t))
                any_progress = true;
        }
        cursor = (cursor + 1) % std::max<std::size_t>(1,
                                                      threads_.size());

        if (!any_progress) {
            // Everyone is blocked: deadlock (or a join cycle).
            throw VmError("deadlock: no runnable thread can progress");
        }
    }

    internalSink_.onFinish();

    // Assemble the result.
    result.completed = threads_[0]->state == ThreadState::Done
        && threads_[0]->uncaughtName == nullptr;
    result.uncaughtException = threads_[0]->uncaughtName;
    result.hasExitValue = mainHasExit_;
    result.exitValue = mainExitValue_;
    result.output = runtime_->output();
    result.totalEvents = counting_.total();
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        result.phaseEvents[p] =
            counting_.inPhase(static_cast<Phase>(p));
    }
    result.bytecodesInterpreted = interp_->bytecodesRetired();
    result.nativeInstsRetired = exec_->instsRetired();
    result.methodsCompiled = translator_->methodsTranslated();
    result.callsInlined = translator_->callsInlined();
    result.dispatchesFolded = interp_->foldedDispatches();
    result.osrTransitions = osrTransitions_;
    result.codeCacheEvictions = cache_->evictions();
    result.codeCacheBytesEvicted = cache_->bytesEvicted();
    result.retranslations = retranslations_;
    result.codeCacheFreeBytes = cache_->freeBytes();
    result.codeCacheFreeExtents = cache_->freeExtents();
    result.sharedTranslationHits = translator_->sharedHits();
    result.sharedTranslationMisses = translator_->sharedMisses();
    result.translateBuildNs = translator_->buildNs();
    result.translateBuildNsSaved = translator_->buildNsSaved();
    result.bytecodeCounts.assign(interp_->opCounts().begin(),
                                 interp_->opCounts().end());
    result.callsDevirtualized = translator_->callsDevirtualized();
    result.threadsSpawned =
        static_cast<std::uint32_t>(threads_.size()) - 1;
    result.guestThrows = guestThrows_;
    result.throwChainHash = throwChainHash_;
    result.profiles = profiles_;
    result.lockStats = sync_->stats();

    result.memory.classDataBytes = registry_->metadataBytes();
    result.memory.heapBytes = heap_->bytesAllocated();
    std::size_t stack_bytes = 0;
    for (const auto &t : threads_)
        stack_bytes += static_cast<std::size_t>(t->stackHighWater());
    result.memory.stackBytes = stack_bytes;
    result.memory.codeCacheBytes = cache_->codeBytes();
    result.memory.translatorBytes = translator_->peakWorkingBytes();

    if (gc_ != nullptr)
        result.gcStats = gc_->stats();

    if (obs::enabled()) {
        publishRunMetrics(result, *cache_);
        if (cfg_.sharedCodeCache != nullptr)
            cfg_.sharedCodeCache->publishMetrics();
        span.arg("events", std::to_string(result.totalEvents));
        span.arg("completed", result.completed ? "true" : "false");
    }
    return result;
}

} // namespace jrs
