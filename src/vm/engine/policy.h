/**
 * @file
 * Compilation policies: when (or whether) to JIT a method.
 *
 * This is the paper's Section 3 knob. Concrete policies:
 *  - NeverCompilePolicy      pure interpreter
 *  - AlwaysCompilePolicy     Kaffe/JDK default: compile on 1st invocation
 *  - CounterPolicy           compile at the Nth invocation (the hotspot
 *                            heuristic modern VMs adopted)
 *  - OraclePolicy            the paper's "opt": per-method decisions
 *                            computed offline from profiling runs via
 *                            the crossover N_i = T_i / (I_i - E_i)
 */
#ifndef JRS_VM_ENGINE_POLICY_H
#define JRS_VM_ENGINE_POLICY_H

#include <cstdint>
#include <vector>

#include "vm/engine/profile.h"

namespace jrs {

/** Decides whether to compile a method at an invocation. */
class CompilationPolicy {
  public:
    virtual ~CompilationPolicy() = default;

    /**
     * Called on every invocation of a not-yet-compiled method.
     * @param id          the method
     * @param invocations invocation count including this one (1-based)
     * @return true to compile now (then run natively)
     */
    virtual bool shouldCompile(MethodId id,
                               std::uint64_t invocations) = 0;

    /** Policy name for reports. */
    virtual const char *name() const = 0;
};

/** Pure interpretation. */
class NeverCompilePolicy : public CompilationPolicy {
  public:
    bool shouldCompile(MethodId, std::uint64_t) override {
        return false;
    }
    const char *name() const override { return "interpret"; }
};

/** Compile every method on its first invocation (JIT default). */
class AlwaysCompilePolicy : public CompilationPolicy {
  public:
    bool shouldCompile(MethodId, std::uint64_t) override { return true; }
    const char *name() const override { return "jit"; }
};

/** Compile once a method has been invoked @p threshold times. */
class CounterPolicy : public CompilationPolicy {
  public:
    explicit CounterPolicy(std::uint64_t threshold)
        : threshold_(threshold) {}
    bool shouldCompile(MethodId, std::uint64_t invocations) override {
        return invocations >= threshold_;
    }
    const char *name() const override { return "counter"; }

    std::uint64_t threshold() const { return threshold_; }

  private:
    std::uint64_t threshold_;
};

/** Fixed per-method decisions (the paper's opt oracle). */
class OraclePolicy : public CompilationPolicy {
  public:
    explicit OraclePolicy(std::vector<bool> compile)
        : compile_(std::move(compile)) {}

    bool shouldCompile(MethodId id, std::uint64_t) override {
        return id < compile_.size() && compile_[id];
    }
    const char *name() const override { return "oracle"; }

    /** Number of methods the oracle chooses to compile. */
    std::size_t numCompiled() const;

    const std::vector<bool> &decisions() const { return compile_; }

  private:
    std::vector<bool> compile_;
};

/**
 * Compute oracle decisions from two profiling runs: compile method i
 * iff its total translation + native execution cost undercuts its total
 * interpretation cost, i.e. n_i > N_i = T_i / (I_i - E_i).
 *
 * @param interp_run Profiles from a pure-interpretation run.
 * @param jit_run    Profiles from a compile-everything run.
 */
std::vector<bool> computeOracleDecisions(const ProfileTable &interp_run,
                                         const ProfileTable &jit_run);

} // namespace jrs

#endif // JRS_VM_ENGINE_POLICY_H
