/**
 * @file
 * Shared execution context and the engine-services callback interface.
 *
 * The interpreter and the native-code executor are both steppers: they
 * advance the top activation of a thread by one instruction and report
 * what happened. Anything that crosses frames or engines — invoking a
 * method (which may trigger compilation), spawning threads — goes
 * through EngineServices, implemented by ExecutionEngine.
 */
#ifndef JRS_VM_ENGINE_CONTEXT_H
#define JRS_VM_ENGINE_CONTEXT_H

#include "isa/emitter.h"
#include "vm/runtime/class_registry.h"
#include "vm/runtime/heap.h"
#include "vm/runtime/runtime_support.h"
#include "vm/runtime/thread.h"
#include "vm/sync/sync_system.h"

namespace jrs {

/** What a single step did. */
enum class StepAction : std::uint8_t {
    Continue,  ///< one instruction retired; frame unchanged
    Invoked,   ///< a callee frame was pushed
    Returned,  ///< the frame returned (and was popped by the stepper)
    Blocked,   ///< monitor unavailable; pc not advanced — retry later
    Thrown,    ///< guest exception raised; engine must unwind
};

/** Step outcome. */
struct StepResult {
    StepAction action = StepAction::Continue;
    bool hasValue = false;  ///< Returned with a value
    Value value;            ///< valid when hasValue
    SimAddr thrown = 0;     ///< exception ref when action == Thrown
    const char *thrownName = nullptr;  ///< builtin diagnostic name
};

/** Engine callbacks available to the steppers. */
class EngineServices {
  public:
    virtual ~EngineServices() = default;

    /**
     * Invoke @p target with @p args: decides interpret-vs-native
     * (possibly compiling first) and pushes the callee activation.
     * The caller must already have advanced its own pc/ip.
     */
    virtual void invokeMethod(VmThread &thread, MethodId target,
                              const Value *args, std::uint8_t nargs) = 0;

    /** Spawn a green thread running static @p target with one int arg. */
    virtual std::uint32_t spawnThread(MethodId target, Value arg) = 0;

    /** True when thread @p tid has finished. */
    virtual bool threadDone(std::uint32_t tid) const = 0;

    /** Number of native events delivered to the sink so far. */
    virtual std::uint64_t eventCount() const = 0;
};

/** Everything a stepper needs. All references outlive the stepper. */
struct VmContext {
    ClassRegistry &registry;
    Heap &heap;
    SyncSystem &sync;
    RuntimeSupport &runtime;
    TraceEmitter &emitter;
    EngineServices &services;
};

} // namespace jrs

#endif // JRS_VM_ENGINE_CONTEXT_H
