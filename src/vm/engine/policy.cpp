#include "vm/engine/policy.h"

namespace jrs {

std::size_t
OraclePolicy::numCompiled() const
{
    std::size_t n = 0;
    for (bool b : compile_)
        n += b ? 1 : 0;
    return n;
}

std::vector<bool>
computeOracleDecisions(const ProfileTable &interp_run,
                       const ProfileTable &jit_run)
{
    // Size to the LARGER table: the two profiling runs may have grown
    // their tables to different lengths (a method invoked in only one
    // mode, e.g. behind a mode-dependent path), and truncating to the
    // smaller one silently removed those methods from consideration.
    // A method missing from a table simply has zero cost there.
    static const MethodProfile kEmpty{};
    const std::size_t n = std::max(interp_run.size(), jit_run.size());
    std::vector<bool> compile(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        const MethodId id = static_cast<MethodId>(i);
        const MethodProfile &ip =
            i < interp_run.size() ? interp_run.of(id) : kEmpty;
        const MethodProfile &jp =
            i < jit_run.size() ? jit_run.of(id) : kEmpty;
        if (ip.invocations == 0) {
            // Never executed while interpreting: compiling cannot pay off.
            compile[i] = false;
            continue;
        }
        if (jp.invocations == 0) {
            // No JIT-run evidence: jit_cost would read as zero and
            // unconditionally win the comparison below, marking a
            // method "compile" on no data at all. Without evidence
            // that compiling pays, keep interpreting.
            compile[i] = false;
            continue;
        }
        const std::uint64_t interp_cost = ip.interpEvents;
        const std::uint64_t jit_cost =
            jp.translateEvents + jp.nativeEvents;
        compile[i] = jit_cost < interp_cost;
    }
    return compile;
}

} // namespace jrs
