#include "vm/engine/policy.h"

namespace jrs {

std::size_t
OraclePolicy::numCompiled() const
{
    std::size_t n = 0;
    for (bool b : compile_)
        n += b ? 1 : 0;
    return n;
}

std::vector<bool>
computeOracleDecisions(const ProfileTable &interp_run,
                       const ProfileTable &jit_run)
{
    const std::size_t n = std::min(interp_run.size(), jit_run.size());
    std::vector<bool> compile(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        const MethodProfile &ip = interp_run.of(static_cast<MethodId>(i));
        const MethodProfile &jp = jit_run.of(static_cast<MethodId>(i));
        if (ip.invocations == 0) {
            // Never executed while interpreting: compiling cannot pay off.
            compile[i] = false;
            continue;
        }
        const std::uint64_t interp_cost = ip.interpEvents;
        const std::uint64_t jit_cost =
            jp.translateEvents + jp.nativeEvents;
        compile[i] = jit_cost < interp_cost;
    }
    return compile;
}

} // namespace jrs
