/**
 * @file
 * The mixed-mode execution engine — the core public API of jrs.
 *
 * An ExecutionEngine loads a Program and runs it under a configurable
 * runtime system: compilation policy (interpret / JIT / counter /
 * oracle), monitor implementation, green-thread quantum, and an
 * optional TraceSink receiving every simulated native instruction.
 * Interpreted and compiled frames interleave freely on the same call
 * stack; invocations are routed per-method.
 *
 * Typical use:
 * @code
 *   EngineConfig cfg;
 *   cfg.policy = std::make_shared<AlwaysCompilePolicy>();
 *   cfg.sink = &myCacheModel;
 *   ExecutionEngine engine(program, cfg);
 *   RunResult res = engine.run(100);
 * @endcode
 */
#ifndef JRS_VM_ENGINE_ENGINE_H
#define JRS_VM_ENGINE_ENGINE_H

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "gc/collector.h"
#include "gc/config.h"
#include "vm/engine/context.h"
#include "vm/engine/policy.h"
#include "vm/engine/profile.h"
#include "vm/interp/interpreter.h"
#include "vm/jit/code_cache.h"
#include "vm/jit/translator.h"
#include "vm/native/executor.h"

namespace jrs::gc {
class GcController;
} // namespace jrs::gc

namespace jrs {

/** Engine configuration. */
struct EngineConfig {
    /** Compilation policy (defaults to compile-on-first-invocation). */
    std::shared_ptr<CompilationPolicy> policy;
    /** Monitor implementation. */
    SyncKind syncKind = SyncKind::ThinLock;
    /** Observer of the native instruction stream (may be null). */
    TraceSink *sink = nullptr;
    /** Green-thread time slice, in stepper steps. */
    std::uint64_t quantum = 300;
    /** Safety cap on simulated instructions (0 = unlimited). */
    std::uint64_t maxEvents = 0;
    /** Heap arena size in bytes. */
    std::size_t heapBytes = kDefaultHeapBytes;
    /**
     * JIT method inlining + monomorphic devirtualization (the paper's
     * Section 7 proposal). Off by default: the baseline experiments
     * model the paper's non-inlining JITs.
     */
    bool jitInlining = false;
    /**
     * Interpreter dispatch folding (picoJava-style superinstructions,
     * paper Section 4.4). Off by default.
     */
    bool interpreterFolding = false;
    /**
     * On-stack replacement: when an interpreted frame takes this many
     * backward branches, compile its method and transfer the live
     * frame into native code (0 disables). OSR triggers independently
     * of the invocation policy — the tiered-VM combination the
     * counter-threshold ablation shows is necessary for loop-dominated
     * methods.
     */
    std::uint64_t osrBackEdgeThreshold = 0;
    /**
     * Garbage collection (off by default). With gc.collector set the
     * engine installs allocation safepoints and collector work shows
     * up as Phase::Gc trace events; with it off, behaviour — digests,
     * traces, cycle counts — is bit-identical to a GC-less build.
     */
    gc::GcOptions gc;
    /**
     * Code-cache management (vm/jit/code_cache.h). Default is
     * unlimited capacity — no eviction, layout and accounting
     * bit-identical to the unmanaged cache. With a capacity set,
     * translations are evicted under the configured policy; evicted
     * methods fall back to the interpreter and the counter policy is
     * re-armed so they must earn retranslation.
     */
    CodeCacheConfig codeCache;
    /**
     * Process-wide shared translation cache (vm/jit/shared_cache.h).
     * Null (default) keeps translation fully private. When set, the
     * engine fetches address-independent translation artifacts through
     * it — building at most once per compatibility key across all
     * participating engines — while installing per-engine clones in
     * its own code cache, so the trace stream stays bit-identical to a
     * private run. Requires sharedProgramKey.
     */
    std::shared_ptr<SharedCodeCache> sharedCodeCache;
    /**
     * Program identity for the shared-cache compatibility key
     * (typically the workload name). Engines running different
     * programs must pass different keys; ignored without
     * sharedCodeCache.
     */
    std::string sharedProgramKey;
};

/** Memory-footprint accounting (Table 1). */
struct MemoryFootprint {
    std::size_t classDataBytes = 0;   ///< bytecode + metadata + statics
    std::size_t heapBytes = 0;        ///< objects and arrays allocated
    std::size_t stackBytes = 0;       ///< thread stack high-water marks
    std::size_t codeCacheBytes = 0;   ///< JIT-generated code
    std::size_t translatorBytes = 0;  ///< peak compiler working memory
    /**
     * Fixed image sizes, calibrated against JDK-1.1-era footprints:
     * the interpreter VM image (loader, verifier, libraries) and the
     * additional JIT compiler image.
     */
    static constexpr std::size_t kInterpImageBytes = 500u << 10;
    static constexpr std::size_t kJitImageBytes = 64u << 10;

    /** Total for an interpreter-only runtime. */
    std::size_t interpreterTotal() const {
        return classDataBytes + heapBytes + stackBytes
            + kInterpImageBytes;
    }
    /**
     * Total for a runtime with the JIT: compiler image, generated code
     * plus per-method metadata (maps, handler tables — roughly 2x the
     * code itself), and the compiler's peak working arena.
     */
    std::size_t jitTotal() const {
        return interpreterTotal() + kJitImageBytes
            + 3 * codeCacheBytes + translatorBytes;
    }
};

/** Result of ExecutionEngine::run. */
struct RunResult {
    bool completed = false;  ///< main thread ran to completion
    /** Diagnostic name of an uncaught exception, or nullptr. */
    const char *uncaughtException = nullptr;
    bool hasExitValue = false;
    std::int32_t exitValue = 0;        ///< entry method's return value
    std::string output;                ///< print-intrinsic output

    std::uint64_t totalEvents = 0;     ///< simulated native instructions
    std::uint64_t phaseEvents[kNumPhases] = {};
    std::uint64_t bytecodesInterpreted = 0;
    std::uint64_t nativeInstsRetired = 0;
    std::uint64_t methodsCompiled = 0;
    std::uint64_t callsInlined = 0;
    std::uint64_t callsDevirtualized = 0;
    std::uint64_t dispatchesFolded = 0;
    std::uint64_t osrTransitions = 0;
    /** Methods evicted from a bounded code cache. */
    std::uint64_t codeCacheEvictions = 0;
    /** Simulated extent bytes recycled by those evictions. */
    std::uint64_t codeCacheBytesEvicted = 0;
    /** Successful translations of previously evicted methods. */
    std::uint64_t retranslations = 0;
    /** Free-extent bytes inside the code cache at end of run (0 when
     *  the allocator never released an extent). */
    std::uint64_t codeCacheFreeBytes = 0;
    /** Number of free extents those bytes are split across — together
     *  with codeCacheFreeBytes this is the fragmentation gauge. */
    std::uint64_t codeCacheFreeExtents = 0;
    /** Shared-cache artifacts this engine attached to without
     *  building (0 without a shared cache). */
    std::uint64_t sharedTranslationHits = 0;
    /** Shared-cache requests this engine built itself. */
    std::uint64_t sharedTranslationMisses = 0;
    /** Host ns this engine spent building translation artifacts. */
    std::uint64_t translateBuildNs = 0;
    /** Host ns shared hits saved this engine. */
    std::uint64_t translateBuildNsSaved = 0;
    /** Dynamic bytecode counts per opcode (interpreted steps only). */
    std::vector<std::uint64_t> bytecodeCounts;

    /** Threads spawned beyond the main thread. */
    std::uint32_t threadsSpawned = 0;
    /** Guest exceptions that reached the unwinder (caught or not). */
    std::uint64_t guestThrows = 0;
    /**
     * Order-sensitive FNV-1a hash over every guest throw: exception
     * class id, faulting method id, and faulting *bytecode* pc (native
     * frames are mapped back through bc2n so interpreted and compiled
     * runs of the same program hash identically). jrs::check compares
     * this across execution modes.
     */
    std::uint64_t throwChainHash = 14695981039346656037ull;

    ProfileTable profiles;
    LockStats lockStats;
    MemoryFootprint memory;
    /** Collection statistics (all zero when GC is off). */
    gc::GcStats gcStats;

    /** Events in a phase by enum. */
    std::uint64_t inPhase(Phase p) const {
        return phaseEvents[static_cast<std::size_t>(p)];
    }
};

/** The mixed-mode virtual machine. */
class ExecutionEngine : public EngineServices {
  public:
    /**
     * Create an engine for @p prog. The Program must outlive the
     * engine; @p cfg.sink (when set) must outlive run().
     */
    ExecutionEngine(const Program &prog, EngineConfig cfg);
    ~ExecutionEngine() override;

    ExecutionEngine(const ExecutionEngine &) = delete;
    ExecutionEngine &operator=(const ExecutionEngine &) = delete;

    /**
     * Run the program's entry method with @p arg. A fresh engine is
     * required per run (heap and code cache are not reset).
     */
    RunResult run(std::int32_t arg);

    // --- EngineServices -----------------------------------------------
    void invokeMethod(VmThread &thread, MethodId target,
                      const Value *args, std::uint8_t nargs) override;
    std::uint32_t spawnThread(MethodId target, Value arg) override;
    bool threadDone(std::uint32_t tid) const override;
    std::uint64_t eventCount() const override;

    /** Access to the sync system (examples and tests). */
    SyncSystem &sync() { return *sync_; }

    /** Access to the heap (tests). */
    Heap &heap() { return *heap_; }

    /** Access to the registry (tests). */
    ClassRegistry &registry() { return *registry_; }

    /** Access to the code cache (profilers build method maps from it). */
    const CodeCache &codeCache() const { return *cache_; }

    /** The configured collector (CollectorKind::None when GC is off). */
    gc::CollectorKind collectorKind() const { return cfg_.gc.collector; }

    /** The GC controller, or nullptr when GC is off. */
    gc::GcController *gcController() { return gc_.get(); }

    /**
     * Relocation-independent digest of the currently reachable heap
     * (gc/live_digest.h). Meaningful for cross-collector comparison
     * once the run has finished and all frames have unwound.
     */
    std::uint64_t liveHeapHash();

  private:
    void unwind(VmThread &thread, SimAddr exception, const char *name);
    /** Attempt on-stack replacement of the top (interpreter) frame. */
    bool tryOsr(VmThread &thread);
    void deliverReturn(VmThread &thread, const StepResult &r);
    bool stepThread(VmThread &thread);  ///< one quantum; true if progress

    const Program &prog_;
    EngineConfig cfg_;

    // Order matters: heap before registry before everything else.
    std::unique_ptr<Heap> heap_;
    std::unique_ptr<ClassRegistry> registry_;
    TraceEmitter emitter_;
    MultiSink internalSink_;
    CountingSink counting_;
    std::unique_ptr<SyncSystem> sync_;
    std::unique_ptr<RuntimeSupport> runtime_;
    std::unique_ptr<CodeCache> cache_;
    std::unique_ptr<Translator> translator_;
    std::unique_ptr<VmContext> ctx_;
    std::unique_ptr<Interpreter> interp_;
    std::unique_ptr<NativeExecutor> exec_;

    std::vector<std::unique_ptr<VmThread>> threads_;
    std::unique_ptr<gc::GcController> gc_;
    ProfileTable profiles_;
    std::set<MethodId> uncompilable_;
    /**
     * Per-method invocation count at the moment of eviction: the
     * counter policy sees invocations *since* eviction, so a method
     * must re-earn compilation instead of being retranslated on its
     * first post-eviction call.
     */
    std::unordered_map<MethodId, std::uint64_t> rearmBase_;
    /** Observed cost (trace events) of each method's last translation;
     *  feeds the kCost eviction policy's cheapest-to-retranslate
     *  ranking. */
    std::unordered_map<MethodId, std::uint64_t> lastTranslateCost_;
    std::uint64_t retranslations_ = 0;
    std::uint64_t translateEventsThisStep_ = 0;
    std::uint64_t guestThrows_ = 0;
    std::uint64_t throwChainHash_ = 14695981039346656037ull;
    std::int32_t mainExitValue_ = 0;
    std::uint64_t osrTransitions_ = 0;
    bool mainHasExit_ = false;
    bool ran_ = false;
};

} // namespace jrs

#endif // JRS_VM_ENGINE_ENGINE_H
