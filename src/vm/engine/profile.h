/**
 * @file
 * Per-method execution profiles.
 *
 * The engine attributes every simulated native instruction to the
 * method whose frame was running (exclusive attribution: callees count
 * toward themselves). These are the quantities of Section 3: per-method
 * interpretation cost I_i, translation cost T_i and native execution
 * cost E_i, from which the oracle's crossover N_i = T_i / (I_i - E_i)
 * is computed.
 */
#ifndef JRS_VM_ENGINE_PROFILE_H
#define JRS_VM_ENGINE_PROFILE_H

#include <cstdint>
#include <vector>

#include "vm/bytecode/class_def.h"

namespace jrs {

/** Counters for one method. */
struct MethodProfile {
    std::uint64_t invocations = 0;
    std::uint64_t interpInvocations = 0;
    std::uint64_t nativeInvocations = 0;
    /** Native instructions spent interpreting this method (exclusive). */
    std::uint64_t interpEvents = 0;
    /** Native instructions executing its JIT-compiled code (exclusive). */
    std::uint64_t nativeEvents = 0;
    /** Native instructions spent translating this method. */
    std::uint64_t translateEvents = 0;

    /** Mean interpretation cost per invocation (0 when never interp'd). */
    double interpCostPerInvocation() const {
        return interpInvocations == 0
            ? 0.0
            : static_cast<double>(interpEvents)
                / static_cast<double>(interpInvocations);
    }

    /** Mean native execution cost per invocation. */
    double nativeCostPerInvocation() const {
        return nativeInvocations == 0
            ? 0.0
            : static_cast<double>(nativeEvents)
                / static_cast<double>(nativeInvocations);
    }
};

/** Profiles for every method of a program. */
class ProfileTable {
  public:
    ProfileTable() = default;
    explicit ProfileTable(std::size_t num_methods)
        : profiles_(num_methods) {}

    MethodProfile &of(MethodId id) { return profiles_[id]; }
    const MethodProfile &of(MethodId id) const { return profiles_[id]; }

    std::size_t size() const { return profiles_.size(); }

    const std::vector<MethodProfile> &all() const { return profiles_; }

  private:
    std::vector<MethodProfile> profiles_;
};

} // namespace jrs

#endif // JRS_VM_ENGINE_PROFILE_H
