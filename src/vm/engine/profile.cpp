#include "vm/engine/profile.h"

// Profiles are header-only.
