#include "vm/jit/native_inst.h"

#include <sstream>

namespace jrs {

const char *
nopName(NOp op)
{
    switch (op) {
      case NOp::MovI:        return "movi";
      case NOp::Mov:         return "mov";
      case NOp::Add:         return "add";
      case NOp::Sub:         return "sub";
      case NOp::Mul:         return "mul";
      case NOp::Div:         return "div";
      case NOp::Rem:         return "rem";
      case NOp::And:         return "and";
      case NOp::Or:          return "or";
      case NOp::Xor:         return "xor";
      case NOp::Shl:         return "shl";
      case NOp::Shr:         return "shr";
      case NOp::Ushr:        return "ushr";
      case NOp::Neg:         return "neg";
      case NOp::AddI:        return "addi";
      case NOp::ShlI:        return "shli";
      case NOp::AddP:        return "addp";
      case NOp::LdStatic:    return "ldstatic";
      case NOp::StStatic:    return "ststatic";
      case NOp::JmpTbl:      return "jmptbl";
      case NOp::FAdd:        return "fadd";
      case NOp::FSub:        return "fsub";
      case NOp::FMul:        return "fmul";
      case NOp::FDiv:        return "fdiv";
      case NOp::FNeg:        return "fneg";
      case NOp::FCmp:        return "fcmp";
      case NOp::FSqrt:       return "fsqrt";
      case NOp::FSin:        return "fsin";
      case NOp::FCos:        return "fcos";
      case NOp::I2F:         return "i2f";
      case NOp::F2I:         return "f2i";
      case NOp::I2C:         return "i2c";
      case NOp::I2B:         return "i2b";
      case NOp::Ld:          return "ld";
      case NOp::LdU16:       return "ldu16";
      case NOp::LdS8:        return "lds8";
      case NOp::St:          return "st";
      case NOp::St16:        return "st16";
      case NOp::St8:         return "st8";
      case NOp::LdRef:       return "ldref";
      case NOp::StRef:       return "stref";
      case NOp::LdSpill:     return "ldspill";
      case NOp::StSpill:     return "stspill";
      case NOp::LdStr:       return "ldstr";
      case NOp::Br:          return "br";
      case NOp::Jmp:         return "jmp";
      case NOp::BndChk:      return "bndchk";
      case NOp::NullChk:     return "nullchk";
      case NOp::CallStatic:  return "call";
      case NOp::CallSpecial: return "calls";
      case NOp::CallVirtual: return "callv";
      case NOp::Ret:         return "ret";
      case NOp::New:         return "new";
      case NOp::NewArr:      return "newarr";
      case NOp::ArrLen:      return "arrlen";
      case NOp::MonEnter:    return "menter";
      case NOp::MonExit:     return "mexit";
      case NOp::Throw:       return "throw";
      case NOp::Intrin:      return "intrin";
      case NOp::ArrCopy:     return "arrcopy";
      case NOp::Spawn:       return "spawn";
      case NOp::Join:        return "join";
    }
    return "invalid";
}

std::string
renderNativeInst(const NativeInst &inst)
{
    std::ostringstream os;
    os << nopName(inst.op) << " rd=r" << static_cast<int>(inst.rd)
       << " rs1=r" << static_cast<int>(inst.rs1) << " rs2=r"
       << static_cast<int>(inst.rs2) << " imm=" << inst.imm << " aux="
       << static_cast<int>(inst.aux);
    return os.str();
}

} // namespace jrs
