#include "vm/jit/translator.h"

#include <chrono>
#include <functional>

#include "obs/obs.h"
#include "vm/bytecode/assembler.h"
#include "vm/bytecode/decode.h"
#include "vm/runtime/heap.h"
#include "vm/runtime/vm_error.h"

namespace jrs {

namespace {

/** Raised when a method uses a construct the JIT cannot compile. */
struct TranslationAbort {};

constexpr std::uint8_t kScratch2 = 30;

/** Translator's own dispatch loop address; see isa/address_map.h. */
constexpr SimAddr kTransDispatch = stub::kTransDispatch;

/** Per-opcode emit-routine base (the translator is a switch, too). */
SimAddr
transRoutine(Op op)
{
    return seg::kTranslateCode + 0x1000
        + 0x100ull * static_cast<SimAddr>(op);
}

/** Instruction-encoding/install routine. */
constexpr SimAddr kTransEmit = stub::kTransEmit;

/** Method prologue/epilogue bookkeeping routine. */
constexpr SimAddr kTransSetup = stub::kTransSetup;

constexpr int log2Of(std::uint32_t esz)
{
    return esz == 1 ? 0 : (esz == 2 ? 1 : 2);
}

} // namespace

/**
 * One method's translation state. Separating this from Translator keeps
 * the per-method buffers (the compiler's working set) in one place so
 * we can both account for them and model their data traffic.
 *
 * A MethodTranslation is *pure codegen*: it emits no trace events and
 * touches no engine state, writing everything it produces — code,
 * maps, statistics deltas, and the Translate-phase replay script —
 * into a TranslationArtifact. That purity is what makes the result
 * safe to build once and share across engines.
 */
class Translator::MethodTranslation {
  public:
    MethodTranslation(const Program &prog, const Method &m,
                      bool inlining, TranslationArtifact &art)
        : m_(m), prog_(prog), art_(art), inlining_(inlining),
          depths_(computeStackDepths(m, prog_)),
          bc2n_(m.code.size(), -1)
    {
        nm_ = std::make_unique<NativeMethod>();
        nm_->id = m.id;
        nm_->src = &m;
        numSpilledLocals_ = m.numLocals > kNumLocalRegs
            ? m.numLocals - kNumLocalRegs
            : 0;
        const int stack_spills = m.maxStack > kNumStackRegs
            ? m.maxStack - kNumStackRegs
            : 0;
        nm_->numSpills =
            static_cast<std::uint16_t>(numSpilledLocals_ + stack_spills);
    }

    /**
     * Run the translation, filling the artifact. May throw
     * TranslationAbort, in which case the artifact holds the partial
     * replay script (workPcs up to and including the aborting pc) and
     * the statistics accumulated so far.
     */
    void run();

  private:
    // --- code emission ---------------------------------------------------
    std::uint32_t emit(NativeInst inst) {
        nm_->code.push_back(inst);
        return static_cast<std::uint32_t>(nm_->code.size() - 1);
    }
    void emitBranchTo(NOp op, NCond cond, std::uint8_t rs1,
                      std::uint8_t rs2, std::uint32_t target_bc) {
        NativeInst i;
        i.op = op;
        i.aux = static_cast<std::uint8_t>(cond);
        i.rs1 = rs1;
        i.rs2 = rs2;
        pending_.push_back({emit(i), target_bc});
    }

    // --- register mapping --------------------------------------------------
    bool localInReg(std::uint8_t slot) const {
        return slot < kNumLocalRegs;
    }
    std::uint8_t localReg(std::uint8_t slot) const {
        return static_cast<std::uint8_t>(kLocalRegBase + slot);
    }
    std::int32_t localSpill(std::uint8_t slot) const {
        return slot - kNumLocalRegs;
    }
    bool stackInReg(int depth) const { return depth < kNumStackRegs; }
    std::uint8_t stackReg(int depth) const {
        return static_cast<std::uint8_t>(kStackRegBase + depth);
    }
    std::int32_t stackSpill(int depth) const {
        return numSpilledLocals_ + (depth - kNumStackRegs);
    }

    /** Register holding stack position @p depth (loading a spill). */
    std::uint8_t useStack(int depth, std::uint8_t scratch) {
        if (stackInReg(depth))
            return stackReg(depth);
        NativeInst i;
        i.op = NOp::LdSpill;
        i.rd = scratch;
        i.imm = stackSpill(depth);
        emit(i);
        return scratch;
    }

    /** Define stack position @p depth via @p gen(rd). */
    void defStack(int depth, const std::function<void(std::uint8_t)> &gen) {
        if (stackInReg(depth)) {
            gen(stackReg(depth));
            return;
        }
        gen(kScratch0);
        NativeInst i;
        i.op = NOp::StSpill;
        i.rs1 = kScratch0;
        i.imm = stackSpill(depth);
        emit(i);
    }

    /** Register holding local @p slot (loading a spill). */
    std::uint8_t useLocal(std::uint8_t slot, std::uint8_t scratch) {
        if (localInReg(slot))
            return localReg(slot);
        NativeInst i;
        i.op = NOp::LdSpill;
        i.rd = scratch;
        i.imm = localSpill(slot);
        emit(i);
        return scratch;
    }

    void defLocal(std::uint8_t slot,
                  const std::function<void(std::uint8_t)> &gen) {
        if (localInReg(slot)) {
            gen(localReg(slot));
            return;
        }
        gen(kScratch0);
        NativeInst i;
        i.op = NOp::StSpill;
        i.rs1 = kScratch0;
        i.imm = localSpill(slot);
        emit(i);
    }

    // --- translation steps ----------------------------------------------
    void prologue();
    void translateOne(std::uint32_t pc, int depth);
    void patchBranches();
    void mapHandlers();

    // --- inlining (Section 7 of the paper) --------------------------------
    /** Sole implementation of a vtable slot, or nullptr if polymorphic. */
    const Method *monomorphicTarget(std::uint16_t slot) const;
    /** True when @p callee is a small straight-line leaf. */
    bool inlineEligible(const Method &callee, int call_depth) const;
    /** Expand @p callee at call depth @p d (receiver/args on stack). */
    void inlineBody(const Method &callee, int d, bool needs_null_check);

    const Method &m_;
    const Program &prog_;
    TranslationArtifact &art_;
    bool inlining_ = false;
    std::vector<int> depths_;
    std::vector<std::int32_t> bc2n_;
    std::unique_ptr<NativeMethod> nm_;
    struct Pending {
        std::uint32_t instIdx;
        std::uint32_t targetBc;
    };
    std::vector<Pending> pending_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pendingTables_;
    int numSpilledLocals_ = 0;
};

void
Translator::MethodTranslation::prologue()
{
    // Move incoming arguments from arg registers to local homes.
    for (std::uint8_t i = 0; i < m_.numArgs; ++i) {
        const std::uint8_t src =
            static_cast<std::uint8_t>(kArgRegBase + i);
        if (localInReg(i)) {
            NativeInst mv;
            mv.op = NOp::Mov;
            mv.rd = localReg(i);
            mv.rs1 = src;
            emit(mv);
        } else {
            NativeInst st;
            st.op = NOp::StSpill;
            st.rs1 = src;
            st.imm = localSpill(i);
            emit(st);
        }
    }
}

namespace {

/**
 * Translate-phase trace emission, replayed from an artifact's script.
 * These are free functions of (method, script) only — never of
 * translation state — so a shared artifact re-emits the exact event
 * sequence a private translation would have produced.
 */

/** Translator entry: method lookup, buffer setup, handler scan. */
void
emitTranslateSetup(TraceEmitter &E)
{
    E.control(Phase::Translate, kTransSetup + 0x20, NKind::Call,
              kTransDispatch);
    for (int k = 0; k < 32; ++k) {
        E.load(Phase::Translate, kTransSetup + 0x24,
               seg::kTranslateData + 0x2000 + 8ull * k, 4);
        E.alu(Phase::Translate, kTransSetup + 0x28);
        E.alu(Phase::Translate, kTransSetup + 0x2c);
    }
}

/** Per-bytecode compiler work: dispatch, operand reads, analysis. */
void
emitBytecodeWork(TraceEmitter &E, const Method &m, std::uint32_t pc,
                 int depth)
{
    if (!E.enabled())
        return;
    const Op op = m.opAt(pc);
    const Phase T = Phase::Translate;

    // The translator's own opcode dispatch: a load of the bytecode (the
    // method is *data* to the compiler) and an indirect jump into the
    // per-opcode emit routine.
    E.load(T, kTransDispatch + 0, m.bytecodeAddr + pc, 1);
    E.alu(T, kTransDispatch + 4);
    E.control(T, kTransDispatch + 8, NKind::IndirectJump,
              transRoutine(op));

    // Operand bytes are read as data too.
    const std::uint32_t len = instrLength(m.code, pc);
    for (std::uint32_t b = 1; b < len; b += 4) {
        E.load(T, transRoutine(op) + 0, m.bytecodeAddr + pc + b,
               static_cast<std::uint8_t>(std::min<std::uint32_t>(
                   4, len - b)));
    }

    // Analysis work: abstract-stack updates, register-map bookkeeping,
    // liveness counters. Small working set in the translate-data
    // segment -> good read locality, exactly what Figure 5 reports.
    const SimAddr rpc = transRoutine(op) + 0x10;
    const SimAddr work = seg::kTranslateData
        + (static_cast<SimAddr>(depth < 0 ? 0 : depth) * 8)
        % 0x800;
    // Abstract-stack updates, register-map bookkeeping, liveness and
    // encoding-table lookups: ~36 work units of 4 instructions each,
    // sized so a method must run a couple dozen times before
    // compilation pays for itself (Kaffe-like compile costs).
    for (int k = 0; k < 36; ++k) {
        E.load(T, rpc + 16ull * (k % 12), work + 16ull * k, 4);
        E.alu(T, rpc + 16ull * (k % 12) + 4);
        E.alu(T, rpc + 16ull * (k % 12) + 8);
        E.store(T, rpc + 16ull * (k % 12) + 12, work + 16ull * k + 8,
                4);
    }
    E.control(T, rpc + 0xa0, NKind::Ret, kTransDispatch);
}

/** Encode/install stores against the engine's assigned codeBase. */
void
emitInstallTrace(TraceEmitter &E, const NativeMethod &nm,
                 const std::vector<std::uint32_t> &patchedIdx)
{
    if (!E.enabled())
        return;
    const Phase T = Phase::Translate;

    // Encode and install every generated instruction: the stream of
    // stores into the code cache that produces the compulsory write
    // misses of Figures 3/5.
    for (std::uint32_t i = 0; i < nm.code.size(); ++i) {
        E.load(T, kTransEmit + 0,
               seg::kTranslateCode + 0x800
                   + (static_cast<SimAddr>(nm.code[i].op) * 16) % 0x400,
               4);  // encoding template
        E.alu(T, kTransEmit + 4);
        E.alu(T, kTransEmit + 8);
        E.alu(T, kTransEmit + 12);
        E.alu(T, kTransEmit + 16);
        E.alu(T, kTransEmit + 20);
        E.store(T, kTransEmit + 24, nm.pcOf(i), 4);  // the install
        E.store(T, kTransEmit + 28,
                seg::kTranslateData + 0x1000 + (8ull * i) % 0x1000, 4);
    }
    // Branch patching: read-modify-write of already-installed code.
    for (const std::uint32_t idx : patchedIdx) {
        E.load(T, kTransEmit + 32, nm.pcOf(idx), 4);
        E.store(T, kTransEmit + 36, nm.pcOf(idx), 4);
    }
    // Code-cache directory insertion.
    E.store(T, kTransSetup + 0,
            seg::kRuntimeData + 0x4000 + 8ull * nm.id, 4);
    E.control(T, kTransSetup + 4, NKind::Ret, kTransDispatch);
}

} // namespace

void
Translator::MethodTranslation::patchBranches()
{
    auto nativeIdxOf = [&](std::uint32_t bc) -> std::uint32_t {
        // A branch target is always a reachable instruction boundary.
        while (bc < bc2n_.size() && bc2n_[bc] < 0)
            ++bc;
        if (bc >= bc2n_.size())
            return static_cast<std::uint32_t>(nm_->code.size());
        return static_cast<std::uint32_t>(bc2n_[bc]);
    };
    for (const Pending &p : pending_)
        nm_->code[p.instIdx].imm =
            static_cast<std::int32_t>(nativeIdxOf(p.targetBc));
    for (auto &[table_idx, base_bc] : pendingTables_) {
        (void)base_bc;
        for (std::uint32_t &entry : nm_->jumpTables[table_idx])
            entry = nativeIdxOf(entry);
    }
}

void
Translator::MethodTranslation::mapHandlers()
{
    auto nativeIdxOf = [&](std::uint32_t bc) -> std::uint32_t {
        while (bc < bc2n_.size() && bc2n_[bc] < 0)
            ++bc;
        if (bc >= bc2n_.size())
            return static_cast<std::uint32_t>(nm_->code.size());
        return static_cast<std::uint32_t>(bc2n_[bc]);
    };
    for (const ExceptionEntry &e : m_.handlers) {
        NativeHandler h;
        h.startIdx = nativeIdxOf(e.startPc);
        h.endIdx = nativeIdxOf(e.endPc);
        h.handlerIdx = nativeIdxOf(e.handlerPc);
        h.catchType = e.catchType;
        nm_->handlers.push_back(h);
    }
}

const Method *
Translator::MethodTranslation::monomorphicTarget(
    std::uint16_t slot) const
{
    const Method *target = nullptr;
    for (const auto &c : prog_.classes) {
        if (slot >= c.vtable.size() || c.vtable[slot] == kNoMethod)
            continue;
        const Method *impl = &prog_.methods[c.vtable[slot]];
        if (target != nullptr && target != impl)
            return nullptr;  // polymorphic
        target = impl;
    }
    return target;
}

bool
Translator::MethodTranslation::inlineEligible(const Method &callee,
                                              int call_depth) const
{
    if (&callee == &m_)
        return false;  // no self-inlining
    if (callee.isSynchronized || !callee.handlers.empty())
        return false;
    if (callee.numLocals != callee.numArgs)
        return false;  // extra locals would need fresh homes
    if (callee.code.size() > 40)
        return false;
    // All operand positions (caller args become callee locals, callee
    // temps sit above the caller's stack) must fit in stack registers.
    if (call_depth + callee.maxStack > kNumStackRegs)
        return false;

    std::uint32_t pc = 0;
    while (pc < callee.code.size()) {
        const Op op = callee.opAt(pc);
        const std::uint32_t len = instrLength(callee.code, pc);
        const bool last = pc + len >= callee.code.size();
        switch (op) {
          case Op::Iconst8: case Op::Iconst32: case Op::Fconst:
          case Op::AconstNull: case Op::LdcStr:
          case Op::Iload: case Op::Fload: case Op::Aload:
          case Op::Istore: case Op::Fstore: case Op::Astore:
          case Op::Iinc:
          case Op::Pop: case Op::Dup: case Op::DupX1: case Op::Swap:
          case Op::Iadd: case Op::Isub: case Op::Imul: case Op::Idiv:
          case Op::Irem: case Op::Ineg: case Op::Ishl: case Op::Ishr:
          case Op::Iushr: case Op::Iand: case Op::Ior: case Op::Ixor:
          case Op::Fadd: case Op::Fsub: case Op::Fmul: case Op::Fdiv:
          case Op::Fneg: case Op::Fcmpl:
          case Op::I2f: case Op::F2i: case Op::I2c: case Op::I2b:
          case Op::GetFieldI: case Op::GetFieldF: case Op::GetFieldA:
          case Op::PutFieldI: case Op::PutFieldF: case Op::PutFieldA:
          case Op::GetStaticI: case Op::GetStaticF: case Op::GetStaticA:
          case Op::PutStaticI: case Op::PutStaticF: case Op::PutStaticA:
          case Op::ArrayLength:
          case Op::IAload: case Op::FAload: case Op::CAload:
          case Op::BAload: case Op::AAload:
          case Op::IAstore: case Op::FAstore: case Op::CAstore:
          case Op::BAstore: case Op::AAstore:
            break;
          case Op::Intrinsic: {
            const IntrinsicId id =
                static_cast<IntrinsicId>(callee.code[pc + 1]);
            if (id != IntrinsicId::FSqrt && id != IntrinsicId::FSin
                && id != IntrinsicId::FCos) {
                return false;
            }
            break;
          }
          case Op::Ireturn: case Op::Freturn: case Op::Areturn:
          case Op::ReturnVoid:
            if (!last)
                return false;  // single return at the end only
            break;
          default:
            return false;  // branches, calls, allocation, monitors...
        }
        pc += len;
    }
    return true;
}

void
Translator::MethodTranslation::inlineBody(const Method &callee, int d,
                                          bool needs_null_check)
{
    // Caller stack positions base..d-1 hold the arguments; they double
    // as the callee's local slots. Callee operand-stack position j
    // lives at caller position d + j.
    const int base = d - callee.numArgs;

    auto calleeLocal = [&](std::uint8_t slot) { return base + slot; };

    if (needs_null_check) {
        NativeInst nc;
        nc.op = NOp::NullChk;
        nc.rs1 = useStack(base, kScratch0);
        emit(nc);
    }

    int cs = 0;  // callee operand-stack depth
    std::uint32_t pc = 0;
    const auto &code = callee.code;
    auto mov_to = [&](int dst_pos, std::uint8_t src) {
        defStack(dst_pos, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Mov;
            i.rd = rd;
            i.rs1 = src;
            emit(i);
        });
    };
    auto bin = [&](NOp nop) {
        const std::uint8_t b2 = useStack(d + cs - 1, kScratch1);
        const std::uint8_t a2 = useStack(d + cs - 2, kScratch0);
        defStack(d + cs - 2, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = nop;
            i.rd = rd;
            i.rs1 = a2;
            i.rs2 = b2;
            emit(i);
        });
        --cs;
    };
    auto un = [&](NOp nop) {
        const std::uint8_t a2 = useStack(d + cs - 1, kScratch0);
        defStack(d + cs - 1, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = nop;
            i.rd = rd;
            i.rs1 = a2;
            emit(i);
        });
    };

    while (pc < code.size()) {
        const Op op = callee.opAt(pc);
        const std::uint32_t len = instrLength(code, pc);
        switch (op) {
          case Op::Iconst8:
            defStack(d + cs, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::MovI;
                i.rd = rd;
                i.imm = readS8(code, pc + 1);
                emit(i);
            });
            ++cs;
            break;
          case Op::Iconst32:
            defStack(d + cs, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::MovI;
                i.rd = rd;
                i.imm = readS32(code, pc + 1);
                emit(i);
            });
            ++cs;
            break;
          case Op::Fconst:
            defStack(d + cs, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::MovI;
                i.rd = rd;
                i.imm = readS32(code, pc + 1);
                i.aux = 1;
                emit(i);
            });
            ++cs;
            break;
          case Op::AconstNull:
            defStack(d + cs, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::MovI;
                i.rd = rd;
                i.imm = 0;
                emit(i);
            });
            ++cs;
            break;
          case Op::LdcStr:
            defStack(d + cs, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::LdStr;
                i.rd = rd;
                i.imm = readU16(code, pc + 1);
                emit(i);
            });
            ++cs;
            break;

          case Op::Iload: case Op::Fload: case Op::Aload: {
            const std::uint8_t src = useStack(
                calleeLocal(readU8(code, pc + 1)), kScratch1);
            mov_to(d + cs, src);
            ++cs;
            break;
          }
          case Op::Istore: case Op::Fstore: case Op::Astore: {
            const std::uint8_t src = useStack(d + cs - 1, kScratch1);
            mov_to(calleeLocal(readU8(code, pc + 1)), src);
            --cs;
            break;
          }
          case Op::Iinc: {
            const int pos = calleeLocal(readU8(code, pc + 1));
            const std::uint8_t src = useStack(pos, kScratch1);
            defStack(pos, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::AddI;
                i.rd = rd;
                i.rs1 = src;
                i.imm = readS8(code, pc + 2);
                emit(i);
            });
            break;
          }

          case Op::Pop:
            --cs;
            break;
          case Op::Dup: {
            const std::uint8_t src = useStack(d + cs - 1, kScratch1);
            mov_to(d + cs, src);
            ++cs;
            break;
          }
          case Op::DupX1: {
            const std::uint8_t b2 = useStack(d + cs - 1, kScratch0);
            const std::uint8_t a2 = useStack(d + cs - 2, kScratch1);
            NativeInst mv;
            mv.op = NOp::Mov;
            mv.rd = kScratch2;
            mv.rs1 = b2;
            emit(mv);
            mov_to(d + cs, kScratch2);
            mov_to(d + cs - 1, a2);
            mov_to(d + cs - 2, kScratch2);
            ++cs;
            break;
          }
          case Op::Swap: {
            const std::uint8_t b2 = useStack(d + cs - 1, kScratch0);
            const std::uint8_t a2 = useStack(d + cs - 2, kScratch1);
            NativeInst mv;
            mv.op = NOp::Mov;
            mv.rd = kScratch2;
            mv.rs1 = b2;
            emit(mv);
            mov_to(d + cs - 1, a2);
            mov_to(d + cs - 2, kScratch2);
            break;
          }

          case Op::Iadd: bin(NOp::Add); break;
          case Op::Isub: bin(NOp::Sub); break;
          case Op::Imul: bin(NOp::Mul); break;
          case Op::Idiv: bin(NOp::Div); break;
          case Op::Irem: bin(NOp::Rem); break;
          case Op::Ishl: bin(NOp::Shl); break;
          case Op::Ishr: bin(NOp::Shr); break;
          case Op::Iushr: bin(NOp::Ushr); break;
          case Op::Iand: bin(NOp::And); break;
          case Op::Ior: bin(NOp::Or); break;
          case Op::Ixor: bin(NOp::Xor); break;
          case Op::Fadd: bin(NOp::FAdd); break;
          case Op::Fsub: bin(NOp::FSub); break;
          case Op::Fmul: bin(NOp::FMul); break;
          case Op::Fdiv: bin(NOp::FDiv); break;
          case Op::Fcmpl: bin(NOp::FCmp); break;
          case Op::Ineg: un(NOp::Neg); break;
          case Op::Fneg: un(NOp::FNeg); break;
          case Op::I2f: un(NOp::I2F); break;
          case Op::F2i: un(NOp::F2I); break;
          case Op::I2c: un(NOp::I2C); break;
          case Op::I2b: un(NOp::I2B); break;

          case Op::GetFieldI: case Op::GetFieldF: case Op::GetFieldA: {
            const std::uint16_t slot = readU16(code, pc + 1);
            const std::uint8_t obj = useStack(d + cs - 1, kScratch1);
            NativeInst nc;
            nc.op = NOp::NullChk;
            nc.rs1 = obj;
            emit(nc);
            defStack(d + cs - 1, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = op == Op::GetFieldA ? NOp::LdRef : NOp::Ld;
                i.rd = rd;
                i.rs1 = obj;
                i.imm = 8 + 4 * slot;
                emit(i);
            });
            break;
          }
          case Op::PutFieldI: case Op::PutFieldF: case Op::PutFieldA: {
            const std::uint16_t slot = readU16(code, pc + 1);
            const std::uint8_t val = useStack(d + cs - 1, kScratch0);
            const std::uint8_t obj = useStack(d + cs - 2, kScratch1);
            NativeInst nc;
            nc.op = NOp::NullChk;
            nc.rs1 = obj;
            emit(nc);
            NativeInst i;
            i.op = op == Op::PutFieldA ? NOp::StRef : NOp::St;
            i.rs1 = obj;
            i.rs2 = val;
            i.imm = 8 + 4 * slot;
            emit(i);
            cs -= 2;
            break;
          }
          case Op::GetStaticI: case Op::GetStaticF:
          case Op::GetStaticA:
            defStack(d + cs, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::LdStatic;
                i.rd = rd;
                i.imm = readU16(code, pc + 1);
                i.aux = op == Op::GetStaticA ? 1 : 0;
                emit(i);
            });
            ++cs;
            break;
          case Op::PutStaticI: case Op::PutStaticF:
          case Op::PutStaticA: {
            NativeInst i;
            i.op = NOp::StStatic;
            i.rs1 = useStack(d + cs - 1, kScratch0);
            i.imm = readU16(code, pc + 1);
            i.aux = op == Op::PutStaticA ? 1 : 0;
            emit(i);
            --cs;
            break;
          }

          case Op::ArrayLength: {
            const std::uint8_t arr = useStack(d + cs - 1, kScratch1);
            NativeInst nc;
            nc.op = NOp::NullChk;
            nc.rs1 = arr;
            emit(nc);
            defStack(d + cs - 1, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::ArrLen;
                i.rd = rd;
                i.rs1 = arr;
                emit(i);
            });
            break;
          }
          case Op::IAload: case Op::FAload: case Op::CAload:
          case Op::BAload: case Op::AAload:
          case Op::IAstore: case Op::FAstore: case Op::CAstore:
          case Op::BAstore: case Op::AAstore: {
            const bool is_load = op == Op::IAload || op == Op::FAload
                || op == Op::CAload || op == Op::BAload
                || op == Op::AAload;
            std::uint32_t esz = 4;
            if (op == Op::CAload || op == Op::CAstore)
                esz = 2;
            if (op == Op::BAload || op == Op::BAstore)
                esz = 1;
            const int idx_pos = is_load ? d + cs - 1 : d + cs - 2;
            const int arr_pos = is_load ? d + cs - 2 : d + cs - 3;
            const std::uint8_t idx = useStack(idx_pos, kScratch0);
            const std::uint8_t arr = useStack(arr_pos, kScratch1);
            NativeInst nc;
            nc.op = NOp::NullChk;
            nc.rs1 = arr;
            emit(nc);
            NativeInst ln;
            ln.op = NOp::ArrLen;
            ln.rd = kScratch2;
            ln.rs1 = arr;
            emit(ln);
            NativeInst bc2;
            bc2.op = NOp::BndChk;
            bc2.rs1 = idx;
            bc2.rs2 = kScratch2;
            emit(bc2);
            if (log2Of(esz) != 0) {
                NativeInst sh;
                sh.op = NOp::ShlI;
                sh.rd = kScratch2;
                sh.rs1 = idx;
                sh.imm = log2Of(esz);
                emit(sh);
            } else {
                NativeInst mv;
                mv.op = NOp::Mov;
                mv.rd = kScratch2;
                mv.rs1 = idx;
                emit(mv);
            }
            NativeInst ap;
            ap.op = NOp::AddP;
            ap.rd = kScratch2;
            ap.rs1 = arr;
            ap.rs2 = kScratch2;
            emit(ap);
            if (is_load) {
                NOp ld_op = NOp::Ld;
                if (op == Op::AAload)
                    ld_op = NOp::LdRef;
                else if (op == Op::CAload)
                    ld_op = NOp::LdU16;
                else if (op == Op::BAload)
                    ld_op = NOp::LdS8;
                defStack(arr_pos, [&](std::uint8_t rd) {
                    NativeInst i;
                    i.op = ld_op;
                    i.rd = rd;
                    i.rs1 = kScratch2;
                    i.imm = 12;
                    emit(i);
                });
                --cs;
            } else {
                const std::uint8_t val =
                    useStack(d + cs - 1, kScratch0);
                NOp st_op = NOp::St;
                if (op == Op::AAstore)
                    st_op = NOp::StRef;
                else if (op == Op::CAstore)
                    st_op = NOp::St16;
                else if (op == Op::BAstore)
                    st_op = NOp::St8;
                NativeInst i;
                i.op = st_op;
                i.rs1 = kScratch2;
                i.rs2 = val;
                i.imm = 12;
                emit(i);
                cs -= 3;
            }
            break;
          }

          case Op::Intrinsic: {
            const IntrinsicId id =
                static_cast<IntrinsicId>(code[pc + 1]);
            const std::uint8_t a2 = useStack(d + cs - 1, kScratch1);
            defStack(d + cs - 1, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::Intrin;
                i.rd = rd;
                i.rs1 = a2;
                i.imm = static_cast<std::int32_t>(id);
                emit(i);
            });
            break;
          }

          case Op::Ireturn: case Op::Freturn: case Op::Areturn: {
            const std::uint8_t v = useStack(d + cs - 1, kScratch1);
            mov_to(base, v);
            break;
          }
          case Op::ReturnVoid:
            break;

          default:
            throw VmError("inliner reached non-whitelisted opcode");
        }
        pc += len;
    }
}

void
Translator::MethodTranslation::translateOne(std::uint32_t pc, int depth)
{
    const Op op = m_.opAt(pc);
    const int d = depth;
    auto &code = m_.code;

    auto simpleBin = [&](NOp nop) {
        const std::uint8_t b = useStack(d - 1, kScratch1);
        const std::uint8_t a = useStack(d - 2, kScratch0);
        defStack(d - 2, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = nop;
            i.rd = rd;
            i.rs1 = a;
            i.rs2 = b;
            emit(i);
        });
    };
    auto simpleUn = [&](NOp nop) {
        const std::uint8_t a = useStack(d - 1, kScratch0);
        defStack(d - 1, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = nop;
            i.rd = rd;
            i.rs1 = a;
            emit(i);
        });
    };
    auto nullChk = [&](std::uint8_t reg) {
        NativeInst i;
        i.op = NOp::NullChk;
        i.rs1 = reg;
        emit(i);
    };
    auto condBr = [&](NCond c) {
        const std::uint8_t a = useStack(d - 1, kScratch0);
        const std::uint32_t target =
            pc + static_cast<std::uint32_t>(readS16(code, pc + 1));
        emitBranchTo(NOp::Br, c, a, kNoReg, target);
    };
    auto condBr2 = [&](NCond c) {
        const std::uint8_t b = useStack(d - 1, kScratch1);
        const std::uint8_t a = useStack(d - 2, kScratch0);
        const std::uint32_t target =
            pc + static_cast<std::uint32_t>(readS16(code, pc + 1));
        emitBranchTo(NOp::Br, c, a, b, target);
    };
    auto elemAccess = [&](int arr_depth, int idx_depth,
                          std::uint32_t esz) {
        // Leaves the element address in kScratch2.
        const std::uint8_t idx = useStack(idx_depth, kScratch0);
        const std::uint8_t arr = useStack(arr_depth, kScratch1);
        nullChk(arr);
        NativeInst len;
        len.op = NOp::ArrLen;
        len.rd = kScratch2;
        len.rs1 = arr;
        emit(len);
        NativeInst bc;
        bc.op = NOp::BndChk;
        bc.rs1 = idx;
        bc.rs2 = kScratch2;
        emit(bc);
        if (log2Of(esz) != 0) {
            NativeInst sh;
            sh.op = NOp::ShlI;
            sh.rd = kScratch2;
            sh.rs1 = idx;
            sh.imm = log2Of(esz);
            emit(sh);
        } else {
            NativeInst mv;
            mv.op = NOp::Mov;
            mv.rd = kScratch2;
            mv.rs1 = idx;
            emit(mv);
        }
        NativeInst ap;
        ap.op = NOp::AddP;
        ap.rd = kScratch2;
        ap.rs1 = arr;
        ap.rs2 = kScratch2;
        emit(ap);
    };
    auto arrayLoad = [&](NOp ld_op, std::uint32_t esz) {
        elemAccess(d - 2, d - 1, esz);
        defStack(d - 2, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = ld_op;
            i.rd = rd;
            i.rs1 = kScratch2;
            i.imm = 12;
            emit(i);
        });
    };
    auto arrayStore = [&](NOp st_op, std::uint32_t esz) {
        elemAccess(d - 3, d - 2, esz);
        const std::uint8_t val = useStack(d - 1, kScratch0);
        NativeInst i;
        i.op = st_op;
        i.rs1 = kScratch2;
        i.rs2 = val;
        i.imm = 12;
        emit(i);
    };
    auto setupArgs = [&](std::uint8_t nargs) {
        if (nargs > kNumArgRegs)
            throw TranslationAbort{};  // caller stays interpreted
        for (std::uint8_t i = 0; i < nargs; ++i) {
            const std::uint8_t src =
                useStack(d - nargs + i, kScratch0);
            NativeInst mv;
            mv.op = NOp::Mov;
            mv.rd = static_cast<std::uint8_t>(kArgRegBase + i);
            mv.rs1 = src;
            emit(mv);
        }
    };
    auto callResult = [&](std::uint8_t nargs, VType ret) {
        if (ret == VType::Void)
            return;
        defStack(d - nargs, [&](std::uint8_t rd) {
            NativeInst mv;
            mv.op = NOp::Mov;
            mv.rd = rd;
            mv.rs1 = kArgRegBase;
            emit(mv);
        });
    };

    switch (op) {
      case Op::Nop:
        break;
      case Op::Iconst8:
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::MovI;
            i.rd = rd;
            i.imm = readS8(code, pc + 1);
            emit(i);
        });
        break;
      case Op::Iconst32:
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::MovI;
            i.rd = rd;
            i.imm = readS32(code, pc + 1);
            emit(i);
        });
        break;
      case Op::Fconst:
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::MovI;
            i.rd = rd;
            i.imm = readS32(code, pc + 1);
            i.aux = 1;  // raw float bits: do not sign-extend
            emit(i);
        });
        break;
      case Op::AconstNull:
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::MovI;
            i.rd = rd;
            i.imm = 0;
            emit(i);
        });
        break;
      case Op::LdcStr:
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::LdStr;
            i.rd = rd;
            i.imm = readU16(code, pc + 1);
            emit(i);
        });
        break;

      case Op::Iload:
      case Op::Fload:
      case Op::Aload: {
        const std::uint8_t slot = readU8(code, pc + 1);
        const std::uint8_t src = useLocal(slot, kScratch1);
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Mov;
            i.rd = rd;
            i.rs1 = src;
            emit(i);
        });
        break;
      }
      case Op::Istore:
      case Op::Fstore:
      case Op::Astore: {
        const std::uint8_t slot = readU8(code, pc + 1);
        const std::uint8_t src = useStack(d - 1, kScratch1);
        defLocal(slot, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Mov;
            i.rd = rd;
            i.rs1 = src;
            emit(i);
        });
        break;
      }
      case Op::Iinc: {
        const std::uint8_t slot = readU8(code, pc + 1);
        const std::int8_t delta = readS8(code, pc + 2);
        const std::uint8_t src = useLocal(slot, kScratch1);
        defLocal(slot, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::AddI;
            i.rd = rd;
            i.rs1 = src;
            i.imm = delta;
            emit(i);
        });
        break;
      }

      case Op::Pop:
        break;  // dead in register form
      case Op::Dup: {
        const std::uint8_t src = useStack(d - 1, kScratch1);
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Mov;
            i.rd = rd;
            i.rs1 = src;
            emit(i);
        });
        break;
      }
      case Op::DupX1: {
        // ... a b  ->  ... b a b
        const std::uint8_t b = useStack(d - 1, kScratch0);
        const std::uint8_t a = useStack(d - 2, kScratch1);
        NativeInst mv;
        mv.op = NOp::Mov;
        mv.rd = kScratch2;
        mv.rs1 = b;
        emit(mv);
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Mov;
            i.rd = rd;
            i.rs1 = kScratch2;
            emit(i);
        });
        defStack(d - 1, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Mov;
            i.rd = rd;
            i.rs1 = a;
            emit(i);
        });
        defStack(d - 2, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Mov;
            i.rd = rd;
            i.rs1 = kScratch2;
            emit(i);
        });
        break;
      }
      case Op::Swap: {
        const std::uint8_t b = useStack(d - 1, kScratch0);
        const std::uint8_t a = useStack(d - 2, kScratch1);
        NativeInst mv;
        mv.op = NOp::Mov;
        mv.rd = kScratch2;
        mv.rs1 = b;
        emit(mv);
        defStack(d - 1, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Mov;
            i.rd = rd;
            i.rs1 = a;
            emit(i);
        });
        defStack(d - 2, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Mov;
            i.rd = rd;
            i.rs1 = kScratch2;
            emit(i);
        });
        break;
      }

      case Op::Iadd:  simpleBin(NOp::Add); break;
      case Op::Isub:  simpleBin(NOp::Sub); break;
      case Op::Imul:  simpleBin(NOp::Mul); break;
      case Op::Idiv:  simpleBin(NOp::Div); break;
      case Op::Irem:  simpleBin(NOp::Rem); break;
      case Op::Ineg:  simpleUn(NOp::Neg); break;
      case Op::Ishl:  simpleBin(NOp::Shl); break;
      case Op::Ishr:  simpleBin(NOp::Shr); break;
      case Op::Iushr: simpleBin(NOp::Ushr); break;
      case Op::Iand:  simpleBin(NOp::And); break;
      case Op::Ior:   simpleBin(NOp::Or); break;
      case Op::Ixor:  simpleBin(NOp::Xor); break;
      case Op::Fadd:  simpleBin(NOp::FAdd); break;
      case Op::Fsub:  simpleBin(NOp::FSub); break;
      case Op::Fmul:  simpleBin(NOp::FMul); break;
      case Op::Fdiv:  simpleBin(NOp::FDiv); break;
      case Op::Fneg:  simpleUn(NOp::FNeg); break;
      case Op::Fcmpl: simpleBin(NOp::FCmp); break;
      case Op::I2f:   simpleUn(NOp::I2F); break;
      case Op::F2i:   simpleUn(NOp::F2I); break;
      case Op::I2c:   simpleUn(NOp::I2C); break;
      case Op::I2b:   simpleUn(NOp::I2B); break;

      case Op::Goto: {
        NativeInst i;
        i.op = NOp::Jmp;
        pending_.push_back(
            {emit(i),
             pc + static_cast<std::uint32_t>(readS16(code, pc + 1))});
        break;
      }
      case Op::Ifeq:      condBr(NCond::Eq); break;
      case Op::Ifne:      condBr(NCond::Ne); break;
      case Op::Iflt:      condBr(NCond::Lt); break;
      case Op::Ifge:      condBr(NCond::Ge); break;
      case Op::Ifgt:      condBr(NCond::Gt); break;
      case Op::Ifle:      condBr(NCond::Le); break;
      case Op::Ifnull:    condBr(NCond::Eq); break;
      case Op::Ifnonnull: condBr(NCond::Ne); break;
      case Op::IfIcmpeq:  condBr2(NCond::Eq); break;
      case Op::IfIcmpne:  condBr2(NCond::Ne); break;
      case Op::IfIcmplt:  condBr2(NCond::Lt); break;
      case Op::IfIcmpge:  condBr2(NCond::Ge); break;
      case Op::IfIcmpgt:  condBr2(NCond::Gt); break;
      case Op::IfIcmple:  condBr2(NCond::Le); break;
      case Op::IfAcmpeq:  condBr2(NCond::Eq); break;
      case Op::IfAcmpne:  condBr2(NCond::Ne); break;

      case Op::TableSwitch: {
        const std::uint8_t key = useStack(d - 1, kScratch0);
        const std::int32_t low = readS32(code, pc + 3);
        const std::uint16_t count = readU16(code, pc + 7);
        const std::uint32_t deflt =
            pc + static_cast<std::uint32_t>(readS16(code, pc + 1));
        NativeInst bias;
        bias.op = NOp::AddI;
        bias.rd = kScratch2;
        bias.rs1 = key;
        bias.imm = -low;
        emit(bias);
        emitBranchTo(NOp::Br, NCond::Lt, kScratch2, kNoReg, deflt);
        NativeInst cnt;
        cnt.op = NOp::MovI;
        cnt.rd = kScratch1;
        cnt.imm = count;
        emit(cnt);
        emitBranchTo(NOp::Br, NCond::Ge, kScratch2, kScratch1, deflt);
        std::vector<std::uint32_t> table(count);
        for (std::uint16_t i = 0; i < count; ++i) {
            table[i] = pc + static_cast<std::uint32_t>(
                                readS16(code, pc + 9 + 2u * i));
        }
        nm_->jumpTables.push_back(std::move(table));
        pendingTables_.emplace_back(
            static_cast<std::uint32_t>(nm_->jumpTables.size() - 1), pc);
        NativeInst jt;
        jt.op = NOp::JmpTbl;
        jt.rs1 = kScratch2;
        jt.imm = static_cast<std::int32_t>(nm_->jumpTables.size() - 1);
        emit(jt);
        break;
      }
      case Op::LookupSwitch: {
        const std::uint8_t key = useStack(d - 1, kScratch0);
        const std::uint16_t npairs = readU16(code, pc + 3);
        for (std::uint16_t i = 0; i < npairs; ++i) {
            NativeInst kv;
            kv.op = NOp::MovI;
            kv.rd = kScratch1;
            kv.imm = readS32(code, pc + 5 + 6u * i);
            emit(kv);
            emitBranchTo(NOp::Br, NCond::Eq, key, kScratch1,
                         pc + static_cast<std::uint32_t>(readS16(
                                  code, pc + 5 + 6u * i + 4)));
        }
        NativeInst j;
        j.op = NOp::Jmp;
        pending_.push_back(
            {emit(j),
             pc + static_cast<std::uint32_t>(readS16(code, pc + 1))});
        break;
      }

      case Op::InvokeStatic:
      case Op::InvokeSpecial: {
        const MethodId target = readU16(code, pc + 1);
        const Method &callee = prog_.methods[target];
        if (inlining_ && inlineEligible(callee, d)) {
            inlineBody(callee, d, op == Op::InvokeSpecial);
            ++art_.callsInlined;
            break;
        }
        setupArgs(callee.numArgs);
        if (op == Op::InvokeSpecial)
            nullChk(kArgRegBase);
        NativeInst call;
        call.op = op == Op::InvokeStatic ? NOp::CallStatic
                                         : NOp::CallSpecial;
        call.imm = target;
        call.aux = callee.numArgs;
        emit(call);
        callResult(callee.numArgs, callee.returnType);
        break;
      }
      case Op::InvokeVirtual: {
        const std::uint16_t slot = readU16(code, pc + 1);
        // Representative callee for signature info.
        const Method *rep = nullptr;
        for (const auto &c : prog_.classes) {
            if (slot < c.vtable.size() && c.vtable[slot] != kNoMethod) {
                rep = &prog_.methods[c.vtable[slot]];
                break;
            }
        }
        if (rep == nullptr)
            throw VmError("translator: unresolvable vtable slot");
        if (inlining_) {
            // The paper's proposed optimization: replace the indirect
            // branch with the invoked method's code when the target is
            // unambiguous.
            const Method *mono = monomorphicTarget(slot);
            if (mono != nullptr) {
                ++art_.callsDevirtualized;
                if (inlineEligible(*mono, d)) {
                    inlineBody(*mono, d, /*needs_null_check=*/true);
                    ++art_.callsInlined;
                    break;
                }
                // Not inlinable, but still a direct call.
                setupArgs(mono->numArgs);
                nullChk(kArgRegBase);
                NativeInst call;
                call.op = NOp::CallSpecial;
                call.imm = mono->id;
                call.aux = mono->numArgs;
                emit(call);
                callResult(mono->numArgs, mono->returnType);
                break;
            }
        }
        setupArgs(rep->numArgs);
        nullChk(kArgRegBase);
        NativeInst call;
        call.op = NOp::CallVirtual;
        call.imm = slot;
        call.aux = rep->numArgs;
        emit(call);
        callResult(rep->numArgs, rep->returnType);
        break;
      }
      case Op::ReturnVoid: {
        NativeInst r;
        r.op = NOp::Ret;
        r.rs1 = kNoReg;
        emit(r);
        break;
      }
      case Op::Ireturn:
      case Op::Freturn:
      case Op::Areturn: {
        const std::uint8_t v = useStack(d - 1, kScratch0);
        NativeInst mv;
        mv.op = NOp::Mov;
        mv.rd = kArgRegBase;
        mv.rs1 = v;
        emit(mv);
        NativeInst r;
        r.op = NOp::Ret;
        r.rs1 = kArgRegBase;
        emit(r);
        break;
      }

      case Op::GetFieldI:
      case Op::GetFieldF:
      case Op::GetFieldA: {
        const std::uint16_t slot = readU16(code, pc + 1);
        const std::uint8_t obj = useStack(d - 1, kScratch1);
        nullChk(obj);
        defStack(d - 1, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = op == Op::GetFieldA ? NOp::LdRef : NOp::Ld;
            i.rd = rd;
            i.rs1 = obj;
            i.imm = 8 + 4 * slot;
            emit(i);
        });
        break;
      }
      case Op::PutFieldI:
      case Op::PutFieldF:
      case Op::PutFieldA: {
        const std::uint16_t slot = readU16(code, pc + 1);
        const std::uint8_t val = useStack(d - 1, kScratch0);
        const std::uint8_t obj = useStack(d - 2, kScratch1);
        nullChk(obj);
        NativeInst i;
        i.op = op == Op::PutFieldA ? NOp::StRef : NOp::St;
        i.rs1 = obj;
        i.rs2 = val;
        i.imm = 8 + 4 * slot;
        emit(i);
        break;
      }
      case Op::GetStaticI:
      case Op::GetStaticF:
      case Op::GetStaticA:
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::LdStatic;
            i.rd = rd;
            i.imm = readU16(code, pc + 1);
            i.aux = op == Op::GetStaticA ? 1 : 0;
            emit(i);
        });
        break;
      case Op::PutStaticI:
      case Op::PutStaticF:
      case Op::PutStaticA: {
        const std::uint8_t val = useStack(d - 1, kScratch0);
        NativeInst i;
        i.op = NOp::StStatic;
        i.rs1 = val;
        i.imm = readU16(code, pc + 1);
        i.aux = op == Op::PutStaticA ? 1 : 0;
        emit(i);
        break;
      }

      case Op::New:
        defStack(d, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::New;
            i.rd = rd;
            i.imm = readU16(code, pc + 1);
            emit(i);
        });
        break;
      case Op::NewArray: {
        const std::uint8_t len_reg = useStack(d - 1, kScratch1);
        defStack(d - 1, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::NewArr;
            i.rd = rd;
            i.rs1 = len_reg;
            i.aux = readU8(code, pc + 1);
            emit(i);
        });
        break;
      }
      case Op::ArrayLength: {
        const std::uint8_t arr = useStack(d - 1, kScratch1);
        nullChk(arr);
        defStack(d - 1, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::ArrLen;
            i.rd = rd;
            i.rs1 = arr;
            emit(i);
        });
        break;
      }
      case Op::IAload: arrayLoad(NOp::Ld, 4); break;
      case Op::FAload: arrayLoad(NOp::Ld, 4); break;
      case Op::AAload: arrayLoad(NOp::LdRef, 4); break;
      case Op::CAload: arrayLoad(NOp::LdU16, 2); break;
      case Op::BAload: arrayLoad(NOp::LdS8, 1); break;
      case Op::IAstore: arrayStore(NOp::St, 4); break;
      case Op::FAstore: arrayStore(NOp::St, 4); break;
      case Op::AAstore: arrayStore(NOp::StRef, 4); break;
      case Op::CAstore: arrayStore(NOp::St16, 2); break;
      case Op::BAstore: arrayStore(NOp::St8, 1); break;

      case Op::MonitorEnter: {
        const std::uint8_t obj = useStack(d - 1, kScratch0);
        nullChk(obj);
        NativeInst i;
        i.op = NOp::MonEnter;
        i.rs1 = obj;
        emit(i);
        break;
      }
      case Op::MonitorExit: {
        const std::uint8_t obj = useStack(d - 1, kScratch0);
        nullChk(obj);
        NativeInst i;
        i.op = NOp::MonExit;
        i.rs1 = obj;
        emit(i);
        break;
      }
      case Op::Athrow: {
        const std::uint8_t ex = useStack(d - 1, kScratch0);
        NativeInst i;
        i.op = NOp::Throw;
        i.rs1 = ex;
        emit(i);
        break;
      }

      case Op::Intrinsic: {
        const IntrinsicId iid =
            static_cast<IntrinsicId>(readU8(code, pc + 1));
        if (iid == IntrinsicId::ArrayCopy) {
            setupArgs(5);
            NativeInst i;
            i.op = NOp::ArrCopy;
            emit(i);
            break;
        }
        const std::uint8_t a = useStack(d - 1, kScratch1);
        const bool has_result = iid == IntrinsicId::FSqrt
            || iid == IntrinsicId::FSin || iid == IntrinsicId::FCos;
        if (has_result) {
            defStack(d - 1, [&](std::uint8_t rd) {
                NativeInst i;
                i.op = NOp::Intrin;
                i.rd = rd;
                i.rs1 = a;
                i.imm = static_cast<std::int32_t>(iid);
                emit(i);
            });
        } else {
            NativeInst i;
            i.op = NOp::Intrin;
            i.rd = kNoReg;
            i.rs1 = a;
            i.imm = static_cast<std::int32_t>(iid);
            emit(i);
        }
        break;
      }
      case Op::SpawnThread: {
        const std::uint8_t a = useStack(d - 1, kScratch1);
        const MethodId target = readU16(code, pc + 1);
        defStack(d - 1, [&](std::uint8_t rd) {
            NativeInst i;
            i.op = NOp::Spawn;
            i.rd = rd;
            i.rs1 = a;
            i.imm = target;
            emit(i);
        });
        break;
      }
      case Op::JoinThread: {
        const std::uint8_t a = useStack(d - 1, kScratch1);
        NativeInst i;
        i.op = NOp::Join;
        i.rs1 = a;
        emit(i);
        break;
      }

      case Op::OpCount_:
        throw VmError("invalid opcode reached translator");
    }
}

void
Translator::MethodTranslation::run()
{
    // The replay script needs the depths even for a partial (aborted)
    // translation, so publish them before any bytecode is consumed.
    art_.depths = depths_;

    prologue();

    std::uint32_t pc = 0;
    while (pc < m_.code.size()) {
        const std::uint32_t len = instrLength(m_.code, pc);
        if (depths_[pc] >= 0) {
            bc2n_[pc] = static_cast<std::int32_t>(nm_->code.size());
            // The compiler's dispatch/analysis work for this pc
            // happens (and is replayed) whether or not translateOne
            // aborts on it, so record the pc first.
            art_.workPcs.push_back(pc);
            translateOne(pc, depths_[pc]);
            ++art_.bytecodes;
        }
        pc += len;
    }
    // A method falling off the end is malformed; the verifier rejects
    // it, but keep the executor safe with a trailing return.
    NativeInst guard;
    guard.op = NOp::Ret;
    guard.rs1 = kNoReg;
    emit(guard);

    patchBranches();
    mapHandlers();
    art_.workingBytes = m_.code.size() + depths_.size() * 4
        + nm_->code.size() * 8 + pending_.size() * 8;
    art_.patchedIdx.reserve(pending_.size());
    for (const Pending &p : pending_)
        art_.patchedIdx.push_back(p.instIdx);
    art_.bc2n = std::move(bc2n_);
    art_.numSpills = nm_->numSpills;
    art_.code = std::move(nm_->code);
    art_.handlers = std::move(nm_->handlers);
    art_.jumpTables = std::move(nm_->jumpTables);
}

std::shared_ptr<const TranslationArtifact>
Translator::buildArtifact(const Method &m) const
{
    auto art = std::make_shared<TranslationArtifact>();
    const auto t0 = std::chrono::steady_clock::now();
    if (m.numArgs > kNumArgRegs) {
        art->rejected = true; // bails before any trace event
        return art;
    }
    MethodTranslation mt(registry_.program(), m, inlining_, *art);
    try {
        mt.run();
    } catch (const TranslationAbort &) {
        // Partial replay script (up to and including the aborting pc)
        // stays in the artifact; nothing will be installed.
        art->aborted = true;
    }
    art->buildNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return art;
}

TranslationKey
Translator::keyFor(MethodId id) const
{
    TranslationKey k;
    k.program = sharedProgram_;
    k.method = id;
    k.inlining = inlining_;
    k.barriers = sharedBarriers_;
    return k;
}

void
Translator::releaseShared(MethodId id)
{
    auto it = pinned_.find(id);
    if (it == pinned_.end())
        return;
    if (shared_ != nullptr)
        shared_->release(it->second);
    pinned_.erase(it);
}

void
Translator::releaseAll()
{
    if (shared_ != nullptr) {
        for (const auto &[id, key] : pinned_)
            shared_->release(key);
    }
    pinned_.clear();
}

const NativeMethod *
Translator::translate(MethodId id)
{
    lastTranslateDeferred_ = false;
    const Method &m = registry_.method(id);
    obs::ScopedSpan span("jit.translate", "jit");
    if (span.active())
        span.arg("method", m.name);
    if (m.numArgs > kNumArgRegs) {
        obs::count("jit.uncompilable");
        span.arg("result", "uncompilable");
        return nullptr;  // stays interpreted
    }

    // Build (or fetch) the address-independent artifact.
    std::shared_ptr<const TranslationArtifact> art;
    bool sharedHit = false;
    bool holdsRef = false;
    TranslationKey key;
    if (shared_ != nullptr) {
        key = keyFor(id);
        art = shared_->acquire(
            key, [&] { return buildArtifact(m); }, &sharedHit);
        if (art == nullptr) {
            // Fallback mode: another worker is mid-build. Interpret
            // for now; the engine must not blacklist the method.
            lastTranslateDeferred_ = true;
            span.arg("result", "deferred");
            return nullptr;
        }
        holdsRef = true;
        if (sharedHit) {
            ++sharedHits_;
            buildNsSaved_ += art->buildNs;
        } else {
            ++sharedMisses_;
            buildNs_ += art->buildNs;
        }
    } else {
        art = buildArtifact(m);
        buildNs_ += art->buildNs;
    }
    // A reference is only worth holding while the method is live in
    // this engine's code cache; every bail-out path below drops it.
    auto dropRef = [&] {
        if (holdsRef) {
            shared_->release(key);
            holdsRef = false;
        }
    };
    if (art->rejected) {
        dropRef();
        obs::count("jit.uncompilable");
        span.arg("result", "uncompilable");
        return nullptr;
    }

    // Re-emit this engine's Translate-phase trace from the replay
    // script: identical event sequence whether the artifact was built
    // here or attached from the shared cache.
    emitTranslateSetup(emitter_);
    for (const std::uint32_t pc : art->workPcs)
        emitBytecodeWork(emitter_, m, pc, art->depths[pc]);
    bytecodes_ += art->bytecodes;
    callsInlined_ += art->callsInlined;
    callsDevirtualized_ += art->callsDevirtualized;

    if (art->aborted) {
        dropRef();
        obs::count("jit.uncompilable");
        span.arg("result", "uncompilable");
        return nullptr;  // e.g. calls a callee with too many args
    }
    peakWorking_ = std::max(peakWorking_, art->workingBytes);

    // Install this engine's clone (assigning the code-cache address),
    // then emit the install-store trace against the final addresses.
    // A bounded cache may refuse a method larger than its whole
    // capacity; the engine then keeps interpreting it.
    auto nm = std::make_unique<NativeMethod>();
    nm->id = m.id;
    nm->src = &m;
    nm->numSpills = art->numSpills;
    nm->code = art->code;
    nm->handlers = art->handlers;
    nm->jumpTables = art->jumpTables;
    nm->bc2n = art->bc2n;
    const NativeMethod *installed = cache_.install(std::move(nm));
    if (installed == nullptr) {
        dropRef();
        obs::count("jit.uncompilable");
        span.arg("result", "exceeds code cache capacity");
        return nullptr;
    }
    if (holdsRef && !pinned_.emplace(id, key).second) {
        // Already pinned (defensive: should be unreachable because a
        // live method cannot be reinstalled) — drop the duplicate.
        shared_->release(key);
    }
    emitInstallTrace(emitter_, *installed, art->patchedIdx);
    ++methods_;
    if (obs::enabled()) {
        obs::MetricRegistry &reg = obs::metrics();
        reg.counter("jit.compilations").add(1);
        reg.counter("jit.calls_inlined").add(art->callsInlined);
        reg.counter("jit.calls_devirtualized")
            .add(art->callsDevirtualized);
        reg.histogram("jit.bytecode_bytes")
            .record(static_cast<double>(m.code.size()));
        reg.histogram("jit.native_insts")
            .record(static_cast<double>(installed->code.size()));
        if (sharedHit)
            reg.counter("jit.shared_artifact_hits").add(1);
        span.arg("bytecode_bytes", std::to_string(m.code.size()));
        span.arg("native_insts",
                 std::to_string(installed->code.size()));
        span.arg("inlined", std::to_string(art->callsInlined));
    }
    return installed;
}

} // namespace jrs
