/**
 * @file
 * The register-based native code produced by the JIT translator.
 *
 * A SPARC-flavoured 32-register RISC. Register convention:
 *
 *   r1..r7    operand-stack temporaries (stack position p -> r(1+p));
 *             deeper positions live in spill slots
 *   r8..r15   argument / return registers (result in r8)
 *   r16..r27  local-variable registers (local i -> r(16+i), i < 12);
 *             higher locals live in spill slots
 *   r28,r29   scratch (address arithmetic)
 *   r30       frame pointer, r31 link register (implicit)
 *
 * Each activation gets a fresh register file (SPARC register windows),
 * so no inter-procedural allocation is needed. One NativeInst usually
 * maps to one TraceEvent; the few macro-ops (virtual calls, runtime
 * calls) expand into the short event sequences real code would execute.
 */
#ifndef JRS_VM_JIT_NATIVE_INST_H
#define JRS_VM_JIT_NATIVE_INST_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/address_map.h"
#include "vm/bytecode/class_def.h"

namespace jrs {

/** First operand-stack temp register. */
inline constexpr std::uint8_t kStackRegBase = 1;
/** Number of operand-stack temp registers. */
inline constexpr std::uint8_t kNumStackRegs = 7;
/** First argument register. */
inline constexpr std::uint8_t kArgRegBase = 8;
/** Number of argument registers (args beyond go through spills). */
inline constexpr std::uint8_t kNumArgRegs = 8;
/** First local-variable register. */
inline constexpr std::uint8_t kLocalRegBase = 16;
/** Number of local-variable registers. */
inline constexpr std::uint8_t kNumLocalRegs = 12;
/** Scratch registers. */
inline constexpr std::uint8_t kScratch0 = 28;
inline constexpr std::uint8_t kScratch1 = 29;

/** Native opcodes. */
enum class NOp : std::uint8_t {
    MovI,     ///< rd = imm32 (sign-extended)
    Mov,      ///< rd = rs1
    Add, Sub, Mul, Div, Rem,      ///< rd = rs1 op rs2 (int32, Div/Rem trap on 0)
    And, Or, Xor, Shl, Shr, Ushr, ///< rd = rs1 op rs2
    Neg,      ///< rd = -rs1
    AddI,     ///< rd = rs1 + imm (address math, iinc)
    ShlI,     ///< rd = rs1 << imm (element indexing)
    AddP,     ///< rd = rs1 + rs2 as 64-bit pointer arithmetic
    FAdd, FSub, FMul, FDiv,       ///< float: rd = rs1 op rs2
    FNeg,     ///< rd = -rs1
    FCmp,     ///< rd = -1/0/1 comparing rs1, rs2 (NaN -> -1)
    FSqrt, FSin, FCos,            ///< rd = f(rs1)
    I2F, F2I, I2C, I2B,           ///< conversions rd = cvt(rs1)
    Ld,       ///< rd = *(u32 *)(rs1 + imm)
    LdU16,    ///< rd = *(u16 *)(rs1 + imm)
    LdS8,     ///< rd = *(s8 *)(rs1 + imm)
    St,       ///< *(u32 *)(rs1 + imm) = rs2
    St16,     ///< *(u16 *)(rs1 + imm) = rs2
    St8,      ///< *(u8  *)(rs1 + imm) = rs2
    LdRef,    ///< rd = heap ref decoded from *(u32 *)(rs1 + imm)
    StRef,    ///< *(u32 *)(rs1 + imm) = heap-offset encoding of rs2
    LdSpill,  ///< rd = spill[imm]
    StSpill,  ///< spill[imm] = rs1
    LdStr,    ///< rd = string-literal ref (imm = literal index)
    LdStatic, ///< rd = static slot imm (aux=1 decodes a ref)
    StStatic, ///< static slot imm = rs1 (aux=1 encodes a ref)
    Br,       ///< if cond(aux)(rs1, rs2) goto native index imm
              ///< (rs2 == kNoReg compares against zero)
    Jmp,      ///< goto native index imm
    JmpTbl,   ///< indirect jump via jumpTables[imm], index in rs1
    BndChk,   ///< branch-shaped: if rs1 (u32) >= rs2 throw AIOOBE
    NullChk,  ///< branch-shaped: if rs1 == 0 throw NPE
    CallStatic,   ///< imm = MethodId, args in r8..; result to r8
    CallSpecial,  ///< imm = MethodId (direct instance call)
    CallVirtual,  ///< imm = vtable slot; receiver in r8
    Ret,          ///< return (rs1 = result reg or kNoReg)
    New,          ///< rd = allocate class imm (runtime call)
    NewArr,       ///< rd = allocate array kind aux, length rs1
    ArrLen,       ///< rd = length of array rs1 (a load)
    MonEnter,     ///< runtime call, object in rs1
    MonExit,      ///< runtime call, object in rs1
    Throw,        ///< throw exception ref rs1
    Intrin,       ///< imm = IntrinsicId; 1-arg in rs1, result rd
    ArrCopy,      ///< args in r8..r12 (src, spos, dst, dpos, len)
    Spawn,        ///< rd = new tid; imm = method id; arg in rs1
    Join,         ///< block until thread rs1 completes
};

/** Branch conditions for NOp::Br (int32 comparison of rs1, rs2). */
enum class NCond : std::uint8_t { Eq, Ne, Lt, Ge, Gt, Le };

/** One native instruction (fixed 4 simulated bytes). */
struct NativeInst {
    NOp op = NOp::MovI;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint8_t aux = 0;   ///< NCond for Br, ArrayKind for NewArr, ...
    std::int32_t imm = 0;
};

/** Exception-table entry in native-index space. */
struct NativeHandler {
    std::uint32_t startIdx;
    std::uint32_t endIdx;
    std::uint32_t handlerIdx;
    ClassId catchType;
};

/** A translated method installed in the code cache. */
struct NativeMethod {
    MethodId id = 0;
    const Method *src = nullptr;
    std::vector<NativeInst> code;
    std::vector<NativeHandler> handlers;
    /** Switch jump tables (native target indices) for NOp::JmpTbl. */
    std::vector<std::vector<std::uint32_t>> jumpTables;
    /**
     * Bytecode pc -> native instruction index (-1 where no code was
     * emitted). Retained to support on-stack replacement: an
     * interpreter frame paused at bytecode pc resumes at bc2n[pc].
     */
    std::vector<std::int32_t> bc2n;
    SimAddr codeBase = 0;     ///< address of code[0] in seg::kCodeCache
    std::uint16_t numSpills = 0;  ///< spill slots in the frame

    /** Simulated pc of instruction @p idx. */
    SimAddr pcOf(std::uint32_t idx) const { return codeBase + 4ull * idx; }

    /** Simulated code size in bytes. */
    std::size_t codeBytes() const { return code.size() * 4; }
};

/** Mnemonic of a native opcode (diagnostics). */
const char *nopName(NOp op);

/** Render one native instruction (diagnostics/tests). */
std::string renderNativeInst(const NativeInst &inst);

} // namespace jrs

#endif // JRS_VM_JIT_NATIVE_INST_H
