#include "vm/jit/code_cache.h"

#include "vm/runtime/vm_error.h"

namespace jrs {

const NativeMethod *
CodeCache::install(std::unique_ptr<NativeMethod> nm)
{
    if (methods_.count(nm->id) != 0)
        throw VmError("method compiled twice: " + nm->src->name);
    nm->codeBase = seg::kCodeCache + cursor_;
    cursor_ += (nm->codeBytes() + 63) & ~std::size_t{63};
    const MethodId id = nm->id;
    auto [it, ok] = methods_.emplace(id, std::move(nm));
    (void)ok;
    return it->second.get();
}

const NativeMethod *
CodeCache::lookup(MethodId id) const
{
    auto it = methods_.find(id);
    return it == methods_.end() ? nullptr : it->second.get();
}

} // namespace jrs
