#include "vm/jit/code_cache.h"

#include <algorithm>
#include <string>

#include "vm/runtime/vm_error.h"

namespace jrs {

const char *
evictionPolicyName(EvictionPolicy p)
{
    switch (p) {
    case EvictionPolicy::kFifo: return "fifo";
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kCost: return "cost";
    case EvictionPolicy::kCostPerByte: return "costpb";
    }
    return "?";
}

bool
parseEvictionPolicy(const std::string &name, EvictionPolicy *out)
{
    if (name == "fifo")
        *out = EvictionPolicy::kFifo;
    else if (name == "lru")
        *out = EvictionPolicy::kLru;
    else if (name == "cost")
        *out = EvictionPolicy::kCost;
    else if (name == "costpb")
        *out = EvictionPolicy::kCostPerByte;
    else
        return false;
    return true;
}

const char *
allocStrategyName(AllocStrategy s)
{
    switch (s) {
    case AllocStrategy::kFirstFit: return "first";
    case AllocStrategy::kBestFit: return "best";
    }
    return "?";
}

bool
parseAllocStrategy(const std::string &name, AllocStrategy *out)
{
    if (name == "first" || name == "firstfit" || name == "first-fit")
        *out = AllocStrategy::kFirstFit;
    else if (name == "best" || name == "bestfit" || name == "best-fit")
        *out = AllocStrategy::kBestFit;
    else
        return false;
    return true;
}

std::size_t
ExtentAllocator::allocate(std::size_t bytes)
{
    // Free extents sit below the cursor, so scanning them first keeps
    // fit-by-address exact for both strategies.
    auto chosen = free_.end();
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        if (it->second < bytes)
            continue;
        if (strategy_ == AllocStrategy::kFirstFit) {
            chosen = it;
            break;
        }
        // Best-fit: smallest fitting extent; the in-order scan makes
        // the lowest address win ties.
        if (chosen == free_.end() || it->second < chosen->second)
            chosen = it;
        if (chosen->second == bytes)
            break;
    }
    if (chosen != free_.end()) {
        const std::size_t off = chosen->first;
        const std::size_t remain = chosen->second - bytes;
        free_.erase(chosen);
        if (remain != 0)
            free_.emplace(off + bytes, remain);
        return off;
    }
    if (cursor_ + bytes <= limit_) {
        const std::size_t off = cursor_;
        cursor_ += bytes;
        return off;
    }
    return kNone;
}

void
ExtentAllocator::release(std::size_t off, std::size_t bytes)
{
    auto [it, ok] = free_.emplace(off, bytes);
    (void)ok;
    // Coalesce with the predecessor…
    if (it != free_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_.erase(it);
            it = prev;
        }
    }
    // …and the successor.
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
        it->second += next->second;
        free_.erase(next);
    }
    // Retreat the bump cursor over any top extent (cascades so a fully
    // drained allocator returns to cursor 0 and eviction loops
    // terminate).
    while (!free_.empty()) {
        auto top = std::prev(free_.end());
        if (top->first + top->second != cursor_)
            break;
        cursor_ = top->first;
        free_.erase(top);
    }
}

std::size_t
ExtentAllocator::freeBytes() const
{
    std::size_t total = 0;
    for (const auto &[off, sz] : free_)
        total += sz;
    return total;
}

double
ExtentAllocator::fragmentation() const
{
    const std::size_t bytes = freeBytes();
    if (bytes == 0)
        return 0.0;
    return static_cast<double>(free_.size()) /
           (static_cast<double>(bytes) / 1024.0);
}

CodeCache::CodeCache(const CodeCacheConfig &cfg)
    : cfg_(cfg), alloc_(usableLimit(), cfg.strategy)
{
}

std::size_t
CodeCache::usableLimit() const
{
    if (!bounded())
        return cfg_.segmentLimit;
    return std::min(cfg_.capacityBytes, cfg_.segmentLimit);
}

MethodId
CodeCache::pickVictim() const
{
    // Deterministic regardless of hash-map iteration order: minimize
    // (criterion, installSeq).
    bool have = false;
    MethodId victim = 0;
    std::uint64_t bestKey = 0, bestSeq = 0;
    for (const auto &[id, e] : methods_) {
        std::uint64_t key = 0;
        switch (cfg_.policy) {
        case EvictionPolicy::kFifo: key = e.installSeq; break;
        case EvictionPolicy::kLru: key = e.lastUse; break;
        case EvictionPolicy::kCost:
            key = costFn_ ? costFn_(id) : 0;
            break;
        case EvictionPolicy::kCostPerByte:
            // Scaled integer cost density: cost per extent byte in
            // 1/4096ths, so small relative differences survive the
            // integer division (extents are 64-byte multiples).
            key = costFn_ ? costFn_(id) * 4096 /
                                std::max<std::size_t>(e.extentBytes, 1)
                          : 0;
            break;
        }
        if (!have || key < bestKey ||
            (key == bestKey && e.installSeq < bestSeq)) {
            have = true;
            victim = id;
            bestKey = key;
            bestSeq = e.installSeq;
        }
    }
    return victim;
}

bool
CodeCache::evictOne()
{
    if (methods_.empty())
        return false;
    return uninstall(pickVictim());
}

const NativeMethod *
CodeCache::install(std::unique_ptr<NativeMethod> nm)
{
    if (methods_.count(nm->id) != 0) {
        const std::string name =
            nm->src != nullptr ? nm->src->name
                               : ("#" + std::to_string(nm->id));
        throw VmError("method compiled twice without uninstall: " +
                      name);
    }
    const std::size_t extent =
        (nm->codeBytes() + 63) & ~std::size_t{63};
    std::size_t off = alloc_.allocate(extent);
    if (off == ExtentAllocator::kNone && bounded()) {
        while (off == ExtentAllocator::kNone && evictOne())
            off = alloc_.allocate(extent);
    }
    if (off == ExtentAllocator::kNone) {
        if (!bounded())
            throw VmError(
                "code cache overflows its segment: cursor " +
                std::to_string(alloc_.cursorBytes()) + " + " +
                std::to_string(extent) + " bytes exceeds limit " +
                std::to_string(usableLimit()));
        // Bounded, cache emptied, and the method alone still does not
        // fit: report failure so the engine keeps interpreting it.
        return nullptr;
    }
    nm->codeBase = seg::kCodeCache + off;
    const MethodId id = nm->id;
    Entry e;
    e.nm = std::move(nm);
    e.extentBytes = extent;
    e.installSeq = installSeq_++;
    e.lastUse = lookups_.load(std::memory_order_relaxed);
    liveBytes_ += extent;
    auto [it, ok] = methods_.emplace(id, std::move(e));
    (void)ok;
    return it->second.nm.get();
}

bool
CodeCache::uninstall(MethodId id)
{
    auto it = methods_.find(id);
    if (it == methods_.end())
        return false;
    Entry &e = it->second;
    if (hook_)
        hook_(*e.nm);
    ++evictions_;
    bytesEvicted_ += e.extentBytes;
    liveBytes_ -= e.extentBytes;
    alloc_.release(
        static_cast<std::size_t>(e.nm->codeBase - seg::kCodeCache),
        e.extentBytes);
    retired_.push_back(std::move(e.nm));
    methods_.erase(it);
    return true;
}

const NativeMethod *
CodeCache::lookup(MethodId id) const
{
    const std::uint64_t tick =
        lookups_.fetch_add(1, std::memory_order_relaxed) + 1;
    auto it = methods_.find(id);
    if (it == methods_.end()) {
        lookupMisses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    // Safe despite const: lookup() is only called from the VM thread;
    // concurrent observers read the atomic counters, never entries.
    const_cast<Entry &>(it->second).lastUse = tick;
    return it->second.nm.get();
}

std::vector<const NativeMethod *>
CodeCache::all() const
{
    std::vector<const NativeMethod *> out;
    out.reserve(methods_.size());
    for (const auto &[id, e] : methods_)
        out.push_back(e.nm.get());
    std::sort(out.begin(), out.end(),
              [](const NativeMethod *a, const NativeMethod *b) {
                  return a->codeBase < b->codeBase;
              });
    return out;
}

} // namespace jrs
