#include "vm/jit/code_cache.h"

#include <algorithm>

#include "vm/runtime/vm_error.h"

namespace jrs {

const NativeMethod *
CodeCache::install(std::unique_ptr<NativeMethod> nm)
{
    if (methods_.count(nm->id) != 0)
        throw VmError("method compiled twice: " + nm->src->name);
    nm->codeBase = seg::kCodeCache + cursor_;
    cursor_ += (nm->codeBytes() + 63) & ~std::size_t{63};
    const MethodId id = nm->id;
    auto [it, ok] = methods_.emplace(id, std::move(nm));
    (void)ok;
    return it->second.get();
}

const NativeMethod *
CodeCache::lookup(MethodId id) const
{
    ++lookups_;
    auto it = methods_.find(id);
    if (it == methods_.end()) {
        ++lookupMisses_;
        return nullptr;
    }
    return it->second.get();
}

std::vector<const NativeMethod *>
CodeCache::all() const
{
    std::vector<const NativeMethod *> out;
    out.reserve(methods_.size());
    for (const auto &[id, nm] : methods_)
        out.push_back(nm.get());
    std::sort(out.begin(), out.end(),
              [](const NativeMethod *a, const NativeMethod *b) {
                  return a->codeBase < b->codeBase;
              });
    return out;
}

} // namespace jrs
