/**
 * @file
 * The JIT code cache: owns translated methods and assigns them
 * simulated addresses inside seg::kCodeCache. Methods are installed
 * bump-fashion with 64-byte alignment, so consecutively compiled
 * methods are adjacent — the layout property whose cache behaviour the
 * paper discusses (Section 4.3).
 */
#ifndef JRS_VM_JIT_CODE_CACHE_H
#define JRS_VM_JIT_CODE_CACHE_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "vm/jit/native_inst.h"

namespace jrs {

/** Owner of all NativeMethods produced in a run. */
class CodeCache {
  public:
    CodeCache() = default;
    CodeCache(const CodeCache &) = delete;
    CodeCache &operator=(const CodeCache &) = delete;

    /**
     * Install @p nm: assigns its codeBase and takes ownership.
     * @return the installed method.
     */
    const NativeMethod *install(std::unique_ptr<NativeMethod> nm);

    /** Translated method for @p id, or nullptr. */
    const NativeMethod *lookup(MethodId id) const;

    /** Simulated bytes of generated code. */
    std::size_t codeBytes() const { return cursor_; }

    /** Number of methods compiled. */
    std::size_t numMethods() const { return methods_.size(); }

    /** Every installed method, in code-cache address order. */
    std::vector<const NativeMethod *> all() const;

    /** lookup() calls so far (dispatch-count observability). */
    std::uint64_t lookups() const { return lookups_; }

    /** lookup() calls that found no translation. */
    std::uint64_t lookupMisses() const { return lookupMisses_; }

  private:
    std::unordered_map<MethodId, std::unique_ptr<NativeMethod>> methods_;
    std::size_t cursor_ = 0;
    mutable std::uint64_t lookups_ = 0;
    mutable std::uint64_t lookupMisses_ = 0;
};

} // namespace jrs

#endif // JRS_VM_JIT_CODE_CACHE_H
