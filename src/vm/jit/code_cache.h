/**
 * @file
 * The JIT code cache: owns translated methods and assigns them
 * simulated addresses inside seg::kCodeCache. Methods are installed
 * with 64-byte alignment, so consecutively compiled methods are
 * adjacent — the layout property whose cache behaviour the paper
 * discusses (Section 4.3).
 *
 * The cache is *managed*: with a capacity configured it evicts
 * translations under a pluggable policy (FIFO, LRU-by-dispatch,
 * cheapest-to-retranslate, or cheapest-per-extent-byte) and reuses the
 * freed extents through a coalescing free list held by an
 * ExtentAllocator (first-fit or best-fit). The default capacity is
 * unlimited, in which case nothing is ever evicted and allocation
 * degenerates to the historical bump cursor — bit-identical layout and
 * accounting.
 *
 * Eviction never frees host memory for a NativeMethod: native frames
 * hold raw pointers across calls, so evicted methods are retired into
 * a side vector and only their *simulated* extent is recycled.
 */
#ifndef JRS_VM_JIT_CODE_CACHE_H
#define JRS_VM_JIT_CODE_CACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vm/jit/native_inst.h"

namespace jrs {

/** Victim-selection policy for a bounded code cache. */
enum class EvictionPolicy : std::uint8_t {
    kFifo,        ///< oldest installation first
    kLru,         ///< least recently dispatched (by lookup() tick) first
    kCost,        ///< cheapest to retranslate (per the cost callback) first
    kCostPerByte, ///< cheapest retranslate cost per extent byte first
};

/** Stable lowercase name ("fifo", "lru", "cost", "costpb"). */
const char *evictionPolicyName(EvictionPolicy p);

/** Parse an eviction-policy name. @return false on unknown name. */
bool parseEvictionPolicy(const std::string &name, EvictionPolicy *out);

/** Placement strategy for recycled extents. */
enum class AllocStrategy : std::uint8_t {
    kFirstFit, ///< lowest-address fitting extent (historical default)
    kBestFit,  ///< smallest fitting extent, lowest address on ties
};

/** Stable lowercase name ("first", "best"). */
const char *allocStrategyName(AllocStrategy s);

/** Parse an allocation-strategy name. @return false on unknown name. */
bool parseAllocStrategy(const std::string &name, AllocStrategy *out);

/** Configuration for a CodeCache. Defaults reproduce the unmanaged
 *  (unbounded, never-evicting) historical behaviour exactly. */
struct CodeCacheConfig {
    /** Capacity in simulated bytes; 0 = unlimited (no eviction). */
    std::size_t capacityBytes = 0;
    /** Victim selection when bounded. */
    EvictionPolicy policy = EvictionPolicy::kFifo;
    /** Free-extent placement strategy. */
    AllocStrategy strategy = AllocStrategy::kFirstFit;
    /**
     * Hard ceiling of the backing segment. Generated code must never
     * cross it (beyond lies seg::kRuntimeCode and phase attribution
     * breaks). Defaults to the real segment size; tests shrink it to
     * exercise overflow without gigabytes of simulated code.
     */
    std::size_t segmentLimit = seg::kSegmentSize;
};

/**
 * A coalescing extent allocator over one address range [0, limit).
 *
 * Extents are handed out either from the free list (first-fit or
 * best-fit) or from a bump cursor at the top of the used region.
 * Releases coalesce with both neighbours and retreat the cursor over
 * any freed top extent, so a fully drained allocator returns to
 * cursor 0. All offsets and sizes are caller-aligned (the code cache
 * uses multiples of 64); the allocator itself imposes no granularity.
 *
 * Shared by CodeCache (per-engine simulated placement) and
 * SharedCodeCache (process-wide artifact byte accounting).
 */
class ExtentAllocator {
  public:
    static constexpr std::size_t kNone = ~std::size_t{0};

    ExtentAllocator() = default;
    ExtentAllocator(std::size_t limit, AllocStrategy strategy)
        : limit_(limit), strategy_(strategy)
    {
    }

    /** Allocate @p bytes; @return offset, or kNone if nothing fits. */
    std::size_t allocate(std::size_t bytes);

    /** Return [off, off+bytes) to the free list, coalescing. */
    void release(std::size_t off, std::size_t bytes);

    /** Shrink/grow the ceiling (existing allocations unaffected). */
    void setLimit(std::size_t limit) { limit_ = limit; }

    std::size_t limit() const { return limit_; }
    AllocStrategy strategy() const { return strategy_; }

    /** High-water mark of the bump cursor. */
    std::size_t cursorBytes() const { return cursor_; }

    /** Total bytes sitting on the free list. */
    std::size_t freeBytes() const;

    /** Number of discrete free-list extents. */
    std::size_t freeExtents() const { return free_.size(); }

    /**
     * Fragmentation gauge: free extents per free KiB
     * (freeExtents / (freeBytes/1024)); 0 when nothing is free. A
     * perfectly coalesced free list scores low, a shattered one high.
     */
    double fragmentation() const;

  private:
    /** Free extents keyed by offset (so first-fit = lowest address). */
    std::map<std::size_t, std::size_t> free_;
    std::size_t cursor_ = 0;
    std::size_t limit_ = seg::kSegmentSize;
    AllocStrategy strategy_ = AllocStrategy::kFirstFit;
};

/** Owner of all NativeMethods produced in a run. */
class CodeCache {
  public:
    /** Retranslation-cost oracle for EvictionPolicy::kCost (the engine
     *  supplies observed per-method translation cost). */
    using CostFn = std::function<std::uint64_t(MethodId)>;
    /** Invoked just before a method's extent is recycled. */
    using EvictionHook = std::function<void(const NativeMethod &)>;

    CodeCache() : alloc_(cfg_.segmentLimit, cfg_.strategy) {}
    explicit CodeCache(const CodeCacheConfig &cfg);
    CodeCache(const CodeCache &) = delete;
    CodeCache &operator=(const CodeCache &) = delete;

    /**
     * Install @p nm: assigns its codeBase and takes ownership.
     *
     * Allocation comes from the free list under the configured
     * strategy (first-fit by default), falling back to the bump
     * cursor. When bounded and space is short, methods are evicted per
     * the configured policy until the new method fits. Installing a
     * method whose id is still live without an intervening uninstall()
     * throws VmError (a double-compile is an engine bug); reinstall
     * after eviction or uninstall is legal.
     *
     * @return the installed method, or nullptr when bounded and the
     *         method alone exceeds capacity (caller keeps
     *         interpreting it).
     * @throws VmError on double-install of a live method, or when
     *         unbounded growth would cross the segment limit.
     */
    const NativeMethod *install(std::unique_ptr<NativeMethod> nm);

    /**
     * Drop @p id's translation: its extent returns to the free list
     * (coalescing with neighbours; the bump cursor retreats when the
     * top extent frees) and the NativeMethod is retired, not
     * destroyed — live native frames may still reference it.
     * @return true if the method was live.
     */
    bool uninstall(MethodId id);

    /** Translated method for @p id, or nullptr. */
    const NativeMethod *lookup(MethodId id) const;

    /** Simulated bytes of live generated code (64-byte extents). */
    std::size_t codeBytes() const { return liveBytes_; }

    /** High-water mark of the bump cursor, in simulated bytes. */
    std::size_t cursorBytes() const { return alloc_.cursorBytes(); }

    /** Total bytes sitting on the free list. */
    std::size_t freeBytes() const { return alloc_.freeBytes(); }

    /** Number of discrete free-list extents (coalescing visibility). */
    std::size_t freeExtents() const { return alloc_.freeExtents(); }

    /** Free-list fragmentation gauge (see ExtentAllocator). */
    double fragmentation() const { return alloc_.fragmentation(); }

    /** Number of live (installed, not evicted) methods. */
    std::size_t numMethods() const { return methods_.size(); }

    /** Every live method, in code-cache address order. */
    std::vector<const NativeMethod *> all() const;

    /** lookup() calls so far (dispatch-count observability). */
    std::uint64_t lookups() const
    {
        return lookups_.load(std::memory_order_relaxed);
    }

    /** lookup() calls that found no translation. */
    std::uint64_t lookupMisses() const
    {
        return lookupMisses_.load(std::memory_order_relaxed);
    }

    /** Methods evicted or explicitly uninstalled so far. */
    std::uint64_t evictions() const { return evictions_; }

    /** Extent bytes recycled by those evictions. */
    std::uint64_t bytesEvicted() const { return bytesEvicted_; }

    /** Configured capacity (0 = unlimited). */
    std::size_t capacityBytes() const { return cfg_.capacityBytes; }

    /** Configured victim-selection policy. */
    EvictionPolicy policy() const { return cfg_.policy; }

    /** Configured free-extent placement strategy. */
    AllocStrategy strategy() const { return cfg_.strategy; }

    /** Set the retranslation-cost oracle for kCost eviction. */
    void setRetranslateCost(CostFn fn) { costFn_ = std::move(fn); }

    /** Set the pre-eviction notification hook. */
    void setEvictionHook(EvictionHook fn) { hook_ = std::move(fn); }

  private:
    struct Entry {
        std::unique_ptr<NativeMethod> nm;
        std::size_t extentBytes = 0;  ///< 64-byte-aligned footprint
        std::uint64_t installSeq = 0; ///< FIFO order / tie-break
        std::uint64_t lastUse = 0;    ///< lookups() tick at last hit
    };

    bool bounded() const { return cfg_.capacityBytes != 0; }
    std::size_t usableLimit() const;
    /** Evict one method per policy. @return false if cache empty. */
    bool evictOne();
    MethodId pickVictim() const;

    CodeCacheConfig cfg_;
    std::unordered_map<MethodId, Entry> methods_;
    ExtentAllocator alloc_;
    /** Evicted methods, kept alive for outstanding native frames. */
    std::vector<std::unique_ptr<NativeMethod>> retired_;
    std::size_t liveBytes_ = 0;
    std::uint64_t installSeq_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t bytesEvicted_ = 0;
    CostFn costFn_;
    EvictionHook hook_;
    mutable std::atomic<std::uint64_t> lookups_{0};
    mutable std::atomic<std::uint64_t> lookupMisses_{0};
};

} // namespace jrs

#endif // JRS_VM_JIT_CODE_CACHE_H
