#include "vm/jit/shared_cache.h"

#include <algorithm>

#include "obs/obs.h"

namespace jrs {

std::string
TranslationKey::str() const
{
    std::string s = program + "/#" + std::to_string(method);
    if (inlining)
        s += "+inline";
    if (!barriers.empty())
        s += "+" + barriers;
    return s;
}

SharedCodeCache::SharedCodeCache(SharedCacheConfig cfg)
    : cfg_(cfg),
      alloc_(cfg.capacityBytes == 0 ? ~std::size_t{0}
                                    : cfg.capacityBytes,
             cfg.strategy)
{
}

std::size_t
SharedCodeCache::allocateWithEviction(std::size_t bytes)
{
    std::size_t off = alloc_.allocate(bytes);
    while (off == ExtentAllocator::kNone) {
        // Retire the oldest zero-reference entry with accounted bytes.
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            const Entry &e = it->second;
            if (e.state != Entry::State::kReady || e.refs != 0 ||
                e.offset == ExtentAllocator::kNone)
                continue;
            if (victim == entries_.end() ||
                e.installSeq < victim->second.installSeq)
                victim = it;
        }
        if (victim == entries_.end())
            return ExtentAllocator::kNone;
        alloc_.release(victim->second.offset,
                       victim->second.extentBytes);
        ++stats_.evictions;
        stats_.bytesEvicted += victim->second.extentBytes;
        entries_.erase(victim);
        off = alloc_.allocate(bytes);
    }
    return off;
}

std::shared_ptr<const TranslationArtifact>
SharedCodeCache::acquire(const TranslationKey &key,
                         const BuildFn &build, bool *sharedHit)
{
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.lookups;
    for (;;) {
        auto it = entries_.find(key);
        if (it == entries_.end())
            break; // this caller builds
        Entry &e = it->second;
        if (e.state == Entry::State::kReady) {
            ++stats_.sharedHits;
            stats_.buildNsSaved += e.artifact->buildNs;
            ++e.refs;
            if (sharedHit != nullptr)
                *sharedHit = true;
            return e.artifact;
        }
        // Another worker's build is in flight.
        ++stats_.contended;
        if (!cfg_.waitForInflight) {
            ++stats_.deferred;
            if (sharedHit != nullptr)
                *sharedHit = false;
            return nullptr; // caller interprets and retries later
        }
        // Wait for the build to publish (or fail and erase), then
        // re-examine: on failure the next waiter restarts the
        // single-flight.
        ready_.wait(lock);
    }

    // Single-flight build: reserve the key, run the (expensive) build
    // outside the lock, publish under it.
    ++stats_.misses;
    entries_.emplace(key, Entry{});
    lock.unlock();
    std::shared_ptr<const TranslationArtifact> artifact;
    try {
        artifact = build();
    } catch (...) {
        lock.lock();
        entries_.erase(key);
        ready_.notify_all();
        throw;
    }
    lock.lock();
    Entry &e = entries_[key];
    e.artifact = artifact;
    e.state = Entry::State::kReady;
    e.installSeq = installSeq_++;
    e.refs = 1;
    const std::size_t bytes =
        (artifact->codeBytes() + 63) & ~std::size_t{63};
    if (bytes != 0) {
        e.extentBytes = bytes;
        e.offset = allocateWithEviction(bytes);
        // When bounded and the artifact cannot fit even after draining
        // every idle entry, keep it unaccounted (offset == kNone): the
        // current holders still share it, and release() retires it as
        // soon as the last reference drops.
    }
    ++stats_.installs;
    ++builds_[key];
    stats_.buildNs += artifact->buildNs;
    ready_.notify_all();
    if (sharedHit != nullptr)
        *sharedHit = false;
    return artifact;
}

void
SharedCodeCache::release(const TranslationKey &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.refs == 0)
        return;
    Entry &e = it->second;
    if (--e.refs != 0)
        return;
    // Zero-ref entries normally stay resident for future sharers;
    // over-capacity transients (never byte-accounted) go now.
    if (cfg_.capacityBytes != 0 && e.extentBytes != 0 &&
        e.offset == ExtentAllocator::kNone) {
        ++stats_.evictions;
        stats_.bytesEvicted += e.extentBytes;
        entries_.erase(it);
    }
}

SharedCacheStats
SharedCodeCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    SharedCacheStats s = stats_;
    s.liveEntries = entries_.size();
    std::size_t bytes = 0;
    for (const auto &[key, e] : entries_) {
        if (e.offset != ExtentAllocator::kNone)
            bytes += e.extentBytes;
    }
    s.liveBytes = bytes;
    return s;
}

std::uint64_t
SharedCodeCache::buildsFor(const TranslationKey &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = builds_.find(key);
    return it == builds_.end() ? 0 : it->second;
}

std::size_t
SharedCodeCache::refsOn(const TranslationKey &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second.refs;
}

void
SharedCodeCache::publishMetrics() const
{
    if (!obs::enabled())
        return;
    const SharedCacheStats s = stats();
    obs::MetricRegistry &reg = obs::metrics();
    reg.gauge("code_cache.shared.lookups")
        .set(static_cast<double>(s.lookups));
    reg.gauge("code_cache.shared.hits")
        .set(static_cast<double>(s.sharedHits));
    reg.gauge("code_cache.shared.misses")
        .set(static_cast<double>(s.misses));
    reg.gauge("code_cache.shared.contended")
        .set(static_cast<double>(s.contended));
    reg.gauge("code_cache.shared.deferred")
        .set(static_cast<double>(s.deferred));
    reg.gauge("code_cache.shared.installs")
        .set(static_cast<double>(s.installs));
    reg.gauge("code_cache.shared.evictions")
        .set(static_cast<double>(s.evictions));
    reg.gauge("code_cache.shared.bytes_evicted")
        .set(static_cast<double>(s.bytesEvicted));
    reg.gauge("code_cache.shared.build_ns")
        .set(static_cast<double>(s.buildNs));
    reg.gauge("code_cache.shared.build_ns_saved")
        .set(static_cast<double>(s.buildNsSaved));
    reg.gauge("code_cache.shared.live_entries")
        .set(static_cast<double>(s.liveEntries));
    reg.gauge("code_cache.shared.live_bytes")
        .set(static_cast<double>(s.liveBytes));
}

} // namespace jrs
