/**
 * @file
 * jrs::shared_cache — one process-wide translation cache serving many
 * engine instances concurrently: translate once, run on every sweep
 * worker.
 *
 * The sweep engine spins up one VM per trace group, and most groups
 * compile the *same* methods of the *same* workloads; per-engine code
 * caches repeat that work per worker. ShareJIT-style sharing fixes
 * this — with one hard constraint: simulated code-cache addresses
 * cannot be shared, because install order (and therefore codeBase)
 * differs per configuration, and traces must stay bit-identical.
 *
 * So what is shared is the *host-side* translation work, not simulated
 * addresses: a TranslationArtifact captures everything a translation
 * produces that is independent of the assigned codeBase — the
 * generated instructions, handler/jump-table/bc2n maps, and a compact
 * replay script for the Translate-phase trace (which bytecode pcs were
 * processed, at which abstract-stack depths, and which instruction
 * indices were branch-patched). Each engine installs its own clone of
 * the code at its own address and re-emits its own Translate-phase
 * events deterministically from the script, so every stream is
 * bit-identical to a private-cache run while the expensive codegen
 * runs once per compatibility key.
 *
 * Concurrency contract (single-flight): the first worker to request a
 * key performs the build outside the lock; concurrent requesters for
 * the same key either block on a condition variable until the artifact
 * is Ready (default — deterministic) or, in fallback mode, return
 * "deferred" so the engine keeps interpreting and retries later.
 * Entries are reference-counted: an engine holds one reference per
 * method it has live in its local cache and releases it on local
 * eviction or engine teardown; a bounded shared cache retires only
 * zero-reference entries (FIFO among them), with bytes accounted
 * through the same ExtentAllocator the per-engine cache uses.
 */
#ifndef JRS_VM_JIT_SHARED_CACHE_H
#define JRS_VM_JIT_SHARED_CACHE_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/jit/code_cache.h"
#include "vm/jit/native_inst.h"

namespace jrs {

/**
 * Everything one method translation produces that does not depend on
 * the code-cache address it will be installed at. Built once per
 * TranslationKey, then cloned into each engine's own CodeCache.
 */
struct TranslationArtifact {
    /** Method has more arguments than argument registers: the
     *  translator bails before emitting any trace event. */
    bool rejected = false;
    /** Translation aborted mid-method (TranslationAbort): the partial
     *  Translate-phase trace up to and including the aborting pc is
     *  still emitted, but nothing is installed. */
    bool aborted = false;

    // --- codegen outputs (cloned into the engine's NativeMethod) ----
    std::vector<NativeInst> code;
    std::vector<NativeHandler> handlers;
    std::vector<std::vector<std::uint32_t>> jumpTables;
    std::vector<std::int32_t> bc2n;
    std::uint16_t numSpills = 0;

    // --- Translate-phase replay script ------------------------------
    /** Bytecode pcs whose dispatch/work events were emitted, in
     *  order. On abort the last entry is the aborting pc. */
    std::vector<std::uint32_t> workPcs;
    /** Abstract-stack depth per pc (work-event addressing). */
    std::vector<int> depths;
    /** Instruction indices that were branch-patched (install trace
     *  replays one read-modify-write per entry). */
    std::vector<std::uint32_t> patchedIdx;

    // --- translator statistics deltas -------------------------------
    std::uint64_t bytecodes = 0; ///< completed pcs (excludes abort pc)
    std::uint64_t callsInlined = 0;
    std::uint64_t callsDevirtualized = 0;
    std::size_t workingBytes = 0; ///< compiler working set (success only)

    /** Host nanoseconds the build took — the cost a shared hit saves. */
    std::uint64_t buildNs = 0;

    /** Simulated code bytes this artifact accounts for when cached. */
    std::size_t codeBytes() const { return code.size() * 8; }
};

/**
 * Compatibility key: two engines may share an artifact only when every
 * translation-relevant input matches — the program, the method, and
 * the config bits the translator consults (inlining) or that generated
 * code could depend on (collector-visible barriers).
 */
struct TranslationKey {
    /** Program identity (workload name; programs are built
     *  deterministically per workload, independent of run config). */
    std::string program;
    MethodId method = 0;
    bool inlining = false;
    /** Collector-visible codegen tag (barrier scheme); engines built
     *  with different collectors never share. */
    std::string barriers;

    bool operator==(const TranslationKey &o) const
    {
        return method == o.method && inlining == o.inlining &&
               program == o.program && barriers == o.barriers;
    }

    /** Human-readable form for metrics/debugging. */
    std::string str() const;
};

struct TranslationKeyHash {
    std::size_t operator()(const TranslationKey &k) const
    {
        std::size_t h = std::hash<std::string>{}(k.program);
        h ^= std::hash<std::uint64_t>{}(
                 (static_cast<std::uint64_t>(k.method) << 1) |
                 (k.inlining ? 1 : 0)) +
             0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h ^= std::hash<std::string>{}(k.barriers) +
             0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        return h;
    }
};

/** Configuration for a SharedCodeCache. */
struct SharedCacheConfig {
    /** Capacity in artifact code bytes; 0 = unlimited (no eviction). */
    std::size_t capacityBytes = 0;
    /** Free-extent placement for the byte accounting. */
    AllocStrategy strategy = AllocStrategy::kFirstFit;
    /**
     * When another worker is mid-build for the requested key: true
     * (default) blocks until the artifact is ready — deterministic,
     * required for bit-identical streams; false returns "deferred" so
     * the engine interp-falls-back and retries on the next invocation
     * (opt-in; the resulting stream depends on thread timing).
     */
    bool waitForInflight = true;
};

/** Aggregate counters (also published as code_cache.shared.*). */
struct SharedCacheStats {
    std::uint64_t lookups = 0;    ///< acquire() calls
    std::uint64_t sharedHits = 0; ///< served an already-built artifact
    std::uint64_t misses = 0;     ///< this caller performed the build
    std::uint64_t contended = 0;  ///< arrived while another build ran
    std::uint64_t deferred = 0;   ///< fallback-mode early returns
    std::uint64_t installs = 0;   ///< artifacts admitted to the cache
    std::uint64_t evictions = 0;  ///< zero-ref entries retired
    std::uint64_t bytesEvicted = 0;
    std::uint64_t buildNs = 0;      ///< host ns spent building
    std::uint64_t buildNsSaved = 0; ///< host ns shared hits avoided
    std::size_t liveEntries = 0;
    std::size_t liveBytes = 0;
};

/** Process-wide, thread-safe translation cache; see file comment. */
class SharedCodeCache {
  public:
    using BuildFn =
        std::function<std::shared_ptr<const TranslationArtifact>()>;

    explicit SharedCodeCache(SharedCacheConfig cfg = {});
    SharedCodeCache(const SharedCodeCache &) = delete;
    SharedCodeCache &operator=(const SharedCodeCache &) = delete;

    /**
     * Fetch the artifact for @p key, building it via @p build if this
     * is the first request (single-flight: concurrent requesters never
     * build the same key twice per generation).
     *
     * On success the caller holds one reference; pair every non-null
     * return with a release(). @p sharedHit (optional) reports whether
     * the artifact came from the cache. Returns nullptr only in
     * fallback mode (waitForInflight=false) while another worker's
     * build is in flight — the caller should retry later and must not
     * release. A throwing @p build erases the in-flight entry, wakes
     * any waiters (who restart the single-flight), and rethrows.
     */
    std::shared_ptr<const TranslationArtifact>
    acquire(const TranslationKey &key, const BuildFn &build,
            bool *sharedHit = nullptr);

    /**
     * Drop one reference to @p key. Zero-reference entries stay cached
     * (future workers still hit) until capacity pressure retires them.
     */
    void release(const TranslationKey &key);

    /** Snapshot of the aggregate counters. */
    SharedCacheStats stats() const;

    /** Times @p key has been built (generation count; survives
     *  eviction — single-flight tests pin builds == generations). */
    std::uint64_t buildsFor(const TranslationKey &key) const;

    /** Current references held on @p key (0 if absent). */
    std::size_t refsOn(const TranslationKey &key) const;

    /** Publish the counters as code_cache.shared.* obs metrics. */
    void publishMetrics() const;

    std::size_t capacityBytes() const { return cfg_.capacityBytes; }
    bool waitForInflight() const { return cfg_.waitForInflight; }

  private:
    struct Entry {
        enum class State { kBuilding, kReady };
        State state = State::kBuilding;
        std::shared_ptr<const TranslationArtifact> artifact;
        std::size_t refs = 0;
        /** Extent offset in the byte accounting; kNone while building
         *  or when the artifact did not fit (transient entries). */
        std::size_t offset = ExtentAllocator::kNone;
        std::size_t extentBytes = 0;
        std::uint64_t installSeq = 0;
    };

    /** Caller holds mu_. Retire zero-ref entries (FIFO) until @p bytes
     *  fit or nothing evictable remains; @return the offset or kNone. */
    std::size_t allocateWithEviction(std::size_t bytes);

    SharedCacheConfig cfg_;
    mutable std::mutex mu_;
    std::condition_variable ready_;
    std::unordered_map<TranslationKey, Entry, TranslationKeyHash>
        entries_;
    std::unordered_map<TranslationKey, std::uint64_t,
                       TranslationKeyHash>
        builds_;
    ExtentAllocator alloc_;
    std::uint64_t installSeq_ = 0;
    SharedCacheStats stats_;
};

} // namespace jrs

#endif // JRS_VM_JIT_SHARED_CACHE_H
