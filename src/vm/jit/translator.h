/**
 * @file
 * The JIT translator: stack bytecode -> register-based native code.
 *
 * The translation scheme is the classic one-pass abstract-stack
 * approach used by Kaffe's JIT (the compiler the paper instruments):
 * because the JVM verifier guarantees a fixed operand-stack depth at
 * every pc, each stack position can be bound to a register at compile
 * time. Operand-stack traffic disappears into registers (the paper's
 * observed drop in memory-instruction frequency), locals get dedicated
 * registers, and deep stacks / high locals spill to the frame.
 *
 * Translation itself is traced in Phase::Translate: the translator's
 * own dispatch (it too is a switch over opcodes), its working-data
 * accesses, and — crucially — one install store per generated
 * instruction into the code cache. Those compulsory write misses are
 * the dominant translate-phase cache effect the paper isolates
 * (Figures 3 and 5).
 */
#ifndef JRS_VM_JIT_TRANSLATOR_H
#define JRS_VM_JIT_TRANSLATOR_H

#include <cstdint>
#include <memory>

#include "isa/emitter.h"
#include "vm/jit/code_cache.h"
#include "vm/runtime/class_registry.h"

namespace jrs {

/** Bytecode-to-native compiler. */
class Translator {
  public:
    Translator(const ClassRegistry &registry, CodeCache &cache,
               TraceEmitter &emitter)
        : registry_(registry), cache_(cache), emitter_(emitter) {}

    /**
     * Enable method inlining — the paper's Section 7 proposal. Small
     * straight-line leaf callees are expanded at the call site;
     * virtual calls whose vtable slot has exactly one implementation
     * program-wide are devirtualized first. Off by default so the
     * baseline experiments model the paper's JITs.
     */
    void setInlining(bool enabled) { inlining_ = enabled; }

    /** Call sites expanded inline (statistics). */
    std::uint64_t callsInlined() const { return callsInlined_; }

    /** Virtual call sites devirtualized (statistics). */
    std::uint64_t callsDevirtualized() const {
        return callsDevirtualized_;
    }

    Translator(const Translator &) = delete;
    Translator &operator=(const Translator &) = delete;

    /**
     * Compile @p id, install it in the code cache and emit the
     * Translate-phase trace. Returns nullptr when the method is not
     * compilable (more arguments than argument registers) — the engine
     * keeps interpreting such methods.
     */
    const NativeMethod *translate(MethodId id);

    /** Methods successfully compiled. */
    std::uint64_t methodsTranslated() const { return methods_; }

    /** Dynamic bytecodes consumed by compilation. */
    std::uint64_t bytecodesTranslated() const { return bytecodes_; }

    /** Peak per-method compiler working memory (Table 1 accounting). */
    std::size_t peakWorkingBytes() const { return peakWorking_; }

  private:
    class MethodTranslation;

    const ClassRegistry &registry_;
    CodeCache &cache_;
    TraceEmitter &emitter_;
    std::uint64_t methods_ = 0;
    std::uint64_t bytecodes_ = 0;
    std::size_t peakWorking_ = 0;
    bool inlining_ = false;
    std::uint64_t callsInlined_ = 0;
    std::uint64_t callsDevirtualized_ = 0;
};

} // namespace jrs

#endif // JRS_VM_JIT_TRANSLATOR_H
