/**
 * @file
 * The JIT translator: stack bytecode -> register-based native code.
 *
 * The translation scheme is the classic one-pass abstract-stack
 * approach used by Kaffe's JIT (the compiler the paper instruments):
 * because the JVM verifier guarantees a fixed operand-stack depth at
 * every pc, each stack position can be bound to a register at compile
 * time. Operand-stack traffic disappears into registers (the paper's
 * observed drop in memory-instruction frequency), locals get dedicated
 * registers, and deep stacks / high locals spill to the frame.
 *
 * Translation itself is traced in Phase::Translate: the translator's
 * own dispatch (it too is a switch over opcodes), its working-data
 * accesses, and — crucially — one install store per generated
 * instruction into the code cache. Those compulsory write misses are
 * the dominant translate-phase cache effect the paper isolates
 * (Figures 3 and 5).
 *
 * Internally translation is split into a *build* phase (pure codegen,
 * producing an address-independent TranslationArtifact plus a replay
 * script for the trace) and an *emit* phase (installing a clone in
 * this engine's code cache and re-emitting the Translate-phase events
 * against the assigned addresses). The split is what lets a
 * process-wide SharedCodeCache run the expensive build once per
 * compatibility key while every engine's stream stays bit-identical
 * to a private translation.
 */
#ifndef JRS_VM_JIT_TRANSLATOR_H
#define JRS_VM_JIT_TRANSLATOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "isa/emitter.h"
#include "vm/jit/code_cache.h"
#include "vm/jit/shared_cache.h"
#include "vm/runtime/class_registry.h"

namespace jrs {

/** Bytecode-to-native compiler. */
class Translator {
  public:
    Translator(const ClassRegistry &registry, CodeCache &cache,
               TraceEmitter &emitter)
        : registry_(registry), cache_(cache), emitter_(emitter) {}

    ~Translator() { releaseAll(); }

    /**
     * Enable method inlining — the paper's Section 7 proposal. Small
     * straight-line leaf callees are expanded at the call site;
     * virtual calls whose vtable slot has exactly one implementation
     * program-wide are devirtualized first. Off by default so the
     * baseline experiments model the paper's JITs.
     */
    void setInlining(bool enabled) { inlining_ = enabled; }

    /**
     * Attach a process-wide shared translation cache. @p program and
     * @p barriers join the inlining flag in the compatibility key, so
     * only config-compatible engines share artifacts.
     */
    void setSharedCache(std::shared_ptr<SharedCodeCache> shared,
                        std::string program, std::string barriers)
    {
        shared_ = std::move(shared);
        sharedProgram_ = std::move(program);
        sharedBarriers_ = std::move(barriers);
    }

    /** Drop the shared reference held for @p id (call when the local
     *  code cache evicts the method). */
    void releaseShared(MethodId id);

    /** Drop every held shared reference (engine teardown). */
    void releaseAll();

    /** Call sites expanded inline (statistics). */
    std::uint64_t callsInlined() const { return callsInlined_; }

    /** Virtual call sites devirtualized (statistics). */
    std::uint64_t callsDevirtualized() const {
        return callsDevirtualized_;
    }

    Translator(const Translator &) = delete;
    Translator &operator=(const Translator &) = delete;

    /**
     * Compile @p id, install it in the code cache and emit the
     * Translate-phase trace. Returns nullptr when the method is not
     * compilable (more arguments than argument registers) — the engine
     * keeps interpreting such methods — or when the translation was
     * deferred (see lastTranslateDeferred()).
     */
    const NativeMethod *translate(MethodId id);

    /**
     * True when the last translate() returned nullptr only because a
     * shared-cache build was in flight elsewhere (fallback mode): the
     * method is compilable, the engine should interpret now and retry
     * on a later invocation rather than blacklist it.
     */
    bool lastTranslateDeferred() const {
        return lastTranslateDeferred_;
    }

    /** Methods successfully compiled. */
    std::uint64_t methodsTranslated() const { return methods_; }

    /** Dynamic bytecodes consumed by compilation. */
    std::uint64_t bytecodesTranslated() const { return bytecodes_; }

    /** Peak per-method compiler working memory (Table 1 accounting). */
    std::size_t peakWorkingBytes() const { return peakWorking_; }

    /** Shared-cache artifacts this engine attached to without
     *  building (0 without a shared cache). */
    std::uint64_t sharedHits() const { return sharedHits_; }

    /** Shared-cache requests this engine had to build itself. */
    std::uint64_t sharedMisses() const { return sharedMisses_; }

    /** Host ns this engine spent building artifacts. */
    std::uint64_t buildNs() const { return buildNs_; }

    /** Host ns shared hits saved this engine (sum of the attached
     *  artifacts' build costs). */
    std::uint64_t buildNsSaved() const { return buildNsSaved_; }

  private:
    class MethodTranslation;

    /** Pure codegen: build @p m's artifact (no trace events). */
    std::shared_ptr<const TranslationArtifact>
    buildArtifact(const Method &m) const;

    TranslationKey keyFor(MethodId id) const;

    const ClassRegistry &registry_;
    CodeCache &cache_;
    TraceEmitter &emitter_;
    std::uint64_t methods_ = 0;
    std::uint64_t bytecodes_ = 0;
    std::size_t peakWorking_ = 0;
    bool inlining_ = false;
    std::uint64_t callsInlined_ = 0;
    std::uint64_t callsDevirtualized_ = 0;

    std::shared_ptr<SharedCodeCache> shared_;
    std::string sharedProgram_;
    std::string sharedBarriers_;
    /** Shared keys this engine holds a reference on, by method. */
    std::unordered_map<MethodId, TranslationKey> pinned_;
    std::uint64_t sharedHits_ = 0;
    std::uint64_t sharedMisses_ = 0;
    std::uint64_t buildNs_ = 0;
    std::uint64_t buildNsSaved_ = 0;
    bool lastTranslateDeferred_ = false;
};

} // namespace jrs

#endif // JRS_VM_JIT_TRANSLATOR_H
