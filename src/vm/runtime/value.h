/**
 * @file
 * Tagged runtime values for the interpreter's locals and operand stack.
 *
 * Three JVM-style categories: 32-bit int (also covering byte/char/bool),
 * 32-bit float, and references. References carry the full simulated heap
 * address; a null reference is address 0. In heap slots (fields, ref
 * arrays) references are stored as 32-bit offsets from seg::kHeap.
 */
#ifndef JRS_VM_RUNTIME_VALUE_H
#define JRS_VM_RUNTIME_VALUE_H

#include <cassert>
#include <cstdint>
#include <cstring>

#include "isa/address_map.h"

namespace jrs {

/** Runtime type tag. */
enum class Tag : std::uint8_t { Int, Float, Ref };

/** A tagged value. 8 bytes payload + tag. */
class Value {
  public:
    /** Default: int 0. */
    Value() : bits_(0), tag_(Tag::Int) {}

    /** Make an int value. */
    static Value makeInt(std::int32_t v) {
        Value x;
        x.tag_ = Tag::Int;
        x.bits_ = static_cast<std::uint32_t>(v);
        return x;
    }

    /** Make a float value. */
    static Value makeFloat(float v) {
        Value x;
        x.tag_ = Tag::Float;
        std::uint32_t b;
        std::memcpy(&b, &v, sizeof(b));
        x.bits_ = b;
        return x;
    }

    /** Make a reference value (@p addr == 0 means null). */
    static Value makeRef(SimAddr addr) {
        Value x;
        x.tag_ = Tag::Ref;
        x.bits_ = addr;
        return x;
    }

    /** Null reference. */
    static Value null() { return makeRef(0); }

    Tag tag() const { return tag_; }

    std::int32_t asInt() const {
        assert(tag_ == Tag::Int);
        return static_cast<std::int32_t>(
            static_cast<std::uint32_t>(bits_));
    }

    float asFloat() const {
        assert(tag_ == Tag::Float);
        const std::uint32_t b = static_cast<std::uint32_t>(bits_);
        float f;
        std::memcpy(&f, &b, sizeof(f));
        return f;
    }

    SimAddr asRef() const {
        assert(tag_ == Tag::Ref);
        return bits_;
    }

    /** True for a null reference. */
    bool isNullRef() const { return tag_ == Tag::Ref && bits_ == 0; }

    /**
     * 32-bit representation used in 4-byte heap slots: ints/floats are
     * raw bits, refs are offsets from seg::kHeap (0 for null).
     */
    std::uint32_t slotBits() const {
        if (tag_ == Tag::Ref) {
            return bits_ == 0
                ? 0u
                : static_cast<std::uint32_t>(bits_ - seg::kHeap);
        }
        return static_cast<std::uint32_t>(bits_);
    }

    /** Rebuild a value from heap-slot bits with a known tag. */
    static Value fromSlotBits(std::uint32_t slot, Tag tag) {
        switch (tag) {
          case Tag::Int:
            return makeInt(static_cast<std::int32_t>(slot));
          case Tag::Float: {
            float f;
            std::memcpy(&f, &slot, sizeof(f));
            return makeFloat(f);
          }
          case Tag::Ref:
            return makeRef(slot == 0 ? 0 : seg::kHeap + slot);
        }
        return Value();
    }

    /**
     * Raw 64-bit representation used by native-code registers: ints are
     * sign-extended, floats are raw bits in the low word, refs are full
     * simulated addresses.
     */
    std::uint64_t raw() const {
        if (tag_ == Tag::Int) {
            return static_cast<std::uint64_t>(
                static_cast<std::int64_t>(asInt()));
        }
        return bits_;
    }

    /** Rebuild from a native register with a known tag. */
    static Value fromRaw(std::uint64_t raw, Tag tag) {
        switch (tag) {
          case Tag::Int:
            return makeInt(static_cast<std::int32_t>(raw));
          case Tag::Float: {
            const std::uint32_t b = static_cast<std::uint32_t>(raw);
            float f;
            std::memcpy(&f, &b, sizeof(f));
            return makeFloat(f);
          }
          case Tag::Ref:
            return makeRef(raw);
        }
        return Value();
    }

    /** Exact equality including tag (tests). */
    bool operator==(const Value &o) const {
        return tag_ == o.tag_ && bits_ == o.bits_;
    }

  private:
    std::uint64_t bits_;
    Tag tag_;
};

} // namespace jrs

#endif // JRS_VM_RUNTIME_VALUE_H
