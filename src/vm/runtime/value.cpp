#include "vm/runtime/value.h"

// Value is fully inline.
