#include "vm/runtime/runtime_support.h"

#include "gc/gc_controller.h"

namespace jrs {

namespace {

constexpr SimAddr kAllocPc = stub::kAllocPc;
constexpr SimAddr kCopyPc = stub::kCopyPc;

/** Simulated address of the allocator's bump cursor. */
constexpr SimAddr kAllocCursorAddr = seg::kRuntimeData + 0x20;

} // namespace

void
RuntimeSupport::allocSafepoint(std::size_t bytes)
{
    if (gc_ != nullptr)
        gc_->beforeAllocation((bytes + 7) & ~std::size_t{7});
}

SimAddr
RuntimeSupport::newObject(ClassId cls)
{
    std::uint16_t num_fields = 0;
    if (cls < registry_.numClasses())
        num_fields = registry_.klass(cls).numFields;
    allocSafepoint(8 + 4u * num_fields);

    // Bump-pointer manipulation: load cursor, add, compare, store.
    emitter_.control(Phase::Runtime, kAllocPc, NKind::Call, kAllocPc + 4);
    emitter_.load(Phase::Runtime, kAllocPc + 4, kAllocCursorAddr);
    emitter_.alu(Phase::Runtime, kAllocPc + 8);
    emitter_.store(Phase::Runtime, kAllocPc + 12, kAllocCursorAddr);

    const SimAddr obj = heap_.allocObject(cls, num_fields);

    // Header install + field zeroing.
    emitter_.store(Phase::Runtime, kAllocPc + 16, obj, 8);
    for (std::uint16_t i = 0; i < num_fields; i += 2) {
        emitter_.store(Phase::Runtime, kAllocPc + 20,
                       Heap::fieldAddr(obj, i), 8);
    }
    emitter_.control(Phase::Runtime, kAllocPc + 24, NKind::Ret, 0);
    return obj;
}

SimAddr
RuntimeSupport::newArray(ArrayKind kind, std::int32_t length)
{
    if (length < 0)
        throwBuiltin(BuiltinEx::NegativeArraySize);
    allocSafepoint(12 + static_cast<std::size_t>(length)
                            * arrayElemSize(kind));

    emitter_.control(Phase::Runtime, kAllocPc + 0x40, NKind::Call,
                     kAllocPc + 0x44);
    emitter_.load(Phase::Runtime, kAllocPc + 0x44, kAllocCursorAddr);
    emitter_.alu(Phase::Runtime, kAllocPc + 0x48);
    emitter_.store(Phase::Runtime, kAllocPc + 0x4c, kAllocCursorAddr);

    const SimAddr arr = heap_.allocArray(kind, length);

    emitter_.store(Phase::Runtime, kAllocPc + 0x50, arr, 8);
    // Zero the payload with 8-byte stores (the real JVM bzeroes here).
    const std::uint64_t payload =
        static_cast<std::uint64_t>(length) * arrayElemSize(kind);
    for (std::uint64_t off = 0; off < payload; off += 8) {
        emitter_.store(Phase::Runtime, kAllocPc + 0x54, arr + 12 + off,
                       8);
    }
    emitter_.control(Phase::Runtime, kAllocPc + 0x58, NKind::Ret, 0);
    return arr;
}

void
RuntimeSupport::throwBuiltin(BuiltinEx kind)
{
    allocSafepoint(8);
    const SimAddr ex = heap_.allocObject(builtinExClassId(kind), 0);
    emitter_.store(Phase::Runtime, kAllocPc + 0x80, ex, 8);
    throw GuestThrow{ex, builtinExName(kind)};
}

void
RuntimeSupport::arrayCopy(SimAddr src, std::int32_t src_pos, SimAddr dst,
                          std::int32_t dst_pos, std::int32_t len)
{
    if (src == 0 || dst == 0)
        throwBuiltin(BuiltinEx::NullPointer);
    // Written as `len > length - pos` (never `pos + len > length`):
    // with pos near INT32_MAX the sum wraps negative and would slip
    // past the bound; the subtraction stays in range because pos >= 0.
    if (len < 0 || src_pos < 0 || dst_pos < 0
        || len > heap_.arrayLength(src) - src_pos
        || len > heap_.arrayLength(dst) - dst_pos
        || heap_.arrayKindOf(src) != heap_.arrayKindOf(dst)) {
        throwBuiltin(BuiltinEx::ArrayIndexOutOfBounds);
    }

    const std::uint32_t esz = arrayElemSize(heap_.arrayKindOf(src));
    emitter_.control(Phase::Runtime, kCopyPc, NKind::Call, kCopyPc + 4);
    for (std::int32_t i = 0; i < len; ++i) {
        const SimAddr s = heap_.elemAddr(src, src_pos + i);
        const SimAddr d = heap_.elemAddr(dst, dst_pos + i);
        emitter_.load(Phase::Runtime, kCopyPc + 4, s,
                      static_cast<std::uint8_t>(esz));
        emitter_.store(Phase::Runtime, kCopyPc + 8, d,
                       static_cast<std::uint8_t>(esz));
        switch (esz) {
          case 1:
            heap_.storeU8(d, heap_.loadU8(s));
            break;
          case 2:
            heap_.storeU16(d, heap_.loadU16(s));
            break;
          default:
            heap_.storeU32(d, heap_.loadU32(s));
            break;
        }
    }
    emitter_.control(Phase::Runtime, kCopyPc + 12, NKind::Ret, 0);
}

void
RuntimeSupport::printInt(std::int32_t v)
{
    output_ += std::to_string(v);
    output_ += '\n';
}

void
RuntimeSupport::printChar(std::int32_t c)
{
    output_ += static_cast<char>(c & 0xff);
}

} // namespace jrs
