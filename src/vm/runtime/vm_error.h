/**
 * @file
 * Fatal VM errors (simulator bugs or unrecoverable guest conditions).
 *
 * Java-visible exceptions (NullPointer, ArrayIndexOutOfBounds,
 * Arithmetic) are NOT C++ exceptions: they unwind guest frames via the
 * engine's exception machinery. VmError is reserved for conditions with
 * no guest handler semantics — corrupted state, unresolvable methods —
 * matching the panic/fatal distinction of simulator codebases.
 */
#ifndef JRS_VM_RUNTIME_VM_ERROR_H
#define JRS_VM_RUNTIME_VM_ERROR_H

#include <stdexcept>
#include <string>

namespace jrs {

/** Unrecoverable VM failure. */
class VmError : public std::runtime_error {
  public:
    explicit VmError(const std::string &what)
        : std::runtime_error("vm: " + what) {}
};

/** Guest-visible exception kinds with built-in throw sites. */
enum class BuiltinEx : std::uint8_t {
    NullPointer,
    ArrayIndexOutOfBounds,
    Arithmetic,       ///< integer divide by zero
    NegativeArraySize,
    StackOverflow,
    IllegalMonitorState,
};

/** Diagnostic name of a builtin exception kind. */
inline const char *
builtinExName(BuiltinEx kind)
{
    switch (kind) {
      case BuiltinEx::NullPointer:           return "NullPointerException";
      case BuiltinEx::ArrayIndexOutOfBounds:
        return "ArrayIndexOutOfBoundsException";
      case BuiltinEx::Arithmetic:            return "ArithmeticException";
      case BuiltinEx::NegativeArraySize:
        return "NegativeArraySizeException";
      case BuiltinEx::StackOverflow:         return "StackOverflowError";
      case BuiltinEx::IllegalMonitorState:
        return "IllegalMonitorStateException";
    }
    return "UnknownException";
}

} // namespace jrs

#endif // JRS_VM_RUNTIME_VM_ERROR_H
