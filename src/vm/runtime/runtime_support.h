/**
 * @file
 * Shared runtime services: allocation, intrinsics, guest throws.
 *
 * Both execution engines (interpreter and JIT-compiled code) call into
 * these routines, just as both modes of a real JVM share one runtime.
 * Every service emits Runtime-phase trace events so its cost is visible
 * to the architecture models: allocation includes the bump-pointer
 * manipulation and the zeroing stores, array copies stream loads and
 * stores, and so on.
 */
#ifndef JRS_VM_RUNTIME_RUNTIME_SUPPORT_H
#define JRS_VM_RUNTIME_RUNTIME_SUPPORT_H

#include <string>

#include "isa/emitter.h"
#include "vm/bytecode/opcode.h"
#include "vm/runtime/class_registry.h"
#include "vm/runtime/heap.h"
#include "vm/runtime/vm_error.h"

namespace jrs::gc {
class GcController;
} // namespace jrs::gc

namespace jrs {

/**
 * A guest-level (Java-visible) exception in flight.
 *
 * Thrown as a C++ exception only within a single VM step; the stepper
 * catches it at the step boundary and switches the thread into the
 * engine's frame-unwinding machinery.
 */
struct GuestThrow {
    SimAddr ref;              ///< the exception object
    const char *builtinName;  ///< non-null for builtin exceptions
};

/** Runtime service routines shared by all execution modes. */
class RuntimeSupport {
  public:
    RuntimeSupport(ClassRegistry &registry, Heap &heap,
                   TraceEmitter &emitter)
        : registry_(registry), heap_(heap), emitter_(emitter) {}

    /** Allocate an instance of @p cls (traced). */
    SimAddr newObject(ClassId cls);

    /**
     * Allocate an array (traced, including zeroing stores). Throws
     * GuestThrow(NegativeArraySize) on a negative length.
     */
    SimAddr newArray(ArrayKind kind, std::int32_t length);

    /** Raise a builtin guest exception (allocates its object). */
    [[noreturn]] void throwBuiltin(BuiltinEx kind);

    /**
     * System.arraycopy equivalent (traced element loads/stores).
     * Throws GuestThrow on null refs or range violations.
     */
    void arrayCopy(SimAddr src, std::int32_t src_pos, SimAddr dst,
                   std::int32_t dst_pos, std::int32_t len);

    /** Append the decimal rendering of @p v plus '\n' to the output. */
    void printInt(std::int32_t v);

    /** Append one character to the output. */
    void printChar(std::int32_t c);

    /** Program output accumulated by the print intrinsics. */
    const std::string &output() const { return output_; }

    /** Clear accumulated output. */
    void clearOutput() { output_.clear(); }

    /**
     * Install the GC safepoint hook (null = GC off). The allocation
     * entry points are the only safepoints: no C++ caller holds an
     * unrooted reference across them (DESIGN.md §9).
     */
    void setGcController(gc::GcController *gc) { gc_ = gc; }

  private:
    /** GC safepoint before allocating @p bytes (no-op with GC off). */
    void allocSafepoint(std::size_t bytes);

    ClassRegistry &registry_;
    Heap &heap_;
    TraceEmitter &emitter_;
    gc::GcController *gc_ = nullptr;
    std::string output_;
};

} // namespace jrs

#endif // JRS_VM_RUNTIME_RUNTIME_SUPPORT_H
