#include "vm/runtime/thread.h"

// Thread/frame types are header-only.
