/**
 * @file
 * Green threads and activation frames.
 *
 * The VM schedules its own threads cooperatively (like the green-thread
 * JDK 1.1.6 the paper measured). Each thread owns a stack of
 * activations; an activation is either an interpreter frame (tagged
 * Values for locals/operand stack) or a native frame (a raw register
 * file plus spill slots) — mixed-mode execution interleaves them
 * freely. Frames also carry a simulated base address so pushes, pops
 * and spills produce realistic data-cache traffic.
 */
#ifndef JRS_VM_RUNTIME_THREAD_H
#define JRS_VM_RUNTIME_THREAD_H

#include <array>
#include <cstdint>
#include <variant>
#include <vector>

#include "isa/address_map.h"
#include "vm/bytecode/class_def.h"
#include "vm/jit/native_inst.h"
#include "vm/runtime/value.h"
#include "vm/runtime/vm_error.h"

namespace jrs {

/** Interpreter activation. */
struct InterpFrame {
    const Method *method = nullptr;
    std::uint32_t pc = 0;
    SimAddr base = 0;  ///< simulated frame base (locals, then stack)
    std::vector<Value> locals;
    std::vector<Value> stack;  ///< operand stack; back() is the top
    SimAddr syncObj = 0;       ///< monitor held by a synchronized method
    bool monitorPending = false;  ///< synchronized entry not yet acquired
    std::uint32_t backEdges = 0;  ///< backward branches taken (OSR heat)

    /** Simulated address of local slot @p slot. */
    SimAddr localAddr(std::uint8_t slot) const {
        return base + 4u * slot;
    }

    /** Simulated address of operand-stack position @p pos. */
    SimAddr stackAddr(std::size_t pos) const {
        return base + 4u * (method->numLocals + pos);
    }
};

/** Native (JIT-compiled) activation. */
struct NativeFrame {
    const NativeMethod *nm = nullptr;
    std::uint32_t ip = 0;  ///< index into nm->code
    SimAddr base = 0;      ///< simulated frame base (spill area)
    std::array<std::uint64_t, 32> regs{};
    std::vector<std::uint64_t> spills;
    /**
     * Bit i set when regs[i] currently holds an object reference.
     * Registers are untyped u64s, so the executor classifies every
     * register write; the GC's root enumeration reads these bits to
     * stay precise (a conservative scan is unsound here — the heap
     * segment base fits in 32 bits, so integer values collide with
     * valid ref encodings).
     */
    std::uint32_t refMask = 0;
    /** Same per-slot ref tracking for the spill area. */
    std::vector<bool> spillRefs;
    SimAddr syncObj = 0;
    bool monitorPending = false;  ///< synchronized entry not yet acquired

    /** Simulated address of spill slot @p slot. */
    SimAddr spillAddr(std::uint16_t slot) const {
        return base + 4u * slot;
    }

    /** Record whether register @p r holds a reference. */
    void setRegRef(std::uint8_t r, bool is_ref) {
        const std::uint32_t bit = 1u << r;
        refMask = is_ref ? (refMask | bit) : (refMask & ~bit);
    }

    /** True when register @p r holds a reference. */
    bool regIsRef(std::uint8_t r) const {
        return (refMask >> r) & 1u;
    }
};

/** Either kind of activation. */
using Activation = std::variant<InterpFrame, NativeFrame>;

/** Scheduler-visible thread states. */
enum class ThreadState : std::uint8_t {
    Runnable,
    BlockedOnMonitor,  ///< monitorenter failed; retried when scheduled
    Joining,           ///< waiting for another thread to finish
    Done,
};

/** A green thread. */
class VmThread {
  public:
    /** @param tid Thread id (0 = main). */
    explicit VmThread(std::uint32_t tid)
        : tid_(tid), stackBase_(threadStackBase(tid)) {}

    std::uint32_t tid() const { return tid_; }

    ThreadState state = ThreadState::Runnable;
    /** Thread whose completion we await (state == Joining). */
    std::uint32_t joinTarget = 0;
    /** Pending thrown exception ref during unwinding (0 = none). */
    SimAddr pendingException = 0;
    /** Diagnostic name of an uncaught builtin exception, if any. */
    const char *uncaughtName = nullptr;

    /** Activation stack; back() is the running frame. */
    std::vector<Activation> frames;

    /** True when no frames remain. */
    bool finished() const { return frames.empty(); }

    /**
     * Reserve simulated stack space for a frame of @p slots 4-byte
     * slots and return its base address. Throws VmError (guest
     * StackOverflow is synthesized by the engine) when exhausted.
     */
    SimAddr pushFrameSpace(std::uint32_t slots) {
        const SimAddr bytes = 4ull * slots + 32;  // + save area
        if (cursor_ + bytes > kThreadStackSize)
            throw VmError("thread stack exhausted");
        const SimAddr base = stackBase_ + cursor_;
        cursor_ += bytes;
        frameBytes_.push_back(bytes);
        return base;
    }

    /** Release the most recently pushed frame space. */
    void popFrameSpace() {
        cursor_ -= frameBytes_.back();
        frameBytes_.pop_back();
    }

    /** High-water mark of simulated stack usage (memory accounting). */
    SimAddr stackHighWater() const { return highWater_; }

    /** Update the high-water mark (engine calls after pushes). */
    void noteHighWater() {
        if (cursor_ > highWater_)
            highWater_ = cursor_;
    }

  private:
    std::uint32_t tid_;
    SimAddr stackBase_;
    SimAddr cursor_ = 0;
    SimAddr highWater_ = 0;
    std::vector<SimAddr> frameBytes_;
};

} // namespace jrs

#endif // JRS_VM_RUNTIME_THREAD_H
