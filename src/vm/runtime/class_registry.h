/**
 * @file
 * Runtime view of a loaded Program: method/class lookup, vtable
 * dispatch, static variables, and interned string literals.
 *
 * Construction is the analogue of class loading: string literals are
 * materialized as char arrays on the heap, static slots are zeroed, and
 * metadata addresses are fixed so the JIT's vtable loads have realistic
 * effective addresses.
 */
#ifndef JRS_VM_RUNTIME_CLASS_REGISTRY_H
#define JRS_VM_RUNTIME_CLASS_REGISTRY_H

#include <cstdint>
#include <string>
#include <vector>

#include "vm/bytecode/class_def.h"
#include "vm/runtime/heap.h"
#include "vm/runtime/value.h"

namespace jrs {

/** Base simulated address of the statics area (within class data). */
inline constexpr SimAddr kStaticsBase = seg::kClassData + 0x0800'0000ull;

/** Loaded-program services shared by interpreter, JIT and executor. */
class ClassRegistry {
  public:
    /**
     * Load @p prog: intern string literals into @p heap and initialize
     * statics. The Program must outlive the registry.
     */
    ClassRegistry(const Program &prog, Heap &heap);

    /** The loaded program. */
    const Program &program() const { return *prog_; }

    /** Method by global id. */
    const Method &method(MethodId id) const {
        if (id >= prog_->methods.size())
            throw VmError("bad method id");
        return prog_->methods[id];
    }

    /** Class by id. */
    const ClassDef &klass(ClassId id) const {
        if (id >= prog_->classes.size())
            throw VmError("bad class id");
        return prog_->classes[id];
    }

    /** Number of classes. */
    std::size_t numClasses() const { return prog_->classes.size(); }

    /**
     * Virtual dispatch: method implementing vtable @p slot for an
     * object of class @p cls. Throws VmError on a bad slot.
     */
    MethodId virtualLookup(ClassId cls, std::uint16_t slot) const;

    /** Simulated address of a class's vtable entry (for trace loads). */
    SimAddr vtableEntryAddr(ClassId cls, std::uint16_t slot) const {
        return klass(cls).metaAddr + 16 + 4u * slot;
    }

    // --- statics ---------------------------------------------------------

    Value getStatic(std::uint16_t slot) const;
    void setStatic(std::uint16_t slot, Value v);

    /** Simulated address of static slot @p slot. */
    static SimAddr staticAddr(std::uint16_t slot) {
        return kStaticsBase + 4u * slot;
    }

    // --- string literals ---------------------------------------------------

    /** Heap char[] reference of string literal @p index. */
    SimAddr stringRef(std::uint16_t index) const;

    /**
     * Per-class "class object" used as the monitor of static
     * synchronized methods (java.lang.Class analogue).
     */
    SimAddr classObject(ClassId cls) const;

    /**
     * Footprint of class metadata + bytecode + statics (interpreted-mode
     * baseline for the Table 1 memory comparison).
     */
    std::size_t metadataBytes() const { return metadataBytes_; }

    // --- GC root access (src/gc/roots.cpp) --------------------------------
    // Mutable views so a moving collector can rewrite root addresses in
    // place; non-GC code must keep using the typed accessors above.

    std::vector<Value> &gcStatics() { return statics_; }
    std::vector<SimAddr> &gcStringRefs() { return stringRefs_; }
    std::vector<SimAddr> &gcClassObjects() { return classObjects_; }

  private:
    const Program *prog_;
    std::vector<Value> statics_;
    std::vector<SimAddr> stringRefs_;
    std::vector<SimAddr> classObjects_;
    std::size_t metadataBytes_ = 0;
};

} // namespace jrs

#endif // JRS_VM_RUNTIME_CLASS_REGISTRY_H
