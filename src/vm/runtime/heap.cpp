#include "vm/runtime/heap.h"

#include <cstring>

namespace jrs {

namespace {

/** Header layout: bits 0..15 klass id, bits 16..18 array kind,
 *  bit 31 array flag. */
constexpr std::uint32_t kArrayFlag = 0x8000'0000u;

std::uint32_t
makeHeader(ClassId cls, bool is_array, ArrayKind kind)
{
    std::uint32_t h = cls;
    if (is_array) {
        h |= kArrayFlag;
        h |= static_cast<std::uint32_t>(kind) << 16;
    }
    return h;
}

} // namespace

Heap::Heap(std::size_t capacity_bytes)
    : storage_(capacity_bytes, 0),
      refBits_((capacity_bytes / 4 + 63) / 64 + 1, 0),
      cursor_(16),  // offset 0 reserved so a null ref is never valid
      allocLimit_(capacity_bytes)
{
}

std::size_t
Heap::offsetOf(SimAddr addr) const
{
    if (addr < seg::kHeap || addr - seg::kHeap >= storage_.size())
        throw VmError("heap access out of range");
    return static_cast<std::size_t>(addr - seg::kHeap);
}

bool
Heap::canAllocate(std::size_t bytes) const
{
    const std::size_t aligned = (bytes + 7) & ~std::size_t{7};
    if (cursor_ + aligned <= allocLimit_)
        return true;
    for (const FreeBlock &b : freeList_)
        if (b.size >= aligned)
            return true;
    return false;
}

SimAddr
Heap::bump(std::size_t bytes)
{
    const std::size_t aligned = (bytes + 7) & ~std::size_t{7};

    // First-fit from the sweep's free list (empty without a collector,
    // so the un-collected path is the original bump allocator).
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        if (it->size < aligned)
            continue;
        const std::size_t off = it->off;
        if (it->size - aligned >= 8) {
            it->off += static_cast<std::uint32_t>(aligned);
            it->size -= static_cast<std::uint32_t>(aligned);
            // The remainder must stay walkable for the next sweep.
            writeFiller(it->off, it->size);
        } else {
            freeList_.erase(it);
        }
        clearRange(off, aligned);
        totalAllocated_ += aligned;
        ++allocCount_;
        return seg::kHeap + off;
    }

    if (cursor_ + aligned > allocLimit_)
        throw VmError("heap exhausted");
    const SimAddr addr = seg::kHeap + cursor_;
    cursor_ += aligned;
    totalAllocated_ += aligned;
    ++allocCount_;
    return addr;
}

SimAddr
Heap::allocObject(ClassId cls, std::uint16_t num_fields)
{
    const SimAddr addr = bump(8 + 4u * num_fields);
    storeU32(addr, makeHeader(cls, false, ArrayKind::Int));
    storeU32(addr + 4, 0);  // lockword
    return addr;
}

SimAddr
Heap::allocArray(ArrayKind kind, std::int32_t length)
{
    if (length < 0)
        throw VmError("negative array size reached allocator");
    const std::size_t bytes = 12
        + static_cast<std::size_t>(length) * arrayElemSize(kind);
    const SimAddr addr = bump(bytes);
    storeU32(addr, makeHeader(0, true, kind));
    storeU32(addr + 4, 0);
    storeU32(addr + 8, static_cast<std::uint32_t>(length));
    return addr;
}

std::uint32_t
Heap::loadU32(SimAddr addr) const
{
    std::uint32_t v;
    std::memcpy(&v, &storage_[offsetOf(addr)], sizeof(v));
    return v;
}

void
Heap::storeU32(SimAddr addr, std::uint32_t v)
{
    const std::size_t off = offsetOf(addr);
    std::memcpy(&storage_[off], &v, sizeof(v));
    setRefBit(off, false);
}

std::uint16_t
Heap::loadU16(SimAddr addr) const
{
    std::uint16_t v;
    std::memcpy(&v, &storage_[offsetOf(addr)], sizeof(v));
    return v;
}

void
Heap::storeU16(SimAddr addr, std::uint16_t v)
{
    const std::size_t off = offsetOf(addr);
    std::memcpy(&storage_[off], &v, sizeof(v));
    setRefBit(off, false);
}

std::uint8_t
Heap::loadU8(SimAddr addr) const
{
    return storage_[offsetOf(addr)];
}

void
Heap::storeU8(SimAddr addr, std::uint8_t v)
{
    const std::size_t off = offsetOf(addr);
    storage_[off] = v;
    setRefBit(off, false);
}

ClassId
Heap::klassOf(SimAddr obj) const
{
    return static_cast<ClassId>(loadU32(obj) & 0xffffu);
}

bool
Heap::isArray(SimAddr obj) const
{
    return (loadU32(obj) & kArrayFlag) != 0;
}

ArrayKind
Heap::arrayKindOf(SimAddr arr) const
{
    return static_cast<ArrayKind>((loadU32(arr) >> 16) & 0x7u);
}

std::int32_t
Heap::arrayLength(SimAddr arr) const
{
    return static_cast<std::int32_t>(loadU32(arr + 8));
}

SimAddr
Heap::elemAddr(SimAddr arr, std::int32_t index) const
{
    return arr + 12
        + static_cast<SimAddr>(index)
        * arrayElemSize(arrayKindOf(arr));
}

bool
Heap::validRef(SimAddr addr) const
{
    return addr >= seg::kHeap + 16 && addr < seg::kHeap + cursor_;
}

std::uint64_t
Heap::contentHash() const
{
    std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
    for (std::size_t i = 0; i < cursor_; ++i) {
        h ^= storage_[i];
        h *= 1099511628211ull;  // FNV prime
    }
    return h;
}

void
Heap::clearRange(std::size_t off, std::size_t bytes)
{
    std::memset(&storage_[off], 0, bytes);
    for (std::size_t o = off; o < off + bytes; o += 4)
        setRefBit(o, false);
}

void
Heap::writeFiller(std::size_t off, std::size_t size)
{
    const SimAddr addr = seg::kHeap + off;
    if (size >= 16) {
        storeU32(addr, makeHeader(0, true, ArrayKind::Byte));
        storeU32(addr + 4, 0);
        storeU32(addr + 8, static_cast<std::uint32_t>(size - 12));
    } else {
        storeU32(addr, makeHeader(kGcFillerClassId, false,
                                  ArrayKind::Int));
        storeU32(addr + 4, 0);
    }
}

void
Heap::setFreeBlocks(std::vector<FreeBlock> blocks)
{
    for (const FreeBlock &b : blocks) {
        clearRange(b.off, b.size);
        writeFiller(b.off, b.size);
    }
    freeList_ = std::move(blocks);
}

void
Heap::resetWindow(std::size_t base, std::size_t cursor,
                  std::size_t limit)
{
    if (base < 16 || cursor < base || limit < cursor
        || limit > storage_.size())
        throw VmError("bad heap allocation window");
    allocBase_ = base;
    cursor_ = cursor;
    allocLimit_ = limit;
    freeList_.clear();
}

void
Heap::rawCopy(std::size_t dst_off, std::size_t src_off,
              std::size_t bytes)
{
    std::memmove(&storage_[dst_off], &storage_[src_off], bytes);
}

} // namespace jrs
