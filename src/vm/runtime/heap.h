/**
 * @file
 * The simulated Java heap.
 *
 * A bump-allocated arena addressed by simulated addresses in
 * seg::kHeap. Object layout (little-endian, 4-byte slots):
 *
 *   objects:  [0] header (klass id, flags)   [4] lockword
 *             [8...] instance fields, 4 bytes each
 *   arrays:   [0] header                      [4] lockword
 *             [8] length                      [12...] elements
 *
 * Collection is pluggable (src/gc/): with no collector configured the
 * arena is the paper's plain bump allocator, bit-identical to the
 * original GC-less design. A collector adds three capabilities the
 * arena exposes here:
 *
 *  - a per-word ref bitmap maintained at store time (object fields are
 *    untyped in ClassDef; the typed access opcodes tell us which slots
 *    hold references), so precise tracing never guesses;
 *  - a first-fit free list for the non-moving mark-sweep collector.
 *    Freed runs are rewritten as walkable filler pseudo-objects so a
 *    linear sweep can always parse the arena;
 *  - an allocation window for the semispace copying collector (each
 *    space is half the arena; resetWindow() flips them).
 */
#ifndef JRS_VM_RUNTIME_HEAP_H
#define JRS_VM_RUNTIME_HEAP_H

#include <cstdint>
#include <vector>

#include "isa/address_map.h"
#include "vm/bytecode/class_def.h"
#include "vm/bytecode/opcode.h"
#include "vm/runtime/value.h"
#include "vm/runtime/vm_error.h"

namespace jrs {

/** Pseudo class-id base for builtin exception objects. */
inline constexpr ClassId kBuiltinExClassBase = 0xff00;

/** Pseudo class-id of the GC's 8-byte free-space filler object. */
inline constexpr ClassId kGcFillerClassId = 0xfffe;

/** Default arena capacity (the original fixed size, now tunable). */
inline constexpr std::size_t kDefaultHeapBytes = 64u << 20;

/** Class id for a builtin exception kind. */
inline ClassId
builtinExClassId(BuiltinEx kind)
{
    return static_cast<ClassId>(kBuiltinExClassBase
                                + static_cast<ClassId>(kind));
}

/** The simulated heap arena. */
class Heap {
  public:
    /** @param capacity_bytes Arena capacity (default 64 MiB). */
    explicit Heap(std::size_t capacity_bytes = kDefaultHeapBytes);

    // --- allocation ----------------------------------------------------

    /** Allocate a zeroed object with @p num_fields 4-byte slots. */
    SimAddr allocObject(ClassId cls, std::uint16_t num_fields);

    /** Allocate a zeroed array. Throws VmError on negative length. */
    SimAddr allocArray(ArrayKind kind, std::int32_t length);

    /**
     * Bytes handed out so far (Table 1 accounting). Monotonic even
     * when a collector recycles memory: it counts every allocation's
     * aligned size plus the 16-byte reserved prefix, which makes it
     * bit-identical to the bump cursor when no collector runs.
     */
    std::size_t bytesAllocated() const { return totalAllocated_; }

    /** Number of allocations performed. */
    std::uint64_t allocationCount() const { return allocCount_; }

    /** Arena capacity in bytes. */
    std::size_t capacity() const { return storage_.size(); }

    /** True when an allocation of @p bytes would succeed right now. */
    bool canAllocate(std::size_t bytes) const;

    // --- raw access (callers emit the trace events) ---------------------

    std::uint32_t loadU32(SimAddr addr) const;
    void storeU32(SimAddr addr, std::uint32_t v);
    std::uint16_t loadU16(SimAddr addr) const;
    void storeU16(SimAddr addr, std::uint16_t v);
    std::uint8_t loadU8(SimAddr addr) const;
    void storeU8(SimAddr addr, std::uint8_t v);

    /**
     * Store a 4-byte slot and record whether it now holds a reference
     * (slot-encoded heap offset). The per-word ref bitmap is what
     * makes precise GC possible over untyped object fields: the typed
     * store sites (PutFieldA / AAstore / StRef / ref arraycopy) pass
     * @p is_ref = true, every other 4-byte store clears the bit.
     */
    void storeSlot(SimAddr addr, std::uint32_t bits, bool is_ref) {
        storeU32(addr, bits);
        setRefBit(offsetOf(addr), is_ref);
    }

    /** True when the 4-byte slot at @p addr last held a reference. */
    bool refSlot(SimAddr addr) const {
        return refBitAt(offsetOf(addr));
    }

    // --- object helpers -------------------------------------------------

    /** Class id of the object at @p obj. */
    ClassId klassOf(SimAddr obj) const;

    /** True when @p obj is an array. */
    bool isArray(SimAddr obj) const;

    /** Element kind of the array at @p arr. */
    ArrayKind arrayKindOf(SimAddr arr) const;

    /** Length of the array at @p arr. */
    std::int32_t arrayLength(SimAddr arr) const;

    /** Simulated address of the lockword of @p obj. */
    static SimAddr lockwordAddr(SimAddr obj) { return obj + 4; }

    /** Read/write the lockword. */
    std::uint32_t lockword(SimAddr obj) const { return loadU32(obj + 4); }
    void setLockword(SimAddr obj, std::uint32_t v) { storeU32(obj + 4, v); }

    /** Simulated address of instance-field slot @p slot. */
    static SimAddr fieldAddr(SimAddr obj, std::uint16_t slot) {
        return obj + 8 + 4u * slot;
    }

    /** Simulated address of array element @p index. */
    SimAddr elemAddr(SimAddr arr, std::int32_t index) const;

    /**
     * Bounds-checked element index validation; returns false when the
     * access must raise ArrayIndexOutOfBounds.
     */
    bool indexInBounds(SimAddr arr, std::int32_t index) const {
        return index >= 0 && index < arrayLength(arr);
    }

    /** True when @p addr lies within the allocated part of the arena. */
    bool validRef(SimAddr addr) const;

    /**
     * FNV-1a hash of the allocated part of the arena. The allocator is
     * a deterministic bump pointer, so two runs that perform the same
     * allocations and stores in the same order produce the same hash —
     * the heap component of jrs::check's VmStateDigest. With a
     * collector recycling addresses this hash covers dead and filler
     * bytes too; jrs::check switches to the reachability-ordered live
     * digest (src/gc/live_digest.h) whenever a collector is enabled.
     */
    std::uint64_t contentHash() const;

    // --- collector support (src/gc/) ------------------------------------

    /** One reusable run of free bytes, as (arena offset, size). */
    struct FreeBlock {
        std::uint32_t off = 0;
        std::uint32_t size = 0;
    };

    /**
     * Install the sweep's free list. Every block is zeroed (memory and
     * ref bits) and rewritten as a walkable filler pseudo-object: a
     * byte array for runs >= 16 bytes, an 8-byte kGcFillerClassId
     * object for the minimum run. Blocks must be sorted, 8-aligned,
     * and disjoint.
     */
    void setFreeBlocks(std::vector<FreeBlock> blocks);

    /** Current free list (sweep diagnostics / tests). */
    const std::vector<FreeBlock> &freeBlocks() const { return freeList_; }

    /**
     * Point allocation at [@p cursor, @p limit) within the arena (the
     * semispace flip). Drops the free list; @p base marks where a
     * linear walk of the active space starts.
     */
    void resetWindow(std::size_t base, std::size_t cursor,
                     std::size_t limit);

    /** First offset of the active allocation window. */
    std::size_t windowBase() const { return allocBase_; }

    /** One past the last allocated offset of the active window. */
    std::size_t windowCursor() const { return cursor_; }

    /** Exclusive end of the active allocation window. */
    std::size_t windowLimit() const { return allocLimit_; }

    /** Raw byte move within the arena (GC relocation; no events). */
    void rawCopy(std::size_t dst_off, std::size_t src_off,
                 std::size_t bytes);

    /** Ref bit of the 4-byte word at arena offset @p off. */
    bool refBitAt(std::size_t off) const {
        const std::size_t w = off >> 2;
        return (refBits_[w >> 6] >> (w & 63)) & 1u;
    }

    /** Set/clear the ref bit of the word at arena offset @p off. */
    void setRefBit(std::size_t off, bool is_ref) {
        const std::size_t w = off >> 2;
        const std::uint64_t mask = std::uint64_t{1} << (w & 63);
        if (is_ref)
            refBits_[w >> 6] |= mask;
        else
            refBits_[w >> 6] &= ~mask;
    }

    /** Zero @p bytes of memory and ref bits at arena offset @p off. */
    void clearRange(std::size_t off, std::size_t bytes);

  private:
    std::size_t offsetOf(SimAddr addr) const;
    SimAddr bump(std::size_t bytes);
    void writeFiller(std::size_t off, std::size_t size);

    std::vector<std::uint8_t> storage_;
    std::vector<std::uint64_t> refBits_;
    std::size_t cursor_;
    std::size_t allocBase_ = 16;
    std::size_t allocLimit_;
    std::size_t totalAllocated_ = 16;
    std::vector<FreeBlock> freeList_;
    std::uint64_t allocCount_ = 0;
};

} // namespace jrs

#endif // JRS_VM_RUNTIME_HEAP_H
