/**
 * @file
 * The simulated Java heap.
 *
 * A bump-allocated arena addressed by simulated addresses in
 * seg::kHeap. Object layout (little-endian, 4-byte slots):
 *
 *   objects:  [0] header (klass id, flags)   [4] lockword
 *             [8...] instance fields, 4 bytes each
 *   arrays:   [0] header                      [4] lockword
 *             [8] length                      [12...] elements
 *
 * No garbage collector — the paper explicitly excludes GC from its
 * scope, and all workloads fit comfortably in the arena.
 */
#ifndef JRS_VM_RUNTIME_HEAP_H
#define JRS_VM_RUNTIME_HEAP_H

#include <cstdint>
#include <vector>

#include "isa/address_map.h"
#include "vm/bytecode/class_def.h"
#include "vm/bytecode/opcode.h"
#include "vm/runtime/value.h"
#include "vm/runtime/vm_error.h"

namespace jrs {

/** Pseudo class-id base for builtin exception objects. */
inline constexpr ClassId kBuiltinExClassBase = 0xff00;

/** Class id for a builtin exception kind. */
inline ClassId
builtinExClassId(BuiltinEx kind)
{
    return static_cast<ClassId>(kBuiltinExClassBase
                                + static_cast<ClassId>(kind));
}

/** The simulated heap arena. */
class Heap {
  public:
    /** @param capacity_bytes Arena capacity (default 64 MiB). */
    explicit Heap(std::size_t capacity_bytes = 64u << 20);

    // --- allocation ----------------------------------------------------

    /** Allocate a zeroed object with @p num_fields 4-byte slots. */
    SimAddr allocObject(ClassId cls, std::uint16_t num_fields);

    /** Allocate a zeroed array. Throws VmError on negative length. */
    SimAddr allocArray(ArrayKind kind, std::int32_t length);

    /** Bytes handed out so far (Table 1 accounting). */
    std::size_t bytesAllocated() const { return cursor_; }

    /** Number of allocations performed. */
    std::uint64_t allocationCount() const { return allocCount_; }

    // --- raw access (callers emit the trace events) ---------------------

    std::uint32_t loadU32(SimAddr addr) const;
    void storeU32(SimAddr addr, std::uint32_t v);
    std::uint16_t loadU16(SimAddr addr) const;
    void storeU16(SimAddr addr, std::uint16_t v);
    std::uint8_t loadU8(SimAddr addr) const;
    void storeU8(SimAddr addr, std::uint8_t v);

    // --- object helpers -------------------------------------------------

    /** Class id of the object at @p obj. */
    ClassId klassOf(SimAddr obj) const;

    /** True when @p obj is an array. */
    bool isArray(SimAddr obj) const;

    /** Element kind of the array at @p arr. */
    ArrayKind arrayKindOf(SimAddr arr) const;

    /** Length of the array at @p arr. */
    std::int32_t arrayLength(SimAddr arr) const;

    /** Simulated address of the lockword of @p obj. */
    static SimAddr lockwordAddr(SimAddr obj) { return obj + 4; }

    /** Read/write the lockword. */
    std::uint32_t lockword(SimAddr obj) const { return loadU32(obj + 4); }
    void setLockword(SimAddr obj, std::uint32_t v) { storeU32(obj + 4, v); }

    /** Simulated address of instance-field slot @p slot. */
    static SimAddr fieldAddr(SimAddr obj, std::uint16_t slot) {
        return obj + 8 + 4u * slot;
    }

    /** Simulated address of array element @p index. */
    SimAddr elemAddr(SimAddr arr, std::int32_t index) const;

    /**
     * Bounds-checked element index validation; returns false when the
     * access must raise ArrayIndexOutOfBounds.
     */
    bool indexInBounds(SimAddr arr, std::int32_t index) const {
        return index >= 0 && index < arrayLength(arr);
    }

    /** True when @p addr lies within the allocated part of the arena. */
    bool validRef(SimAddr addr) const;

    /**
     * FNV-1a hash of the allocated part of the arena. The allocator is
     * a deterministic bump pointer, so two runs that perform the same
     * allocations and stores in the same order produce the same hash —
     * the heap component of jrs::check's VmStateDigest.
     */
    std::uint64_t contentHash() const;

  private:
    std::size_t offsetOf(SimAddr addr) const;
    SimAddr bump(std::size_t bytes);

    std::vector<std::uint8_t> storage_;
    std::size_t cursor_;
    std::uint64_t allocCount_ = 0;
};

} // namespace jrs

#endif // JRS_VM_RUNTIME_HEAP_H
