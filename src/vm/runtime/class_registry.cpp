#include "vm/runtime/class_registry.h"

namespace jrs {

ClassRegistry::ClassRegistry(const Program &prog, Heap &heap)
    : prog_(&prog)
{
    statics_.resize(prog.statics.size());
    for (std::size_t i = 0; i < prog.statics.size(); ++i) {
        switch (prog.statics[i].type) {
          case VType::Float:
            statics_[i] = Value::makeFloat(0.0f);
            break;
          case VType::Ref:
            statics_[i] = Value::null();
            break;
          default:
            statics_[i] = Value::makeInt(0);
            break;
        }
    }

    stringRefs_.reserve(prog.stringLiterals.size());
    for (const std::string &s : prog.stringLiterals) {
        const SimAddr arr = heap.allocArray(
            ArrayKind::Char, static_cast<std::int32_t>(s.size()));
        for (std::size_t i = 0; i < s.size(); ++i) {
            heap.storeU16(heap.elemAddr(arr, static_cast<std::int32_t>(i)),
                          static_cast<std::uint16_t>(
                              static_cast<unsigned char>(s[i])));
        }
        stringRefs_.push_back(arr);
    }

    classObjects_.reserve(prog.classes.size());
    for (const auto &c : prog.classes)
        classObjects_.push_back(heap.allocObject(c.id, 0));

    metadataBytes_ = prog.totalBytecodeBytes()
        + 4 * prog.statics.size();
    for (const auto &c : prog.classes)
        metadataBytes_ += 16 + 4 * c.vtable.size();
}

MethodId
ClassRegistry::virtualLookup(ClassId cls, std::uint16_t slot) const
{
    const ClassDef &c = klass(cls);
    if (slot >= c.vtable.size() || c.vtable[slot] == kNoMethod)
        throw VmError("virtual dispatch: bad vtable slot in "
                      + c.name);
    return c.vtable[slot];
}

Value
ClassRegistry::getStatic(std::uint16_t slot) const
{
    if (slot >= statics_.size())
        throw VmError("bad static slot");
    return statics_[slot];
}

void
ClassRegistry::setStatic(std::uint16_t slot, Value v)
{
    if (slot >= statics_.size())
        throw VmError("bad static slot");
    statics_[slot] = v;
}

SimAddr
ClassRegistry::classObject(ClassId cls) const
{
    if (cls >= classObjects_.size())
        throw VmError("bad class id for class object");
    return classObjects_[cls];
}

SimAddr
ClassRegistry::stringRef(std::uint16_t index) const
{
    if (index >= stringRefs_.size())
        throw VmError("bad string literal index");
    return stringRefs_[index];
}

} // namespace jrs
