#include "sweep/sweep.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "obs/clock.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "support/statistics.h"
#include "sweep/parallel.h"
#include "vm/runtime/vm_error.h"

namespace jrs::sweep {

namespace {

using obs::jsonEscape;
using obs::jsonNumber;
using obs::secondsSince;

/** Compact metric formatting for toTable(). */
std::string
metricCell(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.5g", v);
    return buf;
}

/**
 * Replay-side fan-out with per-subscriber fault isolation: a
 * subscriber whose sink throws is detached with the error recorded,
 * and delivery to the others continues.
 */
class GuardedFanout : public TraceSink {
  public:
    struct Subscriber {
        TraceSink *sink = nullptr;
        bool dead = false;
        std::string error;
    };

    explicit GuardedFanout(std::vector<Subscriber> subscribers)
        : subs_(std::move(subscribers)) {}

    void onEvent(const TraceEvent &ev) override {
        ++delivered_;
        for (Subscriber &s : subs_) {
            if (s.dead)
                continue;
            try {
                s.sink->onEvent(ev);
            } catch (const std::exception &e) {
                kill(s, e.what());
            } catch (...) {
                kill(s, "unknown exception");
            }
        }
    }

    void onFinish() override {
        for (Subscriber &s : subs_) {
            if (s.dead)
                continue;
            try {
                s.sink->onFinish();
            } catch (const std::exception &e) {
                kill(s, e.what());
            } catch (...) {
                kill(s, "unknown exception");
            }
        }
    }

    const std::vector<Subscriber> &subscribers() const { return subs_; }

  private:
    void kill(Subscriber &s, const char *what) {
        s.dead = true;
        s.error = "sink failed at event "
            + std::to_string(delivered_) + ": " + what;
    }

    std::vector<Subscriber> subs_;
    std::uint64_t delivered_ = 0;
};

} // namespace

double
PointResult::metric(const std::string &name) const
{
    for (const Metric &m : metrics) {
        if (m.name == name)
            return m.value;
    }
    return std::nan("");
}

const PointResult *
SweepResult::find(const std::string &label) const
{
    for (const PointResult &p : points) {
        if (p.label == label)
            return &p;
    }
    return nullptr;
}

bool
SweepResult::allOk() const
{
    for (const PointResult &p : points) {
        if (!p.ok)
            return false;
    }
    return true;
}

Table
SweepResult::toTable() const
{
    std::vector<std::string> metricNames;
    for (const PointResult &p : points) {
        for (const Metric &m : p.metrics) {
            bool seen = false;
            for (const std::string &n : metricNames)
                seen = seen || n == m.name;
            if (!seen)
                metricNames.push_back(m.name);
        }
    }
    std::vector<std::string> headers{"point", "status", "events",
                                     "seconds"};
    headers.insert(headers.end(), metricNames.begin(),
                   metricNames.end());
    Table t(std::move(headers));
    for (const PointResult &p : points) {
        std::vector<std::string> row{
            p.label,
            p.ok ? "ok" : "FAIL: " + p.error,
            withCommas(p.traceEvents),
            fixed(p.seconds, 3),
        };
        for (const std::string &n : metricNames) {
            const double v = p.metric(n);
            row.push_back(std::isnan(v) ? "-" : metricCell(v));
        }
        t.addRow(std::move(row));
    }
    return t;
}

std::string
SweepResult::toJson() const
{
    std::string out;
    out += "{\n  \"schema\": \"jrs-sweep-result-v1\",\n";
    out += "  \"jobs\": " + std::to_string(jobs) + ",\n";
    out += "  \"wall_seconds\": " + jsonNumber(wallSeconds) + ",\n";
    out += "  \"traces\": {\"recordings\": "
        + std::to_string(traces.recordings) + ", \"memory_hits\": "
        + std::to_string(traces.memoryHits) + ", \"disk_loads\": "
        + std::to_string(traces.diskLoads)
        + ", \"translate_build_ns\": "
        + std::to_string(traces.translateBuildNs) + "},\n";
    if (sharedCacheUsed) {
        out += "  \"shared_cache\": {\"lookups\": "
            + std::to_string(shared.lookups) + ", \"hits\": "
            + std::to_string(shared.sharedHits) + ", \"misses\": "
            + std::to_string(shared.misses) + ", \"contended\": "
            + std::to_string(shared.contended) + ", \"deferred\": "
            + std::to_string(shared.deferred) + ", \"installs\": "
            + std::to_string(shared.installs) + ", \"evictions\": "
            + std::to_string(shared.evictions) + ", \"build_ns\": "
            + std::to_string(shared.buildNs) + ", \"build_ns_saved\": "
            + std::to_string(shared.buildNsSaved)
            + ", \"live_entries\": "
            + std::to_string(shared.liveEntries) + ", \"live_bytes\": "
            + std::to_string(shared.liveBytes) + "},\n";
    }
    out += "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointResult &p = points[i];
        out += "    {\"label\": \"" + jsonEscape(p.label)
            + "\", \"trace\": \"" + jsonEscape(p.traceKey)
            + "\", \"ok\": " + (p.ok ? "true" : "false");
        if (!p.ok)
            out += ", \"error\": \"" + jsonEscape(p.error) + "\"";
        out += ", \"events\": " + std::to_string(p.traceEvents)
            + ", \"seconds\": " + jsonNumber(p.seconds)
            + ", \"metrics\": {";
        for (std::size_t m = 0; m < p.metrics.size(); ++m) {
            if (m != 0)
                out += ", ";
            out += "\"" + jsonEscape(p.metrics[m].name)
                + "\": " + jsonNumber(p.metrics[m].value);
        }
        out += "}}";
        out += i + 1 < points.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
SweepResult::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw VmError("cannot write sweep JSON: " + path);
    const std::string body = toJson();
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (std::fclose(f) != 0 || !ok)
        throw VmError("cannot write sweep JSON: " + path);
}

SweepEngine::SweepEngine(SweepOptions options)
    : options_(std::move(options))
{
    cache_ = options_.cache != nullptr
        ? options_.cache
        : std::make_shared<TraceCache>(options_.cacheDir);
    if (options_.sharedCache != nullptr)
        cache_->setSharedCache(options_.sharedCache);
}

SweepResult
SweepEngine::run(const std::vector<SweepPoint> &grid)
{
    for (const SweepPoint &p : grid) {
        if (!p.makeSink || !p.extract)
            throw VmError("SweepPoint '" + p.label
                          + "' lacks a sink factory or extractor");
    }

    const auto t0 = std::chrono::steady_clock::now();
    const TraceCache::Stats before = cache_->stats();
    const SharedCacheStats sharedBefore = options_.sharedCache != nullptr
        ? options_.sharedCache->stats()
        : SharedCacheStats{};
    obs::ScopedSpan sweepSpan("sweep.run", "sweep");
    sweepSpan.arg("points", std::to_string(grid.size()));

    SweepResult result;
    result.points.resize(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        result.points[i].label = grid[i].label;
        result.points[i].traceKey = grid[i].key.str();
    }

    // Group points by stream so each trace is obtained and replayed
    // exactly once per sweep; group order follows first appearance.
    std::vector<std::vector<std::size_t>> groups;
    {
        std::map<std::string, std::size_t> groupOf;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            auto [it, inserted] = groupOf.try_emplace(
                result.points[i].traceKey, groups.size());
            if (inserted)
                groups.emplace_back();
            groups[it->second].push_back(i);
        }
    }

    auto fail = [&](std::size_t idx, const std::string &why) {
        result.points[idx].ok = false;
        result.points[idx].error = why;
    };

    // Progress + sweep.* metric bookkeeping, shared across workers.
    std::mutex progressMu;
    std::mutex observerMu;
    std::size_t pointsDone = 0;
    std::size_t groupsDone = 0;
    auto finishGroup = [&](const std::vector<std::size_t> &members) {
        std::lock_guard<std::mutex> lock(progressMu);
        pointsDone += members.size();
        ++groupsDone;
        if (obs::enabled()) {
            obs::MetricRegistry &reg = obs::metrics();
            std::size_t okCount = 0;
            for (const std::size_t idx : members) {
                if (result.points[idx].ok)
                    ++okCount;
                reg.histogram("sweep.point_seconds")
                    .record(result.points[idx].seconds);
            }
            reg.counter("sweep.points.done").add(okCount);
            reg.counter("sweep.points.failed")
                .add(members.size() - okCount);
            reg.counter("sweep.groups.done").add(1);
            reg.gauge("sweep.queue_depth")
                .set(static_cast<double>(groups.size() - groupsDone));
        }
        if (options_.onProgress) {
            const TraceCache::Stats now = cache_->stats();
            SweepProgress pr;
            pr.pointsDone = pointsDone;
            pr.pointsTotal = grid.size();
            pr.groupsDone = groupsDone;
            pr.groupsTotal = groups.size();
            pr.traces.recordings = now.recordings - before.recordings;
            pr.traces.memoryHits = now.memoryHits - before.memoryHits;
            pr.traces.diskLoads = now.diskLoads - before.diskLoads;
            pr.traces.translateBuildNs =
                now.translateBuildNs - before.translateBuildNs;
            options_.onProgress(pr);
        }
    };

    auto runGroup = [&](const std::vector<std::size_t> &members) {
        const auto g0 = std::chrono::steady_clock::now();

        // Obtain the stream first (recording on first use, loading a
        // prior recording from disk, or waiting on another worker):
        // sink factories receive the recording, so they can only be
        // built once it exists.
        const std::string &keyStr = result.points[members[0]].traceKey;
        std::shared_ptr<const RecordedRun> run;
        try {
            obs::ScopedSpan span("sweep.acquire", "sweep");
            span.arg("trace", keyStr);
            run = cache_->get(grid[members[0]].key);
        } catch (const std::exception &e) {
            for (const std::size_t idx : members) {
                if (result.points[idx].error.empty())
                    fail(idx,
                         std::string("recording failed: ") + e.what());
            }
            finishGroup(members);
            return;
        }

        // Build each member's sink; a throwing factory poisons only
        // that member.
        std::vector<std::unique_ptr<TraceSink>> sinks(members.size());
        std::vector<GuardedFanout::Subscriber> subs;
        std::vector<std::size_t> subMember;
        for (std::size_t m = 0; m < members.size(); ++m) {
            try {
                sinks[m] = grid[members[m]].makeSink(*run);
                if (sinks[m] == nullptr)
                    throw VmError("sink factory returned null");
                subs.push_back({sinks[m].get(), false, ""});
                subMember.push_back(m);
            } catch (const std::exception &e) {
                fail(members[m],
                     std::string("sink factory failed: ") + e.what());
            }
        }

        // The optional group observer rides the fan-out after every
        // point sink; its failures never reach the points.
        std::unique_ptr<TraceSink> observer;
        if (options_.groupObserver) {
            try {
                observer = options_.groupObserver(
                    grid[members[0]].key, *run);
            } catch (const std::exception &) {
                observer.reset();
            }
            if (observer != nullptr)
                subs.push_back({observer.get(), false, ""});
        }
        GuardedFanout fanout(std::move(subs));

        // Replay into the group's sinks. Acquire and replay are
        // separate passes so a span view shows both stages on every
        // worker lane; the events delivered are identical either way.
        {
            obs::ScopedSpan span("sweep.replay", "sweep");
            span.arg("trace", keyStr);
            span.arg("sinks",
                     std::to_string(fanout.subscribers().size()));
            run->trace->replay(fanout);
        }
        const double shared = secondsSince(g0)
            / static_cast<double>(members.size());

        for (std::size_t s = 0; s < subMember.size(); ++s) {
            const std::size_t m = subMember[s];
            const std::size_t idx = members[m];
            PointResult &slot = result.points[idx];
            slot.traceEvents = run->trace->size();
            const auto e0 = std::chrono::steady_clock::now();
            if (fanout.subscribers()[s].dead) {
                fail(idx, fanout.subscribers()[s].error);
            } else {
                try {
                    obs::ScopedSpan span("sweep.extract", "sweep");
                    span.arg("label", slot.label);
                    slot.metrics = grid[idx].extract(*sinks[m], *run);
                    slot.ok = true;
                } catch (const std::exception &e) {
                    fail(idx,
                         std::string("extract failed: ") + e.what());
                }
            }
            slot.seconds = shared + secondsSince(e0);
        }

        if (observer != nullptr && options_.groupObserved
            && !fanout.subscribers().back().dead) {
            std::lock_guard<std::mutex> lock(observerMu);
            options_.groupObserved(grid[members[0]].key, *run,
                                   *observer);
        }
        finishGroup(members);
    };

    const unsigned workers = resolveJobs(options_.jobs, groups.size());

    if (obs::enabled())
        obs::metrics()
            .gauge("sweep.queue_depth")
            .set(static_cast<double>(groups.size()));

    parallelForEach(workers, groups.size(),
                    [&](std::size_t i, std::size_t) {
                        runGroup(groups[i]);
                    });

    result.jobs = workers;
    result.wallSeconds = secondsSince(t0);
    const TraceCache::Stats after = cache_->stats();
    result.traces.recordings = after.recordings - before.recordings;
    result.traces.memoryHits = after.memoryHits - before.memoryHits;
    result.traces.diskLoads = after.diskLoads - before.diskLoads;
    result.traces.translateBuildNs =
        after.translateBuildNs - before.translateBuildNs;
    if (options_.sharedCache != nullptr) {
        result.sharedCacheUsed = true;
        const SharedCacheStats s = options_.sharedCache->stats();
        result.shared.lookups = s.lookups - sharedBefore.lookups;
        result.shared.sharedHits = s.sharedHits - sharedBefore.sharedHits;
        result.shared.misses = s.misses - sharedBefore.misses;
        result.shared.contended = s.contended - sharedBefore.contended;
        result.shared.deferred = s.deferred - sharedBefore.deferred;
        result.shared.installs = s.installs - sharedBefore.installs;
        result.shared.evictions = s.evictions - sharedBefore.evictions;
        result.shared.bytesEvicted =
            s.bytesEvicted - sharedBefore.bytesEvicted;
        result.shared.buildNs = s.buildNs - sharedBefore.buildNs;
        result.shared.buildNsSaved =
            s.buildNsSaved - sharedBefore.buildNsSaved;
        result.shared.liveEntries = s.liveEntries;
        result.shared.liveBytes = s.liveBytes;
    }
    return result;
}

} // namespace jrs::sweep
