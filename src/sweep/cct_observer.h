/**
 * @file
 * --cct-json/--flame support for sweep-engine tools: ride each trace
 * group's replay with a calling-context-tree observer.
 *
 * attachCctObserver registers (via sweep/observers.h, so it composes
 * with attachPerfObserver) a per-group CctPipeline whose tree lands
 * in a CctReportSet keyed by the group's TraceKey. The observer rides
 * the replay fan-out after every point sink, so the sweep's own
 * metrics stay bit-identical with or without it (the same guarantee
 * tests/test_perf.cpp asserts for the perf observer; test_prof.cpp
 * asserts it for this one).
 */
#ifndef JRS_SWEEP_CCT_OBSERVER_H
#define JRS_SWEEP_CCT_OBSERVER_H

#include <memory>

#include "arch/pipeline/pipeline.h"
#include "prof/cct.h"
#include "sweep/observers.h"
#include "sweep/sweep.h"

namespace jrs::sweep {

/**
 * See file comment. Groups whose recording carries no method map are
 * skipped. @p reports must outlive the sweep. Call only when the user
 * asked for CCT output (one extra replay consumer per group).
 */
inline void
attachCctObserver(SweepOptions &opts, prof::CctReportSet &reports)
{
    addGroupObserver(
        opts,
        [](const TraceKey &, const RecordedRun &run)
            -> std::unique_ptr<TraceSink> {
            if (run.methods == nullptr)
                return nullptr;
            return std::make_unique<prof::CctPipeline>(
                PipelineConfig{}, run.methods);
        },
        [&reports](const TraceKey &key, const RecordedRun &,
                   TraceSink &sink) {
            auto &cct = static_cast<prof::CctPipeline &>(sink);
            reports.add(key.str(), cct.cct());
        });
}

} // namespace jrs::sweep

#endif // JRS_SWEEP_CCT_OBSERVER_H
