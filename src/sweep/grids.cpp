#include "sweep/grids.h"

#include <algorithm>

#include "arch/bpred/btb.h"
#include "arch/cache/cache.h"
#include "support/statistics.h"

namespace jrs::sweep {

namespace {

/** Workloads in suite order; hello carries little signal for the
    steady-state cache figures, so most grids skip it (as the paper's
    figures do) while fig08 keeps it, matching the original bench. */
std::vector<const WorkloadInfo *>
gridSuite(bool include_hello)
{
    std::vector<const WorkloadInfo *> out;
    for (const WorkloadInfo &w : allWorkloads()) {
        if (!include_hello && std::string(w.name) == "hello")
            continue;
        out.push_back(&w);
    }
    return out;
}

std::vector<Metric>
cacheMetrics(const CacheSink &sink)
{
    return {
        {"icache_miss_pct",
         100.0 * sink.icache().stats().missRate()},
        {"dcache_miss_pct",
         100.0 * sink.dcache().stats().missRate()},
    };
}

SweepPoint
cachePoint(std::string label, TraceKey key, CacheConfig icfg,
           CacheConfig dcfg)
{
    return makePoint<CacheSink>(
        std::move(label), std::move(key),
        [icfg, dcfg] {
            return std::make_unique<CacheSink>(icfg, dcfg);
        },
        [](const CacheSink &sink, const RecordedRun &) {
            return cacheMetrics(sink);
        });
}

/** Indirect-target misprediction across several BTB capacities in one
    pass (the abl_btb_size measurement). */
class BtbSizeSweepSink : public TraceSink {
  public:
    BtbSizeSweepSink() {
        for (const std::size_t s : kBtbSizes)
            btbs_.emplace_back(s);
        misses_.assign(btbs_.size(), 0);
    }

    void onEvent(const TraceEvent &ev) override {
        if (ev.kind != NKind::IndirectJump
            && ev.kind != NKind::IndirectCall) {
            return;
        }
        ++indirects_;
        for (std::size_t i = 0; i < btbs_.size(); ++i) {
            if (btbs_[i].predict(ev.pc) != ev.target)
                ++misses_[i];
            btbs_[i].update(ev.pc, ev.target);
        }
    }

    std::vector<Metric> metrics() const {
        std::vector<Metric> out;
        out.push_back(
            {"indirects", static_cast<double>(indirects_)});
        for (std::size_t i = 0; i < btbs_.size(); ++i) {
            out.push_back({btbMetricName(kBtbSizes[i]),
                           percent(misses_[i], indirects_)});
        }
        return out;
    }

  private:
    std::vector<Btb> btbs_;
    std::vector<std::uint64_t> misses_;
    std::uint64_t indirects_ = 0;
};

/**
 * Collector-work profile of one stream, derived purely from the
 * Phase::Gc event tags: a collection is one Call at kGcPc (every
 * collector brackets its pause in Call/Ret), and the pause length is
 * the number of Gc events between them. Works identically on live,
 * replayed, and disk-loaded streams.
 */
class GcPhaseSink : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override {
        ++total_;
        if (ev.phase != Phase::Gc)
            return;
        ++gcEvents_;
        if (ev.kind == NKind::Call)
            pauses_.push_back(0);
        if (!pauses_.empty())
            ++pauses_.back();
    }

    std::vector<Metric> metrics() const {
        std::uint64_t maxPause = 0;
        for (const std::uint64_t p : pauses_)
            maxPause = std::max(maxPause, p);
        return {
            {"collections", static_cast<double>(pauses_.size())},
            {"gc_events", static_cast<double>(gcEvents_)},
            {"gc_event_pct", percent(gcEvents_, total_)},
            {"max_pause_events", static_cast<double>(maxPause)},
        };
    }

  private:
    std::uint64_t total_ = 0;
    std::uint64_t gcEvents_ = 0;
    std::vector<std::uint64_t> pauses_;  ///< events per collection
};

/**
 * Translation-work profile of one stream, derived purely from the
 * phase tags: under a bounded code cache every retranslation shows up
 * as extra Translate-phase events and evicted methods run interpreted
 * until recompiled, so the Translate/Interpret shares are the
 * retranslation overhead. Works identically on live, replayed, and
 * disk-loaded streams.
 */
class TranslatePhaseSink : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override {
        ++total_;
        switch (ev.phase) {
        case Phase::Translate: ++translate_; break;
        case Phase::Interpret: ++interp_; break;
        case Phase::NativeExec: ++native_; break;
        default: break;
        }
    }

    /**
     * Stream-phase shares, plus the recorded run's end-of-run
     * code-cache free-extent accounting (the fragmentation gauge:
     * free extents per free KiB, matching
     * ExtentAllocator::fragmentation). The free-extent numbers ride
     * the recording's meta sidecar, so disk-loaded streams report
     * the same values as the live run.
     */
    std::vector<Metric> metrics(const RecordedRun &run) const {
        const double freeB =
            static_cast<double>(run.result.codeCacheFreeBytes);
        const double freeX =
            static_cast<double>(run.result.codeCacheFreeExtents);
        return {
            {"total_events", static_cast<double>(total_)},
            {"translate_events", static_cast<double>(translate_)},
            {"translate_pct", percent(translate_, total_)},
            {"interp_pct", percent(interp_, total_)},
            {"native_pct", percent(native_, total_)},
            {"free_code_bytes", freeB},
            {"free_code_extents", freeX},
            {"fragmentation", freeB == 0.0 ? 0.0
                                           : freeX / (freeB / 1024.0)},
        };
    }

  private:
    std::uint64_t total_ = 0;
    std::uint64_t translate_ = 0;
    std::uint64_t interp_ = 0;
    std::uint64_t native_ = 0;
};

} // namespace

std::string
btbMetricName(std::size_t entries)
{
    return "btb" + std::to_string(entries) + "_miss_pct";
}

std::string
fig04Label(const std::string &workload, bool jit)
{
    return "fig04/" + workload + "/" + modeLabel(jit);
}

std::string
fig07Label(const std::string &workload, bool jit, std::uint32_t assoc)
{
    return "fig07/" + workload + "/" + modeLabel(jit) + "/assoc"
        + std::to_string(assoc);
}

std::string
fig08Label(const std::string &workload, bool jit,
           std::uint32_t lineBytes)
{
    return "fig08/" + workload + "/" + modeLabel(jit) + "/line"
        + std::to_string(lineBytes);
}

std::string
btbLabel(const std::string &workload, bool jit)
{
    return "btb/" + workload + "/" + modeLabel(jit);
}

std::string
gcLabel(const std::string &workload, gc::CollectorKind collector,
        std::size_t heapBytes)
{
    return "gc/" + workload + "/" + gc::collectorName(collector)
        + "/h" + std::to_string(heapBytes >> 20) + "m";
}

std::string
codeCacheLabel(const std::string &workload, std::size_t capacityBytes,
               EvictionPolicy policy, AllocStrategy strategy,
               std::uint64_t osrThreshold)
{
    if (capacityBytes == 0)
        return "code_cache/" + workload + "/unlimited";
    std::string label = "code_cache/" + workload + "/"
        + evictionPolicyName(policy) + "/cc"
        + std::to_string(capacityBytes >> 10) + "k";
    if (strategy != AllocStrategy::kFirstFit)
        label += std::string("/") + allocStrategyName(strategy);
    if (osrThreshold != 0)
        label += "/osr" + std::to_string(osrThreshold);
    return label;
}

std::vector<SweepPoint>
buildFig04Grid()
{
    // The Figure 4 comparison point: 64K L1s, 32B lines, I 2-way,
    // D 4-way (the paper's measurement configuration).
    std::vector<SweepPoint> grid;
    for (const WorkloadInfo *w : gridSuite(false)) {
        for (const bool jit : {false, true}) {
            grid.push_back(cachePoint(
                fig04Label(w->name, jit),
                traceKey(w->name,
                         jit ? ExecMode::jit() : ExecMode::interp()),
                CacheConfig{64 * 1024, 32, 2, true},
                CacheConfig{64 * 1024, 32, 4, true}));
        }
    }
    return grid;
}

std::vector<SweepPoint>
buildFig07Grid()
{
    std::vector<SweepPoint> grid;
    for (const WorkloadInfo *w : gridSuite(false)) {
        for (const bool jit : {false, true}) {
            for (const std::uint32_t a : kFig07Assocs) {
                grid.push_back(cachePoint(
                    fig07Label(w->name, jit, a),
                    traceKey(w->name, jit ? ExecMode::jit()
                                          : ExecMode::interp()),
                    CacheConfig{8 * 1024, 32, a, true},
                    CacheConfig{8 * 1024, 32, a, true}));
            }
        }
    }
    return grid;
}

std::vector<SweepPoint>
buildFig08Grid()
{
    std::vector<SweepPoint> grid;
    for (const WorkloadInfo *w : gridSuite(true)) {
        for (const bool jit : {false, true}) {
            for (const std::uint32_t lb : kFig08Lines) {
                grid.push_back(cachePoint(
                    fig08Label(w->name, jit, lb),
                    traceKey(w->name, jit ? ExecMode::jit()
                                          : ExecMode::interp()),
                    CacheConfig{8 * 1024, lb, 1, true},
                    CacheConfig{8 * 1024, lb, 1, true}));
            }
        }
    }
    return grid;
}

std::vector<SweepPoint>
buildBtbGrid()
{
    std::vector<SweepPoint> grid;
    for (const WorkloadInfo *w : gridSuite(false)) {
        for (const bool jit : {false, true}) {
            grid.push_back(makePoint<BtbSizeSweepSink>(
                btbLabel(w->name, jit),
                traceKey(w->name,
                         jit ? ExecMode::jit() : ExecMode::interp()),
                [] { return std::make_unique<BtbSizeSweepSink>(); },
                [](const BtbSizeSweepSink &sink, const RecordedRun &) {
                    return sink.metrics();
                }));
        }
    }
    return grid;
}

std::vector<SweepPoint>
buildGcGrid()
{
    std::vector<SweepPoint> grid;
    for (const WorkloadInfo *w : gridSuite(false)) {
        for (const gc::CollectorKind c : kGcGridCollectors) {
            for (const std::size_t hb : kGcHeapBytes) {
                TraceKey key = traceKey(w->name, ExecMode::jit());
                key.gc.collector = c;
                // Budget a fixed fraction of the heap between
                // collections: halving the heap halves the
                // allocation headroom, which is the pressure the
                // grid sweeps. 1/1024 keeps the budget inside the
                // suite's (deliberately small) allocation volumes.
                key.gc.budgetBytes = hb >> 10;
                key.heapBytes = hb;
                grid.push_back(makePoint<GcPhaseSink>(
                    gcLabel(w->name, c, hb), std::move(key),
                    [] { return std::make_unique<GcPhaseSink>(); },
                    [](const GcPhaseSink &sink,
                       const RecordedRun &) {
                        return sink.metrics();
                    }));
            }
        }
    }
    return grid;
}

std::vector<SweepPoint>
buildCodeCacheGrid()
{
    std::vector<SweepPoint> grid;
    const auto point =
        [](const WorkloadInfo *w, std::size_t cap,
           EvictionPolicy policy,
           AllocStrategy strategy = AllocStrategy::kFirstFit,
           std::uint64_t osr = 0) {
        TraceKey key = traceKey(w->name, osr != 0
                                             ? ExecMode::counter(8)
                                             : ExecMode::jit());
        key.codeCache.capacityBytes = cap;
        key.codeCache.policy = policy;
        key.codeCache.strategy = strategy;
        key.osrBackEdgeThreshold = osr;
        return makePoint<TranslatePhaseSink>(
            codeCacheLabel(w->name, cap, policy, strategy, osr),
            std::move(key),
            [] { return std::make_unique<TranslatePhaseSink>(); },
            [](const TranslatePhaseSink &sink,
               const RecordedRun &run) { return sink.metrics(run); });
    };
    for (const WorkloadInfo *w : gridSuite(false)) {
        // Unlimited baseline: the no-eviction stream the bounded
        // points are compared against (policy value is ignored).
        grid.push_back(point(w, 0, EvictionPolicy::kFifo));
        for (const EvictionPolicy policy : kCodeCachePolicies) {
            for (const std::size_t cap : kCodeCacheCapacities)
                grid.push_back(point(w, cap, policy));
        }
        // First-fit vs best-fit extent placement under the same
        // eviction pressure: the fragmentation-gauge comparison.
        for (const std::size_t cap : kCodeCacheCapacities) {
            grid.push_back(point(w, cap, EvictionPolicy::kFifo,
                                 AllocStrategy::kBestFit));
        }
        // Tiered combination: counter policy + OSR + bounded cache —
        // evicted loop-dominated methods recover via on-stack
        // replacement instead of waiting out the re-armed counter.
        grid.push_back(point(w, kCodeCacheCapacities[1],
                             EvictionPolicy::kFifo,
                             AllocStrategy::kFirstFit,
                             kCodeCacheOsrThreshold));
    }
    return grid;
}

std::vector<SweepPoint>
buildAllGrid()
{
    std::vector<SweepPoint> grid = buildFig04Grid();
    for (auto build :
         {buildFig07Grid, buildFig08Grid, buildBtbGrid}) {
        std::vector<SweepPoint> part = build();
        for (SweepPoint &p : part)
            grid.push_back(std::move(p));
    }
    return grid;
}

const std::vector<NamedGrid> &
allGrids()
{
    static const std::vector<NamedGrid> kGrids = {
        {"fig04",
         "64K L1 miss rates per workload and mode (Figure 4 inputs)",
         &buildFig04Grid},
        {"fig07",
         "associativity sweep: 8K caches, 32B lines, assoc 1/2/4/8",
         &buildFig07Grid},
        {"fig08",
         "line-size sweep: 8K direct-mapped, 16/32/64/128B lines",
         &buildFig08Grid},
        {"btb",
         "BTB capacity vs indirect-transfer misprediction",
         &buildBtbGrid},
        {"all",
         "every cache/BTB grid above, sharing one recording per "
         "(workload, mode)",
         &buildAllGrid},
        {"gc",
         "heap-size x collector sweep: collections, collector-event "
         "share, pause sizes",
         &buildGcGrid},
        {"code_cache",
         "code-cache capacity x eviction-policy sweep (plus best-fit "
         "allocation and counter+OSR points): retranslation overhead "
         "as Translate/Interpret share, fragmentation gauge",
         &buildCodeCacheGrid},
    };
    return kGrids;
}

const NamedGrid *
findGrid(const std::string &name)
{
    for (const NamedGrid &g : allGrids()) {
        if (name == g.name)
            return &g;
    }
    return nullptr;
}

} // namespace jrs::sweep
