/**
 * @file
 * Record-once trace store for the sweep engine.
 *
 * A TraceKey names one dynamic native stream — workload, input size,
 * execution mode, monitor implementation, scheduling quantum, and the
 * JRSTRACE format version. TraceCache::get() hands back the recording
 * for a key, producing it at most once per process: the first caller
 * records the (single-threaded) VM run; concurrent callers for the
 * same key block on that recording; later callers hit memory. With a
 * cache directory configured, recordings persist as
 * `<key>.jrstrace` + `<key>.jrstrace.meta` (+ `.jrstrace.methods`,
 * the method-map sidecar) and later processes load the stream instead
 * of re-running the VM.
 *
 * Disk-loaded runs restore only the headline RunResult fields kept in
 * the sidecar (completed / exitValue / totalEvents) plus the method
 * map; profile tables and footprints exist only in the recording
 * process.
 */
#ifndef JRS_SWEEP_TRACE_CACHE_H
#define JRS_SWEEP_TRACE_CACHE_H

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "harness/experiment.h"

namespace jrs::sweep {

/** How the recorded VM run executes bytecode. */
struct ExecMode {
    enum class Kind : std::uint8_t { Interp, Jit, Counter };

    Kind kind = Kind::Jit;
    /** Invocation threshold when kind == Counter. */
    std::uint64_t counterThreshold = 8;

    /** Filename-safe identity: "interp", "jit", "counter8". */
    std::string id() const;

    /** Fresh policy instance implementing this mode. */
    std::shared_ptr<CompilationPolicy> makePolicy() const;

    static ExecMode interp() { return {Kind::Interp, 0}; }
    static ExecMode jit() { return {Kind::Jit, 0}; }
    static ExecMode counter(std::uint64_t threshold) {
        return {Kind::Counter, threshold};
    }
};

/** Identity of one dynamic stream; the cache key. */
struct TraceKey {
    std::string workload;          ///< registry name ("compress")
    std::int32_t arg = 0;          ///< 0 = the workload's smallArg
    ExecMode mode;
    SyncKind sync = SyncKind::ThinLock;
    std::uint64_t quantum = 300;   ///< green-thread time slice
    /** Collector configuration baked into the stream (GC events!). */
    gc::GcOptions gc;
    /** Heap arena capacity of the recorded run. */
    std::size_t heapBytes = kDefaultHeapBytes;
    /** Code-cache bound, eviction policy and extent-allocation
     *  strategy of the recorded run (eviction changes the stream:
     *  retranslations, interp fallback; allocation placement changes
     *  generated-code addresses). */
    CodeCacheConfig codeCache;
    /** OSR back-edge threshold of the recorded run (0 = OSR off).
     *  OSR changes the stream: loop-dominated methods transfer into
     *  native code mid-frame. */
    std::uint64_t osrBackEdgeThreshold = 0;

    /**
     * Canonical, filename-safe string, e.g.
     * "compress-a0-jit-thin_lock-q300-v1". The trailing v component
     * is the JRSTRACE format version, so stale on-disk caches are
     * never picked up across format changes. Collector and heap
     * components ("-marksweep", "-h33554432", "-gb65536", "-ge8"),
     * code-cache components ("-cc65536-lru", "-bestfit") and the OSR
     * component ("-osr64") appear only when non-default, so every
     * pre-existing key — and its on-disk recording — is unchanged.
     * A SharedCodeCache is deliberately NOT part of the key: shared
     * and private translation produce bit-identical streams.
     */
    std::string str() const;

    /** RunSpec that generates this stream; throws on unknown workload. */
    RunSpec toRunSpec() const;
};

/** Convenience TraceKey builder. */
TraceKey traceKey(const std::string &workload, ExecMode mode,
                  std::int32_t arg = 0,
                  SyncKind sync = SyncKind::ThinLock);

/** See file comment. */
class TraceCache {
  public:
    struct Stats {
        std::uint64_t recordings = 0;  ///< VM runs executed
        std::uint64_t memoryHits = 0;  ///< served from process memory
        std::uint64_t diskLoads = 0;   ///< served from the directory
        /** Host ns the recorded runs spent building translations
         *  (RunResult::translateBuildNs summed over recordings; the
         *  number a shared cache shrinks). */
        std::uint64_t translateBuildNs = 0;
    };

    /**
     * @param dir On-disk store; "" keeps recordings in memory only.
     *            Created (with parents) when it does not exist.
     */
    explicit TraceCache(std::string dir = "");

    /**
     * The recording for @p key; records/loads at most once per key.
     * Thread-safe. A failed recording poisons the key: every waiter
     * and later caller receives the original exception.
     *
     * When @p liveObserver is non-null and this call ends up
     * producing the stream by running the VM, the observer is
     * attached to that live run (saving the caller a replay pass) and
     * @p observedLive is set to true. When the stream came from
     * memory or disk instead, @p observedLive is false and the caller
     * replays the returned trace. The observer must not throw; wrap
     * fallible sinks (the sweep engine's replay fan-out guards
     * per-sink).
     */
    std::shared_ptr<const RecordedRun>
    get(const TraceKey &key, TraceSink *liveObserver = nullptr,
        bool *observedLive = nullptr);

    /**
     * Route every VM run this cache performs through @p shared
     * (vm/jit/shared_cache.h): recordings fetch translation artifacts
     * from the process-wide cache instead of building privately. The
     * streams recorded are bit-identical either way — the shared
     * cache is a host-side translation-work saver, not a stream
     * component — so keys are unaffected. Null detaches.
     */
    void setSharedCache(std::shared_ptr<SharedCodeCache> shared);

    /** Counters so far (thread-safe snapshot). */
    Stats stats() const;

    /** Directory backing this cache ("" = memory only). */
    const std::string &dir() const { return dir_; }

    /** Drop all in-memory entries (disk files are kept). */
    void clear();

  private:
    using Entry = std::shared_future<std::shared_ptr<const RecordedRun>>;

    std::shared_ptr<const RecordedRun>
    produce(const TraceKey &key, TraceSink *liveObserver,
            bool *observedLive);

    std::string dir_;
    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
    std::shared_ptr<SharedCodeCache> shared_;
    Stats stats_;
};

} // namespace jrs::sweep

#endif // JRS_SWEEP_TRACE_CACHE_H
