/**
 * @file
 * The parallel experiment-sweep engine.
 *
 * The paper's methodology is "record the dynamic native stream once
 * with Shade, then feed it to many offline architecture simulators".
 * This subsystem makes that workflow a first-class, parallel facility:
 *
 *  - A SweepPoint names one measurement: which dynamic stream it
 *    consumes (TraceKey) and how to model it (a sink factory plus a
 *    metric extractor).
 *  - SweepEngine groups points by stream, obtains each stream exactly
 *    once through a TraceCache (recording the single-threaded VM, or
 *    loading a previous recording from disk), replays it once into all
 *    of the group's sinks, and runs groups concurrently on a
 *    fixed-size worker pool.
 *  - SweepResult returns per-point metrics in grid order with wall
 *    times, and renders to a support/table.h table or stable JSON.
 *
 * Contract: because the VM itself stays single-threaded and only trace
 * recording/replay is distributed over workers, every metric is
 * bit-identical to attaching the same sink to a live serial run
 * (tests/test_sweep.cpp asserts this). A point whose sink factory,
 * sink, or extractor throws poisons only its own result slot; the rest
 * of the sweep completes.
 *
 * Observability: when jrs::obs is enabled the engine publishes sweep.*
 * metrics (points/groups done, per-point wall-time histogram, queue
 * depth) and emits acquire/replay/extract spans on named
 * "sweep-worker-N" lanes, so a trace view shows how recording and
 * replay overlap across workers. Metrics are read from simulator
 * state, never fed back into it: results are bit-identical whether
 * observability is on or off. SweepOptions::onProgress delivers a
 * SweepProgress snapshot after every completed group.
 */
#ifndef JRS_SWEEP_SWEEP_H
#define JRS_SWEEP_SWEEP_H

#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "harness/experiment.h"
#include "support/table.h"
#include "sweep/trace_cache.h"

namespace jrs::sweep {

/** One named scalar produced by a sweep point. */
struct Metric {
    std::string name;
    double value = 0.0;
};

/** One (stream, model) measurement in a sweep grid. */
struct SweepPoint {
    /** Row identity in results ("fig07/compress/jit/assoc4"). */
    std::string label;
    /** Which dynamic stream this point consumes. */
    TraceKey key;
    /**
     * Build the model sink on the worker thread. Called once per
     * point, after the stream is available: the factory receives the
     * recording it will observe, so sinks can consume run context
     * (e.g. RecordedRun::methods for attribution) before replay.
     */
    std::function<std::unique_ptr<TraceSink>(const RecordedRun &)>
        makeSink;
    /**
     * Pull metrics out of the finished sink. @p sink is the object
     * makeSink returned; @p run is the recording it observed (its
     * RunResult is reduced for disk-loaded streams, see TraceCache).
     */
    std::function<std::vector<Metric>(TraceSink &sink,
                                      const RecordedRun &run)>
        extract;
};

/**
 * Build a SweepPoint without the TraceSink downcast boilerplate: the
 * factory returns the concrete sink type and the extractor receives
 * it back as that type. The factory may take either no arguments or
 * `const RecordedRun &` (when the sink needs run context, e.g. the
 * method map).
 */
template <class SinkT, class MakeFn, class ExtractFn>
SweepPoint
makePoint(std::string label, TraceKey key, MakeFn make,
          ExtractFn extract)
{
    SweepPoint p;
    p.label = std::move(label);
    p.key = std::move(key);
    p.makeSink = [make = std::move(make)](const RecordedRun &run)
        -> std::unique_ptr<TraceSink> {
        if constexpr (std::is_invocable_v<MakeFn,
                                          const RecordedRun &>) {
            return make(run);
        } else {
            (void)run;
            return make();
        }
    };
    p.extract = [extract = std::move(extract)](
                    TraceSink &sink, const RecordedRun &run) {
        return extract(static_cast<SinkT &>(sink), run);
    };
    return p;
}

/** Outcome of one point; order in SweepResult matches the grid. */
struct PointResult {
    std::string label;
    std::string traceKey;         ///< TraceKey::str() of the stream
    bool ok = false;
    std::string error;            ///< set when !ok
    std::vector<Metric> metrics;
    std::uint64_t traceEvents = 0;
    /**
     * Wall time attributed to this point: its extractor plus an equal
     * share of its group's record/load + replay time.
     */
    double seconds = 0.0;

    /** Value of metric @p name, or NaN when absent. */
    double metric(const std::string &name) const;
};

/** Everything a sweep produced. */
struct SweepResult {
    std::vector<PointResult> points;  ///< grid order, always full size
    unsigned jobs = 1;                ///< worker threads used
    double wallSeconds = 0.0;         ///< whole-sweep wall time
    TraceCache::Stats traces;         ///< recordings / hits / disk loads
    /** True when the sweep ran with SweepOptions::sharedCache. */
    bool sharedCacheUsed = false;
    /** Shared translation-cache activity during this sweep (counter
     *  deltas; live* are end-of-sweep values). All zero without a
     *  shared cache. */
    SharedCacheStats shared;

    /** Result for @p label, or nullptr. */
    const PointResult *find(const std::string &label) const;

    /** True when every point succeeded. */
    bool allOk() const;

    /**
     * Render as a table: label, status, events, seconds, then one
     * column per metric name (union across points, first-seen order).
     */
    Table toTable() const;

    /** Machine-readable form (schema "jrs-sweep-result-v1"). */
    std::string toJson() const;

    /** Write toJson() to @p path; throws VmError on I/O failure. */
    void writeJson(const std::string &path) const;
};

/** Progress snapshot passed to SweepOptions::onProgress. */
struct SweepProgress {
    std::size_t pointsDone = 0;   ///< result slots resolved (ok or failed)
    std::size_t pointsTotal = 0;
    std::size_t groupsDone = 0;   ///< trace groups fully processed
    std::size_t groupsTotal = 0;
    TraceCache::Stats traces;     ///< cache activity so far this sweep
};

/** Engine knobs. */
struct SweepOptions {
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /**
     * Trace store shared with other engines/runs; null = private to
     * this engine (streams are still recorded only once per engine).
     */
    std::shared_ptr<TraceCache> cache;
    /** On-disk cache directory for a private cache ("" = memory only). */
    std::string cacheDir;
    /**
     * Process-wide shared translation cache (vm/jit/shared_cache.h):
     * every VM run this sweep records fetches translation artifacts
     * through it, so a method is built once per compatibility key
     * across all workers instead of once per group. Streams — and
     * therefore every metric — are bit-identical with or without it
     * (tests/test_shared_cache.cpp asserts this). Null = private
     * translation per engine.
     */
    std::shared_ptr<SharedCodeCache> sharedCache;
    /**
     * Invoked after each completed trace group, serialized under an
     * engine-internal mutex (the callback need not be thread-safe,
     * but all workers queue behind it — keep it fast).
     */
    std::function<void(const SweepProgress &)> onProgress;
    /**
     * Build one extra observer sink per trace group (may return null
     * to skip a group). The observer rides the group's replay fan-out
     * after every point sink, so it sees the identical stream without
     * touching any point's model or metrics — results stay
     * bit-identical with or without it. A throwing factory or a
     * mid-replay observer failure only drops the observation, never
     * the group's points.
     */
    std::function<std::unique_ptr<TraceSink>(const TraceKey &,
                                             const RecordedRun &)>
        groupObserver;
    /**
     * Receives each observer sink that survived its group's replay,
     * serialized under an engine-internal mutex. The sink's onFinish
     * has already run.
     */
    std::function<void(const TraceKey &, const RecordedRun &,
                       TraceSink &)>
        groupObserved;
};

/** Executes sweep grids; see file comment. */
class SweepEngine {
  public:
    explicit SweepEngine(SweepOptions options = {});

    /**
     * Run every point of @p grid. Never throws for per-point model
     * failures (they are captured in the result slots); throws VmError
     * only for malformed grids (e.g. a point with no sink factory).
     */
    SweepResult run(const std::vector<SweepPoint> &grid);

    /** The engine's trace store (shared or private). */
    TraceCache &cache() { return *cache_; }

  private:
    SweepOptions options_;
    std::shared_ptr<TraceCache> cache_;
};

} // namespace jrs::sweep

#endif // JRS_SWEEP_SWEEP_H
