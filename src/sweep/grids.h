/**
 * @file
 * Named sweep grids for the paper's multi-configuration experiments.
 *
 * One definition of each grid is shared by the bench binaries that
 * print the figures, the `jrs_sweep` CLI, and the tests — the figure
 * layout stays in the bench, the measurement matrix lives here.
 *
 * Grids deliberately reuse streams: "fig07" needs only one recording
 * per (workload, mode) for its four associativities, and "all" shares
 * the same 16 recordings across every cache/BTB experiment.
 */
#ifndef JRS_SWEEP_GRIDS_H
#define JRS_SWEEP_GRIDS_H

#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace jrs::sweep {

/** Figure 7 associativities (8K caches, 32B lines). */
inline constexpr std::uint32_t kFig07Assocs[] = {1, 2, 4, 8};

/** Figure 8 line sizes (8K direct-mapped). */
inline constexpr std::uint32_t kFig08Lines[] = {16, 32, 64, 128};

/** BTB-capacity ablation sizes. */
inline constexpr std::size_t kBtbSizes[] = {64, 256, 1024, 4096};

/** GC-grid heap capacities (the budget is heap/1024, sized so the
    suite's allocation volumes actually cross it: smaller heaps
    collect more often — the classic heap-size/pause trade). */
inline constexpr std::size_t kGcHeapBytes[] = {1u << 20, 4u << 20,
                                               16u << 20};

/** GC-grid collectors (the two real strategies; nogc is the
    reference every digest test already covers). */
inline constexpr gc::CollectorKind kGcGridCollectors[] = {
    gc::CollectorKind::MarkSweep, gc::CollectorKind::Copying};

/** Code-cache-grid capacities, sized against the suite's generated
    code (~4.7–8.8 KiB per workload under compile-everything): 2 KiB
    forces sustained eviction pressure everywhere, 4 KiB moderate
    pressure, and 8 KiB pressures only the code-heavy workloads — the
    retranslation-overhead curve's knee. */
inline constexpr std::size_t kCodeCacheCapacities[] = {
    2u << 10, 4u << 10, 8u << 10};

/** Code-cache-grid eviction policies (all four). */
inline constexpr EvictionPolicy kCodeCachePolicies[] = {
    EvictionPolicy::kFifo, EvictionPolicy::kLru, EvictionPolicy::kCost,
    EvictionPolicy::kCostPerByte};

/** OSR back-edge threshold for the code-cache grid's tiered points
    (counter policy + OSR + bounded cache: evicted loop-dominated
    methods recover through on-stack replacement). */
inline constexpr std::uint64_t kCodeCacheOsrThreshold = 32;

/** "interp" / "jit" — the mode component used in grid labels. */
inline const char *
modeLabel(bool jit)
{
    return jit ? "jit" : "interp";
}

/** Name of a BTB-sweep metric, e.g. "btb256_miss_pct". */
std::string btbMetricName(std::size_t entries);

/**
 * Point labels, so aggregating drivers can look results up without
 * re-deriving string formats: "fig07/compress/jit/assoc4" etc.
 */
std::string fig04Label(const std::string &workload, bool jit);
std::string fig07Label(const std::string &workload, bool jit,
                       std::uint32_t assoc);
std::string fig08Label(const std::string &workload, bool jit,
                       std::uint32_t lineBytes);
std::string btbLabel(const std::string &workload, bool jit);
/** "gc/compress/marksweep/h8m" etc. */
std::string gcLabel(const std::string &workload,
                    gc::CollectorKind collector,
                    std::size_t heapBytes);
/** "code_cache/compress/lru/cc8k"; capacity 0 =>
    "code_cache/compress/unlimited" (the no-eviction baseline).
    Best-fit allocation appends "/best", an OSR threshold appends
    "/osrN": "code_cache/compress/fifo/cc4k/best",
    "code_cache/compress/fifo/cc4k/osr32". */
std::string codeCacheLabel(
    const std::string &workload, std::size_t capacityBytes,
    EvictionPolicy policy,
    AllocStrategy strategy = AllocStrategy::kFirstFit,
    std::uint64_t osrThreshold = 0);

/** Grid builders. Cache points emit icache/dcache_miss_pct metrics. */
std::vector<SweepPoint> buildFig04Grid();
std::vector<SweepPoint> buildFig07Grid();
std::vector<SweepPoint> buildFig08Grid();
std::vector<SweepPoint> buildBtbGrid();
/**
 * Heap-size × collector grid: every point records its own stream
 * (collector traffic is part of the stream identity) and reports
 * collections, collector-event share and pause sizes from the
 * Phase::Gc tags alone, so replayed/disk-loaded streams measure
 * identically to live ones.
 */
std::vector<SweepPoint> buildGcGrid();
/**
 * Code-cache capacity × eviction-policy grid (jit mode, plus one
 * unlimited baseline per workload), extended with best-fit-allocation
 * points (the fragmentation comparison) and one counter+OSR tiered
 * point per workload. Every bounded point records its own stream —
 * eviction changes what executes natively — and reports the
 * retranslation overhead from phase tags (Translate share vs the
 * stream) plus the recorded run's fragmentation gauge (persisted in
 * the meta sidecar), so replayed/disk-loaded streams measure
 * identically to live ones.
 */
std::vector<SweepPoint> buildCodeCacheGrid();
/** Concatenation of the four cache/BTB grids (streams shared across
    experiments; the gc grid records distinct streams and stays
    separate). */
std::vector<SweepPoint> buildAllGrid();

/** A registered grid. */
struct NamedGrid {
    const char *name;
    const char *description;
    std::vector<SweepPoint> (*build)();
};

/** Every named grid (fig04, fig07, fig08, btb, all). */
const std::vector<NamedGrid> &allGrids();

/** Lookup by name; nullptr when unknown. */
const NamedGrid *findGrid(const std::string &name);

} // namespace jrs::sweep

#endif // JRS_SWEEP_GRIDS_H
