#include "sweep/trace_cache.h"

#include <cstdio>
#include <filesystem>

#include "obs/obs.h"
#include "vm/runtime/vm_error.h"

namespace jrs::sweep {

std::string
ExecMode::id() const
{
    switch (kind) {
      case Kind::Interp:
        return "interp";
      case Kind::Jit:
        return "jit";
      case Kind::Counter:
        return "counter" + std::to_string(counterThreshold);
    }
    return "invalid";
}

std::shared_ptr<CompilationPolicy>
ExecMode::makePolicy() const
{
    switch (kind) {
      case Kind::Interp:
        return std::make_shared<NeverCompilePolicy>();
      case Kind::Jit:
        return std::make_shared<AlwaysCompilePolicy>();
      case Kind::Counter:
        return std::make_shared<CounterPolicy>(counterThreshold);
    }
    throw VmError("invalid ExecMode");
}

std::string
TraceKey::str() const
{
    std::string s = workload + "-a" + std::to_string(arg) + "-"
        + mode.id() + "-" + syncKindName(sync) + "-q"
        + std::to_string(quantum);
    // Non-default components only: pre-GC keys (and their on-disk
    // recordings) must remain byte-identical.
    if (gc.collector != gc::CollectorKind::None)
        s += std::string("-") + gc::collectorName(gc.collector);
    if (heapBytes != kDefaultHeapBytes)
        s += "-h" + std::to_string(heapBytes);
    if (gc.budgetBytes != 0)
        s += "-gb" + std::to_string(gc.budgetBytes);
    if (gc.everyNAllocs != 0)
        s += "-ge" + std::to_string(gc.everyNAllocs);
    if (codeCache.capacityBytes != 0) {
        s += "-cc" + std::to_string(codeCache.capacityBytes) + "-"
            + evictionPolicyName(codeCache.policy);
    }
    if (codeCache.strategy != AllocStrategy::kFirstFit)
        s += std::string("-") + allocStrategyName(codeCache.strategy)
            + "fit";
    if (osrBackEdgeThreshold != 0)
        s += "-osr" + std::to_string(osrBackEdgeThreshold);
    return s + "-v" + std::to_string(kTraceVersion);
}

RunSpec
TraceKey::toRunSpec() const
{
    const WorkloadInfo *w = findWorkload(workload);
    if (w == nullptr)
        throw VmError("TraceKey names unknown workload: " + workload);
    RunSpec spec;
    spec.workload = w;
    spec.arg = arg;
    spec.policy = mode.makePolicy();
    spec.syncKind = sync;
    spec.quantum = quantum;
    spec.gc = gc;
    spec.heapBytes = heapBytes;
    spec.codeCache = codeCache;
    spec.osrBackEdgeThreshold = osrBackEdgeThreshold;
    return spec;
}

TraceKey
traceKey(const std::string &workload, ExecMode mode, std::int32_t arg,
         SyncKind sync)
{
    TraceKey key;
    key.workload = workload;
    key.arg = arg;
    key.mode = mode;
    key.sync = sync;
    return key;
}

TraceCache::TraceCache(std::string dir)
    : dir_(std::move(dir))
{
    if (!dir_.empty())
        std::filesystem::create_directories(dir_);
}

namespace {

/**
 * Sidecar format: "key=value" lines. The key line guards against a
 * foreign file reusing the name; events guards truncation. The two
 * freeb/freex lines carry the recorded run's end-of-run code-cache
 * free-extent accounting (the fragmentation gauge) so disk-loaded
 * streams report the same value as the live recording; they are
 * optional on read, so pre-existing sidecars still load (as zeros).
 */
void
writeMeta(const std::string &path, const std::string &key,
          const RunResult &result)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw VmError("cannot write trace meta: " + path);
    const bool ok =
        std::fprintf(
            f, "key=%s\nexit=%d\nevents=%llu\nfreeb=%llu\nfreex=%llu\n",
            key.c_str(), result.exitValue,
            static_cast<unsigned long long>(result.totalEvents),
            static_cast<unsigned long long>(result.codeCacheFreeBytes),
            static_cast<unsigned long long>(result.codeCacheFreeExtents))
        > 0;
    if (std::fclose(f) != 0 || !ok)
        throw VmError("cannot write trace meta: " + path);
}

/** @return false when the sidecar is missing or does not match. */
bool
readMeta(const std::string &path, const std::string &key,
         RunResult &result)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return false;
    char keyBuf[512] = {};
    int exitValue = 0;
    unsigned long long events = 0;
    unsigned long long freeBytes = 0;
    unsigned long long freeExtents = 0;
    const bool ok =
        std::fscanf(f, "key=%511[^\n]\nexit=%d\nevents=%llu", keyBuf,
                    &exitValue, &events)
        == 3;
    // Optional trailer (recordings made before it simply lack it).
    const bool hasFree = ok
        && std::fscanf(f, "\nfreeb=%llu\nfreex=%llu", &freeBytes,
                       &freeExtents)
            == 2;
    std::fclose(f);
    if (!ok || key != keyBuf)
        return false;
    result = RunResult{};
    result.completed = true;
    result.hasExitValue = true;
    result.exitValue = exitValue;
    result.totalEvents = events;
    if (hasFree) {
        result.codeCacheFreeBytes = freeBytes;
        result.codeCacheFreeExtents = freeExtents;
    }
    return true;
}

/**
 * Method-map sidecar: one "lo hi name" line (hex addresses) per
 * registered range. Optional — recordings made before this sidecar
 * existed simply yield a null RecordedRun::methods on load.
 */
void
writeMethods(const std::string &path, const obs::MethodMap &map)
{
    std::string body;
    map.forEachRange([&](SimAddr lo, SimAddr hi,
                         const std::string &name) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%llx %llx ",
                      static_cast<unsigned long long>(lo),
                      static_cast<unsigned long long>(hi));
        body += buf;
        body += name;
        body += '\n';
    });
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw VmError("cannot write trace methods: " + path);
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (std::fclose(f) != 0 || !ok)
        throw VmError("cannot write trace methods: " + path);
}

/** @return null when the sidecar is missing or malformed. */
std::shared_ptr<const obs::MethodMap>
readMethods(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return nullptr;
    auto map = std::make_shared<obs::MethodMap>();
    unsigned long long lo = 0;
    unsigned long long hi = 0;
    char name[512] = {};
    bool ok = true;
    int fields;
    while ((fields = std::fscanf(f, "%llx %llx %511[^\n]\n", &lo, &hi,
                                 name))
           == 3) {
        try {
            map->add(lo, hi, name);
        } catch (const std::exception &) {
            ok = false;
            break;
        }
    }
    ok = ok && fields == EOF;
    std::fclose(f);
    return ok ? map : nullptr;
}

} // namespace

std::shared_ptr<const RecordedRun>
TraceCache::produce(const TraceKey &key, TraceSink *liveObserver,
                    bool *observedLive)
{
    const std::string keyStr = key.str();
    if (!dir_.empty()) {
        const std::string base = dir_ + "/" + keyStr + ".jrstrace";
        RunResult meta;
        if (readMeta(base + ".meta", keyStr, meta)
            && std::filesystem::exists(base)) {
            obs::ScopedSpan span("trace.load", "sweep");
            span.arg("key", keyStr);
            auto trace =
                std::make_shared<TraceBuffer>(TraceBuffer::load(base));
            if (trace->size() == meta.totalEvents) {
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++stats_.diskLoads;
                }
                obs::count("trace_cache.disk_loads");
                auto run = std::make_shared<RecordedRun>();
                run->result = meta;
                run->trace = std::move(trace);
                run->methods = readMethods(base + ".methods");
                return run;
            }
            // Truncated or stale payload: fall through and re-record.
        }
    }

    obs::ScopedSpan span("trace.record", "sweep");
    span.arg("key", keyStr);
    RunSpec spec = key.toRunSpec();
    {
        std::lock_guard<std::mutex> lock(mu_);
        spec.sharedCache = shared_;
    }
    spec.sink = liveObserver;
    if (liveObserver != nullptr && observedLive != nullptr)
        *observedLive = true;
    auto run = std::make_shared<RecordedRun>(recordWorkload(spec));
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.recordings;
        stats_.translateBuildNs += run->result.translateBuildNs;
    }
    obs::count("trace_cache.recordings");
    if (!dir_.empty()) {
        const std::string base = dir_ + "/" + keyStr + ".jrstrace";
        run->trace->save(base);
        writeMeta(base + ".meta", keyStr, run->result);
        if (run->methods != nullptr)
            writeMethods(base + ".methods", *run->methods);
    }
    return run;
}

std::shared_ptr<const RecordedRun>
TraceCache::get(const TraceKey &key, TraceSink *liveObserver,
                bool *observedLive)
{
    if (observedLive != nullptr)
        *observedLive = false;
    const std::string keyStr = key.str();
    std::promise<std::shared_ptr<const RecordedRun>> promise;
    Entry mine = promise.get_future().share();
    Entry theirs;
    bool producer = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = entries_.try_emplace(keyStr, mine);
        if (inserted) {
            producer = true;
        } else {
            theirs = it->second;
            ++stats_.memoryHits;
        }
    }
    if (!producer)
        obs::count("trace_cache.memory_hits");
    if (!producer)
        return theirs.get();  // blocks until recorded; rethrows poison
    try {
        promise.set_value(produce(key, liveObserver, observedLive));
    } catch (...) {
        promise.set_exception(std::current_exception());
    }
    return mine.get();
}

void
TraceCache::setSharedCache(std::shared_ptr<SharedCodeCache> shared)
{
    std::lock_guard<std::mutex> lock(mu_);
    shared_ = std::move(shared);
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    stats_ = Stats{};
}

} // namespace jrs::sweep
