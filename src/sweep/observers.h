/**
 * @file
 * Composition of sweep group observers.
 *
 * SweepOptions carries a single groupObserver/groupObserved hook
 * pair; tools that want several independent observers on the same
 * replay (e.g. --perf-json and --flame together) register each one
 * through addGroupObserver, which chains with whatever hook is
 * already installed by fanning the group's stream out to both sinks.
 * Each observer still receives its own sink instance in its own
 * observed callback, so the static_cast-to-concrete-type idiom of
 * perf_observer.h / cct_observer.h keeps working.
 */
#ifndef JRS_SWEEP_OBSERVERS_H
#define JRS_SWEEP_OBSERVERS_H

#include <memory>
#include <utility>

#include "sweep/sweep.h"

namespace jrs::sweep {

/** Internal: fans a group's replay out to two chained observers. */
class ObserverPair : public TraceSink {
  public:
    std::unique_ptr<TraceSink> a;  ///< earlier-registered (may be null)
    std::unique_ptr<TraceSink> b;  ///< later-registered (may be null)

    void onEvent(const TraceEvent &ev) override {
        if (a != nullptr)
            a->onEvent(ev);
        if (b != nullptr)
            b->onEvent(ev);
    }
    void onFinish() override {
        if (a != nullptr)
            a->onFinish();
        if (b != nullptr)
            b->onFinish();
    }
};

/**
 * Register one more group observer on @p opts, preserving any hooks
 * already installed. @p make may return null to skip a group; @p done
 * then is not called for it.
 */
inline void
addGroupObserver(
    SweepOptions &opts,
    std::function<std::unique_ptr<TraceSink>(const TraceKey &,
                                             const RecordedRun &)>
        make,
    std::function<void(const TraceKey &, const RecordedRun &,
                       TraceSink &)>
        done)
{
    if (!opts.groupObserver) {
        opts.groupObserver = std::move(make);
        opts.groupObserved = std::move(done);
        return;
    }
    auto prevMake = std::move(opts.groupObserver);
    auto prevDone = std::move(opts.groupObserved);
    opts.groupObserver = [prevMake, make](const TraceKey &key,
                                          const RecordedRun &run)
        -> std::unique_ptr<TraceSink> {
        auto pair = std::make_unique<ObserverPair>();
        pair->a = prevMake(key, run);
        pair->b = make(key, run);
        if (pair->a == nullptr && pair->b == nullptr)
            return nullptr;
        return pair;
    };
    opts.groupObserved = [prevDone, done](const TraceKey &key,
                                          const RecordedRun &run,
                                          TraceSink &sink) {
        auto &pair = static_cast<ObserverPair &>(sink);
        if (pair.a != nullptr && prevDone)
            prevDone(key, run, *pair.a);
        if (pair.b != nullptr && done)
            done(key, run, *pair.b);
    };
}

} // namespace jrs::sweep

#endif // JRS_SWEEP_OBSERVERS_H
