/**
 * @file
 * The sweep engine's worker pool, exposed as a reusable primitive.
 *
 * SweepEngine::run and jrs::check's fuzz campaigns share the same
 * execution shape: N independent tasks, a fixed-size thread pool, an
 * atomic work queue, and obs lanes named per worker. This header
 * extracts that shape so both use one implementation.
 *
 * Fault isolation contract: tasks are expected to catch their own
 * failures and record them in their result slot (that is what makes
 * per-point / per-seed isolation work). If a task does escape with an
 * exception anyway, the pool captures the first one and rethrows it on
 * the calling thread after all workers have drained — never
 * std::terminate.
 */
#ifndef JRS_SWEEP_PARALLEL_H
#define JRS_SWEEP_PARALLEL_H

#include <cstddef>
#include <functional>

namespace jrs::sweep {

/**
 * Resolve a --jobs style request: 0 means hardware concurrency, and
 * the answer is clamped to [1, num_tasks] (min 1 even for no tasks).
 */
unsigned resolveJobs(unsigned requested, std::size_t num_tasks);

/**
 * Run @p fn(task, lane) for every task index in [0, num_tasks) on
 * @p jobs worker threads (call resolveJobs first). Tasks are handed
 * out through an atomic cursor in index order; with jobs <= 1
 * everything runs inline on the calling thread. Each worker names its
 * obs lane "<lane_prefix><lane>" when observability is enabled.
 */
void parallelForEach(
    unsigned jobs, std::size_t num_tasks,
    const std::function<void(std::size_t task, std::size_t lane)> &fn,
    const char *lane_prefix = "sweep-worker-");

} // namespace jrs::sweep

#endif // JRS_SWEEP_PARALLEL_H
