/**
 * @file
 * --perf-json support for sweep-engine tools: ride each trace group's
 * replay with a perf-attribution observer.
 *
 * attachPerfObserver wires SweepOptions::groupObserver/groupObserved
 * so that every trace group's replay also feeds an AttributedPipeline
 * (default PipelineConfig) whose per-method report lands in a
 * PerfReportSet keyed by the group's TraceKey. The observer rides the
 * replay fan-out after every point sink, so the sweep's own metrics
 * stay bit-identical with or without it (tests/test_perf.cpp asserts
 * this).
 */
#ifndef JRS_SWEEP_PERF_OBSERVER_H
#define JRS_SWEEP_PERF_OBSERVER_H

#include <memory>

#include "arch/pipeline/pipeline.h"
#include "obs/perf.h"
#include "sweep/observers.h"
#include "sweep/sweep.h"

namespace jrs::sweep {

/**
 * See file comment. Groups whose recording carries no method map
 * (disk recordings predating the .methods sidecar) are skipped.
 * @p reports must outlive the sweep. Call only when the user asked
 * for the report (the observer costs one extra replay consumer per
 * group). Registered via sweep/observers.h, so it composes with
 * attachCctObserver on the same sweep.
 */
inline void
attachPerfObserver(SweepOptions &opts, obs::PerfReportSet &reports)
{
    addGroupObserver(
        opts,
        [](const TraceKey &, const RecordedRun &run)
            -> std::unique_ptr<TraceSink> {
            if (run.methods == nullptr)
                return nullptr;
            return std::make_unique<obs::AttributedPipeline>(
                PipelineConfig{}, run.methods);
        },
        [&reports](const TraceKey &key, const RecordedRun &,
                   TraceSink &sink) {
            auto &attributed =
                static_cast<obs::AttributedPipeline &>(sink);
            reports.add(key.str(), attributed.perf());
        });
}

} // namespace jrs::sweep

#endif // JRS_SWEEP_PERF_OBSERVER_H
