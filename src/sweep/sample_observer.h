/**
 * @file
 * --sample-json support for sweep-engine tools: ride each trace
 * group's replay with a sampling-profiler observer.
 *
 * attachSampleObserver registers (via sweep/observers.h, so it
 * composes with attachPerfObserver/attachCctObserver) a per-group
 * SamplePipeline whose sampled profile lands in a SampleReportSet
 * keyed by the group's TraceKey. The observer rides the replay
 * fan-out after every point sink, so the sweep's own metrics stay
 * bit-identical with or without it (the same guarantee the perf and
 * CCT observers make; tests/test_sample.cpp asserts it for this one).
 */
#ifndef JRS_SWEEP_SAMPLE_OBSERVER_H
#define JRS_SWEEP_SAMPLE_OBSERVER_H

#include <memory>

#include "arch/pipeline/pipeline.h"
#include "prof/sampler.h"
#include "sweep/observers.h"
#include "sweep/sweep.h"

namespace jrs::sweep {

/**
 * See file comment. Groups whose recording carries no method map are
 * skipped. @p reports must outlive the sweep. Call only when the user
 * asked for sampled output (one extra replay consumer per group).
 * Every group samples with the same @p opt, so their profiles are
 * comparable across the sweep.
 */
inline void
attachSampleObserver(SweepOptions &opts, prof::SampleOptions opt,
                     prof::SampleReportSet &reports)
{
    addGroupObserver(
        opts,
        [opt](const TraceKey &, const RecordedRun &run)
            -> std::unique_ptr<TraceSink> {
            if (run.methods == nullptr)
                return nullptr;
            return std::make_unique<prof::SamplePipeline>(
                PipelineConfig{}, run.methods, opt);
        },
        [&reports](const TraceKey &key, const RecordedRun &,
                   TraceSink &sink) {
            auto &sp = static_cast<prof::SamplePipeline &>(sink);
            reports.add(key.str(), sp.sampler());
        });
}

} // namespace jrs::sweep

#endif // JRS_SWEEP_SAMPLE_OBSERVER_H
