#include "sweep/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace jrs::sweep {

unsigned
resolveJobs(unsigned requested, std::size_t num_tasks)
{
    unsigned jobs = requested != 0 ? requested
                                   : std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    if (num_tasks < jobs)
        jobs = num_tasks != 0 ? static_cast<unsigned>(num_tasks) : 1;
    return jobs;
}

void
parallelForEach(
    unsigned jobs, std::size_t num_tasks,
    const std::function<void(std::size_t, std::size_t)> &fn,
    const char *lane_prefix)
{
    if (num_tasks == 0)
        return;

    if (jobs <= 1) {
        if (obs::enabled())
            obs::tracer().nameCurrentLane(std::string(lane_prefix) + "0");
        for (std::size_t i = 0; i < num_tasks; ++i)
            fn(i, 0);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex errorMu;
    std::exception_ptr firstError;
    auto worker = [&](std::size_t lane) {
        if (obs::enabled())
            obs::tracer().nameCurrentLane(lane_prefix
                                          + std::to_string(lane));
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= num_tasks)
                return;
            try {
                fn(i, lane);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMu);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker, static_cast<std::size_t>(t));
    for (std::thread &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace jrs::sweep
