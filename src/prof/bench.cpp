#include "prof/bench.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "support/statistics.h"
#include "vm/runtime/vm_error.h"

namespace jrs::prof {

namespace {

using obs::JsonParser;
using obs::jsonEscape;
using obs::jsonNumber;

double
numField(const JsonParser::Value &obj, const char *name)
{
    const JsonParser::Value *f = obj.field(name);
    if (f == nullptr || f->kind != JsonParser::Value::Number)
        throw VmError(std::string("jrs-bench-v1: missing numeric "
                                  "field \"") +
                      name + "\"");
    return f->num;
}

} // namespace

double
BenchRun::metric(const std::string &name, double fallback) const
{
    for (const auto &m : metrics) {
        if (m.first == name)
            return m.second;
    }
    return fallback;
}

const BenchRun *
BenchReport::find(const std::string &label) const
{
    for (const BenchRun &r : runs) {
        if (r.label == label)
            return &r;
    }
    return nullptr;
}

void
BenchReport::upsert(BenchRun run)
{
    for (BenchRun &r : runs) {
        if (r.label == run.label) {
            r = std::move(run);
            return;
        }
    }
    runs.push_back(std::move(run));
}

std::string
BenchReport::toJson() const
{
    std::vector<const BenchRun *> sorted;
    sorted.reserve(runs.size());
    for (const BenchRun &r : runs)
        sorted.push_back(&r);
    std::sort(sorted.begin(), sorted.end(),
              [](const BenchRun *a, const BenchRun *b) {
                  return a->label < b->label;
              });

    std::ostringstream os;
    os << "{\n  \"schema\": \"jrs-bench-v1\",\n";
    os << "  \"suite\": \"" << jsonEscape(suite) << "\",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const BenchRun &r = *sorted[i];
        os << "    {\"label\": \"" << jsonEscape(r.label)
           << "\", \"events\": " << r.events
           << ", \"wall_seconds\": " << jsonNumber(r.wallSeconds)
           << ", \"events_per_sec\": " << jsonNumber(r.eventsPerSec)
           << ", \"peak_rss_bytes\": " << r.peakRssBytes;
        if (!r.metrics.empty()) {
            os << ", \"metrics\": {";
            std::vector<std::pair<std::string, double>> ms =
                r.metrics;
            std::sort(ms.begin(), ms.end());
            for (std::size_t m = 0; m < ms.size(); ++m) {
                if (m > 0)
                    os << ", ";
                os << '"' << jsonEscape(ms[m].first)
                   << "\": " << jsonNumber(ms[m].second);
            }
            os << '}';
        }
        os << '}' << (i + 1 < sorted.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return os.str();
}

void
BenchReport::writeJson(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        throw VmError("cannot write bench report: " + path);
    f << toJson();
}

BenchReport
BenchReport::parse(const std::string &json)
{
    const JsonParser::Value doc =
        JsonParser(json, "jrs-bench-v1").parse();
    if (doc.kind != JsonParser::Value::Object)
        throw VmError("jrs-bench-v1: document is not an object");
    const JsonParser::Value *schema = doc.field("schema");
    if (schema == nullptr || schema->str != "jrs-bench-v1")
        throw VmError("jrs-bench-v1: bad or missing schema field");

    BenchReport rep;
    if (const JsonParser::Value *suite = doc.field("suite"))
        rep.suite = suite->str;
    const JsonParser::Value *runs = doc.field("runs");
    if (runs == nullptr || runs->kind != JsonParser::Value::Array)
        throw VmError("jrs-bench-v1: missing runs array");
    for (const JsonParser::Value &rv : runs->items) {
        if (rv.kind != JsonParser::Value::Object)
            throw VmError("jrs-bench-v1: run is not an object");
        BenchRun r;
        const JsonParser::Value *label = rv.field("label");
        if (label == nullptr ||
            label->kind != JsonParser::Value::String)
            throw VmError("jrs-bench-v1: run without a label");
        r.label = label->str;
        r.events = static_cast<std::uint64_t>(numField(rv, "events"));
        r.wallSeconds = numField(rv, "wall_seconds");
        r.eventsPerSec = numField(rv, "events_per_sec");
        r.peakRssBytes =
            static_cast<std::uint64_t>(numField(rv, "peak_rss_bytes"));
        if (const JsonParser::Value *ms = rv.field("metrics")) {
            for (const auto &f : ms->fields)
                r.metrics.emplace_back(f.first, f.second.num);
        }
        rep.runs.push_back(std::move(r));
    }
    return rep;
}

BenchReport
BenchReport::load(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        throw VmError("cannot read bench report: " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return parse(os.str());
}

BenchReport
BenchReport::loadOrEmpty(const std::string &path,
                         const std::string &suite)
{
    std::ifstream probe(path);
    if (probe) {
        probe.close();
        try {
            BenchReport rep = load(path);
            if (rep.suite == suite)
                return rep;
        } catch (const VmError &) {
            // Old-schema or corrupt file: start the trajectory over.
        }
    }
    BenchReport rep;
    rep.suite = suite;
    return rep;
}

CompareResult
compareReports(const BenchReport &baseline, const BenchReport &current,
               double maxRegressPct)
{
    CompareResult out;
    std::map<std::string, const BenchRun *> base;
    for (const BenchRun &r : baseline.runs)
        base[r.label] = &r;
    std::map<std::string, const BenchRun *> cur;
    for (const BenchRun &r : current.runs)
        cur[r.label] = &r;

    for (const auto &[label, b] : base) {
        const auto it = cur.find(label);
        if (it == cur.end()) {
            out.onlyBaseline.push_back(label);
            continue;
        }
        CompareRow row;
        row.label = label;
        row.baseline = b->eventsPerSec;
        row.current = it->second->eventsPerSec;
        row.deltaPct =
            row.baseline == 0
                ? 0
                : (row.current - row.baseline) / row.baseline * 100.0;
        row.regressed = row.deltaPct < -maxRegressPct;
        out.worstDeltaPct = std::min(out.worstDeltaPct, row.deltaPct);
        out.failed = out.failed || row.regressed;
        out.rows.push_back(std::move(row));
    }
    for (const auto &[label, c] : cur) {
        (void)c;
        if (base.find(label) == base.end())
            out.onlyCurrent.push_back(label);
    }
    return out;
}

std::string
CompareResult::text(double maxRegressPct) const
{
    std::ostringstream os;
    for (const CompareRow &r : rows) {
        os << (r.regressed ? "REGRESS " : "ok      ") << r.label
           << ": " << fixed(r.baseline / 1e6, 2) << "M/s -> "
           << fixed(r.current / 1e6, 2) << "M/s ("
           << (r.deltaPct >= 0 ? "+" : "") << fixed(r.deltaPct, 1)
           << "%)\n";
    }
    for (const std::string &l : onlyBaseline)
        os << "missing " << l << " (present only in baseline)\n";
    for (const std::string &l : onlyCurrent)
        os << "new     " << l << " (no baseline)\n";
    os << (failed ? "FAIL" : "PASS") << ": worst delta "
       << (worstDeltaPct >= 0 ? "+" : "") << fixed(worstDeltaPct, 1)
       << "% against a -" << fixed(maxRegressPct, 0)
       << "% threshold\n";
    return os.str();
}

} // namespace jrs::prof
