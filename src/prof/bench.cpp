#include "prof/bench.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "support/statistics.h"
#include "vm/runtime/vm_error.h"

namespace jrs::prof {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Minimal recursive-descent JSON reader, just enough for the
 * jrs-bench-v1 documents this module itself writes (strings, finite
 * numbers, objects, arrays, true/false/null; no \\u surrogate pairs).
 */
class JsonParser {
  public:
    struct Value {
        enum Kind { Null, Bool, Number, String, Array, Object } kind =
            Null;
        bool b = false;
        double num = 0;
        std::string str;
        std::vector<Value> items;
        std::vector<std::pair<std::string, Value>> fields;

        const Value *field(const std::string &name) const {
            for (const auto &f : fields) {
                if (f.first == name)
                    return &f.second;
            }
            return nullptr;
        }
    };

    explicit JsonParser(const std::string &text) : s_(text) {}

    Value parse() {
        const Value v = value();
        ws();
        if (pos_ != s_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &why) const {
        throw VmError("jrs-bench-v1 parse error at byte " +
                      std::to_string(pos_) + ": " + why);
    }

    void ws() {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char peek() {
        ws();
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void expect(char c) {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume(char c) {
        if (pos_ < s_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("bad \\u escape");
                const unsigned code = static_cast<unsigned>(
                    std::stoul(s_.substr(pos_, 4), nullptr, 16));
                pos_ += 4;
                // ASCII subset only — all this module emits.
                out += static_cast<char>(code & 0x7f);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Value value() {
        const char c = peek();
        Value v;
        if (c == '{') {
            ++pos_;
            v.kind = Value::Object;
            if (!consume('}')) {
                while (true) {
                    std::string name = string();
                    expect(':');
                    v.fields.emplace_back(std::move(name), value());
                    if (consume(','))
                        continue;
                    expect('}');
                    break;
                }
            }
        } else if (c == '[') {
            ++pos_;
            v.kind = Value::Array;
            if (!consume(']')) {
                while (true) {
                    v.items.push_back(value());
                    if (consume(','))
                        continue;
                    expect(']');
                    break;
                }
            }
        } else if (c == '"') {
            v.kind = Value::String;
            v.str = string();
        } else if (c == 't') {
            literal("true");
            v.kind = Value::Bool;
            v.b = true;
        } else if (c == 'f') {
            literal("false");
            v.kind = Value::Bool;
        } else if (c == 'n') {
            literal("null");
        } else {
            v.kind = Value::Number;
            const std::size_t start = pos_;
            while (pos_ < s_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(s_[pos_])) ||
                    s_[pos_] == '-' || s_[pos_] == '+' ||
                    s_[pos_] == '.' || s_[pos_] == 'e' ||
                    s_[pos_] == 'E'))
                ++pos_;
            if (pos_ == start)
                fail("expected a value");
            try {
                v.num = std::stod(s_.substr(start, pos_ - start));
            } catch (const std::exception &) {
                fail("bad number");
            }
        }
        return v;
    }

    void literal(const char *lit) {
        for (const char *p = lit; *p != '\0'; ++p) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                fail(std::string("expected ") + lit);
            ++pos_;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

double
numField(const JsonParser::Value &obj, const char *name)
{
    const JsonParser::Value *f = obj.field(name);
    if (f == nullptr || f->kind != JsonParser::Value::Number)
        throw VmError(std::string("jrs-bench-v1: missing numeric "
                                  "field \"") +
                      name + "\"");
    return f->num;
}

} // namespace

double
BenchRun::metric(const std::string &name, double fallback) const
{
    for (const auto &m : metrics) {
        if (m.first == name)
            return m.second;
    }
    return fallback;
}

const BenchRun *
BenchReport::find(const std::string &label) const
{
    for (const BenchRun &r : runs) {
        if (r.label == label)
            return &r;
    }
    return nullptr;
}

void
BenchReport::upsert(BenchRun run)
{
    for (BenchRun &r : runs) {
        if (r.label == run.label) {
            r = std::move(run);
            return;
        }
    }
    runs.push_back(std::move(run));
}

std::string
BenchReport::toJson() const
{
    std::vector<const BenchRun *> sorted;
    sorted.reserve(runs.size());
    for (const BenchRun &r : runs)
        sorted.push_back(&r);
    std::sort(sorted.begin(), sorted.end(),
              [](const BenchRun *a, const BenchRun *b) {
                  return a->label < b->label;
              });

    std::ostringstream os;
    os << "{\n  \"schema\": \"jrs-bench-v1\",\n";
    os << "  \"suite\": \"" << jsonEscape(suite) << "\",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const BenchRun &r = *sorted[i];
        os << "    {\"label\": \"" << jsonEscape(r.label)
           << "\", \"events\": " << r.events
           << ", \"wall_seconds\": " << jsonNumber(r.wallSeconds)
           << ", \"events_per_sec\": " << jsonNumber(r.eventsPerSec)
           << ", \"peak_rss_bytes\": " << r.peakRssBytes;
        if (!r.metrics.empty()) {
            os << ", \"metrics\": {";
            std::vector<std::pair<std::string, double>> ms =
                r.metrics;
            std::sort(ms.begin(), ms.end());
            for (std::size_t m = 0; m < ms.size(); ++m) {
                if (m > 0)
                    os << ", ";
                os << '"' << jsonEscape(ms[m].first)
                   << "\": " << jsonNumber(ms[m].second);
            }
            os << '}';
        }
        os << '}' << (i + 1 < sorted.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return os.str();
}

void
BenchReport::writeJson(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        throw VmError("cannot write bench report: " + path);
    f << toJson();
}

BenchReport
BenchReport::parse(const std::string &json)
{
    const JsonParser::Value doc = JsonParser(json).parse();
    if (doc.kind != JsonParser::Value::Object)
        throw VmError("jrs-bench-v1: document is not an object");
    const JsonParser::Value *schema = doc.field("schema");
    if (schema == nullptr || schema->str != "jrs-bench-v1")
        throw VmError("jrs-bench-v1: bad or missing schema field");

    BenchReport rep;
    if (const JsonParser::Value *suite = doc.field("suite"))
        rep.suite = suite->str;
    const JsonParser::Value *runs = doc.field("runs");
    if (runs == nullptr || runs->kind != JsonParser::Value::Array)
        throw VmError("jrs-bench-v1: missing runs array");
    for (const JsonParser::Value &rv : runs->items) {
        if (rv.kind != JsonParser::Value::Object)
            throw VmError("jrs-bench-v1: run is not an object");
        BenchRun r;
        const JsonParser::Value *label = rv.field("label");
        if (label == nullptr ||
            label->kind != JsonParser::Value::String)
            throw VmError("jrs-bench-v1: run without a label");
        r.label = label->str;
        r.events = static_cast<std::uint64_t>(numField(rv, "events"));
        r.wallSeconds = numField(rv, "wall_seconds");
        r.eventsPerSec = numField(rv, "events_per_sec");
        r.peakRssBytes =
            static_cast<std::uint64_t>(numField(rv, "peak_rss_bytes"));
        if (const JsonParser::Value *ms = rv.field("metrics")) {
            for (const auto &f : ms->fields)
                r.metrics.emplace_back(f.first, f.second.num);
        }
        rep.runs.push_back(std::move(r));
    }
    return rep;
}

BenchReport
BenchReport::load(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        throw VmError("cannot read bench report: " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return parse(os.str());
}

BenchReport
BenchReport::loadOrEmpty(const std::string &path,
                         const std::string &suite)
{
    std::ifstream probe(path);
    if (probe) {
        probe.close();
        try {
            BenchReport rep = load(path);
            if (rep.suite == suite)
                return rep;
        } catch (const VmError &) {
            // Old-schema or corrupt file: start the trajectory over.
        }
    }
    BenchReport rep;
    rep.suite = suite;
    return rep;
}

CompareResult
compareReports(const BenchReport &baseline, const BenchReport &current,
               double maxRegressPct)
{
    CompareResult out;
    std::map<std::string, const BenchRun *> base;
    for (const BenchRun &r : baseline.runs)
        base[r.label] = &r;
    std::map<std::string, const BenchRun *> cur;
    for (const BenchRun &r : current.runs)
        cur[r.label] = &r;

    for (const auto &[label, b] : base) {
        const auto it = cur.find(label);
        if (it == cur.end()) {
            out.onlyBaseline.push_back(label);
            continue;
        }
        CompareRow row;
        row.label = label;
        row.baseline = b->eventsPerSec;
        row.current = it->second->eventsPerSec;
        row.deltaPct =
            row.baseline == 0
                ? 0
                : (row.current - row.baseline) / row.baseline * 100.0;
        row.regressed = row.deltaPct < -maxRegressPct;
        out.worstDeltaPct = std::min(out.worstDeltaPct, row.deltaPct);
        out.failed = out.failed || row.regressed;
        out.rows.push_back(std::move(row));
    }
    for (const auto &[label, c] : cur) {
        (void)c;
        if (base.find(label) == base.end())
            out.onlyCurrent.push_back(label);
    }
    return out;
}

std::string
CompareResult::text(double maxRegressPct) const
{
    std::ostringstream os;
    for (const CompareRow &r : rows) {
        os << (r.regressed ? "REGRESS " : "ok      ") << r.label
           << ": " << fixed(r.baseline / 1e6, 2) << "M/s -> "
           << fixed(r.current / 1e6, 2) << "M/s ("
           << (r.deltaPct >= 0 ? "+" : "") << fixed(r.deltaPct, 1)
           << "%)\n";
    }
    for (const std::string &l : onlyBaseline)
        os << "missing " << l << " (present only in baseline)\n";
    for (const std::string &l : onlyCurrent)
        os << "new     " << l << " (no baseline)\n";
    os << (failed ? "FAIL" : "PASS") << ": worst delta "
       << (worstDeltaPct >= 0 ? "+" : "") << fixed(worstDeltaPct, 1)
       << "% against a -" << fixed(maxRegressPct, 0)
       << "% threshold\n";
    return os.str();
}

} // namespace jrs::prof
