/**
 * @file
 * Host-side benchmark reports: the "jrs-bench-v1" schema.
 *
 * The simulator's own speed is a tracked artifact (the ROADMAP's "as
 * fast as the hardware allows"), so benchmark runs are recorded in a
 * stable JSON schema that can be committed, diffed and gated on:
 *
 *   { "schema": "jrs-bench-v1", "suite": "vm", "runs": [
 *       { "label": "vm/compress/jit/record", "events": N,
 *         "wall_seconds": s, "events_per_sec": r,
 *         "peak_rss_bytes": b, "metrics": { ... } } ] }
 *
 * `events_per_sec` — simulated instructions pushed through per host
 * second — is the throughput figure of merit; compareReports() flags
 * labels whose rate dropped more than a threshold vs a baseline
 * (jrs_bench --compare). BenchReport::parse is a self-contained JSON
 * reader for this schema (the tree deliberately has no external JSON
 * dependency), strict enough to reject files it did not write.
 *
 * Schema documented in DESIGN.md §10; produced by examples/jrs_bench
 * and the sweep benches' --bench-json flag; trajectory files live in
 * bench/BENCH_*.json.
 */
#ifndef JRS_PROF_BENCH_H
#define JRS_PROF_BENCH_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jrs::prof {

/** One measured scenario. */
struct BenchRun {
    std::string label;            ///< "suite/workload/mode/step"
    std::uint64_t events = 0;     ///< simulated instructions processed
    double wallSeconds = 0;       ///< host wall-clock for the step
    double eventsPerSec = 0;      ///< events / wallSeconds
    std::uint64_t peakRssBytes = 0;  ///< process peak RSS after step
    /** Extra scenario-specific figures (speedups, collections, ...). */
    std::vector<std::pair<std::string, double>> metrics;

    /** Value of metric @p name, or @p fallback when absent. */
    double metric(const std::string &name, double fallback = 0) const;
};

/** A set of runs under one suite name; see file comment. */
struct BenchReport {
    std::string suite;
    std::vector<BenchRun> runs;

    /** Run with @p label, or null. */
    const BenchRun *find(const std::string &label) const;

    /** Add @p run, replacing any existing run with the same label. */
    void upsert(BenchRun run);

    /** The full document, deterministic order (runs sorted by label). */
    std::string toJson() const;

    /** Write toJson() to @p path; throws VmError on I/O failure. */
    void writeJson(const std::string &path) const;

    /** Parse a jrs-bench-v1 document; throws VmError on mismatch. */
    static BenchReport parse(const std::string &json);

    /** Parse the file at @p path; throws VmError. */
    static BenchReport load(const std::string &path);

    /**
     * Load @p path if it exists and carries @p suite; otherwise an
     * empty report with that suite name. Lets the sweep benches
     * append their trajectory entry without a separate bootstrap.
     */
    static BenchReport loadOrEmpty(const std::string &path,
                                   const std::string &suite);
};

/** One label's baseline-vs-current comparison. */
struct CompareRow {
    std::string label;
    double baseline = 0;   ///< baseline events_per_sec
    double current = 0;    ///< current events_per_sec
    /** Throughput change in percent; negative = slower than baseline. */
    double deltaPct = 0;
    bool regressed = false;  ///< deltaPct < -maxRegressPct
};

/** Result of compareReports(). */
struct CompareResult {
    std::vector<CompareRow> rows;          ///< matched labels, sorted
    std::vector<std::string> onlyBaseline; ///< labels missing now
    std::vector<std::string> onlyCurrent;  ///< labels new now
    double worstDeltaPct = 0;              ///< most negative delta
    bool failed = false;  ///< any row regressed beyond the threshold

    /** Render as aligned text rows (one per label + verdict line). */
    std::string text(double maxRegressPct) const;
};

/**
 * Compare @p current against @p baseline: a label fails when its
 * events_per_sec dropped more than @p maxRegressPct percent. Labels
 * present on only one side are reported but never fail the compare
 * (suites grow over time).
 */
CompareResult compareReports(const BenchReport &baseline,
                             const BenchReport &current,
                             double maxRegressPct);

} // namespace jrs::prof

#endif // JRS_PROF_BENCH_H
