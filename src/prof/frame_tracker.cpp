#include "prof/frame_tracker.h"

#include <algorithm>

#include "isa/address_map.h"

namespace jrs::prof {

const char *
frameKindName(FrameKind k)
{
    switch (k) {
      case FrameKind::Root:
        return "root";
      case FrameKind::Method:
        return "method";
      case FrameKind::Runtime:
        return "runtime";
      case FrameKind::Translate:
        return "translate";
      case FrameKind::Gc:
        return "gc";
    }
    return "?";
}

FrameTracker::FrameTracker(const obs::MethodMap *map, Options opt)
    : map_(map), opt_(opt)
{
    frames_.emplace_back();
    frames_[0].kind = FrameKind::Root;
}

FrameTracker::Step
FrameTracker::begin(const TraceEvent &ev)
{
    Step step;
    // A Translate frame not closed by its install return (the
    // compilation aborted on an uncompilable construct) ends at the
    // first event from any other phase.
    if (ev.phase != Phase::Translate && overflow_ == 0 &&
        frames_.back().kind == FrameKind::Translate) {
        frames_.pop_back();
        ++abandoned_;
        step.closedTranslate = true;
    }

    // Lazy frame naming (see header): first attributable event wins.
    Frame &f = frames_.back();
    if (map_ != nullptr && f.methodRow < 0 &&
        (f.kind == FrameKind::Method || f.kind == FrameKind::Root)) {
        int row = -1;
        if (ev.phase == Phase::NativeExec)
            row = map_->rowOf(ev.pc);
        else if (ev.phase == Phase::Interpret && ev.kind == NKind::Load)
            row = map_->rowOf(ev.mem);
        if (row >= 0)
            f.methodRow = row;
    }
    return step;
}

FrameTracker::Action
FrameTracker::finish(const TraceEvent &ev)
{
    if (ev.kind == NKind::Call || ev.kind == NKind::IndirectCall) {
        const std::size_t before = frames_.size();
        push(ev);
        return frames_.size() > before ? Action::Push : Action::None;
    }
    if (ev.kind == NKind::Ret)
        return pop(ev) ? Action::Pop : Action::None;
    return Action::None;
}

void
FrameTracker::push(const TraceEvent &ev)
{
    if (frames_.size() + overflow_ >= opt_.maxDepth) {
        ++overflow_;
        ++overflowPushes_;
        return;
    }
    FrameKind kind;
    std::uint32_t methodId = 0;
    const char *stubName = nullptr;
    std::uint64_t id;
    if (stub::isMethodStub(ev.target)) {
        kind = FrameKind::Method;
        methodId = stub::methodIdOfStub(ev.target);
        id = methodId;
    } else if (ev.phase == Phase::Gc) {
        kind = FrameKind::Gc;
        stubName = "(gc)";
        id = 0;
    } else if (ev.phase == Phase::Translate) {
        kind = FrameKind::Translate;
        stubName = "(translate)";
        id = 0;
    } else {
        // Runtime service brackets, named by their call-site pc.
        kind = FrameKind::Runtime;
        if (ev.pc == stub::kAllocPc)
            stubName = "(alloc)";
        else if (ev.pc == stub::kAllocPc + 0x40)
            stubName = "(alloc.array)";
        else if (ev.pc == stub::kCopyPc)
            stubName = "(arraycopy)";
        else
            stubName = "(runtime)";
        id = ev.pc;
    }
    Frame f;
    f.key = (static_cast<std::uint64_t>(kind) << 56) |
            (id & 0xff'ffff'ffff'ffffull);
    f.kind = kind;
    f.methodId = methodId;
    f.stubName = stubName;
    frames_.push_back(f);
    maxDepthSeen_ = std::max(maxDepthSeen_, frames_.size());
}

bool
FrameTracker::pop(const TraceEvent &ev)
{
    FrameKind want;
    switch (ev.phase) {
      case Phase::Interpret:
      case Phase::NativeExec:
        want = FrameKind::Method;
        break;
      case Phase::Runtime:
        want = FrameKind::Runtime;
        break;
      case Phase::Gc:
        want = FrameKind::Gc;
        break;
      case Phase::Translate:
        // The translator returns from a per-bytecode routine to its
        // dispatch loop once per translated bytecode; only the final
        // install return closes the compilation's frame.
        if (ev.pc != stub::kTransInstallRet)
            return false;
        want = FrameKind::Translate;
        break;
      default:
        return false;
    }
    if (overflow_ > 0) {
        // The innermost open frames were depth-suppressed; this Ret
        // closes one of them.
        --overflow_;
        return false;
    }
    if (frames_.size() == 1) {
        ++unmatchedRets_;
        return false;
    }
    if (frames_.back().kind != want) {
        ++mismatchedRets_;
        return false;
    }
    frames_.pop_back();
    return true;
}

std::string
FrameTracker::frameName(const Frame &f) const
{
    if (f.kind == FrameKind::Root) {
        if (f.methodRow >= 0 && map_ != nullptr)
            return map_->name(f.methodRow);
        return "(root)";
    }
    if (f.kind == FrameKind::Method) {
        if (f.methodRow >= 0 && map_ != nullptr)
            return map_->name(f.methodRow);
        return "(method#" + std::to_string(f.methodId) + ")";
    }
    return f.stubName;
}

} // namespace jrs::prof
