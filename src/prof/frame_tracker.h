/**
 * @file
 * Shadow call-stack tracking over the trace stream: the Call/Ret
 * frame discipline shared by the exact profiler (prof/cct.h) and the
 * sampling profiler (prof/sampler.h).
 *
 * The stream's brackets are not uniformly balanced, so each pushed
 * frame records a kind and a Ret only pops a frame of the kind its
 * phase implies:
 *
 *  - Method frames (guest invokes): pushed on Call/IndirectCall to a
 *    per-method trampoline (stub::isMethodStub); popped by
 *    Interpret/NativeExec-phase Rets (guest returns).
 *  - Runtime frames (alloc / arraycopy service routines): balanced
 *    Runtime-phase brackets, named by their call-site pc.
 *  - Gc frames: balanced Phase::Gc brackets at gc::kGcPc.
 *  - Translate frames: ONE Call per compilation but a Ret per
 *    translated bytecode — only the final install return
 *    (pc == stub::kTransInstallRet) pops; a compilation abandoned
 *    mid-way (uncompilable construct) is closed at the first
 *    non-Translate event.
 *
 * Rets that find no matching frame (guest exception unwinds emit no
 * Ret, so a later outer Ret can arrive at the root; green-thread
 * interleavings nest one thread's frames in another's context) are
 * counted and ignored. Pushes past Options::maxDepth are suppressed
 * and tracked in a virtual overflow counter so pathological unwind
 * shapes cannot grow the stack unboundedly.
 *
 * Method frames are named lazily: the trampoline address encodes only
 * the MethodId, so a frame takes its MethodMap row from the first
 * attributable event inside it (the bytecode-fetch Load for
 * interpreted code, the native pc for compiled code). This keeps the
 * tracker independent of the Program, so disk-replayed traces with
 * only a .methods sidecar resolve fully.
 *
 * The per-event protocol is split in two so consumers can observe the
 * stack at the exact attribution point — after a stale Translate
 * frame is closed and the current frame is lazily named, but before
 * the event's own push/pop is applied (a Call's cost belongs to the
 * caller):
 *
 *     const FrameTracker::Step step = tracker.begin(ev);
 *     // stack() is now the context that owns ev
 *     ... attribute / sample ...
 *     const FrameTracker::Action act = tracker.finish(ev);
 *     // act says whether ev pushed or popped a frame
 *
 * CctBuilder mirrors Push/Pop into its node stack; the sampler only
 * walks stack() at sample points.
 */
#ifndef JRS_PROF_FRAME_TRACKER_H
#define JRS_PROF_FRAME_TRACKER_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/trace.h"
#include "obs/attribution.h"

namespace jrs::prof {

/** What kind of bracket opened a frame (see file comment). */
enum class FrameKind : std::uint8_t {
    Root,       ///< synthetic outermost frame (entry method)
    Method,     ///< guest invoke via a per-method trampoline
    Runtime,    ///< runtime service routine (alloc, arraycopy)
    Translate,  ///< one JIT compilation
    Gc,         ///< one collection
};

/** Human-readable frame-kind name (JSON enum value). */
const char *frameKindName(FrameKind k);

/** One open frame on the shadow stack. */
struct Frame {
    std::uint64_t key = 0;  ///< identity under parent (kind + id)
    FrameKind kind = FrameKind::Root;
    std::uint32_t methodId = 0;  ///< Method frames: trampoline id
    int methodRow = -1;     ///< lazily resolved MethodMap row
    const char *stubName = nullptr;  ///< non-method display name
};

/** Knobs for a tracking pass. */
struct FrameTrackerOptions {
    /** Deepest stack tracked; deeper pushes become virtual. */
    std::size_t maxDepth = 1024;
};

/** See file comment. */
class FrameTracker {
  public:
    using Options = FrameTrackerOptions;

    /** What FrameTracker::finish did with the event. */
    enum class Action : std::uint8_t {
        None,  ///< no stack change (or suppressed/ignored)
        Push,  ///< opened the frame now at stack().back()
        Pop,   ///< closed the previous stack().back()
    };

    /** What FrameTracker::begin did before the attribution point. */
    struct Step {
        /** A stale Translate frame was closed (abandoned). */
        bool closedTranslate = false;
    };

    /**
     * @p map resolves lazy method naming and must outlive the
     * tracker; pass null to skip resolution (shape-only tracking).
     */
    explicit FrameTracker(const obs::MethodMap *map = nullptr,
                          Options opt = {});

    /** First half of event processing; see file comment. */
    Step begin(const TraceEvent &ev);

    /** Second half; call exactly once after begin(ev). */
    Action finish(const TraceEvent &ev);

    /** Both halves, for consumers without an attribution point. */
    void onEvent(const TraceEvent &ev) {
        begin(ev);
        finish(ev);
    }

    /** Open frames, outermost (Root) first. Never empty. */
    const std::vector<Frame> &stack() const { return frames_; }

    /** Display name of @p f (lazy naming; see file comment). */
    std::string frameName(const Frame &f) const;

    /** Rets that arrived with only the root on the stack. */
    std::uint64_t unmatchedRets() const { return unmatchedRets_; }

    /** Rets whose phase did not match the open frame's kind. */
    std::uint64_t mismatchedRets() const { return mismatchedRets_; }

    /** Translate frames closed without their install return. */
    std::uint64_t abandonedTranslations() const { return abandoned_; }

    /** Pushes suppressed by Options::maxDepth. */
    std::uint64_t overflowPushes() const { return overflowPushes_; }

    /** Deepest stack reached (frames, root included). */
    std::size_t maxDepthSeen() const { return maxDepthSeen_; }

  private:
    void push(const TraceEvent &ev);
    bool pop(const TraceEvent &ev);

    const obs::MethodMap *map_;
    Options opt_;
    std::vector<Frame> frames_;
    std::uint64_t overflow_ = 0;  ///< depth beyond maxDepth (virtual)
    std::uint64_t unmatchedRets_ = 0;
    std::uint64_t mismatchedRets_ = 0;
    std::uint64_t abandoned_ = 0;
    std::uint64_t overflowPushes_ = 0;
    std::size_t maxDepthSeen_ = 1;
};

} // namespace jrs::prof

#endif // JRS_PROF_FRAME_TRACKER_H
