/**
 * @file
 * Calling-context tree (CCT) profiling over the trace stream.
 *
 * obs/perf.h answers "which method is expensive" as flat tables; this
 * pass answers "expensive *called from where*". A CctBuilder follows
 * the stream's Call/Ret brackets (the well-known stub pcs in
 * isa/address_map.h) to maintain a calling-context stack, creating
 * one tree node per distinct context, and folds every retired
 * instruction's CPI-stack sample (arch/outcome.h) into the node that
 * was current when the instruction was observed. Phase is a dimension
 * on every node — collector and translation work show up *in the
 * calling context that triggered them*, split per Phase.
 *
 * Frame discipline (Method/Runtime/Gc/Translate brackets, lazy
 * method naming, unmatched-Ret tolerance, depth overflow) lives in
 * prof/frame_tracker.h, shared with the sampling profiler
 * (prof/sampler.h); this builder mirrors the tracker's pushes and
 * pops into a node stack. The stack may then be an approximation of
 * the true context (exception unwinds, green threads), but
 * attribution still conserves exactly: every event and every CPI
 * sample lands in exactly one node, so
 *
 *     sum over nodes of self cycles == PipelineSim::cycles()
 *
 * bit-for-bit (tested in tests/test_prof.cpp), regardless of stack
 * shape. Method frames fall back to "(method#N)" until the tracker
 * resolves a MethodMap row.
 *
 * Output: one stable "jrs-cct-v1" JSON document (schema in DESIGN.md
 * §10), Brendan-Gregg folded-stack text (`a;b;c_[i] 123` — the leaf
 * frame carries a phase suffix: _[i] interpret, _[t] translate,
 * _[j] native/JIT, _[r] runtime, _[gc] collector), and a two-run
 * differential folded output (`stack valueA valueB`, the difffolded
 * convention) for e.g. interp-vs-jit or gc-on-vs-off flamegraphs.
 */
#ifndef JRS_PROF_CCT_H
#define JRS_PROF_CCT_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "arch/outcome.h"
#include "arch/pipeline/pipeline.h"
#include "isa/trace.h"
#include "obs/attribution.h"
#include "prof/frame_tracker.h"

namespace jrs::prof {

/** One calling context: a path of frames from the root. */
struct CctNode {
    std::uint64_t key = 0;    ///< identity under parent (kind + id)
    FrameKind kind = FrameKind::Root;
    int parent = -1;          ///< node index, -1 for the root
    std::uint32_t methodId = 0;  ///< Method frames: trampoline id
    int methodRow = -1;       ///< lazily resolved MethodMap row
    const char *stubName = nullptr;  ///< non-method display name
    std::uint64_t calls = 0;  ///< times this context was entered
    std::uint64_t events = 0;  ///< self trace events (not children)
    std::uint64_t phaseEvents[kNumPhases] = {};
    std::uint64_t cpi[kNumCpiComponents] = {};  ///< self cycles
    std::uint64_t phaseCycles[kNumPhases] = {};
    std::vector<int> kids;    ///< child node indices

    /** Self cycles attributed here (sum of the CPI stack). */
    std::uint64_t cycles() const {
        std::uint64_t t = 0;
        for (const std::uint64_t c : cpi)
            t += c;
        return t;
    }
};

/** Knobs for a CCT pass. */
struct CctOptions {
    /**
     * Deepest stack tracked. Pushes beyond it are suppressed (their
     * events accrue to the deepest real frame) and counted, so
     * pathological unwind shapes cannot grow the tree unboundedly.
     */
    std::size_t maxDepth = 1024;
};

/** One folded-stack output line (before rendering). */
struct FoldedLine {
    std::string stack;     ///< "frame;frame;leaf_[suffix]"
    std::uint64_t value;   ///< self cycles (or events, see foldedLines)
};

/**
 * Folded-stack phase suffix for phase index @p p: "_[i]" interpret,
 * "_[t]" translate, "_[j]" native/JIT, "_[r]" runtime, "_[gc]"
 * collector (flamegraph.pl renders _[x]-suffixed frames in their own
 * hue). Shared by the exact and sampled folded writers.
 */
const char *foldedPhaseSuffix(std::size_t p);

/** See file comment. */
class CctBuilder : public TraceSink, public OutcomeListener {
  public:
    using Options = CctOptions;

    /** @p map must outlive the builder. */
    explicit CctBuilder(const obs::MethodMap &map, Options opt = {});

    // --- TraceSink (subscribe *before* the model, like PerfAttribution)
    void onEvent(const TraceEvent &ev) override;
    void onFinish() override {}

    // --- OutcomeListener (wired to the pipeline model)
    void onRetire(const CpiSample &s) override;

    /** All nodes; index 0 is the root. Parent/kids index into this. */
    const std::vector<CctNode> &nodes() const { return nodes_; }

    /** Trace events observed (== sum of node self events). */
    std::uint64_t totalEvents() const { return events_; }

    /** Cycles observed (== sum of node self cycles). */
    std::uint64_t totalCycles() const { return cycles_; }

    /** Rets that arrived with only the root on the stack. */
    std::uint64_t unmatchedRets() const {
        return tracker_.unmatchedRets();
    }

    /** Rets whose phase did not match the open frame's kind. */
    std::uint64_t mismatchedRets() const {
        return tracker_.mismatchedRets();
    }

    /** Translate frames closed without their install return. */
    std::uint64_t abandonedTranslations() const {
        return tracker_.abandonedTranslations();
    }

    /** Pushes suppressed by CctOptions::maxDepth. */
    std::uint64_t overflowPushes() const {
        return tracker_.overflowPushes();
    }

    /** Deepest stack reached (frames, root included). */
    std::size_t maxDepthSeen() const {
        return tracker_.maxDepthSeen();
    }

    const obs::MethodMap &map() const { return *map_; }

    /** Display name of @p n (see file comment on lazy naming). */
    std::string nodeName(const CctNode &n) const;

    /**
     * Folded-stack lines, one per node x non-empty phase, leaf frame
     * suffixed with the phase. Values are self cycles when a pipeline
     * listener fed the builder, self events otherwise (cache-only
     * replays). Deterministic order (DFS, children sorted by name).
     */
    std::vector<FoldedLine> foldedLines() const;

    /**
     * One run object of the "jrs-cct-v1" document, indented for
     * nesting under "runs". Deterministic node ids and field order.
     */
    std::string runJson(const std::string &label) const;

  private:
    int childOf(int parent, FrameKind kind, std::uint64_t key,
                std::uint32_t methodId, const char *stubName);
    /** DFS over @p n's children sorted by display name. */
    template <class Fn>
    void walk(int n, std::vector<int> &path, Fn &&fn) const;
    std::vector<int> sortedKids(const CctNode &n) const;

    const obs::MethodMap *map_;
    FrameTracker tracker_;       ///< shared frame discipline
    std::vector<CctNode> nodes_;
    std::vector<int> stack_;     ///< node indices, root at [0]
    int attrNode_ = 0;           ///< node receiving the next CpiSample
    std::uint64_t events_ = 0;
    std::uint64_t cycles_ = 0;
};

/**
 * Self-contained sweep/bench sink: a PipelineSim observed by a
 * CctBuilder, with the subscribe-before-model ordering and the
 * listener hookup wired (the AttributedPipeline pattern). The
 * MethodMap is shared so the composite can outlive the run that
 * built it (sweep replay).
 */
class CctPipeline : public TraceSink {
  public:
    CctPipeline(PipelineConfig cfg,
                std::shared_ptr<const obs::MethodMap> map,
                CctOptions opt = {})
        : map_(std::move(map)), pipe_(cfg), cct_(*map_, opt)
    {
        pipe_.setListener(&cct_);
    }

    void onEvent(const TraceEvent &ev) override {
        cct_.onEvent(ev);
        pipe_.onEvent(ev);
    }
    void onFinish() override { cct_.onFinish(); }

    PipelineSim &pipeline() { return pipe_; }
    const PipelineSim &pipeline() const { return pipe_; }
    CctBuilder &cct() { return cct_; }
    const CctBuilder &cct() const { return cct_; }

  private:
    std::shared_ptr<const obs::MethodMap> map_;
    PipelineSim pipe_;
    CctBuilder cct_;
};

/**
 * Thread-safe collection of labeled CCT snapshots, rendered as one
 * "jrs-cct-v1" document and/or one folded-stack file. Runs are
 * sorted by label so output is stable regardless of which sweep
 * worker finished first. Re-adding a label replaces its snapshot.
 */
class CctReportSet {
  public:
    void add(const std::string &label, const CctBuilder &cct);

    std::size_t size() const;

    /** The full "jrs-cct-v1" document. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws VmError on I/O failure. */
    void writeJson(const std::string &path) const;

    /**
     * Write all runs' folded lines to @p path. With more than one
     * run each stack is prefixed with its run label as the outermost
     * frame, so one flamegraph shows the runs side by side.
     */
    void writeFolded(const std::string &path) const;

    /** Folded lines of run @p label (empty when absent). */
    std::vector<FoldedLine> folded(const std::string &label) const;

  private:
    struct Snapshot {
        std::string json;
        std::vector<FoldedLine> folded;
    };
    mutable std::mutex mu_;
    std::vector<std::pair<std::string, Snapshot>> runs_;
};

/**
 * Merge two runs' folded lines into difffolded-format text: one line
 * per stack present in either run, "stack valueA valueB", sorted.
 * flamegraph.pl --negate renders the regression view directly.
 */
std::string foldedDiff(const std::vector<FoldedLine> &a,
                       const std::vector<FoldedLine> &b);

/** Write foldedDiff() to @p path; throws VmError on I/O failure. */
void writeFoldedDiff(const std::vector<FoldedLine> &a,
                     const std::vector<FoldedLine> &b,
                     const std::string &path);

} // namespace jrs::prof

#endif // JRS_PROF_CCT_H
