#include "prof/sampler.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.h"
#include "support/statistics.h"
#include "vm/runtime/vm_error.h"

namespace jrs::prof {

namespace {

using obs::jsonEscape;
using obs::jsonNumber;

/** Shares sorted hottest-first, ties broken by name (determinism). */
std::vector<std::pair<std::string, double>>
byShareDesc(std::vector<std::pair<std::string, double>> shares)
{
    std::sort(shares.begin(), shares.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    return shares;
}

int
sign(double v)
{
    if (v > 0)
        return 1;
    if (v < 0)
        return -1;
    return 0;
}

} // namespace

SamplingProfiler::SamplingProfiler(const obs::MethodMap &map,
                                   Options opt)
    : map_(&map), opt_(opt),
      tracker_(&map, FrameTrackerOptions{opt.maxDepth}),
      prng_(opt.seed)
{
    nodes_.emplace_back();
    nodes_[0].kind = FrameKind::Root;
    nextAt_ = jitteredGap(prng_, opt_.period);
}

void
SamplingProfiler::onEvent(const TraceEvent &ev)
{
    // Finish the previous event's deferred push/pop (see header
    // member comment), then move the tracker to this event's
    // attribution point.
    if (hasPending_)
        tracker_.finish(pendingEv_);
    tracker_.begin(ev);
    pendingEv_ = ev;
    hasPending_ = true;
    lastKind_ = ev.kind;

    if (!opt_.cycleClock) {
        ++clock_;
        maybeSample(ev.phase, ev.kind);
    }
}

void
SamplingProfiler::onRetire(const CpiSample &s)
{
    if (!opt_.cycleClock)
        return;
    clock_ += s.total();
    maybeSample(s.phase, lastKind_);
}

void
SamplingProfiler::maybeSample(Phase phase, NKind kind)
{
    // A single retired instruction can jump the clock past several
    // thresholds (a long miss penalty); cycle-proportional sampling
    // takes one sample per crossing, all at the same stack.
    while (clock_ >= nextAt_) {
        takeSample(phase, kind);
        nextAt_ += jitteredGap(prng_, opt_.period);
    }
}

int
SamplingProfiler::childOf(int parent, const Frame &f)
{
    for (const int k : nodes_[parent].kids) {
        if (nodes_[k].key == f.key) {
            if (nodes_[k].methodRow < 0)
                nodes_[k].methodRow = f.methodRow;
            return k;
        }
    }
    const int id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    SampleNode &n = nodes_.back();
    n.key = f.key;
    n.kind = f.kind;
    n.parent = parent;
    n.methodId = f.methodId;
    n.methodRow = f.methodRow;
    n.stubName = f.stubName;
    nodes_[parent].kids.push_back(id);
    return id;
}

void
SamplingProfiler::takeSample(Phase phase, NKind kind)
{
    const std::vector<Frame> &fr = tracker_.stack();
    if (nodes_[0].methodRow < 0)
        nodes_[0].methodRow = fr[0].methodRow;
    int cur = 0;
    for (std::size_t i = 1; i < fr.size(); ++i)
        cur = childOf(cur, fr[i]);
    SampleNode &n = nodes_[cur];
    ++n.samples;
    ++n.phaseSamples[static_cast<std::size_t>(phase)];
    ++samples_;
    ++kindSamples_[static_cast<std::size_t>(kind)];
}

std::string
SamplingProfiler::nodeName(const SampleNode &n) const
{
    if (n.kind == FrameKind::Root) {
        if (n.methodRow >= 0)
            return map_->name(n.methodRow);
        return "(root)";
    }
    if (n.kind == FrameKind::Method) {
        if (n.methodRow >= 0)
            return map_->name(n.methodRow);
        return "(method#" + std::to_string(n.methodId) + ")";
    }
    return n.stubName;
}

std::vector<int>
SamplingProfiler::sortedKids(const SampleNode &n) const
{
    std::vector<int> kids = n.kids;
    std::sort(kids.begin(), kids.end(), [this](int a, int b) {
        const std::string na = nodeName(nodes_[a]);
        const std::string nb = nodeName(nodes_[b]);
        if (na != nb)
            return na < nb;
        return nodes_[a].key < nodes_[b].key;
    });
    return kids;
}

template <class Fn>
void
SamplingProfiler::walk(int n, std::vector<int> &path, Fn &&fn) const
{
    path.push_back(n);
    fn(n, path);
    for (const int k : sortedKids(nodes_[n]))
        walk(k, path, fn);
    path.pop_back();
}

std::vector<FoldedLine>
SamplingProfiler::foldedLines() const
{
    std::vector<FoldedLine> out;
    std::vector<int> path;
    walk(0, path, [&](int n, const std::vector<int> &p) {
        const SampleNode &node = nodes_[n];
        std::string prefix;
        for (std::size_t i = 0; i < p.size(); ++i) {
            if (i > 0)
                prefix += ';';
            prefix += nodeName(nodes_[p[i]]);
        }
        for (std::size_t ph = 0; ph < kNumPhases; ++ph) {
            const std::uint64_t v = node.phaseSamples[ph];
            if (v == 0)
                continue;
            out.push_back({prefix + foldedPhaseSuffix(ph), v});
        }
    });
    return out;
}

std::string
SamplingProfiler::runJson(const std::string &label) const
{
    // Remap node ids to DFS order (children sorted by name) so the
    // document is deterministic across runs of the same stream.
    std::vector<int> order;
    std::vector<int> newId(nodes_.size(), -1);
    {
        std::vector<int> path;
        walk(0, path, [&](int n, const std::vector<int> &) {
            newId[n] = static_cast<int>(order.size());
            order.push_back(n);
        });
    }

    std::ostringstream os;
    os << "    {\n";
    os << "      \"label\": \"" << jsonEscape(label) << "\",\n";
    os << "      \"clock\": \""
       << (opt_.cycleClock ? "cycles" : "events") << "\",\n";
    os << "      \"period\": " << opt_.period << ",\n";
    os << "      \"seed\": " << opt_.seed << ",\n";
    os << "      \"samples\": " << samples_ << ",\n";
    os << "      \"clock_total\": " << clock_ << ",\n";
    os << "      \"nodes_total\": " << nodes_.size() << ",\n";
    os << "      \"max_depth\": " << tracker_.maxDepthSeen() << ",\n";
    os << "      \"unmatched_rets\": " << tracker_.unmatchedRets()
       << ",\n";
    os << "      \"kinds\": {";
    bool firstKind = true;
    for (std::size_t k = 0; k < kNumNKinds; ++k) {
        if (kindSamples_[k] == 0)
            continue;
        if (!firstKind)
            os << ", ";
        firstKind = false;
        os << '"' << nkindName(static_cast<NKind>(k))
           << "\": " << kindSamples_[k];
    }
    os << "},\n";
    os << "      \"nodes\": [\n";
    for (std::size_t i = 0; i < order.size(); ++i) {
        const SampleNode &n = nodes_[order[i]];
        os << "        {\"id\": " << i << ", \"parent\": "
           << (n.parent < 0 ? -1 : newId[n.parent]) << ", \"name\": \""
           << jsonEscape(nodeName(n)) << "\", \"kind\": \""
           << frameKindName(n.kind)
           << "\", \"samples\": " << n.samples << ",\n";
        os << "         \"phases\": {";
        bool first = true;
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            if (n.phaseSamples[p] == 0)
                continue;
            if (!first)
                os << ", ";
            first = false;
            os << '"' << phaseName(static_cast<Phase>(p))
               << "\": " << n.phaseSamples[p];
        }
        os << "},\n";
        os << "         \"children\": [";
        const std::vector<int> kids = sortedKids(n);
        for (std::size_t k = 0; k < kids.size(); ++k) {
            if (k > 0)
                os << ", ";
            os << newId[kids[k]];
        }
        os << "]}";
        os << (i + 1 < order.size() ? ",\n" : "\n");
    }
    os << "      ]\n";
    os << "    }";
    return os.str();
}

void
SampleReportSet::add(const std::string &label,
                     const SamplingProfiler &s)
{
    Snapshot snap{s.runJson(label), s.foldedLines()};
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto &r : runs_) {
        if (r.first == label) {
            r.second = std::move(snap);
            return;
        }
    }
    runs_.emplace_back(label, std::move(snap));
}

std::size_t
SampleReportSet::size() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return runs_.size();
}

std::string
SampleReportSet::toJson() const
{
    std::vector<std::pair<std::string, Snapshot>> runs;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        runs = runs_;
    }
    std::sort(runs.begin(), runs.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::string out;
    out += "{\n  \"schema\": \"jrs-sample-v1\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        out += runs[i].second.json;
        out += i + 1 < runs.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
SampleReportSet::writeJson(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        throw VmError("cannot write sample report: " + path);
    f << toJson();
}

void
SampleReportSet::writeFolded(const std::string &path) const
{
    std::vector<std::pair<std::string, Snapshot>> runs;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        runs = runs_;
    }
    std::sort(runs.begin(), runs.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        throw VmError("cannot write folded samples: " + path);
    for (const auto &[label, snap] : runs) {
        for (const FoldedLine &l : snap.folded) {
            if (runs.size() > 1)
                f << label << ';';
            f << l.stack << ' ' << l.value << '\n';
        }
    }
}

std::vector<FoldedLine>
SampleReportSet::folded(const std::string &label) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[l, snap] : runs_) {
        if (l == label)
            return snap.folded;
    }
    return {};
}

double
topShareOverlap(
    const std::vector<std::pair<std::string, double>> &exact,
    const std::vector<std::pair<std::string, double>> &sampled,
    std::size_t n)
{
    const auto a = byShareDesc(exact);
    const auto b = byShareDesc(sampled);
    const std::size_t k = std::min({n, a.size(), b.size()});
    if (k == 0)
        return 1.0;
    std::set<std::string> hotA;
    for (std::size_t i = 0; i < k; ++i)
        hotA.insert(a[i].first);
    std::size_t shared = 0;
    for (std::size_t i = 0; i < k; ++i) {
        if (hotA.count(b[i].first) != 0)
            ++shared;
    }
    return static_cast<double>(shared) / static_cast<double>(k);
}

double
shareRankAgreement(
    const std::vector<std::pair<std::string, double>> &exact,
    const std::vector<std::pair<std::string, double>> &sampled)
{
    std::map<std::string, double> b;
    for (const auto &[name, v] : sampled)
        b[name] = v;
    // Common names only, in name order (the result is order-free,
    // this just makes the pair walk deterministic).
    std::vector<std::pair<double, double>> common;
    std::map<std::string, double> a;
    for (const auto &[name, v] : exact)
        a[name] = v;
    for (const auto &[name, va] : a) {
        const auto it = b.find(name);
        if (it != b.end())
            common.emplace_back(va, it->second);
    }
    if (common.size() < 2)
        return 1.0;
    std::uint64_t concordant = 0, pairs = 0;
    for (std::size_t i = 0; i < common.size(); ++i) {
        for (std::size_t j = i + 1; j < common.size(); ++j) {
            ++pairs;
            if (sign(common[i].first - common[j].first) ==
                sign(common[i].second - common[j].second))
                ++concordant;
        }
    }
    return static_cast<double>(concordant) /
           static_cast<double>(pairs);
}

CalibrationReport
calibrate(const CctBuilder &exact, const SamplingProfiler &sampled,
          std::size_t topN)
{
    const bool cycles = exact.totalCycles() > 0;
    std::map<std::string, std::uint64_t> exactBy;
    std::uint64_t exactTotal = 0;
    for (const CctNode &n : exact.nodes()) {
        const std::uint64_t v = cycles ? n.cycles() : n.events;
        if (v == 0)
            continue;
        exactBy[exact.nodeName(n)] += v;
        exactTotal += v;
    }
    std::map<std::string, std::uint64_t> sampledBy;
    for (const SampleNode &n : sampled.nodes()) {
        if (n.samples != 0)
            sampledBy[sampled.nodeName(n)] += n.samples;
    }
    const std::uint64_t sampleTotal = sampled.samples();

    CalibrationReport rep;
    rep.value = cycles ? "cycles" : "events";
    rep.samples = sampleTotal;
    rep.topN = topN;

    std::set<std::string> names;
    for (const auto &[name, v] : exactBy)
        names.insert(name);
    for (const auto &[name, v] : sampledBy)
        names.insert(name);

    std::vector<std::pair<std::string, double>> exactShares;
    std::vector<std::pair<std::string, double>> sampledShares;
    double errSum = 0;
    for (const std::string &name : names) {
        CalibrationRow row;
        row.name = name;
        const auto e = exactBy.find(name);
        if (e != exactBy.end()) {
            row.exactValue = e->second;
            if (exactTotal > 0)
                row.exactShare = static_cast<double>(e->second) /
                                 static_cast<double>(exactTotal);
        }
        const auto s = sampledBy.find(name);
        if (s != sampledBy.end()) {
            row.sampleCount = s->second;
            if (sampleTotal > 0)
                row.sampledShare = static_cast<double>(s->second) /
                                   static_cast<double>(sampleTotal);
        }
        const double err =
            std::abs(row.exactShare - row.sampledShare) * 100.0;
        errSum += err;
        rep.maxAbsErrPct = std::max(rep.maxAbsErrPct, err);
        exactShares.emplace_back(name, row.exactShare);
        sampledShares.emplace_back(name, row.sampledShare);
        rep.rows.push_back(std::move(row));
    }
    if (!rep.rows.empty())
        rep.meanAbsErrPct = errSum / static_cast<double>(
                                         rep.rows.size());
    std::sort(rep.rows.begin(), rep.rows.end(),
              [](const CalibrationRow &a, const CalibrationRow &b) {
                  if (a.exactShare != b.exactShare)
                      return a.exactShare > b.exactShare;
                  return a.name < b.name;
              });
    rep.topOverlap = topShareOverlap(exactShares, sampledShares,
                                     topN);
    rep.rankAgreement = shareRankAgreement(exactShares,
                                           sampledShares);
    return rep;
}

std::string
CalibrationReport::text(std::size_t maxRows) const
{
    std::ostringstream os;
    os << "  method                               exact%  sampled%"
          "    |err|\n";
    const std::size_t shown = std::min(maxRows, rows.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const CalibrationRow &r = rows[i];
        std::string name = r.name;
        if (name.size() > 35)
            name = name.substr(0, 32) + "...";
        os << "  " << name
           << std::string(name.size() < 35 ? 35 - name.size() : 0,
                          ' ');
        const auto cell = [&os](double v) {
            const std::string s = fixed(v, 2);
            os << std::string(s.size() < 9 ? 9 - s.size() : 0, ' ')
               << s;
        };
        cell(r.exactShare * 100.0);
        cell(r.sampledShare * 100.0);
        cell(std::abs(r.exactShare - r.sampledShare) * 100.0);
        os << '\n';
    }
    if (shown < rows.size())
        os << "  ... " << rows.size() - shown << " more\n";
    os << "  samples=" << samples << " value=" << value
       << " mean|err|=" << fixed(meanAbsErrPct, 3)
       << "% max|err|=" << fixed(maxAbsErrPct, 3) << "% top" << topN
       << " overlap=" << fixed(topOverlap, 2)
       << " rank agreement=" << fixed(rankAgreement, 3) << '\n';
    return os.str();
}

} // namespace jrs::prof
