#include "prof/cct.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "vm/runtime/vm_error.h"

namespace jrs::prof {

namespace {

using obs::jsonEscape;

/** Brendan-Gregg style leaf annotations, indexed by Phase. */
const char *const kPhaseSuffix[kNumPhases] = {
    "_[i]",   // Interpret
    "_[t]",   // Translate
    "_[j]",   // NativeExec (JIT-generated code)
    "_[r]",   // Runtime
    "_[gc]",  // Gc
};

} // namespace

const char *
foldedPhaseSuffix(std::size_t p)
{
    return kPhaseSuffix[p];
}

CctBuilder::CctBuilder(const obs::MethodMap &map, Options opt)
    : map_(&map),
      tracker_(&map, FrameTrackerOptions{opt.maxDepth})
{
    nodes_.emplace_back();
    nodes_[0].kind = FrameKind::Root;
    nodes_[0].calls = 1;
    stack_.push_back(0);
}

int
CctBuilder::childOf(int parent, FrameKind kind, std::uint64_t key,
                    std::uint32_t methodId, const char *stubName)
{
    for (const int k : nodes_[parent].kids) {
        if (nodes_[k].key == key)
            return k;
    }
    const int id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    CctNode &n = nodes_.back();
    n.key = key;
    n.kind = kind;
    n.parent = parent;
    n.methodId = methodId;
    n.stubName = stubName;
    nodes_[parent].kids.push_back(id);
    return id;
}

void
CctBuilder::onEvent(const TraceEvent &ev)
{
    // The tracker closes an abandoned Translate frame before the
    // attribution point; mirror that into the node stack.
    if (tracker_.begin(ev).closedTranslate)
        stack_.pop_back();

    const int cur = stack_.back();
    CctNode &n = nodes_[cur];

    // Mirror the tracker's lazily resolved method row (frames and
    // nodes advance in lockstep, so the frame at the same depth is
    // this node's current activation).
    if (n.methodRow < 0)
        n.methodRow = tracker_.stack()[stack_.size() - 1].methodRow;

    ++events_;
    ++n.events;
    ++n.phaseEvents[static_cast<std::size_t>(ev.phase)];
    // The CpiSample the model fires while processing this very event
    // belongs to this context, even when the event itself pushes or
    // pops a frame (a Call's own cycles are the caller's).
    attrNode_ = cur;

    switch (tracker_.finish(ev)) {
      case FrameTracker::Action::Push: {
        const Frame &f = tracker_.stack().back();
        const int child =
            childOf(cur, f.kind, f.key, f.methodId, f.stubName);
        ++nodes_[child].calls;
        stack_.push_back(child);
        break;
      }
      case FrameTracker::Action::Pop:
        stack_.pop_back();
        break;
      case FrameTracker::Action::None:
        break;
    }
}

void
CctBuilder::onRetire(const CpiSample &s)
{
    CctNode &n = nodes_[attrNode_];
    const std::size_t p = static_cast<std::size_t>(s.phase);
    for (std::size_t c = 0; c < kNumCpiComponents; ++c)
        n.cpi[c] += s.cycles[c];
    const std::uint64_t t = s.total();
    n.phaseCycles[p] += t;
    cycles_ += t;
}

std::string
CctBuilder::nodeName(const CctNode &n) const
{
    if (n.kind == FrameKind::Root) {
        if (n.methodRow >= 0)
            return map_->name(n.methodRow);
        return "(root)";
    }
    if (n.kind == FrameKind::Method) {
        if (n.methodRow >= 0)
            return map_->name(n.methodRow);
        return "(method#" + std::to_string(n.methodId) + ")";
    }
    return n.stubName;
}

std::vector<int>
CctBuilder::sortedKids(const CctNode &n) const
{
    std::vector<int> kids = n.kids;
    std::sort(kids.begin(), kids.end(), [this](int a, int b) {
        const std::string na = nodeName(nodes_[a]);
        const std::string nb = nodeName(nodes_[b]);
        if (na != nb)
            return na < nb;
        return nodes_[a].key < nodes_[b].key;
    });
    return kids;
}

template <class Fn>
void
CctBuilder::walk(int n, std::vector<int> &path, Fn &&fn) const
{
    path.push_back(n);
    fn(n, path);
    for (const int k : sortedKids(nodes_[n]))
        walk(k, path, fn);
    path.pop_back();
}

std::vector<FoldedLine>
CctBuilder::foldedLines() const
{
    const bool useCycles = cycles_ > 0;
    std::vector<FoldedLine> out;
    std::vector<int> path;
    walk(0, path, [&](int n, const std::vector<int> &p) {
        const CctNode &node = nodes_[n];
        std::string prefix;
        for (std::size_t i = 0; i < p.size(); ++i) {
            if (i > 0)
                prefix += ';';
            prefix += nodeName(nodes_[p[i]]);
        }
        for (std::size_t ph = 0; ph < kNumPhases; ++ph) {
            const std::uint64_t v = useCycles ? node.phaseCycles[ph]
                                              : node.phaseEvents[ph];
            if (v == 0)
                continue;
            out.push_back({prefix + kPhaseSuffix[ph], v});
        }
    });
    return out;
}

std::string
CctBuilder::runJson(const std::string &label) const
{
    // Remap node ids to DFS order (children sorted by name) so the
    // document is deterministic across runs of the same stream.
    std::vector<int> order;
    std::vector<int> newId(nodes_.size(), -1);
    {
        std::vector<int> path;
        walk(0, path, [&](int n, const std::vector<int> &) {
            newId[n] = static_cast<int>(order.size());
            order.push_back(n);
        });
    }

    std::ostringstream os;
    os << "    {\n";
    os << "      \"label\": \"" << jsonEscape(label) << "\",\n";
    os << "      \"value\": \""
       << (cycles_ > 0 ? "cycles" : "events") << "\",\n";
    os << "      \"events\": " << events_ << ",\n";
    os << "      \"cycles\": " << cycles_ << ",\n";
    os << "      \"nodes_total\": " << nodes_.size() << ",\n";
    os << "      \"max_depth\": " << maxDepthSeen() << ",\n";
    os << "      \"unmatched_rets\": " << unmatchedRets() << ",\n";
    os << "      \"mismatched_rets\": " << mismatchedRets() << ",\n";
    os << "      \"abandoned_translations\": " << abandonedTranslations()
       << ",\n";
    os << "      \"overflow_pushes\": " << overflowPushes() << ",\n";
    os << "      \"nodes\": [\n";
    for (std::size_t i = 0; i < order.size(); ++i) {
        const CctNode &n = nodes_[order[i]];
        os << "        {\"id\": " << i << ", \"parent\": "
           << (n.parent < 0 ? -1 : newId[n.parent]) << ", \"name\": \""
           << jsonEscape(nodeName(n)) << "\", \"kind\": \""
           << frameKindName(n.kind) << "\", \"calls\": " << n.calls
           << ", \"events\": " << n.events
           << ", \"cycles\": " << n.cycles() << ",\n";
        os << "         \"cpi\": {";
        for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
            if (c > 0)
                os << ", ";
            os << '"'
               << cpiComponentName(static_cast<CpiComponent>(c))
               << "\": " << n.cpi[c];
        }
        os << "},\n";
        os << "         \"phases\": {";
        bool first = true;
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            if (n.phaseEvents[p] == 0 && n.phaseCycles[p] == 0)
                continue;
            if (!first)
                os << ", ";
            first = false;
            os << '"' << phaseName(static_cast<Phase>(p))
               << "\": {\"events\": " << n.phaseEvents[p]
               << ", \"cycles\": " << n.phaseCycles[p] << '}';
        }
        os << "},\n";
        os << "         \"children\": [";
        const std::vector<int> kids = sortedKids(n);
        for (std::size_t k = 0; k < kids.size(); ++k) {
            if (k > 0)
                os << ", ";
            os << newId[kids[k]];
        }
        os << "]}";
        os << (i + 1 < order.size() ? ",\n" : "\n");
    }
    os << "      ]\n";
    os << "    }";
    return os.str();
}

void
CctReportSet::add(const std::string &label, const CctBuilder &cct)
{
    Snapshot snap{cct.runJson(label), cct.foldedLines()};
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto &r : runs_) {
        if (r.first == label) {
            r.second = std::move(snap);
            return;
        }
    }
    runs_.emplace_back(label, std::move(snap));
}

std::size_t
CctReportSet::size() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return runs_.size();
}

std::string
CctReportSet::toJson() const
{
    std::vector<std::pair<std::string, Snapshot>> runs;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        runs = runs_;
    }
    std::sort(runs.begin(), runs.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::string out;
    out += "{\n  \"schema\": \"jrs-cct-v1\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        out += runs[i].second.json;
        out += i + 1 < runs.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
CctReportSet::writeJson(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        throw VmError("cannot write CCT report: " + path);
    f << toJson();
}

void
CctReportSet::writeFolded(const std::string &path) const
{
    std::vector<std::pair<std::string, Snapshot>> runs;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        runs = runs_;
    }
    std::sort(runs.begin(), runs.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        throw VmError("cannot write folded stacks: " + path);
    for (const auto &[label, snap] : runs) {
        for (const FoldedLine &l : snap.folded) {
            if (runs.size() > 1)
                f << label << ';';
            f << l.stack << ' ' << l.value << '\n';
        }
    }
}

std::vector<FoldedLine>
CctReportSet::folded(const std::string &label) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[l, snap] : runs_) {
        if (l == label)
            return snap.folded;
    }
    return {};
}

std::string
foldedDiff(const std::vector<FoldedLine> &a,
           const std::vector<FoldedLine> &b)
{
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> m;
    for (const FoldedLine &l : a)
        m[l.stack].first += l.value;
    for (const FoldedLine &l : b)
        m[l.stack].second += l.value;
    std::string out;
    for (const auto &[stack, v] : m) {
        out += stack;
        out += ' ';
        out += std::to_string(v.first);
        out += ' ';
        out += std::to_string(v.second);
        out += '\n';
    }
    return out;
}

void
writeFoldedDiff(const std::vector<FoldedLine> &a,
                const std::vector<FoldedLine> &b,
                const std::string &path)
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        throw VmError("cannot write folded diff: " + path);
    f << foldedDiff(a, b);
}

} // namespace jrs::prof
