/**
 * @file
 * Deterministic statistical sampling profiler over the trace stream,
 * with ground-truth calibration against the exact profiler.
 *
 * The exact passes (obs/perf.h, prof/cct.h) observe every event;
 * production profilers cannot, they sample. This simulator is in the
 * rare position of holding bit-exact ground truth for the same run,
 * so its sampler exists for two jobs: model what a sampling profiler
 * would have reported, and *quantify* how wrong that report is as a
 * function of sampling period (bench/abl_sample_period.cpp records
 * the error-vs-period and overhead-vs-period curves).
 *
 * Mechanics. A SamplingProfiler rides the stream like CctBuilder,
 * maintaining the shared shadow call stack (prof/frame_tracker.h —
 * one implementation of the Call/Ret frame discipline for both exact
 * and sampled profilers). A seeded XorShift64 draws jittered sample
 * gaps uniform in [period/2, period/2 + period) — jitter breaks
 * lockstep with loop periodicity, the fixed seed keeps every run
 * bit-reproducible. The sampling clock advances in simulated cycles
 * when the profiler is wired to a pipeline model (SamplePipeline;
 * one CpiSample per retired instruction) and in events otherwise.
 * When the clock crosses a threshold the current stack is interned
 * into a sampled CCT and the sample is tagged with the event's phase
 * and opcode kind. Samples attribute at the same point the exact
 * profiler attributes — after abandoned-Translate close, before the
 * event's own push/pop — so a period-1 event-clock sampler
 * reproduces CctBuilder's per-context event counts exactly (tested).
 *
 * Sampling is read-only on the stream: a SamplePipeline's model is
 * bit-identical to a bare PipelineSim, and an exact profiler sharing
 * the replay is unperturbed (tests/test_sample.cpp).
 *
 * Calibration. calibrate() flattens both trees per method name and
 * compares cycle (or event) shares: per-method share error, top-N
 * hot-set overlap and pairwise rank agreement. The helpers
 * topShareOverlap()/shareRankAgreement() are standalone so the
 * metrics are testable on hand-built profiles.
 *
 * Output: one stable "jrs-sample-v1" JSON document (schema in
 * DESIGN.md §11) and folded-flamegraph text via SampleReportSet,
 * same conventions as prof/cct.h.
 */
#ifndef JRS_PROF_SAMPLER_H
#define JRS_PROF_SAMPLER_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "arch/outcome.h"
#include "arch/pipeline/pipeline.h"
#include "isa/trace.h"
#include "obs/attribution.h"
#include "prof/cct.h"
#include "prof/frame_tracker.h"
#include "support/random.h"

namespace jrs::prof {

/** Default --sample-period when output is requested without one. */
inline constexpr std::uint64_t kDefaultSamplePeriod = 4096;

/** Knobs for a sampling pass. */
struct SampleOptions {
    /** Mean gap between samples, in clock units (see cycleClock). */
    std::uint64_t period = kDefaultSamplePeriod;
    /** PRNG seed for the jittered gaps; same seed, same samples. */
    std::uint64_t seed = 1;
    /** Shadow-stack depth bound (prof/frame_tracker.h). */
    std::size_t maxDepth = 1024;
    /**
     * When true the clock advances by each retired instruction's
     * CpiSample cycles (requires wiring onRetire to the model —
     * SamplePipeline does); when false, by one per trace event.
     */
    bool cycleClock = false;
};

/**
 * Next jittered sample gap: uniform in [period/2, period/2 + period),
 * never 0 (mean ~= period). Exposed for the jitter-bounds test.
 */
inline std::uint64_t
jitteredGap(XorShift64 &prng, std::uint64_t period)
{
    const std::uint64_t p = period == 0 ? 1 : period;
    const std::uint64_t gap = p / 2 + prng.nextBounded(p);
    return gap == 0 ? 1 : gap;
}

/** One sampled calling context (same tree conventions as CctNode). */
struct SampleNode {
    std::uint64_t key = 0;    ///< identity under parent (kind + id)
    FrameKind kind = FrameKind::Root;
    int parent = -1;          ///< node index, -1 for the root
    std::uint32_t methodId = 0;  ///< Method frames: trampoline id
    int methodRow = -1;       ///< lazily resolved MethodMap row
    const char *stubName = nullptr;  ///< non-method display name
    std::uint64_t samples = 0;  ///< self samples (leaf hits)
    std::uint64_t phaseSamples[kNumPhases] = {};
    std::vector<int> kids;    ///< child node indices
};

/** See file comment. */
class SamplingProfiler : public TraceSink, public OutcomeListener {
  public:
    using Options = SampleOptions;

    /** @p map must outlive the profiler. */
    explicit SamplingProfiler(const obs::MethodMap &map,
                              Options opt = {});

    // --- TraceSink (subscribe *before* the model, like CctBuilder)
    void onEvent(const TraceEvent &ev) override;
    void onFinish() override {}

    // --- OutcomeListener (wired by SamplePipeline; cycle clock only)
    void onRetire(const CpiSample &s) override;

    /** All nodes; index 0 is the root. Parent/kids index into this. */
    const std::vector<SampleNode> &nodes() const { return nodes_; }

    /** Samples taken so far. */
    std::uint64_t samples() const { return samples_; }

    /** Clock advanced so far (cycles or events, per options). */
    std::uint64_t clockTotal() const { return clock_; }

    /** Samples whose event had opcode kind @p k. */
    std::uint64_t kindSamples(NKind k) const {
        return kindSamples_[static_cast<std::size_t>(k)];
    }

    const Options &options() const { return opt_; }
    const obs::MethodMap &map() const { return *map_; }

    /** The shared shadow stack (counters, depth). */
    const FrameTracker &tracker() const { return tracker_; }

    /** Display name of @p n (same naming rules as CctBuilder). */
    std::string nodeName(const SampleNode &n) const;

    /**
     * Folded-stack lines, one per node x non-empty phase, values are
     * self samples. Deterministic order (DFS, children sorted by
     * name), leaf frames carry the phase suffix — the same folded
     * conventions as CctBuilder::foldedLines().
     */
    std::vector<FoldedLine> foldedLines() const;

    /**
     * One run object of the "jrs-sample-v1" document, indented for
     * nesting under "runs". Deterministic node ids and field order.
     */
    std::string runJson(const std::string &label) const;

  private:
    int childOf(int parent, const Frame &f);
    void maybeSample(Phase phase, NKind kind);
    void takeSample(Phase phase, NKind kind);
    template <class Fn>
    void walk(int n, std::vector<int> &path, Fn &&fn) const;
    std::vector<int> sortedKids(const SampleNode &n) const;

    const obs::MethodMap *map_;
    Options opt_;
    FrameTracker tracker_;
    XorShift64 prng_;
    std::vector<SampleNode> nodes_;
    std::uint64_t clock_ = 0;
    std::uint64_t nextAt_ = 0;  ///< clock value of the next sample
    std::uint64_t samples_ = 0;
    std::uint64_t kindSamples_[kNumNKinds] = {};
    // The event whose push/pop is still pending (cycle clock: its
    // CpiSample arrives after onEvent, and must see the stack at the
    // attribution point — before the event's own push/pop).
    TraceEvent pendingEv_;
    bool hasPending_ = false;
    NKind lastKind_ = NKind::Nop;
};

/**
 * Self-contained sweep/bench sink: a PipelineSim observed by a
 * SamplingProfiler on the cycle clock, with the subscribe-before-
 * model ordering and the listener hookup wired (the CctPipeline
 * pattern). The MethodMap is shared so the composite can outlive the
 * run that built it (sweep replay).
 */
class SamplePipeline : public TraceSink {
  public:
    SamplePipeline(PipelineConfig cfg,
                   std::shared_ptr<const obs::MethodMap> map,
                   SampleOptions opt = {})
        : map_(std::move(map)), pipe_(cfg),
          sampler_(*map_, cycleClocked(opt))
    {
        pipe_.setListener(&sampler_);
    }

    void onEvent(const TraceEvent &ev) override {
        sampler_.onEvent(ev);
        pipe_.onEvent(ev);
    }
    void onFinish() override { sampler_.onFinish(); }

    PipelineSim &pipeline() { return pipe_; }
    const PipelineSim &pipeline() const { return pipe_; }
    SamplingProfiler &sampler() { return sampler_; }
    const SamplingProfiler &sampler() const { return sampler_; }

  private:
    static SampleOptions cycleClocked(SampleOptions opt) {
        opt.cycleClock = true;
        return opt;
    }

    std::shared_ptr<const obs::MethodMap> map_;
    PipelineSim pipe_;
    SamplingProfiler sampler_;
};

/**
 * Thread-safe collection of labeled sampled-profile snapshots,
 * rendered as one "jrs-sample-v1" document and/or one folded-stack
 * file; same conventions as CctReportSet (runs sorted by label,
 * re-adding a label replaces its snapshot).
 */
class SampleReportSet {
  public:
    void add(const std::string &label, const SamplingProfiler &s);

    std::size_t size() const;

    /** The full "jrs-sample-v1" document. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws VmError on I/O failure. */
    void writeJson(const std::string &path) const;

    /** Write all runs' folded lines to @p path (label-prefixed when
     * more than one run, like CctReportSet::writeFolded). */
    void writeFolded(const std::string &path) const;

    /** Folded lines of run @p label (empty when absent). */
    std::vector<FoldedLine> folded(const std::string &label) const;

  private:
    struct Snapshot {
        std::string json;
        std::vector<FoldedLine> folded;
    };
    mutable std::mutex mu_;
    std::vector<std::pair<std::string, Snapshot>> runs_;
};

/** One method's exact-vs-sampled share comparison. */
struct CalibrationRow {
    std::string name;          ///< flat method/frame display name
    double exactShare = 0;     ///< fraction of exact self value
    double sampledShare = 0;   ///< fraction of samples
    std::uint64_t exactValue = 0;   ///< exact self cycles (or events)
    std::uint64_t sampleCount = 0;  ///< samples landing here
};

/** Result of calibrate(); see file comment. */
struct CalibrationReport {
    /** Union of names, sorted by exact share descending. */
    std::vector<CalibrationRow> rows;
    std::string value;          ///< "cycles" or "events" (exact side)
    std::uint64_t samples = 0;  ///< samples the estimate rests on
    std::size_t topN = 10;      ///< the N used for topOverlap
    double meanAbsErrPct = 0;   ///< mean |exact% - sampled%| over rows
    double maxAbsErrPct = 0;    ///< worst row's |exact% - sampled%|
    double topOverlap = 0;      ///< top-N hot-set overlap, [0, 1]
    double rankAgreement = 0;   ///< pairwise rank agreement, [0, 1]

    /** Render the top rows + summary as an aligned text table. */
    std::string text(std::size_t maxRows = 10) const;
};

/**
 * Fraction of the top-@p n entries (by share, ties broken by name)
 * shared between the two profiles, in [0, 1]. n is clamped to the
 * smaller profile; empty profiles agree vacuously (1.0).
 */
double topShareOverlap(
    const std::vector<std::pair<std::string, double>> &exact,
    const std::vector<std::pair<std::string, double>> &sampled,
    std::size_t n);

/**
 * Pairwise (Kendall-style) rank agreement over names present in both
 * profiles: the fraction of name pairs ordered the same way by both,
 * in [0, 1]. Fewer than two common names agree vacuously (1.0).
 */
double shareRankAgreement(
    const std::vector<std::pair<std::string, double>> &exact,
    const std::vector<std::pair<std::string, double>> &sampled);

/**
 * Flatten @p exact (per-name self cycles, or self events when the
 * exact pass saw no pipeline) and @p sampled (per-name samples) and
 * compare shares; see file comment. Both must come from the same
 * replayed stream for the comparison to mean anything.
 */
CalibrationReport calibrate(const CctBuilder &exact,
                            const SamplingProfiler &sampled,
                            std::size_t topN = 10);

} // namespace jrs::prof

#endif // JRS_PROF_SAMPLER_H
