/**
 * @file
 * javac — a small expression compiler: lexer, recursive-descent parser
 * building a Node AST, stack-machine code generation, and a verifying
 * evaluator. Like SpecJVM98's 213_javac, the program is spread over
 * many distinct methods with modest individual reuse and allocates
 * many short-lived objects, so the JIT pays a broad translation bill.
 */
#include "workloads/workload.h"

#include "vm/bytecode/assembler.h"
#include "workloads/startup_lib.h"

namespace jrs {

Program
buildJavac()
{
    ProgramBuilder pb("javac");

    // ------------------------------------------------------------ Lexer
    // Token types: 0 eof, 1 number (tokVal), 2 ident (0=x, 1=y),
    // 3 operator (tokVal = char), 4 '(', 5 ')', 6 ';'.
    ClassBuilder &lex = pb.cls("Lexer");
    lex.field("src");
    lex.field("pos");
    lex.field("len");
    lex.field("tokType");
    lex.field("tokVal");
    {
        MethodBuilder &m = lex.specialMethod(
            "init", {VType::Ref, VType::Int}, VType::Void);
        m.aload(0).aload(1).putFieldA("Lexer.src");
        m.aload(0).iconst(0).putFieldI("Lexer.pos");
        m.aload(0).iload(2).putFieldI("Lexer.len");
        m.returnVoid();
    }
    {
        MethodBuilder &m = lex.virtualMethod("next", {}, VType::Void);
        m.locals(4);  // 0 this, 1 p, 2 ch, 3 v
        m.aload(0).getFieldI("Lexer.pos").istore(1);
        Label eof = m.newLabel();
        m.iload(1).aload(0).getFieldI("Lexer.len").ifIcmpge(eof);
        m.aload(0).getFieldA("Lexer.src").iload(1).caload().istore(2);
        // digit?
        Label not_digit = m.newLabel();
        m.iload(2).iconst(48).ifIcmplt(not_digit);
        m.iload(2).iconst(57).ifIcmpgt(not_digit);
        {
            // scan a (possibly multi-digit) number
            m.iconst(0).istore(3);
            Label dl = m.newLabel(), dd = m.newLabel();
            m.bind(dl);
            m.iload(1).aload(0).getFieldI("Lexer.len").ifIcmpge(dd);
            m.aload(0).getFieldA("Lexer.src").iload(1).caload()
                .istore(2);
            m.iload(2).iconst(48).ifIcmplt(dd);
            m.iload(2).iconst(57).ifIcmpgt(dd);
            m.iload(3).iconst(10).imul().iload(2).iconst(48).isub()
                .iadd().istore(3);
            m.iinc(1, 1);
            m.gotoL(dl);
            m.bind(dd);
            m.aload(0).iload(1).putFieldI("Lexer.pos");
            m.aload(0).iconst(1).putFieldI("Lexer.tokType");
            m.aload(0).iload(3).putFieldI("Lexer.tokVal");
            m.returnVoid();
        }
        m.bind(not_digit);
        m.iinc(1, 1);
        m.aload(0).iload(1).putFieldI("Lexer.pos");
        // classify single-char tokens via lookupswitch
        Label is_x = m.newLabel(), is_y = m.newLabel();
        Label is_op = m.newLabel(), is_lp = m.newLabel();
        Label is_rp = m.newLabel(), is_semi = m.newLabel();
        Label bad = m.newLabel();
        m.iload(2);  // the switch key: the character just read
        m.lookupSwitch(
            {
                {'x', is_x}, {'y', is_y},
                {'+', is_op}, {'-', is_op}, {'*', is_op}, {'/', is_op},
                {'(', is_lp}, {')', is_rp}, {';', is_semi},
            },
            bad);
        m.bind(is_x);
        m.aload(0).iconst(2).putFieldI("Lexer.tokType");
        m.aload(0).iconst(0).putFieldI("Lexer.tokVal");
        m.returnVoid();
        m.bind(is_y);
        m.aload(0).iconst(2).putFieldI("Lexer.tokType");
        m.aload(0).iconst(1).putFieldI("Lexer.tokVal");
        m.returnVoid();
        m.bind(is_op);
        m.aload(0).iconst(3).putFieldI("Lexer.tokType");
        m.aload(0).iload(2).putFieldI("Lexer.tokVal");
        m.returnVoid();
        m.bind(is_lp);
        m.aload(0).iconst(4).putFieldI("Lexer.tokType");
        m.returnVoid();
        m.bind(is_rp);
        m.aload(0).iconst(5).putFieldI("Lexer.tokType");
        m.returnVoid();
        m.bind(is_semi);
        m.bind(bad);
        m.aload(0).iconst(6).putFieldI("Lexer.tokType");
        m.returnVoid();
        m.bind(eof);
        m.aload(0).iconst(0).putFieldI("Lexer.tokType");
        m.returnVoid();
    }

    // ------------------------------------------------------------- AST
    ClassBuilder &node = pb.cls("Node");
    {
        MethodBuilder &m = node.virtualMethod(
            "eval", {VType::Int, VType::Int}, VType::Int);
        m.iconst(0).ireturn();
    }
    {
        // gen(code, pos) -> new pos
        MethodBuilder &m = node.virtualMethod(
            "gen", {VType::Ref, VType::Int}, VType::Int);
        m.iload(2).ireturn();
    }

    ClassBuilder &num = pb.cls("NumNode", "Node");
    num.field("v");
    {
        MethodBuilder &m =
            num.specialMethod("init", {VType::Int}, VType::Void);
        m.aload(0).iload(1).putFieldI("NumNode.v");
        m.returnVoid();
    }
    {
        MethodBuilder &m = num.virtualMethod(
            "eval", {VType::Int, VType::Int}, VType::Int);
        m.aload(0).getFieldI("NumNode.v").ireturn();
    }
    {
        MethodBuilder &m = num.virtualMethod(
            "gen", {VType::Ref, VType::Int}, VType::Int);
        m.aload(1).iload(2).iconst(1).iastore();
        m.aload(1).iload(2).iconst(1).iadd()
            .aload(0).getFieldI("NumNode.v").iastore();
        m.iload(2).iconst(2).iadd().ireturn();
    }

    ClassBuilder &var = pb.cls("VarNode", "Node");
    var.field("idx");
    {
        MethodBuilder &m =
            var.specialMethod("init", {VType::Int}, VType::Void);
        m.aload(0).iload(1).putFieldI("VarNode.idx");
        m.returnVoid();
    }
    {
        MethodBuilder &m = var.virtualMethod(
            "eval", {VType::Int, VType::Int}, VType::Int);
        Label y = m.newLabel();
        m.aload(0).getFieldI("VarNode.idx").ifne(y);
        m.iload(1).ireturn();
        m.bind(y);
        m.iload(2).ireturn();
    }
    {
        MethodBuilder &m = var.virtualMethod(
            "gen", {VType::Ref, VType::Int}, VType::Int);
        m.aload(1).iload(2).iconst(2).iastore();
        m.aload(1).iload(2).iconst(1).iadd()
            .aload(0).getFieldI("VarNode.idx").iastore();
        m.iload(2).iconst(2).iadd().ireturn();
    }

    ClassBuilder &bin = pb.cls("BinNode", "Node");
    bin.field("op");
    bin.field("left");
    bin.field("right");
    {
        MethodBuilder &m = bin.specialMethod(
            "init", {VType::Int, VType::Ref, VType::Ref}, VType::Void);
        m.aload(0).iload(1).putFieldI("BinNode.op");
        m.aload(0).aload(2).putFieldA("BinNode.left");
        m.aload(0).aload(3).putFieldA("BinNode.right");
        m.returnVoid();
    }
    {
        MethodBuilder &m = bin.virtualMethod(
            "eval", {VType::Int, VType::Int}, VType::Int);
        m.locals(5);  // 0 this, 1 x, 2 y, 3 a, 4 b
        m.aload(0).getFieldA("BinNode.left").iload(1).iload(2)
            .invokeVirtual("Node.eval").istore(3);
        m.aload(0).getFieldA("BinNode.right").iload(1).iload(2)
            .invokeVirtual("Node.eval").istore(4);
        Label add = m.newLabel(), sub = m.newLabel();
        Label mul = m.newLabel(), divi = m.newLabel();
        Label fallback = m.newLabel();
        m.aload(0).getFieldI("BinNode.op");
        m.lookupSwitch(
            {{'+', add}, {'-', sub}, {'*', mul}, {'/', divi}},
            fallback);
        m.bind(add);
        m.iload(3).iload(4).iadd().ireturn();
        m.bind(sub);
        m.iload(3).iload(4).isub().ireturn();
        m.bind(mul);
        m.iload(3).iload(4).imul().ireturn();
        m.bind(divi);
        Label safe = m.newLabel();
        m.iload(4).ifne(safe);
        m.iconst(0).ireturn();
        m.bind(safe);
        m.iload(3).iload(4).idiv().ireturn();
        m.bind(fallback);
        m.iconst(0).ireturn();
    }
    {
        MethodBuilder &m = bin.virtualMethod(
            "gen", {VType::Ref, VType::Int}, VType::Int);
        m.locals(3);
        m.aload(0).getFieldA("BinNode.left").aload(1).iload(2)
            .invokeVirtual("Node.gen").istore(2);
        m.aload(0).getFieldA("BinNode.right").aload(1).iload(2)
            .invokeVirtual("Node.gen").istore(2);
        m.aload(1).iload(2).iconst(3).iastore();
        m.aload(1).iload(2).iconst(1).iadd()
            .aload(0).getFieldI("BinNode.op").iastore();
        m.iload(2).iconst(2).iadd().ireturn();
    }

    // ------------------------------------------------------------ Parser
    ClassBuilder &par = pb.cls("Parser");
    par.field("lex");
    {
        MethodBuilder &m =
            par.specialMethod("init", {VType::Ref}, VType::Void);
        m.aload(0).aload(1).putFieldA("Parser.lex");
        m.aload(1).invokeVirtual("Lexer.next");
        m.returnVoid();
    }
    {
        // expr := term (('+'|'-') term)*
        MethodBuilder &m =
            par.virtualMethod("parseExpr", {}, VType::Ref);
        m.locals(4);  // 0 this, 1 node, 2 op, 3 lx
        m.aload(0).getFieldA("Parser.lex").astore(3);
        m.aload(0).invokeVirtual("Parser.parseTerm").astore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        Label is_addop = m.newLabel();
        m.bind(loop);
        m.aload(3).getFieldI("Lexer.tokType").iconst(3).ifIcmpne(done);
        m.aload(3).getFieldI("Lexer.tokVal").istore(2);
        m.iload(2).iconst('+').ifIcmpeq(is_addop);
        m.iload(2).iconst('-').ifIcmpeq(is_addop);
        m.gotoL(done);
        m.bind(is_addop);
        m.aload(3).invokeVirtual("Lexer.next");
        m.newObject("BinNode").dup()
            .iload(2).aload(1)
            .aload(0).invokeVirtual("Parser.parseTerm")
            .invokeSpecial("BinNode.init")
            .astore(1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(1).areturn();
    }
    {
        // term := factor (('*'|'/') factor)*
        MethodBuilder &m =
            par.virtualMethod("parseTerm", {}, VType::Ref);
        m.locals(4);
        m.aload(0).getFieldA("Parser.lex").astore(3);
        m.aload(0).invokeVirtual("Parser.parseFactor").astore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        Label is_mulop = m.newLabel();
        m.bind(loop);
        m.aload(3).getFieldI("Lexer.tokType").iconst(3).ifIcmpne(done);
        m.aload(3).getFieldI("Lexer.tokVal").istore(2);
        m.iload(2).iconst('*').ifIcmpeq(is_mulop);
        m.iload(2).iconst('/').ifIcmpeq(is_mulop);
        m.gotoL(done);
        m.bind(is_mulop);
        m.aload(3).invokeVirtual("Lexer.next");
        m.newObject("BinNode").dup()
            .iload(2).aload(1)
            .aload(0).invokeVirtual("Parser.parseFactor")
            .invokeSpecial("BinNode.init")
            .astore(1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(1).areturn();
    }
    {
        // factor := number | ident | '(' expr ')'
        MethodBuilder &m =
            par.virtualMethod("parseFactor", {}, VType::Ref);
        m.locals(4);  // 0 this, 1 node, 2 t, 3 lx
        m.aload(0).getFieldA("Parser.lex").astore(3);
        m.aload(3).getFieldI("Lexer.tokType").istore(2);
        Label is_num = m.newLabel(), is_ident = m.newLabel();
        Label is_paren = m.newLabel(), bad = m.newLabel();
        m.iload(2).iconst(1).ifIcmpeq(is_num);
        m.iload(2).iconst(2).ifIcmpeq(is_ident);
        m.iload(2).iconst(4).ifIcmpeq(is_paren);
        m.bind(bad);
        m.newObject("NumNode").dup().iconst(0)
            .invokeSpecial("NumNode.init").areturn();
        m.bind(is_num);
        m.newObject("NumNode").dup()
            .aload(3).getFieldI("Lexer.tokVal")
            .invokeSpecial("NumNode.init").astore(1);
        m.aload(3).invokeVirtual("Lexer.next");
        m.aload(1).areturn();
        m.bind(is_ident);
        m.newObject("VarNode").dup()
            .aload(3).getFieldI("Lexer.tokVal")
            .invokeSpecial("VarNode.init").astore(1);
        m.aload(3).invokeVirtual("Lexer.next");
        m.aload(1).areturn();
        m.bind(is_paren);
        m.aload(3).invokeVirtual("Lexer.next");
        m.aload(0).invokeVirtual("Parser.parseExpr").astore(1);
        // expect ')'
        m.aload(3).invokeVirtual("Lexer.next");
        m.aload(1).areturn();
    }

    // ------------------------------------------------------------ Main
    ClassBuilder &main = pb.cls("Main");
    {
        // genSource(buf, seed, shape) -> len: instantiate a template,
        // replacing '#' placeholders with random digits 1..9.
        MethodBuilder &m = main.staticMethod(
            "genSource", {VType::Ref, VType::Int, VType::Int},
            VType::Int);
        m.locals(8);  // 0 buf, 1 seed, 2 shape, 3 tmpl, 4 i, 5 o,
                      // 6 ch, 7 tlen
        Label t1 = m.newLabel(), t2 = m.newLabel(), have = m.newLabel();
        m.iload(2).iconst(1).ifIcmpeq(t1);
        m.iload(2).iconst(2).ifIcmpeq(t2);
        m.ldcStr("#*(x+#)-(y*#)+#/(#+1);").astore(3);
        m.gotoL(have);
        m.bind(t1);
        m.ldcStr("((#+#)*x+(#-y))*(#+2);").astore(3);
        m.gotoL(have);
        m.bind(t2);
        m.ldcStr("#+(#*(#+(x*y)))-#/(x+1);").astore(3);
        m.bind(have);
        m.aload(3).arrayLength().istore(7);
        m.iconst(0).istore(4);
        m.iconst(0).istore(5);
        Label loop = m.newLabel(), done = m.newLabel();
        Label lit = m.newLabel(), emit = m.newLabel();
        m.bind(loop);
        m.iload(4).iload(7).ifIcmpge(done);
        m.aload(3).iload(4).caload().istore(6);
        m.iload(6).iconst('#').ifIcmpne(lit);
        m.iload(1).iconst(1103515245).imul().iconst(12345).iadd()
            .istore(1);
        m.iload(1).iconst(16).iushr().iconst(9).irem()
            .iconst(1).iadd().iconst(48).iadd().istore(6);
        m.gotoL(emit);
        m.bind(lit);
        m.bind(emit);
        m.aload(0).iload(5).iload(6).i2c().castore();
        m.iinc(5, 1);
        m.iinc(4, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(5).ireturn();
    }
    {
        // evalCode(code, len, x, y): stack-machine interpreter for the
        // generated code (1 v: push v; 2 i: push var; 3 op: apply).
        MethodBuilder &m = main.staticMethod(
            "evalCode",
            {VType::Ref, VType::Int, VType::Int, VType::Int},
            VType::Int);
        m.locals(10);  // 0 code, 1 len, 2 x, 3 y, 4 stk, 5 sp, 6 i,
                       // 7 kind, 8 v, 9 b
        m.iconst(64).newArray(ArrayKind::Int).astore(4);
        m.iconst(0).istore(5);
        m.iconst(0).istore(6);
        Label loop = m.newLabel(), done = m.newLabel();
        Label push_num = m.newLabel(), push_var = m.newLabel();
        Label apply = m.newLabel(), next = m.newLabel();
        m.bind(loop);
        m.iload(6).iload(1).ifIcmpge(done);
        m.aload(0).iload(6).iaload().istore(7);
        m.aload(0).iload(6).iconst(1).iadd().iaload().istore(8);
        m.iload(7).iconst(1).ifIcmpeq(push_num);
        m.iload(7).iconst(2).ifIcmpeq(push_var);
        m.gotoL(apply);
        m.bind(push_num);
        m.aload(4).iload(5).iload(8).iastore();
        m.iinc(5, 1);
        m.gotoL(next);
        m.bind(push_var);
        {
            Label vy = m.newLabel(), st = m.newLabel();
            m.iload(8).ifne(vy);
            m.aload(4).iload(5).iload(2).iastore();
            m.gotoL(st);
            m.bind(vy);
            m.aload(4).iload(5).iload(3).iastore();
            m.bind(st);
            m.iinc(5, 1);
            m.gotoL(next);
        }
        m.bind(apply);
        {
            m.iinc(5, -1);
            m.aload(4).iload(5).iaload().istore(9);  // b
            m.iinc(5, -1);
            Label add = m.newLabel(), sub = m.newLabel();
            Label mul = m.newLabel(), divi = m.newLabel();
            Label dflt = m.newLabel(), store = m.newLabel();
            m.iload(8);
            m.lookupSwitch(
                {{'+', add}, {'-', sub}, {'*', mul}, {'/', divi}},
                dflt);
            m.bind(add);
            m.aload(4).iload(5)
                .aload(4).iload(5).iaload().iload(9).iadd()
                .iastore();
            m.gotoL(store);
            m.bind(sub);
            m.aload(4).iload(5)
                .aload(4).iload(5).iaload().iload(9).isub()
                .iastore();
            m.gotoL(store);
            m.bind(mul);
            m.aload(4).iload(5)
                .aload(4).iload(5).iaload().iload(9).imul()
                .iastore();
            m.gotoL(store);
            m.bind(divi);
            {
                Label safe = m.newLabel(), zero = m.newLabel();
                m.iload(9).ifne(safe);
                m.bind(zero);
                m.aload(4).iload(5).iconst(0).iastore();
                m.gotoL(store);
                m.bind(safe);
                m.aload(4).iload(5)
                    .aload(4).iload(5).iaload().iload(9).idiv()
                    .iastore();
                m.gotoL(store);
            }
            m.bind(dflt);
            m.aload(4).iload(5).iconst(0).iastore();
            m.bind(store);
            m.iinc(5, 1);
            m.gotoL(next);
        }
        m.bind(next);
        m.iinc(6, 2);
        m.gotoL(loop);
        m.bind(done);
        m.aload(4).iconst(0).iaload().ireturn();
    }
    {
        MethodBuilder &m =
            main.staticMethod("run", {VType::Int}, VType::Int);
        m.locals(12);
        // 0 n, 1 buf, 2 code, 3 lexer, 4 parser, 5 tree, 6 srcLen,
        // 7 codeLen, 8 tv, 9 cv, 10 total, 11 i
        m.iconst(64).newArray(ArrayKind::Char).astore(1);
        m.iconst(96).newArray(ArrayKind::Int).astore(2);
        m.iconst(0).istore(10);
        m.iconst(0).istore(11);
        Label loop = m.newLabel(), done = m.newLabel();
        Label bad = m.newLabel();
        m.bind(loop);
        m.iload(11).iload(0).ifIcmpge(done);
        m.aload(1)
            .iload(11).iconst(77).imul().iconst(13).iadd()
            .iload(11).iconst(3).irem()
            .invokeStatic("Main.genSource").istore(6);
        m.newObject("Lexer").astore(3);
        m.aload(3).aload(1).iload(6).invokeSpecial("Lexer.init");
        m.newObject("Parser").astore(4);
        m.aload(4).aload(3).invokeSpecial("Parser.init");
        m.aload(4).invokeVirtual("Parser.parseExpr").astore(5);
        m.aload(5).iconst(3).iconst(5).invokeVirtual("Node.eval")
            .istore(8);
        m.aload(5).aload(2).iconst(0).invokeVirtual("Node.gen")
            .istore(7);
        m.aload(2).iload(7).iconst(3).iconst(5)
            .invokeStatic("Main.evalCode").istore(9);
        m.iload(8).iload(9).ifIcmpne(bad);
        m.iload(10).iconst(31).imul().iload(8).iadd().iload(7).iadd()
            .istore(10);
        m.iinc(11, 1);
        m.gotoL(loop);
        m.bind(bad);
        m.iconst(-1).ireturn();
        m.bind(done);
        m.iload(10).ireturn();
    }

    return finishWithBoot(pb);
}

} // namespace jrs
