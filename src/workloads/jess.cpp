/**
 * @file
 * jess — a forward-chaining rule engine over a deduplicated fact base.
 * Like SpecJVM98's 202_jess, the hot paths are object-oriented: every
 * fact probe goes through virtual accessors and every rule fires
 * through a Rule-hierarchy virtual call, giving the indirect-call-rich
 * profile the paper attributes to Java applications.
 */
#include "workloads/workload.h"

#include "vm/bytecode/assembler.h"
#include "workloads/startup_lib.h"

namespace jrs {

Program
buildJess()
{
    ProgramBuilder pb("jess");

    // ------------------------------------------------------------ FactBase
    ClassBuilder &fb = pb.cls("FactBase");
    fb.field("sArr");
    fb.field("pArr");
    fb.field("oArr");
    fb.field("tab");
    fb.field("count");
    fb.field("cap");

    {
        MethodBuilder &m =
            fb.specialMethod("init", {VType::Int}, VType::Void);
        // 0 this, 1 cap
        m.aload(0).iload(1).newArray(ArrayKind::Int)
            .putFieldA("FactBase.sArr");
        m.aload(0).iload(1).newArray(ArrayKind::Int)
            .putFieldA("FactBase.pArr");
        m.aload(0).iload(1).newArray(ArrayKind::Int)
            .putFieldA("FactBase.oArr");
        m.aload(0).iconst(16384).newArray(ArrayKind::Int)
            .putFieldA("FactBase.tab");
        m.aload(0).iconst(0).putFieldI("FactBase.count");
        m.aload(0).iload(1).putFieldI("FactBase.cap");
        m.returnVoid();
    }
    {
        MethodBuilder &m = fb.virtualMethod("size", {}, VType::Int);
        m.aload(0).getFieldI("FactBase.count").ireturn();
    }
    {
        MethodBuilder &m =
            fb.virtualMethod("getS", {VType::Int}, VType::Int);
        m.aload(0).getFieldA("FactBase.sArr").iload(1).iaload()
            .ireturn();
    }
    {
        MethodBuilder &m =
            fb.virtualMethod("getP", {VType::Int}, VType::Int);
        m.aload(0).getFieldA("FactBase.pArr").iload(1).iaload()
            .ireturn();
    }
    {
        MethodBuilder &m =
            fb.virtualMethod("getO", {VType::Int}, VType::Int);
        m.aload(0).getFieldA("FactBase.oArr").iload(1).iaload()
            .ireturn();
    }
    {
        // add(s, p, o) -> 1 if the fact was new, else 0.
        MethodBuilder &m = fb.virtualMethod(
            "add", {VType::Int, VType::Int, VType::Int}, VType::Int);
        m.locals(8);  // 0 this, 1 s, 2 p, 3 o, 4 key, 5 h, 6 tabv, 7 c
        // key = (((s*31 + p)*31 + o) << 1) | 1   (never 0)
        m.iload(1).iconst(31).imul().iload(2).iadd().iconst(31).imul()
            .iload(3).iadd().iconst(1).ishl().iconst(1).ior().istore(4);
        m.iload(4).iconst(0x3fff).iand().istore(5);
        Label probe = m.newLabel(), empty = m.newLabel();
        Label dup = m.newLabel();
        m.bind(probe);
        m.aload(0).getFieldA("FactBase.tab").iload(5).iaload()
            .istore(6);
        m.iload(6).ifeq(empty);
        m.iload(6).iload(4).ifIcmpeq(dup);
        m.iload(5).iconst(1).iadd().iconst(0x3fff).iand().istore(5);
        m.gotoL(probe);
        m.bind(dup);
        m.iconst(0).ireturn();
        m.bind(empty);
        // full?
        Label room = m.newLabel();
        m.aload(0).getFieldI("FactBase.count")
            .aload(0).getFieldI("FactBase.cap").ifIcmplt(room);
        m.iconst(0).ireturn();
        m.bind(room);
        m.aload(0).getFieldA("FactBase.tab").iload(5).iload(4)
            .iastore();
        m.aload(0).getFieldI("FactBase.count").istore(7);
        m.aload(0).getFieldA("FactBase.sArr").iload(7).iload(1)
            .iastore();
        m.aload(0).getFieldA("FactBase.pArr").iload(7).iload(2)
            .iastore();
        m.aload(0).getFieldA("FactBase.oArr").iload(7).iload(3)
            .iastore();
        m.aload(0).iload(7).iconst(1).iadd()
            .putFieldI("FactBase.count");
        m.iconst(1).ireturn();
    }

    // ------------------------------------------------------------ Rules
    ClassBuilder &rule = pb.cls("Rule");
    rule.field("p");
    rule.field("q");
    rule.field("r");
    {
        MethodBuilder &m = rule.specialMethod(
            "init", {VType::Int, VType::Int, VType::Int}, VType::Void);
        m.aload(0).iload(1).putFieldI("Rule.p");
        m.aload(0).iload(2).putFieldI("Rule.q");
        m.aload(0).iload(3).putFieldI("Rule.r");
        m.returnVoid();
    }
    {
        MethodBuilder &m =
            rule.virtualMethod("fire", {VType::Ref}, VType::Int);
        m.iconst(0).ireturn();  // base rule matches nothing
    }

    // ChainRule: (a p b), (b q c) => (a r c)
    ClassBuilder &chain = pb.cls("ChainRule", "Rule");
    {
        MethodBuilder &m =
            chain.virtualMethod("fire", {VType::Ref}, VType::Int);
        m.locals(11);
        // 0 this, 1 fb, 2 n, 3 i, 4 j, 5 added, 6 si, 7 oi,
        // 8 myP, 9 myQ, 10 myR
        m.aload(0).getFieldI("Rule.p").istore(8);
        m.aload(0).getFieldI("Rule.q").istore(9);
        m.aload(0).getFieldI("Rule.r").istore(10);
        m.aload(1).invokeVirtual("FactBase.size").istore(2);
        m.iconst(0).istore(5);
        m.iconst(0).istore(3);
        Label iloop = m.newLabel(), idone = m.newLabel();
        Label inext = m.newLabel();
        m.bind(iloop);
        m.iload(3).iload(2).ifIcmpge(idone);
        m.aload(1).iload(3).invokeVirtual("FactBase.getP").iload(8)
            .ifIcmpne(inext);
        m.aload(1).iload(3).invokeVirtual("FactBase.getS").istore(6);
        m.aload(1).iload(3).invokeVirtual("FactBase.getO").istore(7);
        {
            Label jloop = m.newLabel(), jdone = m.newLabel();
            Label jnext = m.newLabel();
            m.iconst(0).istore(4);
            m.bind(jloop);
            m.iload(4).iload(2).ifIcmpge(jdone);
            m.aload(1).iload(4).invokeVirtual("FactBase.getP").iload(9)
                .ifIcmpne(jnext);
            m.aload(1).iload(4).invokeVirtual("FactBase.getS").iload(7)
                .ifIcmpne(jnext);
            m.iload(5)
                .aload(1).iload(6).iload(10)
                .aload(1).iload(4).invokeVirtual("FactBase.getO")
                .invokeVirtual("FactBase.add")
                .iadd().istore(5);
            m.bind(jnext);
            m.iinc(4, 1);
            m.gotoL(jloop);
            m.bind(jdone);
        }
        m.bind(inext);
        m.iinc(3, 1);
        m.gotoL(iloop);
        m.bind(idone);
        m.iload(5).ireturn();
    }

    // SymRule: (a p b) => (b q a)
    ClassBuilder &sym = pb.cls("SymRule", "Rule");
    {
        MethodBuilder &m =
            sym.virtualMethod("fire", {VType::Ref}, VType::Int);
        m.locals(6);  // 0 this, 1 fb, 2 n, 3 i, 4 added, 5 myP
        m.aload(0).getFieldI("Rule.p").istore(5);
        m.aload(1).invokeVirtual("FactBase.size").istore(2);
        m.iconst(0).istore(4);
        m.iconst(0).istore(3);
        Label loop = m.newLabel(), done = m.newLabel();
        Label next = m.newLabel();
        m.bind(loop);
        m.iload(3).iload(2).ifIcmpge(done);
        m.aload(1).iload(3).invokeVirtual("FactBase.getP").iload(5)
            .ifIcmpne(next);
        m.iload(4)
            .aload(1)
            .aload(1).iload(3).invokeVirtual("FactBase.getO")
            .aload(0).getFieldI("Rule.q")
            .aload(1).iload(3).invokeVirtual("FactBase.getS")
            .invokeVirtual("FactBase.add")
            .iadd().istore(4);
        m.bind(next);
        m.iinc(3, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(4).ireturn();
    }

    // PromoteRule: (a p b) => (a r a)
    ClassBuilder &promote = pb.cls("PromoteRule", "Rule");
    {
        MethodBuilder &m =
            promote.virtualMethod("fire", {VType::Ref}, VType::Int);
        m.locals(6);  // 0 this, 1 fb, 2 n, 3 i, 4 added, 5 myP
        m.aload(0).getFieldI("Rule.p").istore(5);
        m.aload(1).invokeVirtual("FactBase.size").istore(2);
        m.iconst(0).istore(4);
        m.iconst(0).istore(3);
        Label loop = m.newLabel(), done = m.newLabel();
        Label next = m.newLabel();
        m.bind(loop);
        m.iload(3).iload(2).ifIcmpge(done);
        m.aload(1).iload(3).invokeVirtual("FactBase.getP").iload(5)
            .ifIcmpne(next);
        m.iload(4)
            .aload(1)
            .aload(1).iload(3).invokeVirtual("FactBase.getS")
            .aload(0).getFieldI("Rule.r")
            .aload(1).iload(3).invokeVirtual("FactBase.getS")
            .invokeVirtual("FactBase.add")
            .iadd().istore(4);
        m.bind(next);
        m.iinc(3, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(4).ireturn();
    }

    // ------------------------------------------------------------ Main
    ClassBuilder &main = pb.cls("Main");
    {
        MethodBuilder &m =
            main.staticMethod("run", {VType::Int}, VType::Int);
        m.locals(10);
        // 0 n, 1 fb, 2 rules, 3 i, 4 iter, 5 added, 6 sum, 7 nf, 8 r
        m.newObject("FactBase").astore(1);
        m.aload(1).iload(0).iconst(3).imul().iconst(64).iadd()
            .invokeSpecial("FactBase.init");
        // Seed chain facts: (i, 1, (i*7+3) mod n)
        m.iconst(0).istore(3);
        Label seed = m.newLabel(), seeded = m.newLabel();
        m.bind(seed);
        m.iload(3).iload(0).ifIcmpge(seeded);
        m.aload(1).iload(3).iconst(1)
            .iload(3).iconst(7).imul().iconst(3).iadd().iload(0).irem()
            .invokeVirtual("FactBase.add").pop();
        m.iinc(3, 1);
        m.gotoL(seed);
        m.bind(seeded);
        // Rules: Chain(1,1,2), Sym(2,3,0 unused), Promote(3,0,4)
        m.iconst(3).newArray(ArrayKind::Ref).astore(2);
        m.aload(2).iconst(0).newObject("ChainRule").dup()
            .iconst(1).iconst(1).iconst(2).invokeSpecial("Rule.init")
            .aastore();
        m.aload(2).iconst(1).newObject("SymRule").dup()
            .iconst(2).iconst(3).iconst(0).invokeSpecial("Rule.init")
            .aastore();
        m.aload(2).iconst(2).newObject("PromoteRule").dup()
            .iconst(3).iconst(0).iconst(4).invokeSpecial("Rule.init")
            .aastore();
        // Fixpoint loop, at most 4 sweeps.
        m.iconst(0).istore(4);
        Label sweep = m.newLabel(), settled = m.newLabel();
        m.bind(sweep);
        m.iload(4).iconst(4).ifIcmpge(settled);
        m.iconst(0).istore(5);
        m.iconst(0).istore(3);
        {
            Label rl = m.newLabel(), rdone = m.newLabel();
            m.bind(rl);
            m.iload(3).iconst(3).ifIcmpge(rdone);
            m.iload(5)
                .aload(2).iload(3).aaload()
                .aload(1)
                .invokeVirtual("Rule.fire")
                .iadd().istore(5);
            m.iinc(3, 1);
            m.gotoL(rl);
            m.bind(rdone);
        }
        m.iload(5).ifeq(settled);
        m.iinc(4, 1);
        m.gotoL(sweep);
        m.bind(settled);
        // Checksum the fact base.
        m.aload(1).invokeVirtual("FactBase.size").istore(7);
        m.iconst(0).istore(6);
        m.iconst(0).istore(3);
        Label cs = m.newLabel(), cdone = m.newLabel();
        m.bind(cs);
        m.iload(3).iload(7).ifIcmpge(cdone);
        m.iload(6).iconst(31).imul()
            .aload(1).iload(3).invokeVirtual("FactBase.getS")
            .iconst(7).imul().iadd()
            .aload(1).iload(3).invokeVirtual("FactBase.getP")
            .iconst(5).imul().iadd()
            .aload(1).iload(3).invokeVirtual("FactBase.getO")
            .iadd().istore(6);
        m.iinc(3, 1);
        m.gotoL(cs);
        m.bind(cdone);
        m.iload(6).iload(7).iconst(1000).imul().iadd().ireturn();
    }

    return finishWithBoot(pb);
}

} // namespace jrs
