/**
 * @file
 * The shared "class library" every workload boots.
 *
 * Real SpecJVM98 runs (especially at s1) spend a visible share of
 * their time in one-shot system/library code: class initialization,
 * property parsing, table setup, string utilities — code invoked once
 * or twice and never again. That cold code is precisely what makes
 * compile-on-first-invocation wasteful and gives the paper's oracle
 * its 10-15% headroom, and the library's synchronized bookkeeping is
 * why even single-threaded benchmarks perform monitor operations.
 *
 * addStartupLibrary() adds ~25 such methods across five classes; the
 * workload's entry code calls Lib.boot(seed) once and folds the
 * returned checksum into its own.
 */
#ifndef JRS_WORKLOADS_STARTUP_LIB_H
#define JRS_WORKLOADS_STARTUP_LIB_H

#include "vm/bytecode/assembler.h"

namespace jrs {

/**
 * Register the library classes into @p pb. The program may then call
 * the static method "Lib.boot" (int) -> int.
 */
void addStartupLibrary(ProgramBuilder &pb);

/**
 * Standard workload epilogue: add the startup library, synthesize a
 * "Boot.main" entry that runs Lib.boot(arg) followed by
 * @p run_method(arg), and finish the program with the combined
 * checksum. Every workload terminates its builder with this call.
 */
Program finishWithBoot(ProgramBuilder &pb,
                       const char *run_method = "Main.run");

} // namespace jrs

#endif // JRS_WORKLOADS_STARTUP_LIB_H
