/**
 * @file
 * hello — the paper's HelloWorld: a program whose execution is
 * dominated by one-shot work, making translation overhead maximally
 * visible in JIT mode.
 */
#include "workloads/workload.h"

#include "vm/bytecode/assembler.h"
#include "workloads/startup_lib.h"

namespace jrs {

Program
buildHello()
{
    ProgramBuilder pb("hello");
    ClassBuilder &main = pb.cls("Main");

    // greet(): print the greeting, return its length.
    {
        MethodBuilder &m = main.staticMethod("greet", {}, VType::Int);
        m.locals(3);  // 0: s, 1: i, 2: len
        m.ldcStr("Hello, world\n").astore(0);
        m.aload(0).arrayLength().istore(2);
        m.iconst(0).istore(1);
        Label loop = m.newLabel();
        Label done = m.newLabel();
        m.bind(loop);
        m.iload(1).iload(2).ifIcmpge(done);
        m.aload(0).iload(1).caload().intrinsic(IntrinsicId::PrintChar);
        m.iinc(1, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(2).ireturn();
    }

    // version(): one-shot constant helper.
    {
        MethodBuilder &m = main.staticMethod("version", {}, VType::Int);
        m.iconst(116).ireturn();
    }

    // mix(a, b): called twice, still cold.
    {
        MethodBuilder &m = main.staticMethod(
            "mix", {VType::Int, VType::Int}, VType::Int);
        m.iload(0).iconst(31).imul().iload(1).iadd().ireturn();
    }

    // run(n): entry.
    {
        MethodBuilder &m =
            main.staticMethod("run", {VType::Int}, VType::Int);
        m.locals(3);  // 0: n, 1: acc, 2: tmp
        m.invokeStatic("Main.greet").istore(1);
        m.invokeStatic("Main.version").istore(2);
        m.iload(1).iload(2).invokeStatic("Main.mix").istore(1);
        m.iload(1).iload(0).invokeStatic("Main.mix").istore(1);
        m.iload(1).ireturn();
    }

    return finishWithBoot(pb);
}

} // namespace jrs
