/**
 * @file
 * mpeg — a subband filterbank over synthetic audio: a 32x32 windowed
 * DCT (matrixed with FCos) applied frame by frame, then quantized.
 * Like SpecJVM98's 222_mpegaudio, execution concentrates in a few
 * small FP-heavy loops with near-perfect method reuse and cache
 * behaviour, so JIT translation is amortized almost immediately.
 */
#include "workloads/workload.h"

#include "vm/bytecode/assembler.h"
#include "workloads/startup_lib.h"

namespace jrs {

Program
buildMpeg()
{
    ProgramBuilder pb("mpeg");
    ClassBuilder &dsp = pb.cls("Dsp");

    // genMatrix() -> float[1024]: cos((2j+1) * k * pi/64)
    {
        MethodBuilder &m = dsp.staticMethod("genMatrix", {}, VType::Ref);
        m.locals(4);  // 0 mat, 1 k, 2 j, 3 unused
        m.iconst(1024).newArray(ArrayKind::Float).astore(0);
        m.iconst(0).istore(1);
        Label kl = m.newLabel(), kd = m.newLabel();
        m.bind(kl);
        m.iload(1).iconst(32).ifIcmpge(kd);
        {
            Label jl = m.newLabel(), jd = m.newLabel();
            m.iconst(0).istore(2);
            m.bind(jl);
            m.iload(2).iconst(32).ifIcmpge(jd);
            // mat[k*32+j] = cos((2j+1) * k * 0.049087385f)
            m.aload(0).iload(1).iconst(32).imul().iload(2).iadd();
            m.iload(2).iconst(2).imul().iconst(1).iadd()
                .iload(1).imul().i2f()
                .fconst(0.049087385f).fmul()
                .intrinsic(IntrinsicId::FCos);
            m.fastore();
            m.iinc(2, 1);
            m.gotoL(jl);
            m.bind(jd);
        }
        m.iinc(1, 1);
        m.gotoL(kl);
        m.bind(kd);
        m.aload(0).areturn();
    }

    // genSamples(count) -> float[]: two superposed tones.
    {
        MethodBuilder &m =
            dsp.staticMethod("genSamples", {VType::Int}, VType::Ref);
        m.locals(3);  // 0 count, 1 buf, 2 i
        m.iload(0).newArray(ArrayKind::Float).astore(1);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(2).iload(0).ifIcmpge(done);
        m.aload(1).iload(2);
        m.iload(2).i2f().fconst(0.02f).fmul()
            .intrinsic(IntrinsicId::FSin).fconst(100.0f).fmul();
        m.iload(2).i2f().fconst(0.05f).fmul()
            .intrinsic(IntrinsicId::FSin).fconst(50.0f).fmul();
        m.fadd().fastore();
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(1).areturn();
    }

    // filter(samples, base, mat, out): out[k] = sum_j s[base+j]*m[k,j]
    {
        MethodBuilder &m = dsp.staticMethod(
            "filter", {VType::Ref, VType::Int, VType::Ref, VType::Ref},
            VType::Void);
        m.locals(7);  // 0 samples, 1 base, 2 mat, 3 out, 4 k, 5 j,
                      // 6 acc (float)
        m.iconst(0).istore(4);
        Label kl = m.newLabel(), kd = m.newLabel();
        m.bind(kl);
        m.iload(4).iconst(32).ifIcmpge(kd);
        m.fconst(0.0f).fstore(6);
        {
            Label jl = m.newLabel(), jd = m.newLabel();
            m.iconst(0).istore(5);
            m.bind(jl);
            m.iload(5).iconst(32).ifIcmpge(jd);
            m.fload(6);
            m.aload(0).iload(1).iload(5).iadd().faload();
            m.aload(2).iload(4).iconst(32).imul().iload(5).iadd()
                .faload();
            m.fmul().fadd().fstore(6);
            m.iinc(5, 1);
            m.gotoL(jl);
            m.bind(jd);
        }
        m.aload(3).iload(4).fload(6).fastore();
        m.iinc(4, 1);
        m.gotoL(kl);
        m.bind(kd);
        m.returnVoid();
    }

    // quant(out) -> int: sum of quantized subband values.
    {
        MethodBuilder &m =
            dsp.staticMethod("quant", {VType::Ref}, VType::Int);
        m.locals(4);  // 0 out, 1 k, 2 sum, 3 q
        m.iconst(0).istore(1);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).iconst(32).ifIcmpge(done);
        m.aload(0).iload(1).faload().fconst(8.0f).fmul().f2i()
            .istore(3);
        m.iload(2).iload(3).iconst(0xffff).iand().iadd().istore(2);
        m.iinc(1, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(2).ireturn();
    }

    ClassBuilder &main = pb.cls("Main");
    {
        MethodBuilder &m =
            main.staticMethod("run", {VType::Int}, VType::Int);
        m.locals(8);
        // 0 n, 1 samples, 2 mat, 3 out, 4 frame, 5 sum, 6 q, 7 count
        m.invokeStatic("Dsp.genMatrix").astore(2);
        m.iload(0).iconst(32).imul().iconst(32).iadd().istore(7);
        m.iload(7).invokeStatic("Dsp.genSamples").astore(1);
        m.iconst(32).newArray(ArrayKind::Float).astore(3);
        m.iconst(0).istore(5);
        m.iconst(0).istore(4);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(4).iload(0).ifIcmpge(done);
        m.aload(1).iload(4).iconst(32).imul().aload(2).aload(3)
            .invokeStatic("Dsp.filter");
        m.aload(3).invokeStatic("Dsp.quant").istore(6);
        m.iload(5).iconst(31).imul().iload(6).iadd().istore(5);
        m.iinc(4, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(5).ireturn();
    }

    return finishWithBoot(pb);
}

} // namespace jrs
