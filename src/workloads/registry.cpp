#include "workloads/workload.h"

namespace jrs {

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> kWorkloads = {
        {"compress", &buildCompress, 2000, 5000,
         "LZW compress/decompress/verify over synthetic data"},
        {"jess", &buildJess, 40, 60,
         "forward-chaining rule matcher over a fact base"},
        {"db", &buildDb, 60, 150,
         "in-memory database: add/delete/find/sort on synchronized "
         "vectors"},
        {"javac", &buildJavac, 30, 130,
         "expression compiler: lexer, parser, AST, codegen"},
        {"mpeg", &buildMpeg, 40, 45,
         "subband filterbank + windowed DCT over synthetic audio"},
        {"mtrt", &buildMtrt, 10, 36,
         "two-thread raytracer over a small sphere scene"},
        {"jack", &buildJack, 12, 180,
         "token scanner with exception-driven error recovery"},
        {"hello", &buildHello, 1, 1,
         "trivial program: observes startup/translation overheads"},
    };
    return kWorkloads;
}

const WorkloadInfo *
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        if (name == w.name)
            return &w;
    }
    return nullptr;
}

} // namespace jrs
