/**
 * @file
 * The SpecJVM98-like workload suite.
 *
 * Eight programs written in jrs bytecode through the assembler,
 * mirroring the archetypes of the paper's benchmarks:
 *
 *   hello    system-init-like: tiny methods invoked once
 *   compress LZW compress + decompress + verify (method-reuse heavy)
 *   jess     forward-chaining rule matcher (virtual dispatch heavy)
 *   db       in-memory database with synchronized Vector operations
 *   javac    expression compiler: lexer, parser, AST, codegen
 *   mpeg     fixed-point/float filterbank (tight FP loops)
 *   mtrt     two-thread raytracer with a shared synchronized counter
 *   jack     token scanner with exception-based error recovery
 *
 * Every entry method is `Main.run(int) -> int`; the return value is a
 * self-checking checksum, identical across interpreter / JIT / hybrid
 * executions (the differential-test anchor).
 */
#ifndef JRS_WORKLOADS_WORKLOAD_H
#define JRS_WORKLOADS_WORKLOAD_H

#include <string>
#include <vector>

#include "vm/bytecode/class_def.h"

namespace jrs {

/** Descriptor of one workload. */
struct WorkloadInfo {
    const char *name;
    Program (*build)();
    /** Small size for unit tests (sub-second interpreted). */
    std::int32_t tinyArg;
    /** s1-like size for benches. */
    std::int32_t smallArg;
    const char *description;
};

/** Program builders (each returns a fresh Program). */
Program buildHello();
Program buildCompress();
Program buildJess();
Program buildDb();
Program buildJavac();
Program buildMpeg();
Program buildMtrt();
Program buildJack();

/** All workloads in the paper's presentation order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Lookup by name; nullptr when unknown. */
const WorkloadInfo *findWorkload(const std::string &name);

} // namespace jrs

#endif // JRS_WORKLOADS_WORKLOAD_H
