/**
 * @file
 * mtrt — a two-thread raytracer over a small sphere scene. The two
 * worker green-threads render disjoint halves of the image but share a
 * synchronized progress counter, so the run exercises the contended
 * (d) lock case alongside heavy FSqrt/virtual-intersection float work
 * — the multithreaded profile of SpecJVM98's 227_mtrt.
 */
#include "workloads/workload.h"

#include "vm/bytecode/assembler.h"
#include "workloads/startup_lib.h"

namespace jrs {

Program
buildMtrt()
{
    ProgramBuilder pb("mtrt");

    pb.staticSlot("scene", VType::Ref);
    pb.staticSlot("image", VType::Ref);
    pb.staticSlot("progress", VType::Ref);
    pb.staticSlot("width", VType::Int);
    pb.staticSlot("height", VType::Int);

    // ---------------------------------------------------------- Counter
    ClassBuilder &counter = pb.cls("Counter");
    counter.field("cnt");
    {
        MethodBuilder &m = counter.virtualMethod("bump", {}, VType::Void);
        m.synchronized_();
        m.aload(0)
            .aload(0).getFieldI("Counter.cnt").iconst(1).iadd()
            .putFieldI("Counter.cnt");
        m.returnVoid();
    }
    {
        MethodBuilder &m = counter.virtualMethod("get", {}, VType::Int);
        m.synchronized_();
        m.aload(0).getFieldI("Counter.cnt").ireturn();
    }

    // ------------------------------------------------------------ Shape
    ClassBuilder &shape = pb.cls("Shape");
    {
        // hit(ox, oy, oz, dx, dy, dz) -> t (< 0 when missed)
        MethodBuilder &m = shape.virtualMethod(
            "hit",
            {VType::Float, VType::Float, VType::Float, VType::Float,
             VType::Float, VType::Float},
            VType::Float);
        m.fconst(-1.0f).freturn();
    }
    {
        MethodBuilder &m = shape.virtualMethod("shade", {}, VType::Int);
        m.iconst(0).ireturn();
    }

    ClassBuilder &sphere = pb.cls("Sphere", "Shape");
    sphere.field("cx");
    sphere.field("cy");
    sphere.field("cz");
    sphere.field("r");
    sphere.field("color");
    {
        MethodBuilder &m = sphere.specialMethod(
            "init",
            {VType::Float, VType::Float, VType::Float, VType::Float,
             VType::Int},
            VType::Void);
        m.aload(0).fload(1).putFieldF("Sphere.cx");
        m.aload(0).fload(2).putFieldF("Sphere.cy");
        m.aload(0).fload(3).putFieldF("Sphere.cz");
        m.aload(0).fload(4).putFieldF("Sphere.r");
        m.aload(0).iload(5).putFieldI("Sphere.color");
        m.returnVoid();
    }
    {
        // Quadratic ray-sphere intersection.
        MethodBuilder &m = sphere.virtualMethod(
            "hit",
            {VType::Float, VType::Float, VType::Float, VType::Float,
             VType::Float, VType::Float},
            VType::Float);
        m.locals(14);
        // 0 this, 1..3 o, 4..6 d, 7 lx, 8 ly, 9 lz, 10 a, 11 b,
        // 12 c, 13 disc
        m.fload(1).aload(0).getFieldF("Sphere.cx").fsub().fstore(7);
        m.fload(2).aload(0).getFieldF("Sphere.cy").fsub().fstore(8);
        m.fload(3).aload(0).getFieldF("Sphere.cz").fsub().fstore(9);
        // a = d . d
        m.fload(4).fload(4).fmul()
            .fload(5).fload(5).fmul().fadd()
            .fload(6).fload(6).fmul().fadd().fstore(10);
        // b = 2 * (l . d)
        m.fload(7).fload(4).fmul()
            .fload(8).fload(5).fmul().fadd()
            .fload(9).fload(6).fmul().fadd()
            .fconst(2.0f).fmul().fstore(11);
        // c = l . l - r*r
        m.fload(7).fload(7).fmul()
            .fload(8).fload(8).fmul().fadd()
            .fload(9).fload(9).fmul().fadd()
            .aload(0).getFieldF("Sphere.r")
            .aload(0).getFieldF("Sphere.r").fmul()
            .fsub().fstore(12);
        // disc = b*b - 4*a*c
        m.fload(11).fload(11).fmul()
            .fconst(4.0f).fload(10).fmul().fload(12).fmul()
            .fsub().fstore(13);
        Label miss = m.newLabel();
        m.fload(13).fconst(0.0f).fcmpl().iflt(miss);
        // t = (-b - sqrt(disc)) / (2a)
        m.fload(11).fneg()
            .fload(13).intrinsic(IntrinsicId::FSqrt).fsub()
            .fconst(2.0f).fload(10).fmul().fdiv()
            .freturn();
        m.bind(miss);
        m.fconst(-1.0f).freturn();
    }
    {
        MethodBuilder &m = sphere.virtualMethod("shade", {}, VType::Int);
        m.aload(0).getFieldI("Sphere.color").ireturn();
    }

    // A shinier sphere: overrides shade only (dispatch variety).
    ClassBuilder &mirror = pb.cls("MirrorSphere", "Sphere");
    {
        MethodBuilder &m = mirror.virtualMethod("shade", {}, VType::Int);
        m.aload(0).getFieldI("Sphere.color").iconst(2).imul()
            .iconst(17).iadd().ireturn();
    }

    // ------------------------------------------------------------ Tracer
    ClassBuilder &tracer = pb.cls("Tracer");
    {
        // trace(ox..dz) -> color
        MethodBuilder &m = tracer.staticMethod(
            "trace",
            {VType::Float, VType::Float, VType::Float, VType::Float,
             VType::Float, VType::Float},
            VType::Int);
        m.locals(13);
        // 0..2 o, 3..5 d, 6 shapes, 7 n, 8 i, 9 best (f), 10 t (f),
        // 11 bestShape, 12 color
        m.getStaticA("scene").astore(6);
        m.aload(6).arrayLength().istore(7);
        m.fconst(1.0e30f).fstore(9);
        m.aconstNull().astore(11);
        m.iconst(0).istore(8);
        Label loop = m.newLabel(), done = m.newLabel();
        Label skip = m.newLabel();
        m.bind(loop);
        m.iload(8).iload(7).ifIcmpge(done);
        m.aload(6).iload(8).aaload()
            .fload(0).fload(1).fload(2).fload(3).fload(4).fload(5)
            .invokeVirtual("Shape.hit").fstore(10);
        m.fload(10).fconst(0.01f).fcmpl().ifle(skip);
        m.fload(10).fload(9).fcmpl().ifge(skip);
        m.fload(10).fstore(9);
        m.aload(6).iload(8).aaload().astore(11);
        m.bind(skip);
        m.iinc(8, 1);
        m.gotoL(loop);
        m.bind(done);
        Label bg = m.newLabel();
        m.aload(11).ifnull(bg);
        // color = shade - (int)(best * 3), floored at 1
        m.aload(11).invokeVirtual("Shape.shade")
            .fload(9).fconst(3.0f).fmul().f2i().isub().istore(12);
        Label ok = m.newLabel();
        m.iload(12).ifgt(ok);
        m.iconst(1).istore(12);
        m.bind(ok);
        m.iload(12).ireturn();
        m.bind(bg);
        m.iconst(16).ireturn();
    }
    {
        // renderRows(y0, y1)
        MethodBuilder &m = tracer.staticMethod(
            "renderRows", {VType::Int, VType::Int}, VType::Void);
        m.locals(10);
        // 0 y0, 1 y1, 2 w, 3 h, 4 y, 5 x, 6 img, 7 dx(f), 8 dy(f),
        // 9 prog
        m.getStaticI("width").istore(2);
        m.getStaticI("height").istore(3);
        m.getStaticA("image").astore(6);
        m.getStaticA("progress").astore(9);
        m.iload(0).istore(4);
        Label yl = m.newLabel(), yd = m.newLabel();
        m.bind(yl);
        m.iload(4).iload(1).ifIcmpge(yd);
        {
            Label xl = m.newLabel(), xd = m.newLabel();
            m.iconst(0).istore(5);
            m.bind(xl);
            m.iload(5).iload(2).ifIcmpge(xd);
            // dx = (x - w/2) / w ; dy = (y - h/2) / h
            m.iload(5).iload(2).iconst(2).idiv().isub().i2f()
                .iload(2).i2f().fdiv().fstore(7);
            m.iload(4).iload(3).iconst(2).idiv().isub().i2f()
                .iload(3).i2f().fdiv().fstore(8);
            m.aload(6)
                .iload(4).iload(2).imul().iload(5).iadd();
            m.fconst(0.0f).fconst(0.0f).fconst(-4.0f)
                .fload(7).fload(8).fconst(1.0f)
                .invokeStatic("Tracer.trace");
            m.iastore();
            // Bump the shared progress counter per pixel: with two
            // workers this is where case-(d) contention arises.
            m.aload(9).invokeVirtual("Counter.bump");
            m.iinc(5, 1);
            m.gotoL(xl);
            m.bind(xd);
        }
        m.iinc(4, 1);
        m.gotoL(yl);
        m.bind(yd);
        m.returnVoid();
    }
    {
        // work(half): thread entry.
        MethodBuilder &m =
            tracer.staticMethod("work", {VType::Int}, VType::Void);
        m.locals(3);  // 0 half, 1 h2, 2 y0
        m.getStaticI("height").iconst(2).idiv().istore(1);
        m.iload(0).iload(1).imul().istore(2);
        m.iload(2).iload(2).iload(1).iadd()
            .invokeStatic("Tracer.renderRows");
        m.returnVoid();
    }

    // ------------------------------------------------------------ Main
    ClassBuilder &main = pb.cls("Main");
    {
        MethodBuilder &m =
            main.staticMethod("setup", {VType::Int}, VType::Void);
        m.locals(2);  // 0 n, 1 shapes
        m.iload(0).putStaticI("width");
        m.iload(0).putStaticI("height");
        m.iload(0).iload(0).imul().newArray(ArrayKind::Int)
            .putStaticA("image");
        m.newObject("Counter").putStaticA("progress");
        m.iconst(4).newArray(ArrayKind::Ref).astore(1);
        m.aload(1).iconst(0)
            .newObject("Sphere").dup()
            .fconst(-0.6f).fconst(0.1f).fconst(-1.0f).fconst(0.5f)
            .iconst(200).invokeSpecial("Sphere.init")
            .aastore();
        m.aload(1).iconst(1)
            .newObject("Sphere").dup()
            .fconst(0.5f).fconst(-0.2f).fconst(-0.5f).fconst(0.4f)
            .iconst(150).invokeSpecial("Sphere.init")
            .aastore();
        m.aload(1).iconst(2)
            .newObject("MirrorSphere").dup()
            .fconst(0.0f).fconst(0.5f).fconst(0.2f).fconst(0.6f)
            .iconst(90).invokeSpecial("Sphere.init")
            .aastore();
        m.aload(1).iconst(3)
            .newObject("Sphere").dup()
            .fconst(0.1f).fconst(-0.7f).fconst(0.6f).fconst(0.3f)
            .iconst(120).invokeSpecial("Sphere.init")
            .aastore();
        m.aload(1).putStaticA("scene");
        m.returnVoid();
    }
    {
        MethodBuilder &m =
            main.staticMethod("run", {VType::Int}, VType::Int);
        m.locals(8);
        // 0 n, 1 t1, 2 t2, 3 img, 4 i, 5 sum, 6 len, 7 prog
        m.iload(0).invokeStatic("Main.setup");
        m.iconst(0).spawnThread("Tracer.work").istore(1);
        m.iconst(1).spawnThread("Tracer.work").istore(2);
        m.iload(1).joinThread();
        m.iload(2).joinThread();
        m.getStaticA("image").astore(3);
        m.aload(3).arrayLength().istore(6);
        m.iconst(0).istore(5);
        m.iconst(0).istore(4);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(4).iload(6).ifIcmpge(done);
        m.iload(5).iconst(31).imul()
            .aload(3).iload(4).iaload().iadd().istore(5);
        m.iinc(4, 1);
        m.gotoL(loop);
        m.bind(done);
        m.getStaticA("progress").invokeVirtual("Counter.get")
            .iconst(100000).imul().iload(5).iadd().ireturn();
    }

    return finishWithBoot(pb);
}

} // namespace jrs
