/**
 * @file
 * compress — LZW compression, decompression and verification over
 * synthetic run-containing data. Like SpecJVM98's 201_compress, the
 * program spends nearly all its time re-invoking a handful of small
 * hot methods (the dictionary probe runs once per input byte), so the
 * execution component dwarfs translation in JIT mode and data locality
 * is excellent.
 */
#include "workloads/workload.h"

#include "vm/bytecode/assembler.h"
#include "workloads/startup_lib.h"

namespace jrs {

Program
buildCompress()
{
    ProgramBuilder pb("compress");
    ClassBuilder &c = pb.cls("Compress");

    // genInput(size) -> byte[]: LCG byte stream with repeated runs.
    {
        MethodBuilder &m =
            c.staticMethod("genInput", {VType::Int}, VType::Ref);
        m.locals(6);  // 0 size, 1 buf, 2 seed, 3 i, 4 b, 5 run
        m.iload(0).newArray(ArrayKind::Byte).astore(1);
        m.iconst(12345).istore(2);
        m.iconst(0).istore(3);
        m.iconst(65).istore(4);
        m.iconst(0).istore(5);
        Label loop = m.newLabel(), done = m.newLabel();
        Label in_run = m.newLabel(), store = m.newLabel();
        Label no_run = m.newLabel();
        m.bind(loop);
        m.iload(3).iload(0).ifIcmpge(done);
        // seed = seed * 1103515245 + 12345
        m.iload(2).iconst(1103515245).imul().iconst(12345).iadd()
            .istore(2);
        m.iload(5).ifgt(in_run);
        // fresh byte: b = ((seed >>> 18) & 0x3f) + 32
        m.iload(2).iconst(18).iushr().iconst(0x3f).iand().iconst(32)
            .iadd().istore(4);
        // maybe start a run: if ((seed >>> 8) & 7) < 3
        m.iload(2).iconst(8).iushr().iconst(7).iand().iconst(3)
            .ifIcmpge(no_run);
        m.iload(2).iconst(12).iushr().iconst(15).iand().istore(5);
        m.bind(no_run);
        m.gotoL(store);
        m.bind(in_run);
        m.iinc(5, -1);
        m.bind(store);
        m.aload(1).iload(3).iload(4).bastore();
        m.iinc(3, 1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(1).areturn();
    }

    // probe(keys, key) -> slot: open-addressing linear probe.
    {
        MethodBuilder &m = c.staticMethod(
            "probe", {VType::Ref, VType::Int}, VType::Int);
        m.locals(4);  // 0 keys, 1 key, 2 h, 3 k
        m.iload(1).iconst(31).imul().iconst(7).iadd().iconst(8191)
            .iand().istore(2);
        Label loop = m.newLabel(), found = m.newLabel();
        m.bind(loop);
        m.aload(0).iload(2).iaload().istore(3);
        m.iload(3).ifeq(found);
        m.iload(3).iload(1).ifIcmpeq(found);
        m.iload(2).iconst(1).iadd().iconst(8191).iand().istore(2);
        m.gotoL(loop);
        m.bind(found);
        m.iload(2).ireturn();
    }

    // compress(input, size, codes) -> outLen
    {
        MethodBuilder &m = c.staticMethod(
            "compress", {VType::Ref, VType::Int, VType::Ref},
            VType::Int);
        m.locals(12);
        // 0 input, 1 size, 2 codes, 3 keys, 4 vals, 5 nextCode,
        // 6 w, 7 i, 8 ch, 9 key, 10 slot, 11 out
        m.iconst(8192).newArray(ArrayKind::Int).astore(3);
        m.iconst(8192).newArray(ArrayKind::Int).astore(4);
        m.iconst(256).istore(5);
        m.aload(0).iconst(0).baload().iconst(255).iand().istore(6);
        m.iconst(1).istore(7);
        m.iconst(0).istore(11);
        Label loop = m.newLabel(), done = m.newLabel();
        Label found = m.newLabel(), next = m.newLabel();
        Label dict_full = m.newLabel();
        m.bind(loop);
        m.iload(7).iload(1).ifIcmpge(done);
        m.aload(0).iload(7).baload().iconst(255).iand().istore(8);
        m.iload(6).iconst(8).ishl().iload(8).ior().iconst(1).iadd()
            .istore(9);
        m.aload(3).iload(9).invokeStatic("Compress.probe").istore(10);
        m.aload(3).iload(10).iaload().ifne(found);
        // miss: emit w, insert (key -> nextCode)
        m.aload(2).iload(11).iload(6).iastore();
        m.iinc(11, 1);
        m.iload(5).iconst(4096).ifIcmpge(dict_full);
        m.aload(3).iload(10).iload(9).iastore();
        m.aload(4).iload(10).iload(5).iastore();
        m.iinc(5, 1);
        m.bind(dict_full);
        m.iload(8).istore(6);
        m.gotoL(next);
        m.bind(found);
        m.aload(4).iload(10).iaload().istore(6);
        m.bind(next);
        m.iinc(7, 1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(2).iload(11).iload(6).iastore();
        m.iinc(11, 1);
        m.iload(11).ireturn();
    }

    // firstChar(prefix, code) -> int
    {
        MethodBuilder &m = c.staticMethod(
            "firstChar", {VType::Ref, VType::Int}, VType::Int);
        m.locals(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).iconst(256).ifIcmplt(done);
        m.aload(0).iload(1).iaload().istore(1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).ireturn();
    }

    // expand(code, prefix, suffix, out, pos, stk) -> newPos
    {
        MethodBuilder &m = c.staticMethod(
            "expand",
            {VType::Int, VType::Ref, VType::Ref, VType::Ref, VType::Int,
             VType::Ref},
            VType::Int);
        m.locals(7);  // 0 code, 1 prefix, 2 suffix, 3 out, 4 pos,
                      // 5 stk, 6 sp
        m.iconst(0).istore(6);
        Label walk = m.newLabel(), emit = m.newLabel();
        Label drain = m.newLabel(), done = m.newLabel();
        m.bind(walk);
        m.iload(0).iconst(256).ifIcmplt(emit);
        m.aload(5).iload(6).aload(2).iload(0).iaload().iastore();
        m.iinc(6, 1);
        m.aload(1).iload(0).iaload().istore(0);
        m.gotoL(walk);
        m.bind(emit);
        m.aload(3).iload(4).iload(0).bastore();
        m.iinc(4, 1);
        m.bind(drain);
        m.iload(6).ifle(done);
        m.iinc(6, -1);
        m.aload(3).iload(4).aload(5).iload(6).iaload().bastore();
        m.iinc(4, 1);
        m.gotoL(drain);
        m.bind(done);
        m.iload(4).ireturn();
    }

    // decompress(codes, n, out) -> decodedLen
    {
        MethodBuilder &m = c.staticMethod(
            "decompress", {VType::Ref, VType::Int, VType::Ref},
            VType::Int);
        m.locals(12);
        // 0 codes, 1 n, 2 out, 3 prefix, 4 suffix, 5 nextCode,
        // 6 prev, 7 i, 8 cur, 9 pos, 10 stk, 11 first
        m.iconst(4096).newArray(ArrayKind::Int).astore(3);
        m.iconst(4096).newArray(ArrayKind::Int).astore(4);
        m.iconst(4096).newArray(ArrayKind::Int).astore(10);
        m.iconst(256).istore(5);
        m.aload(0).iconst(0).iaload().istore(6);
        m.iload(6).aload(3).aload(4).aload(2).iconst(0).aload(10)
            .invokeStatic("Compress.expand").istore(9);
        m.iconst(1).istore(7);
        Label loop = m.newLabel(), done = m.newLabel();
        Label kwk = m.newLabel(), add = m.newLabel();
        Label dict_full = m.newLabel();
        m.bind(loop);
        m.iload(7).iload(1).ifIcmpge(done);
        m.aload(0).iload(7).iaload().istore(8);
        m.iload(8).iload(5).ifIcmpge(kwk);
        // normal: emit expand(cur); first = firstChar(cur)
        m.iload(8).aload(3).aload(4).aload(2).iload(9).aload(10)
            .invokeStatic("Compress.expand").istore(9);
        m.aload(3).iload(8).invokeStatic("Compress.firstChar")
            .istore(11);
        m.gotoL(add);
        m.bind(kwk);
        // KwKwK: first = firstChar(prev); emit expand(prev) + first
        m.aload(3).iload(6).invokeStatic("Compress.firstChar")
            .istore(11);
        m.iload(6).aload(3).aload(4).aload(2).iload(9).aload(10)
            .invokeStatic("Compress.expand").istore(9);
        m.aload(2).iload(9).iload(11).bastore();
        m.iinc(9, 1);
        m.bind(add);
        m.iload(5).iconst(4096).ifIcmpge(dict_full);
        m.aload(3).iload(5).iload(6).iastore();
        m.aload(4).iload(5).iload(11).iastore();
        m.iinc(5, 1);
        m.bind(dict_full);
        m.iload(8).istore(6);
        m.iinc(7, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(9).ireturn();
    }

    // verify(a, b, len) -> 1/0
    {
        MethodBuilder &m = c.staticMethod(
            "verify", {VType::Ref, VType::Ref, VType::Int}, VType::Int);
        m.locals(4);  // 0 a, 1 b, 2 len, 3 i
        m.iconst(0).istore(3);
        Label loop = m.newLabel(), bad = m.newLabel(), ok = m.newLabel();
        m.bind(loop);
        m.iload(3).iload(2).ifIcmpge(ok);
        m.aload(0).iload(3).baload();
        m.aload(1).iload(3).baload();
        m.ifIcmpne(bad);
        m.iinc(3, 1);
        m.gotoL(loop);
        m.bind(bad);
        m.iconst(0).ireturn();
        m.bind(ok);
        m.iconst(1).ireturn();
    }

    // checksum(codes, outLen) -> int
    {
        MethodBuilder &m = c.staticMethod(
            "checksum", {VType::Ref, VType::Int}, VType::Int);
        m.locals(4);  // 0 codes, 1 outLen, 2 sum, 3 i
        m.iload(1).iconst(31).imul().istore(2);
        m.iconst(0).istore(3);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(3).iload(1).ifIcmpge(done);
        m.iload(2).iconst(7).imul().aload(0).iload(3).iaload().iadd()
            .istore(2);
        m.iinc(3, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(2).ireturn();
    }

    ClassBuilder &main = pb.cls("Main");
    {
        MethodBuilder &m =
            main.staticMethod("run", {VType::Int}, VType::Int);
        m.locals(8);
        // 0 n, 1 input, 2 codes, 3 outLen, 4 decoded, 5 decLen,
        // 6 ok, 7 sum
        m.iload(0).invokeStatic("Compress.genInput").astore(1);
        m.iload(0).iconst(16).iadd().newArray(ArrayKind::Int).astore(2);
        m.aload(1).iload(0).aload(2).invokeStatic("Compress.compress")
            .istore(3);
        m.iload(0).iconst(16).iadd().newArray(ArrayKind::Byte)
            .astore(4);
        m.aload(2).iload(3).aload(4)
            .invokeStatic("Compress.decompress").istore(5);
        Label len_bad = m.newLabel(), have_ok = m.newLabel();
        m.iload(5).iload(0).ifIcmpne(len_bad);
        m.aload(1).aload(4).iload(0).invokeStatic("Compress.verify")
            .istore(6);
        m.gotoL(have_ok);
        m.bind(len_bad);
        m.iconst(0).istore(6);
        m.bind(have_ok);
        m.aload(2).iload(3).invokeStatic("Compress.checksum")
            .istore(7);
        m.iload(7).iconst(2).imul().iload(6).iadd().ireturn();
    }

    return finishWithBoot(pb);
}

} // namespace jrs
