/**
 * @file
 * db — an in-memory database driven by a random command stream, built
 * on a java.util.Vector-style container whose every method is
 * synchronized. Like SpecJVM98's 209_db, the workload is dominated by
 * many short method invocations and (a)-case lock acquisitions, with
 * modest per-method reuse — the profile in which the paper finds
 * translation overhead and the oracle's savings most visible.
 */
#include "workloads/workload.h"

#include "vm/bytecode/assembler.h"
#include "workloads/startup_lib.h"

namespace jrs {

Program
buildDb()
{
    ProgramBuilder pb("db");

    // ------------------------------------------------------------- Rec
    ClassBuilder &rec = pb.cls("Rec");
    rec.field("id");
    rec.field("val");
    rec.field("name");
    {
        MethodBuilder &m = rec.specialMethod(
            "init", {VType::Int, VType::Int, VType::Ref}, VType::Void);
        m.aload(0).iload(1).putFieldI("Rec.id");
        m.aload(0).iload(2).putFieldI("Rec.val");
        m.aload(0).aload(3).putFieldA("Rec.name");
        m.returnVoid();
    }
    {
        MethodBuilder &m = rec.virtualMethod("getId", {}, VType::Int);
        m.aload(0).getFieldI("Rec.id").ireturn();
    }
    {
        MethodBuilder &m = rec.virtualMethod("getVal", {}, VType::Int);
        m.aload(0).getFieldI("Rec.val").ireturn();
    }
    {
        // compareTo(other): by val, then id.
        MethodBuilder &m =
            rec.virtualMethod("compareTo", {VType::Ref}, VType::Int);
        m.locals(4);  // 0 this, 1 other, 2 a, 3 b
        m.aload(0).getFieldI("Rec.val").istore(2);
        m.aload(1).invokeVirtual("Rec.getVal").istore(3);
        Label eq = m.newLabel();
        m.iload(2).iload(3).ifIcmpeq(eq);
        m.iload(2).iload(3).isub().ireturn();
        m.bind(eq);
        m.aload(0).getFieldI("Rec.id")
            .aload(1).invokeVirtual("Rec.getId").isub().ireturn();
    }

    // --------------------------------------------------------- DbVector
    ClassBuilder &vec = pb.cls("DbVector");
    vec.field("arr");
    vec.field("count");
    {
        MethodBuilder &m =
            vec.specialMethod("init", {VType::Int}, VType::Void);
        m.aload(0).iload(1).newArray(ArrayKind::Ref)
            .putFieldA("DbVector.arr");
        m.aload(0).iconst(0).putFieldI("DbVector.count");
        m.returnVoid();
    }
    {
        MethodBuilder &m = vec.virtualMethod("size", {}, VType::Int);
        m.synchronized_();
        m.aload(0).getFieldI("DbVector.count").ireturn();
    }
    {
        MethodBuilder &m =
            vec.virtualMethod("add", {VType::Ref}, VType::Int);
        m.synchronized_();
        m.locals(3);  // 0 this, 1 elem, 2 c
        m.aload(0).getFieldI("DbVector.count").istore(2);
        Label full = m.newLabel();
        m.iload(2)
            .aload(0).getFieldA("DbVector.arr").arrayLength()
            .ifIcmpge(full);
        m.aload(0).getFieldA("DbVector.arr").iload(2).aload(1)
            .aastore();
        m.aload(0).iload(2).iconst(1).iadd()
            .putFieldI("DbVector.count");
        m.iconst(1).ireturn();
        m.bind(full);
        m.iconst(0).ireturn();
    }
    {
        MethodBuilder &m =
            vec.virtualMethod("get", {VType::Int}, VType::Ref);
        m.synchronized_();
        m.aload(0).getFieldA("DbVector.arr").iload(1).aaload()
            .areturn();
    }
    {
        MethodBuilder &m = vec.virtualMethod(
            "set", {VType::Int, VType::Ref}, VType::Void);
        m.synchronized_();
        m.aload(0).getFieldA("DbVector.arr").iload(1).aload(2)
            .aastore();
        m.returnVoid();
    }
    {
        // removeAt(i): swap-remove with the last element. Uses the
        // synchronized get/set accessors while already holding the
        // monitor — recursive (case (b)) locking, just like the JDK's
        // Vector methods calling one another.
        MethodBuilder &m =
            vec.virtualMethod("removeAt", {VType::Int}, VType::Void);
        m.synchronized_();
        m.locals(3);  // 0 this, 1 i, 2 last
        m.aload(0).getFieldI("DbVector.count").iconst(1).isub()
            .istore(2);
        m.aload(0).iload(1)
            .aload(0).iload(2).invokeVirtual("DbVector.get")
            .invokeVirtual("DbVector.set");
        m.aload(0).iload(2).aconstNull()
            .invokeVirtual("DbVector.set");
        m.aload(0).iload(2).putFieldI("DbVector.count");
        m.returnVoid();
    }

    // -------------------------------------------------------------- Db
    ClassBuilder &db = pb.cls("Db");
    db.field("recs");
    {
        MethodBuilder &m =
            db.specialMethod("init", {VType::Int}, VType::Void);
        m.aload(0).newObject("DbVector").dup().iload(1)
            .invokeSpecial("DbVector.init").putFieldA("Db.recs");
        m.returnVoid();
    }
    {
        // makeName(id) -> char[]: 8-char decimal rendering.
        MethodBuilder &m =
            db.staticMethod("makeName", {VType::Int}, VType::Ref);
        m.locals(4);  // 0 id, 1 buf, 2 i, 3 v
        m.iconst(8).newArray(ArrayKind::Char).astore(1);
        m.iload(0).istore(3);
        m.iconst(7).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(2).iflt(done);
        m.aload(1).iload(2)
            .iload(3).iconst(10).irem().iconst(48).iadd().i2c()
            .castore();
        m.iload(3).iconst(10).idiv().istore(3);
        m.iinc(2, -1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(1).areturn();
    }
    {
        MethodBuilder &m = db.virtualMethod(
            "addRec", {VType::Int, VType::Int}, VType::Void);
        m.locals(4);  // 0 this, 1 id, 2 val, 3 rec
        m.newObject("Rec").dup()
            .iload(1).iload(2)
            .iload(1).invokeStatic("Db.makeName")
            .invokeSpecial("Rec.init")
            .astore(3);
        m.aload(0).getFieldA("Db.recs").aload(3)
            .invokeVirtual("DbVector.add").pop();
        m.returnVoid();
    }
    {
        // findByVal(v) -> index or -1 (linear scan).
        MethodBuilder &m =
            db.virtualMethod("findByVal", {VType::Int}, VType::Int);
        m.locals(4);  // 0 this, 1 v, 2 i, 3 n
        m.aload(0).getFieldA("Db.recs")
            .invokeVirtual("DbVector.size").istore(3);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), miss = m.newLabel();
        Label hit = m.newLabel();
        m.bind(loop);
        m.iload(2).iload(3).ifIcmpge(miss);
        m.aload(0).getFieldA("Db.recs").iload(2)
            .invokeVirtual("DbVector.get")
            .invokeVirtual("Rec.getVal")
            .iload(1).ifIcmpeq(hit);
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(hit);
        m.iload(2).ireturn();
        m.bind(miss);
        m.iconst(-1).ireturn();
    }
    {
        // sort(): shellsort on (val, id) through the Vector API.
        MethodBuilder &m = db.virtualMethod("sort", {}, VType::Void);
        m.locals(7);  // 0 this, 1 n, 2 gap, 3 i, 4 j, 5 tmp, 6 v
        m.aload(0).getFieldA("Db.recs")
            .invokeVirtual("DbVector.size").istore(1);
        m.iload(1).iconst(2).idiv().istore(2);
        Label gaps = m.newLabel(), gdone = m.newLabel();
        m.bind(gaps);
        m.iload(2).ifle(gdone);
        {
            Label il = m.newLabel(), idone = m.newLabel();
            m.iload(2).istore(3);
            m.bind(il);
            m.iload(3).iload(1).ifIcmpge(idone);
            m.aload(0).getFieldA("Db.recs").iload(3)
                .invokeVirtual("DbVector.get").astore(5);
            m.iload(3).istore(4);
            {
                Label jl = m.newLabel(), jdone = m.newLabel();
                m.bind(jl);
                m.iload(4).iload(2).ifIcmplt(jdone);
                // if recs[j-gap] <= tmp: stop
                m.aload(0).getFieldA("Db.recs")
                    .iload(4).iload(2).isub()
                    .invokeVirtual("DbVector.get")
                    .aload(5).invokeVirtual("Rec.compareTo")
                    .ifle(jdone);
                m.aload(0).getFieldA("Db.recs").iload(4)
                    .aload(0).getFieldA("Db.recs")
                    .iload(4).iload(2).isub()
                    .invokeVirtual("DbVector.get")
                    .invokeVirtual("DbVector.set");
                m.iload(4).iload(2).isub().istore(4);
                m.gotoL(jl);
                m.bind(jdone);
            }
            m.aload(0).getFieldA("Db.recs").iload(4).aload(5)
                .invokeVirtual("DbVector.set");
            m.iinc(3, 1);
            m.gotoL(il);
            m.bind(idone);
        }
        m.iload(2).iconst(2).idiv().istore(2);
        m.gotoL(gaps);
        m.bind(gdone);
        m.returnVoid();
    }
    {
        MethodBuilder &m = db.virtualMethod("checksum", {}, VType::Int);
        m.locals(5);  // 0 this, 1 n, 2 i, 3 sum, 4 r
        m.aload(0).getFieldA("Db.recs")
            .invokeVirtual("DbVector.size").istore(1);
        m.iconst(0).istore(3);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(2).iload(1).ifIcmpge(done);
        m.aload(0).getFieldA("Db.recs").iload(2)
            .invokeVirtual("DbVector.get").astore(4);
        m.iload(3).iconst(31).imul()
            .aload(4).invokeVirtual("Rec.getId").iadd()
            .aload(4).invokeVirtual("Rec.getVal").iconst(7).imul()
            .iadd().istore(3);
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(3).iload(1).iconst(1000).imul().iadd().ireturn();
    }

    // ------------------------------------------------------------ Main
    ClassBuilder &main = pb.cls("Main");
    {
        MethodBuilder &m =
            main.staticMethod("run", {VType::Int}, VType::Int);
        m.locals(8);
        // 0 n, 1 db, 2 seed, 3 i, 4 op, 5 idx, 6 nextId, 7 sortEvery
        m.newObject("Db").astore(1);
        m.aload(1).iload(0).iconst(8).iadd()
            .invokeSpecial("Db.init");
        m.iconst(987654321).istore(2);
        m.iconst(0).istore(6);
        m.iload(0).iconst(8).idiv().iconst(1).iadd().istore(7);
        m.iconst(0).istore(3);
        Label loop = m.newLabel(), done = m.newLabel();
        Label do_find = m.newLabel(), do_sort = m.newLabel();
        Label next = m.newLabel(), no_del = m.newLabel();
        m.bind(loop);
        m.iload(3).iload(0).ifIcmpge(done);
        // seed = seed * 1103515245 + 12345
        m.iload(2).iconst(1103515245).imul().iconst(12345).iadd()
            .istore(2);
        m.iload(2).iconst(16).iushr().iconst(3).iand().istore(4);
        m.iload(4).iconst(2).ifIcmpeq(do_find);
        m.iload(4).iconst(3).ifIcmpeq(do_sort);
        // add (ops 0, 1)
        m.aload(1).iload(6)
            .iload(2).iconst(20).iushr().iconst(1023).iand()
            .invokeVirtual("Db.addRec");
        m.iinc(6, 1);
        m.gotoL(next);
        m.bind(do_find);
        m.aload(1)
            .iload(2).iconst(20).iushr().iconst(1023).iand()
            .invokeVirtual("Db.findByVal").istore(5);
        m.iload(5).iflt(no_del);
        // delete roughly half the hits
        m.iload(2).iconst(1).iand().ifeq(no_del);
        m.aload(1).getFieldA("Db.recs").iload(5)
            .invokeVirtual("DbVector.removeAt");
        m.bind(no_del);
        m.gotoL(next);
        m.bind(do_sort);
        // sort only every sortEvery-th op
        m.iload(3).iload(7).irem().ifne(next);
        m.aload(1).invokeVirtual("Db.sort");
        m.bind(next);
        m.iinc(3, 1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(1).invokeVirtual("Db.sort");
        m.aload(1).invokeVirtual("Db.checksum").ireturn();
    }

    return finishWithBoot(pb);
}

} // namespace jrs
