/**
 * @file
 * jack — repeated scanning of a token stream with exception-based
 * error recovery. SpecJVM98's 228_jack parses the same input sixteen
 * times and is famous for its heavy exception traffic; this workload
 * reproduces both traits: sixteen passes over one buffer, with bad
 * characters raising a ParseError that the driver catches per token.
 */
#include "workloads/workload.h"

#include "vm/bytecode/assembler.h"
#include "workloads/startup_lib.h"

namespace jrs {

Program
buildJack()
{
    ProgramBuilder pb("jack");

    pb.staticSlot("inputLen", VType::Int);

    // -------------------------------------------------------- ParseError
    ClassBuilder &err = pb.cls("ParseError");
    err.field("pos");
    {
        MethodBuilder &m =
            err.specialMethod("init", {VType::Int}, VType::Void);
        m.aload(0).iload(1).putFieldI("ParseError.pos");
        m.returnVoid();
    }

    // ----------------------------------------------------------- Scanner
    ClassBuilder &sc = pb.cls("Scanner");
    sc.field("src");
    sc.field("pos");
    sc.field("len");
    sc.field("tokHash");
    {
        MethodBuilder &m = sc.specialMethod(
            "init", {VType::Ref, VType::Int}, VType::Void);
        m.aload(0).aload(1).putFieldA("Scanner.src");
        m.aload(0).iconst(0).putFieldI("Scanner.pos");
        m.aload(0).iload(2).putFieldI("Scanner.len");
        m.returnVoid();
    }
    {
        MethodBuilder &m = sc.virtualMethod("rewind", {}, VType::Void);
        m.aload(0).iconst(0).putFieldI("Scanner.pos");
        m.returnVoid();
    }
    {
        // scanIdent(p) -> new pos; hash accumulates into tokHash.
        MethodBuilder &m =
            sc.virtualMethod("scanIdent", {VType::Int}, VType::Int);
        m.locals(5);  // 0 this, 1 p, 2 h, 3 ch, 4 len
        m.iconst(0).istore(2);
        m.aload(0).getFieldI("Scanner.len").istore(4);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).iload(4).ifIcmpge(done);
        m.aload(0).getFieldA("Scanner.src").iload(1).caload()
            .istore(3);
        m.iload(3).iconst('a').ifIcmplt(done);
        m.iload(3).iconst('z').ifIcmpgt(done);
        m.iload(2).iconst(31).imul().iload(3).iadd().istore(2);
        m.iinc(1, 1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(0).iload(2).putFieldI("Scanner.tokHash");
        m.iload(1).ireturn();
    }
    {
        // scanNumber(p) -> new pos.
        MethodBuilder &m =
            sc.virtualMethod("scanNumber", {VType::Int}, VType::Int);
        m.locals(5);  // 0 this, 1 p, 2 v, 3 ch, 4 len
        m.iconst(0).istore(2);
        m.aload(0).getFieldI("Scanner.len").istore(4);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).iload(4).ifIcmpge(done);
        m.aload(0).getFieldA("Scanner.src").iload(1).caload()
            .istore(3);
        m.iload(3).iconst('0').ifIcmplt(done);
        m.iload(3).iconst('9').ifIcmpgt(done);
        m.iload(2).iconst(10).imul().iload(3).iconst('0').isub()
            .iadd().istore(2);
        m.iinc(1, 1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(0).iload(2).putFieldI("Scanner.tokHash");
        m.iload(1).ireturn();
    }
    {
        // nextToken() -> 0 eof, 1 ident, 2 number, 3 punct;
        // throws ParseError on a bad character (position advanced
        // first so recovery makes progress).
        MethodBuilder &m = sc.virtualMethod("nextToken", {}, VType::Int);
        m.locals(4);  // 0 this, 1 p, 2 ch, 3 len
        m.aload(0).getFieldI("Scanner.pos").istore(1);
        m.aload(0).getFieldI("Scanner.len").istore(3);
        // skip spaces
        Label skip = m.newLabel(), have = m.newLabel();
        Label eof = m.newLabel();
        m.bind(skip);
        m.iload(1).iload(3).ifIcmpge(eof);
        m.aload(0).getFieldA("Scanner.src").iload(1).caload()
            .istore(2);
        m.iload(2).iconst(' ').ifIcmpne(have);
        m.iinc(1, 1);
        m.gotoL(skip);
        m.bind(have);
        Label ident = m.newLabel(), number = m.newLabel();
        Label punct = m.newLabel(), bad = m.newLabel();
        m.iload(2).iconst('a').ifIcmplt(number);
        m.iload(2).iconst('z').ifIcmple(ident);
        m.gotoL(bad);
        m.bind(number);
        {
            Label num_go = m.newLabel();
            m.iload(2).iconst('0').ifIcmplt(punct);
            m.iload(2).iconst('9').ifIcmple(num_go);
            m.gotoL(punct);
            m.bind(num_go);
            m.aload(0)
                .aload(0).iload(1).invokeVirtual("Scanner.scanNumber")
                .putFieldI("Scanner.pos");
            m.iconst(2).ireturn();
        }
        m.bind(ident);
        m.aload(0)
            .aload(0).iload(1).invokeVirtual("Scanner.scanIdent")
            .putFieldI("Scanner.pos");
        m.iconst(1).ireturn();
        m.bind(punct);
        {
            // one of + - * / ; ( ) = accepted; '@' & others are bad
            Label is_bad = m.newLabel();
            m.iload(2).iconst('@').ifIcmpeq(is_bad);
            m.aload(0).iload(1).iconst(1).iadd()
                .putFieldI("Scanner.pos");
            m.aload(0).iload(2).putFieldI("Scanner.tokHash");
            m.iconst(3).ireturn();
            m.bind(is_bad);
            m.gotoL(bad);
        }
        m.bind(bad);
        // advance past the offender, then throw
        m.aload(0).iload(1).iconst(1).iadd().putFieldI("Scanner.pos");
        m.newObject("ParseError").dup().iload(1)
            .invokeSpecial("ParseError.init");
        m.athrow();
        m.bind(eof);
        m.aload(0).iload(1).putFieldI("Scanner.pos");
        m.iconst(0).ireturn();
    }

    // ------------------------------------------------------------ Main
    ClassBuilder &main = pb.cls("Main");
    {
        // genInput(n) -> char[]; actual length in static inputLen.
        MethodBuilder &m =
            main.staticMethod("genInput", {VType::Int}, VType::Ref);
        m.locals(7);  // 0 n, 1 buf, 2 seed, 3 i, 4 o, 5 r, 6 k
        m.iload(0).iconst(10).imul().iconst(32).iadd()
            .newArray(ArrayKind::Char).astore(1);
        m.iconst(424242).istore(2);
        m.iconst(0).istore(3);
        m.iconst(0).istore(4);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(3).iload(0).ifIcmpge(done);
        m.iload(2).iconst(1103515245).imul().iconst(12345).iadd()
            .istore(2);
        m.iload(2).iconst(16).iushr().iconst(31).iand().istore(5);
        Label w_num = m.newLabel(), w_punct = m.newLabel();
        Label w_bad = m.newLabel(), spaced = m.newLabel();
        // r: 0..15 ident, 16..23 number, 24..30 punct, 31 bad char
        m.iload(5).iconst(16).ifIcmpge(w_num);
        {
            // ident of 1 + (r & 5 bits % 6) letters
            Label il = m.newLabel(), idone = m.newLabel();
            m.iload(5).iconst(6).irem().iconst(1).iadd().istore(6);
            m.bind(il);
            m.iload(6).ifle(idone);
            m.iload(2).iconst(1103515245).imul().iconst(12345).iadd()
                .istore(2);
            m.aload(1).iload(4)
                .iload(2).iconst(20).iushr().iconst(26).irem()
                .iconst('a').iadd().i2c()
                .castore();
            m.iinc(4, 1);
            m.iinc(6, -1);
            m.gotoL(il);
            m.bind(idone);
            m.gotoL(spaced);
        }
        m.bind(w_num);
        m.iload(5).iconst(24).ifIcmpge(w_punct);
        {
            Label nl = m.newLabel(), ndone = m.newLabel();
            m.iload(5).iconst(3).irem().iconst(1).iadd().istore(6);
            m.bind(nl);
            m.iload(6).ifle(ndone);
            m.iload(2).iconst(1103515245).imul().iconst(12345).iadd()
                .istore(2);
            m.aload(1).iload(4)
                .iload(2).iconst(20).iushr().iconst(10).irem()
                .iconst('0').iadd().i2c()
                .castore();
            m.iinc(4, 1);
            m.iinc(6, -1);
            m.gotoL(nl);
            m.bind(ndone);
            m.gotoL(spaced);
        }
        m.bind(w_punct);
        m.iload(5).iconst(31).ifIcmpeq(w_bad);
        // pick one of "+-*/;()" by (r - 24)
        m.aload(1).iload(4)
            .ldcStr("+-*/;()").iload(5).iconst(24).isub().caload()
            .castore();
        m.iinc(4, 1);
        m.gotoL(spaced);
        m.bind(w_bad);
        m.aload(1).iload(4).iconst('@').castore();
        m.iinc(4, 1);
        m.bind(spaced);
        m.aload(1).iload(4).iconst(' ').castore();
        m.iinc(4, 1);
        m.iinc(3, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(4).putStaticI("inputLen");
        m.aload(1).areturn();
    }
    {
        // pass(scanner) -> checksum of one full scan.
        MethodBuilder &m =
            main.staticMethod("pass", {VType::Ref}, VType::Int);
        m.locals(6);  // 0 scanner, 1 sum, 2 errs, 3 t, 4 e, 5 unused
        m.iconst(0).istore(1);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        Label try_start = m.newLabel(), try_end = m.newLabel();
        Label handler = m.newLabel();
        m.bind(loop);
        m.bind(try_start);
        m.aload(0).invokeVirtual("Scanner.nextToken").istore(3);
        m.bind(try_end);
        m.iload(3).ifeq(done);
        m.iload(1).iconst(31).imul().iload(3).iadd()
            .aload(0).getFieldI("Scanner.tokHash").iadd().istore(1);
        m.gotoL(loop);
        m.bind(handler);
        m.astore(4);
        m.iload(2).iconst(1).iadd()
            .aload(4).getFieldI("ParseError.pos")
            .iconst(1000000).irem().iadd().istore(2);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).iload(2).iconst(13).imul().iadd().ireturn();
        m.addHandler(try_start, try_end, handler, "ParseError");
    }
    {
        MethodBuilder &m =
            main.staticMethod("run", {VType::Int}, VType::Int);
        m.locals(7);
        // 0 n, 1 input, 2 scanner, 3 pass, 4 sum, 5 ck, 6 len
        m.iload(0).invokeStatic("Main.genInput").astore(1);
        m.getStaticI("inputLen").istore(6);
        m.newObject("Scanner").astore(2);
        m.aload(2).aload(1).iload(6).invokeSpecial("Scanner.init");
        m.iconst(0).istore(4);
        m.iconst(0).istore(3);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(3).iconst(16).ifIcmpge(done);
        m.aload(2).invokeVirtual("Scanner.rewind");
        m.aload(2).invokeStatic("Main.pass").istore(5);
        m.iload(4).iconst(7).imul().iload(5).iadd().istore(4);
        m.iinc(3, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(4).ireturn();
    }

    return finishWithBoot(pb);
}

} // namespace jrs
