#include "workloads/startup_lib.h"

namespace jrs {

void
addStartupLibrary(ProgramBuilder &pb)
{
    pb.staticSlot("lib$sinTab", VType::Ref);
    pb.staticSlot("lib$logTab", VType::Ref);
    pb.staticSlot("lib$crcTab", VType::Ref);
    pb.staticSlot("lib$props", VType::Int);
    pb.staticSlot("lib$log", VType::Ref);

    // ----------------------------------------------------------- LibMath
    ClassBuilder &math = pb.cls("LibMath");
    {
        // isqrt(n): Newton iterations on ints.
        MethodBuilder &m =
            math.staticMethod("isqrt", {VType::Int}, VType::Int);
        m.locals(3);  // 0 n, 1 x, 2 next
        Label zero = m.newLabel();
        m.iload(0).ifle(zero);
        m.iload(0).istore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).iload(0).iload(1).idiv().iadd().iconst(2).idiv()
            .istore(2);
        m.iload(2).iload(1).ifIcmpge(done);
        m.iload(2).istore(1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).ireturn();
        m.bind(zero);
        m.iconst(0).ireturn();
    }
    {
        MethodBuilder &m = math.staticMethod(
            "gcd", {VType::Int, VType::Int}, VType::Int);
        m.locals(3);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).ifeq(done);
        m.iload(0).iload(1).irem().istore(2);
        m.iload(1).istore(0);
        m.iload(2).istore(1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(0).ireturn();
    }
    {
        MethodBuilder &m =
            math.staticMethod("ilog2", {VType::Int}, VType::Int);
        m.locals(2);
        m.iconst(0).istore(1);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(0).iconst(1).ifIcmple(done);
        m.iload(0).iconst(1).ishr().istore(0);
        m.iinc(1, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).ireturn();
    }
    {
        // clamp(v, lo, hi)
        MethodBuilder &m = math.staticMethod(
            "clamp", {VType::Int, VType::Int, VType::Int}, VType::Int);
        Label lo = m.newLabel(), hi = m.newLabel();
        m.iload(0).iload(1).ifIcmplt(lo);
        m.iload(0).iload(2).ifIcmpgt(hi);
        m.iload(0).ireturn();
        m.bind(lo);
        m.iload(1).ireturn();
        m.bind(hi);
        m.iload(2).ireturn();
    }

    // ------------------------------------------------------------ LibTab
    ClassBuilder &tab = pb.cls("LibTab");
    {
        // initSinTab(): 64-entry fixed-point sine table.
        MethodBuilder &m = tab.staticMethod("initSinTab", {}, VType::Int);
        m.locals(3);  // 0 t, 1 i, 2 sum
        m.iconst(32).newArray(ArrayKind::Int).astore(0);
        m.iconst(0).istore(1);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).iconst(32).ifIcmpge(done);
        m.aload(0).iload(1);
        m.iload(1).i2f().fconst(0.0981748f).fmul()
            .intrinsic(IntrinsicId::FSin).fconst(4096.0f).fmul().f2i();
        m.iastore();
        m.iload(2).aload(0).iload(1).iaload().iadd().istore(2);
        m.iinc(1, 1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(0).putStaticA("lib$sinTab");
        m.iload(2).ireturn();
    }
    {
        // initLogTab(): 32-entry integer log table via LibMath.ilog2.
        MethodBuilder &m = tab.staticMethod("initLogTab", {}, VType::Int);
        m.locals(3);
        m.iconst(32).newArray(ArrayKind::Int).astore(0);
        m.iconst(1).istore(1);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).iconst(32).ifIcmpge(done);
        m.aload(0).iload(1)
            .iload(1).iconst(77).imul().invokeStatic("LibMath.ilog2")
            .iastore();
        m.iload(2).aload(0).iload(1).iaload().iadd().istore(2);
        m.iinc(1, 1);
        m.gotoL(loop);
        m.bind(done);
        m.aload(0).putStaticA("lib$logTab");
        m.iload(2).ireturn();
    }
    {
        // initCrcTab(): 256-entry CRC-ish table.
        MethodBuilder &m = tab.staticMethod("initCrcTab", {}, VType::Int);
        m.locals(5);  // 0 t, 1 i, 2 c, 3 k, 4 sum
        m.iconst(64).newArray(ArrayKind::Int).astore(0);
        m.iconst(0).istore(1);
        m.iconst(0).istore(4);
        Label il = m.newLabel(), idone = m.newLabel();
        m.bind(il);
        m.iload(1).iconst(64).ifIcmpge(idone);
        m.iload(1).istore(2);
        m.iconst(8).istore(3);
        {
            Label kl = m.newLabel(), kdone = m.newLabel();
            Label even = m.newLabel(), next = m.newLabel();
            m.bind(kl);
            m.iload(3).ifle(kdone);
            m.iload(2).iconst(1).iand().ifeq(even);
            m.iload(2).iconst(1).iushr().iconst(0x6db88320).ixor()
                .istore(2);
            m.gotoL(next);
            m.bind(even);
            m.iload(2).iconst(1).iushr().istore(2);
            m.bind(next);
            m.iinc(3, -1);
            m.gotoL(kl);
            m.bind(kdone);
        }
        m.aload(0).iload(1).iload(2).iastore();
        m.iload(4).iload(2).ixor().istore(4);
        m.iinc(1, 1);
        m.gotoL(il);
        m.bind(idone);
        m.aload(0).putStaticA("lib$crcTab");
        m.iload(4).ireturn();
    }

    // ------------------------------------------------------------ LibFmt
    ClassBuilder &fmt = pb.cls("LibFmt");
    {
        // itoa(v, buf) -> length (right-aligned digits).
        MethodBuilder &m = fmt.staticMethod(
            "itoa", {VType::Int, VType::Ref}, VType::Int);
        m.locals(4);  // 0 v, 1 buf, 2 pos, 3 len
        m.aload(1).arrayLength().iconst(1).isub().istore(2);
        m.iconst(0).istore(3);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.aload(1).iload(2)
            .iload(0).iconst(10).irem().iconst('0').iadd().i2c()
            .castore();
        m.iinc(3, 1);
        m.iload(0).iconst(10).idiv().istore(0);
        m.iload(0).ifeq(done);
        m.iinc(2, -1);
        m.iload(2).ifge(loop);
        m.bind(done);
        m.iload(3).ireturn();
    }
    {
        // hash(str): Java-style char[] hash.
        MethodBuilder &m =
            fmt.staticMethod("hash", {VType::Ref}, VType::Int);
        m.locals(4);  // 0 s, 1 h, 2 i, 3 n
        m.iconst(0).istore(1);
        m.aload(0).arrayLength().istore(3);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(2).iload(3).ifIcmpge(done);
        m.iload(1).iconst(31).imul()
            .aload(0).iload(2).caload().iadd().istore(1);
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).ireturn();
    }
    {
        // eq(a, b): char[] equality.
        MethodBuilder &m = fmt.staticMethod(
            "eq", {VType::Ref, VType::Ref}, VType::Int);
        m.locals(4);
        Label no = m.newLabel(), yes = m.newLabel();
        m.aload(0).arrayLength().aload(1).arrayLength().ifIcmpne(no);
        m.iconst(0).istore(2);
        Label loop = m.newLabel();
        m.bind(loop);
        m.iload(2).aload(0).arrayLength().ifIcmpge(yes);
        m.aload(0).iload(2).caload()
            .aload(1).iload(2).caload().ifIcmpne(no);
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(yes);
        m.iconst(1).ireturn();
        m.bind(no);
        m.iconst(0).ireturn();
    }

    // ------------------------------------------------------------ LibCfg
    ClassBuilder &cfg = pb.cls("LibCfg");
    {
        // parse(): scan a properties literal, count pairs and sum
        // key hashes (one-shot config parsing).
        MethodBuilder &m = cfg.staticMethod("parse", {}, VType::Int);
        m.locals(6);  // 0 s, 1 i, 2 n, 3 acc, 4 ch, 5 pairs
        m.ldcStr("vm.heap=64m;vm.stack=1m;jit.enable=true;"
                 "jit.threshold=1;gc.policy=none;os.arch=sparc")
            .astore(0);
        m.aload(0).arrayLength().istore(2);
        m.iconst(0).istore(1);
        m.iconst(0).istore(3);
        m.iconst(0).istore(5);
        Label loop = m.newLabel(), done = m.newLabel();
        Label semi = m.newLabel(), next = m.newLabel();
        m.bind(loop);
        m.iload(1).iload(2).ifIcmpge(done);
        m.aload(0).iload(1).caload().istore(4);
        m.iload(4).iconst(';').ifIcmpeq(semi);
        m.iload(3).iconst(31).imul().iload(4).iadd().istore(3);
        m.gotoL(next);
        m.bind(semi);
        m.iinc(5, 1);
        m.bind(next);
        m.iinc(1, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(5).putStaticI("lib$props");
        m.iload(3).iload(5).iadd().ireturn();
    }

    // ------------------------------------------------------------ LibLog
    // A synchronized append-only log: the library-side monitor traffic
    // single-threaded programs still perform.
    ClassBuilder &log = pb.cls("LibLog");
    log.field("buf");
    log.field("len");
    log.field("events");
    {
        MethodBuilder &m =
            log.specialMethod("init", {VType::Int}, VType::Void);
        m.aload(0).iload(1).newArray(ArrayKind::Char)
            .putFieldA("LibLog.buf");
        m.aload(0).iconst(0).putFieldI("LibLog.len");
        m.aload(0).iconst(0).putFieldI("LibLog.events");
        m.returnVoid();
    }
    {
        // append(ch): synchronized; every 4th append flushes event
        // bookkeeping through note() -> nested synchronization on the
        // same receiver (case (b)), keeping (a) dominant (~80%).
        MethodBuilder &m =
            log.virtualMethod("append", {VType::Int}, VType::Void);
        m.synchronized_();
        m.locals(3);
        m.aload(0).getFieldI("LibLog.len").istore(2);
        Label full = m.newLabel();
        m.iload(2).aload(0).getFieldA("LibLog.buf").arrayLength()
            .ifIcmpge(full);
        m.aload(0).getFieldA("LibLog.buf").iload(2)
            .iload(1).i2c().castore();
        m.aload(0).iload(2).iconst(1).iadd().putFieldI("LibLog.len");
        m.bind(full);
        Label skip = m.newLabel();
        m.iload(2).iconst(3).iand().ifne(skip);
        m.aload(0).invokeVirtual("LibLog.note");
        m.bind(skip);
        m.returnVoid();
    }
    {
        MethodBuilder &m = log.virtualMethod("note", {}, VType::Void);
        m.synchronized_();
        m.aload(0)
            .aload(0).getFieldI("LibLog.events").iconst(1).iadd()
            .putFieldI("LibLog.events");
        m.returnVoid();
    }
    {
        MethodBuilder &m = log.virtualMethod("size", {}, VType::Int);
        m.synchronized_();
        m.aload(0).getFieldI("LibLog.len").ireturn();
    }

    // ------------------------------------------------------------ LibStr
    ClassBuilder &str = pb.cls("LibStr");
    {
        // indexOf(s, ch) -> first index or -1.
        MethodBuilder &m = str.staticMethod(
            "indexOf", {VType::Ref, VType::Int}, VType::Int);
        m.locals(4);
        m.aload(0).arrayLength().istore(3);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), miss = m.newLabel();
        Label hit = m.newLabel();
        m.bind(loop);
        m.iload(2).iload(3).ifIcmpge(miss);
        m.aload(0).iload(2).caload().iload(1).ifIcmpeq(hit);
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(hit);
        m.iload(2).ireturn();
        m.bind(miss);
        m.iconst(-1).ireturn();
    }
    {
        // toUpper(s) -> count of changed chars (in place).
        MethodBuilder &m =
            str.staticMethod("toUpper", {VType::Ref}, VType::Int);
        m.locals(4);
        m.aload(0).arrayLength().istore(3);
        m.iconst(0).istore(1);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        Label keep = m.newLabel();
        m.bind(loop);
        m.iload(2).iload(3).ifIcmpge(done);
        m.aload(0).iload(2).caload().iconst('a').ifIcmplt(keep);
        m.aload(0).iload(2).caload().iconst('z').ifIcmpgt(keep);
        m.aload(0).iload(2)
            .aload(0).iload(2).caload().iconst(32).isub().i2c()
            .castore();
        m.iinc(1, 1);
        m.bind(keep);
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).ireturn();
    }
    {
        // trim(s) -> count of non-space chars.
        MethodBuilder &m =
            str.staticMethod("trim", {VType::Ref}, VType::Int);
        m.locals(4);
        m.aload(0).arrayLength().istore(3);
        m.iconst(0).istore(1);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        Label space = m.newLabel();
        m.bind(loop);
        m.iload(2).iload(3).ifIcmpge(done);
        m.aload(0).iload(2).caload().iconst(' ').ifIcmpeq(space);
        m.iinc(1, 1);
        m.bind(space);
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).ireturn();
    }

    // ------------------------------------------------------------ LibVec
    // A tiny growable int vector, initialized once at boot.
    ClassBuilder &vec = pb.cls("LibVec");
    vec.field("arr");
    vec.field("n");
    {
        MethodBuilder &m =
            vec.specialMethod("init", {VType::Int}, VType::Void);
        m.aload(0).iload(1).newArray(ArrayKind::Int)
            .putFieldA("LibVec.arr");
        m.aload(0).iconst(0).putFieldI("LibVec.n");
        m.returnVoid();
    }
    {
        MethodBuilder &m =
            vec.virtualMethod("push", {VType::Int}, VType::Void);
        m.locals(3);
        m.aload(0).getFieldI("LibVec.n").istore(2);
        Label full = m.newLabel();
        m.iload(2).aload(0).getFieldA("LibVec.arr").arrayLength()
            .ifIcmpge(full);
        m.aload(0).getFieldA("LibVec.arr").iload(2).iload(1)
            .iastore();
        m.aload(0).iload(2).iconst(1).iadd().putFieldI("LibVec.n");
        m.bind(full);
        m.returnVoid();
    }
    {
        MethodBuilder &m =
            vec.virtualMethod("at", {VType::Int}, VType::Int);
        m.aload(0).getFieldA("LibVec.arr").iload(1).iaload()
            .ireturn();
    }
    {
        MethodBuilder &m = vec.virtualMethod("sum", {}, VType::Int);
        m.locals(4);
        m.iconst(0).istore(1);
        m.iconst(0).istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(2).aload(0).getFieldI("LibVec.n").ifIcmpge(done);
        m.iload(1).aload(0).iload(2).invokeVirtual("LibVec.at").iadd()
            .istore(1);
        m.iinc(2, 1);
        m.gotoL(loop);
        m.bind(done);
        m.iload(1).ireturn();
    }
    {
        // reverse(): in-place swap loop.
        MethodBuilder &m = vec.virtualMethod("reverse", {}, VType::Void);
        m.locals(5);  // 0 this, 1 i, 2 j, 3 tmp, 4 arr
        m.aload(0).getFieldA("LibVec.arr").astore(4);
        m.iconst(0).istore(1);
        m.aload(0).getFieldI("LibVec.n").iconst(1).isub().istore(2);
        Label loop = m.newLabel(), done = m.newLabel();
        m.bind(loop);
        m.iload(1).iload(2).ifIcmpge(done);
        m.aload(4).iload(1).iaload().istore(3);
        m.aload(4).iload(1).aload(4).iload(2).iaload().iastore();
        m.aload(4).iload(2).iload(3).iastore();
        m.iinc(1, 1);
        m.iinc(2, -1);
        m.gotoL(loop);
        m.bind(done);
        m.returnVoid();
    }

    // -------------------------------------------------------------- Lib
    ClassBuilder &lib = pb.cls("Lib");
    {
        // boot(seed) -> checksum; calls everything above once.
        MethodBuilder &m =
            lib.staticMethod("boot", {VType::Int}, VType::Int);
        m.locals(6);  // 0 seed, 1 acc, 2 log, 3 buf, 4 i, 5 t
        m.iconst(0).istore(1);
        // Tables.
        m.invokeStatic("LibTab.initSinTab").istore(1);
        m.iload(1).invokeStatic("LibTab.initLogTab").iadd().istore(1);
        m.iload(1).invokeStatic("LibTab.initCrcTab").ixor().istore(1);
        // Config.
        m.iload(1).invokeStatic("LibCfg.parse").iadd().istore(1);
        // Math (a few borderline-warm calls).
        m.iconst(0).istore(4);
        Label ml = m.newLabel(), mdone = m.newLabel();
        m.bind(ml);
        m.iload(4).iconst(6).ifIcmpge(mdone);
        m.iload(1)
            .iload(0).iload(4).iconst(1001).imul().iadd()
            .invokeStatic("LibMath.isqrt").iadd().istore(1);
        m.iload(1)
            .iload(4).iconst(360).imul().iconst(48).iadd()
            .iload(4).iconst(7).imul().iconst(9).iadd()
            .invokeStatic("LibMath.gcd").ixor().istore(1);
        m.iinc(4, 1);
        m.gotoL(ml);
        m.bind(mdone);
        m.iload(1).iconst(-100).iconst(100)
            .invokeStatic("LibMath.clamp").istore(1);
        // Formatting round-trip.
        m.iconst(12).newArray(ArrayKind::Char).astore(3);
        m.iload(0).iconst(65535).iand().aload(3)
            .invokeStatic("LibFmt.itoa").istore(5);
        m.iload(1).aload(3).invokeStatic("LibFmt.hash").iadd()
            .istore(1);
        m.iload(1)
            .aload(3).aload(3).invokeStatic("LibFmt.eq")
            .iadd().istore(1);
        // String utilities over the config literal.
        m.ldcStr("bootstrap classpath scan").astore(3);
        m.iload(1)
            .aload(3).iconst('p').invokeStatic("LibStr.indexOf")
            .iadd().istore(1);
        m.iload(1).aload(3).invokeStatic("LibStr.trim").iadd()
            .istore(1);
        m.iload(1).aload(3).invokeStatic("LibStr.toUpper").iadd()
            .istore(1);
        // Vector init (class-registry-like bookkeeping).
        m.newObject("LibVec").astore(2);
        m.aload(2).iconst(20).invokeSpecial("LibVec.init");
        m.iconst(0).istore(4);
        Label vl = m.newLabel(), vdone = m.newLabel();
        m.bind(vl);
        m.iload(4).iconst(16).ifIcmpge(vdone);
        m.aload(2).iload(4).iconst(37).imul().iconst(11).iadd()
            .invokeVirtual("LibVec.push");
        m.iinc(4, 1);
        m.gotoL(vl);
        m.bind(vdone);
        m.aload(2).invokeVirtual("LibVec.reverse");
        m.iload(1).aload(2).invokeVirtual("LibVec.sum").ixor()
            .istore(1);
        // Synchronized log traffic.
        m.newObject("LibLog").astore(2);
        m.aload(2).iconst(64).invokeSpecial("LibLog.init");
        m.iconst(0).istore(4);
        Label ll = m.newLabel(), ldone = m.newLabel();
        m.bind(ll);
        m.iload(4).iconst(24).ifIcmpge(ldone);
        m.aload(2).iload(4).iconst('a').iadd()
            .invokeVirtual("LibLog.append");
        m.iinc(4, 1);
        m.gotoL(ll);
        m.bind(ldone);
        m.iload(1).aload(2).invokeVirtual("LibLog.size").iadd()
            .istore(1);
        m.getStaticA("lib$log");
        m.pop();
        m.aload(2).putStaticA("lib$log");
        m.iload(1).ireturn();
    }
}

Program
finishWithBoot(ProgramBuilder &pb, const char *run_method)
{
    addStartupLibrary(pb);
    ClassBuilder &boot = pb.cls("Boot");
    MethodBuilder &m =
        boot.staticMethod("main", {VType::Int}, VType::Int);
    m.locals(3);  // 0 arg, 1 libCk, 2 runCk
    m.iload(0).invokeStatic("Lib.boot").istore(1);
    m.iload(0).invokeStatic(run_method).istore(2);
    m.iload(2).iconst(31).imul().iload(1).ixor().ireturn();
    return pb.finish("Boot.main");
}

} // namespace jrs
