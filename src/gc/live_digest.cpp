#include "gc/live_digest.h"

#include <unordered_map>

#include "gc/heap_walk.h"
#include "gc/roots.h"

namespace jrs::gc {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

class DigestWalker : public RootVisitor {
  public:
    DigestWalker(Heap &heap, ClassRegistry &registry)
        : heap_(heap), registry_(registry) {}

    SimAddr visitRoot(SimAddr ref, RootKind kind) override {
        mixByte(static_cast<std::uint8_t>(kind));
        mix32(indexOf(ref));
        return ref;
    }

    /** BFS over everything reached from the roots seen so far. */
    void drain() {
        while (scan_ < order_.size())
            hashObject(order_[scan_++]);
    }

    std::uint64_t hash() const { return hash_; }

  private:
    void mixByte(std::uint8_t b) {
        hash_ = (hash_ ^ b) * kFnvPrime;
    }
    void mix32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            mixByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** First-visit index of @p obj (1-based; assigns + enqueues). */
    std::uint32_t indexOf(SimAddr obj) {
        auto [it, fresh] = index_.emplace(
            obj, static_cast<std::uint32_t>(order_.size() + 1));
        if (fresh)
            order_.push_back(obj);
        return it->second;
    }

    /** Hash one slot: visit index for a real ref, raw bits otherwise. */
    void mixSlot(std::uint32_t bits, bool is_ref) {
        const SimAddr child = refFromSlot(bits);
        if (is_ref && bits != 0 && heap_.validRef(child)) {
            mixByte(1);
            mix32(indexOf(child));
        } else {
            mixByte(0);
            mix32(bits);
        }
    }

    void hashObject(SimAddr obj) {
        const bool isArray = heap_.isArray(obj);
        mixByte(isArray ? 1 : 0);
        if (isArray) {
            const ArrayKind kind = heap_.arrayKindOf(obj);
            const std::int32_t len = heap_.arrayLength(obj);
            mixByte(static_cast<std::uint8_t>(kind));
            mix32(static_cast<std::uint32_t>(len));
            const std::size_t esz = arrayElemSize(kind);
            if (kind == ArrayKind::Ref) {
                for (std::int32_t i = 0; i < len; ++i)
                    mixSlot(heap_.loadU32(obj + 12 + 4ull * i), true);
            } else {
                // Exact payload bytes (padding stays out of the hash).
                const std::size_t n = len * esz;
                for (std::size_t o = 0; o < n; ++o)
                    mixByte(heap_.loadU8(obj + 12 + o));
            }
            return;
        }
        const ClassId cls = heap_.klassOf(obj);
        mix32(cls);
        const std::uint16_t fields = cls < registry_.numClasses()
            ? registry_.klass(cls).numFields
            : 0;
        for (std::uint16_t i = 0; i < fields; ++i) {
            const SimAddr slot = Heap::fieldAddr(obj, i);
            mixSlot(heap_.loadU32(slot), heap_.refSlot(slot));
        }
    }

    Heap &heap_;
    ClassRegistry &registry_;
    std::uint64_t hash_ = kFnvOffset;
    std::unordered_map<SimAddr, std::uint32_t> index_;
    std::vector<SimAddr> order_;
    std::size_t scan_ = 0;
};

} // namespace

std::uint64_t
liveHeapHash(Heap &heap, ClassRegistry &registry,
             std::vector<std::unique_ptr<VmThread>> &threads)
{
    DigestWalker walker(heap, registry);
    enumerateRoots(RootSources{registry, threads}, walker);
    walker.drain();
    return walker.hash();
}

} // namespace jrs::gc
