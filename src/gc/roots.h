/**
 * @file
 * Precise root enumeration for the pluggable collectors.
 *
 * Roots are every VM-held slot that can name a heap object:
 *
 *  - class registry: static variables (tagged Values), interned string
 *    literals, per-class "class objects";
 *  - interpreter frames: tagged locals and operand-stack slots, plus
 *    the synchronized-method monitor object;
 *  - native (JIT) frames: registers and spill slots whose ref bits are
 *    set (NativeFrame::refMask / spillRefs — maintained by the
 *    executor, since native registers are untyped u64s), plus the
 *    monitor object;
 *  - per-thread pending exception refs during unwinding.
 *
 * Lockwords are deliberately NOT roots: they hold thin-lock owner/count
 * bits whose numeric value can collide with a valid ref encoding (the
 * test suite's "ref-in-lockword" negative case pins this down).
 *
 * The visitor returns the (possibly relocated) address for every root
 * it is shown; enumerateRoots() writes that address back into the
 * slot, which is all a moving collector needs to retarget the roots.
 */
#ifndef JRS_GC_ROOTS_H
#define JRS_GC_ROOTS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "vm/runtime/class_registry.h"
#include "vm/runtime/thread.h"

namespace jrs::gc {

/** What kind of slot a root was found in (stats, tests, reports). */
enum class RootKind : std::uint8_t {
    Static,
    StringLiteral,
    ClassObject,
    InterpLocal,
    InterpStack,
    NativeReg,
    NativeSpill,
    SyncObject,
    PendingException,
};

/** Printable name of a RootKind. */
const char *rootKindName(RootKind kind);

/** Callback protocol of enumerateRoots(); see file comment. */
class RootVisitor {
  public:
    virtual ~RootVisitor() = default;

    /**
     * Shown one non-null root @p ref of kind @p kind. Returns the
     * address the slot must hold afterwards (the same address for
     * non-moving collectors, the forwarded one for copying).
     */
    virtual SimAddr visitRoot(SimAddr ref, RootKind kind) = 0;
};

/** Everything enumerateRoots() walks. */
struct RootSources {
    ClassRegistry &registry;
    std::vector<std::unique_ptr<VmThread>> &threads;
};

/**
 * Visit every root slot (null slots are skipped) and write the
 * visitor's returned address back. Deterministic order: registry
 * statics, string literals, class objects, then threads in tid order,
 * frames outermost-first, slots in index order.
 */
void enumerateRoots(RootSources sources, RootVisitor &visitor);

} // namespace jrs::gc

#endif // JRS_GC_ROOTS_H
