#include "gc/copying.h"

#include <unordered_map>

#include "gc/heap_walk.h"

namespace jrs::gc {

namespace {

/** Forwarding table: from-space offset -> to-space offset. */
using ForwardMap = std::unordered_map<std::uint32_t, std::uint32_t>;

} // namespace

void
CopyingCollector::collect(GcContext &ctx, GcStats &stats)
{
    Heap &heap = ctx.heap;
    ctx.control(kGcPc + 0x40, NKind::Call, kGcPc + 0x44);

    const unsigned to = 1 - active_;
    const std::size_t toBase = spaceBase(to);
    std::size_t toCursor = toBase;
    ForwardMap fwd;
    std::uint64_t roots = 0;

    // Evacuate one object (or return its existing forwarded address).
    auto forward = [&](SimAddr obj) -> SimAddr {
        const auto fromOff = static_cast<std::uint32_t>(obj - seg::kHeap);
        ctx.branch(kGcPc + 0x44, kGcPc + 0x50,
                   fwd.find(fromOff) != fwd.end());
        if (auto it = fwd.find(fromOff); it != fwd.end())
            return seg::kHeap + it->second;
        const std::size_t bytes = objectBytesAt(heap, ctx.registry, obj);
        const auto toOff = static_cast<std::uint32_t>(toCursor);
        heap.rawCopy(toOff, fromOff, bytes);
        for (std::size_t o = 0; o < bytes; o += 4)
            heap.setRefBit(toOff + o, heap.refBitAt(fromOff + o));
        // The copy's memory traffic, 8 bytes per beat.
        for (std::size_t o = 0; o < bytes; o += 8) {
            ctx.load(kGcPc + 0x48, obj + o, 8);
            ctx.store(kGcPc + 0x4c, seg::kHeap + toOff + o, 8);
        }
        fwd.emplace(fromOff, toOff);
        toCursor += bytes;
        stats.bytesCopied += bytes;
        return seg::kHeap + toOff;
    };

    class Visitor : public RootVisitor {
      public:
        Visitor(decltype(forward) &f, std::uint64_t &roots)
            : forward_(f), roots_(roots) {}
        SimAddr visitRoot(SimAddr ref, RootKind) override {
            ++roots_;
            return forward_(ref);
        }

      private:
        decltype(forward) &forward_;
        std::uint64_t &roots_;
    } visitor(forward, roots);

    enumerateRoots(ctx.roots(), visitor);

    // Cheney scan: fix up children of everything already evacuated;
    // forwarding appends survivors past the scan pointer.
    std::size_t scan = toBase;
    std::uint64_t liveObjects = 0;
    while (scan < toCursor) {
        const SimAddr obj = seg::kHeap + scan;
        ctx.load(kGcPc + 0x50, obj);
        ++liveObjects;
        forEachRefSlot(heap, ctx.registry, obj, [&](SimAddr slot) {
            const SimAddr child = refFromSlot(heap.loadU32(slot));
            // Children still point into from-space here.
            const SimAddr moved = forward(child);
            heap.storeSlot(slot,
                           static_cast<std::uint32_t>(moved
                                                      - seg::kHeap),
                           heap.refSlot(slot));
            ctx.store(kGcPc + 0x54, slot);
        });
        scan += objectBytesAt(heap, ctx.registry, obj);
    }

    ctx.sync.relocate([&](SimAddr obj) -> SimAddr {
        const auto it =
            fwd.find(static_cast<std::uint32_t>(obj - seg::kHeap));
        return it == fwd.end() ? 0 : seg::kHeap + it->second;
    });

    heap.resetWindow(toBase, toCursor, spaceLimit(to));
    active_ = to;

    ctx.control(kGcPc + 0x58, NKind::Ret, 0);

    stats.liveBytesLast = toCursor - toBase;
    stats.liveObjectsLast = liveObjects;
    stats.rootsLast = roots;
}

} // namespace jrs::gc
