/**
 * @file
 * Relocation-independent digest of the reachable heap.
 *
 * Heap::contentHash() hashes the raw arena, so it changes whenever an
 * object moves or a dead block is rewritten as a filler — useless for
 * comparing a copying collector against the no-GC baseline. This
 * digest instead walks only the *live* graph in a deterministic order
 * (statics, string literals, class objects, then threads
 * outermost-frame-first — the gc/roots.h order), assigns each object
 * its first-visit index, and hashes shape + payload with every
 * reference replaced by the referent's visit index. Two heaps with
 * isomorphic live graphs therefore hash identically regardless of
 * where objects sit in the arena.
 *
 * Slot classification matches the collectors exactly (heap ref bitmap
 * for object fields, nonzero bits for Ref-array elements); a null
 * reference hashes the same as raw bits 0. Lockwords are excluded:
 * they hold sync-policy-dependent thin-lock state, and the digest is
 * captured when all frames have unwound so every lock is free anyway.
 */
#ifndef JRS_GC_LIVE_DIGEST_H
#define JRS_GC_LIVE_DIGEST_H

#include <cstdint>
#include <memory>
#include <vector>

#include "vm/runtime/class_registry.h"
#include "vm/runtime/heap.h"
#include "vm/runtime/thread.h"

namespace jrs::gc {

/** See file comment. Deterministic for a given live graph. */
std::uint64_t
liveHeapHash(Heap &heap, ClassRegistry &registry,
             std::vector<std::unique_ptr<VmThread>> &threads);

} // namespace jrs::gc

#endif // JRS_GC_LIVE_DIGEST_H
