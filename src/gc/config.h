/**
 * @file
 * Collector selection and tuning knobs, shared by EngineConfig, the
 * CLIs (jrs_gc / jrs_check / jrs_sweep) and the sweep TraceKey.
 *
 * Kept dependency-free so anything can name a collector without
 * pulling in the collector implementations.
 */
#ifndef JRS_GC_CONFIG_H
#define JRS_GC_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace jrs::gc {

/** Which collector an engine runs (None = the paper's GC-less arena). */
enum class CollectorKind : std::uint8_t {
    None,
    MarkSweep,  ///< non-moving, free-list reallocation
    Copying,    ///< semispace Cheney copy (halves usable heap)
};

/** Canonical CLI / report name: "nogc", "marksweep", "copying". */
inline const char *
collectorName(CollectorKind kind)
{
    switch (kind) {
      case CollectorKind::None:      return "nogc";
      case CollectorKind::MarkSweep: return "marksweep";
      case CollectorKind::Copying:   return "copying";
    }
    return "unknown";
}

/**
 * Parse a collector name ("nogc"/"none", "marksweep", "copying").
 * @return false on an unknown name (callers report a clean usage
 *         error — never a throw, see jrs_gc/jrs_check/jrs_sweep).
 */
inline bool
parseCollector(const std::string &name, CollectorKind *out)
{
    if (name == "nogc" || name == "none") {
        *out = CollectorKind::None;
        return true;
    }
    if (name == "marksweep") {
        *out = CollectorKind::MarkSweep;
        return true;
    }
    if (name == "copying") {
        *out = CollectorKind::Copying;
        return true;
    }
    return false;
}

/** Every collector kind, including None (CLI "--collector all"). */
inline std::vector<CollectorKind>
allCollectorKinds()
{
    return {CollectorKind::None, CollectorKind::MarkSweep,
            CollectorKind::Copying};
}

/** Safepoint/trigger tuning carried by EngineConfig. */
struct GcOptions {
    CollectorKind collector = CollectorKind::None;
    /**
     * Collect once this many bytes have been allocated since the last
     * collection. 0 = collect only when an allocation cannot be
     * satisfied.
     */
    std::uint64_t budgetBytes = 0;
    /**
     * Collect every N allocation requests (stress testing; exercises
     * safepoints far more often than any budget would). 0 = off.
     */
    std::uint64_t everyNAllocs = 0;
};

} // namespace jrs::gc

#endif // JRS_GC_CONFIG_H
