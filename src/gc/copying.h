/**
 * @file
 * Semispace copying collector (Cheney scan).
 *
 * The arena is split in half; the mutator bump-allocates in one space
 * and each collection evacuates survivors contiguously into the other,
 * then flips the heap's allocation window. Forwarding is kept in a
 * C++-side map (from-offset -> to-offset) so object lockwords — which
 * carry live thin-lock state — move with the object bytes instead of
 * being clobbered by forwarding pointers.
 *
 * Addresses change on every collection, so raw arena hashes are
 * meaningless here; equivalence with the other collectors is
 * established through the relocation-independent live digest
 * (gc/live_digest.h).
 */
#ifndef JRS_GC_COPYING_H
#define JRS_GC_COPYING_H

#include "gc/collector.h"

namespace jrs::gc {

/** See file comment. */
class CopyingCollector : public Collector {
  public:
    /**
     * @param capacity Heap capacity; each semispace is half of it.
     * The engine must restrict the heap's allocation window to the
     * first space before the first mutator allocation (spaceLimit()).
     */
    explicit CopyingCollector(std::size_t capacity)
        : half_(capacity / 2) {}

    const char *name() const override { return "copying"; }
    void collect(GcContext &ctx, GcStats &stats) override;

    /** Allocation limit of space @p index (0 or 1). */
    std::size_t spaceLimit(unsigned index) const {
        return half_ * (index + 1);
    }

    /** First usable offset of space @p index. */
    std::size_t spaceBase(unsigned index) const {
        return half_ * index + 16;
    }

    /** Index of the space the mutator currently allocates in. */
    unsigned activeSpace() const { return active_; }

  private:
    std::size_t half_;
    unsigned active_ = 0;
};

} // namespace jrs::gc

#endif // JRS_GC_COPYING_H
