#include "gc/roots.h"

namespace jrs::gc {

const char *
rootKindName(RootKind kind)
{
    switch (kind) {
      case RootKind::Static:           return "static";
      case RootKind::StringLiteral:    return "string_literal";
      case RootKind::ClassObject:      return "class_object";
      case RootKind::InterpLocal:      return "interp_local";
      case RootKind::InterpStack:      return "interp_stack";
      case RootKind::NativeReg:        return "native_reg";
      case RootKind::NativeSpill:      return "native_spill";
      case RootKind::SyncObject:       return "sync_object";
      case RootKind::PendingException: return "pending_exception";
    }
    return "unknown";
}

namespace {

void
visitAddrSlot(SimAddr &slot, RootKind kind, RootVisitor &visitor)
{
    if (slot != 0)
        slot = visitor.visitRoot(slot, kind);
}

void
visitValueSlot(Value &slot, RootKind kind, RootVisitor &visitor)
{
    if (slot.tag() == Tag::Ref && !slot.isNullRef())
        slot = Value::makeRef(visitor.visitRoot(slot.asRef(), kind));
}

void
visitFrame(InterpFrame &f, RootVisitor &visitor)
{
    for (Value &v : f.locals)
        visitValueSlot(v, RootKind::InterpLocal, visitor);
    for (Value &v : f.stack)
        visitValueSlot(v, RootKind::InterpStack, visitor);
    visitAddrSlot(f.syncObj, RootKind::SyncObject, visitor);
}

void
visitFrame(NativeFrame &f, RootVisitor &visitor)
{
    for (std::uint8_t r = 0; r < 32; ++r) {
        if (f.regIsRef(r) && f.regs[r] != 0) {
            f.regs[r] = visitor.visitRoot(f.regs[r],
                                          RootKind::NativeReg);
        }
    }
    for (std::size_t i = 0; i < f.spills.size(); ++i) {
        if (i < f.spillRefs.size() && f.spillRefs[i]
            && f.spills[i] != 0) {
            f.spills[i] = visitor.visitRoot(f.spills[i],
                                            RootKind::NativeSpill);
        }
    }
    visitAddrSlot(f.syncObj, RootKind::SyncObject, visitor);
}

} // namespace

void
enumerateRoots(RootSources sources, RootVisitor &visitor)
{
    for (Value &v : sources.registry.gcStatics())
        visitValueSlot(v, RootKind::Static, visitor);
    for (SimAddr &s : sources.registry.gcStringRefs())
        visitAddrSlot(s, RootKind::StringLiteral, visitor);
    for (SimAddr &c : sources.registry.gcClassObjects())
        visitAddrSlot(c, RootKind::ClassObject, visitor);

    for (const std::unique_ptr<VmThread> &tp : sources.threads) {
        VmThread &t = *tp;
        visitAddrSlot(t.pendingException, RootKind::PendingException,
                      visitor);
        for (Activation &a : t.frames) {
            if (auto *f = std::get_if<InterpFrame>(&a))
                visitFrame(*f, visitor);
            else
                visitFrame(std::get<NativeFrame>(a), visitor);
        }
    }
}

} // namespace jrs::gc
