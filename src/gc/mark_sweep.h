/**
 * @file
 * Non-moving mark-sweep collector with free-list reallocation.
 *
 * Mark: precise roots (gc/roots.h) seed an explicit worklist; tracing
 * follows the heap's ref bitmap (object fields) and Ref-array elements
 * (gc/heap_walk.h). Sweep: one linear walk of the active window
 * derives every block's size from its header, coalesces unmarked runs
 * and hands them to Heap::setFreeBlocks, which rewrites them as
 * walkable fillers for the next sweep.
 *
 * Because nothing moves, every surviving object keeps its address and
 * contents: the end-state live digest is bit-identical to the no-GC
 * baseline for every workload (asserted by tests/test_gc.cpp).
 */
#ifndef JRS_GC_MARK_SWEEP_H
#define JRS_GC_MARK_SWEEP_H

#include "gc/collector.h"

namespace jrs::gc {

/** See file comment. */
class MarkSweepCollector : public Collector {
  public:
    const char *name() const override { return "marksweep"; }
    void collect(GcContext &ctx, GcStats &stats) override;
};

} // namespace jrs::gc

#endif // JRS_GC_MARK_SWEEP_H
