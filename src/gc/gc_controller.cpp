#include "gc/gc_controller.h"

#include "gc/copying.h"
#include "gc/mark_sweep.h"
#include "obs/obs.h"

namespace jrs::gc {

GcController::GcController(
    const GcOptions &options, Heap &heap, ClassRegistry &registry,
    std::vector<std::unique_ptr<VmThread>> &threads,
    SyncSystem &sync, TraceEmitter &emitter)
    : options_(options), heap_(heap), registry_(registry),
      threads_(threads), sync_(sync), emitter_(emitter)
{
    switch (options_.collector) {
    case CollectorKind::MarkSweep:
        collector_ = std::make_unique<MarkSweepCollector>();
        break;
    case CollectorKind::Copying: {
        auto copying = std::make_unique<CopyingCollector>(
            heap_.capacity());
        if (heap_.windowCursor() > copying->spaceLimit(0))
            throw VmError("heap too small for semispace collection");
        heap_.resetWindow(copying->spaceBase(0), heap_.windowCursor(),
                          copying->spaceLimit(0));
        collector_ = std::move(copying);
        break;
    }
    case CollectorKind::None:
        throw VmError("GcController constructed without a collector");
    }
    bytesAtLastGc_ = heap_.bytesAllocated();
}

void
GcController::beforeAllocation(std::size_t bytes)
{
    ++allocsSinceGc_;
    bool trigger = false;
    if (options_.everyNAllocs != 0
        && allocsSinceGc_ >= options_.everyNAllocs)
        trigger = true;
    if (options_.budgetBytes != 0
        && heap_.bytesAllocated() - bytesAtLastGc_
               >= options_.budgetBytes)
        trigger = true;
    if (!heap_.canAllocate(bytes))
        trigger = true;
    if (trigger)
        collectNow();
    // If the heap is still too full the allocation itself throws
    // "heap exhausted" — a genuine out-of-memory condition.
}

void
GcController::collectNow()
{
    obs::ScopedSpan span("gc.collect", "gc");
    GcContext ctx{heap_, registry_, threads_, sync_, emitter_};
    collector_->collect(ctx, stats_);
    ++stats_.collections;
    stats_.gcEvents += ctx.events;
    stats_.pauseEvents.push_back(ctx.events);
    allocsSinceGc_ = 0;
    bytesAtLastGc_ = heap_.bytesAllocated();

    obs::count("gc.collections");
    obs::count("gc.events", ctx.events);
    obs::observe("gc.pause_events",
                 static_cast<double>(ctx.events));
    obs::gaugeSet("gc.live_bytes",
                  static_cast<double>(stats_.liveBytesLast));
    if (span.active()) {
        span.arg("collector", collector_->name());
        span.arg("pause_events", std::to_string(ctx.events));
        span.arg("live_bytes",
                 std::to_string(stats_.liveBytesLast));
    }
}

} // namespace jrs::gc
