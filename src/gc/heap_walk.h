/**
 * @file
 * Header-driven object walking shared by the collectors and the live
 * digest.
 *
 * Object sizes are derivable from headers alone: arrays carry their
 * length, plain objects get their field count from the class registry
 * (ids at or above the registered classes — builtin exceptions and the
 * GC filler — have zero fields, mirroring RuntimeSupport::newObject's
 * clamp). Freed runs are rewritten as filler pseudo-objects by
 * Heap::setFreeBlocks, so a linear walk from the window base always
 * parses.
 *
 * Reference discovery is hybrid: object fields are untyped, so they
 * use the heap's store-time ref bitmap; Ref-kind array elements are
 * structural (only AAstore / ref arraycopy ever write them).
 */
#ifndef JRS_GC_HEAP_WALK_H
#define JRS_GC_HEAP_WALK_H

#include "vm/runtime/class_registry.h"
#include "vm/runtime/heap.h"

namespace jrs::gc {

/** Aligned allocation size of the object at @p obj, in bytes. */
inline std::size_t
objectBytesAt(const Heap &heap, const ClassRegistry &registry,
              SimAddr obj)
{
    std::size_t bytes;
    if (heap.isArray(obj)) {
        bytes = 12
            + static_cast<std::size_t>(heap.arrayLength(obj))
            * arrayElemSize(heap.arrayKindOf(obj));
    } else {
        const ClassId cls = heap.klassOf(obj);
        const std::uint16_t fields = cls < registry.numClasses()
            ? registry.klass(cls).numFields
            : 0;
        bytes = 8 + 4u * fields;
    }
    return (bytes + 7) & ~std::size_t{7};
}

/**
 * Invoke @p fn(slotAddr) for every payload slot of @p obj that
 * currently holds a non-null reference (see file comment for the
 * classification). Slots are visited in index order.
 */
template <class Fn>
void
forEachRefSlot(const Heap &heap, const ClassRegistry &registry,
               SimAddr obj, Fn &&fn)
{
    if (heap.isArray(obj)) {
        if (heap.arrayKindOf(obj) != ArrayKind::Ref)
            return;
        const std::int32_t len = heap.arrayLength(obj);
        for (std::int32_t i = 0; i < len; ++i) {
            const SimAddr slot = obj + 12 + 4ull * i;
            if (heap.loadU32(slot) != 0)
                fn(slot);
        }
        return;
    }
    const ClassId cls = heap.klassOf(obj);
    const std::uint16_t fields = cls < registry.numClasses()
        ? registry.klass(cls).numFields
        : 0;
    for (std::uint16_t i = 0; i < fields; ++i) {
        const SimAddr slot = Heap::fieldAddr(obj, i);
        if (heap.refSlot(slot) && heap.loadU32(slot) != 0)
            fn(slot);
    }
}

/** Decode a 4-byte heap slot into a full ref address (0 = null). */
inline SimAddr
refFromSlot(std::uint32_t bits)
{
    return bits == 0 ? 0 : seg::kHeap + bits;
}

} // namespace jrs::gc

#endif // JRS_GC_HEAP_WALK_H
