/**
 * @file
 * The pluggable collector interface.
 *
 * A Collector performs exactly one stop-the-world collection per
 * collect() call, at a safepoint the GcController establishes (only
 * inside RuntimeSupport allocation entry points, where no C++ code
 * holds an unrooted reference across the call — see DESIGN.md §9).
 *
 * Collectors emit their memory traffic as Phase::Gc trace events
 * through GcContext, so the architecture models and obs::PerfAttribution
 * see collector work exactly as they see mutator work.
 */
#ifndef JRS_GC_COLLECTOR_H
#define JRS_GC_COLLECTOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "gc/roots.h"
#include "isa/emitter.h"
#include "vm/runtime/heap.h"
#include "vm/sync/sync_system.h"

namespace jrs::gc {

/** Simulated pc block of the collector's emitted instructions. */
inline constexpr SimAddr kGcPc = seg::kRuntimeCode + 0x800;

/** Accumulated collection statistics (one controller lifetime). */
struct GcStats {
    std::uint64_t collections = 0;
    std::uint64_t bytesFreed = 0;      ///< mark-sweep reclaim total
    std::uint64_t bytesCopied = 0;     ///< copying survivor total
    std::uint64_t liveBytesLast = 0;   ///< live bytes after last GC
    std::uint64_t liveObjectsLast = 0; ///< live objects after last GC
    std::uint64_t rootsLast = 0;       ///< roots visited by last GC
    std::uint64_t gcEvents = 0;        ///< Phase::Gc instructions emitted
    /** Per-collection pause length in emitted Gc instructions. */
    std::vector<std::uint64_t> pauseEvents;
};

/**
 * Everything a collection may touch, plus counted Phase::Gc event
 * emission (the counts feed the pause histogram and gc.* metrics).
 */
struct GcContext {
    Heap &heap;
    ClassRegistry &registry;
    std::vector<std::unique_ptr<VmThread>> &threads;
    SyncSystem &sync;
    TraceEmitter &emitter;
    std::uint64_t events = 0;

    void alu(SimAddr pc, NKind kind = NKind::IntAlu) {
        emitter.alu(Phase::Gc, pc, kind);
        ++events;
    }
    void load(SimAddr pc, SimAddr addr, std::uint8_t size = 4) {
        emitter.load(Phase::Gc, pc, addr, size);
        ++events;
    }
    void store(SimAddr pc, SimAddr addr, std::uint8_t size = 4) {
        emitter.store(Phase::Gc, pc, addr, size);
        ++events;
    }
    void branch(SimAddr pc, SimAddr target, bool taken) {
        emitter.branch(Phase::Gc, pc, target, taken);
        ++events;
    }
    void control(SimAddr pc, NKind kind, SimAddr target) {
        emitter.control(Phase::Gc, pc, kind, target);
        ++events;
    }

    RootSources roots() { return RootSources{registry, threads}; }
};

/** One garbage-collection strategy. */
class Collector {
  public:
    virtual ~Collector() = default;

    /** Strategy name for reports ("marksweep", "copying"). */
    virtual const char *name() const = 0;

    /** Run one stop-the-world collection; updates @p stats. */
    virtual void collect(GcContext &ctx, GcStats &stats) = 0;
};

} // namespace jrs::gc

#endif // JRS_GC_COLLECTOR_H
