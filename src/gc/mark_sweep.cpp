#include "gc/mark_sweep.h"

#include <unordered_set>

#include "gc/heap_walk.h"

namespace jrs::gc {

namespace {

/** Marking visitor: record reachability, never move anything. */
class Marker : public RootVisitor {
  public:
    Marker(GcContext &ctx) : ctx_(ctx) {}

    SimAddr visitRoot(SimAddr ref, RootKind) override {
        ++roots_;
        // Root scan: one load per root slot's referent header.
        ctx_.load(kGcPc + 0x00, ref);
        push(ref);
        return ref;
    }

    /** Trace until the worklist drains. */
    void drain() {
        while (!worklist_.empty()) {
            const SimAddr obj = worklist_.back();
            worklist_.pop_back();
            scan(obj);
        }
    }

    bool marked(SimAddr obj) const {
        return marked_.count(offsetOf(obj)) != 0;
    }

    std::uint64_t roots() const { return roots_; }
    std::uint64_t liveObjects() const { return marked_.size(); }

  private:
    static std::uint32_t offsetOf(SimAddr obj) {
        return static_cast<std::uint32_t>(obj - seg::kHeap);
    }

    void push(SimAddr obj) {
        // Mark test models as a load of the mark word + branch.
        ctx_.branch(kGcPc + 0x04, kGcPc + 0x10,
                    marked_.count(offsetOf(obj)) != 0);
        if (marked_.insert(offsetOf(obj)).second)
            worklist_.push_back(obj);
    }

    void scan(SimAddr obj) {
        // Header load drives the size/shape decode.
        ctx_.load(kGcPc + 0x10, obj);
        forEachRefSlot(ctx_.heap, ctx_.registry, obj,
                       [&](SimAddr slot) {
                           ctx_.load(kGcPc + 0x14, slot);
                           const SimAddr child =
                               refFromSlot(ctx_.heap.loadU32(slot));
                           if (ctx_.heap.validRef(child))
                               push(child);
                       });
    }

    GcContext &ctx_;
    std::unordered_set<std::uint32_t> marked_;
    std::vector<SimAddr> worklist_;
    std::uint64_t roots_ = 0;
};

} // namespace

void
MarkSweepCollector::collect(GcContext &ctx, GcStats &stats)
{
    Heap &heap = ctx.heap;
    ctx.control(kGcPc, NKind::Call, kGcPc + 4);

    Marker marker(ctx);
    enumerateRoots(ctx.roots(), marker);
    marker.drain();

    // Linear sweep of the active window: coalesce unmarked runs.
    std::vector<Heap::FreeBlock> freed;
    std::uint64_t freedBytes = 0;
    std::uint64_t liveBytes = 0;
    std::size_t runStart = 0;
    std::size_t runBytes = 0;
    std::size_t off = heap.windowBase();
    const std::size_t end = heap.windowCursor();
    while (off < end) {
        const SimAddr obj = seg::kHeap + off;
        ctx.load(kGcPc + 0x20, obj);  // header load sizes the block
        const std::size_t bytes = objectBytesAt(heap, ctx.registry, obj);
        const bool live = marker.marked(obj);
        ctx.branch(kGcPc + 0x24, kGcPc + 0x30, live);
        if (live) {
            liveBytes += bytes;
            if (runBytes != 0) {
                freed.push_back(
                    {static_cast<std::uint32_t>(runStart),
                     static_cast<std::uint32_t>(runBytes)});
                runBytes = 0;
            }
        } else {
            if (runBytes == 0)
                runStart = off;
            runBytes += bytes;
            freedBytes += bytes;
        }
        off += bytes;
    }
    if (runBytes != 0) {
        freed.push_back({static_cast<std::uint32_t>(runStart),
                         static_cast<std::uint32_t>(runBytes)});
    }

    // The filler headers Heap writes are the sweep's visible stores.
    for (const Heap::FreeBlock &b : freed)
        ctx.store(kGcPc + 0x30, seg::kHeap + b.off, 8);
    heap.setFreeBlocks(std::move(freed));

    // Drop monitors of dead objects; addresses do not change.
    ctx.sync.relocate([&](SimAddr obj) -> SimAddr {
        return marker.marked(obj) ? obj : 0;
    });

    ctx.control(kGcPc + 0x34, NKind::Ret, 0);

    stats.bytesFreed += freedBytes;
    stats.liveBytesLast = liveBytes;
    stats.liveObjectsLast = marker.liveObjects();
    stats.rootsLast = marker.roots();
}

} // namespace jrs::gc
