/**
 * @file
 * Allocation-triggered safepoints and collection policy.
 *
 * The controller owns the configured Collector and decides *when* it
 * runs. The only safepoints are the RuntimeSupport allocation entry
 * points (newObject / newArray / throwBuiltin), which call
 * beforeAllocation() with the upcoming request size; a collection
 * triggers when
 *
 *  - the allocation cannot be satisfied from the current window or
 *    free list (the backstop — without it the heap just throws), or
 *  - GcOptions::budgetBytes of new allocation accrued since the last
 *    collection (the tunable heap budget the sweeps grid over), or
 *  - GcOptions::everyNAllocs allocations happened since the last
 *    collection (deterministic stress knob for the test suite).
 *
 * Pause "time" is measured in emitted Phase::Gc instructions — the
 * same currency the architecture models consume — and recorded per
 * collection (GcStats::pauseEvents) plus into gc.* obs metrics.
 */
#ifndef JRS_GC_GC_CONTROLLER_H
#define JRS_GC_GC_CONTROLLER_H

#include <memory>

#include "gc/collector.h"
#include "gc/config.h"

namespace jrs::gc {

/** See file comment. Constructed only when a collector is selected. */
class GcController {
  public:
    /**
     * Binds the collector to the mutator state it will scan. For the
     * copying collector this also restricts the heap's allocation
     * window to the first semispace, so everything already interned
     * by the registry must fit there (throws VmError otherwise).
     */
    GcController(const GcOptions &options, Heap &heap,
                 ClassRegistry &registry,
                 std::vector<std::unique_ptr<VmThread>> &threads,
                 SyncSystem &sync, TraceEmitter &emitter);

    /**
     * Safepoint: the mutator is about to allocate @p bytes (aligned
     * size not required; used only for the can't-satisfy backstop).
     * Runs a collection if any trigger fires.
     */
    void beforeAllocation(std::size_t bytes);

    /** Force one collection now (tests, jrs_gc compare). */
    void collectNow();

    CollectorKind kind() const { return options_.collector; }
    const char *collectorName() const { return collector_->name(); }
    const GcStats &stats() const { return stats_; }

  private:
    GcOptions options_;
    Heap &heap_;
    ClassRegistry &registry_;
    std::vector<std::unique_ptr<VmThread>> &threads_;
    SyncSystem &sync_;
    TraceEmitter &emitter_;
    std::unique_ptr<Collector> collector_;
    GcStats stats_;
    std::uint64_t allocsSinceGc_ = 0;
    std::uint64_t bytesAtLastGc_ = 0;
};

} // namespace jrs::gc

#endif // JRS_GC_GC_CONTROLLER_H
