/**
 * @file
 * Reference data points reported by the paper, for side-by-side
 * comparison in bench output and EXPERIMENTS.md.
 *
 * These numbers are transcribed (and, where the figures are plots,
 * read off the plots approximately) from Radhakrishnan et al.,
 * "Architectural Issues in Java Runtime Systems", HPCA 2000. They
 * describe the authors' UltraSPARC/Shade measurements and are printed
 * purely as the "paper reported" column — our simulator is not
 * expected to match them absolutely, only to reproduce the shapes.
 */
#ifndef JRS_HARNESS_PAPER_DATA_H
#define JRS_HARNESS_PAPER_DATA_H

namespace jrs::paper {

/** Figure 4: average L1 miss rates (percent) per workload family. */
struct MissRateRef {
    const char *family;
    double icachePct;
    double dcachePct;
};

/** Paper Figure 4 reference series (approximate plot reads). */
inline constexpr MissRateRef kFig4Reference[] = {
    {"SPECint (C)", 1.5, 2.8},
    {"C++ suite", 2.1, 3.0},
    {"Java interp (paper)", 0.1, 1.2},
    {"Java JIT (paper)", 1.2, 4.5},
};

/** Section 3: best-case savings from the opt oracle (percent). */
inline constexpr double kOracleSavingsLowPct = 10.0;
inline constexpr double kOracleSavingsHighPct = 15.0;

/** Table 1: JIT memory overhead over interpreter (percent). */
inline constexpr double kJitMemOverheadLowPct = 10.0;
inline constexpr double kJitMemOverheadHighPct = 33.0;

/** Table 2: GShare accuracy ranges (percent correct). */
inline constexpr double kGshareInterpAccLow = 65.0;
inline constexpr double kGshareInterpAccHigh = 87.0;
inline constexpr double kGshareJitAccLow = 80.0;
inline constexpr double kGshareJitAccHigh = 92.0;

/** Section 5: thin-lock speedup over the monitor cache (~2x). */
inline constexpr double kThinLockSpeedup = 2.0;

/** Section 5: share of sync accesses that are case (a) (>80%). */
inline constexpr double kCaseAFractionPct = 80.0;

/** Section 4.3: translate-phase share of D-misses (40-80%),
 *  and write-miss share within translate (~60%). */
inline constexpr double kTranslateDMissShareLow = 40.0;
inline constexpr double kTranslateDMissShareHigh = 80.0;
inline constexpr double kTranslateWriteMissPct = 60.0;

} // namespace jrs::paper

#endif // JRS_HARNESS_PAPER_DATA_H
