#include "harness/experiment.h"

namespace jrs {

RunResult
runWorkload(const RunSpec &spec)
{
    if (spec.workload == nullptr)
        throw VmError("RunSpec without workload");
    const Program prog = spec.workload->build();

    EngineConfig cfg;
    cfg.policy = spec.policy ? spec.policy
                             : std::make_shared<AlwaysCompilePolicy>();
    cfg.syncKind = spec.syncKind;
    cfg.sink = spec.sink;
    cfg.quantum = spec.quantum;
    cfg.gc = spec.gc;
    cfg.heapBytes = spec.heapBytes;
    cfg.codeCache = spec.codeCache;
    cfg.osrBackEdgeThreshold = spec.osrBackEdgeThreshold;
    cfg.sharedCodeCache = spec.sharedCache;
    cfg.sharedProgramKey = spec.workload->name;

    ExecutionEngine engine(prog, cfg);
    const std::int32_t arg =
        spec.arg != 0 ? spec.arg : spec.workload->smallArg;
    RunResult res = engine.run(arg);
    if (!res.completed) {
        throw VmError(std::string(spec.workload->name)
                      + " did not complete: "
                      + (res.uncaughtException != nullptr
                             ? res.uncaughtException
                             : "unknown"));
    }
    return res;
}

RecordedRun
recordWorkload(const RunSpec &spec)
{
    if (spec.workload == nullptr)
        throw VmError("RunSpec without workload");
    auto buffer = std::make_shared<TraceBuffer>();
    MultiSink fanout;
    fanout.add(buffer.get());
    if (spec.sink != nullptr)
        fanout.add(spec.sink);

    // Inlined runWorkload: the engine must stay alive after run() so
    // the method map (registry + code cache ranges) can be captured.
    const Program prog = spec.workload->build();
    EngineConfig cfg;
    cfg.policy = spec.policy ? spec.policy
                             : std::make_shared<AlwaysCompilePolicy>();
    cfg.syncKind = spec.syncKind;
    cfg.sink = &fanout;
    cfg.quantum = spec.quantum;
    cfg.gc = spec.gc;
    cfg.heapBytes = spec.heapBytes;
    cfg.codeCache = spec.codeCache;
    cfg.osrBackEdgeThreshold = spec.osrBackEdgeThreshold;
    cfg.sharedCodeCache = spec.sharedCache;
    cfg.sharedProgramKey = spec.workload->name;
    ExecutionEngine engine(prog, cfg);
    const std::int32_t arg =
        spec.arg != 0 ? spec.arg : spec.workload->smallArg;

    RecordedRun out;
    out.result = engine.run(arg);
    if (!out.result.completed) {
        throw VmError(std::string(spec.workload->name)
                      + " did not complete: "
                      + (out.result.uncaughtException != nullptr
                             ? out.result.uncaughtException
                             : "unknown"));
    }
    out.trace = std::move(buffer);
    out.methods = std::make_shared<obs::MethodMap>(
        obs::MethodMap::forRun(engine.registry(), engine.codeCache()));
    return out;
}

ModePair
runBothModes(const WorkloadInfo &w, std::int32_t arg,
             TraceSink *interp_sink, TraceSink *jit_sink)
{
    ModePair out;
    {
        RunSpec s;
        s.workload = &w;
        s.arg = arg;
        s.policy = std::make_shared<NeverCompilePolicy>();
        s.sink = interp_sink;
        out.interp = runWorkload(s);
    }
    {
        RunSpec s;
        s.workload = &w;
        s.arg = arg;
        s.policy = std::make_shared<AlwaysCompilePolicy>();
        s.sink = jit_sink;
        out.jit = runWorkload(s);
    }
    if (out.interp.exitValue != out.jit.exitValue) {
        throw VmError(std::string(w.name)
                      + ": interp/JIT checksum divergence");
    }
    return out;
}

OracleOutcome
runOracleExperiment(const WorkloadInfo &w, std::int32_t arg,
                    TraceSink *oracle_sink)
{
    OracleOutcome out;
    {
        RunSpec s;
        s.workload = &w;
        s.arg = arg;
        s.policy = std::make_shared<NeverCompilePolicy>();
        out.interpRun = runWorkload(s);
    }
    {
        RunSpec s;
        s.workload = &w;
        s.arg = arg;
        s.policy = std::make_shared<AlwaysCompilePolicy>();
        out.jitRun = runWorkload(s);
    }
    out.decisions = computeOracleDecisions(out.interpRun.profiles,
                                           out.jitRun.profiles);
    auto oracle = std::make_shared<OraclePolicy>(out.decisions);
    out.methodsCompiledByOracle = oracle->numCompiled();
    {
        RunSpec s;
        s.workload = &w;
        s.arg = arg;
        s.policy = oracle;
        s.sink = oracle_sink;
        out.oracleRun = runWorkload(s);
    }
    if (out.oracleRun.exitValue != out.jitRun.exitValue)
        throw VmError(std::string(w.name) + ": oracle run diverged");
    return out;
}

} // namespace jrs
