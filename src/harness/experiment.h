/**
 * @file
 * Experiment harness: one-call execution of (workload, policy, sinks)
 * combinations, plus the paper's three-run oracle procedure.
 *
 * Every bench binary is a thin layer over these helpers: it attaches
 * the architecture models it needs as TraceSinks, runs the suite, and
 * formats the table/figure rows.
 */
#ifndef JRS_HARNESS_EXPERIMENT_H
#define JRS_HARNESS_EXPERIMENT_H

#include <memory>

#include "isa/trace_buffer.h"
#include "obs/attribution.h"
#include "vm/engine/engine.h"
#include "workloads/workload.h"

namespace jrs {

/** What to run and how. */
struct RunSpec {
    const WorkloadInfo *workload = nullptr;
    std::int32_t arg = 0;           ///< 0 = workload's smallArg
    std::shared_ptr<CompilationPolicy> policy;  ///< null = AlwaysCompile
    SyncKind syncKind = SyncKind::ThinLock;
    TraceSink *sink = nullptr;
    std::uint64_t quantum = 300;
    /** Collector configuration (default: the GC-less arena). */
    gc::GcOptions gc;
    /** Heap arena capacity in bytes. */
    std::size_t heapBytes = kDefaultHeapBytes;
    /** Code-cache management (default: unlimited, never evicts). */
    CodeCacheConfig codeCache;
    /** On-stack-replacement back-edge threshold (0 disables). */
    std::uint64_t osrBackEdgeThreshold = 0;
    /**
     * Process-wide shared translation cache (null = private
     * translation). The program key passed to the engine is the
     * workload name, so only same-workload runs share artifacts.
     */
    std::shared_ptr<SharedCodeCache> sharedCache;
};

/**
 * Build the workload's program, run it, and return the result.
 * Throws VmError when the run does not complete cleanly (benches and
 * tests should never tolerate a broken guest program).
 */
RunResult runWorkload(const RunSpec &spec);

/**
 * One completed run captured for offline replay: the VM's RunResult
 * plus the full dynamic native stream. The shared_ptr lets many sweep
 * points (possibly on different threads) consume one recording.
 */
struct RecordedRun {
    RunResult result;
    std::shared_ptr<const TraceBuffer> trace;
    /**
     * Method map of the recorded run (bytecode + generated-code
     * ranges), built before the engine is torn down so offline
     * attribution passes (obs/perf.h) can join the replayed stream
     * with method names. Null for disk-loaded recordings whose
     * sidecar predates the map (see TraceCache).
     */
    std::shared_ptr<const obs::MethodMap> methods;
};

/**
 * Run @p spec once with a TraceBuffer attached (fanned out alongside
 * spec.sink when that is set) and return the result together with the
 * recorded stream. This is the Shade step: record the stream once,
 * then feed it to any number of offline architecture models.
 */
RecordedRun recordWorkload(const RunSpec &spec);

/** Interp + JIT results for one workload (shared arg and sinks). */
struct ModePair {
    RunResult interp;
    RunResult jit;
};

/**
 * Run a workload twice: pure interpretation (optionally observed by
 * @p interp_sink) and compile-everything (@p jit_sink).
 */
ModePair runBothModes(const WorkloadInfo &w, std::int32_t arg,
                      TraceSink *interp_sink, TraceSink *jit_sink);

/** Outcome of the paper's Section 3 oracle experiment. */
struct OracleOutcome {
    RunResult interpRun;   ///< profiling run 1: pure interpretation
    RunResult jitRun;      ///< profiling run 2: compile everything
    RunResult oracleRun;   ///< the "opt" run with per-method decisions
    std::vector<bool> decisions;
    std::size_t methodsCompiledByOracle = 0;
};

/**
 * Execute the three-run oracle procedure on a workload; @p oracle_sink
 * (may be null) observes only the final opt run.
 */
OracleOutcome runOracleExperiment(const WorkloadInfo &w,
                                  std::int32_t arg,
                                  TraceSink *oracle_sink = nullptr);

} // namespace jrs

#endif // JRS_HARNESS_EXPERIMENT_H
