#include "harness/paper_data.h"

// Reference constants are header-only.
