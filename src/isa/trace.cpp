#include "isa/trace.h"

namespace jrs {

const char *
nkindName(NKind kind)
{
    switch (kind) {
      case NKind::IntAlu:       return "int_alu";
      case NKind::IntMul:       return "int_mul";
      case NKind::IntDiv:       return "int_div";
      case NKind::FpAlu:        return "fp_alu";
      case NKind::FpMul:        return "fp_mul";
      case NKind::FpDiv:        return "fp_div";
      case NKind::Load:         return "load";
      case NKind::Store:        return "store";
      case NKind::Branch:       return "branch";
      case NKind::Jump:         return "jump";
      case NKind::IndirectJump: return "indirect_jump";
      case NKind::Call:         return "call";
      case NKind::IndirectCall: return "indirect_call";
      case NKind::Ret:          return "ret";
      case NKind::Nop:          return "nop";
    }
    return "unknown";
}

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Interpret:  return "interpret";
      case Phase::Translate:  return "translate";
      case Phase::NativeExec: return "native_exec";
      case Phase::Runtime:    return "runtime";
      case Phase::Gc:         return "gc";
    }
    return "unknown";
}

} // namespace jrs
