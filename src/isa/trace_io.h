/**
 * @file
 * Binary trace files — the Shade workflow of recording a run once and
 * analyzing it offline, as the paper's tool chain did.
 *
 * Format: a 16-byte header ("JRSTRACE", u32 version, u32 reserved)
 * followed by fixed-width little-endian records:
 *
 *   u64 pc | u64 mem | u64 target | u8 kind | u8 phase | u8 flags
 *   | u8 memSize | u8 rd | u8 rs1 | u8 rs2 | u8 pad        (35 bytes)
 *
 * flags bit 0 = branch taken. The format trades compactness for
 * dead-simple streaming in both directions; a full small-workload
 * interpreter run is a few hundred MB, so callers usually record
 * reduced runs.
 */
#ifndef JRS_ISA_TRACE_IO_H
#define JRS_ISA_TRACE_IO_H

#include <cstdio>
#include <string>

#include "isa/trace.h"

namespace jrs {

/** Magic string at offset 0. */
inline constexpr char kTraceMagic[8] = {'J', 'R', 'S', 'T',
                                        'R', 'A', 'C', 'E'};

/** Current format version. */
inline constexpr std::uint32_t kTraceVersion = 1;

/** Size of one on-disk event record, in bytes. */
inline constexpr std::size_t kTraceRecordBytes = 35;

/** Size of the file header, in bytes. */
inline constexpr std::size_t kTraceHeaderBytes = 16;

/**
 * Encode @p ev into exactly kTraceRecordBytes at @p out. The same
 * packed layout backs trace files and the in-memory TraceBuffer, so a
 * buffer round-trips through disk losslessly by construction.
 */
void encodeTraceRecord(const TraceEvent &ev, std::uint8_t *out);

/** Decode one record previously written by encodeTraceRecord. */
TraceEvent decodeTraceRecord(const std::uint8_t *in);

/** Fill a kTraceHeaderBytes header (magic + current version). */
void encodeTraceHeader(std::uint8_t *out);

/**
 * Validate a header. @return empty string when ok, else a diagnostic
 * ("bad magic" / "unsupported version N").
 */
std::string checkTraceHeader(const std::uint8_t *in);

/** Sink that streams events into a binary trace file. */
class TraceFileWriter : public TraceSink {
  public:
    /** Opens @p path for writing; throws VmError on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void onEvent(const TraceEvent &ev) override;
    void onFinish() override;

    /** Events written so far. */
    std::uint64_t eventsWritten() const { return events_; }

  private:
    std::FILE *file_;
    std::uint64_t events_ = 0;
};

/**
 * Replay a trace file into @p sink (calling onFinish at EOF).
 * @return the number of events replayed. Throws VmError on a missing
 * file, bad magic, or version mismatch.
 */
std::uint64_t replayTraceFile(const std::string &path, TraceSink &sink);

} // namespace jrs

#endif // JRS_ISA_TRACE_IO_H
