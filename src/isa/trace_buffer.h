/**
 * @file
 * In-memory recording of a dynamic native stream.
 *
 * TraceBuffer is the record-once/replay-many primitive behind the
 * sweep engine: a TraceSink that appends every event and replays the
 * stream into any number of downstream sinks, any number of times.
 * Events are stored as raw TraceEvent structs so recording is a copy
 * and replay is a pointer walk — the hot paths of a sweep. The packed
 * JRSTRACE record codec (trace_io.h) is applied only at the disk
 * boundary in save()/load(), and it covers every TraceEvent field, so
 * a buffer round-trips through a file losslessly.
 *
 * Storage is chunked so multi-hundred-MB streams grow without
 * reallocation spikes. A fully recorded buffer is immutable in
 * practice; replay() and at() are const and safe to call concurrently
 * from many threads.
 */
#ifndef JRS_ISA_TRACE_BUFFER_H
#define JRS_ISA_TRACE_BUFFER_H

#include <memory>
#include <string>
#include <vector>

#include "isa/trace_io.h"

namespace jrs {

/** Growable packed event store; see file comment. */
class TraceBuffer : public TraceSink {
  public:
    /** Events per storage chunk (~6 MB each). */
    static constexpr std::size_t kChunkEvents = 128 * 1024;

    TraceBuffer() = default;

    // Chunks are unique_ptrs; moves are cheap, copies are disabled to
    // keep giant streams from being duplicated by accident.
    TraceBuffer(TraceBuffer &&) = default;
    TraceBuffer &operator=(TraceBuffer &&) = default;
    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /** Append one event (TraceSink). */
    void onEvent(const TraceEvent &ev) override;

    /** Number of recorded events. */
    std::uint64_t size() const { return count_; }

    /** True when no events have been recorded. */
    bool empty() const { return count_ == 0; }

    /** Bytes of event storage currently held in memory. */
    std::uint64_t memoryBytes() const {
        return count_ * sizeof(TraceEvent);
    }

    /** Decode event @p index (bounds-checked; throws VmError). */
    TraceEvent at(std::uint64_t index) const;

    /**
     * Deliver every event to @p sink in recorded order, then call
     * onFinish(). @return the number of events delivered.
     */
    std::uint64_t replay(TraceSink &sink) const;

    /** Write the stream as a JRSTRACE file; throws VmError on I/O. */
    void save(const std::string &path) const;

    /**
     * Read a JRSTRACE file recorded by save() (or TraceFileWriter).
     * Throws VmError on missing file, bad magic, or version mismatch.
     */
    static TraceBuffer load(const std::string &path);

    /** Drop all events and storage. */
    void clear();

  private:
    TraceEvent *slotFor(std::uint64_t index);

    std::vector<std::unique_ptr<TraceEvent[]>> chunks_;
    std::uint64_t count_ = 0;
};

} // namespace jrs

#endif // JRS_ISA_TRACE_BUFFER_H
