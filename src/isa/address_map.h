/**
 * @file
 * Simulated virtual address space layout.
 *
 * The trace addresses must be realistic for the cache studies: the
 * interpreter's handler code lives in one compact segment (its working
 * set is the famous ~220-case switch), JIT-generated code is installed
 * method-by-method in a code cache, bytecode and class metadata are
 * *data* to the interpreter and the translator, and Java heap and
 * thread stacks have their own regions. The constants below carve a
 * 64-bit space into disjoint segments.
 */
#ifndef JRS_ISA_ADDRESS_MAP_H
#define JRS_ISA_ADDRESS_MAP_H

#include <cstdint>

namespace jrs {

/** Simulated virtual address. */
using SimAddr = std::uint64_t;

/** Segment base addresses (disjoint 256 MiB regions). */
namespace seg {

/** Interpreter dispatch loop + per-opcode handler bodies. */
inline constexpr SimAddr kInterpCode = 0x1000'0000ull;

/** JIT compiler (translator) code. */
inline constexpr SimAddr kTranslateCode = 0x2000'0000ull;

/** Code cache: JIT-generated native method bodies. */
inline constexpr SimAddr kCodeCache = 0x3000'0000ull;

/** Runtime service routines (allocation, sync, array copy, math). */
inline constexpr SimAddr kRuntimeCode = 0x4000'0000ull;

/** Java heap: objects and arrays. */
inline constexpr SimAddr kHeap = 0x5000'0000ull;

/** Java thread stacks (frames: locals + operand stacks). */
inline constexpr SimAddr kStacks = 0x6000'0000ull;

/** Bytecode streams + constant pools + class metadata (read as data). */
inline constexpr SimAddr kClassData = 0x7000'0000ull;

/** JIT compiler working data (IR buffers, maps). */
inline constexpr SimAddr kTranslateData = 0x8000'0000ull;

/** Runtime data structures (monitor cache, thread tables). */
inline constexpr SimAddr kRuntimeData = 0x9000'0000ull;

/** Size of each segment. */
inline constexpr SimAddr kSegmentSize = 0x1000'0000ull;

} // namespace seg

/**
 * Well-known stub addresses inside the code segments.
 *
 * The VM components brand their trace-visible entry/exit points with
 * fixed synthetic pcs: the interpreter's invoke stubs, the per-method
 * runtime invoke trampolines the JIT calls through, the runtime
 * service routines, and the translator's dispatch/emit/setup loops.
 * The emitting components (interpreter, executor, runtime support,
 * translator) and the consumers that must recognize call targets
 * (jrs::prof's calling-context tree) share one definition so the
 * stream layout cannot silently drift.
 */
namespace stub {

/** Interpreter invoke stub (InvokeStatic/Special Call site pc). */
inline constexpr SimAddr kInvokeStubBase = seg::kInterpCode + 0x800;

/** Per-method invoke trampoline: Call/IndirectCall target. */
inline constexpr SimAddr kMethodStubBase = seg::kRuntimeCode + 0x1000;

/** Bytes between consecutive method trampolines. */
inline constexpr SimAddr kMethodStubStride = 0x40;

/** Trampoline address for method @p id. */
inline constexpr SimAddr methodStubOf(std::uint32_t id) {
    return kMethodStubBase + kMethodStubStride * id;
}

/** True if @p a is a per-method invoke trampoline address. */
inline constexpr bool isMethodStub(SimAddr a) {
    return a >= kMethodStubBase && a < seg::kRuntimeCode + seg::kSegmentSize &&
           (a - kMethodStubBase) % kMethodStubStride == 0;
}

/** MethodId encoded in trampoline address @p a (see isMethodStub). */
inline constexpr std::uint32_t methodIdOfStub(SimAddr a) {
    return static_cast<std::uint32_t>((a - kMethodStubBase) /
                                      kMethodStubStride);
}

/** Runtime allocation routine (objects at +0x0, arrays at +0x40). */
inline constexpr SimAddr kAllocPc = seg::kRuntimeCode + 0x500;

/** Runtime System.arraycopy routine. */
inline constexpr SimAddr kCopyPc = seg::kRuntimeCode + 0x600;

/** Translator bytecode-walk dispatch loop. */
inline constexpr SimAddr kTransDispatch = seg::kTranslateCode;

/** Translator code-emission routines (per-opcode). */
inline constexpr SimAddr kTransEmit = seg::kTranslateCode + 0x400;

/** Translator per-compilation setup/install bracket. */
inline constexpr SimAddr kTransSetup = seg::kTranslateCode + 0x600;

/** Ret pc of the translator's final install return. */
inline constexpr SimAddr kTransInstallRet = kTransSetup + 4;

} // namespace stub

/** True if @p a falls inside the segment starting at @p base. */
inline bool
inSegment(SimAddr a, SimAddr base)
{
    return a >= base && a < base + seg::kSegmentSize;
}

/** Per-thread stack region size (1 MiB each, carved from kStacks). */
inline constexpr SimAddr kThreadStackSize = 0x10'0000ull;

/** Base address of thread @p tid's stack region. */
inline SimAddr
threadStackBase(std::uint32_t tid)
{
    return seg::kStacks + static_cast<SimAddr>(tid) * kThreadStackSize;
}

} // namespace jrs

#endif // JRS_ISA_ADDRESS_MAP_H
