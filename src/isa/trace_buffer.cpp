#include "isa/trace_buffer.h"

#include <cstdio>

#include "vm/runtime/vm_error.h"

namespace jrs {

namespace {

/** Disk-I/O staging: pack/unpack this many records per fwrite/fread. */
constexpr std::size_t kStageEvents = 64 * 1024;

} // namespace

TraceEvent *
TraceBuffer::slotFor(std::uint64_t index)
{
    const std::size_t chunk = index / kChunkEvents;
    if (chunk == chunks_.size()) {
        // for_overwrite: chunks are written before any read, so
        // skipping value-initialization saves a memset per ~6 MB.
        chunks_.push_back(
            std::make_unique_for_overwrite<TraceEvent[]>(kChunkEvents));
    }
    return chunks_[chunk].get() + index % kChunkEvents;
}

void
TraceBuffer::onEvent(const TraceEvent &ev)
{
    *slotFor(count_) = ev;
    ++count_;
}

TraceEvent
TraceBuffer::at(std::uint64_t index) const
{
    if (index >= count_)
        throw VmError("TraceBuffer index out of range");
    return chunks_[index / kChunkEvents][index % kChunkEvents];
}

std::uint64_t
TraceBuffer::replay(TraceSink &sink) const
{
    std::uint64_t remaining = count_;
    for (const auto &chunk : chunks_) {
        const std::uint64_t n =
            remaining < kChunkEvents ? remaining : kChunkEvents;
        const TraceEvent *p = chunk.get();
        for (std::uint64_t i = 0; i < n; ++i)
            sink.onEvent(p[i]);
        remaining -= n;
        if (remaining == 0)
            break;
    }
    sink.onFinish();
    return count_;
}

void
TraceBuffer::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw VmError("cannot open trace file for writing: " + path);
    std::uint8_t header[kTraceHeaderBytes];
    encodeTraceHeader(header);
    bool ok = std::fwrite(header, 1, sizeof(header), f) == sizeof(header);

    const auto stage =
        std::make_unique<std::uint8_t[]>(kStageEvents
                                         * kTraceRecordBytes);
    std::uint64_t remaining = count_;
    for (const auto &chunk : chunks_) {
        if (!ok || remaining == 0)
            break;
        const std::uint64_t inChunk =
            remaining < kChunkEvents ? remaining : kChunkEvents;
        for (std::uint64_t base = 0; ok && base < inChunk;
             base += kStageEvents) {
            const std::uint64_t n =
                inChunk - base < kStageEvents ? inChunk - base
                                              : kStageEvents;
            for (std::uint64_t i = 0; i < n; ++i) {
                encodeTraceRecord(chunk[base + i],
                                  stage.get() + i * kTraceRecordBytes);
            }
            const std::size_t bytes = n * kTraceRecordBytes;
            ok = std::fwrite(stage.get(), 1, bytes, f) == bytes;
        }
        remaining -= inChunk;
    }
    if (std::fclose(f) != 0)
        ok = false;
    if (!ok)
        throw VmError("trace write failed: " + path);
}

TraceBuffer
TraceBuffer::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw VmError("cannot open trace file: " + path);
    std::uint8_t header[kTraceHeaderBytes];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
        std::fclose(f);
        throw VmError("not a jrs trace file: " + path);
    }
    const std::string err = checkTraceHeader(header);
    if (!err.empty()) {
        std::fclose(f);
        throw VmError("cannot load " + path + ": " + err);
    }
    TraceBuffer buf;
    const auto stage =
        std::make_unique<std::uint8_t[]>(kStageEvents
                                         * kTraceRecordBytes);
    for (;;) {
        const std::size_t got = std::fread(
            stage.get(), 1, kStageEvents * kTraceRecordBytes, f);
        // Partial records at EOF are discarded, as in replayTraceFile.
        const std::size_t n = got / kTraceRecordBytes;
        for (std::size_t i = 0; i < n; ++i) {
            *buf.slotFor(buf.count_) = decodeTraceRecord(
                stage.get() + i * kTraceRecordBytes);
            ++buf.count_;
        }
        if (got < kStageEvents * kTraceRecordBytes)
            break;
    }
    std::fclose(f);
    return buf;
}

void
TraceBuffer::clear()
{
    chunks_.clear();
    count_ = 0;
}

} // namespace jrs
