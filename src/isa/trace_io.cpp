#include "isa/trace_io.h"

#include <cstring>

#include "vm/runtime/vm_error.h"

namespace jrs {

namespace {

constexpr std::size_t kRecordBytes = 35;

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (file_ == nullptr)
        throw VmError("cannot open trace file for writing: " + path);
    std::uint8_t header[16] = {};
    std::memcpy(header, kTraceMagic, sizeof(kTraceMagic));
    header[8] = static_cast<std::uint8_t>(kTraceVersion);
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        throw VmError("trace header write failed");
}

TraceFileWriter::~TraceFileWriter()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
TraceFileWriter::onEvent(const TraceEvent &ev)
{
    std::uint8_t rec[kRecordBytes];
    putU64(rec + 0, ev.pc);
    putU64(rec + 8, ev.mem);
    putU64(rec + 16, ev.target);
    rec[24] = static_cast<std::uint8_t>(ev.kind);
    rec[25] = static_cast<std::uint8_t>(ev.phase);
    rec[26] = ev.taken ? 1 : 0;
    rec[27] = ev.memSize;
    rec[28] = ev.rd;
    rec[29] = ev.rs1;
    rec[30] = ev.rs2;
    rec[31] = rec[32] = rec[33] = rec[34] = 0;
    if (std::fwrite(rec, 1, kRecordBytes, file_) != kRecordBytes)
        throw VmError("trace record write failed");
    ++events_;
}

void
TraceFileWriter::onFinish()
{
    std::fflush(file_);
}

std::uint64_t
replayTraceFile(const std::string &path, TraceSink &sink)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw VmError("cannot open trace file: " + path);

    std::uint8_t header[16];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header)
        || std::memcmp(header, kTraceMagic, sizeof(kTraceMagic)) != 0) {
        std::fclose(f);
        throw VmError("not a jrs trace file: " + path);
    }
    if (header[8] != kTraceVersion) {
        std::fclose(f);
        throw VmError("unsupported trace version");
    }

    std::uint64_t events = 0;
    std::uint8_t rec[kRecordBytes];
    while (std::fread(rec, 1, kRecordBytes, f) == kRecordBytes) {
        TraceEvent ev;
        ev.pc = getU64(rec + 0);
        ev.mem = getU64(rec + 8);
        ev.target = getU64(rec + 16);
        ev.kind = static_cast<NKind>(rec[24]);
        ev.phase = static_cast<Phase>(rec[25]);
        ev.taken = rec[26] != 0;
        ev.memSize = rec[27];
        ev.rd = rec[28];
        ev.rs1 = rec[29];
        ev.rs2 = rec[30];
        sink.onEvent(ev);
        ++events;
    }
    std::fclose(f);
    sink.onFinish();
    return events;
}

} // namespace jrs
