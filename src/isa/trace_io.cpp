#include "isa/trace_io.h"

#include <bit>
#include <cstring>

#include "vm/runtime/vm_error.h"

namespace jrs {

namespace {

// The format is little-endian; on LE hosts (the common case) the
// byte loops collapse to single moves via memcpy.

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(p, &v, sizeof(v));
    } else {
        for (int i = 0; i < 8; ++i)
            p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    if constexpr (std::endian::native == std::endian::little) {
        std::uint64_t v;
        std::memcpy(&v, p, sizeof(v));
        return v;
    } else {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        return v;
    }
}

} // namespace

void
encodeTraceRecord(const TraceEvent &ev, std::uint8_t *out)
{
    putU64(out + 0, ev.pc);
    putU64(out + 8, ev.mem);
    putU64(out + 16, ev.target);
    out[24] = static_cast<std::uint8_t>(ev.kind);
    out[25] = static_cast<std::uint8_t>(ev.phase);
    out[26] = ev.taken ? 1 : 0;
    out[27] = ev.memSize;
    out[28] = ev.rd;
    out[29] = ev.rs1;
    out[30] = ev.rs2;
    out[31] = out[32] = out[33] = out[34] = 0;
}

TraceEvent
decodeTraceRecord(const std::uint8_t *in)
{
    TraceEvent ev;
    ev.pc = getU64(in + 0);
    ev.mem = getU64(in + 8);
    ev.target = getU64(in + 16);
    ev.kind = static_cast<NKind>(in[24]);
    ev.phase = static_cast<Phase>(in[25]);
    ev.taken = in[26] != 0;
    ev.memSize = in[27];
    ev.rd = in[28];
    ev.rs1 = in[29];
    ev.rs2 = in[30];
    return ev;
}

void
encodeTraceHeader(std::uint8_t *out)
{
    std::memset(out, 0, kTraceHeaderBytes);
    std::memcpy(out, kTraceMagic, sizeof(kTraceMagic));
    out[8] = static_cast<std::uint8_t>(kTraceVersion);
}

std::string
checkTraceHeader(const std::uint8_t *in)
{
    if (std::memcmp(in, kTraceMagic, sizeof(kTraceMagic)) != 0)
        return "bad magic";
    if (in[8] != kTraceVersion)
        return "unsupported version " + std::to_string(in[8]);
    return "";
}

TraceFileWriter::TraceFileWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (file_ == nullptr)
        throw VmError("cannot open trace file for writing: " + path);
    std::uint8_t header[kTraceHeaderBytes];
    encodeTraceHeader(header);
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        throw VmError("trace header write failed");
}

TraceFileWriter::~TraceFileWriter()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
TraceFileWriter::onEvent(const TraceEvent &ev)
{
    std::uint8_t rec[kTraceRecordBytes];
    encodeTraceRecord(ev, rec);
    if (std::fwrite(rec, 1, kTraceRecordBytes, file_)
        != kTraceRecordBytes) {
        throw VmError("trace record write failed");
    }
    ++events_;
}

void
TraceFileWriter::onFinish()
{
    std::fflush(file_);
}

std::uint64_t
replayTraceFile(const std::string &path, TraceSink &sink)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw VmError("cannot open trace file: " + path);

    std::uint8_t header[kTraceHeaderBytes];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
        std::fclose(f);
        throw VmError("not a jrs trace file: " + path);
    }
    const std::string err = checkTraceHeader(header);
    if (!err.empty()) {
        std::fclose(f);
        throw VmError("cannot replay " + path + ": " + err);
    }

    std::uint64_t events = 0;
    std::uint8_t rec[kTraceRecordBytes];
    while (std::fread(rec, 1, kTraceRecordBytes, f)
           == kTraceRecordBytes) {
        sink.onEvent(decodeTraceRecord(rec));
        ++events;
    }
    std::fclose(f);
    sink.onFinish();
    return events;
}

} // namespace jrs
