/**
 * @file
 * The native-instruction trace ISA.
 *
 * Everything the VM executes — interpreter handler code, the JIT
 * translator's own work, and JIT-generated native code — is rendered as
 * a stream of TraceEvent records, one per simulated SPARC-like RISC
 * instruction. This plays the role Shade played in the paper: the
 * architecture models (instruction mix, caches, branch predictors, the
 * superscalar pipeline) are all TraceSink observers of this stream.
 */
#ifndef JRS_ISA_TRACE_H
#define JRS_ISA_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace jrs {

/** Broad class of a simulated native instruction. */
enum class NKind : std::uint8_t {
    IntAlu,        ///< integer add/sub/logic/shift/compare
    IntMul,        ///< integer multiply
    IntDiv,        ///< integer divide / remainder
    FpAlu,         ///< FP add/sub/compare/convert
    FpMul,         ///< FP multiply
    FpDiv,         ///< FP divide
    Load,          ///< memory read
    Store,         ///< memory write
    Branch,        ///< conditional branch (taken/target valid)
    Jump,          ///< unconditional direct jump
    IndirectJump,  ///< register-indirect jump (switch dispatch, ret-like)
    Call,          ///< direct call
    IndirectCall,  ///< register-indirect call (virtual dispatch)
    Ret,           ///< return
    Nop,
};

/** Number of distinct NKind values (for counting arrays). */
inline constexpr std::size_t kNumNKinds = 14;

/** Human-readable name of an instruction kind. */
const char *nkindName(NKind kind);

/** True for any control-transfer kind. */
inline bool
isControl(NKind kind)
{
    switch (kind) {
      case NKind::Branch:
      case NKind::Jump:
      case NKind::IndirectJump:
      case NKind::Call:
      case NKind::IndirectCall:
      case NKind::Ret:
        return true;
      default:
        return false;
    }
}

/** True for loads and stores. */
inline bool
isMemory(NKind kind)
{
    return kind == NKind::Load || kind == NKind::Store;
}

/**
 * Which part of the runtime system issued an instruction.
 *
 * The paper instruments Kaffe's translate routine to split the JIT
 * execution into translation vs everything else (Fig 5); we carry the
 * phase on every event so any sink can do that split.
 */
enum class Phase : std::uint8_t {
    Interpret,   ///< interpreter loop + handlers
    Translate,   ///< JIT compiler translating a method
    NativeExec,  ///< executing JIT-generated code
    Runtime,     ///< runtime services (sync, allocation, class loading)
    Gc,          ///< garbage collector (root scan, mark/sweep/copy)
};

inline constexpr std::size_t kNumPhases = 5;

/** Human-readable name of a phase. */
const char *phaseName(Phase phase);

/** Register index type; register 0 is the hardwired zero register. */
using Reg = std::uint8_t;

/** Sentinel meaning "no register operand". */
inline constexpr Reg kNoReg = 0xff;

/**
 * One dynamic native instruction.
 *
 * @c pc is the simulated instruction address; @c mem is the effective
 * address for Load/Store; @c target / @c taken describe control
 * transfers. @c rd / @c rs1 / @c rs2 give the architectural register
 * dependences used by the pipeline model.
 */
struct TraceEvent {
    std::uint64_t pc = 0;
    std::uint64_t mem = 0;      ///< effective address (Load/Store)
    std::uint64_t target = 0;   ///< control-transfer destination
    NKind kind = NKind::Nop;
    Phase phase = Phase::Interpret;
    bool taken = false;         ///< conditional-branch outcome
    std::uint8_t memSize = 0;   ///< access size in bytes (Load/Store)
    Reg rd = kNoReg;
    Reg rs1 = kNoReg;
    Reg rs2 = kNoReg;
};

/**
 * Observer of the dynamic instruction stream.
 *
 * Implementations must be cheap: the VM delivers every simulated
 * instruction through this interface.
 */
class TraceSink {
  public:
    virtual ~TraceSink() = default;

    /** Deliver one dynamic instruction. */
    virtual void onEvent(const TraceEvent &ev) = 0;

    /** Stream finished (engine run complete). Default: no-op. */
    virtual void onFinish() {}
};

/** Fan-out sink delivering each event to several child sinks. */
class MultiSink : public TraceSink {
  public:
    /** Append a child; ownership stays with the caller. */
    void add(TraceSink *sink) { sinks_.push_back(sink); }

    void onEvent(const TraceEvent &ev) override {
        for (TraceSink *s : sinks_)
            s->onEvent(ev);
    }

    void onFinish() override {
        for (TraceSink *s : sinks_)
            s->onFinish();
    }

  private:
    std::vector<TraceSink *> sinks_;
};

/** Sink that simply counts instructions, split by phase. */
class CountingSink : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override {
        ++total_;
        ++perPhase_[static_cast<std::size_t>(ev.phase)];
    }

    /** Total dynamic instructions observed. */
    std::uint64_t total() const { return total_; }

    /** Dynamic instructions observed in @p phase. */
    std::uint64_t inPhase(Phase phase) const {
        return perPhase_[static_cast<std::size_t>(phase)];
    }

    /** Reset all counters to zero. */
    void reset() {
        total_ = 0;
        for (auto &c : perPhase_)
            c = 0;
    }

  private:
    std::uint64_t total_ = 0;
    std::uint64_t perPhase_[kNumPhases] = {};
};

/** Sink that records events into a vector (tests only — unbounded). */
class RecordingSink : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override { events_.push_back(ev); }

    /** All recorded events in order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    void clear() { events_.clear(); }

  private:
    std::vector<TraceEvent> events_;
};

} // namespace jrs

#endif // JRS_ISA_TRACE_H
