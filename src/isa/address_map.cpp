#include "isa/address_map.h"

// All address-map helpers are constexpr/inline; translation unit kept so
// the module appears in the library target.
