/**
 * @file
 * Convenience wrapper for generating TraceEvents.
 *
 * The interpreter, JIT translator, native executor and runtime services
 * all hold a TraceEmitter and call its typed helpers; a null sink makes
 * every helper a cheap no-op so the VM can run untraced (functional
 * tests, warm-up runs).
 */
#ifndef JRS_ISA_EMITTER_H
#define JRS_ISA_EMITTER_H

#include "isa/trace.h"

namespace jrs {

/** Thin helper around a TraceSink; copyable, non-owning. */
class TraceEmitter {
  public:
    TraceEmitter() = default;
    explicit TraceEmitter(TraceSink *sink) : sink_(sink) {}

    /** Replace the sink (nullptr disables emission). */
    void setSink(TraceSink *sink) { sink_ = sink; }

    /** Current sink (may be nullptr). */
    TraceSink *sink() const { return sink_; }

    /** True when events are being delivered. */
    bool enabled() const { return sink_ != nullptr; }

    /** Raw event emission. */
    void emit(const TraceEvent &ev) {
        if (sink_ != nullptr)
            sink_->onEvent(ev);
    }

    /** Non-memory computational instruction. */
    void alu(Phase phase, std::uint64_t pc, NKind kind = NKind::IntAlu,
             Reg rd = kNoReg, Reg rs1 = kNoReg, Reg rs2 = kNoReg) {
        if (sink_ == nullptr)
            return;
        TraceEvent ev;
        ev.pc = pc;
        ev.kind = kind;
        ev.phase = phase;
        ev.rd = rd;
        ev.rs1 = rs1;
        ev.rs2 = rs2;
        sink_->onEvent(ev);
    }

    /** Memory read of @p size bytes at @p addr. */
    void load(Phase phase, std::uint64_t pc, std::uint64_t addr,
              std::uint8_t size = 4, Reg rd = kNoReg, Reg rs1 = kNoReg) {
        if (sink_ == nullptr)
            return;
        TraceEvent ev;
        ev.pc = pc;
        ev.kind = NKind::Load;
        ev.phase = phase;
        ev.mem = addr;
        ev.memSize = size;
        ev.rd = rd;
        ev.rs1 = rs1;
        sink_->onEvent(ev);
    }

    /** Memory write of @p size bytes at @p addr. */
    void store(Phase phase, std::uint64_t pc, std::uint64_t addr,
               std::uint8_t size = 4, Reg rs1 = kNoReg,
               Reg rs2 = kNoReg) {
        if (sink_ == nullptr)
            return;
        TraceEvent ev;
        ev.pc = pc;
        ev.kind = NKind::Store;
        ev.phase = phase;
        ev.mem = addr;
        ev.memSize = size;
        ev.rs1 = rs1;
        ev.rs2 = rs2;
        sink_->onEvent(ev);
    }

    /** Conditional branch at @p pc with @p taken outcome. */
    void branch(Phase phase, std::uint64_t pc, std::uint64_t target,
                bool taken, Reg rs1 = kNoReg, Reg rs2 = kNoReg) {
        if (sink_ == nullptr)
            return;
        TraceEvent ev;
        ev.pc = pc;
        ev.kind = NKind::Branch;
        ev.phase = phase;
        ev.target = target;
        ev.taken = taken;
        ev.rs1 = rs1;
        ev.rs2 = rs2;
        sink_->onEvent(ev);
    }

    /** Control transfer of kind Jump/IndirectJump/Call/IndirectCall/Ret. */
    void control(Phase phase, std::uint64_t pc, NKind kind,
                 std::uint64_t target, Reg rs1 = kNoReg) {
        if (sink_ == nullptr)
            return;
        TraceEvent ev;
        ev.pc = pc;
        ev.kind = kind;
        ev.phase = phase;
        ev.target = target;
        ev.taken = true;
        ev.rs1 = rs1;
        sink_->onEvent(ev);
    }

  private:
    TraceSink *sink_ = nullptr;
};

} // namespace jrs

#endif // JRS_ISA_EMITTER_H
