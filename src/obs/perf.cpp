#include "obs/perf.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"
#include "support/statistics.h"
#include "vm/interp/handler_model.h"
#include "vm/runtime/vm_error.h"

namespace jrs::obs {

namespace {

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

/** {"icache_fetch": n, ...} from a per-kind count array. */
std::string
kindObject(const std::uint64_t (&counts)[kNumPerfKinds])
{
    std::string out = "{";
    for (std::size_t k = 0; k < kNumPerfKinds; ++k) {
        if (k != 0)
            out += ", ";
        out += "\"" + std::string(perfKindName(static_cast<PerfKind>(k)))
            + "\": " + u64(counts[k]);
    }
    return out + "}";
}

/** {"base": n, ...} from a CPI-component array. */
std::string
cpiObject(const std::uint64_t (&cycles)[kNumCpiComponents])
{
    std::string out = "{";
    for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
        if (c != 0)
            out += ", ";
        out += "\""
            + std::string(cpiComponentName(static_cast<CpiComponent>(c)))
            + "\": " + u64(cycles[c]);
    }
    return out + "}";
}

std::string
cellJson(const PerfCell &c)
{
    return "\"insts\": " + u64(c.insts) + ", \"access\": "
        + kindObject(c.access) + ", \"miss\": " + kindObject(c.bad)
        + ", \"penalty\": " + kindObject(c.penalty) + ", \"cpi\": "
        + cpiObject(c.cpi);
}

std::uint64_t
dMisses(const PerfCell &c)
{
    return c.bad[static_cast<std::size_t>(PerfKind::DCacheLoad)]
        + c.bad[static_cast<std::size_t>(PerfKind::DCacheStore)];
}

std::uint64_t
mispredicts(const PerfCell &c)
{
    return c.bad[static_cast<std::size_t>(PerfKind::CondBranch)]
        + c.bad[static_cast<std::size_t>(PerfKind::IndirectTarget)];
}

double
ratePct(std::uint64_t bad, std::uint64_t access)
{
    return access == 0
        ? 0.0
        : 100.0 * static_cast<double>(bad)
            / static_cast<double>(access);
}

} // namespace

void
PerfCell::merge(const PerfCell &o)
{
    insts += o.insts;
    for (std::size_t k = 0; k < kNumPerfKinds; ++k) {
        access[k] += o.access[k];
        bad[k] += o.bad[k];
        penalty[k] += o.penalty[k];
    }
    for (std::size_t c = 0; c < kNumCpiComponents; ++c)
        cpi[c] += o.cpi[c];
}

PerfAttribution::PerfAttribution(const MethodMap &map, Options opt)
    : map_(&map), opt_(opt), ctx_(map),
      methodCells_(map.rows() + 1), curSlot_(map.rows())
{
    if (opt_.program != nullptr) {
        for (const Method &m : opt_.program->methods) {
            if (m.code.empty())
                continue;
            bytecodeRanges_.push_back(
                {m.bytecodeAddr, m.bytecodeAddr + m.code.size(), &m});
        }
        std::sort(bytecodeRanges_.begin(), bytecodeRanges_.end(),
                  [](const BytecodeRange &a, const BytecodeRange &b) {
                      return a.lo < b.lo;
                  });
        opCells_.resize(kNumOpcodes);
    }
}

const Method *
PerfAttribution::methodAtBytecode(SimAddr addr) const
{
    const auto pos = std::upper_bound(
        bytecodeRanges_.begin(), bytecodeRanges_.end(), addr,
        [](SimAddr a, const BytecodeRange &r) { return a < r.lo; });
    if (pos == bytecodeRanges_.begin())
        return nullptr;
    const BytecodeRange &r = *std::prev(pos);
    return addr < r.hi ? r.method : nullptr;
}

void
PerfAttribution::flushWindow()
{
    timeline_.push_back(cur_);
    cur_ = IntervalSample();
    inWindow_ = 0;
}

void
PerfAttribution::onEvent(const TraceEvent &ev)
{
    // Flush *before* the event so the outcomes the model fires for it
    // (delivered after this call under the composite ordering) land in
    // the event's own window. Window boundaries match
    // TimeSeriesCacheSink exactly (bench/fig06 asserts this).
    if (opt_.timelineWindow != 0) {
        if (inWindow_ == opt_.timelineWindow)
            flushWindow();
        ++inWindow_;
        ++cur_.events;
        if (ev.phase == Phase::Translate)
            ++cur_.translateEvents;
    }

    ++events_;
    const int row = ctx_.observe(ev);
    curSlot_ = row >= 0 ? static_cast<std::size_t>(row)
                        : map_->rows();
    curPhase_ = static_cast<std::size_t>(ev.phase);
    ++totals_.insts;
    ++methodCells_[curSlot_].insts;
    ++phaseCells_[curPhase_].insts;

    curInterp_ = ev.phase == Phase::Interpret;
    if (!bytecodeRanges_.empty() && curInterp_
        && ev.kind == NKind::Load && ev.pc == kDispatchPc) {
        // The interpreter's dispatch fetch: ev.mem is the address of
        // the opcode byte about to be executed.
        if (const Method *m = methodAtBytecode(ev.mem)) {
            const std::uint64_t off = ev.mem - m->bytecodeAddr;
            const Op op = m->opAt(static_cast<std::uint32_t>(off));
            curOp_ = static_cast<int>(op);
            curSite_ =
                (static_cast<std::uint64_t>(curSlot_) << 32) | off;
            siteCells_[curSite_].op = op;
        }
    }
    if (curInterp_ && curOp_ >= 0) {
        ++opCells_[static_cast<std::size_t>(curOp_)].insts;
        ++siteCells_[curSite_].cell.insts;
    }
}

void
PerfAttribution::onFinish()
{
    if (opt_.timelineWindow != 0 && inWindow_ != 0)
        flushWindow();
}

void
PerfAttribution::onOutcome(const Outcome &o)
{
    const auto k = static_cast<std::size_t>(o.kind);
    const auto fold = [&](PerfCell &c) {
        ++c.access[k];
        if (o.bad)
            ++c.bad[k];
        c.penalty[k] += o.penalty;
    };
    fold(totals_);
    fold(methodCells_[curSlot_]);
    fold(phaseCells_[curPhase_]);
    if (curInterp_ && curOp_ >= 0) {
        fold(opCells_[static_cast<std::size_t>(curOp_)]);
        fold(siteCells_[curSite_].cell);
    }
    if (opt_.timelineWindow != 0) {
        ++cur_.access[k];
        if (o.bad)
            ++cur_.bad[k];
    }
}

void
PerfAttribution::onRetire(const CpiSample &s)
{
    const auto fold = [&](PerfCell &c) {
        for (std::size_t i = 0; i < kNumCpiComponents; ++i)
            c.cpi[i] += s.cycles[i];
    };
    fold(totals_);
    fold(methodCells_[curSlot_]);
    fold(phaseCells_[curPhase_]);
    if (curInterp_ && curOp_ >= 0) {
        fold(opCells_[static_cast<std::size_t>(curOp_)]);
        fold(siteCells_[curSite_].cell);
    }
    if (opt_.timelineWindow != 0) {
        for (std::size_t i = 0; i < kNumCpiComponents; ++i)
            cur_.cpi[i] += s.cycles[i];
    }
}

namespace {

/** Rows of the method report in deterministic hot-first order. */
struct MethodRow {
    std::string name;
    const PerfCell *cell;
};

std::vector<MethodRow>
sortedMethodRows(const MethodMap &map,
                 const std::vector<PerfCell> &cells)
{
    std::vector<MethodRow> rows;
    for (std::size_t r = 0; r < cells.size(); ++r) {
        const PerfCell &c = cells[r];
        if (c.insts == 0 && c.cycles() == 0)
            continue;
        rows.push_back({r < map.rows() ? map.name(static_cast<int>(r))
                                       : "(unattributed)",
                        &c});
    }
    std::sort(rows.begin(), rows.end(),
              [](const MethodRow &a, const MethodRow &b) {
                  if (a.cell->cycles() != b.cell->cycles())
                      return a.cell->cycles() > b.cell->cycles();
                  if (a.cell->insts != b.cell->insts)
                      return a.cell->insts > b.cell->insts;
                  return a.name < b.name;
              });
    return rows;
}

} // namespace

Table
PerfAttribution::methodTable(std::size_t n) const
{
    Table t({"#", "method", "insts", "imiss", "dmiss", "dmiss%",
             "mispred", "mp%", "cycles", "base", "icache", "dcache",
             "branch", "indirect", "backend"});
    const std::vector<MethodRow> rows =
        sortedMethodRows(*map_, methodCells_);
    for (std::size_t i = 0; i < rows.size() && i < n; ++i) {
        const PerfCell &c = *rows[i].cell;
        const std::uint64_t dAcc =
            c.access[static_cast<std::size_t>(PerfKind::DCacheLoad)]
            + c.access[static_cast<std::size_t>(PerfKind::DCacheStore)];
        const std::uint64_t pAcc =
            c.access[static_cast<std::size_t>(PerfKind::CondBranch)]
            + c.access[static_cast<std::size_t>(
                PerfKind::IndirectTarget)];
        t.addRow({std::to_string(i + 1), rows[i].name,
                  withCommas(c.insts), withCommas(
                      c.bad[static_cast<std::size_t>(
                          PerfKind::ICacheFetch)]),
                  withCommas(dMisses(c)),
                  fixed(ratePct(dMisses(c), dAcc), 2),
                  withCommas(mispredicts(c)),
                  fixed(ratePct(mispredicts(c), pAcc), 2),
                  withCommas(c.cycles()),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::Base)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::ICache)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::DCache)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::BranchMispredict)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::IndirectTarget)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::Backend)])});
    }
    return t;
}

Table
PerfAttribution::phaseTable() const
{
    Table t({"phase", "insts", "imiss", "dmiss", "dmiss%", "mispred",
             "mp%", "cycles", "base", "icache", "dcache", "branch",
             "indirect", "backend"});
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const PerfCell &c = phaseCells_[p];
        if (c.insts == 0 && c.cycles() == 0)
            continue;
        const std::uint64_t dAcc =
            c.access[static_cast<std::size_t>(PerfKind::DCacheLoad)]
            + c.access[static_cast<std::size_t>(PerfKind::DCacheStore)];
        const std::uint64_t pAcc =
            c.access[static_cast<std::size_t>(PerfKind::CondBranch)]
            + c.access[static_cast<std::size_t>(
                PerfKind::IndirectTarget)];
        t.addRow({phaseName(static_cast<Phase>(p)),
                  withCommas(c.insts),
                  withCommas(c.bad[static_cast<std::size_t>(
                      PerfKind::ICacheFetch)]),
                  withCommas(dMisses(c)),
                  fixed(ratePct(dMisses(c), dAcc), 2),
                  withCommas(mispredicts(c)),
                  fixed(ratePct(mispredicts(c), pAcc), 2),
                  withCommas(c.cycles()),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::Base)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::ICache)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::DCache)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::BranchMispredict)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::IndirectTarget)]),
                  withCommas(c.cpi[static_cast<std::size_t>(
                      CpiComponent::Backend)])});
    }
    return t;
}

Table
PerfAttribution::opcodeTable(std::size_t n) const
{
    if (!hasOpcodes())
        throw VmError("opcodeTable needs a Program (Options::program)");
    struct OpRow {
        Op op;
        const PerfCell *cell;
    };
    std::vector<OpRow> rows;
    for (std::size_t o = 0; o < opCells_.size(); ++o) {
        if (opCells_[o].insts != 0)
            rows.push_back({static_cast<Op>(o), &opCells_[o]});
    }
    std::sort(rows.begin(), rows.end(),
              [](const OpRow &a, const OpRow &b) {
                  if (a.cell->insts != b.cell->insts)
                      return a.cell->insts > b.cell->insts;
                  return static_cast<int>(a.op) < static_cast<int>(b.op);
              });
    Table t({"#", "opcode", "insts", "imiss", "dmiss", "mispred",
             "cycles"});
    for (std::size_t i = 0; i < rows.size() && i < n; ++i) {
        const PerfCell &c = *rows[i].cell;
        t.addRow({std::to_string(i + 1), opName(rows[i].op),
                  withCommas(c.insts),
                  withCommas(c.bad[static_cast<std::size_t>(
                      PerfKind::ICacheFetch)]),
                  withCommas(dMisses(c)), withCommas(mispredicts(c)),
                  withCommas(c.cycles())});
    }
    return t;
}

Table
PerfAttribution::annotateTable(const std::string &methodName) const
{
    if (!hasOpcodes())
        throw VmError(
            "annotateTable needs a Program (Options::program)");
    int row = -1;
    for (std::size_t r = 0; r < map_->rows(); ++r) {
        if (map_->name(static_cast<int>(r)) == methodName) {
            row = static_cast<int>(r);
            break;
        }
    }
    if (row < 0)
        throw VmError("annotate: unknown method: " + methodName);
    Table t({"pc", "op", "insts", "imiss", "dmiss", "mispred",
             "cycles"});
    const std::uint64_t lo = static_cast<std::uint64_t>(row) << 32;
    const std::uint64_t hi = static_cast<std::uint64_t>(row + 1) << 32;
    for (auto it = siteCells_.lower_bound(lo);
         it != siteCells_.end() && it->first < hi; ++it) {
        const PerfCell &c = it->second.cell;
        t.addRow({std::to_string(it->first & 0xffffffffu),
                  opName(it->second.op), withCommas(c.insts),
                  withCommas(c.bad[static_cast<std::size_t>(
                      PerfKind::ICacheFetch)]),
                  withCommas(dMisses(c)), withCommas(mispredicts(c)),
                  withCommas(c.cycles())});
    }
    return t;
}

std::string
PerfAttribution::runJson(const std::string &label) const
{
    std::string out;
    out += "    {\n";
    out += "      \"label\": \"" + jsonEscape(label) + "\",\n";
    out += "      \"events\": " + u64(events_) + ",\n";
    out += "      \"cycles\": " + u64(totals_.cycles()) + ",\n";
    out += "      \"totals\": {" + cellJson(totals_) + "},\n";
    out += "      \"phases\": {\n";
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        out += "        \""
            + std::string(phaseName(static_cast<Phase>(p))) + "\": {"
            + cellJson(phaseCells_[p]) + "}";
        out += p + 1 < kNumPhases ? ",\n" : "\n";
    }
    out += "      },\n";
    out += "      \"methods\": [\n";
    const std::vector<MethodRow> rows =
        sortedMethodRows(*map_, methodCells_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        out += "        {\"name\": \"" + jsonEscape(rows[i].name)
            + "\", " + cellJson(*rows[i].cell) + "}";
        out += i + 1 < rows.size() ? ",\n" : "\n";
    }
    out += "      ]";
    if (hasOpcodes()) {
        out += ",\n      \"opcodes\": [\n";
        bool first = true;
        for (std::size_t o = 0; o < opCells_.size(); ++o) {
            if (opCells_[o].insts == 0)
                continue;
            if (!first)
                out += ",\n";
            first = false;
            out += "        {\"op\": \""
                + std::string(opName(static_cast<Op>(o))) + "\", "
                + cellJson(opCells_[o]) + "}";
        }
        out += "\n      ]";
    }
    if (opt_.timelineWindow != 0) {
        out += ",\n      \"timeline\": {\"window\": "
            + u64(opt_.timelineWindow) + ", \"samples\": [\n";
        for (std::size_t i = 0; i < timeline_.size(); ++i) {
            const IntervalSample &s = timeline_[i];
            out += "        {\"events\": " + u64(s.events)
                + ", \"access\": " + kindObject(s.access)
                + ", \"miss\": " + kindObject(s.bad)
                + ", \"translate_events\": " + u64(s.translateEvents)
                + ", \"cpi\": " + cpiObject(s.cpi) + "}";
            out += i + 1 < timeline_.size() ? ",\n" : "\n";
        }
        out += "      ]}";
    }
    out += "\n    }";
    return out;
}

void
PerfAttribution::emitCounterTracks(SpanTracer &tracer,
                                   const std::string &prefix) const
{
    const std::uint32_t lane = SpanTracer::currentLane();
    for (std::size_t i = 0; i < timeline_.size(); ++i) {
        const IntervalSample &s = timeline_[i];
        const std::uint64_t ts = i * opt_.timelineWindow;
        CounterRecord misses;
        misses.name = prefix + ".misses";
        misses.ts = ts;
        misses.lane = lane;
        misses.values = {
            {"icache",
             static_cast<double>(s.bad[static_cast<std::size_t>(
                 PerfKind::ICacheFetch)])},
            {"dcache_load",
             static_cast<double>(s.bad[static_cast<std::size_t>(
                 PerfKind::DCacheLoad)])},
            {"dcache_store",
             static_cast<double>(s.bad[static_cast<std::size_t>(
                 PerfKind::DCacheStore)])},
        };
        tracer.recordCounter(std::move(misses));

        CounterRecord mp;
        mp.name = prefix + ".mispredicts";
        mp.ts = ts;
        mp.lane = lane;
        mp.values = {
            {"cond",
             static_cast<double>(s.bad[static_cast<std::size_t>(
                 PerfKind::CondBranch)])},
            {"indirect",
             static_cast<double>(s.bad[static_cast<std::size_t>(
                 PerfKind::IndirectTarget)])},
        };
        tracer.recordCounter(std::move(mp));

        if (s.cycles() != 0) {
            CounterRecord cpi;
            cpi.name = prefix + ".cpi";
            cpi.ts = ts;
            cpi.lane = lane;
            for (std::size_t c = 0; c < kNumCpiComponents; ++c) {
                cpi.values.emplace_back(
                    cpiComponentName(static_cast<CpiComponent>(c)),
                    static_cast<double>(s.cpi[c]));
            }
            tracer.recordCounter(std::move(cpi));
        }
    }
}

void
PerfReportSet::add(const std::string &label,
                   const PerfAttribution &perf)
{
    std::string body = perf.runJson(label);
    std::lock_guard<std::mutex> lock(mu_);
    // Re-observing a label overwrites its report: replay is
    // bit-identical, so a warm re-run (e.g. --compare-serial passes)
    // must not duplicate entries.
    for (auto &run : runs_) {
        if (run.first == label) {
            run.second = std::move(body);
            return;
        }
    }
    runs_.emplace_back(label, std::move(body));
}

std::size_t
PerfReportSet::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return runs_.size();
}

std::string
PerfReportSet::toJson() const
{
    std::vector<std::pair<std::string, std::string>> runs;
    {
        std::lock_guard<std::mutex> lock(mu_);
        runs = runs_;
    }
    std::sort(runs.begin(), runs.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::string out;
    out += "{\n  \"schema\": \"jrs-perf-report-v1\",\n";
    out += "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        out += runs[i].second;
        out += i + 1 < runs.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

void
PerfReportSet::writeJson(const std::string &path) const
{
    const std::string body = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw VmError("cannot write perf JSON: " + path);
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (std::fclose(f) != 0 || !ok)
        throw VmError("cannot write perf JSON: " + path);
}

} // namespace jrs::obs
