#include "obs/obs.h"

#include <atomic>

namespace jrs::obs {

namespace {

std::atomic<bool> gEnabled{false};

} // namespace

bool
enabled()
{
    return gEnabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    gEnabled.store(on, std::memory_order_relaxed);
}

MetricRegistry &
metrics()
{
    static MetricRegistry registry;
    return registry;
}

SpanTracer &
tracer()
{
    static SpanTracer t;
    return t;
}

} // namespace jrs::obs
