#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"
#include "vm/runtime/vm_error.h"

namespace jrs::obs {

namespace {

/** Bucket index for Histogram: everything <= 1 lands in bucket 0. */
std::size_t
bucketOf(double v)
{
    std::size_t i = 0;
    double bound = 1.0;
    while (v > bound && i + 1 < Histogram::kNumBuckets) {
        bound *= 2.0;
        ++i;
    }
    return i;
}

} // namespace

void
Histogram::record(double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (s_.count == 0) {
        s_.min = v;
        s_.max = v;
    } else {
        s_.min = std::min(s_.min, v);
        s_.max = std::max(s_.max, v);
    }
    ++s_.count;
    s_.sum += v;
    ++s_.buckets[bucketOf(v)];
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return s_;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (slot == nullptr)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

double
MetricRegistry::gaugeValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second->value();
}

std::string
MetricRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    out += "{\n  \"schema\": \"jrs-metrics-v1\",\n";

    out += "  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name)
            + "\": " + std::to_string(c->value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name)
            + "\": " + jsonNumber(g->value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        const Histogram::Snapshot s = h->snapshot();
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) + "\": {\"count\": "
            + std::to_string(s.count) + ", \"sum\": "
            + jsonNumber(s.sum) + ", \"min\": "
            + jsonNumber(s.count == 0 ? 0.0 : s.min) + ", \"max\": "
            + jsonNumber(s.count == 0 ? 0.0 : s.max) + ", \"mean\": "
            + jsonNumber(s.mean()) + ", \"buckets\": [";
        // Sparse bucket list: [upper_bound, count] pairs, non-zero
        // buckets only, so tiny histograms stay tiny in JSON.
        bool firstBucket = true;
        double bound = 1.0;
        for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            if (s.buckets[i] != 0) {
                if (!firstBucket)
                    out += ", ";
                firstBucket = false;
                out += "[" + jsonNumber(bound) + ", "
                    + std::to_string(s.buckets[i]) + "]";
            }
            bound *= 2.0;
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";

    out += "}\n";
    return out;
}

void
MetricRegistry::writeJson(const std::string &path) const
{
    const std::string body = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw VmError("cannot write metrics JSON: " + path);
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (std::fclose(f) != 0 || !ok)
        throw VmError("cannot write metrics JSON: " + path);
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace jrs::obs
