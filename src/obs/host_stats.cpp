#include "obs/host_stats.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace jrs::obs {

void
HostStats::add(const std::string &name, double seconds,
               std::uint64_t events)
{
    for (auto &s : sections_) {
        if (s.first == name) {
            s.second.seconds += seconds;
            s.second.events += events;
            ++s.second.entries;
            return;
        }
    }
    sections_.emplace_back(name, Totals{seconds, events, 1});
}

HostStats::Totals
HostStats::section(const std::string &name) const
{
    for (const auto &s : sections_) {
        if (s.first == name)
            return s.second;
    }
    return {};
}

double
HostStats::totalSeconds() const
{
    double t = 0;
    for (const auto &s : sections_)
        t += s.second.seconds;
    return t;
}

std::uint64_t
HostStats::peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    // ru_maxrss is bytes on Darwin...
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    // ...and kilobytes on Linux.
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

} // namespace jrs::obs
