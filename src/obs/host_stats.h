/**
 * @file
 * Host-side self-profiling: where the *simulator's own* time goes.
 *
 * Everything else under obs/ measures the simulated machine; this
 * measures the process running it — wall-clock per named section,
 * simulated instructions pushed through per host second, and peak
 * resident set size. jrs_bench feeds these into jrs-bench-v1 reports
 * (prof/bench.h) so the repo carries a committed throughput
 * trajectory and CI can gate on regressions.
 *
 * Usage:
 *
 *   HostStats hs;
 *   {
 *       HostStats::Section s(hs, "record", &events);
 *       ... run ...                       // events counted by caller
 *   }
 *   hs.section("record").eventsPerSec();
 *
 * All timing goes through obs/clock.h; RSS comes from getrusage
 * (ru_maxrss), 0 on platforms without it.
 */
#ifndef JRS_OBS_HOST_STATS_H
#define JRS_OBS_HOST_STATS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.h"

namespace jrs::obs {

/** See file comment. */
class HostStats {
  public:
    /** Accumulated figures for one named section. */
    struct Totals {
        double seconds = 0;        ///< wall-clock in the section
        std::uint64_t events = 0;  ///< simulated instructions credited
        std::uint64_t entries = 0; ///< times the section ran

        /** Simulated instructions per host second; 0 when untimed. */
        double eventsPerSec() const {
            return seconds > 0
                ? static_cast<double>(events) / seconds
                : 0;
        }
    };

    /**
     * RAII stopwatch for one section entry. @p events, when non-null,
     * is read at destruction: set it to the number of simulated
     * instructions the section processed.
     */
    class Section {
      public:
        Section(HostStats &hs, std::string name,
                const std::uint64_t *events = nullptr)
            : hs_(hs), name_(std::move(name)), events_(events),
              t0_(steadyNow())
        {
        }
        ~Section()
        {
            hs_.add(name_, secondsSince(t0_),
                    events_ != nullptr ? *events_ : 0);
        }
        Section(const Section &) = delete;
        Section &operator=(const Section &) = delete;

      private:
        HostStats &hs_;
        std::string name_;
        const std::uint64_t *events_;
        SteadyTime t0_;
    };

    /** Credit @p seconds of wall-clock and @p events to @p name. */
    void add(const std::string &name, double seconds,
             std::uint64_t events = 0);

    /** Totals of @p name (zeros when never entered). */
    Totals section(const std::string &name) const;

    /** All sections in first-use order. */
    const std::vector<std::pair<std::string, Totals>> &sections() const
    {
        return sections_;
    }

    /** Wall-clock summed over every section. */
    double totalSeconds() const;

    /**
     * Peak resident set size of this process, in bytes (getrusage
     * ru_maxrss; 0 when unavailable). Monotonic over the process
     * lifetime — sample after the work of interest.
     */
    static std::uint64_t peakRssBytes();

  private:
    std::vector<std::pair<std::string, Totals>> sections_;
};

} // namespace jrs::obs

#endif // JRS_OBS_HOST_STATS_H
