#include "obs/attribution.h"

#include <algorithm>
#include <map>

#include "support/statistics.h"
#include "vm/runtime/vm_error.h"

namespace jrs::obs {

void
MethodMap::add(SimAddr lo, SimAddr hi, const std::string &name)
{
    if (lo >= hi)
        return;
    int row = -1;
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) {
            row = static_cast<int>(i);
            break;
        }
    }
    if (row < 0) {
        row = static_cast<int>(names_.size());
        names_.push_back(name);
    }
    Range r{lo, hi, row};
    const auto pos = std::lower_bound(
        ranges_.begin(), ranges_.end(), r,
        [](const Range &a, const Range &b) { return a.lo < b.lo; });
    if (pos != ranges_.end() && pos->lo < hi)
        throw VmError("MethodMap ranges overlap at " + name);
    if (pos != ranges_.begin() && std::prev(pos)->hi > lo)
        throw VmError("MethodMap ranges overlap at " + name);
    ranges_.insert(pos, r);
}

MethodMap
MethodMap::forRun(const ClassRegistry &registry, const CodeCache &cache)
{
    MethodMap map;
    for (const Method &m : registry.program().methods) {
        map.add(m.bytecodeAddr, m.bytecodeAddr + m.code.size(),
                m.name);
    }
    for (const NativeMethod *nm : cache.all()) {
        map.add(nm->codeBase, nm->codeBase + nm->codeBytes(),
                nm->src->name);
    }
    return map;
}

int
MethodMap::rowOf(SimAddr addr) const
{
    const auto pos = std::upper_bound(
        ranges_.begin(), ranges_.end(), addr,
        [](SimAddr a, const Range &r) { return a < r.lo; });
    if (pos == ranges_.begin())
        return -1;
    const Range &r = *std::prev(pos);
    return addr < r.hi ? r.row : -1;
}

AttributionSink::AttributionSink(const MethodMap &map)
    : map_(&map), ctx_(map),
      counts_((map.rows() + 1) * kNumPhases, 0)
{
}

void
AttributionSink::onEvent(const TraceEvent &ev)
{
    const auto p = static_cast<std::size_t>(ev.phase);
    const int row = ctx_.observe(ev);
    const std::size_t slot =
        row >= 0 ? static_cast<std::size_t>(row) : map_->rows();
    ++counts_[slot * kNumPhases + p];
    ++phaseTotals_[p];
    ++total_;
}

std::uint64_t
AttributionSink::attributed(Phase phase) const
{
    const auto p = static_cast<std::size_t>(phase);
    return phaseTotals_[p] - counts_[map_->rows() * kNumPhases + p];
}

std::vector<AttributedMethod>
AttributionSink::top(Phase phase, std::size_t n) const
{
    const auto p = static_cast<std::size_t>(phase);
    const std::uint64_t phaseTotal = phaseTotals_[p];
    std::vector<AttributedMethod> rows;
    for (std::size_t r = 0; r <= map_->rows(); ++r) {
        const std::uint64_t events = counts_[r * kNumPhases + p];
        if (events == 0)
            continue;
        AttributedMethod am;
        am.name = r < map_->rows() ? map_->name(static_cast<int>(r))
                                   : "(unattributed)";
        am.events = events;
        am.pct = phaseTotal == 0
            ? 0.0
            : 100.0 * static_cast<double>(events)
                / static_cast<double>(phaseTotal);
        rows.push_back(std::move(am));
    }
    std::sort(rows.begin(), rows.end(),
              [](const AttributedMethod &a, const AttributedMethod &b) {
                  if (a.events != b.events)
                      return a.events > b.events;
                  return a.name < b.name;
              });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

Table
AttributionSink::phaseTable(Phase phase, std::size_t n) const
{
    Table t({"#", "method", "events", "share"});
    const std::vector<AttributedMethod> rows = top(phase, n);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        t.addRow({std::to_string(i + 1), rows[i].name,
                  withCommas(rows[i].events),
                  fixed(rows[i].pct, 2) + "%"});
    }
    return t;
}

} // namespace jrs::obs
