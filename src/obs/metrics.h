/**
 * @file
 * The metrics registry: named counters, gauges and histograms with
 * cheap hot-path updates and a stable JSON snapshot.
 *
 * Instrumented subsystems (VM engine, JIT translator, trace cache,
 * sweep engine) register metrics by name and update them through
 * handles; a snapshot renders every metric to the `jrs-metrics-v1`
 * JSON schema (documented in DESIGN.md). Handles returned by
 * counter()/gauge()/histogram() stay valid for the registry's
 * lifetime, so callers can look a metric up once and update it from
 * hot code without re-hashing the name.
 *
 * Thread-safety: counter and gauge updates are relaxed atomics;
 * histogram updates take a per-histogram mutex (they sit on warm, not
 * hot, paths — one record per compilation or sweep point). Metrics
 * never feed back into the simulation, so enabling them cannot change
 * any experimental result.
 */
#ifndef JRS_OBS_METRICS_H
#define JRS_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jrs::obs {

/** Monotonically increasing event count. */
class Counter {
  public:
    void add(std::uint64_t n = 1) {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-written value (occupancy, queue depth, ...). */
class Gauge {
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }

    double value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Distribution summary: count/sum/min/max plus power-of-two buckets.
 * Bucket i counts values v with 2^(i-1) < v <= 2^i (bucket 0 takes
 * everything <= 1), which is plenty for the integer-ish quantities we
 * record (bytecode sizes, emitted instructions, point wall-times in
 * microseconds).
 */
class Histogram {
  public:
    /** Number of power-of-two buckets (top bucket is unbounded). */
    static constexpr std::size_t kNumBuckets = 48;

    void record(double v);

    struct Snapshot {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;   ///< meaningless when count == 0
        double max = 0.0;
        std::uint64_t buckets[kNumBuckets] = {};

        double mean() const {
            return count == 0 ? 0.0
                              : sum / static_cast<double>(count);
        }
    };

    Snapshot snapshot() const;

  private:
    mutable std::mutex mu_;
    Snapshot s_;
};

/** Named metric store; see file comment. */
class MetricRegistry {
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find-or-create; the returned reference is registry-lifetime. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Current value of a counter, 0 when it was never registered. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Current value of a gauge, 0.0 when never registered. */
    double gaugeValue(const std::string &name) const;

    /**
     * Snapshot every metric as `jrs-metrics-v1` JSON. Names are
     * emitted sorted, so two snapshots of the same state are
     * byte-identical.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; throws VmError on I/O failure. */
    void writeJson(const std::string &path) const;

    /** Drop every metric (tests). Outstanding handles dangle. */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace jrs::obs

#endif // JRS_OBS_METRICS_H
