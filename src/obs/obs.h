/**
 * @file
 * Process-wide observability switchboard.
 *
 * jrs instruments its runtime layers — the VM engine, the JIT
 * translator, the trace cache and the sweep engine — against one
 * global MetricRegistry and one global SpanTracer, gated by a single
 * runtime toggle. The toggle is OFF by default and every
 * instrumentation site checks it first, so an untoggled run pays one
 * relaxed atomic load per *instrumented operation* (a run, a
 * compilation, a sweep point — never per simulated instruction):
 * observability is zero-cost for the simulation itself, and metrics
 * and spans only ever read simulator state, so results are
 * bit-identical whether it is on or off (tests/test_obs.cpp asserts
 * this for a whole sweep).
 *
 * Instrumentation idiom:
 * @code
 *   obs::count("jit.compilations");
 *   obs::ScopedSpan span("jit.translate", "jit");
 *   span.arg("method", m.name);
 * @endcode
 */
#ifndef JRS_OBS_OBS_H
#define JRS_OBS_OBS_H

#include "obs/metrics.h"
#include "obs/spans.h"

namespace jrs::obs {

/** Is observability collection on? (relaxed atomic load). */
bool enabled();

/** Turn collection on/off (off at process start). */
void setEnabled(bool on);

/** The process-wide metric registry. */
MetricRegistry &metrics();

/** The process-wide span tracer. */
SpanTracer &tracer();

/** Bump a named counter when observability is on. */
inline void
count(const char *name, std::uint64_t n = 1)
{
    if (enabled())
        metrics().counter(name).add(n);
}

/** Set a named gauge when observability is on. */
inline void
gaugeSet(const char *name, double v)
{
    if (enabled())
        metrics().gauge(name).set(v);
}

/** Record into a named histogram when observability is on. */
inline void
observe(const char *name, double v)
{
    if (enabled())
        metrics().histogram(name).record(v);
}

/**
 * RAII span against the global tracer. Construction is a no-op while
 * observability is off (the off-state cost is the enabled() check);
 * when on, the span covers construction-to-destruction on the calling
 * thread's lane.
 */
class ScopedSpan {
  public:
    ScopedSpan(const char *name, const char *cat)
    {
        if (!enabled())
            return;
        tracer_ = &tracer();
        span_.name = name;
        span_.cat = cat;
        span_.lane = SpanTracer::currentLane();
        span_.startUs = tracer_->nowUs();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach a string argument (shown in the Perfetto side panel). */
    void arg(const char *key, std::string value)
    {
        if (tracer_ != nullptr)
            span_.args.emplace_back(key, std::move(value));
    }

    /** Replace the span name (e.g. once record-vs-load is known). */
    void rename(std::string name)
    {
        if (tracer_ != nullptr)
            span_.name = std::move(name);
    }

    /** True when this span is actually recording. */
    bool active() const { return tracer_ != nullptr; }

    ~ScopedSpan()
    {
        if (tracer_ == nullptr)
            return;
        span_.durUs = tracer_->nowUs() - span_.startUs;
        tracer_->record(std::move(span_));
    }

  private:
    SpanTracer *tracer_ = nullptr;
    SpanRecord span_;
};

} // namespace jrs::obs

#endif // JRS_OBS_OBS_H
