/**
 * @file
 * Shared JSON plumbing for every jrs-*-v1 writer (and the one reader).
 *
 * All observability schemas (jrs-metrics-v1, jrs-perf-report-v1,
 * jrs-cct-v1, jrs-bench-v1, jrs-sample-v1, the Chrome trace-event
 * output and the sweep-result documents) hand-render their JSON; this
 * header is the single definition of the two primitives they share:
 *
 *  - jsonEscape(): string escaping (quotes, backslash, control
 *    characters as \uXXXX).
 *  - jsonNumber(): shortest round-trippable double. JSON has no
 *    NaN/Inf so non-finite values render as null, and the output is
 *    locale-independent: a C locale whose decimal separator is ','
 *    (snprintf honors LC_NUMERIC) would otherwise emit invalid JSON,
 *    so any ',' the formatter produced is normalized back to '.'.
 *
 * JsonParser is the tree's one JSON reader (moved here from
 * prof/bench.cpp): a minimal recursive-descent parser covering what
 * the writers above emit — strings, finite numbers, objects, arrays,
 * true/false/null, no \u surrogate pairs. It exists so round-trip
 * tests and jrs_bench --compare need no external JSON dependency;
 * it is strict enough to reject files this tree did not write.
 */
#ifndef JRS_OBS_JSON_H
#define JRS_OBS_JSON_H

#include <string>
#include <utility>
#include <vector>

namespace jrs::obs {

/** See file comment. */
std::string jsonEscape(const std::string &s);

/** See file comment. */
std::string jsonNumber(double v);

/** See file comment. Throws VmError on malformed input. */
class JsonParser {
  public:
    struct Value {
        enum Kind { Null, Bool, Number, String, Array, Object } kind =
            Null;
        bool b = false;
        double num = 0;
        std::string str;
        std::vector<Value> items;
        std::vector<std::pair<std::string, Value>> fields;

        /** Object field @p name, or null when absent. */
        const Value *field(const std::string &name) const {
            for (const auto &f : fields) {
                if (f.first == name)
                    return &f.second;
            }
            return nullptr;
        }
    };

    /**
     * @p text must outlive the parser. @p what names the schema in
     * error messages ("jrs-bench-v1 parse error at byte N: ...").
     */
    explicit JsonParser(const std::string &text,
                        std::string what = "json");

    /** Parse the whole document; rejects trailing content. */
    Value parse();

  private:
    [[noreturn]] void fail(const std::string &why) const;
    void ws();
    char peek();
    void expect(char c);
    bool consume(char c);
    std::string string();
    Value value();
    void literal(const char *lit);

    const std::string &s_;
    std::string what_;
    std::size_t pos_ = 0;
};

} // namespace jrs::obs

#endif // JRS_OBS_JSON_H
