/**
 * @file
 * Hot-method attribution: join a phase-tagged native stream with the
 * method map and report where the instructions went.
 *
 * The paper's whole method is counting phase-tagged native
 * instructions; this pass adds the "which *method* was that?"
 * dimension JXPerf-style tools provide. A MethodMap records the two
 * kinds of simulated address ranges that identify a method:
 *
 *  - its bytecode range in seg::kClassData (what the interpreter
 *    fetches and the translator reads), and
 *  - its generated-code range in seg::kCodeCache (what the native
 *    executor's pc walks and the translator's install stores hit).
 *
 * AttributionSink replays any recorded stream against that map:
 *
 *  - NativeExec events attribute by pc range;
 *  - Interpret events attribute to the method of the last bytecode
 *    fetch — the interpreter begins every step with a fetch from
 *    `bytecodeAddr + pc`, so this is exact per interpreted step;
 *  - Translate events attribute to the method whose bytecode the
 *    translator last read (or whose code it last installed);
 *  - Runtime events attribute to the last interpreted/native method,
 *    i.e. the method that called into the runtime.
 *
 * The join is entirely offline: it needs only the TraceEvent stream
 * plus the map, so it works on replayed `.jrstrace` recordings as
 * well as live runs. Events seen before any mapped access land in a
 * "(unattributed)" bucket, and per-phase sums always equal the
 * stream's per-phase totals (conservation; tested in test_obs.cpp).
 */
#ifndef JRS_OBS_ATTRIBUTION_H
#define JRS_OBS_ATTRIBUTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/trace.h"
#include "support/table.h"
#include "vm/jit/code_cache.h"
#include "vm/runtime/class_registry.h"

namespace jrs::obs {

/** Simulated-address-range -> method index; see file comment. */
class MethodMap {
  public:
    /**
     * Register [lo, hi) as belonging to @p name. Ranges of the same
     * name (bytecode + generated code) share one row. Empty ranges
     * are ignored. Ranges must not overlap.
     */
    void add(SimAddr lo, SimAddr hi, const std::string &name);

    /**
     * Every method of a finished run: bytecode ranges from the
     * registry's program, generated-code ranges from the code cache.
     */
    static MethodMap forRun(const ClassRegistry &registry,
                            const CodeCache &cache);

    /** Row owning @p addr, or -1. */
    int rowOf(SimAddr addr) const;

    /** Name of @p row. */
    const std::string &name(int row) const { return names_[row]; }

    /** Number of distinct method names. */
    std::size_t rows() const { return names_.size(); }

    /**
     * Visit every registered range in address order as
     * fn(lo, hi, name). Feeding the visits back through add()
     * reconstructs an identical map (trace-cache persistence).
     */
    template <typename Fn>
    void forEachRange(Fn &&fn) const {
        for (const Range &r : ranges_)
            fn(r.lo, r.hi, names_[r.row]);
    }

  private:
    struct Range {
        SimAddr lo;
        SimAddr hi;
        int row;
    };

    std::vector<Range> ranges_;  ///< kept sorted by lo
    std::vector<std::string> names_;
};

/**
 * The streaming half of the attribution join: tracks which method is
 * "current" per the phase rules in the file comment and resolves each
 * TraceEvent to a MethodMap row (-1 = unattributed). Shared by
 * AttributionSink (event counting) and PerfAttribution (outcome and
 * CPI-stack folding, obs/perf.h) so both agree on every event.
 */
class MethodContext {
  public:
    /** @p map must outlive the context. */
    explicit MethodContext(const MethodMap &map) : map_(&map) {}

    /** Resolve @p ev's method row, updating the phase contexts. */
    int observe(const TraceEvent &ev) {
        int row = -1;
        switch (ev.phase) {
          case Phase::NativeExec:
            row = map_->rowOf(ev.pc);
            if (row >= 0)
                lastRunning_ = row;
            break;
          case Phase::Interpret:
            if (ev.kind == NKind::Load) {
                const int r = map_->rowOf(ev.mem);
                if (r >= 0)
                    curInterp_ = r;
            }
            row = curInterp_;
            if (row >= 0)
                lastRunning_ = row;
            break;
          case Phase::Translate:
            if (isMemory(ev.kind)) {
                const int r = map_->rowOf(ev.mem);
                if (r >= 0)
                    curTranslate_ = r;
            }
            row = curTranslate_;
            break;
          case Phase::Runtime:
            row = lastRunning_;
            break;
          case Phase::Gc:
            // Collector work belongs to no method: the mutator it
            // interrupted did not ask for it.
            row = -1;
            break;
        }
        return row;
    }

  private:
    const MethodMap *map_;
    int curInterp_ = -1;     ///< method of the last bytecode fetch
    int curTranslate_ = -1;  ///< method the translator last touched
    int lastRunning_ = -1;   ///< last interp/native attribution
};

/** One row of an attribution report. */
struct AttributedMethod {
    std::string name;
    std::uint64_t events = 0;
    /** Share of the phase's total events, in percent. */
    double pct = 0.0;
};

/** Offline joining sink; see file comment. */
class AttributionSink : public TraceSink {
  public:
    /** @p map must outlive the sink. */
    explicit AttributionSink(const MethodMap &map);

    void onEvent(const TraceEvent &ev) override;

    /** Total events observed. */
    std::uint64_t totalEvents() const { return total_; }

    /** Events observed in @p phase. */
    std::uint64_t phaseEvents(Phase phase) const {
        return phaseTotals_[static_cast<std::size_t>(phase)];
    }

    /** Events in @p phase attributed to a real method. */
    std::uint64_t attributed(Phase phase) const;

    /**
     * Top @p n methods of @p phase by event count, descending
     * (ties broken by name for deterministic output). The
     * "(unattributed)" bucket is included when it is non-zero.
     */
    std::vector<AttributedMethod> top(Phase phase,
                                      std::size_t n) const;

    /** Render top(phase, n) as a table: rank, method, events, pct. */
    Table phaseTable(Phase phase, std::size_t n) const;

  private:
    const MethodMap *map_;
    MethodContext ctx_;
    /** Per row (rows() entries + trailing unattributed bucket). */
    std::vector<std::uint64_t> counts_;  ///< row-major [row][phase]
    std::uint64_t phaseTotals_[kNumPhases] = {};
    std::uint64_t total_ = 0;
};

} // namespace jrs::obs

#endif // JRS_OBS_ATTRIBUTION_H
