#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "vm/runtime/vm_error.h"

namespace jrs::obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // snprintf honors LC_NUMERIC; a ',' decimal separator would be
    // invalid JSON, so normalize it (see header).
    for (char *p = buf; *p != '\0'; ++p) {
        if (*p == ',')
            *p = '.';
    }
    return buf;
}

JsonParser::JsonParser(const std::string &text, std::string what)
    : s_(text), what_(std::move(what))
{
}

JsonParser::Value
JsonParser::parse()
{
    const Value v = value();
    ws();
    if (pos_ != s_.size())
        fail("trailing content");
    return v;
}

void
JsonParser::fail(const std::string &why) const
{
    throw VmError(what_ + " parse error at byte " +
                  std::to_string(pos_) + ": " + why);
}

void
JsonParser::ws()
{
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
}

char
JsonParser::peek()
{
    ws();
    if (pos_ >= s_.size())
        fail("unexpected end");
    return s_[pos_];
}

void
JsonParser::expect(char c)
{
    if (peek() != c)
        fail(std::string("expected '") + c + "'");
    ++pos_;
}

bool
JsonParser::consume(char c)
{
    if (pos_ < s_.size() && peek() == c) {
        ++pos_;
        return true;
    }
    return false;
}

std::string
JsonParser::string()
{
    expect('"');
    std::string out;
    while (true) {
        if (pos_ >= s_.size())
            fail("unterminated string");
        const char c = s_[pos_++];
        if (c == '"')
            return out;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (pos_ >= s_.size())
            fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size())
                fail("bad \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::stoul(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            // ASCII subset only — all the jrs writers emit.
            out += static_cast<char>(code & 0x7f);
            break;
          }
          default:
            fail("bad escape");
        }
    }
}

JsonParser::Value
JsonParser::value()
{
    const char c = peek();
    Value v;
    if (c == '{') {
        ++pos_;
        v.kind = Value::Object;
        if (!consume('}')) {
            while (true) {
                std::string name = string();
                expect(':');
                v.fields.emplace_back(std::move(name), value());
                if (consume(','))
                    continue;
                expect('}');
                break;
            }
        }
    } else if (c == '[') {
        ++pos_;
        v.kind = Value::Array;
        if (!consume(']')) {
            while (true) {
                v.items.push_back(value());
                if (consume(','))
                    continue;
                expect(']');
                break;
            }
        }
    } else if (c == '"') {
        v.kind = Value::String;
        v.str = string();
    } else if (c == 't') {
        literal("true");
        v.kind = Value::Bool;
        v.b = true;
    } else if (c == 'f') {
        literal("false");
        v.kind = Value::Bool;
    } else if (c == 'n') {
        literal("null");
    } else {
        v.kind = Value::Number;
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        try {
            v.num = std::stod(s_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("bad number");
        }
    }
    return v;
}

void
JsonParser::literal(const char *lit)
{
    for (const char *p = lit; *p != '\0'; ++p) {
        if (pos_ >= s_.size() || s_[pos_] != *p)
            fail(std::string("expected ") + lit);
        ++pos_;
    }
}

} // namespace jrs::obs
