/**
 * @file
 * Span tracer emitting Chrome trace-event JSON.
 *
 * A SpanTracer collects completed spans (name, category, wall-clock
 * start, duration, lane, string args) and renders them as the Chrome
 * trace-event format — the `{"traceEvents": [...]}` JSON that
 * Perfetto (https://ui.perfetto.dev) and chrome://tracing load
 * directly. Each OS thread gets its own *lane* (the trace's tid), so
 * a parallel sweep shows one timeline row per worker with record,
 * replay and extract spans overlapping across rows.
 *
 * Recording is a mutex-guarded append of a finished span; timestamps
 * come from steady_clock relative to the tracer's construction.
 * Instrumentation sites should use obs::ScopedSpan (obs.h), which is
 * a no-op while observability is disabled.
 */
#ifndef JRS_OBS_SPANS_H
#define JRS_OBS_SPANS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.h"

namespace jrs::obs {

/** One completed span. */
struct SpanRecord {
    std::string name;
    const char *cat = "jrs";     ///< category (static string)
    std::uint64_t startUs = 0;   ///< microseconds since tracer epoch
    std::uint64_t durUs = 0;
    std::uint32_t lane = 0;      ///< trace tid (one per OS thread)
    /** Rendered into the event's "args" object. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * One counter-track point ("ph":"C"): Perfetto renders successive
 * points of the same (name, lane) as a stacked area chart, one series
 * per value key. Used for simulation-time series (CPI stacks, miss
 * timelines), where @c ts carries simulated instructions rather than
 * wall-clock microseconds.
 */
struct CounterRecord {
    std::string name;
    std::uint64_t ts = 0;        ///< track position (simulated units)
    std::uint32_t lane = 0;
    std::vector<std::pair<std::string, double>> values;
};

/** See file comment. */
class SpanTracer {
  public:
    SpanTracer();
    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** Microseconds since this tracer was constructed. */
    std::uint64_t nowUs() const;

    /**
     * Lane id of the calling thread. Lanes are assigned process-wide
     * in first-use order (the main thread is usually lane 0).
     */
    static std::uint32_t currentLane();

    /** Label the calling thread's lane in the rendered trace. */
    void nameCurrentLane(const std::string &name);

    /** Append a completed span (thread-safe). */
    void record(SpanRecord span);

    /** Append a counter-track point (thread-safe). */
    void recordCounter(CounterRecord counter);

    /** Spans recorded so far. */
    std::size_t size() const;

    /** Counter points recorded so far. */
    std::size_t counterSize() const;

    /**
     * Render as Chrome trace-event JSON: thread_name metadata for
     * every named lane, one complete ("ph":"X") event per span, then
     * one counter ("ph":"C") event per counter point.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; throws VmError on I/O failure. */
    void writeJson(const std::string &path) const;

    /** Drop all spans and lane names (tests). */
    void clear();

  private:
    SteadyTime epoch_;  ///< all timestamps relative to this
    mutable std::mutex mu_;
    std::vector<SpanRecord> spans_;
    std::vector<CounterRecord> counters_;
    std::map<std::uint32_t, std::string> laneNames_;
};

} // namespace jrs::obs

#endif // JRS_OBS_SPANS_H
