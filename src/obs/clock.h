/**
 * @file
 * Shared monotonic-clock helpers.
 *
 * Every host-side measurement in the tree — sweep wall-clock totals,
 * span-tracer timestamps, HostStats sections — reads the same
 * steady_clock through these helpers, so elapsed-time math is written
 * exactly once. Simulated time never passes through here; that unit
 * is retired instructions (see arch/).
 */
#ifndef JRS_OBS_CLOCK_H
#define JRS_OBS_CLOCK_H

#include <chrono>
#include <cstdint>

namespace jrs::obs {

/** Monotonic timestamp type used by all host-side timing. */
using SteadyTime = std::chrono::steady_clock::time_point;

/** Current monotonic timestamp. */
inline SteadyTime
steadyNow()
{
    return std::chrono::steady_clock::now();
}

/** Seconds elapsed from @p t0 to @p t1. */
inline double
secondsBetween(SteadyTime t0, SteadyTime t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Seconds elapsed since @p t0. */
inline double
secondsSince(SteadyTime t0)
{
    return secondsBetween(t0, steadyNow());
}

/** Whole microseconds elapsed since @p t0 (span-tracer resolution). */
inline std::uint64_t
microsSince(SteadyTime t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            steadyNow() - t0)
            .count());
}

} // namespace jrs::obs

#endif // JRS_OBS_CLOCK_H
