/**
 * @file
 * Shared command-line plumbing for the observability output flags.
 *
 * Every tool that can emit observability artifacts spells the same
 * three flags the same way:
 *
 *   --metrics-json FILE   jrs-metrics-v1 registry snapshot
 *   --trace-json FILE     Chrome trace-event JSON (open in Perfetto)
 *   --perf-json FILE      jrs-perf-report-v1 attribution report
 *   --cct-json FILE       jrs-cct-v1 calling-context tree
 *   --flame FILE          folded stacks (flamegraph.pl / speedscope)
 *   --sample-json FILE    jrs-sample-v1 sampled profile
 *   --sample-period N     mean cycles between samples (default 4096)
 *   --sample-seed N       PRNG seed for the jittered sample gaps
 *
 * ObsCli centralizes the parse / enable / write-on-exit steps so the
 * flag set stays consistent across jrs_sweep, jrs_profile, jrs_perf
 * and the sweep-engine bench ports. Inside the argv loop:
 *
 *   if (cli.tryParse(a, next))
 *       continue;
 *
 * then cli.setup() before running, and cli.finish(std::cout) (plus
 * cli.writePerf(...) when the tool filled a PerfReportSet) on every
 * exit path after the run started.
 */
#ifndef JRS_OBS_CLI_H
#define JRS_OBS_CLI_H

#include <cstdlib>
#include <iostream>
#include <ostream>
#include <string>

#include "gc/config.h"
#include "obs/obs.h"
#include "obs/perf.h"
#include "prof/cct.h"
#include "prof/sampler.h"
#include "vm/jit/code_cache.h"
#include "vm/runtime/heap.h"

namespace jrs::obs {

/** See file comment. */
struct ObsCli {
    std::string metricsJson;  ///< --metrics-json output path
    std::string traceJson;    ///< --trace-json output path
    std::string perfJson;     ///< --perf-json output path
    std::string cctJson;      ///< --cct-json output path
    std::string flame;        ///< --flame output path
    std::string sampleJson;   ///< --sample-json output path
    std::uint64_t samplePeriod = 0;  ///< --sample-period (0 = default)
    std::uint64_t sampleSeed = 1;    ///< --sample-seed

    /** Usage-string fragment for the flags handled here. */
    static const char *usageText() {
        return " [--metrics-json FILE] [--trace-json FILE]"
               " [--perf-json FILE] [--cct-json FILE] [--flame FILE]"
               " [--sample-json FILE] [--sample-period N]"
               " [--sample-seed N]";
    }

    /** Parse a decimal count; exits 2 on anything else. */
    static std::uint64_t parseCount(const std::string &v,
                                    const char *what) {
        char *end = nullptr;
        const unsigned long long n =
            std::strtoull(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0') {
            std::cerr << "error: " << what
                      << " expects a decimal count, got '" << v
                      << "'\n";
            std::exit(2);
        }
        return n;
    }

    /**
     * Consume @p a when it is one of the flags above. @p next must
     * yield the flag's value, advancing the caller's argv cursor (and
     * erroring out itself when the value is missing).
     */
    template <class NextFn>
    bool tryParse(const std::string &a, NextFn &&next) {
        if (a == "--metrics-json") {
            metricsJson = next();
            return true;
        }
        if (a == "--trace-json") {
            traceJson = next();
            return true;
        }
        if (a == "--perf-json") {
            perfJson = next();
            return true;
        }
        if (a == "--cct-json") {
            cctJson = next();
            return true;
        }
        if (a == "--flame") {
            flame = next();
            return true;
        }
        if (a == "--sample-json") {
            sampleJson = next();
            return true;
        }
        if (a == "--sample-period") {
            samplePeriod = parseCount(next(), "--sample-period");
            return true;
        }
        if (a == "--sample-seed") {
            sampleSeed = parseCount(next(), "--sample-seed");
            return true;
        }
        return false;
    }

    /** True when the tool should collect an attribution report. */
    bool perfRequested() const { return !perfJson.empty(); }

    /** True when the tool should build calling-context trees. */
    bool cctRequested() const {
        return !cctJson.empty() || !flame.empty();
    }

    /** True when the tool should run a sampled profile. */
    bool sampleRequested() const {
        return !sampleJson.empty() || samplePeriod != 0;
    }

    /**
     * The sampling knobs the flags selected (cycle clock; a period of
     * 0 falls back to prof::kDefaultSamplePeriod so `--sample-json`
     * alone works).
     */
    prof::SampleOptions sampleOptions() const {
        prof::SampleOptions opt;
        opt.period = samplePeriod == 0 ? prof::kDefaultSamplePeriod
                                       : samplePeriod;
        opt.seed = sampleSeed;
        opt.cycleClock = true;
        return opt;
    }

    /**
     * Enable jrs::obs when registry or tracer output was requested.
     * (--perf-json alone does not need the global toggle: attribution
     * sinks collect unconditionally once attached.)
     */
    void setup() const {
        if (!metricsJson.empty() || !traceJson.empty())
            setEnabled(true);
    }

    /**
     * Write the registry/tracer files that were requested. Call on
     * every exit path after the run, so a partial run still leaves
     * its artifacts behind for diagnosis.
     */
    void finish(std::ostream &out) const {
        if (!metricsJson.empty()) {
            metrics().writeJson(metricsJson);
            out << "wrote " << metricsJson << '\n';
        }
        if (!traceJson.empty()) {
            tracer().writeJson(traceJson);
            out << "wrote " << traceJson << '\n';
        }
    }

    /** Write @p set to the --perf-json path (no-op when not given). */
    void writePerf(const PerfReportSet &set, std::ostream &out) const {
        if (perfJson.empty())
            return;
        set.writeJson(perfJson);
        out << "wrote " << perfJson << '\n';
    }

    /** Write @p set to the --cct-json/--flame paths requested. */
    void writeCct(const prof::CctReportSet &set,
                  std::ostream &out) const {
        if (!cctJson.empty()) {
            set.writeJson(cctJson);
            out << "wrote " << cctJson << '\n';
        }
        if (!flame.empty()) {
            set.writeFolded(flame);
            out << "wrote " << flame << '\n';
        }
    }

    /** Write @p set to the --sample-json path (no-op when not given). */
    void writeSample(const prof::SampleReportSet &set,
                     std::ostream &out) const {
        if (sampleJson.empty())
            return;
        set.writeJson(sampleJson);
        out << "wrote " << sampleJson << '\n';
    }
};

/**
 * Shared command-line plumbing for the collector flags, in the same
 * style as ObsCli:
 *
 *   --collector NAME   nogc (default) | marksweep | copying
 *   --heap-bytes N     heap arena capacity (accepts k/m/g suffix)
 *   --gc-budget N      collect after N bytes allocated since last GC
 *   --gc-every N       collect every N allocations (stress knob)
 *
 * Unknown collector names and malformed sizes are command-line
 * errors: the helper prints a message and exits 2 (never throws), so
 * scripts can distinguish usage errors from run failures.
 */
struct GcCli {
    gc::GcOptions gc;                          ///< --collector/--gc-*
    std::size_t heapBytes = kDefaultHeapBytes; ///< --heap-bytes

    /** Usage-string fragment for the flags handled here. */
    static const char *usageText() {
        return " [--collector nogc|marksweep|copying]"
               " [--heap-bytes N] [--gc-budget N] [--gc-every N]";
    }

    /** True when any collector was selected. */
    bool enabled() const {
        return gc.collector != gc::CollectorKind::None;
    }

    /** Apply the parsed flags to an engine configuration. */
    template <class Config>
    void apply(Config &cfg) const {
        cfg.gc = gc;
        cfg.heapBytes = heapBytes;
    }

    /**
     * Parse "N", "Nk", "Nm" or "Ng" (binary multiples); exits 2 on
     * anything else.
     */
    static std::size_t parseSize(const std::string &v,
                                 const char *what) {
        char *end = nullptr;
        const unsigned long long n =
            std::strtoull(v.c_str(), &end, 10);
        std::size_t shift = 0;
        if (end != v.c_str() && *end != '\0') {
            switch (*end) {
              case 'k': case 'K': shift = 10; ++end; break;
              case 'm': case 'M': shift = 20; ++end; break;
              case 'g': case 'G': shift = 30; ++end; break;
              default: break;
            }
        }
        if (end == v.c_str() || *end != '\0') {
            std::cerr << "error: " << what
                      << " expects a byte count (optionally with a"
                         " k/m/g suffix), got '" << v << "'\n";
            std::exit(2);
        }
        return static_cast<std::size_t>(n) << shift;
    }

    /**
     * Consume @p a when it is one of the flags above; same contract
     * as ObsCli::tryParse.
     */
    template <class NextFn>
    bool tryParse(const std::string &a, NextFn &&next) {
        if (a == "--collector") {
            const std::string v = next();
            if (!gc::parseCollector(v, &gc.collector)) {
                std::cerr << "error: unknown --collector '" << v
                          << "' (expect nogc, marksweep or "
                             "copying)\n";
                std::exit(2);
            }
            return true;
        }
        if (a == "--heap-bytes") {
            heapBytes = parseSize(next(), "--heap-bytes");
            return true;
        }
        if (a == "--gc-budget") {
            gc.budgetBytes = parseSize(next(), "--gc-budget");
            return true;
        }
        if (a == "--gc-every") {
            gc.everyNAllocs = static_cast<std::uint64_t>(
                parseSize(next(), "--gc-every"));
            return true;
        }
        return false;
    }
};

/**
 * Shared command-line plumbing for the managed code cache, in the
 * same style as GcCli:
 *
 *   --code-cache-bytes N     capacity (k/m/g suffix; 0 = unlimited)
 *   --code-cache-policy P    fifo (default) | lru | cost | costpb
 *   --code-cache-alloc S     first (default) | best extent placement
 *   --osr-back-edges N       OSR back-edge threshold (0 = off)
 *   --shared-code-cache      process-wide shared translation cache
 *
 * Unknown policy/strategy names and malformed sizes print a message
 * and exit 2 (never throw), matching the GcCli error contract.
 */
struct CodeCacheCli {
    CodeCacheConfig codeCache;  ///< --code-cache-bytes/-policy/-alloc
    std::uint64_t osrBackEdgeThreshold = 0;  ///< --osr-back-edges
    bool sharedCodeCache = false;            ///< --shared-code-cache

    /** Usage-string fragment for the flags handled here. */
    static const char *usageText() {
        return " [--code-cache-bytes N]"
               " [--code-cache-policy fifo|lru|cost|costpb]"
               " [--code-cache-alloc first|best]"
               " [--osr-back-edges N] [--shared-code-cache]";
    }

    /** True when a bound was set (the policy alone changes nothing). */
    bool bounded() const { return codeCache.capacityBytes != 0; }

    /** Apply the parsed flags to an engine configuration. */
    template <class Config>
    void apply(Config &cfg) const {
        cfg.codeCache = codeCache;
        cfg.osrBackEdgeThreshold = osrBackEdgeThreshold;
    }

    /**
     * Consume @p a when it is one of the flags above; same contract
     * as ObsCli::tryParse.
     */
    template <class NextFn>
    bool tryParse(const std::string &a, NextFn &&next) {
        if (a == "--code-cache-bytes") {
            codeCache.capacityBytes =
                GcCli::parseSize(next(), "--code-cache-bytes");
            return true;
        }
        if (a == "--code-cache-policy") {
            const std::string v = next();
            if (!parseEvictionPolicy(v, &codeCache.policy)) {
                std::cerr << "error: unknown --code-cache-policy '"
                          << v
                          << "' (expect fifo, lru, cost or costpb)\n";
                std::exit(2);
            }
            return true;
        }
        if (a == "--code-cache-alloc") {
            const std::string v = next();
            if (!parseAllocStrategy(v, &codeCache.strategy)) {
                std::cerr << "error: unknown --code-cache-alloc '"
                          << v << "' (expect first or best)\n";
                std::exit(2);
            }
            return true;
        }
        if (a == "--osr-back-edges") {
            osrBackEdgeThreshold = static_cast<std::uint64_t>(
                GcCli::parseSize(next(), "--osr-back-edges"));
            return true;
        }
        if (a == "--shared-code-cache") {
            sharedCodeCache = true;
            return true;
        }
        return false;
    }
};

} // namespace jrs::obs

#endif // JRS_OBS_CLI_H
