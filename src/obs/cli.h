/**
 * @file
 * Shared command-line plumbing for the observability output flags.
 *
 * Every tool that can emit observability artifacts spells the same
 * three flags the same way:
 *
 *   --metrics-json FILE   jrs-metrics-v1 registry snapshot
 *   --trace-json FILE     Chrome trace-event JSON (open in Perfetto)
 *   --perf-json FILE      jrs-perf-report-v1 attribution report
 *
 * ObsCli centralizes the parse / enable / write-on-exit steps so the
 * flag set stays consistent across jrs_sweep, jrs_profile, jrs_perf
 * and the sweep-engine bench ports. Inside the argv loop:
 *
 *   if (cli.tryParse(a, next))
 *       continue;
 *
 * then cli.setup() before running, and cli.finish(std::cout) (plus
 * cli.writePerf(...) when the tool filled a PerfReportSet) on every
 * exit path after the run started.
 */
#ifndef JRS_OBS_CLI_H
#define JRS_OBS_CLI_H

#include <ostream>
#include <string>

#include "obs/obs.h"
#include "obs/perf.h"

namespace jrs::obs {

/** See file comment. */
struct ObsCli {
    std::string metricsJson;  ///< --metrics-json output path
    std::string traceJson;    ///< --trace-json output path
    std::string perfJson;     ///< --perf-json output path

    /** Usage-string fragment for the flags handled here. */
    static const char *usageText() {
        return " [--metrics-json FILE] [--trace-json FILE]"
               " [--perf-json FILE]";
    }

    /**
     * Consume @p a when it is one of the flags above. @p next must
     * yield the flag's value, advancing the caller's argv cursor (and
     * erroring out itself when the value is missing).
     */
    template <class NextFn>
    bool tryParse(const std::string &a, NextFn &&next) {
        if (a == "--metrics-json") {
            metricsJson = next();
            return true;
        }
        if (a == "--trace-json") {
            traceJson = next();
            return true;
        }
        if (a == "--perf-json") {
            perfJson = next();
            return true;
        }
        return false;
    }

    /** True when the tool should collect an attribution report. */
    bool perfRequested() const { return !perfJson.empty(); }

    /**
     * Enable jrs::obs when registry or tracer output was requested.
     * (--perf-json alone does not need the global toggle: attribution
     * sinks collect unconditionally once attached.)
     */
    void setup() const {
        if (!metricsJson.empty() || !traceJson.empty())
            setEnabled(true);
    }

    /**
     * Write the registry/tracer files that were requested. Call on
     * every exit path after the run, so a partial run still leaves
     * its artifacts behind for diagnosis.
     */
    void finish(std::ostream &out) const {
        if (!metricsJson.empty()) {
            metrics().writeJson(metricsJson);
            out << "wrote " << metricsJson << '\n';
        }
        if (!traceJson.empty()) {
            tracer().writeJson(traceJson);
            out << "wrote " << traceJson << '\n';
        }
    }

    /** Write @p set to the --perf-json path (no-op when not given). */
    void writePerf(const PerfReportSet &set, std::ostream &out) const {
        if (perfJson.empty())
            return;
        set.writeJson(perfJson);
        out << "wrote " << perfJson << '\n';
    }
};

} // namespace jrs::obs

#endif // JRS_OBS_CLI_H
