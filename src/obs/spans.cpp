#include "obs/spans.h"

#include <atomic>
#include <cstdio>

#include "obs/clock.h"
#include "obs/json.h"
#include "vm/runtime/vm_error.h"

namespace jrs::obs {

SpanTracer::SpanTracer()
    : epoch_(steadyNow())
{
}

std::uint64_t
SpanTracer::nowUs() const
{
    return microsSince(epoch_);
}

std::uint32_t
SpanTracer::currentLane()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t lane =
        next.fetch_add(1, std::memory_order_relaxed);
    return lane;
}

void
SpanTracer::nameCurrentLane(const std::string &name)
{
    const std::uint32_t lane = currentLane();
    std::lock_guard<std::mutex> lock(mu_);
    laneNames_[lane] = name;
}

void
SpanTracer::record(SpanRecord span)
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(span));
}

void
SpanTracer::recordCounter(CounterRecord counter)
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.push_back(std::move(counter));
}

std::size_t
SpanTracer::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

std::size_t
SpanTracer::counterSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size();
}

std::string
SpanTracer::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    out += "{\n\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&]() {
        out += first ? "" : ",\n";
        first = false;
    };
    sep();
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": 0, \"args\": {\"name\": \"jrs\"}}";
    for (const auto &[lane, name] : laneNames_) {
        sep();
        out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"tid\": "
            + std::to_string(lane) + ", \"args\": {\"name\": \""
            + jsonEscape(name) + "\"}}";
    }
    for (const SpanRecord &s : spans_) {
        sep();
        out += "{\"name\": \"" + jsonEscape(s.name) + "\", \"cat\": \""
            + jsonEscape(s.cat) + "\", \"ph\": \"X\", \"ts\": "
            + std::to_string(s.startUs) + ", \"dur\": "
            + std::to_string(s.durUs) + ", \"pid\": 1, \"tid\": "
            + std::to_string(s.lane) + ", \"args\": {";
        for (std::size_t a = 0; a < s.args.size(); ++a) {
            if (a != 0)
                out += ", ";
            out += "\"" + jsonEscape(s.args[a].first) + "\": \""
                + jsonEscape(s.args[a].second) + "\"";
        }
        out += "}}";
    }
    for (const CounterRecord &c : counters_) {
        sep();
        out += "{\"name\": \"" + jsonEscape(c.name)
            + "\", \"ph\": \"C\", \"ts\": " + std::to_string(c.ts)
            + ", \"pid\": 1, \"tid\": " + std::to_string(c.lane)
            + ", \"args\": {";
        for (std::size_t a = 0; a < c.values.size(); ++a) {
            if (a != 0)
                out += ", ";
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g",
                          c.values[a].second);
            out += "\"" + jsonEscape(c.values[a].first) + "\": "
                + buf;
        }
        out += "}}";
    }
    out += "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
    return out;
}

void
SpanTracer::writeJson(const std::string &path) const
{
    const std::string body = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw VmError("cannot write trace JSON: " + path);
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (std::fclose(f) != 0 || !ok)
        throw VmError("cannot write trace JSON: " + path);
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    counters_.clear();
    laneNames_.clear();
}

} // namespace jrs::obs
