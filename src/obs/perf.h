/**
 * @file
 * Per-event microarchitectural attribution: CPI stacks, miss and
 * mispredict profiles, and interval timelines.
 *
 * The architecture models report aggregate numbers; obs/attribution.h
 * says which *method* each instruction belonged to. This pass joins
 * the two: a PerfAttribution subscribes to a model's OutcomeListener
 * stream (arch/outcome.h) while also observing the TraceEvent stream,
 * and folds every cache hit/miss, branch/indirect prediction and
 * retired-instruction CPI sample into
 *
 *  - per-method tables (method rows from a MethodMap, plus the
 *    "(unattributed)" bucket),
 *  - per-opcode and per-bytecode-site tables (when given the Program:
 *    the interpreter's dispatch fetch — the Load at kDispatchPc — is
 *    decoded back to the opcode it fetched, and every Interpret-phase
 *    event until the next dispatch belongs to that bytecode), and
 *  - an IntervalTimeline: fixed windows of N trace events with their
 *    miss/mispredict counts and CPI-stack slices, the Figure 6 curve
 *    generalized to every event kind.
 *
 * Ordering contract: the attribution must observe each TraceEvent
 * *before* the model processes it, so the outcomes the model fires
 * mid-access land in the context (method, opcode, window) of that
 * event. The AttributedPipeline / AttributedCaches composites wire
 * this up; use them rather than a plain MultiSink (whose delivery
 * order would also work front-to-back, but the composites also own
 * the listener hookup).
 *
 * Conservation (tested in tests/test_perf.cpp): per-method access
 * counts sum to the model's aggregate stats bit-for-bit, and
 * per-method CPI components sum exactly to PipelineSim::cycles().
 *
 * Reports render as tables (report/annotate views), as one stable
 * JSON document (schema "jrs-perf-report-v1", see DESIGN.md), and as
 * Perfetto counter tracks via SpanTracer::recordCounter.
 */
#ifndef JRS_OBS_PERF_H
#define JRS_OBS_PERF_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/cache/cache.h"
#include "arch/outcome.h"
#include "arch/pipeline/pipeline.h"
#include "obs/attribution.h"
#include "obs/spans.h"
#include "support/table.h"
#include "vm/bytecode/class_def.h"
#include "vm/bytecode/opcode.h"

namespace jrs::obs {

/** Accumulated microarchitectural stats for one attribution bucket. */
struct PerfCell {
    std::uint64_t insts = 0;  ///< trace events in this bucket
    std::uint64_t access[kNumPerfKinds] = {};
    std::uint64_t bad[kNumPerfKinds] = {};      ///< misses/mispredicts
    std::uint64_t penalty[kNumPerfKinds] = {};  ///< cycles charged
    std::uint64_t cpi[kNumCpiComponents] = {};  ///< CPI-stack cycles

    /** Total cycles attributed here (sum of the CPI stack). */
    std::uint64_t cycles() const {
        std::uint64_t t = 0;
        for (const std::uint64_t c : cpi)
            t += c;
        return t;
    }

    /** Miss/mispredict rate for @p k (0 when never accessed). */
    double badRate(PerfKind k) const {
        const auto i = static_cast<std::size_t>(k);
        return access[i] == 0
            ? 0.0
            : static_cast<double>(bad[i])
                / static_cast<double>(access[i]);
    }

    void merge(const PerfCell &o);
};

/** One timeline window (a generalized Figure 6 sample). */
struct IntervalSample {
    std::uint64_t events = 0;  ///< trace events in this window
    std::uint64_t access[kNumPerfKinds] = {};
    std::uint64_t bad[kNumPerfKinds] = {};
    std::uint64_t translateEvents = 0;
    std::uint64_t cpi[kNumCpiComponents] = {};

    std::uint64_t cycles() const {
        std::uint64_t t = 0;
        for (const std::uint64_t c : cpi)
            t += c;
        return t;
    }
};

/** Knobs for a PerfAttribution pass. */
struct PerfOptions {
    /** Timeline window in trace events; 0 disables the timeline. */
    std::uint64_t timelineWindow = 0;
    /**
     * Program of the traced run; enables the per-opcode and
     * per-bytecode-site views. Must outlive the sink. Null skips
     * those views (method tables and timeline still work).
     */
    const Program *program = nullptr;
};

/** See file comment. */
class PerfAttribution : public TraceSink, public OutcomeListener {
  public:
    using Options = PerfOptions;

    /** @p map must outlive the sink. */
    explicit PerfAttribution(const MethodMap &map, Options opt = {});

    // --- TraceSink (subscribe *before* the model; see file comment)
    void onEvent(const TraceEvent &ev) override;
    void onFinish() override;

    // --- OutcomeListener (wired to the model)
    void onOutcome(const Outcome &o) override;
    void onRetire(const CpiSample &s) override;

    /** Trace events observed. */
    std::uint64_t totalEvents() const { return events_; }

    /** Whole-run totals (every bucket summed). */
    const PerfCell &totals() const { return totals_; }

    const MethodMap &map() const { return *map_; }

    /** Cell of method @p row; row == map().rows() is unattributed. */
    const PerfCell &methodCell(std::size_t row) const {
        return methodCells_[row];
    }

    /**
     * Cell of execution phase @p p. Phase cells partition the stream
     * exactly (every event has one phase), so summing them reproduces
     * totals() bit-for-bit — this is what separates mutator cycles
     * from Phase::Gc collector cycles in one conserved CPI stack.
     */
    const PerfCell &phaseCell(Phase p) const {
        return phaseCells_[static_cast<std::size_t>(p)];
    }

    /** One row per non-empty phase, hot-first: mutator vs collector. */
    Table phaseTable() const;

    /** True when a Program was supplied (opcode views available). */
    bool hasOpcodes() const { return opt_.program != nullptr; }

    /** Cell of @p op (Interpret-phase events only). */
    const PerfCell &opcodeCell(Op op) const {
        return opCells_[static_cast<std::size_t>(op)];
    }

    const std::vector<IntervalSample> &timeline() const {
        return timeline_;
    }
    std::uint64_t timelineWindow() const {
        return opt_.timelineWindow;
    }

    /** Top @p n methods by cycles (then events): the `report` view. */
    Table methodTable(std::size_t n) const;

    /** Top @p n opcodes by events (requires a Program). */
    Table opcodeTable(std::size_t n) const;

    /**
     * Per-bytecode-site view of @p methodName: one row per executed
     * bytecode offset (requires a Program). The `annotate` view.
     */
    Table annotateTable(const std::string &methodName) const;

    /**
     * One run object of the "jrs-perf-report-v1" document, indented
     * for nesting under "runs". Deterministic field and row order.
     */
    std::string runJson(const std::string &label) const;

    /**
     * Emit the timeline as Perfetto counter tracks named
     * "<prefix>.misses", "<prefix>.mispredicts" and "<prefix>.cpi"
     * on the calling thread's lane; ts is the window's starting
     * trace-event index (simulated time, not wall-clock).
     */
    void emitCounterTracks(SpanTracer &tracer,
                           const std::string &prefix) const;

  private:
    struct SiteCell {
        Op op = static_cast<Op>(0);
        PerfCell cell;
    };

    void flushWindow();
    const Method *methodAtBytecode(SimAddr addr) const;

    const MethodMap *map_;
    Options opt_;
    MethodContext ctx_;

    std::uint64_t events_ = 0;
    PerfCell totals_;
    /** rows() cells + trailing unattributed bucket. */
    std::vector<PerfCell> methodCells_;
    std::size_t curSlot_;  ///< bucket of the current trace event
    PerfCell phaseCells_[kNumPhases];
    std::size_t curPhase_ = 0;  ///< phase of the current trace event

    // Opcode/site context (Program-backed; empty when no program).
    struct BytecodeRange {
        SimAddr lo;
        SimAddr hi;
        const Method *method;
    };
    std::vector<BytecodeRange> bytecodeRanges_;  ///< sorted by lo
    std::vector<PerfCell> opCells_;
    /** (method row << 32 | bytecode offset) -> site stats. */
    std::map<std::uint64_t, SiteCell> siteCells_;
    int curOp_ = -1;       ///< opcode being interpreted, -1 unknown
    std::uint64_t curSite_ = 0;
    bool curInterp_ = false;  ///< current event is Interpret-phase

    // Timeline state.
    std::uint64_t inWindow_ = 0;
    IntervalSample cur_;
    std::vector<IntervalSample> timeline_;
};

/**
 * Self-contained sweep/bench sink: a PipelineSim observed by a
 * PerfAttribution, with the ordering contract wired up. The MethodMap
 * is shared so the composite can outlive the run that built it
 * (sweep replay).
 */
class AttributedPipeline : public TraceSink {
  public:
    AttributedPipeline(PipelineConfig cfg,
                       std::shared_ptr<const MethodMap> map,
                       PerfAttribution::Options opt = {})
        : map_(std::move(map)), pipe_(cfg), perf_(*map_, opt)
    {
        pipe_.setListener(&perf_);
    }

    void onEvent(const TraceEvent &ev) override {
        perf_.onEvent(ev);
        pipe_.onEvent(ev);
    }
    void onFinish() override { perf_.onFinish(); }

    PipelineSim &pipeline() { return pipe_; }
    const PipelineSim &pipeline() const { return pipe_; }
    PerfAttribution &perf() { return perf_; }
    const PerfAttribution &perf() const { return perf_; }

  private:
    std::shared_ptr<const MethodMap> map_;
    PipelineSim pipe_;
    PerfAttribution perf_;
};

/** As AttributedPipeline, for a bare split L1 (no pipeline model). */
class AttributedCaches : public TraceSink {
  public:
    AttributedCaches(CacheConfig icfg, CacheConfig dcfg,
                     std::shared_ptr<const MethodMap> map,
                     PerfAttribution::Options opt = {})
        : map_(std::move(map)), caches_(icfg, dcfg), perf_(*map_, opt)
    {
        caches_.setListener(&perf_);
    }

    void onEvent(const TraceEvent &ev) override {
        perf_.onEvent(ev);
        caches_.onEvent(ev);
    }
    void onFinish() override { perf_.onFinish(); }

    CacheSink &caches() { return caches_; }
    const CacheSink &caches() const { return caches_; }
    PerfAttribution &perf() { return perf_; }
    const PerfAttribution &perf() const { return perf_; }

  private:
    std::shared_ptr<const MethodMap> map_;
    CacheSink caches_;
    PerfAttribution perf_;
};

/**
 * Thread-safe collection of labeled run reports, rendered as one
 * "jrs-perf-report-v1" document. Runs are sorted by label so the
 * output is stable regardless of which sweep worker finished first.
 */
class PerfReportSet {
  public:
    /**
     * Snapshot @p perf's report under @p label. Re-adding a label
     * replaces its snapshot (replay is bit-identical, so re-observing
     * a stream must not duplicate entries).
     */
    void add(const std::string &label, const PerfAttribution &perf);

    std::size_t size() const;

    /** The full document. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws VmError on I/O failure. */
    void writeJson(const std::string &path) const;

  private:
    mutable std::mutex mu_;
    std::vector<std::pair<std::string, std::string>> runs_;
};

} // namespace jrs::obs

#endif // JRS_OBS_PERF_H
