/**
 * @file
 * Fuzz campaigns: many generator seeds through the differential
 * runner, in parallel, with per-seed fault isolation.
 *
 * Each seed is one independent task on the sweep worker pool
 * (sweep/parallel.h). A seed can fail three ways, and each is caught
 * per-seed so one failure never takes down the campaign:
 *
 *   divergence  the modes disagree — a minimized repro is attached
 *   generator   the generated program failed assembly/verification
 *               (a progen bug, not a VM bug)
 *   vm          the VM itself threw while running the program
 *
 * Campaigns are fully deterministic: seed list is seedBase..+numSeeds,
 * each program depends only on its seed, so any failure reproduces
 * standalone with `jrs_check fuzz --seeds 1 --seed-base <seed>`.
 */
#ifndef JRS_CHECK_FUZZ_H
#define JRS_CHECK_FUZZ_H

#include <cstdint>
#include <string>
#include <vector>

#include "check/progen.h"

namespace jrs::check {

/** Campaign parameters. */
struct FuzzOptions {
    std::uint64_t seedBase = 1;
    std::uint32_t numSeeds = 100;
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Entry-method argument fed to every program. */
    std::int32_t arg = 7;
    GenOptions gen;
};

/** One failed seed. */
struct FuzzFailure {
    std::uint64_t seed = 0;
    std::string kind;    ///< "divergence" / "generator" / "vm"
    std::string detail;  ///< repro text or exception message
};

/** Campaign outcome. */
struct FuzzReport {
    std::uint32_t seedsRun = 0;
    std::vector<FuzzFailure> failures;  ///< sorted by seed

    bool ok() const { return failures.empty(); }

    /** Human-readable campaign summary (always non-empty). */
    std::string summary() const;
};

/** Run the campaign; never throws for per-seed failures. */
FuzzReport runFuzzCampaign(const FuzzOptions &opts);

} // namespace jrs::check

#endif // JRS_CHECK_FUZZ_H
