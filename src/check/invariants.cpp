#include "check/invariants.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>

#include "isa/address_map.h"
#include "isa/trace_io.h"
#include "vm/runtime/vm_error.h"

namespace jrs::check {

namespace {

bool
legalMemSegment(SimAddr a)
{
    // Data-bearing regions: Java heap/stacks/class data, the two
    // runtime-system data arenas, plus the three code regions that are
    // legitimately accessed as data (code-cache installs, interpreter
    // jump tables, translator rodata).
    return inSegment(a, seg::kHeap) || inSegment(a, seg::kStacks)
        || inSegment(a, seg::kClassData)
        || inSegment(a, seg::kTranslateData)
        || inSegment(a, seg::kRuntimeData)
        || inSegment(a, seg::kCodeCache)
        || inSegment(a, seg::kInterpCode)
        || inSegment(a, seg::kTranslateCode);
}

SimAddr
phaseHomeSegment(Phase p)
{
    switch (p) {
      case Phase::Interpret:  return seg::kInterpCode;
      case Phase::Translate:  return seg::kTranslateCode;
      case Phase::NativeExec: return seg::kCodeCache;
      case Phase::Runtime:    return seg::kRuntimeCode;
      case Phase::Gc:         return seg::kRuntimeCode;
    }
    return 0;
}

bool
legalReg(Reg r)
{
    return r < 32 || r == kNoReg;
}

std::string
hex(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

void
TraceInvariantChecker::flag(const std::string &what)
{
    ++violationCount_;
    if (violations_.size() < kMaxKept)
        violations_.push_back({events_, what});
}

void
TraceInvariantChecker::onEvent(const TraceEvent &ev)
{
    const auto phase_raw = static_cast<std::size_t>(ev.phase);
    const auto kind_raw = static_cast<std::size_t>(ev.kind);

    if (phase_raw >= kNumPhases)
        flag("illegal phase tag " + std::to_string(phase_raw));
    if (kind_raw >= kNumNKinds)
        flag("illegal kind tag " + std::to_string(kind_raw));
    if (phase_raw >= kNumPhases || kind_raw >= kNumNKinds) {
        ++events_;
        return;  // remaining checks dereference the tags
    }
    phase_[phase_raw] += 1;

    if (!inSegment(ev.pc, phaseHomeSegment(ev.phase))) {
        flag(std::string(phaseName(ev.phase)) + " event at pc "
             + hex(ev.pc) + " outside its home code segment");
    }

    // Generated code is fixed-width: a NativeExec pc off the 4-byte
    // grid (or outside the segment, caught above) is the signature of
    // a code-cache cursor-overflow or extent-reuse bug.
    if (ev.phase == Phase::NativeExec && (ev.pc & 3) != 0)
        flag("NativeExec pc " + hex(ev.pc) + " not 4-byte aligned");

    if (isMemory(ev.kind)) {
        if (ev.mem == 0)
            flag("memory event with null effective address");
        else if (!legalMemSegment(ev.mem))
            flag("memory access at " + hex(ev.mem)
                 + " outside every data-bearing region");
        else if (inSegment(ev.mem, seg::kCodeCache)
                 && (ev.mem & 3) != 0)
            flag("code-cache access at " + hex(ev.mem)
                 + " not 4-byte aligned");
        if (ev.memSize != 1 && ev.memSize != 2 && ev.memSize != 4
            && ev.memSize != 8) {
            flag("memory access size "
                 + std::to_string(static_cast<int>(ev.memSize)));
        }
    } else {
        if (ev.mem != 0)
            flag(std::string(nkindName(ev.kind))
                 + " carries effective address " + hex(ev.mem));
        if (ev.memSize != 0)
            flag(std::string(nkindName(ev.kind)) + " carries memSize "
                 + std::to_string(static_cast<int>(ev.memSize)));
    }

    if (isControl(ev.kind)) {
        if (ev.kind != NKind::Branch && !ev.taken)
            flag(std::string(nkindName(ev.kind))
                 + " marked not-taken (only Branch carries an outcome)");
        if (ev.kind != NKind::Branch && ev.kind != NKind::Ret
            && ev.target == 0)
            flag(std::string(nkindName(ev.kind)) + " with null target");
    } else {
        if (ev.taken)
            flag(std::string(nkindName(ev.kind)) + " marked taken");
        if (ev.target != 0)
            flag(std::string(nkindName(ev.kind)) + " carries target "
                 + hex(ev.target));
    }

    if (!legalReg(ev.rd) || !legalReg(ev.rs1) || !legalReg(ev.rs2))
        flag("register id out of range (not <32 and not kNoReg)");

    ++events_;
}

std::string
TraceInvariantChecker::report() const
{
    if (ok())
        return "";
    std::ostringstream os;
    os << violationCount_ << " invariant violation(s) in " << events_
       << " events";
    for (const Violation &v : violations_)
        os << "\n  event " << v.index << ": " << v.what;
    if (violationCount_ > violations_.size())
        os << "\n  ... (" << (violationCount_ - violations_.size())
           << " more suppressed)";
    return os.str();
}

std::string
checkRunConservation(const TraceInvariantChecker &checker,
                     const RunResult &result)
{
    std::ostringstream os;
    if (checker.eventCount() != result.totalEvents) {
        os << "stream has " << checker.eventCount()
           << " events, RunResult reports " << result.totalEvents
           << "\n";
    }
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const Phase phase = static_cast<Phase>(p);
        if (checker.inPhase(phase) != result.inPhase(phase)) {
            os << phaseName(phase) << ": stream "
               << checker.inPhase(phase) << " vs RunResult "
               << result.inPhase(phase) << "\n";
        }
    }
    return os.str();
}

std::string
checkProfileConservation(const RunResult &result)
{
    std::uint64_t charged = 0;
    std::uint64_t translate = 0;
    for (const MethodProfile &p : result.profiles.all()) {
        charged += p.interpEvents + p.nativeEvents + p.translateEvents;
        translate += p.translateEvents;
    }

    std::ostringstream os;
    if (translate != result.inPhase(Phase::Translate)) {
        os << "summed translateEvents " << translate
           << " != Translate-phase total "
           << result.inPhase(Phase::Translate) << "\n";
    }
    // Collector work is attributed to no method by design; it must be
    // exactly the Phase::Gc share of the stream.
    const std::uint64_t gc_events = result.inPhase(Phase::Gc);
    if (result.gcStats.gcEvents != gc_events) {
        os << "GcStats reports " << result.gcStats.gcEvents
           << " collector events but the Gc phase has " << gc_events
           << "\n";
    }
    if (charged + gc_events > result.totalEvents) {
        os << "profiles charge " << charged << " events (+" << gc_events
           << " GC) but the run had " << result.totalEvents << "\n";
    } else if (result.totalEvents - charged - gc_events
               > kMaxUnattributedEvents) {
        os << (result.totalEvents - charged - gc_events)
           << " events unattributed to any method profile (allowed: "
           << kMaxUnattributedEvents << " beyond the " << gc_events
           << " GC events)\n";
    }
    return os.str();
}

std::string
checkProfileAttribution(const TraceBuffer &trace, const obs::MethodMap &map,
                        const Program &prog, const RunResult &result,
                        std::uint64_t per_method_slack)
{
    // The offline join keys its interp/runtime context on the single
    // most recent method across *all* threads, so it is only exact for
    // single-threaded streams.
    if (result.threadsSpawned != 0)
        return "";

    obs::AttributionSink sink(map);
    trace.replay(sink);

    std::map<std::string, std::uint64_t> attributed;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        for (const obs::AttributedMethod &m :
             sink.top(static_cast<Phase>(p), map.rows() + 2)) {
            if (m.name != "(unattributed)")
                attributed[m.name] += m.events;
        }
    }

    std::map<std::string, std::uint64_t> profiled;
    std::map<std::string, std::uint64_t> invocations;
    for (const Method &m : prog.methods) {
        if (static_cast<std::size_t>(m.id) >= result.profiles.size())
            continue;
        const MethodProfile &p = result.profiles.of(m.id);
        profiled[m.name] +=
            p.interpEvents + p.nativeEvents + p.translateEvents;
        invocations[m.name] += p.invocations;
    }

    // The join is exact within a step but not across frame boundaries:
    // a synchronized callee's entry monitor-acquire fires before its
    // first bytecode fetch (attributing to the caller), and
    // return-value delivery lands on the returning method. Each call
    // crossing can shift a handful of events between the two adjacent
    // methods, so the tolerance scales with the method's own
    // invocation count plus a small fraction of its size (the caller
    // side absorbs its callees' crossings).
    std::uint64_t total_attr = 0;
    std::uint64_t total_prof = 0;
    std::ostringstream os;
    for (const auto &[name, want] : profiled) {
        const auto it = attributed.find(name);
        const std::uint64_t got = it == attributed.end() ? 0 : it->second;
        total_attr += got;
        total_prof += want;
        const std::uint64_t diff = got > want ? got - want : want - got;
        const std::uint64_t allowed =
            per_method_slack + 4 * invocations[name] + want / 64;
        if (diff > allowed) {
            os << name << ": profile charges " << want
               << ", trace attribution finds " << got << " (allowed "
               << allowed << ")\n";
        }
    }
    // Aggregate drift has no boundary excuse: both sides only exclude
    // small startup prefixes (the engine's entry frame setup, the
    // sink's events before any mapped access).
    const std::uint64_t agg_diff = total_attr > total_prof
        ? total_attr - total_prof
        : total_prof - total_attr;
    if (agg_diff > 128) {
        os << "aggregate: profiles charge " << total_prof
           << ", attribution finds " << total_attr << "\n";
    }
    for (const auto &[name, got] : attributed) {
        if (got != 0 && profiled.find(name) == profiled.end())
            os << name << ": " << got
               << " events attributed to a method with no profile row\n";
    }
    return os.str();
}

namespace {

/** Read a whole small text file; false when it cannot be opened. */
bool
slurp(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char buf[4096];
    std::size_t n;
    out->clear();
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out->append(buf, n);
    std::fclose(f);
    return true;
}

/**
 * Validate the `.meta` sidecar (format written by the sweep trace
 * cache: "key=<key>\nexit=<int>\nevents=<count>\n"). Returns "" on
 * success.
 */
std::string
lintMetaSidecar(const std::string &path, const std::string &expect_key,
                std::uint64_t expect_events)
{
    std::string text;
    if (!slurp(path, &text))
        return "missing .meta sidecar: " + path;

    char key[512] = {};
    int exit_value = 0;
    unsigned long long events = 0;
    if (std::sscanf(text.c_str(), "key=%511[^\n]\nexit=%d\nevents=%llu",
                    key, &exit_value, &events)
        != 3) {
        return "corrupt .meta sidecar (expected key=/exit=/events= "
               "lines): "
            + path;
    }
    if (!expect_key.empty() && expect_key != key) {
        return ".meta key \"" + std::string(key)
            + "\" does not match trace filename stem \"" + expect_key
            + "\"";
    }
    if (events != expect_events) {
        return ".meta records " + std::to_string(events)
            + " events but the stream holds "
            + std::to_string(expect_events);
    }
    return "";
}

/**
 * Validate the `.methods` sidecar ("<lo-hex> <hi-hex> <name>" lines).
 * Returns "" on success.
 */
std::string
lintMethodsSidecar(const std::string &path, std::uint64_t *ranges_out)
{
    std::string text;
    if (!slurp(path, &text))
        return "missing .methods sidecar: " + path;

    std::istringstream in(text);
    std::string line;
    std::uint64_t ranges = 0;
    std::uint64_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        unsigned long long lo = 0;
        unsigned long long hi = 0;
        char name[512] = {};
        if (std::sscanf(line.c_str(), "%llx %llx %511[^\n]", &lo, &hi,
                        name)
            != 3) {
            return "corrupt .methods sidecar at line "
                + std::to_string(lineno) + ": \"" + line + "\"";
        }
        if (lo >= hi) {
            return ".methods line " + std::to_string(lineno)
                + " has an empty or inverted range";
        }
        ++ranges;
    }
    *ranges_out = ranges;
    return "";
}

} // namespace

LintResult
lintTraceFile(const std::string &path, bool require_sidecars)
{
    LintResult out;

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        out.error = "cannot open " + path;
        return out;
    }

    std::uint8_t header[kTraceHeaderBytes];
    if (std::fread(header, 1, sizeof header, f) != sizeof header) {
        std::fclose(f);
        out.error = "file shorter than the JRSTRACE header";
        return out;
    }
    if (std::string err = checkTraceHeader(header); !err.empty()) {
        std::fclose(f);
        out.error = err;
        return out;
    }

    TraceInvariantChecker checker;
    std::uint8_t rec[kTraceRecordBytes];
    std::size_t n;
    while ((n = std::fread(rec, 1, sizeof rec, f)) == sizeof rec)
        checker.onEvent(decodeTraceRecord(rec));
    std::fclose(f);
    if (n != 0) {
        out.error = "truncated record at event "
            + std::to_string(checker.eventCount()) + " ("
            + std::to_string(n) + " trailing bytes)";
        return out;
    }

    out.events = checker.eventCount();
    if (!checker.ok()) {
        out.error = checker.report();
        return out;
    }
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        const Phase phase = static_cast<Phase>(p);
        if (checker.inPhase(phase) != 0) {
            out.notes.push_back(std::string(phaseName(phase)) + ": "
                                + std::to_string(checker.inPhase(phase))
                                + " events");
        }
    }

    if (require_sidecars) {
        // The cache names files "<key>.jrstrace"; the .meta key line
        // must round-trip to the same stem.
        std::string stem = std::filesystem::path(path).filename().string();
        if (const auto pos = stem.find(".jrstrace");
            pos != std::string::npos)
            stem.resize(pos);
        else
            stem.clear();

        if (std::string err =
                lintMetaSidecar(path + ".meta", stem, out.events);
            !err.empty()) {
            out.error = err;
            return out;
        }
        std::uint64_t ranges = 0;
        if (std::string err =
                lintMethodsSidecar(path + ".methods", &ranges);
            !err.empty()) {
            out.error = err;
            return out;
        }
        out.notes.push_back(".methods: " + std::to_string(ranges)
                            + " address ranges");
    }

    out.ok = true;
    return out;
}

std::vector<std::pair<std::string, LintResult>>
lintCacheDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    if (!fs::is_directory(dir))
        throw VmError("lintCacheDir: not a directory: " + dir);

    std::vector<std::pair<std::string, LintResult>> out;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.size() < 9
            || name.compare(name.size() - 9, 9, ".jrstrace") != 0)
            continue;
        out.emplace_back(name,
                         lintTraceFile(entry.path().string(), true));
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

} // namespace jrs::check
