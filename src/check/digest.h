/**
 * @file
 * VmStateDigest — the canonical end-of-run state summary jrs::check
 * compares across execution modes.
 *
 * The paper's methodology assumes the interpreter and the JIT compute
 * the same thing while emitting different native streams. The digest
 * pins down "the same thing":
 *
 *   - control outcome: completed / uncaught-exception identity
 *   - operand results: entry-method exit value + print-intrinsic output
 *   - heap contents: allocation count, bytes, and an FNV-1a hash over
 *     the allocated arena (the bump allocator is deterministic, so
 *     equivalent runs produce byte-identical arenas — this covers every
 *     live array element and object field)
 *   - guest exceptions: count plus an order-sensitive hash of every
 *     (exception class, faulting method, faulting bytecode pc) triple;
 *     native frames are mapped back through bc2n, so the triple is
 *     mode-independent
 *
 * Multi-threaded runs schedule threads by stepper quantum, and step
 * granularity differs between modes, so allocation order (heap
 * addresses) and throw order are interleaving-dependent there. For
 * runs that spawned threads only the portable subset (control outcome,
 * exit value, output) is compared.
 */
#ifndef JRS_CHECK_DIGEST_H
#define JRS_CHECK_DIGEST_H

#include <cstdint>
#include <string>

#include "vm/engine/engine.h"

namespace jrs::check {

/** Canonical end-of-run state; see file comment for field semantics. */
struct VmStateDigest {
    bool completed = false;
    std::string uncaught;      ///< uncaught-exception name, "" if none
    bool hasExitValue = false;
    std::int32_t exitValue = 0;
    std::string output;        ///< print-intrinsic output

    std::uint64_t heapAllocations = 0;
    std::uint64_t heapBytes = 0;
    std::uint64_t heapHash = 0;
    /**
     * Relocation-independent hash of the reachable heap
     * (gc/live_digest.h). Always captured; it replaces heapHash in
     * comparisons when either run had a collector enabled, because
     * collectors legitimately rewrite dead arena bytes (mark-sweep
     * fillers) or move objects (copying) without changing the live
     * graph.
     */
    std::uint64_t liveHeapHash = 0;
    /** True when the producing run had a collector enabled. */
    bool gcEnabled = false;

    std::uint64_t guestThrows = 0;
    std::uint64_t throwChainHash = 0;

    std::uint32_t threadsSpawned = 0;

    /** Full comparison (single-threaded runs). */
    bool operator==(const VmStateDigest &o) const;
    bool operator!=(const VmStateDigest &o) const { return !(*this == o); }

    /**
     * Comparison on the scheduling-independent subset; used when
     * either run spawned threads.
     */
    bool portableEquals(const VmStateDigest &o) const;

    /** One-line rendering for reports. */
    std::string str() const;
};

/**
 * Capture the digest of a finished run. The engine must be the one
 * that produced @p result (its heap is hashed in place).
 */
VmStateDigest captureDigest(ExecutionEngine &engine,
                            const RunResult &result);

/**
 * Field-by-field difference listing of two digests ("" when equal
 * under the comparison that applies to their thread counts).
 */
std::string describeDigestDiff(const std::string &name_a,
                               const VmStateDigest &a,
                               const std::string &name_b,
                               const VmStateDigest &b);

} // namespace jrs::check

#endif // JRS_CHECK_DIGEST_H
