/**
 * @file
 * DifferentialRunner — execute one program under several execution
 * modes and demand identical VmStateDigests.
 *
 * The modes pin down the three runtime organizations the paper
 * compares:
 *
 *   interp  pure interpretation (NeverCompilePolicy)
 *   jit     compile-on-first-invocation (AlwaysCompilePolicy)
 *   hybrid  counter-threshold tiering + OSR + interpreter dispatch
 *           folding — every mixed-mode mechanism at once
 *
 * JIT inlining is deliberately excluded from every mode: inlining
 * attributes an inlined callee's throws to the caller frame, which
 * legitimately changes the faulting-method component of the throw
 * chain hash. Everything else in the engine is required to be
 * semantics-preserving, and this runner is the enforcement.
 *
 * On a generated-program divergence the runner minimizes the failing
 * kernel set by bisecting the generator's entry mask (sound because
 * kernels are mask-independent) and renders a repro: seed, surviving
 * mask, digest diff, and a disassembly of the surviving kernels.
 */
#ifndef JRS_CHECK_DIFFERENTIAL_H
#define JRS_CHECK_DIFFERENTIAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "check/digest.h"
#include "check/progen.h"
#include "workloads/workload.h"

namespace jrs::check {

/** One execution configuration under test. */
enum class DiffMode : std::uint8_t { Interp, Jit, Hybrid };

/** "interp" / "jit" / "hybrid". */
const char *diffModeName(DiffMode mode);

/** The three modes, in comparison order (interp is the reference). */
const std::vector<DiffMode> &allDiffModes();

/**
 * Engine configuration for @p mode (no sink attached). @p gc and
 * @p heap_bytes select the collector configuration under test; the
 * defaults reproduce the historical GC-less behaviour exactly.
 */
EngineConfig makeDiffConfig(DiffMode mode,
                            const gc::GcOptions &gc = {},
                            std::size_t heap_bytes
                            = kDefaultHeapBytes);

/** Digest of one mode's run of @p prog. */
VmStateDigest runDigest(const Program &prog, DiffMode mode,
                        std::int32_t arg,
                        const gc::GcOptions &gc = {},
                        std::size_t heap_bytes
                        = kDefaultHeapBytes);

/** Outcome of one differential comparison. */
struct DiffResult {
    bool agreed = false;
    std::string report;  ///< divergence/repro text; "" when agreed
    VmStateDigest reference;  ///< the interp-mode digest
};

/** See file comment. */
class DifferentialRunner {
  public:
    /** Collector configuration applied to every mode (default: off). */
    gc::GcOptions gc;
    /** Heap capacity for every run. */
    std::size_t heapBytes = kDefaultHeapBytes;

    /**
     * Run @p prog under every mode and compare digests against the
     * interp reference. @p label names the program in reports.
     */
    DiffResult runProgram(const Program &prog, std::int32_t arg,
                          const std::string &label);

    /**
     * Differential-test the program of @p seed. On divergence the
     * report includes a mask-minimized repro.
     */
    DiffResult runSeed(std::uint64_t seed, const GenOptions &opts,
                       std::int32_t arg);

    /**
     * Differential-test one registered workload at @p arg
     * (0 = its tinyArg). Threaded workloads compare the portable
     * digest subset, per VmStateDigest.
     */
    DiffResult checkWorkload(const WorkloadInfo &info, std::int32_t arg);
};

} // namespace jrs::check

#endif // JRS_CHECK_DIFFERENTIAL_H
