#include "check/fuzz.h"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "check/differential.h"
#include "sweep/parallel.h"
#include "vm/bytecode/assembler.h"
#include "vm/bytecode/verifier.h"
#include "vm/runtime/vm_error.h"

namespace jrs::check {

std::string
FuzzReport::summary() const
{
    std::ostringstream os;
    os << seedsRun << " seeds, " << failures.size() << " failure(s)";
    for (const FuzzFailure &f : failures) {
        os << "\n[" << f.kind << "] seed " << f.seed << "\n"
           << f.detail;
        if (!f.detail.empty() && f.detail.back() != '\n')
            os << "\n";
    }
    return os.str();
}

FuzzReport
runFuzzCampaign(const FuzzOptions &opts)
{
    FuzzReport report;
    report.seedsRun = opts.numSeeds;
    if (opts.numSeeds == 0)
        return report;

    std::mutex mu;
    const unsigned jobs =
        sweep::resolveJobs(opts.jobs, opts.numSeeds);

    sweep::parallelForEach(
        jobs, opts.numSeeds,
        [&](std::size_t i, std::size_t) {
            const std::uint64_t seed = opts.seedBase + i;
            FuzzFailure failure;
            failure.seed = seed;
            try {
                DifferentialRunner runner;
                const DiffResult r =
                    runner.runSeed(seed, opts.gen, opts.arg);
                if (r.agreed)
                    return;
                failure.kind = "divergence";
                failure.detail = r.report;
            } catch (const AssemblerError &e) {
                failure.kind = "generator";
                failure.detail = e.what();
            } catch (const VerifyError &e) {
                failure.kind = "generator";
                failure.detail = e.what();
            } catch (const VmError &e) {
                failure.kind = "vm";
                failure.detail = e.what();
            } catch (const std::exception &e) {
                failure.kind = "vm";
                failure.detail = e.what();
            }
            const std::lock_guard<std::mutex> lock(mu);
            report.failures.push_back(std::move(failure));
        },
        "fuzz-worker-");

    std::sort(report.failures.begin(), report.failures.end(),
              [](const FuzzFailure &a, const FuzzFailure &b) {
                  return a.seed < b.seed;
              });
    return report;
}

} // namespace jrs::check
