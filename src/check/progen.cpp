#include "check/progen.h"

#include <iterator>
#include <string>
#include <vector>

#include "support/random.h"
#include "vm/bytecode/assembler.h"
#include "vm/runtime/vm_error.h"

namespace jrs::check {

namespace {

/**
 * Integer constants biased toward the edges where two's-complement
 * arithmetic bites: overflow wrap, INT32_MIN negation/division,
 * shift-amount masking boundaries, byte/char truncation boundaries.
 */
const std::int32_t kEdgeInts[] = {
    0,           1,           -1,          2,          3,
    5,           7,           8,           16,         31,
    32,          33,          63,          -2,         -8,
    100,         127,         128,         255,        256,
    -129,        32767,       65535,       65536,      -32768,
    INT32_MAX,   INT32_MIN,   INT32_MAX - 1, INT32_MIN + 1,
    0x55555555,  static_cast<std::int32_t>(0xAAAAAAAA),
};

/** Shift amounts straddling the & 31 mask. */
const std::int32_t kEdgeShifts[] = {0, 1, 5, 16, 30, 31, 32, 33, 63, -1};

/** Float constants: saturation, rounding, infinity, NaN sources. */
const float kEdgeFloats[] = {
    0.0f,   1.0f,    -1.0f,       0.5f,          3.14159f,
    1e10f,  -1e10f,  2147483648.0f, -2147483904.0f, 0.001f,
};

/** Kernel-local slot roles (all kernels declare 6 locals). */
constexpr std::uint8_t kArg = 0;   ///< int: the kernel argument
constexpr std::uint8_t kAcc = 1;   ///< int: accumulator
constexpr std::uint8_t kIdx = 2;   ///< int: loop counter
constexpr std::uint8_t kTmp = 3;   ///< int: scratch
constexpr std::uint8_t kRef = 4;   ///< ref: array / receiver
constexpr std::uint8_t kExc = 5;   ///< ref: caught exception

class Generator {
  public:
    Generator(std::uint64_t seed, const GenOptions &opts,
              std::uint64_t mask)
        : rng_(seed ^ 0x636865636b21ull),  // "check!"
          opts_(opts),
          mask_(mask),
          numKernels_(opts.numKernels < 1
                          ? 1u
                          : (opts.numKernels > 64 ? 64u
                                                  : opts.numKernels))
    {
    }

    Program build()
    {
        ProgramBuilder pb("fuzz");
        buildSupportClasses(pb);
        ClassBuilder &g = pb.cls("G");
        std::vector<MethodBuilder *> kernels;
        for (std::uint32_t i = 0; i < numKernels_; ++i) {
            MethodBuilder &m = g.staticMethod(
                "k" + std::to_string(i), {VType::Int}, VType::Int);
            kernels.push_back(&m);
        }
        for (std::uint32_t i = 0; i < numKernels_; ++i)
            buildKernel(*kernels[i], i);
        buildEntry(pb);
        return pb.finish("Main.run");
    }

  private:
    // --- random helpers ------------------------------------------------

    bool chance(std::uint32_t percent)
    {
        return rng_.nextBounded(100) < percent;
    }

    std::int32_t edgeInt()
    {
        return kEdgeInts[rng_.nextBounded(std::size(kEdgeInts))];
    }

    std::int32_t anyConst()
    {
        return chance(70) ? edgeInt()
                          : rng_.nextInRange(-1000, 1000);
    }

    // --- support classes ----------------------------------------------

    void buildSupportClasses(ProgramBuilder &pb)
    {
        // Guest exception hierarchy: Ex1 extends Ex0. Catch clauses
        // naming Ex0 also match Ex1; builtins match only catch-alls.
        ClassBuilder &ex0 = pb.cls("Ex0");
        ex0.field("code");
        pb.cls("Ex1", "Ex0");

        // A virtual pair for dispatch + devirtualization paths.
        ClassBuilder &a = pb.cls("A");
        a.field("salt");
        {
            MethodBuilder &f =
                a.virtualMethod("f", {VType::Int}, VType::Int);
            f.locals(2);
            f.iload(1).iconst(rng_.nextInRange(3, 97)).imul()
                .aload(0).getFieldI("A.salt").iadd()
                .iconst(anyConst()).ixor().ireturn();
        }
        ClassBuilder &b = pb.cls("B", "A");
        {
            MethodBuilder &f =
                b.virtualMethod("f", {VType::Int}, VType::Int);
            f.locals(2);
            // Combine a direct (invokespecial) call to the super body
            // with the override's own arithmetic.
            f.aload(0).iload(1).invokeSpecial("A.f")
                .iload(1).iconst(anyConst()).iadd().ixor().ireturn();
        }
    }

    // --- expression generator ------------------------------------------

    /** Emit code leaving exactly one int on @p m's stack. */
    void genExpr(MethodBuilder &m, std::uint32_t depth)
    {
        if (depth == 0 || chance(25)) {
            if (chance(55))
                m.iconst(anyConst());
            else
                m.iload(static_cast<std::uint8_t>(
                    rng_.nextBounded(4)));  // kArg..kTmp, all int
            return;
        }
        switch (rng_.nextBounded(10)) {
          case 0: {  // unary
            genExpr(m, depth - 1);
            const auto u = rng_.nextBounded(3);
            if (u == 0)
                m.ineg();
            else if (u == 1)
                m.i2c();
            else
                m.i2b();
            break;
          }
          case 1:
          case 2:
          case 3: {  // wrap-prone binary
            genExpr(m, depth - 1);
            genExpr(m, depth - 1);
            switch (rng_.nextBounded(6)) {
              case 0: m.iadd(); break;
              case 1: m.isub(); break;
              case 2: m.imul(); break;
              case 3: m.iand(); break;
              case 4: m.ior(); break;
              default: m.ixor(); break;
            }
            break;
          }
          case 4:
          case 5: {  // shift with edge amounts (mask & 31 semantics)
            genExpr(m, depth - 1);
            if (chance(70))
                m.iconst(kEdgeShifts[rng_.nextBounded(
                    std::size(kEdgeShifts))]);
            else
                genExpr(m, depth - 1);
            switch (rng_.nextBounded(3)) {
              case 0: m.ishl(); break;
              case 1: m.ishr(); break;
              default: m.iushr(); break;
            }
            break;
          }
          case 6:
          case 7: {  // div/rem: INT32_MIN/-1 wrap, divide-by-zero
            genExpr(m, depth - 1);
            if (chance(50)) {
                // Divisor forced nonzero: expr | 1.
                genExpr(m, depth - 1);
                m.iconst(1).ior();
            } else {
                // Raw edge divisor: 0 raises Arithmetic, -1 wraps.
                m.iconst(edgeInt());
            }
            if (chance(50))
                m.idiv();
            else
                m.irem();
            break;
          }
          case 8: {  // float round-trip with saturation
            genExpr(m, depth - 1);
            m.i2f();
            m.fconst(kEdgeFloats[rng_.nextBounded(
                std::size(kEdgeFloats))]);
            switch (rng_.nextBounded(4)) {
              case 0: m.fadd(); break;
              case 1: m.fsub(); break;
              case 2: m.fmul(); break;
              default: m.fdiv(); break;  // /0.0f -> inf -> saturate
            }
            m.f2i();
            break;
          }
          default: {  // float compare
            genExpr(m, depth - 1);
            m.i2f();
            m.fconst(kEdgeFloats[rng_.nextBounded(
                std::size(kEdgeFloats))]);
            m.fcmpl();
            break;
          }
        }
    }

    // --- kernel shapes -------------------------------------------------

    /** Common prologue: init the int scratch slots. */
    void initSlots(MethodBuilder &m)
    {
        m.locals(6);
        m.iconst(anyConst()).istore(kAcc);
        m.iconst(0).istore(kIdx);
        m.iconst(anyConst()).istore(kTmp);
    }

    void buildKernel(MethodBuilder &m, std::uint32_t index)
    {
        initSlots(m);
        switch (rng_.nextBounded(index == 0 ? 5 : 6)) {
          case 0: shapeArith(m); break;
          case 1: shapeLoop(m); break;
          case 2: shapeArray(m); break;
          case 3: shapeThrow(m); break;
          case 4: shapeVirtual(m); break;
          default: shapeCall(m, index); break;  // calls k_j, j < index
        }
    }

    /** Straight-line statements, then return an expression. */
    void shapeArith(MethodBuilder &m)
    {
        const std::uint32_t stmts = 2 + rng_.nextBounded(4);
        for (std::uint32_t s = 0; s < stmts; ++s) {
            genExpr(m, opts_.maxExprDepth);
            m.istore(static_cast<std::uint8_t>(
                kAcc + rng_.nextBounded(3)));
        }
        genExpr(m, opts_.maxExprDepth);
        maybePrintAndReturn(m);
    }

    /** Constant-trip accumulator loop. */
    void shapeLoop(MethodBuilder &m)
    {
        const std::int32_t trip = static_cast<std::int32_t>(
            4 + rng_.nextBounded(opts_.maxLoopTrip));
        const std::int8_t step =
            static_cast<std::int8_t>(1 + rng_.nextBounded(3));
        const Label head = m.newLabel();
        const Label exit = m.newLabel();
        m.iconst(0).istore(kIdx);
        m.bind(head);
        m.iload(kIdx).iconst(trip).ifIcmpge(exit);
        m.iload(kAcc);
        genExpr(m, opts_.maxExprDepth > 1 ? opts_.maxExprDepth - 1 : 1);
        if (chance(50))
            m.ixor();
        else
            m.iadd();
        m.istore(kAcc);
        m.iinc(kIdx, step);
        m.gotoL(head);
        m.bind(exit);
        m.iload(kAcc);
        maybePrintAndReturn(m);
    }

    /** Array fill + optional arraycopy + optional wild read + checksum. */
    void shapeArray(MethodBuilder &m)
    {
        const std::int32_t len =
            static_cast<std::int32_t>(4 + rng_.nextBounded(17));
        const std::uint32_t kindSel = rng_.nextBounded(3);
        const ArrayKind kind = kindSel == 0
            ? ArrayKind::Int
            : (kindSel == 1 ? ArrayKind::Char : ArrayKind::Byte);
        auto emitStore = [&] {
            if (kind == ArrayKind::Int)
                m.iastore();
            else if (kind == ArrayKind::Char)
                m.castore();
            else
                m.bastore();
        };
        auto emitLoad = [&] {
            if (kind == ArrayKind::Int)
                m.iaload();
            else if (kind == ArrayKind::Char)
                m.caload();
            else
                m.baload();
        };

        m.iconst(len).newArray(kind).astore(kRef);

        // Fill: a[i] = expr(i, arg).
        {
            const Label head = m.newLabel();
            const Label exit = m.newLabel();
            m.iconst(0).istore(kIdx);
            m.bind(head);
            m.iload(kIdx).iconst(len).ifIcmpge(exit);
            m.aload(kRef).iload(kIdx);
            genExpr(m, 2);
            emitStore();
            m.iinc(kIdx, 1);
            m.gotoL(head);
            m.bind(exit);
        }

        // Arraycopy within the array; ranges are usually valid, and
        // sometimes the INT32_MAX-adjacent positions whose `pos + len`
        // wraps negative (the arrayCopy bounds-check regression).
        if (chance(60)) {
            std::int32_t sp;
            std::int32_t dp;
            std::int32_t cl;
            if (chance(70)) {
                sp = rng_.nextInRange(0, len / 2);
                dp = rng_.nextInRange(0, len / 2);
                cl = rng_.nextInRange(0, len / 2);
            } else {
                const std::int32_t wild[] = {len,      len + 1,
                                             -1,       INT32_MAX,
                                             INT32_MAX - 1, INT32_MIN};
                sp = wild[rng_.nextBounded(std::size(wild))];
                dp = rng_.nextInRange(0, len / 2);
                cl = rng_.nextInRange(1, 4);
            }
            m.aload(kRef).iconst(sp).aload(kRef).iconst(dp).iconst(cl)
                .intrinsic(IntrinsicId::ArrayCopy);
        }

        // Wild read: an edge index may raise ArrayIndexOutOfBounds.
        if (chance(40)) {
            const std::int32_t idx = chance(50)
                ? rng_.nextInRange(0, len - 1)
                : edgeInt();
            m.aload(kRef).iconst(idx);
            emitLoad();
            m.istore(kTmp);
        }

        // Checksum: acc = acc * 31 + a[i].
        {
            const Label head = m.newLabel();
            const Label exit = m.newLabel();
            m.iconst(0).istore(kIdx);
            m.bind(head);
            m.iload(kIdx).iconst(len).ifIcmpge(exit);
            m.iload(kAcc).iconst(31).imul();
            m.aload(kRef).iload(kIdx);
            emitLoad();
            m.iadd().istore(kAcc);
            m.iinc(kIdx, 1);
            m.gotoL(head);
            m.bind(exit);
        }
        m.iload(kAcc).iload(kTmp).ixor();
        maybePrintAndReturn(m);
    }

    /** Conditionally throw Ex0/Ex1 (with a code field), else compute. */
    void shapeThrow(MethodBuilder &m)
    {
        const Label noThrow = m.newLabel();
        const std::int32_t mask =
            static_cast<std::int32_t>(1 + rng_.nextBounded(7));
        genExpr(m, 2);
        m.iconst(mask).iand().ifne(noThrow);
        const bool sub = chance(50);
        m.newObject(sub ? "Ex1" : "Ex0");
        m.dup();
        genExpr(m, 2);
        m.putFieldI("Ex0.code");
        m.athrow();
        m.bind(noThrow);
        genExpr(m, opts_.maxExprDepth);
        maybePrintAndReturn(m);
    }

    /** Virtual dispatch on a runtime-chosen receiver (A or B). */
    void shapeVirtual(MethodBuilder &m)
    {
        const Label useB = m.newLabel();
        const Label call = m.newLabel();
        genExpr(m, 2);
        m.iconst(1).iand().ifne(useB);
        m.newObject("A").astore(kRef).gotoL(call);
        m.bind(useB);
        m.newObject("B").astore(kRef);
        m.bind(call);
        // Seed the receiver's salt field, then dispatch.
        m.aload(kRef).iconst(anyConst()).putFieldI("A.salt");
        m.aload(kRef);
        genExpr(m, 2);
        m.invokeVirtual("A.f");
        maybePrintAndReturn(m);
    }

    /** Call one or two earlier kernels; maybe catch their throws. */
    void shapeCall(MethodBuilder &m, std::uint32_t index)
    {
        const std::uint32_t calls = 1 + rng_.nextBounded(2);
        for (std::uint32_t c = 0; c < calls; ++c) {
            const std::uint32_t target = rng_.nextBounded(index);
            const bool guarded = chance(60);
            const bool catchEx0 = guarded && chance(40);
            if (guarded) {
                const Label tryStart = m.newLabel();
                const Label tryEnd = m.newLabel();
                const Label handler = m.newLabel();
                const Label merge = m.newLabel();
                m.bind(tryStart);
                m.iload(kArg).iconst(anyConst()).ixor();
                m.invokeStatic("G.k" + std::to_string(target));
                m.istore(kTmp);
                m.bind(tryEnd);
                m.gotoL(merge);
                m.bind(handler);
                if (catchEx0) {
                    // Typed catch: recover the thrown code field.
                    m.astore(kExc);
                    m.aload(kExc).getFieldI("Ex0.code").istore(kTmp);
                } else {
                    m.astore(kExc);
                    m.iconst(anyConst()).istore(kTmp);
                }
                m.bind(merge);
                m.addHandler(tryStart, tryEnd, handler,
                             catchEx0 ? "Ex0" : "");
            } else {
                m.iload(kArg).iconst(anyConst()).ixor();
                m.invokeStatic("G.k" + std::to_string(target));
                m.istore(kTmp);
            }
            m.iload(kAcc).iconst(31).imul().iload(kTmp).iadd()
                .istore(kAcc);
        }
        m.iload(kAcc);
        maybePrintAndReturn(m);
    }

    /** Print the result (sometimes) and return it. */
    void maybePrintAndReturn(MethodBuilder &m)
    {
        if (chance(25))
            m.dup().intrinsic(IntrinsicId::PrintInt);
        m.ireturn();
    }

    // --- entry ---------------------------------------------------------

    void buildEntry(ProgramBuilder &pb)
    {
        ClassBuilder &main = pb.cls("Main");
        MethodBuilder &m =
            main.staticMethod("run", {VType::Int}, VType::Int);
        // 0=arg 1=acc 2=tmp (int), 3=caught exception (ref).
        m.locals(4);
        m.iconst(anyConst()).istore(1);
        for (std::uint32_t i = 0; i < numKernels_; ++i) {
            // Draw the per-kernel randomness unconditionally so the
            // surviving calls are identical under any mask.
            const std::int32_t salt = anyConst();
            const std::int32_t handlerValue = anyConst();
            const bool guarded = chance(70);
            if ((mask_ & (std::uint64_t{1} << i)) == 0)
                continue;
            if (guarded) {
                const Label tryStart = m.newLabel();
                const Label tryEnd = m.newLabel();
                const Label handler = m.newLabel();
                const Label merge = m.newLabel();
                m.bind(tryStart);
                m.iload(0).iconst(salt).ixor();
                m.invokeStatic("G.k" + std::to_string(i));
                m.istore(2);
                m.bind(tryEnd);
                m.gotoL(merge);
                m.bind(handler);
                m.astore(3);
                m.iconst(handlerValue).istore(2);
                m.bind(merge);
                m.addHandler(tryStart, tryEnd, handler, "");
            } else {
                m.iload(0).iconst(salt).ixor();
                m.invokeStatic("G.k" + std::to_string(i));
                m.istore(2);
            }
            m.iload(1).iconst(31).imul().iload(2).iadd().istore(1);
        }
        m.iload(1).intrinsic(IntrinsicId::PrintInt);
        m.iload(1).ireturn();
    }

    XorShift64 rng_;
    const GenOptions opts_;
    const std::uint64_t mask_;
    const std::uint32_t numKernels_;
};

} // namespace

Program
generateProgram(std::uint64_t seed, const GenOptions &opts,
                std::uint64_t active_mask)
{
    Generator gen(seed, opts, active_mask);
    return gen.build();
}

} // namespace jrs::check
