#include "check/digest.h"

#include <sstream>

namespace jrs::check {

bool
VmStateDigest::operator==(const VmStateDigest &o) const
{
    const bool gc = gcEnabled || o.gcEnabled;
    return portableEquals(o)
        && heapAllocations == o.heapAllocations
        && heapBytes == o.heapBytes
        && (gc ? liveHeapHash == o.liveHeapHash
               : heapHash == o.heapHash)
        && guestThrows == o.guestThrows
        && throwChainHash == o.throwChainHash;
}

bool
VmStateDigest::portableEquals(const VmStateDigest &o) const
{
    return completed == o.completed
        && uncaught == o.uncaught
        && hasExitValue == o.hasExitValue
        && exitValue == o.exitValue
        && output == o.output
        && threadsSpawned == o.threadsSpawned;
}

std::string
VmStateDigest::str() const
{
    std::ostringstream os;
    os << (completed ? "completed" : "incomplete");
    if (!uncaught.empty())
        os << " uncaught=" << uncaught;
    if (hasExitValue)
        os << " exit=" << exitValue;
    os << " out=" << output.size() << "B"
       << " heap=" << heapAllocations << "allocs/" << heapBytes << "B"
       << std::hex
       << " heapHash=" << heapHash
       << " liveHash=" << liveHeapHash
       << std::dec;
    if (gcEnabled)
        os << " gc";
    os
       << " throws=" << guestThrows
       << std::hex
       << " throwHash=" << throwChainHash
       << std::dec;
    if (threadsSpawned != 0)
        os << " threads=+" << threadsSpawned;
    return os.str();
}

VmStateDigest
captureDigest(ExecutionEngine &engine, const RunResult &result)
{
    VmStateDigest d;
    d.completed = result.completed;
    if (result.uncaughtException != nullptr)
        d.uncaught = result.uncaughtException;
    d.hasExitValue = result.hasExitValue;
    d.exitValue = result.exitValue;
    d.output = result.output;
    d.heapAllocations = engine.heap().allocationCount();
    d.heapBytes = engine.heap().bytesAllocated();
    d.heapHash = engine.heap().contentHash();
    d.liveHeapHash = engine.liveHeapHash();
    d.gcEnabled = engine.collectorKind() != gc::CollectorKind::None;
    d.guestThrows = result.guestThrows;
    d.throwChainHash = result.throwChainHash;
    d.threadsSpawned = result.threadsSpawned;
    return d;
}

std::string
describeDigestDiff(const std::string &name_a, const VmStateDigest &a,
                   const std::string &name_b, const VmStateDigest &b)
{
    const bool threaded = a.threadsSpawned != 0 || b.threadsSpawned != 0;
    if (threaded ? a.portableEquals(b) : a == b)
        return "";

    std::ostringstream os;
    os << "digest divergence between " << name_a << " and " << name_b;
    if (threaded)
        os << " (threaded: portable subset)";
    os << ":\n";
    auto field = [&](const char *what, const std::string &va,
                     const std::string &vb) {
        if (va != vb) {
            os << "  " << what << ": " << name_a << "=" << va << "  "
               << name_b << "=" << vb << "\n";
        }
    };
    field("completed", a.completed ? "yes" : "no",
          b.completed ? "yes" : "no");
    field("uncaught", a.uncaught.empty() ? "-" : a.uncaught,
          b.uncaught.empty() ? "-" : b.uncaught);
    field("exitValue",
          a.hasExitValue ? std::to_string(a.exitValue) : "-",
          b.hasExitValue ? std::to_string(b.exitValue) : "-");
    field("output", a.output, b.output);
    if (!threaded) {
        const bool gc = a.gcEnabled || b.gcEnabled;
        field("heapAllocations", std::to_string(a.heapAllocations),
              std::to_string(b.heapAllocations));
        field("heapBytes", std::to_string(a.heapBytes),
              std::to_string(b.heapBytes));
        if (gc) {
            field("liveHeapHash", std::to_string(a.liveHeapHash),
                  std::to_string(b.liveHeapHash));
        } else {
            field("heapHash", std::to_string(a.heapHash),
                  std::to_string(b.heapHash));
        }
        field("guestThrows", std::to_string(a.guestThrows),
              std::to_string(b.guestThrows));
        field("throwChainHash", std::to_string(a.throwChainHash),
              std::to_string(b.throwChainHash));
    }
    field("threadsSpawned", std::to_string(a.threadsSpawned),
          std::to_string(b.threadsSpawned));
    return os.str();
}

} // namespace jrs::check
