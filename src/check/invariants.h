/**
 * @file
 * TraceInvariantChecker — streaming validation of native-event streams.
 *
 * Every architecture model in this repo silently assumes the TraceEvent
 * stream is well-formed; the paper's numbers are only as good as that
 * assumption. This checker makes it explicit and machine-checked, for
 * live runs (attach as the engine sink), in-memory TraceBuffers, and
 * on-disk JRSTRACE files including the sweep cache's sidecars.
 *
 * Per-event invariants:
 *  - phase and kind tags are legal enum values
 *  - pc lies in the phase's home code segment: Interpret->kInterpCode,
 *    Translate->kTranslateCode, NativeExec->kCodeCache,
 *    Runtime->kRuntimeCode
 *  - code-cache pcs and accesses sit on the 4-byte instruction grid
 *    (generated code is fixed-width; misalignment signals a
 *    cursor-overflow or extent-reuse bug in the managed cache)
 *  - memory events carry a nonzero address inside a data-bearing
 *    address_map region (heap, stacks, class data, translate/runtime
 *    data, code cache installs, interpreter jump tables, translator
 *    rodata) and a power-of-two size in [1, 8]; non-memory events
 *    carry none
 *  - branch events carry an outcome; all other control kinds are
 *    always "taken" and (except Ret) carry a nonzero target;
 *    non-control events carry neither outcome nor target
 *  - register ids are < 32 or kNoReg
 *
 * Cross-run conservation (needs the producing RunResult):
 *  - stream totals and per-phase totals equal the RunResult's
 *  - per-method ProfileTable events conserve: the sum over methods of
 *    interp+native+translate events equals totalEvents minus only the
 *    entry frame-setup traffic, and translate events equal the
 *    stream's Translate-phase total exactly
 *  - joined with a MethodMap, per-method attributed event counts match
 *    each method's profile within a small per-method slack
 */
#ifndef JRS_CHECK_INVARIANTS_H
#define JRS_CHECK_INVARIANTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/trace.h"
#include "isa/trace_buffer.h"
#include "obs/attribution.h"
#include "vm/engine/engine.h"

namespace jrs::check {

/** One recorded invariant violation. */
struct Violation {
    std::uint64_t index = 0;  ///< event index in the stream
    std::string what;
};

/** Streaming per-event validator; see file comment. */
class TraceInvariantChecker : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override;

    bool ok() const { return violationCount_ == 0; }
    std::uint64_t eventCount() const { return events_; }
    std::uint64_t violationCount() const { return violationCount_; }
    std::uint64_t inPhase(Phase p) const {
        return phase_[static_cast<std::size_t>(p)];
    }

    /** First violations (capped at kMaxKept; the count keeps going). */
    const std::vector<Violation> &violations() const {
        return violations_;
    }

    /** Multi-line summary; "" when the stream is clean. */
    std::string report() const;

    static constexpr std::size_t kMaxKept = 16;

  private:
    void flag(const std::string &what);

    std::uint64_t events_ = 0;
    std::uint64_t violationCount_ = 0;
    std::uint64_t phase_[kNumPhases] = {};
    std::vector<Violation> violations_;
};

/**
 * Totals/per-phase equality between a fully observed stream and the
 * RunResult that produced it. @return "" when conserved.
 */
std::string checkRunConservation(const TraceInvariantChecker &checker,
                                 const RunResult &result);

/**
 * ProfileTable conservation against the run's own totals: the summed
 * per-method events may fall short of totalEvents only by the entry
 * frame-setup traffic (bounded by kMaxUnattributedEvents), and summed
 * translateEvents must equal the Translate-phase total exactly.
 * @return "" when conserved.
 */
std::string checkProfileConservation(const RunResult &result);

/** Engine events never charged to a profile (entry frame setup). */
inline constexpr std::uint64_t kMaxUnattributedEvents = 8;

/**
 * Join @p trace with @p map through obs::AttributionSink and compare
 * per-method attributed totals against the ProfileTable. The offline
 * join is exact within a step but shifts a few events between
 * adjacent methods at every frame boundary (synchronized-method
 * entry, return delivery, translator prologues), so each method is
 * allowed @p per_method_slack plus an invocation- and size-scaled
 * margin, while the aggregate across all methods must agree tightly.
 * Only valid for single-threaded, non-inlining runs — returns "" with
 * no work when result.threadsSpawned != 0. @return "" when conserved.
 */
std::string checkProfileAttribution(const TraceBuffer &trace,
                                    const obs::MethodMap &map,
                                    const Program &prog,
                                    const RunResult &result,
                                    std::uint64_t per_method_slack);

/** Outcome of linting one on-disk trace (plus sidecars). */
struct LintResult {
    bool ok = false;
    std::uint64_t events = 0;
    std::string error;               ///< first fatal problem
    std::vector<std::string> notes;  ///< non-fatal observations
};

/**
 * Validate `<path>` as a JRSTRACE stream: header, record decode, and
 * every per-event invariant. When @p require_sidecars is true the
 * `.meta` sidecar must exist, parse, and agree with the stream's
 * event count, and the `.methods` sidecar must exist and parse (a
 * corrupt or missing sidecar is reported as a clean error instead of
 * feeding silent misattribution downstream).
 */
LintResult lintTraceFile(const std::string &path, bool require_sidecars);

/**
 * Lint every `*.jrstrace` in @p dir (the sweep trace-cache layout).
 * Returns (filename, result) pairs sorted by filename; empty when the
 * directory has no traces. Throws VmError when @p dir does not exist.
 */
std::vector<std::pair<std::string, LintResult>>
lintCacheDir(const std::string &dir);

} // namespace jrs::check

#endif // JRS_CHECK_INVARIANTS_H
