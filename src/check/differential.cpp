#include "check/differential.h"

#include <sstream>

#include "vm/bytecode/disassembler.h"
#include "vm/engine/engine.h"

namespace jrs::check {

namespace {

/**
 * Hang guard only: generated programs and tiny-arg workloads finish
 * orders of magnitude below this. A mode hitting the cap shows up as
 * completed=false and fails the comparison loudly.
 */
constexpr std::uint64_t kMaxEventsGuard = 200'000'000ull;

} // namespace

const char *
diffModeName(DiffMode mode)
{
    switch (mode) {
      case DiffMode::Interp: return "interp";
      case DiffMode::Jit:    return "jit";
      case DiffMode::Hybrid: return "hybrid";
    }
    return "?";
}

const std::vector<DiffMode> &
allDiffModes()
{
    static const std::vector<DiffMode> kModes = {
        DiffMode::Interp, DiffMode::Jit, DiffMode::Hybrid};
    return kModes;
}

EngineConfig
makeDiffConfig(DiffMode mode, const gc::GcOptions &gc,
               std::size_t heap_bytes)
{
    EngineConfig cfg;
    cfg.maxEvents = kMaxEventsGuard;
    cfg.gc = gc;
    cfg.heapBytes = heap_bytes;
    switch (mode) {
      case DiffMode::Interp:
        cfg.policy = std::make_shared<NeverCompilePolicy>();
        break;
      case DiffMode::Jit:
        cfg.policy = std::make_shared<AlwaysCompilePolicy>();
        break;
      case DiffMode::Hybrid:
        cfg.policy = std::make_shared<CounterPolicy>(2);
        cfg.osrBackEdgeThreshold = 16;
        cfg.interpreterFolding = true;
        break;
    }
    return cfg;
}

VmStateDigest
runDigest(const Program &prog, DiffMode mode, std::int32_t arg,
          const gc::GcOptions &gc, std::size_t heap_bytes)
{
    ExecutionEngine engine(prog, makeDiffConfig(mode, gc, heap_bytes));
    const RunResult result = engine.run(arg);
    return captureDigest(engine, result);
}

DiffResult
DifferentialRunner::runProgram(const Program &prog, std::int32_t arg,
                               const std::string &label)
{
    DiffResult out;
    out.reference =
        runDigest(prog, DiffMode::Interp, arg, gc, heapBytes);

    std::ostringstream os;
    for (DiffMode mode : allDiffModes()) {
        if (mode == DiffMode::Interp)
            continue;
        const VmStateDigest d =
            runDigest(prog, mode, arg, gc, heapBytes);
        const std::string diff =
            describeDigestDiff("interp", out.reference,
                               diffModeName(mode), d);
        if (!diff.empty())
            os << label << " arg=" << arg << ": " << diff;
    }
    out.report = os.str();
    out.agreed = out.report.empty();
    return out;
}

namespace {

/** True when any mode disagrees with interp on this seed+mask. */
bool
masksDiverge(std::uint64_t seed, const GenOptions &opts,
             std::uint64_t mask, std::int32_t arg)
{
    const Program prog = generateProgram(seed, opts, mask);
    const VmStateDigest ref = runDigest(prog, DiffMode::Interp, arg);
    for (DiffMode mode : allDiffModes()) {
        if (mode == DiffMode::Interp)
            continue;
        if (!describeDigestDiff("interp", ref, diffModeName(mode),
                                runDigest(prog, mode, arg))
                 .empty())
            return true;
    }
    return false;
}

/**
 * Greedy one-at-a-time kernel removal (a ddmin step with granularity
 * 1 — kernel counts are <= 64, so the quadratic worst case is cheap).
 * Sound because the generator emits identical kernels for every mask.
 */
std::uint64_t
minimizeMask(std::uint64_t seed, const GenOptions &opts,
             std::uint64_t mask, std::int32_t arg)
{
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        for (std::uint32_t bit = 0; bit < opts.numKernels; ++bit) {
            const std::uint64_t without = mask & ~(1ull << bit);
            if (without == mask || without == 0)
                continue;
            if (masksDiverge(seed, opts, without, arg)) {
                mask = without;
                shrunk = true;
            }
        }
    }
    return mask;
}

} // namespace

DiffResult
DifferentialRunner::runSeed(std::uint64_t seed, const GenOptions &opts,
                            std::int32_t arg)
{
    const Program prog = generateProgram(seed, opts);
    std::ostringstream label;
    label << "seed " << seed;
    DiffResult out = runProgram(prog, arg, label.str());
    if (out.agreed)
        return out;

    // Divergence: shrink to the smallest still-diverging kernel set
    // and attach a full repro.
    const std::uint64_t mask =
        minimizeMask(seed, opts, kAllKernels, arg);
    const Program min_prog = generateProgram(seed, opts, mask);
    const DiffResult min_run =
        runProgram(min_prog, arg, label.str() + " (minimized)");

    std::ostringstream os;
    os << "=== divergence repro ===\n"
       << "seed=" << seed << " arg=" << arg
       << " kernels=" << opts.numKernels << std::hex
       << " minimized-mask=0x" << mask << std::dec << "\n"
       << (min_run.agreed ? out.report : min_run.report)
       << "--- surviving methods ---\n";
    for (const Method &m : min_prog.methods) {
        os << m.name << ":\n" << disassemble(m) << "\n";
    }
    out.report = os.str();
    return out;
}

DiffResult
DifferentialRunner::checkWorkload(const WorkloadInfo &info,
                                  std::int32_t arg)
{
    if (arg == 0)
        arg = info.tinyArg;
    const Program prog = info.build();
    return runProgram(prog, arg, info.name);
}

} // namespace jrs::check
