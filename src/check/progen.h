/**
 * @file
 * Seeded, deterministic bytecode program generator.
 *
 * Produces verifier-valid programs that stress exactly the paths where
 * an interpreter and a JIT can silently disagree: arithmetic edge
 * cases (INT32_MIN div/rem -1, shift-amount masking, overflow wrap,
 * float-to-int saturation), array allocation/fill/bounds/arraycopy,
 * exception throw/catch/rethrow across frames, and static, special and
 * virtual invokes. Programs are generated structurally (through the
 * assembler, never as raw bytes), so every one passes the verifier by
 * construction, terminates (loops have constant trip counts and
 * positive increments), and is single-threaded (digests compare
 * exactly).
 *
 * Layout: kernels G.k0..G.k{n-1}, each `static (int) -> int`, built
 * from a seed-chosen shape; an entry `Main.run(int)` that calls every
 * kernel whose bit is set in @p active_mask with a salted argument,
 * folds the results (some calls wrapped in try/catch, some not — so
 * guest exceptions exercise both caught and uncaught paths), prints
 * and returns the accumulator. The mask only filters entry calls —
 * kernel code is identical for every mask value of the same seed,
 * which is what makes divergence minimization (bisecting the mask)
 * sound.
 */
#ifndef JRS_CHECK_PROGEN_H
#define JRS_CHECK_PROGEN_H

#include <cstdint>

#include "vm/bytecode/class_def.h"

namespace jrs::check {

/** Generator size knobs. */
struct GenOptions {
    /** Kernel methods (1..64; entry mask is a 64-bit word). */
    std::uint32_t numKernels = 8;
    /** Maximum expression-tree depth. */
    std::uint32_t maxExprDepth = 4;
    /** Maximum constant loop trip count. */
    std::uint32_t maxLoopTrip = 24;
};

/** All-kernels-active mask. */
inline constexpr std::uint64_t kAllKernels = ~std::uint64_t{0};

/**
 * Generate the program for @p seed. Throws AssemblerError/VerifyError
 * only on a generator bug — callers treat that as a test failure, not
 * an expected outcome.
 */
Program generateProgram(std::uint64_t seed, const GenOptions &opts,
                        std::uint64_t active_mask = kAllKernels);

} // namespace jrs::check

#endif // JRS_CHECK_PROGEN_H
