#include "arch/outcome.h"

namespace jrs {

const char *
perfKindName(PerfKind kind)
{
    switch (kind) {
      case PerfKind::ICacheFetch:    return "icache_fetch";
      case PerfKind::DCacheLoad:     return "dcache_load";
      case PerfKind::DCacheStore:    return "dcache_store";
      case PerfKind::CondBranch:     return "cond_branch";
      case PerfKind::IndirectTarget: return "indirect_target";
    }
    return "unknown";
}

const char *
cpiComponentName(CpiComponent c)
{
    switch (c) {
      case CpiComponent::Base:             return "base";
      case CpiComponent::ICache:           return "icache";
      case CpiComponent::DCache:           return "dcache";
      case CpiComponent::BranchMispredict: return "branch_mispredict";
      case CpiComponent::IndirectTarget:   return "indirect_target";
      case CpiComponent::Backend:          return "backend";
    }
    return "unknown";
}

} // namespace jrs
