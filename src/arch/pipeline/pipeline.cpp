#include "arch/pipeline/pipeline.h"

#include <algorithm>

namespace jrs {

PipelineSim::PipelineSim(PipelineConfig cfg)
    : cfg_(cfg), icache_(cfg.icache), dcache_(cfg.dcache)
{
    rob_.assign(cfg_.robSize, 0);
}

std::uint32_t
PipelineSim::latencyOf(NKind kind)
{
    switch (kind) {
      case NKind::IntAlu:       return 1;
      case NKind::IntMul:       return 3;
      case NKind::IntDiv:       return 12;
      case NKind::FpAlu:        return 3;
      case NKind::FpMul:        return 3;
      case NKind::FpDiv:        return 12;
      case NKind::Load:         return 2;
      case NKind::Store:        return 1;
      default:                  return 1;
    }
}

void
PipelineSim::onEvent(const TraceEvent &ev)
{
    ++insts_;

    // ------------------------------------------------------------ fetch
    if (fetchedThisCycle_ >= cfg_.issueWidth) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
    }
    if (!icache_.access(ev.pc, false, ev.phase)) {
        fetchCycle_ += cfg_.icacheMissPenalty;
        fetchedThisCycle_ = 0;
    }
    const std::uint64_t fetch = fetchCycle_;
    ++fetchedThisCycle_;

    // ---------------------------------------------------------- dispatch
    const std::uint64_t dispatch = fetch + cfg_.frontendDepth;

    // ROB occupancy: this instruction's slot must have committed.
    const std::uint64_t rob_free = rob_[robHead_];
    std::uint64_t ready = std::max(dispatch, rob_free);

    // Register dependences.
    if (ev.rs1 != kNoReg)
        ready = std::max(ready, regReady_[ev.rs1]);
    if (ev.rs2 != kNoReg)
        ready = std::max(ready, regReady_[ev.rs2]);

    // Memory dependences through the store table.
    if (ev.kind == NKind::Load) {
        const StoreEntry &se =
            stores_[static_cast<std::size_t>(ev.mem >> 2) & 4095];
        if (se.addr == (ev.mem >> 2))
            ready = std::max(ready, se.done);
    }

    // ----------------------------------------------------------- execute
    std::uint32_t latency = latencyOf(ev.kind);
    if (ev.kind == NKind::Load
        && !dcache_.access(ev.mem, false, ev.phase)) {
        // A miss needs a free MSHR: memory-level parallelism is
        // bounded, so streams of misses serialize on the memory port.
        ready = std::max(ready, mshr_[mshrHead_]);
        latency += cfg_.dcacheMissPenalty;
        mshr_[mshrHead_] = ready + latency;
        mshrHead_ = (mshrHead_ + 1) % mshr_.size();
    } else if (ev.kind == NKind::Store) {
        if (!dcache_.access(ev.mem, true, ev.phase)) {
            // Write-allocate fill occupies an MSHR but does not stall
            // the store itself (write buffer).
            mshr_[mshrHead_] =
                std::max(mshr_[mshrHead_], ready)
                + cfg_.dcacheMissPenalty;
            mshrHead_ = (mshrHead_ + 1) % mshr_.size();
        }
    }
    const std::uint64_t done = ready + latency;

    if (ev.rd != kNoReg)
        regReady_[ev.rd] = done;
    if (ev.kind == NKind::Store) {
        StoreEntry &se =
            stores_[static_cast<std::size_t>(ev.mem >> 2) & 4095];
        se.addr = ev.mem >> 2;
        se.done = done;
    }

    // ---------------------------------------------------------- control
    if (ev.kind == NKind::Branch) {
        const bool pred = predictor_.predict(ev.pc);
        predictor_.update(ev.pc, ev.taken);
        if (pred != ev.taken) {
            ++mispredicts_;
            fetchCycle_ =
                std::max(fetchCycle_, done + cfg_.mispredictPenalty);
            fetchedThisCycle_ = 0;
        }
        // Correctly predicted taken branches fetch through: the BTB
        // steers the front end with no bubble.
    } else if (ev.kind == NKind::IndirectJump
               || ev.kind == NKind::IndirectCall) {
        const std::uint64_t pred = btb_.predict(ev.pc);
        btb_.update(ev.pc, ev.target);
        if (pred != ev.target) {
            ++mispredicts_;
            fetchCycle_ =
                std::max(fetchCycle_, done + cfg_.mispredictPenalty);
            fetchedThisCycle_ = 0;
        }
    }
    // Direct jumps/calls/returns and predicted-taken branches are
    // steered by the BTB without a fetch bubble.

    // ----------------------------------------------------------- commit
    std::uint64_t commit = std::max(done, lastCommit_);
    if (commit == lastCommit_) {
        if (commitsThisCycle_ >= cfg_.issueWidth) {
            ++commit;
            commitsThisCycle_ = 1;
        } else {
            ++commitsThisCycle_;
        }
    } else {
        commitsThisCycle_ = 1;
    }
    lastCommit_ = commit;
    rob_[robHead_] = commit;
    robHead_ = (robHead_ + 1) % rob_.size();
}

} // namespace jrs
