#include "arch/pipeline/pipeline.h"

#include <algorithm>

namespace jrs {

PipelineSim::PipelineSim(PipelineConfig cfg)
    : cfg_(cfg), icache_(cfg.icache), dcache_(cfg.dcache)
{
    rob_.assign(cfg_.robSize, 0);
}

std::uint32_t
PipelineSim::latencyOf(NKind kind)
{
    switch (kind) {
      case NKind::IntAlu:       return 1;
      case NKind::IntMul:       return 3;
      case NKind::IntDiv:       return 12;
      case NKind::FpAlu:        return 3;
      case NKind::FpMul:        return 3;
      case NKind::FpDiv:        return 12;
      case NKind::Load:         return 2;
      case NKind::Store:        return 1;
      default:                  return 1;
    }
}

void
PipelineSim::onEvent(const TraceEvent &ev)
{
    ++insts_;
    const std::uint64_t prevCommit = lastCommit_;

    // Redirect bubble owed by the previous mispredicted transfer: the
    // first instruction down the correct path pays it, so its commit
    // delta is what the sample decomposition charges it against.
    const CpiComponent redirectComp = pendingRedirect_;
    const std::uint64_t redirectBudget = pendingRedirectBudget_;
    pendingRedirectBudget_ = 0;

    // ------------------------------------------------------------ fetch
    if (fetchedThisCycle_ >= cfg_.issueWidth) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
    }
    const bool imiss = !icache_.access(ev.pc, false, ev.phase);
    if (imiss) {
        fetchCycle_ += cfg_.icacheMissPenalty;
        fetchedThisCycle_ = 0;
    }
    const std::uint64_t fetch = fetchCycle_;
    ++fetchedThisCycle_;

    if (listener_ != nullptr) {
        Outcome o;
        o.pc = ev.pc;
        o.kind = PerfKind::ICacheFetch;
        o.phase = ev.phase;
        o.bad = imiss;
        o.penalty = imiss ? cfg_.icacheMissPenalty : 0;
        listener_->onOutcome(o);
    }

    // ---------------------------------------------------------- dispatch
    const std::uint64_t dispatch = fetch + cfg_.frontendDepth;

    // ROB occupancy: this instruction's slot must have committed.
    const std::uint64_t rob_free = rob_[robHead_];
    std::uint64_t ready = std::max(dispatch, rob_free);
    const std::uint64_t robWait =
        rob_free > dispatch ? rob_free - dispatch : 0;
    const std::uint64_t readyAfterRob = ready;

    // Register dependences.
    if (ev.rs1 != kNoReg)
        ready = std::max(ready, regReady_[ev.rs1]);
    if (ev.rs2 != kNoReg)
        ready = std::max(ready, regReady_[ev.rs2]);

    // Memory dependences through the store table.
    if (ev.kind == NKind::Load) {
        const StoreEntry &se =
            stores_[static_cast<std::size_t>(ev.mem >> 2) & 4095];
        if (se.addr == (ev.mem >> 2))
            ready = std::max(ready, se.done);
    }
    const std::uint64_t depWait = ready - readyAfterRob;

    // ----------------------------------------------------------- execute
    const std::uint32_t latencyBase = latencyOf(ev.kind);
    std::uint32_t latency = latencyBase;
    std::uint64_t dcacheBudget = 0;
    if (ev.kind == NKind::Load) {
        const bool dmiss = !dcache_.access(ev.mem, false, ev.phase);
        if (dmiss) {
            // A miss needs a free MSHR: memory-level parallelism is
            // bounded, so streams of misses serialize on the memory
            // port.
            const std::uint64_t mshrWait =
                mshr_[mshrHead_] > ready ? mshr_[mshrHead_] - ready : 0;
            ready = std::max(ready, mshr_[mshrHead_]);
            latency += cfg_.dcacheMissPenalty;
            mshr_[mshrHead_] = ready + latency;
            mshrHead_ = (mshrHead_ + 1) % mshr_.size();
            dcacheBudget = cfg_.dcacheMissPenalty + mshrWait;
        }
        if (listener_ != nullptr) {
            Outcome o;
            o.pc = ev.pc;
            o.kind = PerfKind::DCacheLoad;
            o.phase = ev.phase;
            o.bad = dmiss;
            o.penalty = dcacheBudget;
            listener_->onOutcome(o);
        }
    } else if (ev.kind == NKind::Store) {
        const bool dmiss = !dcache_.access(ev.mem, true, ev.phase);
        if (dmiss) {
            // Write-allocate fill occupies an MSHR but does not stall
            // the store itself (write buffer).
            mshr_[mshrHead_] =
                std::max(mshr_[mshrHead_], ready)
                + cfg_.dcacheMissPenalty;
            mshrHead_ = (mshrHead_ + 1) % mshr_.size();
        }
        if (listener_ != nullptr) {
            Outcome o;
            o.pc = ev.pc;
            o.kind = PerfKind::DCacheStore;
            o.phase = ev.phase;
            o.bad = dmiss;
            listener_->onOutcome(o);
        }
    }
    const std::uint64_t done = ready + latency;

    if (ev.rd != kNoReg)
        regReady_[ev.rd] = done;
    if (ev.kind == NKind::Store) {
        StoreEntry &se =
            stores_[static_cast<std::size_t>(ev.mem >> 2) & 4095];
        se.addr = ev.mem >> 2;
        se.done = done;
    }

    // ---------------------------------------------------------- control
    if (ev.kind == NKind::Branch) {
        ++condBranches_;
        const bool pred = predictor_.predict(ev.pc);
        predictor_.update(ev.pc, ev.taken);
        const bool wrong = pred != ev.taken;
        if (wrong) {
            ++mispredicts_;
            ++condMispredicts_;
            fetchCycle_ =
                std::max(fetchCycle_, done + cfg_.mispredictPenalty);
            fetchedThisCycle_ = 0;
            pendingRedirect_ = CpiComponent::BranchMispredict;
            pendingRedirectBudget_ =
                cfg_.mispredictPenalty + cfg_.frontendDepth;
        }
        // Correctly predicted taken branches fetch through: the BTB
        // steers the front end with no bubble.
        if (listener_ != nullptr) {
            Outcome o;
            o.pc = ev.pc;
            o.kind = PerfKind::CondBranch;
            o.phase = ev.phase;
            o.bad = wrong;
            o.penalty = wrong ? cfg_.mispredictPenalty : 0;
            listener_->onOutcome(o);
        }
    } else if (ev.kind == NKind::IndirectJump
               || ev.kind == NKind::IndirectCall) {
        ++indirects_;
        const std::uint64_t pred = btb_.predict(ev.pc);
        btb_.update(ev.pc, ev.target);
        const bool wrong = pred != ev.target;
        if (wrong) {
            ++mispredicts_;
            ++indirectMispredicts_;
            fetchCycle_ =
                std::max(fetchCycle_, done + cfg_.mispredictPenalty);
            fetchedThisCycle_ = 0;
            pendingRedirect_ = CpiComponent::IndirectTarget;
            pendingRedirectBudget_ =
                cfg_.mispredictPenalty + cfg_.frontendDepth;
        }
        if (listener_ != nullptr) {
            Outcome o;
            o.pc = ev.pc;
            o.kind = PerfKind::IndirectTarget;
            o.phase = ev.phase;
            o.bad = wrong;
            o.penalty = wrong ? cfg_.mispredictPenalty : 0;
            listener_->onOutcome(o);
        }
    }
    // Direct jumps/calls/returns and predicted-taken branches are
    // steered by the BTB without a fetch bubble.

    // ----------------------------------------------------------- commit
    std::uint64_t commit = std::max(done, lastCommit_);
    if (commit == lastCommit_) {
        if (commitsThisCycle_ >= cfg_.issueWidth) {
            ++commit;
            commitsThisCycle_ = 1;
        } else {
            ++commitsThisCycle_;
        }
    } else {
        commitsThisCycle_ = 1;
    }
    lastCommit_ = commit;
    rob_[robHead_] = commit;
    robHead_ = (robHead_ + 1) % rob_.size();

    if (listener_ != nullptr) {
        // Interval-style CPI stack: split this instruction's commit
        // delta across the stalls it suffered, front end first, each
        // capped at its modelled budget; the residue is base work.
        // The caps make the split exact: samples sum to cycles().
        CpiSample s;
        s.pc = ev.pc;
        s.phase = ev.phase;
        std::uint64_t remaining = lastCommit_ - prevCommit;
        const auto take = [&](CpiComponent c, std::uint64_t budget) {
            const std::uint64_t t = std::min(remaining, budget);
            s.cycles[static_cast<std::size_t>(c)] += t;
            remaining -= t;
        };
        take(redirectComp, redirectBudget);
        take(CpiComponent::ICache,
             imiss ? cfg_.icacheMissPenalty : 0);
        take(CpiComponent::DCache, dcacheBudget);
        take(CpiComponent::Backend,
             robWait + depWait + (latencyBase - 1));
        s.cycles[static_cast<std::size_t>(CpiComponent::Base)] +=
            remaining;
        listener_->onRetire(s);
    }
}

} // namespace jrs
