/**
 * @file
 * Trace-driven out-of-order superscalar model (Figures 9 and 10).
 *
 * A dataflow-with-constraints simulator in the style of trace-driven
 * ILP studies: each retired instruction is assigned a fetch cycle
 * (bounded by fetch width, taken-branch redirects, I-cache misses and
 * branch/indirect-target mispredict refills), an issue cycle (register
 * and memory dependences, ROB occupancy), an execution latency by
 * instruction class (plus D-cache miss latency on loads), and retires
 * in order at the commit width. IPC = instructions / final commit
 * cycle.
 *
 * The model deliberately keeps the predictor + BTB inside, so the key
 * interaction the paper reports emerges: the interpreter's dispatch
 * indirect jump mispredicts its target almost always, serializing
 * fetch once per bytecode and capping wide-issue scaling.
 *
 * An optional OutcomeListener (arch/outcome.h) observes every I-/D-
 * cache access and every direction/target prediction with the cycle
 * penalty charged, and receives a CpiSample per retired instruction
 * decomposing its commit-cycle delta into base / I-cache / D-cache /
 * branch-mispredict / indirect-target / backend components. The
 * decomposition is interval-style: the delta is assigned to the
 * stall causes this instruction actually suffered, front end first,
 * each capped at its modelled budget, with the residue counted as
 * base cycles — so samples always sum exactly to cycles() and the
 * timing computation itself is untouched (bit-identical with or
 * without a listener).
 */
#ifndef JRS_ARCH_PIPELINE_PIPELINE_H
#define JRS_ARCH_PIPELINE_PIPELINE_H

#include <array>
#include <cstdint>
#include <vector>

#include "arch/bpred/btb.h"
#include "arch/bpred/predictors.h"
#include "arch/cache/cache.h"
#include "arch/outcome.h"
#include "isa/trace.h"

namespace jrs {

/** Pipeline parameters. */
struct PipelineConfig {
    std::uint32_t issueWidth = 4;
    std::uint32_t robSize = 64;
    std::uint32_t frontendDepth = 2;       ///< fetch-to-issue stages
    std::uint32_t mispredictPenalty = 4;   ///< refill bubble
    std::uint32_t icacheMissPenalty = 8;
    std::uint32_t dcacheMissPenalty = 12;
    CacheConfig icache{64 * 1024, 32, 2, true};
    CacheConfig dcache{64 * 1024, 32, 4, true};
};

/** The trace-driven pipeline. */
class PipelineSim : public TraceSink {
  public:
    explicit PipelineSim(PipelineConfig cfg);

    void onEvent(const TraceEvent &ev) override;

    /** Instructions retired. */
    std::uint64_t instructions() const { return insts_; }

    /** Total cycles (last commit). */
    std::uint64_t cycles() const { return lastCommit_; }

    /** Instructions per cycle. */
    double ipc() const {
        return lastCommit_ == 0
            ? 0.0
            : static_cast<double>(insts_)
                / static_cast<double>(lastCommit_);
    }

    /** Branch mispredicts incurred (cond + indirect). */
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Conditional branches seen / mispredicted. */
    std::uint64_t condBranches() const { return condBranches_; }
    std::uint64_t condMispredicts() const { return condMispredicts_; }

    /** Indirect transfers seen / target-mispredicted. */
    std::uint64_t indirects() const { return indirects_; }
    std::uint64_t indirectMispredicts() const {
        return indirectMispredicts_;
    }

    /** The model's internal caches (read-only; stats for joins). */
    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }

    /**
     * Observe per-access outcomes and per-retire CPI samples (null
     * detaches). Zero-cost when unset; never affects timing.
     */
    void setListener(OutcomeListener *listener) {
        listener_ = listener;
    }

    const PipelineConfig &config() const { return cfg_; }

  private:
    static std::uint32_t latencyOf(NKind kind);

    PipelineConfig cfg_;
    Cache icache_;
    Cache dcache_;
    GShare predictor_;
    Btb btb_;

    std::uint64_t insts_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t condBranches_ = 0;
    std::uint64_t condMispredicts_ = 0;
    std::uint64_t indirects_ = 0;
    std::uint64_t indirectMispredicts_ = 0;

    OutcomeListener *listener_ = nullptr;
    /** Refill bubble owed to the previous mispredicted transfer. */
    CpiComponent pendingRedirect_ = CpiComponent::Base;
    std::uint32_t pendingRedirectBudget_ = 0;

    // Fetch state.
    std::uint64_t fetchCycle_ = 1;
    std::uint32_t fetchedThisCycle_ = 0;

    // Register scoreboard: cycle each architectural reg becomes ready.
    std::array<std::uint64_t, 256> regReady_{};

    // Approximate store->load forwarding: small direct-mapped table of
    // last-store completion times keyed by 4-byte granule.
    struct StoreEntry {
        std::uint64_t addr = ~0ull;
        std::uint64_t done = 0;
    };
    std::array<StoreEntry, 4096> stores_{};

    // Miss-status-holding registers: bound memory-level parallelism
    // to 4 outstanding misses.
    std::array<std::uint64_t, 4> mshr_{};
    std::size_t mshrHead_ = 0;

    // In-order commit: ring of completion times (ROB) + commit clock.
    std::vector<std::uint64_t> rob_;
    std::size_t robHead_ = 0;
    std::uint64_t lastCommit_ = 0;
    std::uint32_t commitsThisCycle_ = 0;
};

} // namespace jrs

#endif // JRS_ARCH_PIPELINE_PIPELINE_H
