#include "arch/mix/instruction_mix.h"

// InstructionMix is header-only.
