/**
 * @file
 * Dynamic instruction-mix collector (Figure 2).
 *
 * Counts retired simulated instructions by NKind and by Phase, and
 * aggregates them into the categories the paper plots: memory accesses,
 * control transfers, integer ALU, FP, and other.
 */
#ifndef JRS_ARCH_MIX_INSTRUCTION_MIX_H
#define JRS_ARCH_MIX_INSTRUCTION_MIX_H

#include <array>

#include "isa/trace.h"

namespace jrs {

/** Per-kind dynamic counts with category summaries. */
class InstructionMix : public TraceSink {
  public:
    void onEvent(const TraceEvent &ev) override {
        ++counts_[static_cast<std::size_t>(ev.kind)];
        ++phase_[static_cast<std::size_t>(ev.phase)]
                [static_cast<std::size_t>(ev.kind)];
        ++total_;
    }

    /** Total dynamic instructions. */
    std::uint64_t total() const { return total_; }

    /** Count for one kind. */
    std::uint64_t count(NKind kind) const {
        return counts_[static_cast<std::size_t>(kind)];
    }

    /** Count for one kind within one phase. */
    std::uint64_t count(Phase phase, NKind kind) const {
        return phase_[static_cast<std::size_t>(phase)]
                     [static_cast<std::size_t>(kind)];
    }

    /** Loads + stores. */
    std::uint64_t memoryOps() const {
        return count(NKind::Load) + count(NKind::Store);
    }

    /** All control transfers (branches, jumps, calls, returns). */
    std::uint64_t controlOps() const {
        return count(NKind::Branch) + count(NKind::Jump)
            + count(NKind::IndirectJump) + count(NKind::Call)
            + count(NKind::IndirectCall) + count(NKind::Ret);
    }

    /** Register-indirect control transfers. */
    std::uint64_t indirectOps() const {
        return count(NKind::IndirectJump) + count(NKind::IndirectCall);
    }

    /** Conditional branches only. */
    std::uint64_t conditionalBranches() const {
        return count(NKind::Branch);
    }

    /** Integer computation (alu + mul + div). */
    std::uint64_t intOps() const {
        return count(NKind::IntAlu) + count(NKind::IntMul)
            + count(NKind::IntDiv);
    }

    /** FP computation. */
    std::uint64_t fpOps() const {
        return count(NKind::FpAlu) + count(NKind::FpMul)
            + count(NKind::FpDiv);
    }

    /** Percentage of total for a raw count. */
    double pct(std::uint64_t part) const {
        return total_ == 0 ? 0.0
                           : 100.0 * static_cast<double>(part)
                                 / static_cast<double>(total_);
    }

    void reset() {
        counts_.fill(0);
        for (auto &p : phase_)
            p.fill(0);
        total_ = 0;
    }

  private:
    std::array<std::uint64_t, kNumNKinds> counts_{};
    std::array<std::array<std::uint64_t, kNumNKinds>, kNumPhases>
        phase_{};
    std::uint64_t total_ = 0;
};

} // namespace jrs

#endif // JRS_ARCH_MIX_INSTRUCTION_MIX_H
