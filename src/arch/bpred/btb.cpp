#include "arch/bpred/btb.h"

// Btb is header-only.
