/**
 * @file
 * History-based indirect-branch target cache.
 *
 * The paper concludes that interpreter-mode execution needs "a
 * predictor well-tailored for indirect branches" (its refs [22], [26]
 * — Chang/Hao/Patt target caches and Driesen/Hölzle's work). A plain
 * BTB keeps ONE target per branch pc, which is hopeless for the
 * interpreter's single dispatch jump with ~90 live targets. A target
 * cache instead indexes its table with the pc XOR a hash of the most
 * recent indirect TARGETS: for an interpreter, that history encodes
 * "the last few opcodes executed", and since bytecode follows repeating
 * patterns (loop bodies), the next handler is highly predictable given
 * the path.
 */
#ifndef JRS_ARCH_BPRED_TARGET_CACHE_H
#define JRS_ARCH_BPRED_TARGET_CACHE_H

#include <cstdint>
#include <vector>

namespace jrs {

/** Path-history indexed target predictor. */
class TargetCache {
  public:
    /**
     * @param entries      Table size (power of two).
     * @param history_bits Bits of folded target history in the index.
     */
    explicit TargetCache(std::size_t entries = 1024,
                         std::uint32_t history_bits = 12)
        : table_(entries), mask_(entries - 1),
          histMask_((1u << history_bits) - 1) {}

    /** Predicted target (0 when the entry is cold). */
    std::uint64_t predict(std::uint64_t pc) const {
        return table_[index(pc)];
    }

    /** Train with the actual target and extend the path history. */
    void update(std::uint64_t pc, std::uint64_t target) {
        table_[index(pc)] = target;
        // Fold the low target bits into the path history.
        history_ = ((history_ << 3)
                    ^ static_cast<std::uint32_t>(target >> 4))
            & histMask_;
    }

    std::size_t entries() const { return table_.size(); }

  private:
    std::size_t index(std::uint64_t pc) const {
        return (static_cast<std::size_t>(pc >> 2)
                ^ static_cast<std::size_t>(history_))
            & mask_;
    }

    std::vector<std::uint64_t> table_;
    std::size_t mask_;
    std::uint32_t histMask_;
    std::uint32_t history_ = 0;
};

} // namespace jrs

#endif // JRS_ARCH_BPRED_TARGET_CACHE_H
