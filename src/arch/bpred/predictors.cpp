#include "arch/bpred/predictors.h"

namespace jrs {

PredictorBank::PredictorBank()
{
    preds_.push_back(std::make_unique<TwoBitPredictor>());
    preds_.push_back(std::make_unique<Bht1Level>());
    preds_.push_back(std::make_unique<GShare>());
    preds_.push_back(std::make_unique<TwoLevelPc>());
    mispredicts_.assign(preds_.size(), 0);
}

void
PredictorBank::onEvent(const TraceEvent &ev)
{
    if (ev.kind == NKind::Branch) {
        ++condBranches_;
        bool referenceWrong = false;
        for (std::size_t i = 0; i < preds_.size(); ++i) {
            const bool wrong = preds_[i]->predict(ev.pc) != ev.taken;
            if (wrong)
                ++mispredicts_[i];
            if (i + 1 == preds_.size())
                referenceWrong = wrong;
            preds_[i]->update(ev.pc, ev.taken);
        }
        if (listener_ != nullptr) {
            Outcome o;
            o.pc = ev.pc;
            o.kind = PerfKind::CondBranch;
            o.phase = ev.phase;
            o.bad = referenceWrong;
            listener_->onOutcome(o);
        }
        return;
    }
    if (ev.kind == NKind::IndirectJump
        || ev.kind == NKind::IndirectCall) {
        ++indirects_;
        const bool wrong = btb_.predict(ev.pc) != ev.target;
        if (wrong)
            ++btbMisses_;
        btb_.update(ev.pc, ev.target);
        if (listener_ != nullptr) {
            Outcome o;
            o.pc = ev.pc;
            o.kind = PerfKind::IndirectTarget;
            o.phase = ev.phase;
            o.bad = wrong;
            listener_->onOutcome(o);
        }
    }
}

std::vector<PredictorResult>
PredictorBank::results() const
{
    std::vector<PredictorResult> out;
    for (std::size_t i = 0; i < preds_.size(); ++i) {
        PredictorResult r;
        r.name = preds_[i]->name();
        r.condBranches = condBranches_;
        r.condMispredicts = mispredicts_[i];
        r.indirects = indirects_;
        r.indirectMispredicts = btbMisses_;
        out.push_back(r);
    }
    return out;
}

} // namespace jrs
