/**
 * @file
 * Branch predictors (Table 2).
 *
 * The paper's four conditional schemes, left to right in increasing
 * sophistication:
 *  - TwoBitPredictor : a single global 2-bit saturating counter
 *    ("included only for validation and consistency checking")
 *  - Bht1Level       : 2K-entry PC-indexed table of 2-bit counters
 *  - GShare          : 5 bits of global history XORed into the PC index
 *  - TwoLevelPc      : two-level, PC-indexed first level (per-address
 *    8-bit histories) indexing a 256-entry second-level counter table
 *    (the paper's GAp-style predictor)
 *
 * Register-indirect jumps/calls are covered by a 1K-entry BTB
 * (arch/bpred/btb.h); PredictorBank drives all of them from one trace
 * and reports per-scheme misprediction rates over all control
 * transfers needing prediction (conditional + indirect), the figure of
 * merit Table 2 tabulates.
 */
#ifndef JRS_ARCH_BPRED_PREDICTORS_H
#define JRS_ARCH_BPRED_PREDICTORS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/bpred/btb.h"
#include "arch/outcome.h"
#include "isa/trace.h"

namespace jrs {

/** Conditional branch predictor interface. */
class BranchPredictor {
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /** Train with the actual outcome. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Scheme name. */
    virtual const char *name() const = 0;
};

/** One global 2-bit saturating counter. */
class TwoBitPredictor : public BranchPredictor {
  public:
    bool predict(std::uint64_t) override { return counter_ >= 2; }
    void update(std::uint64_t, bool taken) override {
        if (taken && counter_ < 3)
            ++counter_;
        else if (!taken && counter_ > 0)
            --counter_;
    }
    const char *name() const override { return "2bit"; }

  private:
    std::uint8_t counter_ = 2;
};

/** PC-indexed table of 2-bit counters (1-level BHT). */
class Bht1Level : public BranchPredictor {
  public:
    explicit Bht1Level(std::size_t entries = 2048)
        : table_(entries, 2), mask_(entries - 1) {}

    bool predict(std::uint64_t pc) override {
        return table_[index(pc)] >= 2;
    }
    void update(std::uint64_t pc, bool taken) override {
        std::uint8_t &c = table_[index(pc)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }
    const char *name() const override { return "bht"; }

  private:
    std::size_t index(std::uint64_t pc) const {
        return static_cast<std::size_t>(pc >> 2) & mask_;
    }
    std::vector<std::uint8_t> table_;
    std::size_t mask_;
};

/** GShare: global history XOR PC. */
class GShare : public BranchPredictor {
  public:
    explicit GShare(std::size_t entries = 2048,
                    std::uint32_t history_bits = 5)
        : table_(entries, 2), mask_(entries - 1),
          histMask_((1u << history_bits) - 1) {}

    bool predict(std::uint64_t pc) override {
        return table_[index(pc)] >= 2;
    }
    void update(std::uint64_t pc, bool taken) override {
        std::uint8_t &c = table_[index(pc)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
        history_ = ((history_ << 1) | (taken ? 1u : 0u)) & histMask_;
    }
    const char *name() const override { return "gshare"; }

  private:
    std::size_t index(std::uint64_t pc) const {
        return (static_cast<std::size_t>(pc >> 2)
                ^ static_cast<std::size_t>(history_))
            & mask_;
    }
    std::vector<std::uint8_t> table_;
    std::size_t mask_;
    std::uint32_t histMask_;
    std::uint32_t history_ = 0;
};

/** Two-level, PC-indexed first level (GAp-style). */
class TwoLevelPc : public BranchPredictor {
  public:
    TwoLevelPc(std::size_t first_entries = 2048,
               std::size_t second_entries = 256)
        : histories_(first_entries, 0), firstMask_(first_entries - 1),
          counters_(second_entries, 2), secondMask_(second_entries - 1)
    {}

    bool predict(std::uint64_t pc) override {
        return counters_[secondIndex(pc)] >= 2;
    }
    void update(std::uint64_t pc, bool taken) override {
        std::uint8_t &c = counters_[secondIndex(pc)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
        std::uint8_t &h = histories_[firstIndex(pc)];
        h = static_cast<std::uint8_t>((h << 1) | (taken ? 1 : 0));
    }
    const char *name() const override { return "two_level_pc"; }

  private:
    std::size_t firstIndex(std::uint64_t pc) const {
        return static_cast<std::size_t>(pc >> 2) & firstMask_;
    }
    std::size_t secondIndex(std::uint64_t pc) const {
        return static_cast<std::size_t>(histories_[firstIndex(pc)])
            & secondMask_;
    }
    std::vector<std::uint8_t> histories_;
    std::size_t firstMask_;
    std::vector<std::uint8_t> counters_;
    std::size_t secondMask_;
};

/** Per-scheme results from a PredictorBank run. */
struct PredictorResult {
    const char *name;
    std::uint64_t condBranches;
    std::uint64_t condMispredicts;
    std::uint64_t indirects;
    std::uint64_t indirectMispredicts;

    /** Combined misprediction rate over cond + indirect transfers. */
    double mispredictRate() const {
        const std::uint64_t n = condBranches + indirects;
        return n == 0 ? 0.0
                      : static_cast<double>(condMispredicts
                                            + indirectMispredicts)
                / static_cast<double>(n);
    }
    /** Conditional-only misprediction rate. */
    double condRate() const {
        return condBranches == 0
            ? 0.0
            : static_cast<double>(condMispredicts)
                / static_cast<double>(condBranches);
    }
};

/** Runs the paper's four predictors + a shared BTB over one trace. */
class PredictorBank : public TraceSink {
  public:
    PredictorBank();

    void onEvent(const TraceEvent &ev) override;

    /** Results for every scheme, left-to-right as in Table 2. */
    std::vector<PredictorResult> results() const;

    /** BTB statistics. */
    std::uint64_t indirects() const { return indirects_; }
    std::uint64_t btbMisses() const { return btbMisses_; }

    /**
     * Report every predicted transfer as an Outcome: CondBranch
     * outcomes use the bank's most sophisticated scheme (two_level_pc,
     * the paper's best Table 2 predictor) as the reference;
     * IndirectTarget outcomes come from the shared BTB. Null detaches;
     * zero-cost when unset.
     */
    void setListener(OutcomeListener *listener) {
        listener_ = listener;
    }

  private:
    std::vector<std::unique_ptr<BranchPredictor>> preds_;
    std::vector<std::uint64_t> mispredicts_;
    std::uint64_t condBranches_ = 0;
    Btb btb_;
    std::uint64_t indirects_ = 0;
    std::uint64_t btbMisses_ = 0;
    OutcomeListener *listener_ = nullptr;
};

} // namespace jrs

#endif // JRS_ARCH_BPRED_PREDICTORS_H
