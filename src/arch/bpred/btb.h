/**
 * @file
 * Branch target buffer for indirect jumps and calls.
 *
 * Direct-mapped, 1K entries (the paper's configuration). An indirect
 * transfer mispredicts when the stored target differs from the actual
 * one — the dominant cost of the interpreter's switch dispatch.
 */
#ifndef JRS_ARCH_BPRED_BTB_H
#define JRS_ARCH_BPRED_BTB_H

#include <cstdint>
#include <vector>

namespace jrs {

/** Direct-mapped target buffer. */
class Btb {
  public:
    explicit Btb(std::size_t entries = 1024)
        : tags_(entries, 0), targets_(entries, 0), mask_(entries - 1) {}

    /** Predicted target of the transfer at @p pc (0 when absent). */
    std::uint64_t predict(std::uint64_t pc) const {
        const std::size_t i = index(pc);
        return tags_[i] == pc ? targets_[i] : 0;
    }

    /** Install/refresh the mapping pc -> target. */
    void update(std::uint64_t pc, std::uint64_t target) {
        const std::size_t i = index(pc);
        tags_[i] = pc;
        targets_[i] = target;
    }

    std::size_t entries() const { return tags_.size(); }

  private:
    std::size_t index(std::uint64_t pc) const {
        return static_cast<std::size_t>(pc >> 2) & mask_;
    }
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> targets_;
    std::size_t mask_;
};

} // namespace jrs

#endif // JRS_ARCH_BPRED_BTB_H
