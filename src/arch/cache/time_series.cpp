#include "arch/cache/time_series.h"

// TimeSeriesCacheSink is header-only.
