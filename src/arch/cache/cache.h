/**
 * @file
 * Set-associative cache model (the cachesim5 stand-in).
 *
 * True-LRU replacement, configurable size / line size / associativity,
 * write-allocate or write-no-allocate. Statistics are kept both in
 * total and split by execution phase so the translate-vs-rest analyses
 * of Figures 3 and 5 fall out directly. CacheSink adapts the trace
 * stream to a split L1: every event's pc touches the I-cache, loads and
 * stores touch the D-cache.
 */
#ifndef JRS_ARCH_CACHE_CACHE_H
#define JRS_ARCH_CACHE_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/outcome.h"
#include "isa/trace.h"

namespace jrs {

/** Static cache parameters. */
struct CacheConfig {
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 2;
    bool writeAllocate = true;

    std::uint32_t numSets() const {
        return sizeBytes / (lineBytes * assoc);
    }
};

/** Access counters. */
struct CacheStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;

    std::uint64_t accesses() const { return reads + writes; }
    std::uint64_t misses() const { return readMisses + writeMisses; }
    double missRate() const {
        return accesses() == 0
            ? 0.0
            : static_cast<double>(misses())
                / static_cast<double>(accesses());
    }
    /** Fraction of misses that are write misses (Figure 3). */
    double writeMissFraction() const {
        return misses() == 0
            ? 0.0
            : static_cast<double>(writeMisses)
                / static_cast<double>(misses());
    }
};

/** One cache level. */
class Cache {
  public:
    explicit Cache(CacheConfig cfg);

    /**
     * Access @p addr. @return true on hit. Updates total and per-phase
     * stats.
     */
    bool access(std::uint64_t addr, bool is_write, Phase phase);

    /** Hit check without state change (tests). */
    bool probe(std::uint64_t addr) const;

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return total_; }
    const CacheStats &phaseStats(Phase p) const {
        return perPhase_[static_cast<std::size_t>(p)];
    }

    /** Misses outside a given phase (Fig 5's "rest of JIT"). */
    CacheStats statsExcluding(Phase p) const;

    void resetStats();

    /**
     * Report every access() as an Outcome to @p listener (null
     * detaches). @p readKind / @p writeKind label read and write
     * accesses — an I-cache reports ICacheFetch for both, a D-cache
     * DCacheLoad / DCacheStore. Outcome::pc carries the accessed
     * address; the penalty is 0 (a bare cache charges no cycles).
     * Zero-cost when unset: one null test per access.
     */
    void setListener(OutcomeListener *listener,
                     PerfKind readKind = PerfKind::ICacheFetch,
                     PerfKind writeKind = PerfKind::ICacheFetch) {
        listener_ = listener;
        readKind_ = readKind;
        writeKind_ = writeKind;
    }

  private:
    bool lookup(std::uint64_t addr, bool is_write, Phase phase);

    CacheConfig cfg_;
    std::uint32_t lineShift_;
    std::uint32_t setMask_;
    /** Per set: tags in MRU-first order (0 = invalid). */
    std::vector<std::vector<std::uint64_t>> sets_;
    CacheStats total_;
    CacheStats perPhase_[kNumPhases];
    OutcomeListener *listener_ = nullptr;
    PerfKind readKind_ = PerfKind::ICacheFetch;
    PerfKind writeKind_ = PerfKind::ICacheFetch;
};

/** Split L1 fed from the trace stream. */
class CacheSink : public TraceSink {
  public:
    CacheSink(CacheConfig icfg, CacheConfig dcfg)
        : icache_(icfg), dcache_(dcfg) {}

    void onEvent(const TraceEvent &ev) override {
        icache_.access(ev.pc, false, ev.phase);
        if (ev.kind == NKind::Load)
            dcache_.access(ev.mem, false, ev.phase);
        else if (ev.kind == NKind::Store)
            dcache_.access(ev.mem, true, ev.phase);
    }

    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }

    /** Wire both caches' outcome streams to @p listener. */
    void setListener(OutcomeListener *listener) {
        icache_.setListener(listener, PerfKind::ICacheFetch,
                            PerfKind::ICacheFetch);
        dcache_.setListener(listener, PerfKind::DCacheLoad,
                            PerfKind::DCacheStore);
    }

  private:
    Cache icache_;
    Cache dcache_;
};

} // namespace jrs

#endif // JRS_ARCH_CACHE_CACHE_H
