#include "arch/cache/cache.h"

#include "vm/runtime/vm_error.h"

namespace jrs {

namespace {

std::uint32_t
log2u(std::uint32_t v)
{
    std::uint32_t s = 0;
    while ((1u << s) < v)
        ++s;
    return s;
}

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(CacheConfig cfg)
    : cfg_(cfg)
{
    if (!isPow2(cfg.lineBytes) || !isPow2(cfg.sizeBytes) || cfg.assoc == 0
        || cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) != 0
        || !isPow2(cfg.numSets())) {
        throw VmError("bad cache configuration");
    }
    lineShift_ = log2u(cfg.lineBytes);
    setMask_ = cfg.numSets() - 1;
    sets_.resize(cfg.numSets());
    for (auto &s : sets_)
        s.reserve(cfg.assoc);
}

bool
Cache::access(std::uint64_t addr, bool is_write, Phase phase)
{
    const bool hit = lookup(addr, is_write, phase);
    if (listener_ != nullptr) {
        Outcome o;
        o.pc = addr;
        o.kind = is_write ? writeKind_ : readKind_;
        o.phase = phase;
        o.bad = !hit;
        listener_->onOutcome(o);
    }
    return hit;
}

bool
Cache::lookup(std::uint64_t addr, bool is_write, Phase phase)
{
    const std::uint64_t line = addr >> lineShift_;
    const std::uint64_t tag = line | 0x8000'0000'0000'0000ull;  // valid
    auto &set = sets_[static_cast<std::size_t>(line) & setMask_];

    CacheStats &ps = perPhase_[static_cast<std::size_t>(phase)];
    if (is_write) {
        ++total_.writes;
        ++ps.writes;
    } else {
        ++total_.reads;
        ++ps.reads;
    }

    for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i] == tag) {
            // Hit: move to MRU position.
            for (std::size_t j = i; j > 0; --j)
                set[j] = set[j - 1];
            set[0] = tag;
            return true;
        }
    }

    // Miss.
    if (is_write) {
        ++total_.writeMisses;
        ++ps.writeMisses;
    } else {
        ++total_.readMisses;
        ++ps.readMisses;
    }
    if (is_write && !cfg_.writeAllocate)
        return false;  // write-around: no fill

    if (set.size() < cfg_.assoc) {
        set.insert(set.begin(), tag);
    } else {
        for (std::size_t j = set.size() - 1; j > 0; --j)
            set[j] = set[j - 1];
        set[0] = tag;
    }
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t line = addr >> lineShift_;
    const std::uint64_t tag = line | 0x8000'0000'0000'0000ull;
    const auto &set = sets_[static_cast<std::size_t>(line) & setMask_];
    for (std::uint64_t t : set) {
        if (t == tag)
            return true;
    }
    return false;
}

CacheStats
Cache::statsExcluding(Phase p) const
{
    CacheStats out;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        if (i == static_cast<std::size_t>(p))
            continue;
        out.reads += perPhase_[i].reads;
        out.writes += perPhase_[i].writes;
        out.readMisses += perPhase_[i].readMisses;
        out.writeMisses += perPhase_[i].writeMisses;
    }
    return out;
}

void
Cache::resetStats()
{
    total_ = CacheStats();
    for (auto &p : perPhase_)
        p = CacheStats();
}

} // namespace jrs
