/**
 * @file
 * Windowed miss-rate sampler (Figure 6).
 *
 * Wraps a split L1 and records, for every fixed-size window of trace
 * events, the I- and D-cache misses that occurred in that window —
 * the data behind the paper's miss-behaviour-over-time plots, where
 * JIT-mode translation bursts appear as clustered spikes.
 */
#ifndef JRS_ARCH_CACHE_TIME_SERIES_H
#define JRS_ARCH_CACHE_TIME_SERIES_H

#include "arch/cache/cache.h"

namespace jrs {

/** One sample window. */
struct MissSample {
    std::uint64_t iMisses = 0;
    std::uint64_t dMisses = 0;
    std::uint64_t dWriteMisses = 0;
    std::uint64_t translateEvents = 0;  ///< events in Phase::Translate
};

/** Split L1 plus per-window miss recording. */
class TimeSeriesCacheSink : public TraceSink {
  public:
    TimeSeriesCacheSink(CacheConfig icfg, CacheConfig dcfg,
                        std::uint64_t window_events)
        : icache_(icfg), dcache_(dcfg), window_(window_events) {}

    void onEvent(const TraceEvent &ev) override {
        const std::uint64_t i0 = icache_.stats().misses();
        const std::uint64_t d0 = dcache_.stats().misses();
        const std::uint64_t w0 = dcache_.stats().writeMisses;
        icache_.access(ev.pc, false, ev.phase);
        if (ev.kind == NKind::Load)
            dcache_.access(ev.mem, false, ev.phase);
        else if (ev.kind == NKind::Store)
            dcache_.access(ev.mem, true, ev.phase);
        current_.iMisses += icache_.stats().misses() - i0;
        current_.dMisses += dcache_.stats().misses() - d0;
        current_.dWriteMisses += dcache_.stats().writeMisses - w0;
        if (ev.phase == Phase::Translate)
            ++current_.translateEvents;
        if (++inWindow_ == window_) {
            samples_.push_back(current_);
            current_ = MissSample();
            inWindow_ = 0;
        }
    }

    void onFinish() override {
        if (inWindow_ != 0) {
            samples_.push_back(current_);
            current_ = MissSample();
            inWindow_ = 0;
        }
    }

    const std::vector<MissSample> &samples() const { return samples_; }
    std::uint64_t windowEvents() const { return window_; }
    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }

  private:
    Cache icache_;
    Cache dcache_;
    std::uint64_t window_;
    std::uint64_t inWindow_ = 0;
    MissSample current_;
    std::vector<MissSample> samples_;
};

} // namespace jrs

#endif // JRS_ARCH_CACHE_TIME_SERIES_H
