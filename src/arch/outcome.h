/**
 * @file
 * Per-event microarchitectural outcomes.
 *
 * The architecture models (Cache, PredictorBank, PipelineSim) only
 * expose end-of-run totals; this header adds the event layer that lets
 * an observer see *each* hit/miss and predict/mispredict as it
 * happens, carrying the simulated pc so the outcome can be joined with
 * the VM's symbol maps (obs/perf.h). Models hold a raw
 * `OutcomeListener *` that is null by default: the unset cost is one
 * pointer test per modelled access, and no listener state exists until
 * a profiler installs one, so plain runs are unchanged bit-for-bit.
 *
 * The pipeline model additionally decomposes every retired
 * instruction's commit-cycle delta into a CPI stack (CpiSample). The
 * components always sum exactly to the instruction's delta, so summing
 * samples over any partition of the stream conserves total cycles.
 */
#ifndef JRS_ARCH_OUTCOME_H
#define JRS_ARCH_OUTCOME_H

#include <cstdint>

#include "isa/trace.h"

namespace jrs {

/** What kind of microarchitectural event an Outcome reports. */
enum class PerfKind : std::uint8_t {
    ICacheFetch,     ///< instruction fetch (every event)
    DCacheLoad,      ///< data-cache read (NKind::Load)
    DCacheStore,     ///< data-cache write (NKind::Store)
    CondBranch,      ///< conditional-branch direction prediction
    IndirectTarget,  ///< BTB target prediction (ind. jump/call)
};

/** Number of distinct PerfKind values (for counting arrays). */
inline constexpr std::size_t kNumPerfKinds = 5;

/** Human-readable name of a perf-event kind. */
const char *perfKindName(PerfKind kind);

/**
 * One modelled access and how it went. @c pc is the accessed address
 * as the reporting model sees it: the instruction address for fetches
 * and branch predictions, the effective data address for D-cache
 * accesses. @c bad means miss (caches) or mispredict (predictors);
 * @c penalty is the cycle cost the reporting model charged (0 for
 * pure-count models like a bare Cache or PredictorBank).
 */
struct Outcome {
    std::uint64_t pc = 0;
    PerfKind kind = PerfKind::ICacheFetch;
    Phase phase = Phase::Interpret;
    bool bad = false;
    std::uint32_t penalty = 0;
};

/**
 * Components of the pipeline model's CPI stack. "Backend" is the
 * ROB-or-dependence bucket: cycles the commit stream waited on ROB
 * occupancy, register/memory dependences, execution latency, or the
 * bounded-MLP memory port — everything behind dispatch that is not a
 * cache miss or a mispredict refill.
 */
enum class CpiComponent : std::uint8_t {
    Base,              ///< no-stall issue/commit cycles
    ICache,            ///< I-cache miss stall
    DCache,            ///< D-cache (load) miss stall
    BranchMispredict,  ///< conditional-direction refill bubble
    IndirectTarget,    ///< indirect-target (BTB) refill bubble
    Backend,           ///< ROB / dependence / latency
};

/** Number of CPI-stack components. */
inline constexpr std::size_t kNumCpiComponents = 6;

/** Human-readable name of a CPI component. */
const char *cpiComponentName(CpiComponent c);

/**
 * One retired instruction's share of total cycles, decomposed.
 * cycles[] sums exactly to this instruction's commit delta (the
 * cycles the machine's commit point advanced retiring it), so the
 * samples of a run partition PipelineSim::cycles() with no residue.
 */
struct CpiSample {
    std::uint64_t pc = 0;
    Phase phase = Phase::Interpret;
    std::uint64_t cycles[kNumCpiComponents] = {};

    std::uint64_t total() const {
        std::uint64_t t = 0;
        for (const std::uint64_t c : cycles)
            t += c;
        return t;
    }
};

/**
 * Observer of per-event outcomes. Both hooks default to no-ops so a
 * listener can subscribe to only the stream it needs. Implementations
 * must be cheap and must not touch the reporting model (the models
 * call out mid-access).
 */
class OutcomeListener {
  public:
    virtual ~OutcomeListener() = default;

    /** One modelled access (cache or predictor). */
    virtual void onOutcome(const Outcome &) {}

    /** One retired instruction's CPI decomposition (pipeline only). */
    virtual void onRetire(const CpiSample &) {}
};

} // namespace jrs

#endif // JRS_ARCH_OUTCOME_H
