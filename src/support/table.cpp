#include "support/table.h"

#include <algorithm>
#include <cctype>

namespace jrs {

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.'
            && c != '-' && c != '+' && c != ',' && c != '%' && c != 'x'
            && c != 'e' && c != 'E') {
            return false;
        }
    }
    return true;
}

} // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c]
                                                     : std::string();
            const std::size_t pad = widths[c] - cell.size();
            os << "  ";
            if (looksNumeric(cell)) {
                os << std::string(pad, ' ') << cell;
            } else {
                os << cell << std::string(pad, ' ');
            }
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace jrs
