#include "support/random.h"

// XorShift64 is fully inline; this translation unit exists so the module
// has a home for future out-of-line distributions.
