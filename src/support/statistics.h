/**
 * @file
 * Lightweight statistics primitives shared by the VM and the
 * architecture models: counters with ratio helpers and fixed-bucket
 * histograms. Modeled loosely on simulator stats packages, but kept
 * minimal — every experiment in bench/ ultimately prints plain rows.
 */
#ifndef JRS_SUPPORT_STATISTICS_H
#define JRS_SUPPORT_STATISTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace jrs {

/** Percentage of @p part within @p whole; 0 when whole == 0. */
double percent(std::uint64_t part, std::uint64_t whole);

/** Ratio part/whole; 0 when whole == 0. */
double ratio(std::uint64_t part, std::uint64_t whole);

/**
 * Fixed-width bucket histogram over unsigned samples.
 *
 * Used e.g. for method-size and lock-recursion-depth distributions.
 * The last bucket is an overflow bucket capturing all samples at or
 * above the configured maximum.
 */
class Histogram {
  public:
    /**
     * @param bucket_width Width of each bucket (>0).
     * @param num_buckets  Number of regular buckets before overflow.
     */
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    /** Record one sample. */
    void add(std::uint64_t sample);

    /** Number of samples recorded so far. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Count in bucket @p index (the last index is the overflow bucket). */
    std::uint64_t bucketCount(std::size_t index) const;

    /** Total number of buckets including overflow. */
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Fraction of samples strictly below @p value. */
    double fractionBelow(std::uint64_t value) const;

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::vector<std::uint64_t> rawBelow_;  ///< exact counts per bucket start
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::vector<std::uint64_t> samplesSorted_;  // kept for exact quantiles
};

/** Format @p v with thousands separators, e.g. 1234567 -> "1,234,567". */
std::string withCommas(std::uint64_t v);

/** Format a double with @p decimals digits after the point. */
std::string fixed(double v, int decimals = 2);

} // namespace jrs

#endif // JRS_SUPPORT_STATISTICS_H
