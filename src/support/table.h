/**
 * @file
 * Plain-text table printer used by every bench binary to format the
 * rows of the paper's tables and figures. Columns auto-size to the
 * widest cell; numeric cells are right-aligned.
 */
#ifndef JRS_SUPPORT_TABLE_H
#define JRS_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace jrs {

/** A growable text table with a header row and aligned output. */
class Table {
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; missing cells render empty, extras are dropped. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment to @p os, with a separator rule. */
    void print(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace jrs

#endif // JRS_SUPPORT_TABLE_H
