#include "support/statistics.h"

#include <algorithm>
#include <cstdio>

namespace jrs {

double
percent(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part)
                            / static_cast<double>(whole);
}

double
ratio(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0
                      : static_cast<double>(part)
                            / static_cast<double>(whole);
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width == 0 ? 1 : bucket_width),
      buckets_(num_buckets + 1, 0)
{
}

void
Histogram::add(std::uint64_t sample)
{
    std::size_t idx = static_cast<std::size_t>(sample / bucketWidth_);
    if (idx >= buckets_.size() - 1)
        idx = buckets_.size() - 1;
    ++buckets_[idx];
    ++count_;
    sum_ += sample;
    samplesSorted_.push_back(sample);
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_)
                             / static_cast<double>(count_);
}

std::uint64_t
Histogram::bucketCount(std::size_t index) const
{
    return index < buckets_.size() ? buckets_[index] : 0;
}

double
Histogram::fractionBelow(std::uint64_t value) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (std::uint64_t s : samplesSorted_) {
        if (s < value)
            ++below;
    }
    return static_cast<double>(below) / static_cast<double>(count_);
}

std::string
withCommas(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int pos = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (pos != 0 && pos % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++pos;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
fixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

} // namespace jrs
