/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * All stochastic behaviour in jrs flows through XorShift64 so that every
 * experiment is exactly reproducible from a seed. We deliberately avoid
 * std::mt19937 in workload code: the generator state is part of the
 * simulated program's data, and a small, inlineable generator keeps the
 * native-trace cost model honest.
 */
#ifndef JRS_SUPPORT_RANDOM_H
#define JRS_SUPPORT_RANDOM_H

#include <cstdint>

namespace jrs {

/** xorshift64* generator (Vigna 2014 variant). Never yields 0 state. */
class XorShift64 {
  public:
    explicit XorShift64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

    /** Next raw 64-bit value. */
    std::uint64_t next() {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound) {
        return next() % bound;
    }

    /** Uniform 32-bit signed value in [lo, hi]. */
    std::int32_t nextInRange(std::int32_t lo, std::int32_t hi) {
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo)
            + 1;
        return static_cast<std::int32_t>(lo
            + static_cast<std::int64_t>(nextBounded(span)));
    }

    /** Uniform double in [0, 1). */
    double nextDouble() {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Current internal state (for checkpoint-style tests). */
    std::uint64_t state() const { return state_; }

  private:
    std::uint64_t state_;
};

} // namespace jrs

#endif // JRS_SUPPORT_RANDOM_H
