/**
 * @file
 * Quickstart: build a workload, run it under the interpreter and the
 * JIT, and print what the runtime observed. This is the five-minute
 * tour of the jrs public API.
 */
#include <iostream>

#include "arch/mix/instruction_mix.h"
#include "vm/engine/engine.h"
#include "workloads/workload.h"

using namespace jrs;

namespace {

void
runOnce(const Program &prog, std::int32_t arg,
        std::shared_ptr<CompilationPolicy> policy)
{
    InstructionMix mix;
    EngineConfig cfg;
    cfg.policy = std::move(policy);
    cfg.sink = &mix;
    ExecutionEngine engine(prog, cfg);
    const RunResult res = engine.run(arg);

    std::cout << "  policy=" << cfg.policy->name()
              << "  completed=" << (res.completed ? "yes" : "no");
    if (res.uncaughtException != nullptr)
        std::cout << "  uncaught=" << res.uncaughtException;
    std::cout << "  checksum=" << res.exitValue
              << "\n    native instructions: " << res.totalEvents
              << " (interp " << res.inPhase(Phase::Interpret)
              << ", translate " << res.inPhase(Phase::Translate)
              << ", native " << res.inPhase(Phase::NativeExec)
              << ", runtime " << res.inPhase(Phase::Runtime) << ")"
              << "\n    methods compiled: " << res.methodsCompiled
              << "  bytecodes interpreted: " << res.bytecodesInterpreted
              << "\n    mix: mem " << mix.pct(mix.memoryOps())
              << "%  control " << mix.pct(mix.controlOps())
              << "%  indirect " << mix.pct(mix.indirectOps()) << "%\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "compress";
    const WorkloadInfo *info = findWorkload(name);
    if (info == nullptr) {
        std::cerr << "unknown workload: " << name << "\nknown:";
        for (const auto &w : allWorkloads())
            std::cerr << ' ' << w.name;
        std::cerr << '\n';
        return 1;
    }

    const Program prog = info->build();
    std::cout << "workload " << info->name << " (" << info->description
              << "), arg=" << info->tinyArg << "\n";

    runOnce(prog, info->tinyArg, std::make_shared<NeverCompilePolicy>());
    runOnce(prog, info->tinyArg, std::make_shared<AlwaysCompilePolicy>());
    runOnce(prog, info->tinyArg, std::make_shared<CounterPolicy>(2));
    return 0;
}
