/**
 * @file
 * Cache design-space exploration for a Java runtime (Section 4.3 as a
 * tool): attach a grid of cache configurations to ONE execution of a
 * workload (the trace fans out to every configuration simultaneously)
 * and print the miss-rate surface for both execution modes.
 *
 * Usage: cache_explorer [workload] [arg]
 */
#include <iostream>
#include <memory>

#include "arch/cache/cache.h"
#include "harness/experiment.h"
#include "support/statistics.h"
#include "support/table.h"

using namespace jrs;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "javac";
    const WorkloadInfo *w = findWorkload(name);
    if (w == nullptr) {
        std::cerr << "unknown workload " << name << "\n";
        return 1;
    }
    const std::int32_t arg =
        argc > 2 ? std::atoi(argv[2]) : w->smallArg;

    const std::uint32_t sizes_kb[] = {4, 8, 16, 32, 64};
    const std::uint32_t assocs[] = {1, 2, 4};

    for (const bool jit : {false, true}) {
        // One run, 15 cache configurations watching it.
        std::vector<std::unique_ptr<CacheSink>> sinks;
        MultiSink multi;
        for (std::uint32_t kb : sizes_kb) {
            for (std::uint32_t a : assocs) {
                sinks.push_back(std::make_unique<CacheSink>(
                    CacheConfig{kb * 1024, 32, a, true},
                    CacheConfig{kb * 1024, 32, a, true}));
                multi.add(sinks.back().get());
            }
        }
        RunSpec s;
        s.workload = w;
        s.arg = arg;
        s.policy = jit
            ? std::static_pointer_cast<CompilationPolicy>(
                  std::make_shared<AlwaysCompilePolicy>())
            : std::static_pointer_cast<CompilationPolicy>(
                  std::make_shared<NeverCompilePolicy>());
        s.sink = &multi;
        (void)runWorkload(s);

        std::cout << "\n" << w->name << " — "
                  << (jit ? "JIT" : "interpreter")
                  << " mode D-cache miss% (rows: size, cols: assoc)\n";
        Table t({"size", "1-way", "2-way", "4-way"});
        std::size_t k = 0;
        for (std::uint32_t kb : sizes_kb) {
            std::vector<std::string> row{std::to_string(kb) + "K"};
            for (std::size_t a = 0; a < 3; ++a) {
                row.push_back(fixed(
                    100.0 * sinks[k]->dcache().stats().missRate(), 3));
                ++k;
            }
            t.addRow(row);
        }
        t.print(std::cout);
    }
    std::cout << "\n(each mode ran once; all configurations observed "
                 "the same instruction stream)\n";
    return 0;
}
