/**
 * @file
 * jrs_gc — run a workload under a collector and report what the GC
 * did: collection counts, reclaim/copy volume, pause-time histogram
 * (in emitted collector instructions, the simulator's time unit),
 * and the cross-collector end-state comparison.
 *
 *   jrs_gc stats <workload> [options]    one run, GcStats summary
 *   jrs_gc pauses <workload> [options]   per-collection pause table
 *   jrs_gc compare <workload> [options]  nogc vs marksweep vs copying
 *
 *   --mode interp|jit|hybrid   execution mode (default: jit)
 *   --arg N                    workload argument (default: smallArg)
 *   --tiny                     use the workload's tinyArg instead
 *   --collector C              nogc | marksweep | copying
 *                              (stats/pauses; default marksweep)
 *   --heap-bytes N             heap capacity (k/m/g suffixes OK)
 *   --gc-budget N              collect every N allocated bytes
 *   --gc-every N               collect every N allocations; stats and
 *                              pauses default to 64 when the chosen
 *                              collector has no trigger configured,
 *                              so tiny inputs still collect
 *
 * compare runs all three collectors under identical triggers and
 * demands that exit value, allocation counts and the reachable-heap
 * digest agree bit-for-bit — the collectors may only reshuffle dead
 * bytes, never change what the program computed.
 *
 * Unknown --collector values and malformed sizes exit 2.
 *
 * Examples:
 *   jrs_gc stats compress --collector marksweep --gc-every 64
 *   jrs_gc pauses javac --collector copying --heap-bytes 8m
 *   jrs_gc compare db --gc-every 32
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "gc/config.h"
#include "obs/cli.h"
#include "support/statistics.h"
#include "support/table.h"
#include "vm/engine/engine.h"
#include "vm/engine/policy.h"
#include "workloads/workload.h"

using namespace jrs;

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::cerr << "error: " << msg << "\n\n";
    std::cerr << "usage: jrs_gc <stats|pauses|compare> <workload>"
                 " [--mode interp|jit|hybrid] [--arg N] [--tiny]"
              << obs::GcCli::usageText() << obs::ObsCli::usageText()
              << "\n\nworkloads:\n";
    for (const WorkloadInfo &w : allWorkloads())
        std::cerr << "  " << w.name << " — " << w.description << '\n';
    std::exit(2);
}

std::shared_ptr<CompilationPolicy>
parseMode(const std::string &mode)
{
    if (mode == "interp")
        return std::make_shared<NeverCompilePolicy>();
    if (mode == "jit")
        return std::make_shared<AlwaysCompilePolicy>();
    if (mode == "hybrid")
        return std::make_shared<CounterPolicy>(8);
    usage("unknown --mode (expect interp, jit, or hybrid)");
}

/** One run under @p gcOpts; throws VmError when it does not finish. */
struct GcRun {
    RunResult result;
    std::uint64_t liveHash = 0;
};

GcRun
runOnce(const WorkloadInfo &w, std::int32_t arg,
        const std::string &mode, const gc::GcOptions &gcOpts,
        std::size_t heapBytes)
{
    const Program prog = w.build();
    EngineConfig cfg;
    cfg.policy = parseMode(mode);
    cfg.gc = gcOpts;
    cfg.heapBytes = heapBytes;
    ExecutionEngine engine(prog, cfg);
    GcRun out;
    out.result = engine.run(arg);
    if (!out.result.completed) {
        std::cerr << w.name << " did not complete: "
                  << (out.result.uncaughtException != nullptr
                          ? out.result.uncaughtException
                          : "unknown")
                  << '\n';
        std::exit(1);
    }
    out.liveHash = engine.liveHeapHash();
    return out;
}

/** Give the chosen collector a trigger that fires on tiny inputs. */
gc::GcOptions
withDefaultTrigger(gc::GcOptions opts)
{
    if (opts.collector != gc::CollectorKind::None
        && opts.budgetBytes == 0 && opts.everyNAllocs == 0) {
        opts.everyNAllocs = 64;
    }
    return opts;
}

void
printStats(const gc::GcStats &s, std::uint64_t totalEvents)
{
    Table t({"stat", "value"});
    t.addRow({"collections", std::to_string(s.collections)});
    t.addRow({"collector events", withCommas(s.gcEvents)});
    t.addRow({"collector share",
              fixed(percent(s.gcEvents, totalEvents), 2) + " %"});
    t.addRow({"bytes freed (marksweep)", withCommas(s.bytesFreed)});
    t.addRow({"bytes copied (copying)", withCommas(s.bytesCopied)});
    t.addRow({"live bytes after last GC",
              withCommas(s.liveBytesLast)});
    t.addRow({"live objects after last GC",
              std::to_string(s.liveObjectsLast)});
    t.addRow({"roots at last GC", std::to_string(s.rootsLast)});
    t.print(std::cout);
}

int
cmdStats(const WorkloadInfo &w, std::int32_t arg,
         const std::string &mode, const obs::GcCli &gcCli)
{
    const gc::GcOptions opts = withDefaultTrigger(gcCli.gc);
    const GcRun run =
        runOnce(w, arg, mode, opts, gcCli.heapBytes);
    std::cout << w.name << " --mode " << mode << " --arg " << arg
              << " [" << gc::collectorName(opts.collector)
              << "]: exit=" << run.result.exitValue << ", "
              << withCommas(run.result.totalEvents) << " events\n\n";
    printStats(run.result.gcStats, run.result.totalEvents);
    return 0;
}

int
cmdPauses(const WorkloadInfo &w, std::int32_t arg,
          const std::string &mode, const obs::GcCli &gcCli)
{
    const gc::GcOptions opts = withDefaultTrigger(gcCli.gc);
    const GcRun run =
        runOnce(w, arg, mode, opts, gcCli.heapBytes);
    const std::vector<std::uint64_t> &pauses =
        run.result.gcStats.pauseEvents;
    std::cout << w.name << " --mode " << mode << " ["
              << gc::collectorName(opts.collector) << "]: "
              << pauses.size() << " collections\n";
    if (pauses.empty())
        return 0;

    std::uint64_t lo = pauses[0], hi = pauses[0], sum = 0;
    for (const std::uint64_t p : pauses) {
        lo = std::min(lo, p);
        hi = std::max(hi, p);
        sum += p;
    }
    std::cout << "pause events: min=" << lo << " mean="
              << sum / pauses.size() << " max=" << hi << "\n\n";
    Table t({"#", "pause (collector events)"});
    for (std::size_t i = 0; i < pauses.size(); ++i) {
        t.addRow({std::to_string(i + 1),
                  withCommas(pauses[i])});
    }
    t.print(std::cout);
    return 0;
}

int
cmdCompare(const WorkloadInfo &w, std::int32_t arg,
           const std::string &mode, const obs::GcCli &gcCli)
{
    // Identical triggers for every collector; nogc ignores them.
    const gc::GcOptions base = withDefaultTrigger([&] {
        gc::GcOptions o = gcCli.gc;
        o.collector = gc::CollectorKind::MarkSweep;
        return o;
    }());

    Table t({"collector", "exit", "alloc bytes", "collections",
             "gc events", "live hash"});
    bool ok = true;
    std::int32_t refExit = 0;
    std::size_t refAllocs = 0;
    std::uint64_t refHash = 0;
    bool first = true;
    for (const gc::CollectorKind kind : gc::allCollectorKinds()) {
        gc::GcOptions opts = base;
        opts.collector = kind;
        const GcRun run =
            runOnce(w, arg, mode, opts, gcCli.heapBytes);
        const gc::GcStats &s = run.result.gcStats;
        char hash[32];
        std::snprintf(hash, sizeof hash, "%016llx",
                      static_cast<unsigned long long>(run.liveHash));
        t.addRow({gc::collectorName(kind),
                  std::to_string(run.result.exitValue),
                  withCommas(run.result.memory.heapBytes),
                  std::to_string(s.collections),
                  withCommas(s.gcEvents), hash});
        if (first) {
            refExit = run.result.exitValue;
            refAllocs = run.result.memory.heapBytes;
            refHash = run.liveHash;
            first = false;
            continue;
        }
        if (run.result.exitValue != refExit
            || run.result.memory.heapBytes != refAllocs
            || run.liveHash != refHash) {
            ok = false;
        }
    }
    std::cout << w.name << " --mode " << mode << " --arg " << arg
              << ":\n";
    t.print(std::cout);
    std::cout << "\ncollectors "
              << (ok ? "agree (exit, allocation volume, reachable-heap"
                       " digest all identical)"
                     : "DIVERGE")
              << '\n';
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const std::string command = argv[1];
    if (command != "stats" && command != "pauses"
        && command != "compare") {
        usage("unknown command (expect stats, pauses or compare)");
    }
    const WorkloadInfo *w = findWorkload(argv[2]);
    if (w == nullptr)
        usage("unknown workload");

    std::string mode = "jit";
    std::int32_t arg = w->smallArg;
    obs::ObsCli cli;
    obs::GcCli gcCli;
    gcCli.gc.collector = gc::CollectorKind::MarkSweep;
    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--mode") {
            mode = next();
        } else if (a == "--arg") {
            const std::string v = next();
            char *end = nullptr;
            arg = static_cast<std::int32_t>(
                std::strtol(v.c_str(), &end, 10));
            if (end == v.c_str() || *end != '\0')
                usage("--arg expects a number");
        } else if (a == "--tiny") {
            arg = w->tinyArg;
        } else if (cli.tryParse(a, next)
                   || gcCli.tryParse(a, next)) {
            continue;
        } else {
            usage("unknown option");
        }
    }

    cli.setup();
    int rc = 0;
    if (command == "stats")
        rc = cmdStats(*w, arg, mode, gcCli);
    else if (command == "pauses")
        rc = cmdPauses(*w, arg, mode, gcCli);
    else
        rc = cmdCompare(*w, arg, mode, gcCli);
    cli.finish(std::cout);
    return rc;
}
