/**
 * @file
 * jrs_check — conformance and trace-integrity checking.
 *
 *   jrs_check fuzz --seeds N [--seed-base S] [--jobs N]
 *                  [--kernels K] [--arg A]
 *       Differential-fuzz N generated programs across the interp /
 *       jit / hybrid execution modes. Any divergence prints a
 *       minimized repro; exit 1.
 *
 *   jrs_check diff --all-workloads
 *   jrs_check diff <workload> [--arg N]
 *       Differential-run registered workloads across all modes and
 *       stream-validate their interp and jit traces (per-event
 *       invariants + event-conservation against the run's own
 *       counters). --arg 0 (default) uses each workload's tinyArg.
 *
 *       --collector C    run under collector C: nogc (default),
 *                        marksweep, copying, or all — `all` runs
 *                        every collector AND demands that the
 *                        reachable-heap digests agree across them
 *       --heap-bytes N   heap capacity (k/m/g suffixes OK)
 *       --gc-every N     collect every N allocations; defaults to 64
 *                        when a collector is on and no trigger given
 *       --gc-budget N    collect every N allocated bytes
 *
 *   jrs_check lint-trace <file.jrstrace> [--no-sidecars]
 *   jrs_check lint-trace --cache-dir DIR
 *       Validate on-disk JRSTRACE streams; with sidecar checking
 *       (default for --cache-dir) the `.meta` and `.methods` files
 *       must exist, parse, and agree with the stream.
 *
 * Examples:
 *   jrs_check fuzz --seeds 500 --jobs 8
 *   jrs_check diff --all-workloads
 *   jrs_check lint-trace --cache-dir /tmp/jrs-traces
 */
#include <cstdlib>
#include <iostream>

#include "check/differential.h"
#include "check/fuzz.h"
#include "check/invariants.h"
#include "obs/cli.h"
#include "vm/engine/engine.h"

using namespace jrs;

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::cerr << "error: " << msg << "\n\n";
    std::cerr
        << "usage: jrs_check fuzz --seeds N [--seed-base S] [--jobs N]"
           " [--kernels K] [--arg A]\n"
           "       jrs_check diff --all-workloads\n"
           "       jrs_check diff <workload> [--arg N]\n"
           "                 [--collector nogc|marksweep|copying|all]\n"
           "                 [--heap-bytes N] [--gc-every N]"
           " [--gc-budget N]\n"
           "       jrs_check lint-trace <file.jrstrace> [--no-sidecars]\n"
           "       jrs_check lint-trace --cache-dir DIR\n";
    std::exit(2);
}

std::uint64_t
parseU64(const std::string &v, const char *what)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        usage(what);
    return n;
}

/**
 * Digest comparison across all modes, then a per-event invariant +
 * conservation pass over the interp and jit streams. @return true
 * when everything holds.
 */
bool
checkOneWorkload(const WorkloadInfo &info, std::int32_t arg,
                 const gc::GcOptions &gcOpts, std::size_t heapBytes,
                 check::VmStateDigest *refOut = nullptr)
{
    check::DifferentialRunner runner;
    runner.gc = gcOpts;
    runner.heapBytes = heapBytes;
    const check::DiffResult r = runner.checkWorkload(info, arg);
    if (refOut != nullptr)
        *refOut = r.reference;
    if (!r.agreed) {
        std::cout << r.report;
        return false;
    }

    bool ok = true;
    for (const check::DiffMode mode :
         {check::DiffMode::Interp, check::DiffMode::Jit}) {
        const Program prog = info.build();
        check::TraceInvariantChecker checker;
        EngineConfig cfg = check::makeDiffConfig(mode, gcOpts,
                                                 heapBytes);
        cfg.sink = &checker;
        ExecutionEngine engine(prog, cfg);
        const RunResult res =
            engine.run(arg != 0 ? arg : info.tinyArg);

        std::string err = checker.report();
        if (err.empty())
            err = check::checkRunConservation(checker, res);
        if (err.empty())
            err = check::checkProfileConservation(res);
        if (!err.empty()) {
            std::cout << info.name << " ["
                      << check::diffModeName(mode) << "/"
                      << gc::collectorName(gcOpts.collector)
                      << "] trace invariants FAILED:\n"
                      << err << "\n";
            ok = false;
        }
    }
    if (ok) {
        std::cout << info.name << " ["
                  << gc::collectorName(gcOpts.collector) << "]: ok ("
                  << r.reference.str() << ")\n";
    }
    return ok;
}

/**
 * The collector configurations `--collector all` runs: each real
 * collector gets the stress trigger so collections actually happen
 * on the tiny diff inputs.
 */
gc::GcOptions
collectorConfig(gc::CollectorKind kind, gc::GcOptions base)
{
    base.collector = kind;
    if (kind != gc::CollectorKind::None && base.budgetBytes == 0
        && base.everyNAllocs == 0) {
        base.everyNAllocs = 64;
    }
    return base;
}

/**
 * One workload under every collector: each must agree across the
 * execution modes, and the reachable-heap digests must agree across
 * the collectors themselves (nogc is the reference).
 */
bool
checkWorkloadAllCollectors(const WorkloadInfo &info, std::int32_t arg,
                           const gc::GcOptions &base,
                           std::size_t heapBytes)
{
    bool ok = true;
    check::VmStateDigest reference;
    bool haveReference = false;
    for (const gc::CollectorKind kind : gc::allCollectorKinds()) {
        const gc::GcOptions opts = collectorConfig(kind, base);
        check::VmStateDigest digest;
        ok = checkOneWorkload(info, arg, opts, heapBytes, &digest)
            && ok;
        if (kind == gc::CollectorKind::None) {
            reference = digest;
            haveReference = true;
            continue;
        }
        if (!haveReference)
            continue;
        const std::string diff = check::describeDigestDiff(
            "nogc", reference, gc::collectorName(kind), digest);
        if (!diff.empty()) {
            std::cout << info.name << " cross-collector:\n" << diff;
            ok = false;
        }
    }
    return ok;
}

int
cmdFuzz(int argc, char **argv)
{
    check::FuzzOptions opts;
    bool seeds_given = false;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--seeds") {
            opts.numSeeds = static_cast<std::uint32_t>(
                parseU64(next(), "--seeds expects a number"));
            seeds_given = true;
        } else if (a == "--seed-base") {
            opts.seedBase =
                parseU64(next(), "--seed-base expects a number");
        } else if (a == "--jobs") {
            opts.jobs = static_cast<unsigned>(
                parseU64(next(), "--jobs expects a number"));
        } else if (a == "--kernels") {
            opts.gen.numKernels = static_cast<std::uint32_t>(
                parseU64(next(), "--kernels expects a number"));
        } else if (a == "--arg") {
            opts.arg = static_cast<std::int32_t>(
                parseU64(next(), "--arg expects a number"));
        } else {
            usage("unknown fuzz option");
        }
    }
    if (!seeds_given)
        usage("fuzz requires --seeds");

    const check::FuzzReport report = check::runFuzzCampaign(opts);
    std::cout << "fuzz: " << report.summary() << "\n";
    return report.ok() ? 0 : 1;
}

int
cmdDiff(int argc, char **argv)
{
    std::string workload;
    std::int32_t arg = 0;
    bool all = false;
    bool allCollectors = false;
    gc::GcOptions gcOpts;
    std::size_t heapBytes = kDefaultHeapBytes;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--all-workloads") {
            all = true;
        } else if (a == "--arg") {
            arg = static_cast<std::int32_t>(
                parseU64(next(), "--arg expects a number"));
        } else if (a == "--collector") {
            const std::string v = next();
            if (v == "all") {
                allCollectors = true;
            } else if (!gc::parseCollector(v, &gcOpts.collector)) {
                std::cerr << "error: unknown --collector '" << v
                          << "' (expect nogc, marksweep, copying or"
                             " all)\n";
                return 2;
            }
        } else if (a == "--heap-bytes") {
            heapBytes =
                obs::GcCli::parseSize(next(), "--heap-bytes");
        } else if (a == "--gc-every") {
            gcOpts.everyNAllocs =
                parseU64(next(), "--gc-every expects a number");
        } else if (a == "--gc-budget") {
            gcOpts.budgetBytes =
                obs::GcCli::parseSize(next(), "--gc-budget");
        } else if (!a.empty() && a[0] != '-' && workload.empty()) {
            workload = a;
        } else {
            usage("unknown diff option");
        }
    }
    if (all == !workload.empty())
        usage("diff takes --all-workloads or one workload name");
    if (!allCollectors)
        gcOpts = collectorConfig(gcOpts.collector, gcOpts);

    auto checkOne = [&](const WorkloadInfo &info) {
        return allCollectors
            ? checkWorkloadAllCollectors(info, arg, gcOpts, heapBytes)
            : checkOneWorkload(info, arg, gcOpts, heapBytes);
    };
    bool ok = true;
    if (all) {
        for (const WorkloadInfo &info : allWorkloads())
            ok = checkOne(info) && ok;
    } else {
        const WorkloadInfo *info = findWorkload(workload);
        if (info == nullptr)
            usage("unknown workload");
        ok = checkOne(*info);
    }
    std::cout << (ok ? "diff: all modes agree\n"
                     : "diff: DIVERGENCE\n");
    return ok ? 0 : 1;
}

void
printLint(const std::string &name, const check::LintResult &r)
{
    if (r.ok) {
        std::cout << name << ": ok, " << r.events << " events";
        for (const std::string &n : r.notes)
            std::cout << "; " << n;
        std::cout << "\n";
    } else {
        std::cout << name << ": FAILED: " << r.error << "\n";
    }
}

int
cmdLintTrace(int argc, char **argv)
{
    std::string file;
    std::string cacheDir;
    bool sidecars = true;
    bool sidecarsForced = false;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (a == "--cache-dir") {
            cacheDir = next();
        } else if (a == "--no-sidecars") {
            sidecars = false;
            sidecarsForced = true;
        } else if (!a.empty() && a[0] != '-' && file.empty()) {
            file = a;
        } else {
            usage("unknown lint-trace option");
        }
    }
    if (cacheDir.empty() == file.empty())
        usage("lint-trace takes one trace file or --cache-dir");

    if (!cacheDir.empty()) {
        if (sidecarsForced && !sidecars)
            usage("--no-sidecars applies to single-file mode only");
        const auto results = check::lintCacheDir(cacheDir);
        if (results.empty()) {
            std::cout << "lint-trace: no .jrstrace files in "
                      << cacheDir << "\n";
            return 0;
        }
        bool ok = true;
        for (const auto &[name, r] : results) {
            printLint(name, r);
            ok = ok && r.ok;
        }
        return ok ? 0 : 1;
    }

    const check::LintResult r = check::lintTraceFile(file, sidecars);
    printLint(file, r);
    return r.ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "fuzz")
            return cmdFuzz(argc - 2, argv + 2);
        if (cmd == "diff")
            return cmdDiff(argc - 2, argv + 2);
        if (cmd == "lint-trace")
            return cmdLintTrace(argc - 2, argv + 2);
    } catch (const std::exception &e) {
        std::cerr << "jrs_check: " << e.what() << "\n";
        return 1;
    }
    usage("unknown command");
}
